package dltprivacy_test

import (
	"testing"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/zkp"
)

func anoncredIssuer(b *testing.B, attrs []string) *anoncred.Issuer {
	b.Helper()
	issuer := anoncred.NewIssuer("bench-ca")
	if _, err := issuer.RegisterAttributeSet(attrs); err != nil {
		b.Fatal(err)
	}
	return issuer
}

func anoncredWallet(b *testing.B) *anoncred.Wallet {
	b.Helper()
	w, err := anoncred.NewWallet()
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func verifyPresentation(p anoncred.Presentation, key zkp.Point) error {
	return anoncred.VerifyPresentation(p, key)
}
