package dltprivacy_test

import (
	"context"
	"strings"
	"testing"

	"dltprivacy/internal/middleware"
	"dltprivacy/internal/telemetry"
)

// BenchmarkGatewaySessionTelemetry measures the observability tax on the
// fastest pipeline (reqauth=mac + binary codec): the full metrics registry
// attached via Gateway.RegisterMetrics, and — in the trace=64 variant —
// sampled request tracing at 1-in-64. The budget, held by cmd/benchgate
// speedup rules in CI against BenchmarkGatewaySessionMAC's
// reqauth=mac+codec=binary case: at most 5% more ns/op and exactly zero
// additional allocs/op. Histogram observation is lock-free and alloc-free
// on every request; tracing allocates only for the sampled 1-in-N.
func BenchmarkGatewaySessionTelemetry(b *testing.B) {
	env := newGatewayBenchEnv(b)
	channels := []string{"deals"}
	cases := []struct {
		name  string
		trace string
	}{
		{name: "metrics", trace: ""},
		{name: "metrics+trace=64", trace: "64"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			fp := newFastPathEnv(b, env, "mac", middleware.CodecBinary, channels,
				func(c *middleware.Config) { c.Trace = tc.trace })
			reg := telemetry.NewRegistry()
			if err := fp.gw.RegisterMetrics(reg); err != nil {
				b.Fatal(err)
			}
			templates := fp.macTemplates
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := templates[i%len(templates)]
				if err := fp.gw.Submit(ctx, &req); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if stats := fp.gw.Stats(); stats.Ordered != uint64(b.N) || fp.sink.txs.Load() != int64(b.N) {
				b.Fatalf("ordered %d, backend committed %d, want %d", stats.Ordered, fp.sink.txs.Load(), b.N)
			}
			// A scrape outside the timed loop keeps the registry honest: the
			// instrumented pipeline must actually have fed the histograms.
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				b.Fatal(err)
			}
			if !strings.Contains(sb.String(), `confmw_stage_latency_seconds_bucket{stage="session",le="+Inf"}`) {
				b.Fatal("scrape missing session stage latency histogram")
			}
			if tc.trace != "" && fp.gw.Stats().TracesSampled == 0 {
				b.Fatal("tracing enabled but nothing sampled")
			}
		})
	}
}
