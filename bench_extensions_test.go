package dltprivacy_test

import (
	"fmt"
	"math/big"
	"strconv"
	"testing"

	"dltprivacy/internal/contract"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/mpc"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/transport"
	"dltprivacy/internal/workload"
)

// Extension benches: the member-run replicated ordering cluster vs the solo
// service (the cost of the §3.4 mitigation), networked MPC over the
// transport substrate, and Corda backchain verification depth scaling.

func BenchmarkReplicatedOrdering(b *testing.B) {
	mkTx := func(i int) ledger.Transaction {
		return ledger.Transaction{
			Channel: "ch", Creator: "org",
			Writes: []ledger.Write{{Key: "k" + strconv.Itoa(i), Value: []byte("v")}},
		}
	}
	b.Run("solo", func(b *testing.B) {
		l := ledger.New("ch")
		svc := ordering.New("op", ordering.VisibilityEnvelope)
		svc.Subscribe("ch", l.Append)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Submit(mkTx(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, nodes := range []int{3, 5} {
		b.Run(fmt.Sprintf("cluster-%d", nodes), func(b *testing.B) {
			ops := make([]string, nodes)
			for i := range ops {
				ops[i] = "member-" + strconv.Itoa(i)
			}
			c, err := ordering.NewCluster("ch", ops, ordering.VisibilityEnvelope)
			if err != nil {
				b.Fatal(err)
			}
			l := ledger.New("ch")
			c.Subscribe(l.Append)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Submit(mkTx(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNetworkedMPC(b *testing.B) {
	for _, parties := range []int{3, 7} {
		b.Run(fmt.Sprintf("parties-%d", parties), func(b *testing.B) {
			inputs := make(map[string]*big.Int, parties)
			for i := 0; i < parties; i++ {
				inputs["p"+strconv.Itoa(i)] = big.NewInt(int64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh network per run: endpoints are single-registration.
				if _, err := mpc.NetworkedSecureSum(transport.New(), inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTradeWorkload drives the Fabric model with the deterministic
// synthetic trade generator across consortium topologies.
func BenchmarkTradeWorkload(b *testing.B) {
	for _, channels := range []int{1, 4} {
		b.Run(fmt.Sprintf("channels-%d", channels), func(b *testing.B) {
			gen := workload.New(2026)
			topo, err := gen.Topology(6, channels, 3)
			if err != nil {
				b.Fatal(err)
			}
			net, err := fabric.NewNetwork(fabric.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for _, org := range topo.Orgs {
				if _, err := net.AddOrg(org); err != nil {
					b.Fatal(err)
				}
			}
			cc := kvChaincode()
			for c := 0; c < channels; c++ {
				name := "ch" + strconv.Itoa(c)
				members := topo.Channels[c]
				policy := contract.Policy{Members: members, Threshold: 1}
				if err := net.CreateChannel(name, members, policy); err != nil {
					b.Fatal(err)
				}
				if err := net.InstallChaincode(name, cc, members[:1]); err != nil {
					b.Fatal(err)
				}
			}
			trades, err := gen.Trades(topo.Orgs, b.N+1, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := i % channels
				name := "ch" + strconv.Itoa(c)
				creator := topo.Channels[c][0]
				if _, err := net.Invoke(name, creator, "kv", "put",
					[][]byte{[]byte(trades[i].ID + strconv.Itoa(i)), trades[i].Payload},
					topo.Channels[c][:1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBackchainVerify(b *testing.B) {
	for _, depth := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			n, err := corda.NewNetwork(corda.Config{})
			if err != nil {
				b.Fatal(err)
			}
			parties := []string{"P0", "P1"}
			for _, p := range parties {
				if _, err := n.AddParty(p); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := n.Issue("P0", "P0", []byte("asset"), parties); err != nil {
				b.Fatal(err)
			}
			// Bounce the asset back and forth to build a chain.
			holder := 0
			for i := 1; i < depth; i++ {
				from, err := n.Party(parties[holder])
				if err != nil {
					b.Fatal(err)
				}
				to := (holder + 1) % 2
				if _, err := n.Transfer(parties[holder], from.Vault()[0], parties[to], nil, nil); err != nil {
					b.Fatal(err)
				}
				holder = to
			}
			final, err := n.Party(parties[holder])
			if err != nil {
				b.Fatal(err)
			}
			ref := final.Vault()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				verified, err := n.VerifyBackchain(parties[holder], ref)
				if err != nil {
					b.Fatal(err)
				}
				if verified != depth {
					b.Fatalf("verified %d, want %d", verified, depth)
				}
			}
		})
	}
}
