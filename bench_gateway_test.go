package dltprivacy_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/workload"
)

// nullBackend counts commits without platform simulation, so the bench
// isolates chain overhead from backend cost.
type nullBackend struct{ txs int }

func (n *nullBackend) Name() string { return "null" }

func (n *nullBackend) Commit(b ledger.Block) error {
	n.txs += len(b.Txs)
	return nil
}

// gatewayBenchEnv is the shared fixture: an enrolled consortium and a pool
// of signed workload submissions to replay.
type gatewayBenchEnv struct {
	ca         *pki.CA
	keys       map[string]*dcrypto.PrivateKey
	certs      map[string]pki.Certificate
	memberKeys map[string]dcrypto.PublicKey
	templates  []middleware.Request
}

func newGatewayBenchEnv(b *testing.B) *gatewayBenchEnv {
	b.Helper()
	wl := workload.New(1)
	members := wl.Orgs(3)
	trades, err := wl.Trades(members, 64, 96)
	if err != nil {
		b.Fatal(err)
	}
	ca, err := pki.NewCA("bench-ca")
	if err != nil {
		b.Fatal(err)
	}
	keys := make(map[string]*dcrypto.PrivateKey, len(members))
	certs := make(map[string]pki.Certificate, len(members))
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			b.Fatal(err)
		}
		cert, err := ca.Enroll(m, key.Public())
		if err != nil {
			b.Fatal(err)
		}
		keys[m], certs[m], memberKeys[m] = key, cert, key.Public()
	}
	templates := make([]middleware.Request, len(trades))
	for i, tr := range trades {
		payload, err := json.Marshal(tr)
		if err != nil {
			b.Fatal(err)
		}
		req := middleware.Request{
			Channel:   "deals",
			Principal: tr.Buyer,
			Payload:   payload,
			Cert:      certs[tr.Buyer],
		}
		if err := middleware.SignRequest(&req, keys[tr.Buyer]); err != nil {
			b.Fatal(err)
		}
		templates[i] = req
	}
	return &gatewayBenchEnv{ca: ca, keys: keys, certs: certs, memberKeys: memberKeys, templates: templates}
}

// BenchmarkGatewayChain measures the pipeline at increasing depth: each
// sub-benchmark adds one stage to the chain, so the per-stage overhead is
// the ns/op difference between consecutive lines. The baseline is a
// gateway whose only stage is a permissive rate limiter (Config rejects
// an empty pipeline); its cost is visible directly as the +ratelimit
// delta at depth 4 and is negligible next to the crypto stages. Traffic
// is the seeded workload generator's trade stream; the backend is a
// commit counter, so the numbers isolate middleware cost.
func BenchmarkGatewayChain(b *testing.B) {
	env := newGatewayBenchEnv(b)
	stages := []middleware.StageConfig{
		{Name: middleware.StageAuthn},
		{Name: middleware.StageEncrypt},
		{Name: middleware.StageAudit, Params: map[string]string{"observer": "bench-op"}},
		{Name: middleware.StageRateLimit, Params: map[string]string{"rate": "1e12", "burst": "1e12"}},
		{Name: middleware.StageRetry, Params: map[string]string{"attempts": "3", "backoff": "1ms"}},
		{Name: middleware.StageBreaker, Params: map[string]string{"threshold": "5", "cooldown": "1s"}},
		{Name: middleware.StageBatch, Params: map[string]string{"size": "8"}},
	}
	b.Run("baseline(ratelimit-only)", func(b *testing.B) {
		benchGatewayDepth(b, env, nil)
	})
	for depth := 1; depth <= len(stages); depth++ {
		cfg := stages[:depth]
		name := fmt.Sprintf("stages=%d(+%s)", depth, cfg[depth-1].Name)
		b.Run(name, func(b *testing.B) {
			benchGatewayDepth(b, env, cfg)
		})
	}
}

func benchGatewayDepth(b *testing.B, env *gatewayBenchEnv, stages []middleware.StageConfig) {
	b.Helper()
	orderer := ordering.New("bench-orderer", ordering.VisibilityEnvelope)
	sink := &nullBackend{}
	gwEnv := middleware.Env{
		CAKey:     env.ca.PublicKey(),
		Directory: middleware.StaticDirectory{"deals": env.memberKeys},
		Log:       audit.NewLog(),
		Sleep:     func(time.Duration) {},
	}
	var (
		gw  *middleware.Gateway
		err error
	)
	if len(stages) == 0 {
		// The baseline still needs a valid pipeline; a permissive rate
		// limiter is the cheapest near-no-op stage (see the
		// BenchmarkGatewayChain comment).
		gw, err = middleware.NewGateway("bench-gw", middleware.Config{Stages: []middleware.StageConfig{
			{Name: middleware.StageRateLimit, Params: map[string]string{"rate": "1e12", "burst": "1e12"}},
		}}, gwEnv, orderer)
	} else {
		gw, err = middleware.NewGateway("bench-gw", middleware.Config{Stages: stages}, gwEnv, orderer)
	}
	if err != nil {
		b.Fatal(err)
	}
	gw.Bind("deals", sink)

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := env.templates[i%len(env.templates)]
		if err := gw.Submit(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := gw.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	if stats := gw.Stats(); stats.Ordered != uint64(b.N) || sink.txs != b.N {
		b.Fatalf("ordered %d, backend committed %d, want %d", stats.Ordered, sink.txs, b.N)
	}
}
