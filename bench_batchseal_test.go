package dltprivacy_test

import (
	"context"
	"fmt"
	"testing"

	"dltprivacy/internal/middleware"
)

// BenchmarkGatewayBatchSeal measures the amortized per-transaction cost of
// the group seal on the MAC+binary session fast path: the batch stage
// buckets deferred-seal submissions per (channel, epoch) and seals each
// full bucket with ONE AEAD invocation over the concatenated payloads,
// splicing the epoch's precomputed wrapped-key section — so AD setup,
// member fingerprinting, key wrapping, and the orderer round all amortize
// to 1/size.
//
//   - batch=1 is the unamortized bound: a full group seal and ordering
//     round per submission.
//   - batch=16 and batch=64 show the amortization curve; the acceptance
//     bar is <= 1µs ns/op and <= 5 allocs/op at batch=64, and >= 4x over
//     batch=1, held by cmd/benchgate rules in CI.
//
// Each op is one Gateway.Submit; the release (seal + order) runs inside
// every size-th op, so ns/op IS the amortized per-tx cost.
func BenchmarkGatewayBatchSeal(b *testing.B) {
	env := newGatewayBenchEnv(b)
	channels := []string{"deals"}
	for _, size := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			fp := newFastPathEnv(b, env, "mac", middleware.CodecBinary, channels,
				func(cfg *middleware.Config) {
					cfg.Stages = append(cfg.Stages, middleware.StageConfig{
						Name: middleware.StageBatch,
						Params: map[string]string{
							"size":      fmt.Sprint(size),
							"groupseal": "on",
						},
					})
					// A sub-microsecond submit budget leaves no room for
					// six clock reads per request; sample 1-in-64 stage
					// timings (calls/errors stay exact) like a production
					// gateway at this throughput would.
					cfg.TimingSample = "64"
				})
			ctx := context.Background()
			// The submission ring recycles request structs instead of heap-
			// allocating one per op: the batch stage holds at most `size`
			// buffered members, so 2x the largest batch is always free for
			// reuse by the time the ring wraps. Each op fills exactly the
			// fields a MAC-path client sends — channel, principal, payload,
			// token, MAC — the way a real submitter reusing request objects
			// would, so only the benchmark's own allocation noise is
			// removed, not submission work.
			ring := make([]middleware.Request, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := &fp.macTemplates[i%len(fp.macTemplates)]
				req := &ring[i&127]
				req.Channel = t.Channel
				req.Principal = t.Principal
				req.Payload = t.Payload
				req.SessionToken = t.SessionToken
				req.MAC = t.MAC
				if err := fp.gw.Submit(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := fp.gw.Flush(ctx); err != nil {
				b.Fatal(err)
			}
			groups := b.N / size
			if b.N%size != 0 {
				groups++
			}
			stats := fp.gw.Stats()
			if stats.Submitted != uint64(b.N) {
				b.Fatalf("submitted %d, want %d", stats.Submitted, b.N)
			}
			if stats.BatchGroupTxs != uint64(b.N) || stats.BatchGroupsSealed != uint64(groups) {
				b.Fatalf("group stats txs=%d sealed=%d, want %d txs in %d groups",
					stats.BatchGroupTxs, stats.BatchGroupsSealed, b.N, groups)
			}
			if fp.sink.txs.Load() != int64(groups) {
				b.Fatalf("backend committed %d txs, want %d group envelopes", fp.sink.txs.Load(), groups)
			}
		})
	}
}
