package dltprivacy_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/netedge"
	"dltprivacy/internal/ordering"
)

// BenchmarkEdgeTCP measures the session fast path over the real network
// edge: a loopback TCP round trip through the stream framing, the binary
// codec v2 decode, and the session(mac)+encrypt chain. Where
// BenchmarkGatewaySessionMAC prices the chain alone (~5.7µs), this adds
// the socket, so the delta is the true cost of leaving the process.
// Pipelining depth is the sub-benchmark axis: depth=1 is one synchronous
// round trip per op; deeper variants keep several requests in flight over
// the one connection, amortizing the per-trip latency the way cmd/loadgen
// and any real client would.
func BenchmarkEdgeTCP(b *testing.B) {
	env := newGatewayBenchEnv(b)
	dir := middleware.NewSyncDirectory()
	dir.SetChannel("bench", env.memberKeys)
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "reqauth": "mac"}},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
		},
		Codec: middleware.CodecBinary,
	}
	gwEnv := middleware.Env{
		CAKey:     env.ca.PublicKey(),
		Directory: dir,
		Log:       audit.NewLog(),
		Sleep:     func(time.Duration) {},
	}
	gw, err := middleware.NewGateway("bench-gw", cfg, gwEnv, ordering.New("bench-orderer", ordering.VisibilityEnvelope))
	if err != nil {
		b.Fatal(err)
	}
	sink := &atomicBackend{}
	gw.Bind("bench", sink)

	srv, err := netedge.Listen("127.0.0.1:0", gw)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	for _, depth := range []int{1, 8} {
		b.Run(fmt.Sprintf("pipeline=%d", depth), func(b *testing.B) {
			c, err := netedge.Dial(srv.Addr().String(), netedge.WithInFlight(depth))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			// The session is bound to this connection, so the handshake
			// happens here, per sub-benchmark, not in the shared fixture.
			member := "org-00"
			grant, err := c.OpenSession(ctx, member, env.certs[member], env.keys[member], middleware.CodecBinary)
			if err != nil {
				b.Fatal(err)
			}
			req := &middleware.Request{
				Channel:      "bench",
				Principal:    member,
				Payload:      env.templates[0].Payload,
				SessionToken: grant.Token,
			}
			middleware.MACRequest(req, grant.MacKey)
			wire, err := middleware.EncodeWireRequest(req, middleware.CodecBinary)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(wire)))
			b.ReportAllocs()
			b.ResetTimer()
			if depth == 1 {
				for i := 0; i < b.N; i++ {
					if _, err := c.SubmitRaw(ctx, wire); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				var wg sync.WaitGroup
				work := make(chan struct{})
				errs := make(chan error, depth)
				for w := 0; w < depth; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						// Keep draining after a failure so the feed loop
						// below can never block on a dead worker.
						var werr error
						for range work {
							if werr != nil {
								continue
							}
							if _, err := c.SubmitRaw(ctx, wire); err != nil {
								werr = err
							}
						}
						if werr != nil {
							errs <- werr
						}
					}()
				}
				for i := 0; i < b.N; i++ {
					work <- struct{}{}
				}
				close(work)
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}
