package merkle

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestNewEmpty(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("New(nil) = %v, want ErrEmptyTree", err)
	}
}

func TestRootDeterministic(t *testing.T) {
	t1, err := New(leaves(7))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t2, _ := New(leaves(7))
	if t1.Root() != t2.Root() {
		t.Fatal("same leaves must give same root")
	}
}

func TestRootSensitiveToLeafChange(t *testing.T) {
	l := leaves(5)
	t1, _ := New(l)
	l[3] = []byte("mutated")
	t2, _ := New(l)
	if t1.Root() == t2.Root() {
		t.Fatal("root must change when a leaf changes")
	}
}

func TestTreeCopiesLeaves(t *testing.T) {
	l := leaves(3)
	tr, _ := New(l)
	root := tr.Root()
	l[0][0] = 'X' // mutate caller's slice
	if tr.Root() != root {
		t.Fatal("tree must copy leaves at the boundary")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16, 33} {
		tr, err := New(leaves(n))
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("Prove(%d/%d): %v", i, n, err)
			}
			if err := VerifyProof(tr.Root(), p); err != nil {
				t.Fatalf("VerifyProof(%d/%d): %v", i, n, err)
			}
		}
	}
}

func TestVerifyProofRejectsTamperedLeaf(t *testing.T) {
	tr, _ := New(leaves(8))
	p, _ := tr.Prove(2)
	p.LeafData = []byte("forged")
	if err := VerifyProof(tr.Root(), p); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered proof = %v, want ErrBadProof", err)
	}
}

func TestVerifyProofRejectsWrongRoot(t *testing.T) {
	tr, _ := New(leaves(8))
	other, _ := New(leaves(9))
	p, _ := tr.Prove(0)
	if err := VerifyProof(other.Root(), p); !errors.Is(err, ErrBadProof) {
		t.Fatalf("wrong-root proof = %v, want ErrBadProof", err)
	}
}

func TestProveOutOfRange(t *testing.T) {
	tr, _ := New(leaves(4))
	for _, i := range []int{-1, 4, 100} {
		if _, err := tr.Prove(i); !errors.Is(err, ErrIndexRange) {
			t.Fatalf("Prove(%d) = %v, want ErrIndexRange", i, err)
		}
	}
}

func TestTearOffRootMatches(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 11} {
		tr, _ := New(leaves(n))
		to, err := tr.TearOffVisible([]int{0})
		if err != nil {
			t.Fatalf("TearOffVisible(n=%d): %v", n, err)
		}
		if err := to.Verify(tr.Root()); err != nil {
			t.Fatalf("tear-off verify (n=%d): %v", n, err)
		}
	}
}

func TestTearOffHidesAndReveals(t *testing.T) {
	tr, _ := New(leaves(6))
	to, err := tr.TearOffVisible([]int{1, 4})
	if err != nil {
		t.Fatalf("TearOffVisible: %v", err)
	}
	if got, err := to.Leaf(1); err != nil || string(got) != "leaf-1" {
		t.Fatalf("visible leaf = %q, %v", got, err)
	}
	if _, err := to.Leaf(0); !errors.Is(err, ErrLeafHidden) {
		t.Fatalf("hidden leaf = %v, want ErrLeafHidden", err)
	}
	if _, err := to.Leaf(9); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("out of range leaf = %v, want ErrIndexRange", err)
	}
	if got := len(to.VisibleIndices()); got != 2 {
		t.Fatalf("VisibleIndices len = %d, want 2", got)
	}
}

func TestTearOffDetectsSubstitutedDigest(t *testing.T) {
	tr, _ := New(leaves(4))
	to, _ := tr.TearOffVisible([]int{0})
	// Attacker substitutes a hidden digest.
	to.HiddenDigests[2] = LeafHash([]byte("evil"))
	if err := to.Verify(tr.Root()); !errors.Is(err, ErrBadTearOff) {
		t.Fatalf("substituted digest = %v, want ErrBadTearOff", err)
	}
}

func TestTearOffDetectsSubstitutedVisibleLeaf(t *testing.T) {
	tr, _ := New(leaves(4))
	to, _ := tr.TearOffVisible([]int{0})
	to.Visible[0] = []byte("evil")
	if err := to.Verify(tr.Root()); !errors.Is(err, ErrBadTearOff) {
		t.Fatalf("substituted leaf = %v, want ErrBadTearOff", err)
	}
}

func TestTearOffMissingEntry(t *testing.T) {
	tr, _ := New(leaves(4))
	to, _ := tr.TearOffVisible([]int{0})
	delete(to.HiddenDigests, 3)
	if _, err := to.Root(); !errors.Is(err, ErrBadTearOff) {
		t.Fatalf("missing entry = %v, want ErrBadTearOff", err)
	}
}

func TestTearOffBadIndex(t *testing.T) {
	tr, _ := New(leaves(4))
	if _, err := tr.TearOffVisible([]int{7}); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("TearOffVisible(7) = %v, want ErrIndexRange", err)
	}
}

func TestLeafAccess(t *testing.T) {
	tr, _ := New(leaves(3))
	got, err := tr.Leaf(2)
	if err != nil || string(got) != "leaf-2" {
		t.Fatalf("Leaf(2) = %q, %v", got, err)
	}
	if _, err := tr.Leaf(3); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("Leaf(3) = %v, want ErrIndexRange", err)
	}
}

// Property: every leaf of every randomly sized tree proves against the root,
// and a tear-off hiding all but one leaf still reproduces the root.
func TestMerkleProperties(t *testing.T) {
	f := func(raw [][]byte, pick uint8) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true // out of modelled domain
		}
		tr, err := New(raw)
		if err != nil {
			return false
		}
		i := int(pick) % len(raw)
		p, err := tr.Prove(i)
		if err != nil || VerifyProof(tr.Root(), p) != nil {
			return false
		}
		to, err := tr.TearOffVisible([]int{i})
		if err != nil {
			return false
		}
		return to.Verify(tr.Root()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainSeparation(t *testing.T) {
	// A single-leaf tree whose leaf equals an interior node encoding of
	// another tree must not collide, thanks to prefixes.
	inner, _ := New([][]byte{[]byte("a"), []byte("b")})
	root := inner.Root()
	outer, _ := New([][]byte{root[:]})
	if outer.Root() == inner.Root() {
		t.Fatal("leaf/interior domain separation violated")
	}
}
