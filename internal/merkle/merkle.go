// Package merkle implements Merkle trees, inclusion proofs, and the
// "Merkle tree tear-offs" mechanism of §2.2: parties sign over the Merkle
// root of all transaction components, and components that must stay
// confidential from a given party are replaced by their branch digests so the
// party can recompute and sign the root without seeing the hidden data.
package merkle

import (
	"bytes"
	"errors"
	"fmt"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by tree and proof operations.
var (
	// ErrEmptyTree is returned when a tree is built from zero leaves.
	ErrEmptyTree = errors.New("merkle: tree needs at least one leaf")
	// ErrBadProof is returned when an inclusion proof fails verification.
	ErrBadProof = errors.New("merkle: proof verification failed")
	// ErrBadTearOff is returned when a partial (torn-off) tree is
	// inconsistent or does not reproduce the committed root.
	ErrBadTearOff = errors.New("merkle: tear-off verification failed")
	// ErrLeafHidden is returned when a consumer asks a torn-off view for
	// data that was redacted.
	ErrLeafHidden = errors.New("merkle: leaf is hidden in this view")
	// ErrIndexRange is returned for out-of-range leaf indices.
	ErrIndexRange = errors.New("merkle: leaf index out of range")
)

// Domain-separation prefixes prevent second-preimage attacks where an
// interior node is reinterpreted as a leaf.
var (
	leafPrefix     = []byte{0x00}
	interiorPrefix = []byte{0x01}
)

// LeafHash computes the digest of a leaf's payload.
func LeafHash(data []byte) [32]byte {
	return dcrypto.HashConcat(leafPrefix, data)
}

func nodeHash(left, right [32]byte) [32]byte {
	return dcrypto.HashConcat(interiorPrefix, left[:], right[:])
}

// Tree is an immutable Merkle tree over a sequence of leaves. Odd nodes are
// promoted (Bitcoin-style duplication is avoided: the last node is carried up
// unchanged), which keeps proofs unambiguous.
type Tree struct {
	leaves [][]byte     // copies of leaf payloads
	levels [][][32]byte // levels[0] = leaf hashes, last level = [root]
}

// New builds a tree over copies of the given leaves.
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	cp := make([][]byte, len(leaves))
	for i, l := range leaves {
		cp[i] = append([]byte(nil), l...)
	}
	level := make([][32]byte, len(cp))
	for i, l := range cp {
		level[i] = LeafHash(l)
	}
	levels := [][][32]byte{level}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote odd node
			}
		}
		levels = append(levels, next)
		level = next
	}
	return &Tree{leaves: cp, levels: levels}, nil
}

// Root returns the Merkle root.
func (t *Tree) Root() [32]byte { return t.levels[len(t.levels)-1][0] }

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.leaves) }

// Leaf returns a copy of leaf i.
func (t *Tree) Leaf(i int) ([]byte, error) {
	if i < 0 || i >= len(t.leaves) {
		return nil, ErrIndexRange
	}
	return append([]byte(nil), t.leaves[i]...), nil
}

// Proof is an inclusion proof for a single leaf.
type Proof struct {
	Index    int        `json:"index"`
	LeafData []byte     `json:"leafData"`
	Path     [][32]byte `json:"path"`
	// Lefts[i] reports whether Path[i] is the left sibling.
	Lefts []bool `json:"lefts"`
}

// Prove builds an inclusion proof for leaf i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= len(t.leaves) {
		return Proof{}, ErrIndexRange
	}
	proof := Proof{Index: i, LeafData: append([]byte(nil), t.leaves[i]...)}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := idx ^ 1
		if sib < len(level) {
			proof.Path = append(proof.Path, level[sib])
			proof.Lefts = append(proof.Lefts, sib < idx)
		}
		idx /= 2
	}
	return proof, nil
}

// VerifyProof checks an inclusion proof against a root.
func VerifyProof(root [32]byte, p Proof) error {
	h := LeafHash(p.LeafData)
	if len(p.Path) != len(p.Lefts) {
		return ErrBadProof
	}
	for i, sib := range p.Path {
		if p.Lefts[i] {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
	}
	if h != root {
		return ErrBadProof
	}
	return nil
}

// TearOff is a partial view of a tree: visible leaves carry their payload,
// hidden leaves carry only their digest. A counterparty (for example an
// oracle that must attest to one field, §5 "Corda") can recompute the root
// from the view and sign it without learning the hidden payloads.
type TearOff struct {
	LeafCount int `json:"leafCount"`
	// Visible maps leaf index -> payload copy.
	Visible map[int][]byte `json:"visible"`
	// HiddenDigests maps leaf index -> leaf hash.
	HiddenDigests map[int][32]byte `json:"hiddenDigests"`
}

// TearOffVisible builds a tear-off exposing exactly the given leaf indices.
func (t *Tree) TearOffVisible(visible []int) (TearOff, error) {
	vis := make(map[int]bool, len(visible))
	for _, i := range visible {
		if i < 0 || i >= len(t.leaves) {
			return TearOff{}, ErrIndexRange
		}
		vis[i] = true
	}
	to := TearOff{
		LeafCount:     len(t.leaves),
		Visible:       make(map[int][]byte, len(vis)),
		HiddenDigests: make(map[int][32]byte, len(t.leaves)-len(vis)),
	}
	for i, leaf := range t.leaves {
		if vis[i] {
			to.Visible[i] = append([]byte(nil), leaf...)
		} else {
			to.HiddenDigests[i] = t.levels[0][i]
		}
	}
	return to, nil
}

// Root recomputes the Merkle root from the partial view. This is the
// operation a tear-off recipient performs before signing.
func (to TearOff) Root() ([32]byte, error) {
	if to.LeafCount <= 0 {
		return [32]byte{}, ErrBadTearOff
	}
	level := make([][32]byte, to.LeafCount)
	for i := 0; i < to.LeafCount; i++ {
		if data, ok := to.Visible[i]; ok {
			level[i] = LeafHash(data)
			continue
		}
		digest, ok := to.HiddenDigests[i]
		if !ok {
			return [32]byte{}, fmt.Errorf("%w: leaf %d neither visible nor hidden", ErrBadTearOff, i)
		}
		level[i] = digest
	}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0], nil
}

// Verify checks that the tear-off reproduces the committed root.
func (to TearOff) Verify(root [32]byte) error {
	got, err := to.Root()
	if err != nil {
		return err
	}
	if got != root {
		return ErrBadTearOff
	}
	return nil
}

// Leaf returns the payload of a visible leaf, or ErrLeafHidden when the leaf
// was torn off.
func (to TearOff) Leaf(i int) ([]byte, error) {
	if i < 0 || i >= to.LeafCount {
		return nil, ErrIndexRange
	}
	if data, ok := to.Visible[i]; ok {
		return append([]byte(nil), data...), nil
	}
	return nil, ErrLeafHidden
}

// VisibleIndices returns the sorted-free list of indices with payloads.
func (to TearOff) VisibleIndices() []int {
	out := make([]int, 0, len(to.Visible))
	for i := range to.Visible {
		out = append(out, i)
	}
	return out
}

// Equal reports whether two roots match in constant time-ish comparison.
func Equal(a, b [32]byte) bool { return bytes.Equal(a[:], b[:]) }
