package dcrypto

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestMACMatchesStdlib pins the hand-rolled pooled HMAC to crypto/hmac
// across key lengths, including keys longer than the block size.
func TestMACMatchesStdlib(t *testing.T) {
	msgs := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("payload"), 100)}
	keys := [][]byte{
		[]byte("k"),
		bytes.Repeat([]byte{0xaa}, 32),
		bytes.Repeat([]byte{0xbb}, 64),
		bytes.Repeat([]byte{0xcc}, 200), // > block size: hashed down first
	}
	for _, key := range keys {
		for _, msg := range msgs {
			ref := hmac.New(sha256.New, key)
			ref.Write(msg)
			want := ref.Sum(nil)
			got := MAC(key, msg)
			if !bytes.Equal(got[:], want) {
				t.Fatalf("MAC(key len %d, msg len %d) = %x, stdlib %x", len(key), len(msg), got, want)
			}
		}
	}
}

// TestMACParts checks that variadic parts concatenate, matching a single
// contiguous message.
func TestMACParts(t *testing.T) {
	key := []byte("session-key")
	whole := MAC(key, []byte("abcdef"))
	split := MAC(key, []byte("ab"), []byte("cd"), []byte("ef"))
	if whole != split {
		t.Fatalf("split parts MAC differs from contiguous MAC")
	}
}

func TestVerifyMAC(t *testing.T) {
	key := []byte("session-key")
	msg := []byte("request digest")
	tag := MAC(key, msg)
	if err := VerifyMAC(key, msg, tag[:]); err != nil {
		t.Fatalf("valid tag rejected: %v", err)
	}
	bad := append([]byte(nil), tag[:]...)
	bad[0] ^= 1
	if err := VerifyMAC(key, msg, bad); err != ErrInvalidMAC {
		t.Fatalf("flipped tag: got %v, want ErrInvalidMAC", err)
	}
	if err := VerifyMAC(key, msg, tag[:16]); err != ErrInvalidMAC {
		t.Fatalf("truncated tag: got %v, want ErrInvalidMAC", err)
	}
	if err := VerifyMAC(key, msg, nil); err != ErrInvalidMAC {
		t.Fatalf("nil tag: got %v, want ErrInvalidMAC", err)
	}
	if err := VerifyMAC([]byte("other-key"), msg, tag[:]); err != ErrInvalidMAC {
		t.Fatalf("wrong key: got %v, want ErrInvalidMAC", err)
	}
}

// TestHKDFVectorRFC5869 pins the implementation to RFC 5869 appendix A.1
// (SHA-256, basic test case).
func TestHKDFVectorRFC5869(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	want, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	got, err := HKDF(ikm, salt, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFProperties(t *testing.T) {
	secret := []byte("handshake secret")
	a, err := HKDF(secret, []byte("salt"), []byte("info"), 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HKDF(secret, []byte("salt"), []byte("info"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("HKDF is not deterministic")
	}
	c, _ := HKDF(secret, []byte("salt"), []byte("other info"), 32)
	if bytes.Equal(a, c) {
		t.Fatal("HKDF output does not separate by info")
	}
	d, _ := HKDF(secret, []byte("other salt"), []byte("info"), 32)
	if bytes.Equal(a, d) {
		t.Fatal("HKDF output does not separate by salt")
	}
	long, err := HKDF(secret, nil, nil, 100)
	if err != nil || len(long) != 100 {
		t.Fatalf("multi-block HKDF: len %d err %v", len(long), err)
	}
	if _, err := HKDF(nil, nil, nil, 32); err == nil {
		t.Fatal("empty secret accepted")
	}
	if _, err := HKDF(secret, nil, nil, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := HKDF(secret, nil, nil, 255*32+1); err == nil {
		t.Fatal("over-long output accepted")
	}
}

// TestEncryptWithAEAD checks the reusable-AEAD seal path interoperates with
// the one-shot helpers.
func TestEncryptWithAEAD(t *testing.T) {
	key, err := NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	aead, err := NewAEAD(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("hello envelope")
	ad := []byte("channel-ad")
	ct, err := EncryptWithAEAD(aead, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptSymmetric(key, ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("roundtrip = %q, want %q", got, pt)
	}
	if _, err := DecryptSymmetric(key, ct, []byte("wrong-ad")); err == nil {
		t.Fatal("wrong AD accepted")
	}
	if _, err := NewAEAD([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func BenchmarkMAC(b *testing.B) {
	key := bytes.Repeat([]byte{0xaa}, 32)
	msg := bytes.Repeat([]byte{0xbb}, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MAC(key, msg)
	}
}
