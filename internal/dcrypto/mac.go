package dcrypto

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"hash"
	"sync"
)

// ErrInvalidMAC is returned when a message authentication code does not
// verify. Like ErrDecrypt, the cause is deliberately opaque.
var ErrInvalidMAC = errors.New("dcrypto: invalid mac")

// MACSize is the HMAC-SHA256 output length in bytes.
const MACSize = 32

// MACKeySize is the symmetric authentication key length handed out by the
// session layer (one SHA-256 block would also work; 32 bytes matches the
// AES-256 and HKDF output sizes used everywhere else).
const MACKeySize = 32

// sha256Pool recycles SHA-256 states across the hashing hot paths
// (HashConcat, MAC, HKDF): request digests and request MACs are computed
// several times per gateway submission, and a pooled state turns each of
// those from two heap allocations into zero.
var sha256Pool = sync.Pool{New: func() any { return sha256.New() }}

func getSHA256() hash.Hash {
	h := sha256Pool.Get().(hash.Hash)
	h.Reset()
	return h
}

func putSHA256(h hash.Hash) { sha256Pool.Put(h) }

// hmacBlockSize is the SHA-256 block length HMAC pads keys to.
const hmacBlockSize = 64

// macScratch is the working memory of one MAC computation. Pads and sums
// would escape to the heap if stack-allocated (they pass through the
// hash.Hash interface), so they are pooled alongside the hash states.
type macScratch struct {
	ipad, opad [hmacBlockSize]byte
	sum        [32]byte
}

var macScratchPool = sync.Pool{New: func() any { return new(macScratch) }}

// MAC computes HMAC-SHA256 (RFC 2104) of the concatenated parts under key.
// It is implemented over pooled hash states and scratch rather than
// crypto/hmac so the per-request authentication path of the gateway
// allocates nothing.
func MAC(key []byte, parts ...[]byte) [32]byte {
	s := macScratchPool.Get().(*macScratch)
	h := getSHA256()
	k := key
	if len(k) > hmacBlockSize {
		h.Write(k)
		h.Sum(s.sum[:0])
		h.Reset()
		k = s.sum[:]
	}
	copy(s.ipad[:], k)
	copy(s.opad[:], k)
	for i := len(k); i < hmacBlockSize; i++ {
		s.ipad[i], s.opad[i] = 0, 0
	}
	for i := range s.ipad {
		s.ipad[i] ^= 0x36
		s.opad[i] ^= 0x5c
	}
	h.Write(s.ipad[:])
	for _, p := range parts {
		h.Write(p)
	}
	h.Sum(s.sum[:0])
	h.Reset()
	h.Write(s.opad[:])
	h.Write(s.sum[:])
	h.Sum(s.sum[:0])
	out := s.sum
	putSHA256(h)
	macScratchPool.Put(s)
	return out
}

// VerifyMAC checks an HMAC-SHA256 tag over msg in constant time. It returns
// ErrInvalidMAC for a tag of the wrong length or wrong value — a tag with
// no bytes (the zero value, or one JSON-decoded from a hostile wire
// message) is invalid, never a panic.
func VerifyMAC(key, msg, tag []byte) error {
	if len(tag) != MACSize {
		return ErrInvalidMAC
	}
	want := MAC(key, msg)
	if subtle.ConstantTimeCompare(want[:], tag) != 1 {
		return ErrInvalidMAC
	}
	return nil
}

// HKDF derives n bytes from a secret via RFC 5869 extract-and-expand over
// HMAC-SHA256. salt is the optional non-secret randomizer (the session
// layer passes the handshake transcript digest, binding the derived key to
// the verified handshake) and info the context label separating uses of the
// same secret. n is capped at 255 blocks per the RFC.
func HKDF(secret, salt, info []byte, n int) ([]byte, error) {
	if len(secret) == 0 {
		return nil, errors.New("dcrypto: hkdf needs a secret")
	}
	if n <= 0 || n > 255*MACSize {
		return nil, fmt.Errorf("dcrypto: hkdf output length %d outside (0, %d]", n, 255*MACSize)
	}
	prk := MAC(salt, secret) // extract
	out := make([]byte, 0, ((n+MACSize-1)/MACSize)*MACSize)
	var t []byte
	for i := byte(1); len(out) < n; i++ {
		block := MAC(prk[:], t, info, []byte{i})
		out = append(out, block[:]...)
		t = out[len(out)-MACSize:]
	}
	return out[:n], nil
}
