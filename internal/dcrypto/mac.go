package dcrypto

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding"
	"errors"
	"fmt"
	"hash"
	"sync"
)

// ErrInvalidMAC is returned when a message authentication code does not
// verify. Like ErrDecrypt, the cause is deliberately opaque.
var ErrInvalidMAC = errors.New("dcrypto: invalid mac")

// MACSize is the HMAC-SHA256 output length in bytes.
const MACSize = 32

// MACKeySize is the symmetric authentication key length handed out by the
// session layer (one SHA-256 block would also work; 32 bytes matches the
// AES-256 and HKDF output sizes used everywhere else).
const MACKeySize = 32

// sha256Pool recycles SHA-256 states across the hashing hot paths
// (HashConcat, MAC, HKDF): request digests and request MACs are computed
// several times per gateway submission, and a pooled state turns each of
// those from two heap allocations into zero.
var sha256Pool = sync.Pool{New: func() any { return sha256.New() }}

func getSHA256() hash.Hash {
	h := sha256Pool.Get().(hash.Hash)
	h.Reset()
	return h
}

func putSHA256(h hash.Hash) { sha256Pool.Put(h) }

// hmacBlockSize is the SHA-256 block length HMAC pads keys to.
const hmacBlockSize = 64

// macScratch is the working memory of one MAC computation. Pads and sums
// would escape to the heap if stack-allocated (they pass through the
// hash.Hash interface), so they are pooled alongside the hash states.
type macScratch struct {
	ipad, opad [hmacBlockSize]byte
	sum        [32]byte
}

var macScratchPool = sync.Pool{New: func() any { return new(macScratch) }}

// MAC computes HMAC-SHA256 (RFC 2104) of the concatenated parts under key.
// It is implemented over pooled hash states and scratch rather than
// crypto/hmac so the per-request authentication path of the gateway
// allocates nothing.
func MAC(key []byte, parts ...[]byte) [32]byte {
	s := macScratchPool.Get().(*macScratch)
	h := getSHA256()
	k := key
	if len(k) > hmacBlockSize {
		h.Write(k)
		h.Sum(s.sum[:0])
		h.Reset()
		k = s.sum[:]
	}
	copy(s.ipad[:], k)
	copy(s.opad[:], k)
	for i := len(k); i < hmacBlockSize; i++ {
		s.ipad[i], s.opad[i] = 0, 0
	}
	for i := range s.ipad {
		s.ipad[i] ^= 0x36
		s.opad[i] ^= 0x5c
	}
	h.Write(s.ipad[:])
	for _, p := range parts {
		h.Write(p)
	}
	h.Sum(s.sum[:0])
	h.Reset()
	h.Write(s.opad[:])
	h.Write(s.sum[:])
	h.Sum(s.sum[:0])
	out := s.sum
	putSHA256(h)
	macScratchPool.Put(s)
	return out
}

// MACKey is an HMAC-SHA256 key with its inner and outer hash states
// precomputed: the pad blocks are derived AND compressed once at key
// establishment, and each Sum restores the one-block-deep states instead
// of re-deriving the pads and re-hashing them — two of the four SHA-256
// compressions of a short-message HMAC disappear from the per-request
// path. A long-lived verifier (a session record checking a MAC per
// request) should hold one of these. Sum and Verify are safe for
// concurrent use; the states are read-only after New.
type MACKey struct {
	// ipadState and opadState are the marshaled SHA-256 states after
	// absorbing the xor-padded key block, restored into a pooled hash via
	// encoding.BinaryUnmarshaler (which every stdlib hash implements).
	ipadState, opadState []byte
}

// NewMACKey precomputes the HMAC states for key. Tags are byte-identical
// to MAC under the same key.
func NewMACKey(key []byte) *MACKey {
	k := key
	if len(k) > hmacBlockSize {
		sum := sha256.Sum256(k)
		k = sum[:]
	}
	var ipad, opad [hmacBlockSize]byte
	copy(ipad[:], k)
	copy(opad[:], k)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	marshal := func(pad []byte) []byte {
		h := sha256.New()
		h.Write(pad)
		state, err := h.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			// The stdlib SHA-256 marshaler cannot fail; a change that makes
			// it fail must not silently produce wrong tags.
			panic("dcrypto: marshal sha256 state: " + err.Error())
		}
		return state
	}
	return &MACKey{ipadState: marshal(ipad[:]), opadState: marshal(opad[:])}
}

// restore loads a precomputed pad state into h.
func restoreState(h hash.Hash, state []byte) {
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic("dcrypto: restore sha256 state: " + err.Error())
	}
}

// macState bundles one hash state with its staging scratch so the
// per-request Sum pays one pool round trip, not two. The hash needs no
// Reset: restoreState overwrites it completely.
type macState struct {
	h hash.Hash
	s macScratch
}

var macStatePool = sync.Pool{New: func() any { return &macState{h: sha256.New()} }}

// Sum computes the HMAC-SHA256 tag of msg, allocation-free. msg is staged
// through the pooled scratch rather than written directly: a caller's
// stack buffer passed straight into hash.Hash would escape to the heap at
// every call site.
func (k *MACKey) Sum(msg []byte) [32]byte {
	st := macStatePool.Get().(*macState)
	h, s := st.h, &st.s
	restoreState(h, k.ipadState)
	for len(msg) > 0 {
		n := copy(s.ipad[:], msg)
		h.Write(s.ipad[:n])
		msg = msg[n:]
	}
	h.Sum(s.sum[:0])
	restoreState(h, k.opadState)
	h.Write(s.sum[:])
	h.Sum(s.sum[:0])
	out := s.sum
	macStatePool.Put(st)
	return out
}

// Verify checks a tag over msg in constant time, with the same contract
// as VerifyMAC.
func (k *MACKey) Verify(msg, tag []byte) error {
	if len(tag) != MACSize {
		return ErrInvalidMAC
	}
	want := k.Sum(msg)
	if subtle.ConstantTimeCompare(want[:], tag) != 1 {
		return ErrInvalidMAC
	}
	return nil
}

// VerifyMAC checks an HMAC-SHA256 tag over msg in constant time. It returns
// ErrInvalidMAC for a tag of the wrong length or wrong value — a tag with
// no bytes (the zero value, or one JSON-decoded from a hostile wire
// message) is invalid, never a panic.
func VerifyMAC(key, msg, tag []byte) error {
	if len(tag) != MACSize {
		return ErrInvalidMAC
	}
	want := MAC(key, msg)
	if subtle.ConstantTimeCompare(want[:], tag) != 1 {
		return ErrInvalidMAC
	}
	return nil
}

// HKDF derives n bytes from a secret via RFC 5869 extract-and-expand over
// HMAC-SHA256. salt is the optional non-secret randomizer (the session
// layer passes the handshake transcript digest, binding the derived key to
// the verified handshake) and info the context label separating uses of the
// same secret. n is capped at 255 blocks per the RFC.
func HKDF(secret, salt, info []byte, n int) ([]byte, error) {
	if len(secret) == 0 {
		return nil, errors.New("dcrypto: hkdf needs a secret")
	}
	if n <= 0 || n > 255*MACSize {
		return nil, fmt.Errorf("dcrypto: hkdf output length %d outside (0, %d]", n, 255*MACSize)
	}
	prk := MAC(salt, secret) // extract
	out := make([]byte, 0, ((n+MACSize-1)/MACSize)*MACSize)
	var t []byte
	for i := byte(1); len(out) < n; i++ {
		block := MAC(prk[:], t, info, []byte{i})
		out = append(out, block[:]...)
		t = out[len(out)-MACSize:]
	}
	return out[:n], nil
}
