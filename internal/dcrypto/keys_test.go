package dcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg := []byte("letter of credit #42")
	sig, err := key.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := key.Public().Verify(msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	sig, err := key.Sign([]byte("original"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := key.Public().Verify([]byte("tampered"), sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("Verify tampered = %v, want ErrInvalidSignature", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	k1, _ := GenerateKey()
	k2, _ := GenerateKey()
	msg := []byte("msg")
	sig, err := k1.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := k2.Public().Verify(msg, sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("Verify with wrong key = %v, want ErrInvalidSignature", err)
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	seed := []byte("0123456789abcdef")
	k1, err := DeriveKey(seed, "ctx")
	if err != nil {
		t.Fatalf("DeriveKey: %v", err)
	}
	k2, err := DeriveKey(seed, "ctx")
	if err != nil {
		t.Fatalf("DeriveKey: %v", err)
	}
	if !k1.Public().Equal(k2.Public()) {
		t.Fatal("same seed+context must derive the same key")
	}
	k3, err := DeriveKey(seed, "other")
	if err != nil {
		t.Fatalf("DeriveKey: %v", err)
	}
	if k1.Public().Equal(k3.Public()) {
		t.Fatal("different contexts must derive different keys")
	}
}

func TestDeriveKeyEmptySeed(t *testing.T) {
	if _, err := DeriveKey(nil, "ctx"); err == nil {
		t.Fatal("DeriveKey with empty seed must fail")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	pub := key.Public()
	parsed, err := ParsePublicKey(pub.Bytes())
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if !parsed.Equal(pub) {
		t.Fatal("public key round trip mismatch")
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {0x04}, make([]byte, 65), bytes.Repeat([]byte{0xff}, 65)}
	for _, c := range cases {
		if _, err := ParsePublicKey(c); !errors.Is(err, ErrInvalidPublicKey) {
			t.Errorf("ParsePublicKey(%d bytes) = %v, want ErrInvalidPublicKey", len(c), err)
		}
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	sig, err := key.Sign([]byte("x"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	parsed, err := ParseSignature(sig.Bytes())
	if err != nil {
		t.Fatalf("ParseSignature: %v", err)
	}
	if parsed.R.Cmp(sig.R) != 0 || parsed.S.Cmp(sig.S) != 0 {
		t.Fatal("signature round trip mismatch")
	}
}

func TestParseSignatureWrongLength(t *testing.T) {
	if _, err := ParseSignature(make([]byte, 63)); err == nil {
		t.Fatal("ParseSignature must reject wrong lengths")
	}
}

func TestAddressStableAndShort(t *testing.T) {
	key, _ := GenerateKey()
	a1 := key.Public().Address()
	a2 := key.Public().Address()
	if a1 != a2 {
		t.Fatal("address must be deterministic")
	}
	if len(a1) != 40 {
		t.Fatalf("address length = %d, want 40 hex chars", len(a1))
	}
}

func TestHashConcatUnambiguous(t *testing.T) {
	// ("ab","c") and ("a","bc") must hash differently thanks to length
	// prefixes.
	h1 := HashConcat([]byte("ab"), []byte("c"))
	h2 := HashConcat([]byte("a"), []byte("bc"))
	if h1 == h2 {
		t.Fatal("HashConcat must be injective across split points")
	}
}

func TestHashConcatProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		return HashConcat(a, b) == HashConcat(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignVerifyProperty(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	pub := key.Public()
	f := func(msg []byte) bool {
		sig, err := key.Sign(msg)
		if err != nil {
			return false
		}
		return pub.Verify(msg, sig) == nil
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsNilSignatureComponents(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("payload")
	good, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	// The zero Signature and half-nil forms model what a hostile wire
	// message JSON-decodes to; they must be invalid, never a panic.
	for _, sig := range []Signature{
		{},
		{R: good.R},
		{S: good.S},
	} {
		if err := key.Public().Verify(msg, sig); !errors.Is(err, ErrInvalidSignature) {
			t.Fatalf("Verify(nil-component sig) = %v, want ErrInvalidSignature", err)
		}
	}
}
