package dcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSymmetricRoundTrip(t *testing.T) {
	key, err := NewSymmetricKey()
	if err != nil {
		t.Fatalf("NewSymmetricKey: %v", err)
	}
	pt := []byte("trade secret: unit price 4.20")
	ad := []byte("tx-1")
	ct, err := EncryptSymmetric(key, pt, ad)
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	got, err := DecryptSymmetric(key, ct, ad)
	if err != nil {
		t.Fatalf("DecryptSymmetric: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %q, want %q", got, pt)
	}
}

func TestSymmetricWrongKeyFails(t *testing.T) {
	k1, _ := NewSymmetricKey()
	k2, _ := NewSymmetricKey()
	ct, err := EncryptSymmetric(k1, []byte("secret"), nil)
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	if _, err := DecryptSymmetric(k2, ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("decrypt with wrong key = %v, want ErrDecrypt", err)
	}
}

func TestSymmetricWrongAADFails(t *testing.T) {
	key, _ := NewSymmetricKey()
	ct, err := EncryptSymmetric(key, []byte("secret"), []byte("tx-1"))
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	if _, err := DecryptSymmetric(key, ct, []byte("tx-2")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("decrypt with wrong aad = %v, want ErrDecrypt", err)
	}
}

func TestSymmetricTamperedCiphertextFails(t *testing.T) {
	key, _ := NewSymmetricKey()
	ct, err := EncryptSymmetric(key, []byte("secret"), nil)
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	ct[len(ct)-1] ^= 0x01
	if _, err := DecryptSymmetric(key, ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("decrypt tampered = %v, want ErrDecrypt", err)
	}
}

func TestSymmetricBadKeySize(t *testing.T) {
	if _, err := EncryptSymmetric([]byte("short"), []byte("x"), nil); !errors.Is(err, ErrBadKeySize) {
		t.Fatalf("short key = %v, want ErrBadKeySize", err)
	}
}

func TestSymmetricTruncatedCiphertext(t *testing.T) {
	key, _ := NewSymmetricKey()
	if _, err := DecryptSymmetric(key, []byte{1, 2, 3}, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("truncated ciphertext = %v, want ErrDecrypt", err)
	}
}

func TestHybridRoundTrip(t *testing.T) {
	recipient, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	pt := []byte("shared symmetric key material")
	ct, err := EncryptHybrid(recipient.Public(), pt, []byte("channel-A"))
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	got, err := DecryptHybrid(recipient, ct, []byte("channel-A"))
	if err != nil {
		t.Fatalf("DecryptHybrid: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("hybrid round trip mismatch")
	}
}

func TestHybridWrongRecipientFails(t *testing.T) {
	alice, _ := GenerateKey()
	eve, _ := GenerateKey()
	ct, err := EncryptHybrid(alice.Public(), []byte("secret"), nil)
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	if _, err := DecryptHybrid(eve, ct, nil); err == nil {
		t.Fatal("decryption by non-recipient must fail")
	}
}

func TestHybridPropertyRoundTrip(t *testing.T) {
	recipient, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	f := func(pt []byte) bool {
		ct, err := EncryptHybrid(recipient.Public(), pt, nil)
		if err != nil {
			return false
		}
		got, err := DecryptHybrid(recipient, ct, nil)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
