package dcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSymmetricRoundTrip(t *testing.T) {
	key, err := NewSymmetricKey()
	if err != nil {
		t.Fatalf("NewSymmetricKey: %v", err)
	}
	pt := []byte("trade secret: unit price 4.20")
	ad := []byte("tx-1")
	ct, err := EncryptSymmetric(key, pt, ad)
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	got, err := DecryptSymmetric(key, ct, ad)
	if err != nil {
		t.Fatalf("DecryptSymmetric: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %q, want %q", got, pt)
	}
}

func TestSymmetricWrongKeyFails(t *testing.T) {
	k1, _ := NewSymmetricKey()
	k2, _ := NewSymmetricKey()
	ct, err := EncryptSymmetric(k1, []byte("secret"), nil)
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	if _, err := DecryptSymmetric(k2, ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("decrypt with wrong key = %v, want ErrDecrypt", err)
	}
}

func TestSymmetricWrongAADFails(t *testing.T) {
	key, _ := NewSymmetricKey()
	ct, err := EncryptSymmetric(key, []byte("secret"), []byte("tx-1"))
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	if _, err := DecryptSymmetric(key, ct, []byte("tx-2")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("decrypt with wrong aad = %v, want ErrDecrypt", err)
	}
}

func TestSymmetricTamperedCiphertextFails(t *testing.T) {
	key, _ := NewSymmetricKey()
	ct, err := EncryptSymmetric(key, []byte("secret"), nil)
	if err != nil {
		t.Fatalf("EncryptSymmetric: %v", err)
	}
	ct[len(ct)-1] ^= 0x01
	if _, err := DecryptSymmetric(key, ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("decrypt tampered = %v, want ErrDecrypt", err)
	}
}

func TestSymmetricBadKeySize(t *testing.T) {
	if _, err := EncryptSymmetric([]byte("short"), []byte("x"), nil); !errors.Is(err, ErrBadKeySize) {
		t.Fatalf("short key = %v, want ErrBadKeySize", err)
	}
}

func TestSymmetricTruncatedCiphertext(t *testing.T) {
	key, _ := NewSymmetricKey()
	if _, err := DecryptSymmetric(key, []byte{1, 2, 3}, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("truncated ciphertext = %v, want ErrDecrypt", err)
	}
}

func TestSegmentsRoundTrip(t *testing.T) {
	key, _ := NewSymmetricKey()
	aead, err := NewAEAD(key)
	if err != nil {
		t.Fatalf("NewAEAD: %v", err)
	}
	segments := [][]byte{
		[]byte("trade 1: 100 @ 4.20"),
		{}, // empty segment survives the frame
		[]byte("trade 3"),
		bytes.Repeat([]byte{0xAB}, 300), // length needs a 2-byte uvarint
	}
	ad := []byte("channel-A/epoch-7")
	ct, err := EncryptSegmentsWithAEAD(aead, segments, ad)
	if err != nil {
		t.Fatalf("EncryptSegmentsWithAEAD: %v", err)
	}
	got, err := DecryptSegmentsWithAEAD(aead, ct, ad)
	if err != nil {
		t.Fatalf("DecryptSegmentsWithAEAD: %v", err)
	}
	if len(got) != len(segments) {
		t.Fatalf("decrypted %d segments, want %d", len(got), len(segments))
	}
	for i := range segments {
		if !bytes.Equal(got[i], segments[i]) {
			t.Fatalf("segment %d = %q, want %q", i, got[i], segments[i])
		}
	}
	got2, err := DecryptSegments(key, ct, ad)
	if err != nil {
		t.Fatalf("DecryptSegments: %v", err)
	}
	if len(got2) != len(segments) || !bytes.Equal(got2[3], segments[3]) {
		t.Fatal("DecryptSegments mismatch with DecryptSegmentsWithAEAD")
	}
}

func TestSegmentsEmptyGroup(t *testing.T) {
	key, _ := NewSymmetricKey()
	aead, _ := NewAEAD(key)
	ct, err := EncryptSegmentsWithAEAD(aead, nil, nil)
	if err != nil {
		t.Fatalf("EncryptSegmentsWithAEAD(nil): %v", err)
	}
	got, err := DecryptSegmentsWithAEAD(aead, ct, nil)
	if err != nil {
		t.Fatalf("DecryptSegmentsWithAEAD: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty group decrypted to %d segments", len(got))
	}
}

func TestSegmentsTamperAndWrongAADFail(t *testing.T) {
	key, _ := NewSymmetricKey()
	aead, _ := NewAEAD(key)
	ct, err := EncryptSegmentsWithAEAD(aead, [][]byte{[]byte("a"), []byte("b")}, []byte("ad-1"))
	if err != nil {
		t.Fatalf("EncryptSegmentsWithAEAD: %v", err)
	}
	if _, err := DecryptSegmentsWithAEAD(aead, ct, []byte("ad-2")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong aad = %v, want ErrDecrypt", err)
	}
	tampered := bytes.Clone(ct)
	tampered[len(tampered)-1] ^= 0x01
	if _, err := DecryptSegmentsWithAEAD(aead, tampered, []byte("ad-1")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tampered = %v, want ErrDecrypt", err)
	}
	if _, err := DecryptSegmentsWithAEAD(aead, ct[:4], []byte("ad-1")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("truncated = %v, want ErrDecrypt", err)
	}
}

func TestSegmentsSingleAllocation(t *testing.T) {
	key, _ := NewSymmetricKey()
	aead, _ := NewAEAD(key)
	segments := [][]byte{
		bytes.Repeat([]byte{1}, 64),
		bytes.Repeat([]byte{2}, 64),
		bytes.Repeat([]byte{3}, 64),
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := EncryptSegmentsWithAEAD(aead, segments, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("EncryptSegmentsWithAEAD allocates %.0f times per op, want 1", allocs)
	}
}

func TestSplitSegmentsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty frame":           {},
		"count without body":    {0x02},
		"length past end":       {0x01, 0x7F, 0x01},
		"trailing junk":         {0x01, 0x01, 0xAA, 0xBB},
		"huge count":            {0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"truncated uvarint len": {0x01, 0x80},
	}
	for name, frame := range cases {
		if _, err := splitSegments(frame); err == nil {
			t.Errorf("%s: splitSegments accepted malformed frame %x", name, frame)
		}
	}
}

func TestHybridRoundTrip(t *testing.T) {
	recipient, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	pt := []byte("shared symmetric key material")
	ct, err := EncryptHybrid(recipient.Public(), pt, []byte("channel-A"))
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	got, err := DecryptHybrid(recipient, ct, []byte("channel-A"))
	if err != nil {
		t.Fatalf("DecryptHybrid: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("hybrid round trip mismatch")
	}
}

func TestHybridWrongRecipientFails(t *testing.T) {
	alice, _ := GenerateKey()
	eve, _ := GenerateKey()
	ct, err := EncryptHybrid(alice.Public(), []byte("secret"), nil)
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	if _, err := DecryptHybrid(eve, ct, nil); err == nil {
		t.Fatal("decryption by non-recipient must fail")
	}
}

func TestHybridPropertyRoundTrip(t *testing.T) {
	recipient, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	f := func(pt []byte) bool {
		ct, err := EncryptHybrid(recipient.Public(), pt, nil)
		if err != nil {
			return false
		}
		got, err := DecryptHybrid(recipient, ct, nil)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
