// Package dcrypto provides the cryptographic primitives shared by every
// substrate in the library: ECDSA identity keys, one-time (pseudonymous)
// keys, AES-GCM symmetric encryption, ECIES-style hybrid encryption, and
// hashing helpers.
//
// All primitives are built from the Go standard library only. The package is
// named dcrypto ("distributed-ledger crypto") to avoid colliding with the
// standard library's crypto package.
package dcrypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"
	"sync"
)

// Errors returned by key operations.
var (
	// ErrInvalidSignature is returned when signature verification fails.
	ErrInvalidSignature = errors.New("dcrypto: invalid signature")
	// ErrInvalidPublicKey is returned when a serialized public key cannot
	// be decoded onto the curve.
	ErrInvalidPublicKey = errors.New("dcrypto: invalid public key")
	// ErrInvalidPrivateKey is returned when a serialized private key is
	// out of range for the curve order.
	ErrInvalidPrivateKey = errors.New("dcrypto: invalid private key")
)

// curve is the elliptic curve used for all signing keys in the library.
func curve() elliptic.Curve { return elliptic.P256() }

// PrivateKey is an ECDSA P-256 signing key.
type PrivateKey struct {
	key *ecdsa.PrivateKey
}

// PublicKey is an ECDSA P-256 verification key. Its string form doubles as
// an address: ownership of assets is recorded against it (§2.1 of the
// paper, "One-time public keys").
type PublicKey struct {
	X, Y *big.Int
}

// GenerateKey creates a fresh random private key.
func GenerateKey() (*PrivateKey, error) {
	k, err := ecdsa.GenerateKey(curve(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return &PrivateKey{key: k}, nil
}

// DeriveKey deterministically derives a private key from a secret seed and a
// context label. It is used for hierarchical one-time key derivation: the
// holder of the seed can re-derive every one-time key it has ever handed
// out, while observers cannot link them.
func DeriveKey(seed []byte, context string) (*PrivateKey, error) {
	if len(seed) == 0 {
		return nil, errors.New("dcrypto: empty seed")
	}
	// Hash-to-scalar with rejection sampling over a counter, so the result
	// is uniform in [1, N-1].
	n := curve().Params().N
	for ctr := 0; ctr < 256; ctr++ {
		h := sha256.New()
		h.Write(seed)
		h.Write([]byte{0x00})
		h.Write([]byte(context))
		h.Write([]byte{byte(ctr)})
		d := new(big.Int).SetBytes(h.Sum(nil))
		if d.Sign() > 0 && d.Cmp(n) < 0 {
			return fromScalar(d)
		}
	}
	return nil, errors.New("dcrypto: key derivation failed to produce a valid scalar")
}

func fromScalar(d *big.Int) (*PrivateKey, error) {
	n := curve().Params().N
	if d.Sign() <= 0 || d.Cmp(n) >= 0 {
		return nil, ErrInvalidPrivateKey
	}
	priv := new(ecdsa.PrivateKey)
	priv.Curve = curve()
	priv.D = new(big.Int).Set(d)
	priv.PublicKey.X, priv.PublicKey.Y = curve().ScalarBaseMult(d.Bytes())
	return &PrivateKey{key: priv}, nil
}

// Public returns the verification key for p.
func (p *PrivateKey) Public() PublicKey {
	return PublicKey{
		X: new(big.Int).Set(p.key.PublicKey.X),
		Y: new(big.Int).Set(p.key.PublicKey.Y),
	}
}

// D returns a copy of the private scalar. It is exposed for the zkp and
// anoncred packages, which need to prove statements about identity keys.
func (p *PrivateKey) D() *big.Int { return new(big.Int).Set(p.key.D) }

// Sign produces an ECDSA signature over the SHA-256 digest of msg.
func (p *PrivateKey) Sign(msg []byte) (Signature, error) {
	digest := sha256.Sum256(msg)
	r, s, err := ecdsa.Sign(rand.Reader, p.key, digest[:])
	if err != nil {
		return Signature{}, fmt.Errorf("ecdsa sign: %w", err)
	}
	return Signature{R: r, S: s}, nil
}

// Signature is an ECDSA signature.
type Signature struct {
	R, S *big.Int
}

// Bytes returns a fixed-width serialization of the signature.
func (s Signature) Bytes() []byte {
	out := make([]byte, 64)
	s.R.FillBytes(out[:32])
	s.S.FillBytes(out[32:])
	return out
}

// ParseSignature decodes a signature produced by Bytes.
func ParseSignature(b []byte) (Signature, error) {
	if len(b) != 64 {
		return Signature{}, fmt.Errorf("dcrypto: signature must be 64 bytes, got %d", len(b))
	}
	return Signature{
		R: new(big.Int).SetBytes(b[:32]),
		S: new(big.Int).SetBytes(b[32:]),
	}, nil
}

// Verify checks sig over msg against the public key. It returns
// ErrInvalidSignature on mismatch. A signature with nil components — the
// zero Signature, or one JSON-decoded from a hostile wire message — is
// invalid, not a panic: this is the single chokepoint every network-facing
// decode path (gateway.submit, session.open) funnels through.
func (pk PublicKey) Verify(msg []byte, sig Signature) error {
	if pk.X == nil || pk.Y == nil {
		return ErrInvalidPublicKey
	}
	if sig.R == nil || sig.S == nil {
		return ErrInvalidSignature
	}
	pub := ecdsa.PublicKey{Curve: curve(), X: pk.X, Y: pk.Y}
	digest := sha256.Sum256(msg)
	if !ecdsa.Verify(&pub, digest[:], sig.R, sig.S) {
		return ErrInvalidSignature
	}
	return nil
}

// Bytes returns the uncompressed SEC1 encoding of the public key.
func (pk PublicKey) Bytes() []byte {
	if pk.X == nil || pk.Y == nil {
		return nil
	}
	out := make([]byte, 65)
	out[0] = 0x04
	pk.X.FillBytes(out[1:33])
	pk.Y.FillBytes(out[33:])
	return out
}

// ParsePublicKey decodes an uncompressed SEC1 public key.
func ParsePublicKey(b []byte) (PublicKey, error) {
	if len(b) != 65 || b[0] != 0x04 {
		return PublicKey{}, ErrInvalidPublicKey
	}
	x := new(big.Int).SetBytes(b[1:33])
	y := new(big.Int).SetBytes(b[33:])
	if !curve().IsOnCurve(x, y) {
		return PublicKey{}, ErrInvalidPublicKey
	}
	return PublicKey{X: x, Y: y}, nil
}

// Equal reports whether two public keys are identical.
func (pk PublicKey) Equal(other PublicKey) bool {
	if pk.X == nil || other.X == nil {
		return pk.X == other.X && pk.Y == other.Y
	}
	return pk.X.Cmp(other.X) == 0 && pk.Y.Cmp(other.Y) == 0
}

// Address returns a short hex identifier derived from the public key, used
// as the on-ledger address form.
func (pk PublicKey) Address() string {
	sum := sha256.Sum256(pk.Bytes())
	return hex.EncodeToString(sum[:20])
}

// String implements fmt.Stringer.
func (pk PublicKey) String() string { return pk.Address() }

// IsZero reports whether the key is the zero value.
func (pk PublicKey) IsZero() bool { return pk.X == nil && pk.Y == nil }

// Hash returns the SHA-256 digest of data. It is the canonical hash used
// throughout the library for transaction IDs, Merkle leaves, and anchors.
func Hash(data []byte) [32]byte { return sha256.Sum256(data) }

// hashScratch is the working memory of one HashConcat or ConcatHasher
// computation. The length prefixes and the digest pass through the
// hash.Hash interface, so stack buffers would escape; pooling them keeps
// the request-digest path allocation-free for real.
type hashScratch struct {
	buf [hmacBlockSize]byte
	sum [32]byte
}

var hashScratchPool = sync.Pool{New: func() any { return new(hashScratch) }}

// HashConcat hashes the concatenation of the given byte slices with
// unambiguous length prefixes. The hash state and scratch come from shared
// pools, so the call itself is allocation-free — it sits on the
// per-request digest path of the gateway. (The variadic slice is the
// caller's; hot paths with string fields should use ConcatHasher, which
// has no variadic and no []byte conversions.)
func HashConcat(parts ...[]byte) [32]byte {
	h := getSHA256()
	s := hashScratchPool.Get().(*hashScratch)
	for _, p := range parts {
		putUint64(s.buf[:8], uint64(len(p)))
		h.Write(s.buf[:8])
		h.Write(p)
	}
	h.Sum(s.sum[:0])
	out := s.sum
	hashScratchPool.Put(s)
	putSHA256(h)
	return out
}

// ConcatHasher computes the same digest as HashConcat incrementally:
// each part is length-prefixed and fed to a pooled SHA-256 state, and
// string parts stream through pooled scratch instead of converting to
// []byte — so hashing a struct of string and []byte fields allocates
// nothing at all (no variadic slice, no conversions, no escaping
// buffers). Obtain with NewConcatHasher, feed parts in order, and call
// Sum exactly once; the hasher is dead after Sum (its state returns to
// the pools).
type ConcatHasher struct {
	h hash.Hash
	s *hashScratch
}

// NewConcatHasher returns a hasher over pooled state. Every hasher
// obtained must be finished with Sum, or its state leaks from the pools.
func NewConcatHasher() ConcatHasher {
	return ConcatHasher{h: getSHA256(), s: hashScratchPool.Get().(*hashScratch)}
}

// Part feeds one length-prefixed byte part.
func (c ConcatHasher) Part(p []byte) {
	putUint64(c.s.buf[:8], uint64(len(p)))
	c.h.Write(c.s.buf[:8])
	c.h.Write(p)
}

// PartString feeds one length-prefixed string part, streamed through the
// pooled scratch so no []byte conversion is allocated. The digest is
// identical to Part of the string's bytes.
func (c ConcatHasher) PartString(p string) {
	putUint64(c.s.buf[:8], uint64(len(p)))
	c.h.Write(c.s.buf[:8])
	for len(p) > 0 {
		n := copy(c.s.buf[:], p)
		c.h.Write(c.s.buf[:n])
		p = p[n:]
	}
}

// Raw feeds bytes with no length prefix — for callers streaming an
// already-canonical encoding (one whose framing the caller owns) through
// the pooled hash state instead of staging it in a buffer first.
func (c ConcatHasher) Raw(p []byte) { c.h.Write(p) }

// RawString feeds a string with no length prefix, streamed through the
// pooled scratch so no []byte conversion is allocated.
func (c ConcatHasher) RawString(p string) {
	for len(p) > 0 {
		n := copy(c.s.buf[:], p)
		c.h.Write(c.s.buf[:n])
		p = p[n:]
	}
}

// RawUint64 feeds v as 8 big-endian bytes, no length prefix.
func (c ConcatHasher) RawUint64(v uint64) {
	putUint64(c.s.buf[:8], v)
	c.h.Write(c.s.buf[:8])
}

// RawByte feeds a single byte, no length prefix.
func (c ConcatHasher) RawByte(b byte) {
	c.s.buf[0] = b
	c.h.Write(c.s.buf[:1])
}

// Sum finalizes the digest and releases the hasher's pooled state. The
// hasher must not be used again.
func (c ConcatHasher) Sum() [32]byte {
	c.h.Sum(c.s.sum[:0])
	out := c.s.sum
	hashScratchPool.Put(c.s)
	putSHA256(c.h)
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("read random: %w", err)
	}
	return b, nil
}
