// Package dcrypto provides the cryptographic primitives shared by every
// substrate in the library: ECDSA identity keys, one-time (pseudonymous)
// keys, AES-GCM symmetric encryption, ECIES-style hybrid encryption, and
// hashing helpers.
//
// All primitives are built from the Go standard library only. The package is
// named dcrypto ("distributed-ledger crypto") to avoid colliding with the
// standard library's crypto package.
package dcrypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors returned by key operations.
var (
	// ErrInvalidSignature is returned when signature verification fails.
	ErrInvalidSignature = errors.New("dcrypto: invalid signature")
	// ErrInvalidPublicKey is returned when a serialized public key cannot
	// be decoded onto the curve.
	ErrInvalidPublicKey = errors.New("dcrypto: invalid public key")
	// ErrInvalidPrivateKey is returned when a serialized private key is
	// out of range for the curve order.
	ErrInvalidPrivateKey = errors.New("dcrypto: invalid private key")
)

// curve is the elliptic curve used for all signing keys in the library.
func curve() elliptic.Curve { return elliptic.P256() }

// PrivateKey is an ECDSA P-256 signing key.
type PrivateKey struct {
	key *ecdsa.PrivateKey
}

// PublicKey is an ECDSA P-256 verification key. Its string form doubles as
// an address: ownership of assets is recorded against it (§2.1 of the
// paper, "One-time public keys").
type PublicKey struct {
	X, Y *big.Int
}

// GenerateKey creates a fresh random private key.
func GenerateKey() (*PrivateKey, error) {
	k, err := ecdsa.GenerateKey(curve(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return &PrivateKey{key: k}, nil
}

// DeriveKey deterministically derives a private key from a secret seed and a
// context label. It is used for hierarchical one-time key derivation: the
// holder of the seed can re-derive every one-time key it has ever handed
// out, while observers cannot link them.
func DeriveKey(seed []byte, context string) (*PrivateKey, error) {
	if len(seed) == 0 {
		return nil, errors.New("dcrypto: empty seed")
	}
	// Hash-to-scalar with rejection sampling over a counter, so the result
	// is uniform in [1, N-1].
	n := curve().Params().N
	for ctr := 0; ctr < 256; ctr++ {
		h := sha256.New()
		h.Write(seed)
		h.Write([]byte{0x00})
		h.Write([]byte(context))
		h.Write([]byte{byte(ctr)})
		d := new(big.Int).SetBytes(h.Sum(nil))
		if d.Sign() > 0 && d.Cmp(n) < 0 {
			return fromScalar(d)
		}
	}
	return nil, errors.New("dcrypto: key derivation failed to produce a valid scalar")
}

func fromScalar(d *big.Int) (*PrivateKey, error) {
	n := curve().Params().N
	if d.Sign() <= 0 || d.Cmp(n) >= 0 {
		return nil, ErrInvalidPrivateKey
	}
	priv := new(ecdsa.PrivateKey)
	priv.Curve = curve()
	priv.D = new(big.Int).Set(d)
	priv.PublicKey.X, priv.PublicKey.Y = curve().ScalarBaseMult(d.Bytes())
	return &PrivateKey{key: priv}, nil
}

// Public returns the verification key for p.
func (p *PrivateKey) Public() PublicKey {
	return PublicKey{
		X: new(big.Int).Set(p.key.PublicKey.X),
		Y: new(big.Int).Set(p.key.PublicKey.Y),
	}
}

// D returns a copy of the private scalar. It is exposed for the zkp and
// anoncred packages, which need to prove statements about identity keys.
func (p *PrivateKey) D() *big.Int { return new(big.Int).Set(p.key.D) }

// Sign produces an ECDSA signature over the SHA-256 digest of msg.
func (p *PrivateKey) Sign(msg []byte) (Signature, error) {
	digest := sha256.Sum256(msg)
	r, s, err := ecdsa.Sign(rand.Reader, p.key, digest[:])
	if err != nil {
		return Signature{}, fmt.Errorf("ecdsa sign: %w", err)
	}
	return Signature{R: r, S: s}, nil
}

// Signature is an ECDSA signature.
type Signature struct {
	R, S *big.Int
}

// Bytes returns a fixed-width serialization of the signature.
func (s Signature) Bytes() []byte {
	out := make([]byte, 64)
	s.R.FillBytes(out[:32])
	s.S.FillBytes(out[32:])
	return out
}

// ParseSignature decodes a signature produced by Bytes.
func ParseSignature(b []byte) (Signature, error) {
	if len(b) != 64 {
		return Signature{}, fmt.Errorf("dcrypto: signature must be 64 bytes, got %d", len(b))
	}
	return Signature{
		R: new(big.Int).SetBytes(b[:32]),
		S: new(big.Int).SetBytes(b[32:]),
	}, nil
}

// Verify checks sig over msg against the public key. It returns
// ErrInvalidSignature on mismatch. A signature with nil components — the
// zero Signature, or one JSON-decoded from a hostile wire message — is
// invalid, not a panic: this is the single chokepoint every network-facing
// decode path (gateway.submit, session.open) funnels through.
func (pk PublicKey) Verify(msg []byte, sig Signature) error {
	if pk.X == nil || pk.Y == nil {
		return ErrInvalidPublicKey
	}
	if sig.R == nil || sig.S == nil {
		return ErrInvalidSignature
	}
	pub := ecdsa.PublicKey{Curve: curve(), X: pk.X, Y: pk.Y}
	digest := sha256.Sum256(msg)
	if !ecdsa.Verify(&pub, digest[:], sig.R, sig.S) {
		return ErrInvalidSignature
	}
	return nil
}

// Bytes returns the uncompressed SEC1 encoding of the public key.
func (pk PublicKey) Bytes() []byte {
	if pk.X == nil || pk.Y == nil {
		return nil
	}
	out := make([]byte, 65)
	out[0] = 0x04
	pk.X.FillBytes(out[1:33])
	pk.Y.FillBytes(out[33:])
	return out
}

// ParsePublicKey decodes an uncompressed SEC1 public key.
func ParsePublicKey(b []byte) (PublicKey, error) {
	if len(b) != 65 || b[0] != 0x04 {
		return PublicKey{}, ErrInvalidPublicKey
	}
	x := new(big.Int).SetBytes(b[1:33])
	y := new(big.Int).SetBytes(b[33:])
	if !curve().IsOnCurve(x, y) {
		return PublicKey{}, ErrInvalidPublicKey
	}
	return PublicKey{X: x, Y: y}, nil
}

// Equal reports whether two public keys are identical.
func (pk PublicKey) Equal(other PublicKey) bool {
	if pk.X == nil || other.X == nil {
		return pk.X == other.X && pk.Y == other.Y
	}
	return pk.X.Cmp(other.X) == 0 && pk.Y.Cmp(other.Y) == 0
}

// Address returns a short hex identifier derived from the public key, used
// as the on-ledger address form.
func (pk PublicKey) Address() string {
	sum := sha256.Sum256(pk.Bytes())
	return hex.EncodeToString(sum[:20])
}

// String implements fmt.Stringer.
func (pk PublicKey) String() string { return pk.Address() }

// IsZero reports whether the key is the zero value.
func (pk PublicKey) IsZero() bool { return pk.X == nil && pk.Y == nil }

// Hash returns the SHA-256 digest of data. It is the canonical hash used
// throughout the library for transaction IDs, Merkle leaves, and anchors.
func Hash(data []byte) [32]byte { return sha256.Sum256(data) }

// HashConcat hashes the concatenation of the given byte slices with
// unambiguous length prefixes. The hash state comes from the shared pool
// and the digest is summed into a stack value, so the call itself is
// allocation-free — it sits on the per-request digest path of the gateway.
func HashConcat(parts ...[]byte) [32]byte {
	h := getSHA256()
	var lenbuf [8]byte
	for _, p := range parts {
		putUint64(lenbuf[:], uint64(len(p)))
		h.Write(lenbuf[:])
		h.Write(p)
	}
	var out [32]byte
	h.Sum(out[:0])
	putSHA256(h)
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("read random: %w", err)
	}
	return b, nil
}
