package dcrypto

import (
	"errors"
	"testing"
)

func TestOneTimeKeyChainFreshKeys(t *testing.T) {
	chain, err := NewOneTimeKeyChain([]byte("seed-material-0123456789"))
	if err != nil {
		t.Fatalf("NewOneTimeKeyChain: %v", err)
	}
	k1, err := chain.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	k2, err := chain.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if k1.Equal(k2) {
		t.Fatal("successive one-time keys must differ")
	}
	if chain.Issued() != 2 {
		t.Fatalf("Issued = %d, want 2", chain.Issued())
	}
}

func TestOneTimeKeyChainDeterministic(t *testing.T) {
	seed := []byte("seed-material-0123456789")
	c1, _ := NewOneTimeKeyChain(seed)
	c2, _ := NewOneTimeKeyChain(seed)
	k1, _ := c1.Next()
	k2, _ := c2.Next()
	if !k1.Equal(k2) {
		t.Fatal("same seed must reproduce the same key sequence")
	}
}

func TestOneTimeKeyChainSign(t *testing.T) {
	chain, _ := NewOneTimeKeyChain([]byte("seed-material-0123456789"))
	pub, _ := chain.Next()
	msg := []byte("transfer asset 7")
	sig, err := chain.Sign(pub.Address(), msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestOneTimeKeyChainUnknownKey(t *testing.T) {
	chain, _ := NewOneTimeKeyChain([]byte("seed-material-0123456789"))
	if _, err := chain.Sign("deadbeef", []byte("x")); !errors.Is(err, ErrUnknownOneTimeKey) {
		t.Fatalf("Sign unknown = %v, want ErrUnknownOneTimeKey", err)
	}
}

func TestOneTimeKeyChainShortSeed(t *testing.T) {
	if _, err := NewOneTimeKeyChain([]byte("short")); err == nil {
		t.Fatal("short seed must be rejected")
	}
}

func TestOneTimeKeysUnlinkable(t *testing.T) {
	// Unlinkability here is structural: the public keys share no bytes
	// with the seed or each other. We check pairwise distinctness over a
	// modest sample.
	chain, _ := NewOneTimeKeyChain([]byte("seed-material-0123456789"))
	seen := make(map[string]bool)
	for i := 0; i < 32; i++ {
		k, err := chain.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		addr := k.Address()
		if seen[addr] {
			t.Fatalf("duplicate one-time key at iteration %d", i)
		}
		seen[addr] = true
	}
}
