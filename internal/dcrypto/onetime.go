package dcrypto

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// OneTimeKeyChain manages one-time public keys for a party (§2.1, "One-time
// public keys"): fresh keys are derived per transaction from a secret seed so
// that asset ownership recorded against them cannot be linked to the party's
// long-term identity. The chain owner can re-derive every key it has issued;
// counterparties receive a certificate (see the pki package) linking the
// pseudonymous key to an identity only when they need to verify signatures.
type OneTimeKeyChain struct {
	mu     sync.Mutex
	seed   []byte
	next   int
	issued map[string]*PrivateKey // address -> key
}

// ErrUnknownOneTimeKey is returned when a chain is asked to sign with a key
// it never issued.
var ErrUnknownOneTimeKey = errors.New("dcrypto: unknown one-time key")

// NewOneTimeKeyChain creates a chain from a secret seed. The same seed always
// reproduces the same key sequence.
func NewOneTimeKeyChain(seed []byte) (*OneTimeKeyChain, error) {
	if len(seed) < 16 {
		return nil, errors.New("dcrypto: one-time key seed must be at least 16 bytes")
	}
	s := make([]byte, len(seed))
	copy(s, seed)
	return &OneTimeKeyChain{seed: s, issued: make(map[string]*PrivateKey)}, nil
}

// Next derives and records the next one-time key, returning its public half.
func (c *OneTimeKeyChain) Next() (PublicKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, err := DeriveKey(c.seed, "onetime/"+strconv.Itoa(c.next))
	if err != nil {
		return PublicKey{}, fmt.Errorf("derive one-time key %d: %w", c.next, err)
	}
	c.next++
	pub := key.Public()
	c.issued[pub.Address()] = key
	return pub, nil
}

// Sign signs msg with the one-time key identified by its address. Only the
// chain owner can do this, which is what makes the pseudonym spendable.
func (c *OneTimeKeyChain) Sign(address string, msg []byte) (Signature, error) {
	c.mu.Lock()
	key, ok := c.issued[address]
	c.mu.Unlock()
	if !ok {
		return Signature{}, ErrUnknownOneTimeKey
	}
	return key.Sign(msg)
}

// Owns reports whether the chain issued the given address.
func (c *OneTimeKeyChain) Owns(address string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.issued[address]
	return ok
}

// Issued returns the number of keys handed out so far.
func (c *OneTimeKeyChain) Issued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.issued)
}
