package dcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Errors returned by the symmetric and hybrid encryption helpers.
var (
	// ErrDecrypt is returned when a ciphertext fails authentication or is
	// malformed. The cause is deliberately opaque.
	ErrDecrypt = errors.New("dcrypto: decryption failed")
	// ErrBadKeySize is returned for symmetric keys that are not 32 bytes.
	ErrBadKeySize = errors.New("dcrypto: symmetric key must be 32 bytes")
)

// SymmetricKeySize is the AES-256 key length in bytes.
const SymmetricKeySize = 32

// NewSymmetricKey generates a fresh AES-256 key. The paper's "Symmetric key
// encryption" mechanism (§2.2) encrypts transaction data under a key shared
// between parties via PKI.
func NewSymmetricKey() ([]byte, error) {
	return RandomBytes(SymmetricKeySize)
}

// EncryptSymmetric encrypts plaintext under an AES-256-GCM key. The nonce is
// generated randomly and prepended to the ciphertext. The associated data
// binds the ciphertext to a context (for example a transaction ID) so it
// cannot be replayed elsewhere.
func EncryptSymmetric(key, plaintext, associatedData []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return EncryptWithAEAD(aead, plaintext, associatedData)
}

// NewAEAD builds the AES-256-GCM AEAD for a symmetric key once, so callers
// sealing many payloads under the same key (the encrypt stage's epoch key
// cache) skip the per-call AES key schedule and GCM table setup.
func NewAEAD(key []byte) (cipher.AEAD, error) { return newAEAD(key) }

// EncryptWithAEAD seals like EncryptSymmetric under a prebuilt AEAD: a
// random prepended nonce, a single exactly-sized output allocation.
func EncryptWithAEAD(aead cipher.AEAD, plaintext, associatedData []byte) ([]byte, error) {
	ns := aead.NonceSize()
	out := make([]byte, ns, ns+len(plaintext)+aead.Overhead())
	if _, err := io.ReadFull(rand.Reader, out); err != nil {
		return nil, fmt.Errorf("read random: %w", err)
	}
	return aead.Seal(out, out[:ns], plaintext, associatedData), nil
}

// EncryptSegmentsWithAEAD seals N plaintext segments with a single AEAD
// invocation: the segments are concatenated into one length-prefixed frame
// (uvarint count, then uvarint length + bytes per segment) and sealed in
// place, so a group of N payloads pays one random-nonce read, one GCM pass,
// and one authentication tag instead of N of each. The frame is staged
// directly inside the output buffer and encrypted in place — the whole
// group seal is a single exactly-sized allocation. The middleware batch
// stage's group seal is the intended caller; DecryptSegmentsWithAEAD
// reverses it.
func EncryptSegmentsWithAEAD(aead cipher.AEAD, segments [][]byte, associatedData []byte) ([]byte, error) {
	out := make([]byte, 0, SealedSegmentsSize(aead, segments))
	return AppendEncryptSegmentsWithAEAD(out, aead, segments, associatedData)
}

// SealedSegmentsSize is the exact ciphertext length EncryptSegmentsWithAEAD
// (and its append form) produces for segments under aead: nonce,
// length-prefixed frame, and tag. Callers embedding the ciphertext inside a
// larger buffer size it with this.
func SealedSegmentsSize(aead cipher.AEAD, segments [][]byte) int {
	total := uvarintLen(uint64(len(segments)))
	for _, s := range segments {
		total += uvarintLen(uint64(len(s))) + len(s)
	}
	return aead.NonceSize() + total + aead.Overhead()
}

// AppendEncryptSegmentsWithAEAD seals like EncryptSegmentsWithAEAD but
// appends the ciphertext to dst instead of allocating its own buffer, so a
// caller staging the sealed group inside a larger frame (the binary group
// envelope) pays one allocation for the whole frame rather than a
// ciphertext buffer plus a copy. Give dst SealedSegmentsSize free capacity;
// with less, append reallocates and the fusion benefit is lost, but the
// output bytes are the same.
func AppendEncryptSegmentsWithAEAD(dst []byte, aead cipher.AEAD, segments [][]byte, associatedData []byte) ([]byte, error) {
	ns := aead.NonceSize()
	base := len(dst)
	out := dst
	if base+ns <= cap(dst) {
		out = dst[:base+ns]
	} else {
		out = append(dst, make([]byte, ns)...)
	}
	if _, err := io.ReadFull(rand.Reader, out[base:]); err != nil {
		return nil, fmt.Errorf("read random: %w", err)
	}
	out = binary.AppendUvarint(out, uint64(len(segments)))
	for _, s := range segments {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	// In-place seal: dst resumes exactly where the plaintext starts, which
	// cipher.AEAD documents as the supported exact-overlap form.
	return aead.Seal(out[:base+ns], out[base:base+ns], out[base+ns:], associatedData), nil
}

// DecryptSegmentsWithAEAD reverses EncryptSegmentsWithAEAD, returning the
// plaintext segments. The returned slices alias one decrypted buffer.
func DecryptSegmentsWithAEAD(aead cipher.AEAD, ciphertext, associatedData []byte) ([][]byte, error) {
	ns := aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, ErrDecrypt
	}
	pt, err := aead.Open(nil, ciphertext[:ns], ciphertext[ns:], associatedData)
	if err != nil {
		return nil, ErrDecrypt
	}
	return splitSegments(pt)
}

// DecryptSegments is DecryptSegmentsWithAEAD for callers holding the raw
// symmetric key (envelope recipients, which unwrap the data key per group).
func DecryptSegments(key, ciphertext, associatedData []byte) ([][]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return DecryptSegmentsWithAEAD(aead, ciphertext, associatedData)
}

// splitSegments parses the length-prefixed segment frame. Lengths are
// validated against the remaining buffer, so a malformed frame is a
// rejection, never a panic — although the frame was authenticated, the
// decoder stays defensive.
func splitSegments(pt []byte) ([][]byte, error) {
	count, n := binary.Uvarint(pt)
	if n <= 0 || count > uint64(len(pt)) {
		return nil, ErrDecrypt
	}
	pt = pt[n:]
	out := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(pt)
		if n <= 0 || l > uint64(len(pt)-n) {
			return nil, ErrDecrypt
		}
		out = append(out, pt[n:n+int(l):n+int(l)])
		pt = pt[n+int(l):]
	}
	if len(pt) != 0 {
		return nil, ErrDecrypt
	}
	return out, nil
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecryptSymmetric reverses EncryptSymmetric.
func DecryptSymmetric(key, ciphertext, associatedData []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, body := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, body, associatedData)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != SymmetricKeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("new aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return aead, nil
}

// HybridCiphertext is the result of ECIES-style encryption to a recipient
// public key: an ephemeral public key plus an AES-GCM ciphertext under the
// shared secret. It is how symmetric keys "commonly get shared over the
// network using PKI" (§2.2).
type HybridCiphertext struct {
	EphemeralPub []byte `json:"ephemeralPub"`
	Ciphertext   []byte `json:"ciphertext"`
}

// EncryptHybrid encrypts plaintext to the holder of recipient's private key
// using ephemeral ECDH over P-256 followed by AES-256-GCM.
func EncryptHybrid(recipient PublicKey, plaintext, associatedData []byte) (HybridCiphertext, error) {
	ecdhCurve := ecdh.P256()
	eph, err := ecdhCurve.GenerateKey(rand.Reader)
	if err != nil {
		return HybridCiphertext{}, fmt.Errorf("generate ephemeral key: %w", err)
	}
	recipECDH, err := ecdhCurve.NewPublicKey(recipient.Bytes())
	if err != nil {
		return HybridCiphertext{}, fmt.Errorf("recipient key: %w", ErrInvalidPublicKey)
	}
	shared, err := eph.ECDH(recipECDH)
	if err != nil {
		return HybridCiphertext{}, fmt.Errorf("ecdh: %w", err)
	}
	key := deriveAEADKey(shared, eph.PublicKey().Bytes())
	ct, err := EncryptSymmetric(key, plaintext, associatedData)
	if err != nil {
		return HybridCiphertext{}, err
	}
	return HybridCiphertext{EphemeralPub: eph.PublicKey().Bytes(), Ciphertext: ct}, nil
}

// DecryptHybrid reverses EncryptHybrid with the recipient's private key.
func DecryptHybrid(recipient *PrivateKey, ct HybridCiphertext, associatedData []byte) ([]byte, error) {
	ecdhCurve := ecdh.P256()
	priv, err := ecdhCurve.NewPrivateKey(recipient.key.D.FillBytes(make([]byte, 32)))
	if err != nil {
		return nil, fmt.Errorf("recipient private key: %w", err)
	}
	ephPub, err := ecdhCurve.NewPublicKey(ct.EphemeralPub)
	if err != nil {
		return nil, ErrDecrypt
	}
	shared, err := priv.ECDH(ephPub)
	if err != nil {
		return nil, ErrDecrypt
	}
	key := deriveAEADKey(shared, ct.EphemeralPub)
	return DecryptSymmetric(key, ct.Ciphertext, associatedData)
}

// deriveAEADKey is a single-block HKDF-like expansion binding the shared
// secret to the ephemeral public key.
func deriveAEADKey(shared, ephPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("dltprivacy/ecies/v1"))
	h.Write(shared)
	h.Write(ephPub)
	return h.Sum(nil)
}
