package fabric

import (
	"bytes"
	"errors"
	"strconv"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/ledger"
)

// tradeChaincode records trade lots keyed by id.
func tradeChaincode() contract.Contract {
	return contract.Contract{
		Name:    "trade",
		Version: "1",
		Funcs: map[string]contract.Func{
			"record": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("record: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return []byte("recorded"), nil
			},
			"count": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				raw, err := ctx.Get("count")
				n := 0
				if err == nil {
					n, _ = strconv.Atoi(string(raw))
				}
				ctx.Put("count", []byte(strconv.Itoa(n+1)))
				return nil, nil
			},
		},
	}
}

// newTradeNetwork builds a 4-org network with a 2-member channel.
func newTradeNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, org := range []string{"BankA", "SellerCo", "BuyerInc", "Outsider"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatalf("AddOrg(%s): %v", org, err)
		}
	}
	policy := contract.Policy{Members: []string{"BankA", "SellerCo"}, Threshold: 2}
	if err := n.CreateChannel("trade", []string{"BankA", "SellerCo"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := n.InstallChaincode("trade", tradeChaincode(), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	return n
}

func TestInvokeCommitsOnAllMembers(t *testing.T) {
	n := newTradeNetwork(t)
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("lot-1"), []byte("100 widgets")}, []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if id == "" {
		t.Fatal("empty tx id")
	}
	for _, org := range []string{"BankA", "SellerCo"} {
		got, err := n.Query("trade", org, "lot-1")
		if err != nil {
			t.Fatalf("Query on %s: %v", org, err)
		}
		if !bytes.Equal(got, []byte("100 widgets")) {
			t.Fatalf("Query on %s = %q", org, got)
		}
	}
}

func TestNonMemberCannotQuery(t *testing.T) {
	n := newTradeNetwork(t)
	if _, err := n.Query("trade", "Outsider", "lot-1"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("outsider Query = %v, want ErrNotMember", err)
	}
	if _, err := n.Query("trade", "BuyerInc", "lot-1"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member Query = %v, want ErrNotMember", err)
	}
}

func TestNonMemberCannotInvoke(t *testing.T) {
	n := newTradeNetwork(t)
	_, err := n.Invoke("trade", "Outsider", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA", "SellerCo"})
	if !errors.Is(err, ErrNotMember) {
		t.Fatalf("outsider Invoke = %v, want ErrNotMember", err)
	}
}

func TestChannelMembershipHiddenFromNonMembers(t *testing.T) {
	n := newTradeNetwork(t)
	if _, err := n.Members("trade", "Outsider"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("outsider Members = %v, want ErrNotMember", err)
	}
	members, err := n.Members("trade", "BankA")
	if err != nil {
		t.Fatalf("member Members: %v", err)
	}
	if len(members) != 2 {
		t.Fatalf("Members = %v", members)
	}
	// Orderer operator can see membership (§3.4 caveat).
	if _, err := n.Members("trade", n.OrdererOperator()); err != nil {
		t.Fatalf("orderer Members: %v", err)
	}
}

func TestLeakageMatrix(t *testing.T) {
	n := newTradeNetwork(t)
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("lot-1"), []byte("secret cargo")}, []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	log := n.Log
	// Members and the orderer saw the tx data; nobody else did.
	for _, member := range []string{"BankA", "SellerCo", n.OrdererOperator()} {
		if !log.Saw(member, audit.ClassTxData, id) {
			t.Fatalf("%s must see tx data", member)
		}
	}
	for _, outsider := range []string{"BuyerInc", "Outsider"} {
		if log.Saw(outsider, audit.ClassTxData, id) {
			t.Fatalf("%s must not see tx data", outsider)
		}
		if log.SawAny(outsider, audit.ClassRelationship) {
			t.Fatalf("%s must not see channel relationships", outsider)
		}
	}
}

func TestOrdererSeesEverything(t *testing.T) {
	n := newTradeNetwork(t)
	id, _ := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA", "SellerCo"})
	op := n.OrdererOperator()
	if !n.Log.Saw(op, audit.ClassTxData, id) {
		t.Fatal("orderer must see transaction data (§3.4)")
	}
	if !n.Log.Saw(op, audit.ClassIdentity, "BankA") {
		t.Fatal("orderer must see transacting identities")
	}
}

func TestMemberRunOrdererConfinesLeak(t *testing.T) {
	n, err := NewNetwork(Config{OrdererOperator: "BankA"})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, org := range []string{"BankA", "SellerCo"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	policy := contract.Policy{Members: []string{"BankA", "SellerCo"}, Threshold: 1}
	if err := n.CreateChannel("trade", []string{"BankA", "SellerCo"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := n.InstallChaincode("trade", tradeChaincode(), []string{"BankA"}); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// The "orderer" leak is now confined to a channel member: no
	// principal outside the channel saw anything.
	observers := n.Log.Observers(audit.ClassTxData, id)
	for _, o := range observers {
		if o != "BankA" && o != "SellerCo" {
			t.Fatalf("unexpected observer %q with member-run orderer", o)
		}
	}
}

func TestEndorsementPolicyEnforced(t *testing.T) {
	n := newTradeNetwork(t)
	// Only one endorsement where the policy needs two.
	_, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA"})
	if !errors.Is(err, contract.ErrPolicyUnsatisfied) {
		t.Fatalf("single endorsement = %v, want ErrPolicyUnsatisfied", err)
	}
}

func TestChaincodeConfinedToInstalledPeers(t *testing.T) {
	n := newTradeNetwork(t)
	if !n.ChaincodeInstalledOn("BankA", "trade") {
		t.Fatal("chaincode must be installed on BankA")
	}
	if n.ChaincodeInstalledOn("BuyerInc", "trade") {
		t.Fatal("chaincode must not be on BuyerInc")
	}
	// Logic observation is confined to installed peers.
	if n.Log.SawAny("peer-BuyerInc", audit.ClassBusinessLogic) {
		t.Fatal("uninvolved peer observed business logic")
	}
	if !n.Log.Saw("peer-BankA", audit.ClassBusinessLogic, "trade") {
		t.Fatal("installed peer must have the logic")
	}
}

func TestEndorserWithoutChaincodeFails(t *testing.T) {
	n := newTradeNetwork(t)
	// BuyerInc joins the channel but has no chaincode; endorsing through
	// it must fail.
	policy := contract.Policy{Members: []string{"BankA", "BuyerInc"}, Threshold: 1}
	if err := n.CreateChannel("trade2", []string{"BankA", "BuyerInc"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := n.InstallChaincode("trade2", tradeChaincode(), []string{"BankA"}); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	_, err := n.Invoke("trade2", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BuyerInc"})
	if !errors.Is(err, ErrEndorsementFailed) {
		t.Fatalf("endorsement without chaincode = %v, want ErrEndorsementFailed", err)
	}
}

func TestSeparateChannelsSeparateState(t *testing.T) {
	n := newTradeNetwork(t)
	policy := contract.Policy{Members: []string{"BankA", "BuyerInc"}, Threshold: 2}
	if err := n.CreateChannel("finance", []string{"BankA", "BuyerInc"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := n.InstallChaincode("finance", tradeChaincode(), []string{"BankA", "BuyerInc"}); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	if _, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("shared-key"), []byte("trade-value")}, []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Invoke trade: %v", err)
	}
	// The same key is absent on the other channel.
	if _, err := n.Query("finance", "BankA", "shared-key"); !errors.Is(err, ledger.ErrNotFound) {
		t.Fatalf("cross-channel Query = %v, want ErrNotFound", err)
	}
	// SellerCo is not on finance at all.
	if _, err := n.Query("finance", "SellerCo", "shared-key"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("SellerCo on finance = %v, want ErrNotMember", err)
	}
}

func TestPrivateDataCollection(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, org := range []string{"BankA", "SellerCo", "BuyerInc"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	policy := contract.Policy{Members: []string{"BankA", "SellerCo", "BuyerInc"}, Threshold: 1}
	if err := n.CreateChannel("trade", []string{"BankA", "SellerCo", "BuyerInc"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := n.CreateCollection("trade", "pricing", []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("CreateCollection: %v", err)
	}
	id, err := n.PutPrivate("trade", "pricing", "BankA", "deal-1", []byte("unit price 4.20"))
	if err != nil {
		t.Fatalf("PutPrivate: %v", err)
	}
	// Collection members read the data.
	got, err := n.GetPrivate("trade", "pricing", "SellerCo", "deal-1")
	if err != nil || string(got) != "unit price 4.20" {
		t.Fatalf("GetPrivate = %q, %v", got, err)
	}
	// Channel member outside the collection cannot.
	if _, err := n.GetPrivate("trade", "pricing", "BuyerInc", "deal-1"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-collection GetPrivate = %v, want ErrNotMember", err)
	}
	// But it CAN see the hash and the collection member list — the §5
	// caveat: "members of PDCs are listed in associated transactions".
	if !n.Log.Saw("BuyerInc", audit.ClassTxHash, id) {
		t.Fatal("channel member must see the private-data hash tx")
	}
	if !n.Log.Saw("BuyerInc", audit.ClassRelationship, "pdc:pricing:BankA,SellerCo") {
		t.Fatal("channel member must see the collection member list (documented leak)")
	}
	// And never the payload.
	if n.Log.Saw("BuyerInc", audit.ClassTxData, id) {
		t.Fatal("channel member outside collection must not see payload")
	}
	// Provenance verification against the on-chain anchor.
	if err := n.VerifyPrivate("trade", "pricing", "SellerCo", "deal-1", got); err != nil {
		t.Fatalf("VerifyPrivate: %v", err)
	}
	if err := n.VerifyPrivate("trade", "pricing", "SellerCo", "deal-1", []byte("forged")); err == nil {
		t.Fatal("forged private data must fail anchor verification")
	}
}

func TestCollectionRequiresChannelMembers(t *testing.T) {
	n := newTradeNetwork(t)
	if err := n.CreateCollection("trade", "c", []string{"BankA", "Outsider"}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("CreateCollection with outsider = %v, want ErrNotMember", err)
	}
	if _, err := n.PutPrivate("trade", "ghost", "BankA", "k", nil); !errors.Is(err, ErrUnknownCollection) {
		t.Fatalf("PutPrivate unknown collection = %v, want ErrUnknownCollection", err)
	}
}

func TestAnonymousInvoke(t *testing.T) {
	n := newTradeNetwork(t)
	writes := []ledger.Write{{Key: "anon-1", Value: []byte("posted")}}
	id, nym, err := n.AnonymousInvoke("trade", "SellerCo", writes)
	if err != nil {
		t.Fatalf("AnonymousInvoke: %v", err)
	}
	// Committed state visible to members.
	got, err := n.Query("trade", "BankA", "anon-1")
	if err != nil || string(got) != "posted" {
		t.Fatalf("Query = %q, %v", got, err)
	}
	// The orderer saw a pseudonym, not the enrollment identity.
	op := n.OrdererOperator()
	if !n.Log.Saw(op, audit.ClassIdentity, nym) {
		t.Fatal("orderer must see the pseudonym as creator")
	}
	ids := n.Log.ItemsSeen(op, audit.ClassIdentity)
	for _, seen := range ids {
		if seen == "SellerCo" {
			// SellerCo appears from channel creation; assert the
			// anonymous tx itself did not link: the tx creator
			// identity recorded for this tx is the nym.
			continue
		}
	}
	if n.Log.Saw(op, audit.ClassTxData, id) != true {
		t.Fatal("orderer still sees tx data under idemix (identity, not data, is protected)")
	}
	// Same org, same channel: pseudonym is stable (scope-exclusive).
	_, nym2, err := n.AnonymousInvoke("trade", "SellerCo", []ledger.Write{{Key: "anon-2", Value: []byte("x")}})
	if err != nil {
		t.Fatalf("AnonymousInvoke: %v", err)
	}
	if nym != nym2 {
		t.Fatal("same-channel pseudonyms must match (scope-exclusive)")
	}
}

func TestReplicasStayConsistent(t *testing.T) {
	n := newTradeNetwork(t)
	for i := 0; i < 5; i++ {
		if _, err := n.Invoke("trade", "BankA", "trade", "count", nil,
			[]string{"BankA", "SellerCo"}); err != nil {
			t.Fatalf("Invoke %d: %v", i, err)
		}
	}
	h1, _ := n.Height("trade", "BankA")
	h2, _ := n.Height("trade", "SellerCo")
	if h1 != 5 || h2 != 5 {
		t.Fatalf("heights = %d, %d; want 5, 5", h1, h2)
	}
	v1, _ := n.Query("trade", "BankA", "count")
	v2, _ := n.Query("trade", "SellerCo", "count")
	if string(v1) != "5" || string(v2) != "5" {
		t.Fatalf("counts = %q, %q; want 5", v1, v2)
	}
}

func TestDuplicateOrgAndChannel(t *testing.T) {
	n := newTradeNetwork(t)
	if _, err := n.AddOrg("BankA"); err == nil {
		t.Fatal("duplicate org must fail")
	}
	if err := n.CreateChannel("trade", []string{"BankA"}, contract.Policy{}); err == nil {
		t.Fatal("duplicate channel must fail")
	}
	if err := n.CreateChannel("x", []string{"Nobody"}, contract.Policy{}); !errors.Is(err, ErrUnknownOrg) {
		t.Fatalf("channel with unknown org = %v, want ErrUnknownOrg", err)
	}
}
