package fabric

import (
	"errors"
	"testing"

	"dltprivacy/internal/audit"
)

func TestPublishAndVerifyReceipt(t *testing.T) {
	n := newTradeNetwork(t)
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("lot-1"), []byte("secret")}, []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if err := n.PublishReceipt("trade", "BankA", id); err != nil {
		t.Fatalf("PublishReceipt: %v", err)
	}
	// Any party told (channel, txID) can verify existence…
	if err := n.VerifyReceipt("trade", id); err != nil {
		t.Fatalf("VerifyReceipt: %v", err)
	}
	// …while an unpublished or wrong reference fails.
	if err := n.VerifyReceipt("trade", "other-tx"); !errors.Is(err, ErrNoReceipt) {
		t.Fatalf("VerifyReceipt other = %v, want ErrNoReceipt", err)
	}
	if err := n.VerifyReceipt("wrong-channel", id); !errors.Is(err, ErrNoReceipt) {
		t.Fatalf("VerifyReceipt wrong channel = %v, want ErrNoReceipt", err)
	}
}

func TestReceiptLeaksOnlyHash(t *testing.T) {
	n := newTradeNetwork(t)
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("lot-1"), []byte("secret")}, []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if err := n.PublishReceipt("trade", "BankA", id); err != nil {
		t.Fatalf("PublishReceipt: %v", err)
	}
	// Outsiders gained a hash-class observation and nothing else.
	if !n.Log.SawAny("Outsider", audit.ClassTxHash) {
		t.Fatal("outsider must see the receipt hash on the shared ledger")
	}
	if n.Log.Saw("Outsider", audit.ClassTxData, id) {
		t.Fatal("receipt must not reveal transaction data")
	}
	if n.Log.SawAny("Outsider", audit.ClassRelationship) {
		t.Fatal("receipt must not reveal relationships")
	}
}

func TestPublishReceiptRequiresMembership(t *testing.T) {
	n := newTradeNetwork(t)
	if err := n.PublishReceipt("trade", "Outsider", "tx"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("outsider publish = %v, want ErrNotMember", err)
	}
	if err := n.PublishReceipt("ghost", "BankA", "tx"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("unknown channel publish = %v, want ErrUnknownChannel", err)
	}
}

func TestJoinChannelCatchUp(t *testing.T) {
	n := newTradeNetwork(t)
	// Commit history before the join.
	for _, key := range []string{"a", "b", "c"} {
		if _, err := n.Invoke("trade", "BankA", "trade", "record",
			[][]byte{[]byte(key), []byte("v-" + key)}, []string{"BankA", "SellerCo"}); err != nil {
			t.Fatalf("Invoke(%s): %v", key, err)
		}
	}
	if err := n.JoinChannel("trade", "BuyerInc"); err != nil {
		t.Fatalf("JoinChannel: %v", err)
	}
	// The new member replayed history…
	for _, key := range []string{"a", "b", "c"} {
		got, err := n.Query("trade", "BuyerInc", key)
		if err != nil || string(got) != "v-"+key {
			t.Fatalf("Query(%s) by joiner = %q, %v", key, got, err)
		}
	}
	h, err := n.Height("trade", "BuyerInc")
	if err != nil || h != 3 {
		t.Fatalf("joiner height = %d, %v; want 3", h, err)
	}
	// …and receives future blocks.
	if _, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("d"), []byte("v-d")}, []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Invoke after join: %v", err)
	}
	got, err := n.Query("trade", "BuyerInc", "d")
	if err != nil || string(got) != "v-d" {
		t.Fatalf("post-join Query = %q, %v", got, err)
	}
}

func TestJoinChannelRecordsHistoricalObservations(t *testing.T) {
	n := newTradeNetwork(t)
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if n.Log.Saw("BuyerInc", audit.ClassTxData, id) {
		t.Fatal("pre-join, BuyerInc must not see the tx")
	}
	if err := n.JoinChannel("trade", "BuyerInc"); err != nil {
		t.Fatalf("JoinChannel: %v", err)
	}
	// Joining a channel reveals its full history: the audit log is honest
	// about that.
	if !n.Log.Saw("BuyerInc", audit.ClassTxData, id) {
		t.Fatal("post-join, the replayed history is an observation")
	}
}

func TestJoinChannelErrors(t *testing.T) {
	n := newTradeNetwork(t)
	if err := n.JoinChannel("trade", "BankA"); !errors.Is(err, ErrAlreadyMember) {
		t.Fatalf("rejoin = %v, want ErrAlreadyMember", err)
	}
	if err := n.JoinChannel("ghost", "BuyerInc"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("join ghost = %v, want ErrUnknownChannel", err)
	}
	if err := n.JoinChannel("trade", "Nobody"); !errors.Is(err, ErrUnknownOrg) {
		t.Fatalf("join by unknown org = %v, want ErrUnknownOrg", err)
	}
}

func TestJoinedMemberCanTransact(t *testing.T) {
	n := newTradeNetwork(t)
	if err := n.JoinChannel("trade", "BuyerInc"); err != nil {
		t.Fatalf("JoinChannel: %v", err)
	}
	if err := n.InstallChaincode("trade", tradeChaincode(), []string{"BuyerInc"}); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	// Channel policy demands BankA+SellerCo endorsements; the joiner
	// creates, the original members endorse.
	if _, err := n.Invoke("trade", "BuyerInc", "trade", "record",
		[][]byte{[]byte("from-joiner"), []byte("v")}, []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Invoke by joiner: %v", err)
	}
	got, err := n.Query("trade", "BankA", "from-joiner")
	if err != nil || string(got) != "v" {
		t.Fatalf("Query = %q, %v", got, err)
	}
}
