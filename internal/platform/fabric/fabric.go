// Package fabric models Hyperledger Fabric's privacy and confidentiality
// architecture as described in §5 of the paper: channels as the primary
// separation-of-ledgers mechanism, chaincode visible only where installed,
// an ordering service with full visibility of channel membership and
// transactions (the §3.4 caveat), Private Data Collections that keep
// payloads off-chain but list collection members in transactions, and
// Idemix-style anonymous credentials for privacy of parties within a
// channel.
//
// The model is in-process and synchronous; every information flow is
// recorded in the audit log so experiments can verify exactly who saw what.
package fabric

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/offchain"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
)

// Errors returned by the Fabric model.
var (
	// ErrNotMember is returned when a non-member touches a channel.
	ErrNotMember = errors.New("fabric: organization is not a channel member")
	// ErrUnknownOrg is returned for unregistered organizations.
	ErrUnknownOrg = errors.New("fabric: unknown organization")
	// ErrUnknownChannel is returned for unknown channels.
	ErrUnknownChannel = errors.New("fabric: unknown channel")
	// ErrUnknownCollection is returned for unknown private data
	// collections.
	ErrUnknownCollection = errors.New("fabric: unknown private data collection")
	// ErrEndorsementFailed is returned when endorsing peers reject a
	// proposal.
	ErrEndorsementFailed = errors.New("fabric: endorsement failed")
	// ErrBadPresentation is returned when an Idemix presentation does not
	// verify.
	ErrBadPresentation = errors.New("fabric: invalid anonymous credential presentation")
)

// memberAttr is the attribute set certified for channel clients using
// Idemix-style anonymous transactions.
var memberAttr = []string{"role=member"}

// Org is a network organization running one peer.
type Org struct {
	Name string

	key    *dcrypto.PrivateKey
	cert   pki.Certificate
	wallet *anoncred.Wallet

	mu      sync.Mutex
	ledgers map[string]*ledger.Ledger // channel -> replica
	pdc     map[string]*offchain.Store
}

// Sign signs a digest with the org's enrollment key (satisfies the
// ledger.Transaction endorsement interface).
func (o *Org) Sign(msg []byte) (dcrypto.Signature, error) { return o.key.Sign(msg) }

// Public returns the org's enrollment public key.
func (o *Org) Public() dcrypto.PublicKey { return o.key.Public() }

// channel is the Fabric separation-of-ledgers unit.
type channel struct {
	name    string
	members map[string]bool
	policy  contract.Policy
	// collections maps collection name -> member set.
	collections map[string]map[string]bool
	// history archives committed blocks so late joiners can catch up.
	history []ledger.Block
}

// Network is a Fabric-model network.
type Network struct {
	Log *audit.Log

	ca        *pki.CA
	idemix    *anoncred.Issuer
	orderer   ordering.Backend
	chaincode *contract.Registry

	mu       sync.Mutex
	orgs     map[string]*Org
	channels map[string]*channel
	receipts *ledger.Ledger
}

// Config controls network construction.
type Config struct {
	// OrdererOperator names the principal running the solo ordering
	// service; the paper's mitigation is channel members running it
	// themselves.
	OrdererOperator string
	// OrdererCluster, when set (>= 3 members), replaces the solo service
	// with a member-run replicated ordering cluster (one per channel):
	// the full §3.4 mitigation with crash fault tolerance.
	OrdererCluster []string
	// BatchSize is transactions per block.
	BatchSize int
}

// NewNetwork creates a Fabric-model network with a CA, an Idemix issuer, and
// a solo ordering service with full visibility (the Fabric architecture).
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.OrdererOperator == "" {
		cfg.OrdererOperator = "orderer-org"
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	ca, err := pki.NewCA("fabric-ca")
	if err != nil {
		return nil, fmt.Errorf("fabric ca: %w", err)
	}
	log := audit.NewLog()
	idemix := anoncred.NewIssuer("fabric-idemix")
	if _, err := idemix.RegisterAttributeSet(memberAttr); err != nil {
		return nil, fmt.Errorf("register idemix attrs: %w", err)
	}
	var backend ordering.Backend
	if len(cfg.OrdererCluster) > 0 {
		cs, err := ordering.NewClusterSet(cfg.OrdererCluster, ordering.VisibilityFull,
			ordering.WithSetAudit(log), ordering.WithSetBatch(cfg.BatchSize))
		if err != nil {
			return nil, fmt.Errorf("ordering cluster: %w", err)
		}
		backend = cs
	} else {
		backend = ordering.New(cfg.OrdererOperator, ordering.VisibilityFull,
			ordering.WithAuditLog(log), ordering.WithBatchSize(cfg.BatchSize))
	}
	return &Network{
		Log:       log,
		ca:        ca,
		idemix:    idemix,
		orderer:   backend,
		chaincode: contract.NewRegistry(log),
		orgs:      make(map[string]*Org),
		channels:  make(map[string]*channel),
	}, nil
}

// OrdererOperator returns the first principal operating the ordering
// service (the only one for a solo service).
func (n *Network) OrdererOperator() string { return n.orderer.Operators()[0] }

// OrdererOperators returns every principal operating the ordering service.
func (n *Network) OrdererOperators() []string { return n.orderer.Operators() }

// OrderingCluster exposes the replicated cluster for a channel when the
// network was configured with OrdererCluster, for fault injection.
func (n *Network) OrderingCluster(channel string) (*ordering.Cluster, error) {
	cs, ok := n.orderer.(*ordering.ClusterSet)
	if !ok {
		return nil, errors.New("fabric: network uses a solo ordering service")
	}
	return cs.Cluster(channel)
}

// AddOrg enrolls an organization with the CA and creates its peer.
func (n *Network) AddOrg(name string) (*Org, error) {
	key, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("org key: %w", err)
	}
	cert, err := n.ca.Enroll(name, key.Public())
	if err != nil {
		return nil, fmt.Errorf("enroll %s: %w", name, err)
	}
	wallet, err := anoncred.NewWallet()
	if err != nil {
		return nil, fmt.Errorf("wallet for %s: %w", name, err)
	}
	if err := wallet.RequestTokens(n.idemix, memberAttr, 16); err != nil {
		return nil, fmt.Errorf("idemix tokens for %s: %w", name, err)
	}
	org := &Org{
		Name:    name,
		key:     key,
		cert:    cert,
		wallet:  wallet,
		ledgers: make(map[string]*ledger.Ledger),
		pdc:     make(map[string]*offchain.Store),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.orgs[name]; ok {
		return nil, fmt.Errorf("fabric: organization %q already exists", name)
	}
	n.orgs[name] = org
	return org, nil
}

// Org returns a registered organization.
func (n *Network) Org(name string) (*Org, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	o, ok := n.orgs[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownOrg)
	}
	return o, nil
}

// CreateChannel establishes a separate ledger for the member set. Channel
// membership is revealed to members (who must know each other) and to the
// ordering service operator — and to nobody else.
func (n *Network) CreateChannel(name string, members []string, policy contract.Policy) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.channels[name]; ok {
		return fmt.Errorf("fabric: channel %q already exists", name)
	}
	memberSet := make(map[string]bool, len(members))
	for _, m := range members {
		org, ok := n.orgs[m]
		if !ok {
			return fmt.Errorf("%q: %w", m, ErrUnknownOrg)
		}
		memberSet[m] = true
		replica := ledger.New(name)
		org.mu.Lock()
		org.ledgers[name] = replica
		org.mu.Unlock()
		n.orderer.Subscribe(name, replica.Append)
	}
	ch := &channel{
		name:        name,
		members:     memberSet,
		policy:      policy,
		collections: make(map[string]map[string]bool),
	}
	n.channels[name] = ch
	// Archive committed blocks after all replicas accept them, so late
	// joiners can replay history (see JoinChannel).
	n.orderer.Subscribe(name, func(b ledger.Block) error {
		n.mu.Lock()
		ch.history = append(ch.history, b)
		n.mu.Unlock()
		return nil
	})
	// Members learn each other's identity and the relationship; the
	// orderer operator learns membership through channel configuration.
	for m := range memberSet {
		for other := range memberSet {
			n.Log.Record(m, audit.ClassIdentity, other)
		}
		n.Log.Record(m, audit.ClassRelationship, relationshipItem(name, members))
		for _, op := range n.orderer.Operators() {
			n.Log.Record(op, audit.ClassIdentity, m)
		}
	}
	for _, op := range n.orderer.Operators() {
		n.Log.Record(op, audit.ClassRelationship, relationshipItem(name, members))
	}
	return nil
}

func relationshipItem(channel string, members []string) string {
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	return "channel:" + channel + ":" + strings.Join(sorted, ",")
}

func (n *Network) channelOf(name string) (*channel, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.channels[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownChannel)
	}
	return ch, nil
}

// Members returns a channel's member set, visible only to members and the
// orderer operator.
func (n *Network) Members(channelName, requester string) ([]string, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return nil, err
	}
	isOperator := false
	for _, op := range n.orderer.Operators() {
		if requester == op {
			isOperator = true
		}
	}
	if !ch.members[requester] && !isOperator {
		return nil, fmt.Errorf("%q on %q: %w", requester, channelName, ErrNotMember)
	}
	out := make([]string, 0, len(ch.members))
	for m := range ch.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// InstallChaincode installs a contract on the peers of the named orgs only;
// other peers never see the logic (§5: "only peers that have the chaincode
// installed are able to view the chaincode").
func (n *Network) InstallChaincode(channelName string, c contract.Contract, orgNames []string) error {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return err
	}
	for _, name := range orgNames {
		if !ch.members[name] {
			return fmt.Errorf("install on %q: %w", name, ErrNotMember)
		}
		if err := n.chaincode.Install(peerID(name), c); err != nil {
			return fmt.Errorf("install chaincode: %w", err)
		}
	}
	return nil
}

func peerID(org string) string { return "peer-" + org }

// ChaincodeInstalledOn reports whether an org's peer holds the contract.
func (n *Network) ChaincodeInstalledOn(org, name string) bool {
	return n.chaincode.Installed(peerID(org), name)
}

// stateView adapts a channel replica to contract.StateView.
type stateView struct{ l *ledger.Ledger }

func (v stateView) Get(key string) ([]byte, error) {
	vv, err := v.l.Get(key)
	if err != nil {
		return nil, err
	}
	return vv.Value, nil
}

// Invoke runs the full Fabric transaction flow: the creator proposes,
// endorsing peers execute the chaincode and endorse, the orderer orders (and
// observes), and every member peer validates and commits.
func (n *Network) Invoke(channelName, creatorOrg, chaincodeName, fn string, args [][]byte, endorsers []string) (string, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return "", err
	}
	if !ch.members[creatorOrg] {
		return "", fmt.Errorf("%q on %q: %w", creatorOrg, channelName, ErrNotMember)
	}
	creator, err := n.Org(creatorOrg)
	if err != nil {
		return "", err
	}

	// Endorsement phase: each endorsing peer executes the proposal
	// against its current state and must produce the same write set.
	var writes []ledger.Write
	var output []byte
	for i, e := range endorsers {
		if !ch.members[e] {
			return "", fmt.Errorf("endorser %q: %w", e, ErrNotMember)
		}
		org, err := n.Org(e)
		if err != nil {
			return "", err
		}
		org.mu.Lock()
		replica := org.ledgers[channelName]
		org.mu.Unlock()
		out, w, err := n.chaincode.Invoke(peerID(e), chaincodeName, fn, args, channelName, creatorOrg, stateView{replica})
		if err != nil {
			return "", fmt.Errorf("%w: peer %s: %v", ErrEndorsementFailed, e, err)
		}
		// Endorsers see the proposal content.
		n.Log.Record(e, audit.ClassTxData, proposalItem(channelName, chaincodeName, fn))
		if i == 0 {
			writes, output = w, out
			continue
		}
		if !writesEqual(writes, w) {
			return "", fmt.Errorf("%w: divergent write sets between endorsers", ErrEndorsementFailed)
		}
	}
	_ = output

	tx := ledger.Transaction{
		Channel:   channelName,
		Creator:   creatorOrg,
		Contract:  chaincodeName,
		Payload:   flattenArgs(fn, args),
		Writes:    writes,
		Timestamp: time.Now().UTC(),
	}
	if err := tx.Endorse(creatorOrg, creator); err != nil {
		return "", err
	}
	for _, e := range endorsers {
		if e == creatorOrg {
			continue
		}
		org, _ := n.Org(e)
		if err := tx.Endorse(e, org); err != nil {
			return "", err
		}
	}
	if err := ch.policy.Evaluate(tx); err != nil {
		return "", err
	}
	id := tx.ID()
	// Commit phase: ordering service sees everything (full visibility),
	// then member peers validate and apply. Members observe the tx data.
	if err := n.orderer.Submit(tx); err != nil {
		return "", fmt.Errorf("order tx %s: %w", id, err)
	}
	for m := range ch.members {
		n.Log.Record(m, audit.ClassTxData, id)
		n.Log.Record(m, audit.ClassIdentity, creatorOrg)
	}
	return id, nil
}

func proposalItem(channel, chaincode, fn string) string {
	return "proposal:" + channel + ":" + chaincode + ":" + fn
}

func flattenArgs(fn string, args [][]byte) []byte {
	parts := make([][]byte, 0, len(args)+1)
	parts = append(parts, []byte(fn))
	parts = append(parts, args...)
	sum := dcrypto.HashConcat(parts...)
	out := append([]byte("invoke:"+fn+":"), sum[:8]...)
	return out
}

func writesEqual(a, b []ledger.Write) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Delete != b[i].Delete || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

// Query reads a key from a channel replica; only members can.
func (n *Network) Query(channelName, org, key string) ([]byte, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return nil, err
	}
	if !ch.members[org] {
		return nil, fmt.Errorf("%q on %q: %w", org, channelName, ErrNotMember)
	}
	o, err := n.Org(org)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	replica := o.ledgers[channelName]
	o.mu.Unlock()
	v, err := replica.Get(key)
	if err != nil {
		return nil, err
	}
	return v.Value, nil
}

// QueryPrefix returns all channel state entries under a key prefix; only
// members can scan.
func (n *Network) QueryPrefix(channelName, org, prefix string) (map[string][]byte, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return nil, err
	}
	if !ch.members[org] {
		return nil, fmt.Errorf("%q on %q: %w", org, channelName, ErrNotMember)
	}
	o, err := n.Org(org)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	replica := o.ledgers[channelName]
	o.mu.Unlock()
	return replica.GetByPrefix(prefix), nil
}

// Height returns an org's replica height for a channel.
func (n *Network) Height(channelName, org string) (uint64, error) {
	o, err := n.Org(org)
	if err != nil {
		return 0, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	replica, ok := o.ledgers[channelName]
	if !ok {
		return 0, fmt.Errorf("%q on %q: %w", org, channelName, ErrNotMember)
	}
	return replica.Height(), nil
}

// AnonymousInvoke submits a transaction whose creator is an Idemix
// pseudonym: endorsing happens with the anonymous credential, so neither the
// peers nor the ordering service learn the client's enrollment identity (§5:
// "Fabric provides privacy of parties with Idemix").
func (n *Network) AnonymousInvoke(channelName, creatorOrg string, writes []ledger.Write) (string, string, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return "", "", err
	}
	if !ch.members[creatorOrg] {
		return "", "", fmt.Errorf("%q on %q: %w", creatorOrg, channelName, ErrNotMember)
	}
	org, err := n.Org(creatorOrg)
	if err != nil {
		return "", "", err
	}
	pres, err := org.wallet.Present(memberAttr, "channel:"+channelName)
	if err != nil {
		return "", "", fmt.Errorf("idemix presentation: %w", err)
	}
	attrKey, err := n.idemix.AttributeKey(memberAttr)
	if err != nil {
		return "", "", err
	}
	if err := anoncred.VerifyPresentation(pres, attrKey); err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrBadPresentation, err)
	}
	nym := "idemix:" + pres.NymString()
	// The transaction carries the pseudonym, never the identity. A fresh
	// signing key stands in for the pseudonymous signature.
	anonKey, err := dcrypto.GenerateKey()
	if err != nil {
		return "", "", err
	}
	tx := ledger.Transaction{
		Channel:   channelName,
		Creator:   nym,
		Payload:   []byte("anonymous"),
		Writes:    writes,
		Timestamp: time.Now().UTC(),
	}
	if err := tx.Endorse(nym, anonSigner{anonKey}); err != nil {
		return "", "", err
	}
	id := tx.ID()
	if err := n.orderer.Submit(tx); err != nil {
		return "", "", fmt.Errorf("order anonymous tx: %w", err)
	}
	for m := range ch.members {
		n.Log.Record(m, audit.ClassTxData, id)
	}
	return id, nym, nil
}

// anonSigner adapts a throwaway key to the endorsement interface.
type anonSigner struct{ key *dcrypto.PrivateKey }

func (s anonSigner) Sign(msg []byte) (dcrypto.Signature, error) { return s.key.Sign(msg) }
func (s anonSigner) Public() dcrypto.PublicKey                  { return s.key.Public() }

// CreateCollection defines a Private Data Collection within a channel: the
// named members hold the private data off-chain; transactions reference it
// by hash and list the collection members (the §5 caveat).
func (n *Network) CreateCollection(channelName, collection string, members []string) error {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return err
	}
	memberSet := make(map[string]bool, len(members))
	for _, m := range members {
		if !ch.members[m] {
			return fmt.Errorf("collection member %q: %w", m, ErrNotMember)
		}
		memberSet[m] = true
	}
	n.mu.Lock()
	ch.collections[collection] = memberSet
	n.mu.Unlock()
	for _, m := range members {
		org, err := n.Org(m)
		if err != nil {
			return err
		}
		org.mu.Lock()
		org.pdc[collection] = offchain.NewStore(peerID(m), members, offchain.WithAuditLog(n.Log))
		org.mu.Unlock()
	}
	return nil
}

// PutPrivate writes private data into a collection: the payload goes to the
// off-chain stores of collection members, while the channel transaction
// carries only the hash — plus the collection member list, which every
// channel member can read (the documented PDC privacy limitation).
func (n *Network) PutPrivate(channelName, collection, org, key string, value []byte) (string, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return "", err
	}
	collMembers, ok := ch.collections[collection]
	if !ok {
		return "", fmt.Errorf("%q: %w", collection, ErrUnknownCollection)
	}
	if !collMembers[org] {
		return "", fmt.Errorf("%q in %q: %w", org, collection, ErrNotMember)
	}
	var anchor offchain.Anchor
	memberNames := make([]string, 0, len(collMembers))
	for m := range collMembers {
		memberNames = append(memberNames, m)
		o, err := n.Org(m)
		if err != nil {
			return "", err
		}
		o.mu.Lock()
		store := o.pdc[collection]
		o.mu.Unlock()
		a, err := store.Put(key, value)
		if err != nil {
			return "", fmt.Errorf("distribute private data: %w", err)
		}
		anchor = a
	}
	sort.Strings(memberNames)
	creator, err := n.Org(org)
	if err != nil {
		return "", err
	}
	tx := ledger.Transaction{
		Channel:  channelName,
		Creator:  org,
		Contract: "pdc",
		Payload:  []byte("pdc-hash:" + hex.EncodeToString(anchor[:])),
		Meta: map[string]string{
			"collection":        collection,
			"collectionMembers": strings.Join(memberNames, ","),
			"key":               key,
		},
		Writes: []ledger.Write{{
			Key:   "pdc/" + collection + "/" + key,
			Value: anchor[:],
		}},
		Timestamp: time.Now().UTC(),
	}
	if err := tx.Endorse(org, creator); err != nil {
		return "", err
	}
	id := tx.ID()
	if err := n.orderer.Submit(tx); err != nil {
		return "", fmt.Errorf("order pdc tx: %w", err)
	}
	// Every channel member sees the hash and the collection member list.
	for m := range ch.members {
		n.Log.Record(m, audit.ClassTxHash, id)
		n.Log.Record(m, audit.ClassRelationship, "pdc:"+collection+":"+strings.Join(memberNames, ","))
	}
	return id, nil
}

// GetPrivate reads private data from a collection member's store.
func (n *Network) GetPrivate(channelName, collection, org, key string) ([]byte, error) {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return nil, err
	}
	collMembers, ok := ch.collections[collection]
	if !ok {
		return nil, fmt.Errorf("%q: %w", collection, ErrUnknownCollection)
	}
	if !collMembers[org] {
		return nil, fmt.Errorf("%q in %q: %w", org, collection, ErrNotMember)
	}
	o, err := n.Org(org)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	store := o.pdc[collection]
	o.mu.Unlock()
	return store.Get(key, org)
}

// VerifyPrivate checks private data against its on-chain anchor, available
// to any channel member holding the data.
func (n *Network) VerifyPrivate(channelName, collection, org, key string, value []byte) error {
	anchorBytes, err := n.Query(channelName, org, "pdc/"+collection+"/"+key)
	if err != nil {
		return err
	}
	var anchor offchain.Anchor
	copy(anchor[:], anchorBytes)
	return offchain.VerifyAnchor(value, anchor)
}
