package fabric

import (
	"errors"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/ordering"
)

// newClusterNetwork builds a network whose ordering service is a replicated
// cluster run by the three channel members — the full §3.4 mitigation.
func newClusterNetwork(t *testing.T) *Network {
	t.Helper()
	members := []string{"BankA", "SellerCo", "BuyerInc"}
	n, err := NewNetwork(Config{OrdererCluster: members})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, org := range append(members, "Outsider") {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatalf("AddOrg(%s): %v", org, err)
		}
	}
	policy := contract.Policy{Members: members, Threshold: 1}
	if err := n.CreateChannel("trade", members, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := n.InstallChaincode("trade", tradeChaincode(), []string{"BankA"}); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	return n
}

func TestClusterBackedNetworkCommits(t *testing.T) {
	n := newClusterNetwork(t)
	if _, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA"}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	for _, org := range []string{"BankA", "SellerCo", "BuyerInc"} {
		got, err := n.Query("trade", org, "k")
		if err != nil || string(got) != "v" {
			t.Fatalf("Query on %s = %q, %v", org, got, err)
		}
	}
	if len(n.OrdererOperators()) != 3 {
		t.Fatalf("operators = %v, want 3 members", n.OrdererOperators())
	}
}

func TestClusterConfinesOrderingLeakToMembers(t *testing.T) {
	n := newClusterNetwork(t)
	id, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k"), []byte("v")}, []string{"BankA"})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// Every observer of the tx data is a channel member (or its peer):
	// the §3.4 leak is fully confined.
	members := map[string]bool{"BankA": true, "SellerCo": true, "BuyerInc": true}
	for _, obs := range n.Log.Observers(audit.ClassTxData, id) {
		if !members[obs] {
			t.Fatalf("non-member observer %q of tx data", obs)
		}
	}
	if n.Log.SawAny("Outsider", audit.ClassTxData) {
		t.Fatal("outsider observed tx data")
	}
	if n.Log.SawAny("orderer-org", audit.ClassTxMetadata) {
		t.Fatal("no third-party orderer principal should exist")
	}
}

func TestClusterSurvivesLeaderCrash(t *testing.T) {
	n := newClusterNetwork(t)
	if _, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k0"), []byte("v")}, []string{"BankA"}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	cluster, err := n.OrderingCluster("trade")
	if err != nil {
		t.Fatalf("OrderingCluster: %v", err)
	}
	leader, err := cluster.Leader()
	if err != nil {
		t.Fatalf("Leader: %v", err)
	}
	if err := cluster.Crash(leader); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// Ordering is down until failover.
	if _, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k1"), []byte("v")}, []string{"BankA"}); !errors.Is(err, ordering.ErrNoLeader) {
		t.Fatalf("Invoke without leader = %v, want ErrNoLeader", err)
	}
	if _, err := cluster.Elect(); err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if _, err := n.Invoke("trade", "BankA", "trade", "record",
		[][]byte{[]byte("k1"), []byte("v")}, []string{"BankA"}); err != nil {
		t.Fatalf("Invoke after failover: %v", err)
	}
	got, err := n.Query("trade", "SellerCo", "k1")
	if err != nil || string(got) != "v" {
		t.Fatalf("Query after failover = %q, %v", got, err)
	}
}

func TestClusterTooSmallRejected(t *testing.T) {
	if _, err := NewNetwork(Config{OrdererCluster: []string{"A", "B"}}); err == nil {
		t.Fatal("2-member cluster must be rejected")
	}
}

func TestSoloNetworkHasNoCluster(t *testing.T) {
	n := newTradeNetwork(t)
	if _, err := n.OrderingCluster("trade"); err == nil {
		t.Fatal("solo network must not expose a cluster")
	}
}
