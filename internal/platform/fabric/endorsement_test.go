package fabric

import (
	"errors"
	"strconv"
	"testing"

	"dltprivacy/internal/contract"
)

// TestDivergentEndorsementsRejected: if endorsing peers run different
// chaincode versions (or non-deterministic logic) and produce different
// write sets, the proposal must fail rather than commit inconsistent state.
// This is the in-built version guarantee the paper's §3.3 contrasts with
// off-chain engines.
func TestDivergentEndorsementsRejected(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, org := range []string{"OrgA", "OrgB"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	policy := contract.Policy{Members: []string{"OrgA", "OrgB"}, Threshold: 1}
	if err := n.CreateChannel("ch", []string{"OrgA", "OrgB"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	// Same contract name, divergent behaviour per version.
	mk := func(version string, value string) contract.Contract {
		return contract.Contract{
			Name:    "pricing",
			Version: version,
			Funcs: map[string]contract.Func{
				"quote": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
					ctx.Put("quote", []byte(value))
					return nil, nil
				},
			},
		}
	}
	if err := n.InstallChaincode("ch", mk("1", "100"), []string{"OrgA"}); err != nil {
		t.Fatalf("InstallChaincode v1: %v", err)
	}
	if err := n.InstallChaincode("ch", mk("2", "999"), []string{"OrgB"}); err != nil {
		t.Fatalf("InstallChaincode v2: %v", err)
	}
	_, err = n.Invoke("ch", "OrgA", "pricing", "quote", nil, []string{"OrgA", "OrgB"})
	if !errors.Is(err, ErrEndorsementFailed) {
		t.Fatalf("divergent endorsement = %v, want ErrEndorsementFailed", err)
	}
	// Neither replica committed anything.
	for _, org := range []string{"OrgA", "OrgB"} {
		if h, _ := n.Height("ch", org); h != 0 {
			t.Fatalf("replica %s height = %d, want 0", org, h)
		}
	}
}

// TestNonDeterministicChaincodeCaught: logic whose output depends on
// per-peer state diverges at endorsement time.
func TestNonDeterministicChaincodeCaught(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, org := range []string{"OrgA", "OrgB"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	policy := contract.Policy{Members: []string{"OrgA", "OrgB"}, Threshold: 1}
	if err := n.CreateChannel("ch", []string{"OrgA", "OrgB"}, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	counter := 0
	bad := contract.Contract{
		Name:    "nondet",
		Version: "1",
		Funcs: map[string]contract.Func{
			"next": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				counter++ // shared across endorsements: each peer sees a different value
				ctx.Put("n", []byte(strconv.Itoa(counter)))
				return nil, nil
			},
		},
	}
	for _, org := range []string{"OrgA", "OrgB"} {
		if err := n.InstallChaincode("ch", bad, []string{org}); err != nil {
			t.Fatalf("InstallChaincode: %v", err)
		}
	}
	if _, err := n.Invoke("ch", "OrgA", "nondet", "next", nil, []string{"OrgA", "OrgB"}); !errors.Is(err, ErrEndorsementFailed) {
		t.Fatalf("non-deterministic chaincode = %v, want ErrEndorsementFailed", err)
	}
}
