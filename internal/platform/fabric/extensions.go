package fabric

import (
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
)

// This file implements two Figure 1 / §2.2 refinements on the channel
// mechanism: publishing a hash of a confidential transaction on a shared
// ledger ("If a public record of the existence of a transaction is
// required, a hash of transaction data may optionally be published on a
// shared ledger"), and late joining with block replay, which exercises the
// ledger's catch-up path and extends the membership of a separation-of-
// ledgers deployment.

// Errors for the extensions.
var (
	// ErrAlreadyMember is returned when joining an org twice.
	ErrAlreadyMember = errors.New("fabric: organization already a channel member")
	// ErrNoReceipt is returned when existence verification fails.
	ErrNoReceipt = errors.New("fabric: no receipt for transaction")
)

// sharedLedgerName is the network-wide receipts ledger every org can read.
const sharedLedgerName = "system-receipts"

// receiptKey derives the shared-ledger key for a channel transaction. The
// channel name is folded into the hash, so the receipt reveals neither the
// channel nor the parties — only someone already told (channel, txID) can
// look it up.
func receiptKey(channel, txID string) string {
	sum := dcrypto.HashConcat([]byte("receipt"), []byte(channel), []byte(txID))
	return "receipt/" + hex.EncodeToString(sum[:16])
}

// sharedLedger lazily creates the network-wide receipts ledger.
func (n *Network) sharedLedger() *ledger.Ledger {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.receipts == nil {
		n.receipts = ledger.New(sharedLedgerName)
	}
	return n.receipts
}

// PublishReceipt records, on the shared ledger, that a channel transaction
// exists — without revealing channel, parties, or content. Any org
// (member or not) observes only an opaque hash.
func (n *Network) PublishReceipt(channelName, org, txID string) error {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return err
	}
	if !ch.members[org] {
		return fmt.Errorf("%q on %q: %w", org, channelName, ErrNotMember)
	}
	shared := n.sharedLedger()
	digest := dcrypto.HashConcat([]byte(channelName), []byte(txID))
	tx := ledger.Transaction{
		Channel:   sharedLedgerName,
		Creator:   "receipt-publisher", // deliberately not the org: receipts are anonymous
		Writes:    []ledger.Write{{Key: receiptKey(channelName, txID), Value: digest[:]}},
		Timestamp: time.Now().UTC(),
	}
	if err := shared.Append(shared.CutBlock([]ledger.Transaction{tx})); err != nil {
		return fmt.Errorf("publish receipt: %w", err)
	}
	// Every org can see that *some* receipt appeared; record it for the
	// whole network as hash-class observations.
	n.mu.Lock()
	orgs := make([]string, 0, len(n.orgs))
	for name := range n.orgs {
		orgs = append(orgs, name)
	}
	n.mu.Unlock()
	for _, o := range orgs {
		n.Log.Record(o, audit.ClassTxHash, receiptKey(channelName, txID))
	}
	return nil
}

// VerifyReceipt lets any org confirm that the transaction identified by
// (channel, txID) — both learned out of band from a counterparty — was
// anchored on the shared ledger.
func (n *Network) VerifyReceipt(channelName, txID string) error {
	shared := n.sharedLedger()
	v, err := shared.Get(receiptKey(channelName, txID))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoReceipt, err)
	}
	want := dcrypto.HashConcat([]byte(channelName), []byte(txID))
	if len(v.Value) != len(want) || string(v.Value) != string(want[:]) {
		return ErrNoReceipt
	}
	return nil
}

// JoinChannel adds an organization to an existing channel: its fresh
// replica replays the channel history (catch-up), it subscribes to future
// blocks, and — since a new member reads the whole history — the audit log
// records its observation of every past transaction.
func (n *Network) JoinChannel(channelName, org string) error {
	ch, err := n.channelOf(channelName)
	if err != nil {
		return err
	}
	newOrg, err := n.Org(org)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if ch.members[org] {
		n.mu.Unlock()
		return fmt.Errorf("%q on %q: %w", org, channelName, ErrAlreadyMember)
	}
	history := make([]ledger.Block, len(ch.history))
	copy(history, ch.history)
	members := make([]string, 0, len(ch.members)+1)
	for m := range ch.members {
		members = append(members, m)
	}
	members = append(members, org)
	n.mu.Unlock()

	replica := ledger.New(channelName)
	for _, b := range history {
		if err := replica.Append(b); err != nil {
			return fmt.Errorf("replay block %d: %w", b.Number, err)
		}
		for _, tx := range b.Txs {
			n.Log.Record(org, audit.ClassTxData, tx.ID())
			n.Log.Record(org, audit.ClassIdentity, tx.Creator)
		}
	}
	newOrg.mu.Lock()
	newOrg.ledgers[channelName] = replica
	newOrg.mu.Unlock()
	n.orderer.Subscribe(channelName, replica.Append)

	n.mu.Lock()
	ch.members[org] = true
	n.mu.Unlock()
	// Existing members and the new member learn the updated membership.
	for _, m := range members {
		n.Log.Record(m, audit.ClassIdentity, org)
		n.Log.Record(org, audit.ClassIdentity, m)
		n.Log.Record(m, audit.ClassRelationship, relationshipItem(channelName, members))
	}
	return nil
}
