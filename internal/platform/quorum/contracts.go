package quorum

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/ledger"
)

// Private smart contracts: Quorum's second §5 mechanism. A private contract
// is deployed to a participant group; its code and state updates travel as
// private transactions (payload hash public, content confined), and each
// participant node executes the contract against its own private state —
// "private state and smart contracts are updated through private
// transactions".

// Errors for contract execution.
var (
	// ErrUnknownContract is returned when a node has no deployment of the
	// named contract.
	ErrUnknownContract = errors.New("quorum: contract not deployed on this node")
	// ErrStateDiverged is returned by CompareStates when participant
	// nodes disagree on contract state.
	ErrStateDiverged = errors.New("quorum: participant contract states diverged")
)

// deployment is one node's copy of a private contract.
type deployment struct {
	logic        contract.Contract
	participants []string
}

// contractStore tracks per-node private contract deployments.
type contractStore struct {
	mu          sync.Mutex
	deployments map[string]map[string]*deployment // node -> name -> deployment
}

func (n *Network) contracts() *contractStore {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cstore == nil {
		n.cstore = &contractStore{deployments: make(map[string]map[string]*deployment)}
	}
	return n.cstore
}

// DeployPrivateContract distributes contract code to the participant group
// via a private transaction: the public chain carries the code hash and the
// participant list; only participants hold (and can see) the logic.
func (n *Network) DeployPrivateContract(from string, participants []string, logic contract.Contract) (string, error) {
	if logic.Name == "" {
		return "", errors.New("quorum: contract needs a name")
	}
	id, err := n.SendPrivate(from, participants, "code/"+logic.Name, []byte(logic.Name+"@"+logic.Version))
	if err != nil {
		return "", err
	}
	group := append([]string{from}, participants...)
	sort.Strings(group)
	cs := n.contracts()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, node := range group {
		byName, ok := cs.deployments[node]
		if !ok {
			byName = make(map[string]*deployment)
			cs.deployments[node] = byName
		}
		byName[logic.Name] = &deployment{logic: logic, participants: group}
		n.Log.Record(node, audit.ClassBusinessLogic, logic.Name)
	}
	return id, nil
}

// privateStateView adapts a node's private state to contract.StateView.
type privateStateView struct{ node *Node }

func (v privateStateView) Get(key string) ([]byte, error) {
	b, ok := v.node.PrivateState(key)
	if !ok {
		return nil, fmt.Errorf("key %q: %w", key, ledger.ErrNotFound)
	}
	return b, nil
}

// InvokePrivateContract executes a private contract function. The sender
// executes locally, then the resulting write set is distributed to every
// participant as a private transaction, keeping the group's private states
// aligned while the rest of the network sees only envelopes.
func (n *Network) InvokePrivateContract(from, name, fn string, args [][]byte) (string, error) {
	sender, err := n.Node(from)
	if err != nil {
		return "", err
	}
	cs := n.contracts()
	cs.mu.Lock()
	dep, ok := cs.deployments[from][name]
	cs.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%s on %s: %w", name, from, ErrUnknownContract)
	}
	ctx := contract.NewContext("quorum-private", from, privateStateView{sender})
	_, writes, err := dep.logic.Invoke(ctx, fn, args)
	if err != nil {
		return "", fmt.Errorf("invoke %s.%s: %w", name, fn, err)
	}
	others := make([]string, 0, len(dep.participants))
	for _, p := range dep.participants {
		if p != from {
			others = append(others, p)
		}
	}
	var lastID string
	for _, w := range writes {
		if w.Delete {
			// Model deletion as an empty-value tombstone in private state.
			w.Value = nil
		}
		id, err := n.SendPrivate(from, others, w.Key, w.Value)
		if err != nil {
			return "", fmt.Errorf("distribute write %q: %w", w.Key, err)
		}
		lastID = id
	}
	return lastID, nil
}

// ContractDeployedOn reports whether the node holds the contract code.
func (n *Network) ContractDeployedOn(node, name string) bool {
	cs := n.contracts()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_, ok := cs.deployments[node][name]
	return ok
}

// CompareStates checks that all participant nodes of a contract agree on
// the given keys, returning ErrStateDiverged with details otherwise. A
// global observer can run this; individual participants cannot (they do not
// see other groups' private state), which is the §5 consistency caveat.
func (n *Network) CompareStates(name string, keys []string) error {
	cs := n.contracts()
	cs.mu.Lock()
	var group []string
	for node, byName := range cs.deployments {
		if _, ok := byName[name]; ok {
			group = append(group, node)
		}
	}
	cs.mu.Unlock()
	sort.Strings(group)
	var diverged []string
	for _, key := range keys {
		values := make(map[string][]string)
		for _, nodeName := range group {
			nd, err := n.Node(nodeName)
			if err != nil {
				continue
			}
			v, ok := nd.PrivateState(key)
			if !ok {
				values["<absent>"] = append(values["<absent>"], nodeName)
				continue
			}
			values[string(v)] = append(values[string(v)], nodeName)
		}
		if len(values) > 1 {
			diverged = append(diverged, key)
		}
	}
	if len(diverged) > 0 {
		return fmt.Errorf("%w: keys %s", ErrStateDiverged, strings.Join(diverged, ", "))
	}
	return nil
}
