package quorum

import (
	"errors"
	"strconv"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/ledger"
)

// counterContract increments a shared private counter.
func counterContract() contract.Contract {
	return contract.Contract{
		Name:    "counter",
		Version: "1",
		Funcs: map[string]contract.Func{
			"inc": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				n := 0
				if raw, err := ctx.Get("count"); err == nil {
					v, err := strconv.Atoi(string(raw))
					if err != nil {
						return nil, err
					}
					n = v
				} else if !errors.Is(err, ledger.ErrNotFound) {
					return nil, err
				}
				out := []byte(strconv.Itoa(n + 1))
				ctx.Put("count", out)
				return out, nil
			},
		},
	}
}

func TestDeployPrivateContract(t *testing.T) {
	n := newNet(t)
	id, err := n.DeployPrivateContract("A", []string{"B"}, counterContract())
	if err != nil {
		t.Fatalf("DeployPrivateContract: %v", err)
	}
	if !n.ContractDeployedOn("A", "counter") || !n.ContractDeployedOn("B", "counter") {
		t.Fatal("participants must hold the contract")
	}
	if n.ContractDeployedOn("C", "counter") {
		t.Fatal("non-participant must not hold the contract")
	}
	// Code confined, envelope public.
	if _, err := n.ReadPrivate("C", id); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("non-participant code read = %v, want ErrNotParticipant", err)
	}
	if !n.Log.Saw("C", audit.ClassTxHash, id) {
		t.Fatal("deployment envelope must be public")
	}
	if n.Log.Saw("C", audit.ClassBusinessLogic, "counter") {
		t.Fatal("logic observation must be confined to participants")
	}
}

func TestInvokePrivateContractAlignsParticipants(t *testing.T) {
	n := newNet(t)
	if _, err := n.DeployPrivateContract("A", []string{"B"}, counterContract()); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := n.InvokePrivateContract("A", "counter", "inc", nil); err != nil {
			t.Fatalf("Invoke %d: %v", i, err)
		}
	}
	for _, name := range []string{"A", "B"} {
		nd, _ := n.Node(name)
		v, ok := nd.PrivateState("count")
		if !ok || string(v) != "3" {
			t.Fatalf("node %s count = %q, %v; want 3", name, v, ok)
		}
	}
	// Non-participant has no state.
	c, _ := n.Node("C")
	if _, ok := c.PrivateState("count"); ok {
		t.Fatal("non-participant must not hold contract state")
	}
	// Group states agree.
	if err := n.CompareStates("counter", []string{"count"}); err != nil {
		t.Fatalf("CompareStates: %v", err)
	}
}

func TestInvokeRequiresDeployment(t *testing.T) {
	n := newNet(t)
	if _, err := n.InvokePrivateContract("A", "ghost", "inc", nil); !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("undeployed invoke = %v, want ErrUnknownContract", err)
	}
}

func TestInvokePropagatesBusinessErrors(t *testing.T) {
	n := newNet(t)
	bad := contract.Contract{
		Name:    "bad",
		Version: "1",
		Funcs: map[string]contract.Func{
			"boom": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				return nil, errors.New("no")
			},
		},
	}
	if _, err := n.DeployPrivateContract("A", []string{"B"}, bad); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if _, err := n.InvokePrivateContract("A", "bad", "boom", nil); err == nil {
		t.Fatal("business error must propagate")
	}
}

func TestCompareStatesDetectsDivergence(t *testing.T) {
	n := newNet(t)
	if _, err := n.DeployPrivateContract("A", []string{"B"}, counterContract()); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if _, err := n.InvokePrivateContract("A", "counter", "inc", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// B's operator tampers with its private state out of band.
	b, _ := n.Node("B")
	b.mu.Lock()
	b.privateState["count"] = []byte("999")
	b.mu.Unlock()
	if err := n.CompareStates("counter", []string{"count"}); !errors.Is(err, ErrStateDiverged) {
		t.Fatalf("CompareStates = %v, want ErrStateDiverged", err)
	}
}

func TestDeployValidation(t *testing.T) {
	n := newNet(t)
	if _, err := n.DeployPrivateContract("A", []string{"B"}, contract.Contract{}); err == nil {
		t.Fatal("unnamed contract must be rejected")
	}
	if _, err := n.DeployPrivateContract("Ghost", []string{"B"}, counterContract()); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown deployer = %v, want ErrUnknownNode", err)
	}
}
