package quorum

import (
	"bytes"
	"errors"
	"testing"

	"dltprivacy/internal/audit"
)

func newNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, name := range []string{"A", "B", "C", "D"} {
		if _, err := n.AddNode(name); err != nil {
			t.Fatalf("AddNode(%s): %v", name, err)
		}
	}
	return n
}

func TestPublicTxVisibleEverywhere(t *testing.T) {
	n := newNet(t)
	id, err := n.SendPublic("A", "greeting", []byte("hello"))
	if err != nil {
		t.Fatalf("SendPublic: %v", err)
	}
	for _, name := range []string{"A", "B", "C", "D"} {
		nd, _ := n.Node(name)
		v, ok := nd.PublicState("greeting")
		if !ok || !bytes.Equal(v, []byte("hello")) {
			t.Fatalf("node %s public state = %q, %v", name, v, ok)
		}
		if !n.Log.Saw(name, audit.ClassTxData, id) {
			t.Fatalf("node %s must observe public tx data", name)
		}
	}
}

func TestPrivateTxPayloadConfined(t *testing.T) {
	n := newNet(t)
	id, err := n.SendPrivate("A", []string{"B"}, "deal", []byte("price=42"))
	if err != nil {
		t.Fatalf("SendPrivate: %v", err)
	}
	// Participants have the private state and payload.
	for _, name := range []string{"A", "B"} {
		nd, _ := n.Node(name)
		v, ok := nd.PrivateState("deal")
		if !ok || !bytes.Equal(v, []byte("price=42")) {
			t.Fatalf("participant %s private state = %q, %v", name, v, ok)
		}
		payload, err := n.ReadPrivate(name, id)
		if err != nil || !bytes.Contains(payload, []byte("price=42")) {
			t.Fatalf("participant %s ReadPrivate = %q, %v", name, payload, err)
		}
	}
	// Non-participants have neither.
	for _, name := range []string{"C", "D"} {
		nd, _ := n.Node(name)
		if _, ok := nd.PrivateState("deal"); ok {
			t.Fatalf("non-participant %s must not hold private state", name)
		}
		if _, err := n.ReadPrivate(name, id); !errors.Is(err, ErrNotParticipant) {
			t.Fatalf("non-participant ReadPrivate = %v, want ErrNotParticipant", err)
		}
		if n.Log.Saw(name, audit.ClassTxData, id) {
			t.Fatalf("non-participant %s must not observe payload", name)
		}
	}
}

func TestParticipantListLeaksToEveryone(t *testing.T) {
	n := newNet(t)
	id, err := n.SendPrivate("A", []string{"B"}, "deal", []byte("secret"))
	if err != nil {
		t.Fatalf("SendPrivate: %v", err)
	}
	// §5: every node learns who is interacting, and that a private tx
	// exists, from the public chain.
	for _, name := range []string{"A", "B", "C", "D"} {
		if !n.Log.Saw(name, audit.ClassTxHash, id) {
			t.Fatalf("node %s must see the private tx envelope", name)
		}
		if !n.Log.Saw(name, audit.ClassRelationship, "private-tx:A,B") {
			t.Fatalf("node %s must see the participant list (documented leak)", name)
		}
		if !n.Log.Saw(name, audit.ClassIdentity, "A") {
			t.Fatalf("node %s must see the sender", name)
		}
	}
	// The chain itself carries the list.
	chain := n.Chain()
	last := chain[len(chain)-1]
	if !last.IsPrivate || len(last.Participants) != 2 {
		t.Fatalf("chain entry = %+v", last)
	}
	if len(last.Payload) != 0 {
		t.Fatal("private tx must not carry the payload on chain")
	}
}

func TestPrivateStateDivergesByDesign(t *testing.T) {
	n := newNet(t)
	if _, err := n.SendPrivate("A", []string{"B"}, "k", []byte("v1")); err != nil {
		t.Fatalf("SendPrivate: %v", err)
	}
	if _, err := n.SendPrivate("A", []string{"C"}, "k", []byte("v2")); err != nil {
		t.Fatalf("SendPrivate: %v", err)
	}
	b, _ := n.Node("B")
	c, _ := n.Node("C")
	vb, _ := b.PrivateState("k")
	vc, _ := c.PrivateState("k")
	if string(vb) != "v1" || string(vc) != "v2" {
		t.Fatalf("views = %q, %q; want v1, v2", vb, vc)
	}
}

func TestDoubleSpendWeakness(t *testing.T) {
	n := newNet(t)
	// A owns asset X, issued privately with B and C as observers of
	// separate groups.
	if _, err := n.IssuePrivateAsset("A", "X", "A", []string{"B"}); err != nil {
		t.Fatalf("IssuePrivateAsset: %v", err)
	}
	if _, err := n.IssuePrivateAsset("A", "X", "A", []string{"C"}); err != nil {
		t.Fatalf("IssuePrivateAsset: %v", err)
	}
	// First spend: A -> B within group {A, B}.
	if _, err := n.TransferPrivateAsset("A", "X", "B", []string{"B"}); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	// A's own view now says B owns it… but A simply re-issues its claim
	// within group {A, C} — there is no global check. Reproduce the
	// malicious sequence: A restores its private view then spends again.
	a, _ := n.Node("A")
	a.mu.Lock()
	a.privateState["asset/X"] = []byte("A")
	a.mu.Unlock()
	if _, err := n.TransferPrivateAsset("A", "X", "C", []string{"C"}); err != nil {
		t.Fatalf("second transfer: %v", err)
	}
	// Both B and C believe they own X: the documented double spend.
	views := n.AssetViews("X")
	if views["B"] != "B" || views["C"] != "C" {
		t.Fatalf("views = %v; want B:B and C:C", views)
	}
	if !n.DoubleSpendDetected("X") {
		t.Fatal("global observer must detect the conflicting views")
	}
}

func TestNoDoubleSpendWithoutConflict(t *testing.T) {
	n := newNet(t)
	if _, err := n.IssuePrivateAsset("A", "Y", "A", []string{"B"}); err != nil {
		t.Fatalf("IssuePrivateAsset: %v", err)
	}
	if _, err := n.TransferPrivateAsset("A", "Y", "B", []string{"B"}); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if n.DoubleSpendDetected("Y") {
		t.Fatal("single consistent transfer must not flag")
	}
}

func TestTransferRequiresOwnership(t *testing.T) {
	n := newNet(t)
	if _, err := n.IssuePrivateAsset("A", "Z", "A", []string{"B"}); err != nil {
		t.Fatalf("IssuePrivateAsset: %v", err)
	}
	// B sees the asset but is not the owner in its private view.
	if _, err := n.TransferPrivateAsset("B", "Z", "C", []string{"C"}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner transfer = %v, want ErrNotOwner", err)
	}
	// D has no view at all.
	if _, err := n.TransferPrivateAsset("D", "Z", "C", []string{"C"}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("no-view transfer = %v, want ErrNotOwner", err)
	}
}

func TestUnknownNodes(t *testing.T) {
	n := newNet(t)
	if _, err := n.SendPublic("Ghost", "k", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SendPublic ghost = %v, want ErrUnknownNode", err)
	}
	if _, err := n.SendPrivate("A", []string{"Ghost"}, "k", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SendPrivate to ghost = %v, want ErrUnknownNode", err)
	}
	if _, err := n.Node("Ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Node ghost = %v, want ErrUnknownNode", err)
	}
	if _, err := n.AddNode("A"); err == nil {
		t.Fatal("duplicate node must fail")
	}
}

func TestReadPrivateUnknownTx(t *testing.T) {
	n := newNet(t)
	if _, err := n.ReadPrivate("A", "nope"); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("ReadPrivate unknown = %v, want ErrNotParticipant", err)
	}
}

func TestChainGrowsForBothKinds(t *testing.T) {
	n := newNet(t)
	if _, err := n.SendPublic("A", "k", []byte("v")); err != nil {
		t.Fatalf("SendPublic: %v", err)
	}
	if _, err := n.SendPrivate("A", []string{"B"}, "k2", []byte("v2")); err != nil {
		t.Fatalf("SendPrivate: %v", err)
	}
	chain := n.Chain()
	if len(chain) != 2 {
		t.Fatalf("chain length = %d, want 2", len(chain))
	}
	if chain[0].IsPrivate || !chain[1].IsPrivate {
		t.Fatalf("chain kinds wrong: %+v", chain)
	}
}
