// Package quorum models Quorum's privacy architecture as described in §5 of
// the paper: a public ledger replicated to every node, private state kept
// per node, and private transactions whose payloads travel through a private
// transaction manager (Tessera-like) while the public chain records only the
// payload hash — together with the participant list, which the paper calls
// out as a privacy weakness ("revealing to the entire network which parties
// are interacting"). The model also reproduces the second documented
// weakness: because private assets have no global visibility, they can be
// double-spent across disjoint participant sets.
package quorum

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
)

// Errors returned by the Quorum model.
var (
	// ErrUnknownNode is returned for unregistered nodes.
	ErrUnknownNode = errors.New("quorum: unknown node")
	// ErrNotParticipant is returned when a node reads private state it
	// was not party to.
	ErrNotParticipant = errors.New("quorum: node is not a participant")
	// ErrNotOwner is returned when a spender does not own the asset in
	// its own private view.
	ErrNotOwner = errors.New("quorum: sender does not own the asset")
)

// Tx is an entry on the public ledger. For private transactions the payload
// is replaced by its hash, but sender and participant list remain public.
type Tx struct {
	ID           string
	From         string
	IsPrivate    bool
	Payload      []byte   // public txs only
	PayloadHash  [32]byte // private txs only
	Participants []string // private txs: the §5 leak
}

// ptm is a node's private transaction manager: it holds the private payloads
// the node is party to, keyed by payload hash.
type ptm struct {
	mu       sync.Mutex
	payloads map[[32]byte][]byte
}

func newPTM() *ptm { return &ptm{payloads: make(map[[32]byte][]byte)} }

func (p *ptm) store(hash [32]byte, payload []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.payloads[hash] = append([]byte(nil), payload...)
}

func (p *ptm) load(hash [32]byte) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.payloads[hash]
	return b, ok
}

// Node is one Quorum node with public and private state.
type Node struct {
	Name string

	ptm *ptm

	mu           sync.Mutex
	publicState  map[string][]byte
	privateState map[string][]byte
}

// PrivateState reads the node's private view of a key.
func (nd *Node) PrivateState(key string) ([]byte, bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	v, ok := nd.privateState[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// PublicState reads the node's public view of a key.
func (nd *Node) PublicState(key string) ([]byte, bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	v, ok := nd.publicState[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Network is a Quorum-model network.
type Network struct {
	Log *audit.Log

	mu     sync.Mutex
	nodes  map[string]*Node
	chain  []Tx
	cstore *contractStore
}

// NewNetwork creates an empty Quorum-model network.
func NewNetwork() *Network {
	return &Network{
		Log:   audit.NewLog(),
		nodes: make(map[string]*Node),
	}
}

// AddNode registers a node.
func (n *Network) AddNode(name string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[name]; ok {
		return nil, fmt.Errorf("quorum: node %q already exists", name)
	}
	nd := &Node{
		Name:         name,
		ptm:          newPTM(),
		publicState:  make(map[string][]byte),
		privateState: make(map[string][]byte),
	}
	n.nodes[name] = nd
	return nd, nil
}

// Node returns a registered node.
func (n *Network) Node(name string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownNode)
	}
	return nd, nil
}

// Chain returns a copy of the public ledger every node replicates.
func (n *Network) Chain() []Tx {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Tx, len(n.chain))
	copy(out, n.chain)
	return out
}

func txID(parts ...[]byte) string {
	sum := dcrypto.HashConcat(parts...)
	return hex.EncodeToString(sum[:16])
}

// SendPublic submits a public transaction: every node applies the write and
// observes the payload.
func (n *Network) SendPublic(from, key string, value []byte) (string, error) {
	if _, err := n.Node(from); err != nil {
		return "", err
	}
	payload := append([]byte(key+"="), value...)
	id := txID([]byte("public"), []byte(from), payload)
	tx := Tx{ID: id, From: from, Payload: payload}
	n.mu.Lock()
	n.chain = append(n.chain, tx)
	nodes := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.mu.Lock()
		nd.publicState[key] = append([]byte(nil), value...)
		nd.mu.Unlock()
		n.Log.Record(nd.Name, audit.ClassTxData, id)
		n.Log.Record(nd.Name, audit.ClassIdentity, from)
	}
	return id, nil
}

// SendPrivate submits a private transaction: participants receive the
// payload via the private transaction manager and update private state; the
// public chain carries the payload hash, the sender, and the participant
// list — which every node sees (§5: "the public ledger includes private
// transactions, including the list of participants").
func (n *Network) SendPrivate(from string, participants []string, key string, value []byte) (string, error) {
	if _, err := n.Node(from); err != nil {
		return "", err
	}
	partSet := map[string]bool{from: true}
	for _, p := range participants {
		if _, err := n.Node(p); err != nil {
			return "", err
		}
		partSet[p] = true
	}
	names := make([]string, 0, len(partSet))
	for p := range partSet {
		names = append(names, p)
	}
	sort.Strings(names)

	payload := append([]byte(key+"="), value...)
	hash := dcrypto.Hash(payload)
	id := txID([]byte("private"), []byte(from), hash[:])
	tx := Tx{ID: id, From: from, IsPrivate: true, PayloadHash: hash, Participants: names}

	n.mu.Lock()
	n.chain = append(n.chain, tx)
	all := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		all = append(all, nd)
	}
	n.mu.Unlock()

	relItem := "private-tx:" + strings.Join(names, ",")
	for _, nd := range all {
		if partSet[nd.Name] {
			// Participant: PTM delivery + private state update.
			nd.ptm.store(hash, payload)
			nd.mu.Lock()
			nd.privateState[key] = append([]byte(nil), value...)
			nd.mu.Unlock()
			n.Log.Record(nd.Name, audit.ClassTxData, id)
		}
		// EVERY node sees the envelope: hash, sender, participants.
		n.Log.Record(nd.Name, audit.ClassTxHash, id)
		n.Log.Record(nd.Name, audit.ClassIdentity, from)
		n.Log.Record(nd.Name, audit.ClassRelationship, relItem)
	}
	return id, nil
}

// ReadPrivate reads a private payload by transaction id from a node's PTM.
func (n *Network) ReadPrivate(node, id string) ([]byte, error) {
	nd, err := n.Node(node)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	var hash [32]byte
	found := false
	for _, tx := range n.chain {
		if tx.ID == id && tx.IsPrivate {
			hash = tx.PayloadHash
			found = true
			break
		}
	}
	n.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("tx %q: %w", id, ErrNotParticipant)
	}
	payload, ok := nd.ptm.load(hash)
	if !ok {
		return nil, fmt.Errorf("%s on tx %s: %w", node, id, ErrNotParticipant)
	}
	return payload, nil
}

// IssuePrivateAsset records ownership of an asset in the private state of
// the given participant group.
func (n *Network) IssuePrivateAsset(issuer, assetID, owner string, participants []string) (string, error) {
	return n.SendPrivate(issuer, participants, "asset/"+assetID, []byte(owner))
}

// TransferPrivateAsset moves a private asset to a new owner, visible only to
// the chosen participant group. The sender must own the asset in its own
// private view — which is exactly the insufficient check that enables the
// documented double spend: a malicious sender picks disjoint participant
// groups and spends the asset once per group.
func (n *Network) TransferPrivateAsset(from, assetID, newOwner string, participants []string) (string, error) {
	sender, err := n.Node(from)
	if err != nil {
		return "", err
	}
	cur, ok := sender.PrivateState("asset/" + assetID)
	if !ok || string(cur) != from {
		return "", fmt.Errorf("%s spending %s: %w", from, assetID, ErrNotOwner)
	}
	return n.SendPrivate(from, participants, "asset/"+assetID, []byte(newOwner))
}

// AssetViews reports, for each node that has any view of the asset, who that
// node believes the owner is. Divergent views are the double-spend
// inconsistency a global observer would detect — and individual participants
// cannot.
func (n *Network) AssetViews(assetID string) map[string]string {
	n.mu.Lock()
	nodes := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	out := make(map[string]string)
	for _, nd := range nodes {
		if v, ok := nd.PrivateState("asset/" + assetID); ok {
			out[nd.Name] = string(v)
		}
	}
	return out
}

// DoubleSpendDetected reports whether nodes hold conflicting owner views of
// an asset.
func (n *Network) DoubleSpendDetected(assetID string) bool {
	views := n.AssetViews(assetID)
	seen := ""
	for _, owner := range views {
		if seen == "" {
			seen = owner
			continue
		}
		if owner != seen {
			return true
		}
	}
	return false
}
