package corda

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dltprivacy/internal/audit"
)

func newNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, p := range []string{"BankA", "SellerCo", "BuyerInc", "Outsider"} {
		if _, err := n.AddParty(p); err != nil {
			t.Fatalf("AddParty(%s): %v", p, err)
		}
	}
	return n
}

func TestIssueAndVault(t *testing.T) {
	n := newNet(t, Config{})
	id, err := n.Issue("BankA", "SellerCo", []byte("cash:100"), []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	refs := seller.Vault()
	if len(refs) != 1 || !strings.HasPrefix(refs[0], id+":") {
		t.Fatalf("vault = %v", refs)
	}
	st, err := seller.StateByRef(refs[0])
	if err != nil || string(st.Data) != "cash:100" {
		t.Fatalf("state = %+v, %v", st, err)
	}
}

func TestP2PDistributionOnly(t *testing.T) {
	n := newNet(t, Config{})
	id, err := n.Issue("BankA", "SellerCo", []byte("secret deal"), []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	// Participants saw the transaction.
	for _, p := range []string{"BankA", "SellerCo"} {
		if !n.Log.Saw(p, audit.ClassTxData, id) {
			t.Fatalf("%s must see the tx", p)
		}
	}
	// Non-participants saw nothing — no global broadcast.
	for _, p := range []string{"BuyerInc", "Outsider"} {
		if n.Log.SawAny(p, audit.ClassTxData) {
			t.Fatalf("%s must not see any tx data", p)
		}
		if n.Log.SawAny(p, audit.ClassRelationship) {
			t.Fatalf("%s must not learn relationships", p)
		}
	}
	// Non-participant vaults are empty.
	buyer, _ := n.Party("BuyerInc")
	if len(buyer.Vault()) != 0 {
		t.Fatal("non-participant vault must be empty")
	}
}

func TestTransferMovesOwnership(t *testing.T) {
	n := newNet(t, Config{})
	id, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	tid, err := n.Transfer("SellerCo", ref, "BuyerInc", nil, nil)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	buyer, _ := n.Party("BuyerInc")
	if len(buyer.Vault()) != 1 {
		t.Fatalf("buyer vault = %v", buyer.Vault())
	}
	// The input is consumed from the seller's vault.
	if _, err := seller.StateByRef(ref); !errors.Is(err, ErrUnknownState) {
		t.Fatalf("consumed state still in vault: %v", err)
	}
	_ = id
	_ = tid
}

func TestNotaryPreventsDoubleSpend(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	if _, err := n.Transfer("SellerCo", ref, "BuyerInc", nil, nil); err != nil {
		t.Fatalf("first Transfer: %v", err)
	}
	// The state is gone from the vault; re-add a forged copy to try a
	// double spend at the notary layer.
	st := State{Ref: ref, Data: []byte("asset"), Participants: []string{"SellerCo", "BankA"}}
	oneTime, _ := seller.chain.Next()
	st.OwnerAddr = oneTime.Address()
	st.OwnerKey = oneTime.Bytes()
	seller.mu.Lock()
	seller.vault[ref] = st
	seller.mu.Unlock()
	if _, err := n.Transfer("SellerCo", ref, "BankA", nil, nil); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("double spend = %v, want ErrDoubleSpend", err)
	}
}

func TestSpendRequiresOwnerKey(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	st, _ := seller.StateByRef(ref)
	// BankA holds the state too (participant) but does not own the
	// one-time key; spending must fail.
	bank, _ := n.Party("BankA")
	bank.mu.Lock()
	bank.vault[ref] = st
	bank.mu.Unlock()
	if _, err := n.Transfer("BankA", ref, "BuyerInc", nil, nil); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner spend = %v, want ErrNotOwner", err)
	}
}

func TestOneTimeKeysConcealOwner(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("a1"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if _, err := n.Issue("BankA", "SellerCo", []byte("a2"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	refs := seller.Vault()
	s1, _ := seller.StateByRef(refs[0])
	s2, _ := seller.StateByRef(refs[1])
	if s1.OwnerAddr == s2.OwnerAddr {
		t.Fatal("successive states must use fresh one-time keys")
	}
	if s1.OwnerAddr == "SellerCo" || strings.Contains(s1.OwnerAddr, "Seller") {
		t.Fatal("owner address must not reveal identity")
	}
}

func TestNonValidatingNotarySeesOnlyMetadata(t *testing.T) {
	n := newNet(t, Config{})
	id, err := n.Issue("BankA", "SellerCo", []byte("secret"), []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if !n.Log.Saw("notary", audit.ClassTxMetadata, id) {
		t.Fatal("notary must see tx metadata")
	}
	if n.Log.Saw("notary", audit.ClassTxData, id) {
		t.Fatal("non-validating notary must not see tx data")
	}
	if n.Log.SawAny("notary", audit.ClassIdentity) {
		t.Fatal("non-validating notary must not see identities")
	}
}

func TestValidatingNotarySeesContent(t *testing.T) {
	n, err := NewNetwork(Config{ValidatingNotary: true})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, p := range []string{"BankA", "SellerCo"} {
		if _, err := n.AddParty(p); err != nil {
			t.Fatalf("AddParty: %v", err)
		}
	}
	id, err := n.Issue("BankA", "SellerCo", []byte("secret"), []string{"BankA", "SellerCo"})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if !n.Log.Saw("notary", audit.ClassTxData, id) {
		t.Fatal("validating notary must see tx data (§3.4 trade-off)")
	}
}

func TestOffPlatformLogicRejects(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	rejectAll := func(tx *Transaction) error { return errors.New("price too low") }
	if _, err := n.Transfer("SellerCo", ref, "BuyerInc", nil, rejectAll); !errors.Is(err, ErrLogicRejected) {
		t.Fatalf("rejected logic = %v, want ErrLogicRejected", err)
	}
	// State remains unconsumed after rejection.
	if _, err := seller.StateByRef(ref); err != nil {
		t.Fatalf("state must survive rejection: %v", err)
	}
}

func TestOracleTearOff(t *testing.T) {
	n := newNet(t, Config{})
	if err := n.AddOracle("fx-oracle"); err != nil {
		t.Fatalf("AddOracle: %v", err)
	}
	tx := &Transaction{
		Outputs: []State{{
			Data:         []byte("pay 100 USD at rate 1.52"),
			OwnerAddr:    "addr",
			Participants: []string{"BankA", "SellerCo"},
		}},
		Commands: []string{"rate:1.52"},
	}
	to, err := tx.CommandTearOff(0)
	if err != nil {
		t.Fatalf("CommandTearOff: %v", err)
	}
	att, err := n.OracleSign("fx-oracle", to, func(visible []byte) error {
		if string(visible) != "rate:1.52" {
			return errors.New("unexpected component")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("OracleSign: %v", err)
	}
	if err := n.VerifyOracleAttestation(att, tx); err != nil {
		t.Fatalf("VerifyOracleAttestation: %v", err)
	}
	// The oracle saw only the command component, not the payload.
	if !n.Log.Saw("fx-oracle", audit.ClassTxData, "component:rate:1.52") {
		t.Fatal("oracle must see the visible component")
	}
	for _, item := range n.Log.ItemsSeen("fx-oracle", audit.ClassTxData) {
		if bytes.Contains([]byte(item), []byte("pay 100 USD")) {
			t.Fatal("oracle must not see hidden components")
		}
	}
}

func TestOracleRejectsBadComponent(t *testing.T) {
	n := newNet(t, Config{})
	if err := n.AddOracle("fx-oracle"); err != nil {
		t.Fatalf("AddOracle: %v", err)
	}
	tx := &Transaction{
		Outputs:  []State{{Data: []byte("x"), OwnerAddr: "a", Participants: []string{"BankA"}}},
		Commands: []string{"rate:9.99"},
	}
	to, _ := tx.CommandTearOff(0)
	_, err := n.OracleSign("fx-oracle", to, func(visible []byte) error {
		return errors.New("rate unknown")
	})
	if err == nil {
		t.Fatal("oracle must refuse to attest a bad component")
	}
}

func TestUnknownPartyAndState(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Party("Ghost"); !errors.Is(err, ErrUnknownParty) {
		t.Fatalf("Party ghost = %v, want ErrUnknownParty", err)
	}
	if _, err := n.Issue("BankA", "Ghost", nil, nil); !errors.Is(err, ErrUnknownParty) {
		t.Fatalf("Issue to ghost = %v, want ErrUnknownParty", err)
	}
	if _, err := n.Transfer("BankA", "nope:0", "SellerCo", nil, nil); !errors.Is(err, ErrUnknownState) {
		t.Fatalf("Transfer unknown state = %v, want ErrUnknownState", err)
	}
	tearTx := &Transaction{Commands: []string{"c"}}
	to, err := tearTx.CommandTearOff(0)
	if err != nil {
		t.Fatalf("CommandTearOff: %v", err)
	}
	if _, err := n.OracleSign("nobody", to, nil); !errors.Is(err, ErrUnknownParty) {
		t.Fatalf("OracleSign unknown oracle = %v, want ErrUnknownParty", err)
	}
}

func TestDuplicateParty(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.AddParty("BankA"); err == nil {
		t.Fatal("duplicate party must fail")
	}
}

func TestTransactionIDDeterministic(t *testing.T) {
	tx1 := &Transaction{Outputs: []State{{Data: []byte("d"), OwnerAddr: "a"}}, Commands: []string{"c"}}
	tx2 := &Transaction{Outputs: []State{{Data: []byte("d"), OwnerAddr: "a"}}, Commands: []string{"c"}}
	id1, err := tx1.ID()
	if err != nil {
		t.Fatalf("ID: %v", err)
	}
	id2, _ := tx2.ID()
	if id1 != id2 {
		t.Fatal("identical txs must share IDs")
	}
}

func TestEmptyTransactionRejected(t *testing.T) {
	tx := &Transaction{}
	if _, err := tx.ID(); !errors.Is(err, ErrBadTransaction) {
		t.Fatalf("empty tx = %v, want ErrBadTransaction", err)
	}
}
