// Package corda models Corda's privacy architecture as described in §5 of
// the paper: point-to-point transaction flows with no global broadcast (data
// segregation per transaction), a notary uniqueness service for double-spend
// prevention, one-time public keys concealing state owners from uninvolved
// parties, Merkle-tree tear-offs so oracles attest to single components
// without seeing the rest of the transaction, and business logic executed
// off-platform with the on-chain contract verifying signatories only.
package corda

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/merkle"
	"dltprivacy/internal/pki"
)

// Errors returned by the Corda model.
var (
	// ErrUnknownParty is returned for unregistered parties.
	ErrUnknownParty = errors.New("corda: unknown party")
	// ErrUnknownState is returned when a state ref is not in the vault.
	ErrUnknownState = errors.New("corda: state not found in vault")
	// ErrDoubleSpend is returned by the notary when an input was already
	// consumed.
	ErrDoubleSpend = errors.New("corda: input state already consumed")
	// ErrNotOwner is returned when a spender cannot sign for the state
	// owner's one-time key.
	ErrNotOwner = errors.New("corda: spender does not control the owner key")
	// ErrBadTransaction is returned for malformed or badly signed
	// transactions.
	ErrBadTransaction = errors.New("corda: invalid transaction")
	// ErrLogicRejected is returned when the parties' off-platform
	// business logic rejects a proposal.
	ErrLogicRejected = errors.New("corda: business logic rejected transaction")
)

// component kinds inside the transaction Merkle tree.
const (
	kindInput   = "input"
	kindOutput  = "output"
	kindCommand = "command"
)

// component is one leaf of the transaction Merkle tree.
type component struct {
	Kind string `json:"kind"`
	Data []byte `json:"data"`
}

// State is an on-ledger fact owned via a one-time key.
type State struct {
	Ref          string   `json:"ref"` // txID:index, set at commit
	Data         []byte   `json:"data"`
	OwnerAddr    string   `json:"ownerAddr"` // one-time public key address
	OwnerKey     []byte   `json:"ownerKey"`  // serialized one-time public key
	Participants []string `json:"participants"`
}

// Transaction consumes input states and produces output states. Its
// identifier is the root of the Merkle tree over all components, which is
// what parties and oracles sign — enabling tear-offs.
type Transaction struct {
	Inputs   []string `json:"inputs"` // consumed state refs
	Outputs  []State  `json:"outputs"`
	Commands []string `json:"commands"`

	tree *merkle.Tree
}

// build constructs the component Merkle tree.
func (t *Transaction) build() error {
	leaves := make([][]byte, 0, len(t.Inputs)+len(t.Outputs)+len(t.Commands))
	add := func(kind string, data []byte) error {
		b, err := json.Marshal(component{Kind: kind, Data: data})
		if err != nil {
			return fmt.Errorf("marshal component: %w", err)
		}
		leaves = append(leaves, b)
		return nil
	}
	for _, in := range t.Inputs {
		if err := add(kindInput, []byte(in)); err != nil {
			return err
		}
	}
	for _, out := range t.Outputs {
		b, err := json.Marshal(out)
		if err != nil {
			return fmt.Errorf("marshal output: %w", err)
		}
		if err := add(kindOutput, b); err != nil {
			return err
		}
	}
	for _, c := range t.Commands {
		if err := add(kindCommand, []byte(c)); err != nil {
			return err
		}
	}
	tree, err := merkle.New(leaves)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadTransaction, err)
	}
	t.tree = tree
	return nil
}

// Root returns the transaction Merkle root.
func (t *Transaction) Root() ([32]byte, error) {
	if t.tree == nil {
		if err := t.build(); err != nil {
			return [32]byte{}, err
		}
	}
	return t.tree.Root(), nil
}

// ID returns the hex transaction identifier.
func (t *Transaction) ID() (string, error) {
	root, err := t.Root()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(root[:16]), nil
}

// CommandTearOff builds a tear-off revealing only command component i —
// the §5 oracle scenario: "the transaction participants do not want all the
// components of the transaction visible to the oracle".
func (t *Transaction) CommandTearOff(i int) (merkle.TearOff, error) {
	if t.tree == nil {
		if err := t.build(); err != nil {
			return merkle.TearOff{}, err
		}
	}
	idx := len(t.Inputs) + len(t.Outputs) + i
	return t.tree.TearOffVisible([]int{idx})
}

// LogicFunc is off-platform business logic evaluated by each participant
// before signing; the ledger layer never sees it (§5: parties "execute
// business logic outside of the platform").
type LogicFunc func(tx *Transaction) error

// Party is a network participant with a vault of unconsumed states.
type Party struct {
	Name string

	key   *dcrypto.PrivateKey
	cert  pki.Certificate
	chain *dcrypto.OneTimeKeyChain

	mu      sync.Mutex
	vault   map[string]State
	records map[string]*txRecord
}

// txRecord is a fully signed, notarized transaction as stored by each
// participant: the transaction, every participant's signature over the
// Merkle root, and the notary's signature.
type txRecord struct {
	tx        *Transaction
	partySigs map[string]dcrypto.Signature
	ownerSigs map[string]dcrypto.Signature // input ref -> one-time-key signature
	notarySig dcrypto.Signature
}

// Vault returns the refs of unconsumed states the party holds.
func (p *Party) Vault() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.vault))
	for ref := range p.vault {
		out = append(out, ref)
	}
	return out
}

// StateByRef returns a vault state.
func (p *Party) StateByRef(ref string) (State, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.vault[ref]
	if !ok {
		return State{}, fmt.Errorf("%q: %w", ref, ErrUnknownState)
	}
	return s, nil
}

// Notary is the uniqueness service. Non-validating by default: it sees input
// refs and the root, not the transaction content.
type Notary struct {
	name       string
	key        *dcrypto.PrivateKey
	validating bool
	log        *audit.Log

	mu       sync.Mutex
	consumed map[string]string // ref -> consuming tx id
}

// Name returns the notary's principal name.
func (no *Notary) Name() string { return no.name }

// PublicKey returns the notary verification key.
func (no *Notary) PublicKey() dcrypto.PublicKey { return no.key.Public() }

// Notarize checks inputs for double spends and signs the root.
func (no *Notary) Notarize(tx *Transaction) (dcrypto.Signature, error) {
	id, err := tx.ID()
	if err != nil {
		return dcrypto.Signature{}, err
	}
	root, err := tx.Root()
	if err != nil {
		return dcrypto.Signature{}, err
	}
	no.mu.Lock()
	for _, ref := range tx.Inputs {
		if prior, ok := no.consumed[ref]; ok {
			no.mu.Unlock()
			return dcrypto.Signature{}, fmt.Errorf("%w: %s consumed by %s", ErrDoubleSpend, ref, prior)
		}
	}
	for _, ref := range tx.Inputs {
		no.consumed[ref] = id
	}
	no.mu.Unlock()

	// Observation: a non-validating notary sees refs and metadata; a
	// validating notary additionally sees the content.
	no.log.Record(no.name, audit.ClassTxMetadata, id)
	if no.validating {
		no.log.Record(no.name, audit.ClassTxData, id)
		for _, out := range tx.Outputs {
			for _, p := range out.Participants {
				no.log.Record(no.name, audit.ClassIdentity, p)
			}
		}
	}
	return no.key.Sign(root[:])
}

// Network is a Corda-model network.
type Network struct {
	Log *audit.Log

	doorman *pki.CA
	notary  *Notary

	mu      sync.Mutex
	parties map[string]*Party
	oracles map[string]*Party
}

// Config controls network construction.
type Config struct {
	// ValidatingNotary switches the notary to validating mode, in which
	// it sees transaction contents (the trade-off §3.4 describes).
	ValidatingNotary bool
	// NotaryName names the notary principal (default "notary").
	NotaryName string
}

// NewNetwork creates a Corda-model network with a doorman CA and a notary.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.NotaryName == "" {
		cfg.NotaryName = "notary"
	}
	doorman, err := pki.NewCA("corda-doorman")
	if err != nil {
		return nil, fmt.Errorf("doorman: %w", err)
	}
	notaryKey, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("notary key: %w", err)
	}
	log := audit.NewLog()
	return &Network{
		Log:     log,
		doorman: doorman,
		notary: &Notary{
			name:       cfg.NotaryName,
			key:        notaryKey,
			validating: cfg.ValidatingNotary,
			log:        log,
			consumed:   make(map[string]string),
		},
		parties: make(map[string]*Party),
		oracles: make(map[string]*Party),
	}, nil
}

// Notary returns the network's notary.
func (n *Network) Notary() *Notary { return n.notary }

// AddParty onboards a party through the doorman.
func (n *Network) AddParty(name string) (*Party, error) {
	key, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("party key: %w", err)
	}
	cert, err := n.doorman.Enroll(name, key.Public())
	if err != nil {
		return nil, fmt.Errorf("enroll %s: %w", name, err)
	}
	seed, err := dcrypto.RandomBytes(32)
	if err != nil {
		return nil, err
	}
	chain, err := dcrypto.NewOneTimeKeyChain(seed)
	if err != nil {
		return nil, err
	}
	p := &Party{
		Name:    name,
		key:     key,
		cert:    cert,
		chain:   chain,
		vault:   make(map[string]State),
		records: make(map[string]*txRecord),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.parties[name]; ok {
		return nil, fmt.Errorf("corda: party %q already exists", name)
	}
	n.parties[name] = p
	return p, nil
}

// Party returns a registered party.
func (n *Network) Party(name string) (*Party, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.parties[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownParty)
	}
	return p, nil
}

// Issue creates a new state owned by owner via a no-input transaction,
// distributed only to the participants.
func (n *Network) Issue(issuer, owner string, data []byte, participants []string) (string, error) {
	ownerParty, err := n.Party(owner)
	if err != nil {
		return "", err
	}
	oneTime, err := ownerParty.chain.Next()
	if err != nil {
		return "", fmt.Errorf("one-time key: %w", err)
	}
	tx := &Transaction{
		Outputs: []State{{
			Data:         append([]byte(nil), data...),
			OwnerAddr:    oneTime.Address(),
			OwnerKey:     oneTime.Bytes(),
			Participants: append([]string(nil), participants...),
		}},
		Commands: []string{"issue"},
	}
	return n.finalize(tx, issuer, participants, nil, nil)
}

// Transfer consumes a state the sender owns and produces a new state owned
// by the recipient's fresh one-time key. logic, if non-nil, is the
// off-platform business logic each participant runs before signing.
func (n *Network) Transfer(from, stateRef, to string, newData []byte, logic LogicFunc) (string, error) {
	sender, err := n.Party(from)
	if err != nil {
		return "", err
	}
	recipient, err := n.Party(to)
	if err != nil {
		return "", err
	}
	input, err := sender.StateByRef(stateRef)
	if err != nil {
		return "", err
	}
	// Ownership: the sender must control the input's one-time key.
	if !sender.chain.Owns(input.OwnerAddr) {
		return "", fmt.Errorf("%s spending %s: %w", from, stateRef, ErrNotOwner)
	}
	oneTime, err := recipient.chain.Next()
	if err != nil {
		return "", fmt.Errorf("one-time key: %w", err)
	}
	data := newData
	if data == nil {
		data = input.Data
	}
	participants := []string{from, to}
	tx := &Transaction{
		Inputs: []string{stateRef},
		Outputs: []State{{
			Data:         append([]byte(nil), data...),
			OwnerAddr:    oneTime.Address(),
			OwnerKey:     oneTime.Bytes(),
			Participants: participants,
		}},
		Commands: []string{"transfer"},
	}
	root, err := tx.Root()
	if err != nil {
		return "", err
	}
	// Owner signature with the input's one-time key proves control
	// without revealing the sender's identity to non-participants.
	ownerSig, err := sender.chain.Sign(input.OwnerAddr, root[:])
	if err != nil {
		return "", fmt.Errorf("owner signature: %w", err)
	}
	return n.finalize(tx, from, participants, logic,
		map[string]dcrypto.Signature{stateRef: ownerSig})
}

// finalize runs the signing flow: every participant evaluates the
// off-platform logic and signs, the notary notarizes, and the transaction is
// committed to participant vaults only (point-to-point distribution).
func (n *Network) finalize(tx *Transaction, initiator string, participants []string, logic LogicFunc, ownerSigs map[string]dcrypto.Signature) (string, error) {
	id, err := tx.ID()
	if err != nil {
		return "", err
	}
	root, err := tx.Root()
	if err != nil {
		return "", err
	}
	seen := map[string]bool{}
	partySigs := make(map[string]dcrypto.Signature)
	for _, name := range append([]string{initiator}, participants...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		p, err := n.Party(name)
		if err != nil {
			return "", err
		}
		if logic != nil {
			if err := logic(tx); err != nil {
				return "", fmt.Errorf("%w: %s: %v", ErrLogicRejected, name, err)
			}
		}
		sig, err := p.key.Sign(root[:])
		if err != nil {
			return "", fmt.Errorf("sign by %s: %w", name, err)
		}
		partySigs[name] = sig
		// Participants see the full transaction (they receive it P2P).
		n.Log.Record(name, audit.ClassTxData, id)
		for _, other := range participants {
			if other != name {
				n.Log.Record(name, audit.ClassIdentity, other)
				n.Log.Record(name, audit.ClassRelationship, pairItem(name, other))
			}
		}
	}
	notarySig, err := n.notary.Notarize(tx)
	if err != nil {
		return "", err
	}
	// Commit: consume inputs from participant vaults, add outputs, and
	// retain the notarized transaction for backchain resolution.
	for name := range seen {
		p, _ := n.Party(name)
		p.mu.Lock()
		for _, ref := range tx.Inputs {
			delete(p.vault, ref)
		}
		for i, out := range tx.Outputs {
			out.Ref = id + ":" + strconv.Itoa(i)
			p.vault[out.Ref] = out
		}
		p.records[id] = &txRecord{tx: tx, partySigs: partySigs, ownerSigs: ownerSigs, notarySig: notarySig}
		p.mu.Unlock()
	}
	n.propagateBackchain(tx, initiator, seen)
	return id, nil
}

// propagateBackchain implements Corda's transaction resolution: every
// participant receives the provenance chain of the inputs, copied from the
// initiator (who, as holder of the consumed states, has it). This is also
// the documented privacy cost of the model — receiving a state reveals its
// history — so the copies are recorded as observations.
func (n *Network) propagateBackchain(tx *Transaction, initiator string, participants map[string]bool) {
	src, err := n.Party(initiator)
	if err != nil {
		return
	}
	// Collect the transitive closure of input transactions.
	closure := make(map[string]*txRecord)
	queue := append([]string(nil), tx.Inputs...)
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		txID, _, ok := splitRef(ref)
		if !ok {
			continue
		}
		if _, done := closure[txID]; done {
			continue
		}
		src.mu.Lock()
		rec, okTx := src.records[txID]
		src.mu.Unlock()
		if !okTx {
			continue
		}
		closure[txID] = rec
		queue = append(queue, rec.tx.Inputs...)
	}
	for name := range participants {
		p, err := n.Party(name)
		if err != nil {
			continue
		}
		for txID, rec := range closure {
			p.mu.Lock()
			_, had := p.records[txID]
			if !had {
				p.records[txID] = rec
			}
			p.mu.Unlock()
			if !had {
				n.Log.Record(name, audit.ClassTxData, txID)
			}
		}
	}
}

func pairItem(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "<->" + b
}

// AddOracle registers an oracle party (it keeps no vault; it only attests).
func (n *Network) AddOracle(name string) error {
	p, err := n.AddParty(name)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.oracles[name] = p
	return nil
}

// OracleAttestation is an oracle's signature over a transaction root,
// produced from a tear-off.
type OracleAttestation struct {
	Oracle string
	Root   [32]byte
	Sig    dcrypto.Signature
}

// OracleSign asks the oracle to attest to a transaction via a tear-off: the
// oracle recomputes the root from the partial view, inspects only the
// visible command, and signs. CheckFn validates the visible component (for
// example an exchange rate).
func (n *Network) OracleSign(oracle string, to merkle.TearOff, checkFn func(visible []byte) error) (OracleAttestation, error) {
	n.mu.Lock()
	p, ok := n.oracles[oracle]
	n.mu.Unlock()
	if !ok {
		return OracleAttestation{}, fmt.Errorf("oracle %q: %w", oracle, ErrUnknownParty)
	}
	root, err := to.Root()
	if err != nil {
		return OracleAttestation{}, fmt.Errorf("tear-off root: %w", err)
	}
	for _, idx := range to.VisibleIndices() {
		leaf, err := to.Leaf(idx)
		if err != nil {
			return OracleAttestation{}, err
		}
		var comp component
		if err := json.Unmarshal(leaf, &comp); err != nil {
			return OracleAttestation{}, fmt.Errorf("decode visible component: %w", err)
		}
		if checkFn != nil {
			if err := checkFn(comp.Data); err != nil {
				return OracleAttestation{}, fmt.Errorf("oracle check: %w", err)
			}
		}
		// The oracle observes only the visible component.
		n.Log.Record(oracle, audit.ClassTxData, "component:"+string(comp.Data))
	}
	sig, err := p.key.Sign(root[:])
	if err != nil {
		return OracleAttestation{}, fmt.Errorf("oracle sign: %w", err)
	}
	return OracleAttestation{Oracle: oracle, Root: root, Sig: sig}, nil
}

// VerifyOracleAttestation verifies an oracle signature against a full
// transaction.
func (n *Network) VerifyOracleAttestation(att OracleAttestation, tx *Transaction) error {
	p, err := n.Party(att.Oracle)
	if err != nil {
		return err
	}
	root, err := tx.Root()
	if err != nil {
		return err
	}
	if root != att.Root {
		return fmt.Errorf("%w: attestation root mismatch", ErrBadTransaction)
	}
	if err := p.key.Public().Verify(root[:], att.Sig); err != nil {
		return fmt.Errorf("%w: oracle signature", ErrBadTransaction)
	}
	return nil
}
