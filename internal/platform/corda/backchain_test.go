package corda

import (
	"errors"
	"testing"

	"dltprivacy/internal/dcrypto"
)

func TestBackchainVerifiesTransferHistory(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	if _, err := n.Transfer("SellerCo", seller.Vault()[0], "BuyerInc", nil, nil); err != nil {
		t.Fatalf("Transfer 1: %v", err)
	}
	buyer, _ := n.Party("BuyerInc")
	if _, err := n.Transfer("BuyerInc", buyer.Vault()[0], "Outsider", nil, nil); err != nil {
		t.Fatalf("Transfer 2: %v", err)
	}
	last, _ := n.Party("Outsider")
	ref := last.Vault()[0]
	depth, err := n.VerifyBackchain("Outsider", ref)
	if err != nil {
		t.Fatalf("VerifyBackchain: %v", err)
	}
	if depth != 3 { // issue + two transfers
		t.Fatalf("backchain depth = %d, want 3", depth)
	}
}

func TestBackchainMissingHistory(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	// A party that never received the transaction cannot verify it.
	if _, err := n.VerifyBackchain("BuyerInc", ref); !errors.Is(err, ErrBrokenBackchain) {
		t.Fatalf("missing history = %v, want ErrBrokenBackchain", err)
	}
}

func TestBackchainRejectsForgedNotarySig(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	txID, _, _ := splitRef(ref)
	// Replace the notary signature with one from a rogue key.
	rogue, _ := dcrypto.GenerateKey()
	forged, err := rogue.Sign([]byte("whatever"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	seller.mu.Lock()
	rec := seller.records[txID]
	tampered := *rec
	tampered.notarySig = forged
	seller.records[txID] = &tampered
	seller.mu.Unlock()
	if _, err := n.VerifyBackchain("SellerCo", ref); !errors.Is(err, ErrBrokenBackchain) {
		t.Fatalf("forged sig = %v, want ErrBrokenBackchain", err)
	}
}

func TestBackchainRejectsForgedParticipantSig(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	ref := seller.Vault()[0]
	txID, _, _ := splitRef(ref)
	rogue, _ := dcrypto.GenerateKey()
	forged, err := rogue.Sign([]byte("x"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	seller.mu.Lock()
	rec := seller.records[txID]
	tampered := *rec
	tampered.partySigs = map[string]dcrypto.Signature{"BankA": forged}
	seller.records[txID] = &tampered
	seller.mu.Unlock()
	if _, err := n.VerifyBackchain("SellerCo", ref); !errors.Is(err, ErrBrokenBackchain) {
		t.Fatalf("forged participant sig = %v, want ErrBrokenBackchain", err)
	}
}

func TestBackchainRejectsForgedOwnerSig(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.Issue("BankA", "SellerCo", []byte("asset"), []string{"BankA", "SellerCo"}); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	seller, _ := n.Party("SellerCo")
	tid, err := n.Transfer("SellerCo", seller.Vault()[0], "BuyerInc", nil, nil)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	buyer, _ := n.Party("BuyerInc")
	ref := buyer.Vault()[0]
	// Baseline: the chain verifies.
	if _, err := n.VerifyBackchain("BuyerInc", ref); err != nil {
		t.Fatalf("VerifyBackchain: %v", err)
	}
	// Forge the owner signature of the transfer's input.
	rogue, _ := dcrypto.GenerateKey()
	forged, _ := rogue.Sign([]byte("x"))
	buyer.mu.Lock()
	rec := buyer.records[tid]
	tampered := *rec
	tampered.ownerSigs = map[string]dcrypto.Signature{}
	for k := range rec.ownerSigs {
		tampered.ownerSigs[k] = forged
	}
	buyer.records[tid] = &tampered
	buyer.mu.Unlock()
	if _, err := n.VerifyBackchain("BuyerInc", ref); !errors.Is(err, ErrBrokenBackchain) {
		t.Fatalf("forged owner sig = %v, want ErrBrokenBackchain", err)
	}
}

func TestBackchainMalformedRef(t *testing.T) {
	n := newNet(t, Config{})
	if _, err := n.VerifyBackchain("BankA", "garbage"); !errors.Is(err, ErrBrokenBackchain) {
		t.Fatalf("malformed ref = %v, want ErrBrokenBackchain", err)
	}
	if _, err := n.VerifyBackchain("Ghost", "a:0"); !errors.Is(err, ErrUnknownParty) {
		t.Fatalf("unknown party = %v, want ErrUnknownParty", err)
	}
}

func TestSplitRef(t *testing.T) {
	cases := []struct {
		in    string
		txID  string
		index string
		ok    bool
	}{
		{"abc:0", "abc", "0", true},
		{"a:b:2", "a:b", "2", true},
		{"abc", "", "", false},
		{":0", "", "", false},
		{"abc:", "", "", false},
	}
	for _, c := range cases {
		txID, index, ok := splitRef(c.in)
		if txID != c.txID || index != c.index || ok != c.ok {
			t.Errorf("splitRef(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, txID, index, ok, c.txID, c.index, c.ok)
		}
	}
}
