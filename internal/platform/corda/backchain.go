package corda

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dltprivacy/internal/dcrypto"
)

// Backchain resolution: when a Corda party receives a state, it verifies the
// full provenance chain back to issuance — every transaction in the chain
// must recompute its Merkle root and carry a valid notary signature. This is
// the mechanism that makes per-transaction data distribution trustworthy
// without a global ledger, and it is also the privacy trade-off Corda
// documents: receiving a state means receiving (and seeing) its history.

// ErrBrokenBackchain is returned when provenance verification fails.
var ErrBrokenBackchain = errors.New("corda: broken backchain")

// VerifyBackchain walks the provenance of a state ref held by the party:
// for each transaction from the current one back to issuance it checks that
// the party holds the transaction, that the transaction's Merkle root is
// consistent, and that the notary signed the root. It returns the number of
// transactions verified.
func (n *Network) VerifyBackchain(partyName, ref string) (int, error) {
	p, err := n.Party(partyName)
	if err != nil {
		return 0, err
	}
	verified := 0
	visited := make(map[string]bool)
	queue := []string{ref}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		txID, _, ok := splitRef(cur)
		if !ok {
			return verified, fmt.Errorf("%w: malformed ref %q", ErrBrokenBackchain, cur)
		}
		if visited[txID] {
			continue
		}
		visited[txID] = true

		p.mu.Lock()
		rec, okTx := p.records[txID]
		p.mu.Unlock()
		if !okTx {
			return verified, fmt.Errorf("%w: missing transaction %s", ErrBrokenBackchain, txID)
		}
		root, err := rec.tx.Root()
		if err != nil {
			return verified, fmt.Errorf("%w: %v", ErrBrokenBackchain, err)
		}
		gotID, err := rec.tx.ID()
		if err != nil || gotID != txID {
			return verified, fmt.Errorf("%w: transaction %s does not match its id", ErrBrokenBackchain, txID)
		}
		if err := n.notary.PublicKey().Verify(root[:], rec.notarySig); err != nil {
			return verified, fmt.Errorf("%w: notary signature invalid for %s", ErrBrokenBackchain, txID)
		}
		// Every recorded participant signature must verify against the
		// party's enrolled key.
		for signer, sig := range rec.partySigs {
			sp, err := n.Party(signer)
			if err != nil {
				return verified, fmt.Errorf("%w: unknown signer %s on %s", ErrBrokenBackchain, signer, txID)
			}
			if err := sp.key.Public().Verify(root[:], sig); err != nil {
				return verified, fmt.Errorf("%w: signature of %s invalid on %s", ErrBrokenBackchain, signer, txID)
			}
		}
		// Spender authorization: every consumed input must carry a valid
		// signature under the one-time key of the state it consumes. The
		// producing transaction travels in the backchain, so the verifier
		// can extract the owner key from its outputs.
		for _, inRef := range rec.tx.Inputs {
			if err := n.verifyOwnerSig(p, rec, inRef, root); err != nil {
				return verified, err
			}
		}
		verified++
		queue = append(queue, rec.tx.Inputs...)
	}
	return verified, nil
}

// verifyOwnerSig checks the one-time-key signature authorizing consumption
// of input inRef within the transaction whose root is given.
func (n *Network) verifyOwnerSig(p *Party, rec *txRecord, inRef string, root [32]byte) error {
	sig, ok := rec.ownerSigs[inRef]
	if !ok {
		return fmt.Errorf("%w: no owner signature for input %s", ErrBrokenBackchain, inRef)
	}
	priorID, idxStr, ok := splitRef(inRef)
	if !ok {
		return fmt.Errorf("%w: malformed input ref %q", ErrBrokenBackchain, inRef)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return fmt.Errorf("%w: bad output index in %q", ErrBrokenBackchain, inRef)
	}
	p.mu.Lock()
	prior, okPrior := p.records[priorID]
	p.mu.Unlock()
	if !okPrior {
		return fmt.Errorf("%w: missing producer %s of input %s", ErrBrokenBackchain, priorID, inRef)
	}
	if idx < 0 || idx >= len(prior.tx.Outputs) {
		return fmt.Errorf("%w: input %s points past producer outputs", ErrBrokenBackchain, inRef)
	}
	ownerKey, err := dcrypto.ParsePublicKey(prior.tx.Outputs[idx].OwnerKey)
	if err != nil {
		return fmt.Errorf("%w: bad owner key on %s", ErrBrokenBackchain, inRef)
	}
	if err := ownerKey.Verify(root[:], sig); err != nil {
		return fmt.Errorf("%w: owner signature invalid for input %s", ErrBrokenBackchain, inRef)
	}
	return nil
}

// splitRef splits "txID:index".
func splitRef(ref string) (txID string, index string, ok bool) {
	i := strings.LastIndexByte(ref, ':')
	if i <= 0 || i == len(ref)-1 {
		return "", "", false
	}
	return ref[:i], ref[i+1:], true
}
