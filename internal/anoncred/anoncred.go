package anoncred

import (
	"fmt"
	"math/big"
	"sync"

	"dltprivacy/internal/zkp"
)

// Issuer is the credential authority. It holds one blind-signing key per
// attribute set (for example {"role=bank"}), so a presented token proves
// exactly the attribute set it was issued for and nothing else.
type Issuer struct {
	name string

	mu      sync.Mutex
	signers map[string]*blindSigner // canonical attrs -> signer
}

// NewIssuer creates an issuer.
func NewIssuer(name string) *Issuer {
	return &Issuer{name: name, signers: make(map[string]*blindSigner)}
}

// Name returns the issuer's name.
func (is *Issuer) Name() string { return is.name }

// RegisterAttributeSet creates (or returns) the verification key for an
// attribute set. Relying parties pin this key.
func (is *Issuer) RegisterAttributeSet(attrs []string) (zkp.Point, error) {
	key := string(canonicalAttrs(attrs))
	is.mu.Lock()
	defer is.mu.Unlock()
	if s, ok := is.signers[key]; ok {
		return s.pub, nil
	}
	s, err := newBlindSigner()
	if err != nil {
		return zkp.Point{}, fmt.Errorf("register attribute set: %w", err)
	}
	is.signers[key] = s
	return s.pub, nil
}

// AttributeKey returns the verification key for an attribute set.
func (is *Issuer) AttributeKey(attrs []string) (zkp.Point, error) {
	key := string(canonicalAttrs(attrs))
	is.mu.Lock()
	defer is.mu.Unlock()
	s, ok := is.signers[key]
	if !ok {
		return zkp.Point{}, ErrUnknownAttributeSet
	}
	return s.pub, nil
}

// BeginIssuance opens a blind-signing session for an attribute set. The
// issuer authenticates and authorizes the requester out of band (it is the
// CA that verified the party's identity at onboarding) but learns nothing
// about the token being signed.
func (is *Issuer) BeginIssuance(attrs []string) (sessionID uint64, r zkp.Point, err error) {
	key := string(canonicalAttrs(attrs))
	is.mu.Lock()
	signer, ok := is.signers[key]
	is.mu.Unlock()
	if !ok {
		return 0, zkp.Point{}, ErrUnknownAttributeSet
	}
	return signer.begin()
}

// FinishIssuance completes a blind-signing session.
func (is *Issuer) FinishIssuance(attrs []string, sessionID uint64, c *big.Int) (*big.Int, error) {
	key := string(canonicalAttrs(attrs))
	is.mu.Lock()
	signer, ok := is.signers[key]
	is.mu.Unlock()
	if !ok {
		return nil, ErrUnknownAttributeSet
	}
	return signer.finish(sessionID, c)
}

// token is one single-show credential: a blind signature over a fresh
// Pedersen commitment to the wallet's master secret.
type token struct {
	comm  zkp.Commitment
	blind *big.Int // commitment blinding factor
	sig   blindSignature
}

// Wallet holds a party's master secret and its unused credential tokens.
type Wallet struct {
	master *big.Int

	mu     sync.Mutex
	tokens map[string][]token // canonical attrs -> unused tokens
}

// NewWallet creates a wallet with a fresh master secret.
func NewWallet() (*Wallet, error) {
	s, err := zkp.RandScalar()
	if err != nil {
		return nil, fmt.Errorf("wallet master secret: %w", err)
	}
	return &Wallet{master: s, tokens: make(map[string][]token)}, nil
}

// RequestTokens runs the blind issuance protocol n times against the issuer,
// storing n unlinkable one-show tokens for the attribute set.
func (w *Wallet) RequestTokens(is *Issuer, attrs []string, n int) error {
	pub, err := is.AttributeKey(attrs)
	if err != nil {
		return err
	}
	key := string(canonicalAttrs(attrs))
	for i := 0; i < n; i++ {
		blinding, err := zkp.RandScalar()
		if err != nil {
			return err
		}
		comm := zkp.Commit(w.master, blinding)
		sessionID, r, err := is.BeginIssuance(attrs)
		if err != nil {
			return fmt.Errorf("begin issuance: %w", err)
		}
		req, c, err := blind(pub, r, comm.Bytes())
		if err != nil {
			return err
		}
		s, err := is.FinishIssuance(attrs, sessionID, c)
		if err != nil {
			return fmt.Errorf("finish issuance: %w", err)
		}
		sig := unblind(req, s)
		// A wallet always sanity-checks the unblinded signature before
		// accepting the token.
		if err := verifySchnorrSig(pub, comm.Bytes(), sig); err != nil {
			return fmt.Errorf("issuer produced invalid signature: %w", err)
		}
		w.mu.Lock()
		w.tokens[key] = append(w.tokens[key], token{comm: comm, blind: blinding, sig: sig})
		w.mu.Unlock()
	}
	return nil
}

// TokensLeft reports the number of unused tokens for an attribute set.
func (w *Wallet) TokensLeft(attrs []string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.tokens[string(canonicalAttrs(attrs))])
}

// NymLinkProof proves, with a single shared response for the master secret,
// that the presenter knows (master, blind) opening the token commitment
// C = master*G + blind*H AND that the pseudonym satisfies Nym = master*base.
// It is the AND-composition that gives Idemix's scope-exclusive pseudonym
// semantics.
type NymLinkProof struct {
	A1, A2 zkp.Point
	Sm, Sb *big.Int
}

func proveNymLink(master, blinding *big.Int, comm zkp.Commitment, base, nym zkp.Point, context []byte) (NymLinkProof, error) {
	km, err := zkp.RandScalar()
	if err != nil {
		return NymLinkProof{}, err
	}
	kb, err := zkp.RandScalar()
	if err != nil {
		return NymLinkProof{}, err
	}
	a1 := zkp.MulBase(km).Add(zkp.GeneratorH().Mul(kb))
	a2 := base.Mul(km)
	c := zkp.Challenge([]byte("anoncred/nymlink"),
		comm.Bytes(), base.Bytes(), nym.Bytes(), a1.Bytes(), a2.Bytes(), context)
	sm := new(big.Int).Mul(c, master)
	sm.Add(sm, km)
	sm.Mod(sm, zkp.Order())
	sb := new(big.Int).Mul(c, blinding)
	sb.Add(sb, kb)
	sb.Mod(sb, zkp.Order())
	return NymLinkProof{A1: a1, A2: a2, Sm: sm, Sb: sb}, nil
}

func verifyNymLink(proof NymLinkProof, comm zkp.Commitment, base, nym zkp.Point, context []byte) error {
	if proof.Sm == nil || proof.Sb == nil {
		return ErrBadCredential
	}
	c := zkp.Challenge([]byte("anoncred/nymlink"),
		comm.Bytes(), base.Bytes(), nym.Bytes(), proof.A1.Bytes(), proof.A2.Bytes(), context)
	// sm*G + sb*H == A1 + c*C
	lhs1 := zkp.MulBase(proof.Sm).Add(zkp.GeneratorH().Mul(proof.Sb))
	rhs1 := proof.A1.Add(comm.P.Mul(c))
	if !lhs1.Equal(rhs1) {
		return ErrBadCredential
	}
	// sm*base == A2 + c*Nym
	lhs2 := base.Mul(proof.Sm)
	rhs2 := proof.A2.Add(nym.Mul(c))
	if !lhs2.Equal(rhs2) {
		return ErrBadCredential
	}
	return nil
}

// Presentation is a zero-knowledge show of a credential: it proves "I hold a
// credential from the issuer for these attributes" bound to a context, and
// carries a scope-exclusive pseudonym — the same wallet presents the same
// pseudonym within one context and unlinkable pseudonyms across contexts.
type Presentation struct {
	Attrs   []string
	Context string

	Comm zkp.Commitment
	Sig  blindSignature
	Nym  zkp.Point
	Link NymLinkProof
}

// Present consumes one token and produces a presentation for the context.
func (w *Wallet) Present(attrs []string, context string) (Presentation, error) {
	key := string(canonicalAttrs(attrs))
	w.mu.Lock()
	list := w.tokens[key]
	if len(list) == 0 {
		w.mu.Unlock()
		return Presentation{}, ErrNoTokens
	}
	tok := list[len(list)-1]
	w.tokens[key] = list[:len(list)-1]
	w.mu.Unlock()

	base := hashToPoint(context)
	nym := base.Mul(w.master)
	link, err := proveNymLink(w.master, tok.blind, tok.comm, base, nym, []byte(context))
	if err != nil {
		return Presentation{}, err
	}
	return Presentation{
		Attrs:   append([]string(nil), attrs...),
		Context: context,
		Comm:    tok.comm,
		Sig:     tok.sig,
		Nym:     nym,
		Link:    link,
	}, nil
}

// VerifyPresentation checks a presentation against the issuer's attribute
// key: the blind signature certifies the commitment, and the link proof ties
// the pseudonym to the committed master secret.
func VerifyPresentation(p Presentation, attrKey zkp.Point) error {
	if err := verifySchnorrSig(attrKey, p.Comm.Bytes(), p.Sig); err != nil {
		return fmt.Errorf("token signature: %w", err)
	}
	base := hashToPoint(p.Context)
	if err := verifyNymLink(p.Link, p.Comm, base, p.Nym, []byte(p.Context)); err != nil {
		return fmt.Errorf("pseudonym link: %w", err)
	}
	return nil
}

// NymString returns a stable identifier for the presentation's pseudonym,
// usable for same-context linkage (auditing, double-show detection).
func (p Presentation) NymString() string {
	sum := p.Nym.Bytes()
	return fmt.Sprintf("%x", sum[:16])
}
