// Package anoncred implements an Idemix-style anonymous credential system
// (the paper's "Zero-knowledge proof of identity", §2.1 and §5 "Fabric …
// Idemix"): an issuer certifies attributes for a party; the party can later
// prove possession of the credential with presentations that are unlinkable
// to its identity, unlinkable to each other across contexts, and — because
// issuance is blind — unlinkable even by the issuer.
//
// The construction substitutes stdlib-friendly primitives for Idemix's
// pairing-based CL signatures (documented in DESIGN.md):
//
//   - blind Schnorr signatures over P-256 for one-show credential tokens,
//   - Pedersen commitments to a master secret embedded in each token,
//   - per-context pseudonyms Nym = s·H(ctx) with an equality-of-discrete-log
//     proof tying the pseudonym to the committed master secret, giving
//     Idemix's scope-exclusive pseudonym semantics.
package anoncred

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/zkp"
)

// Errors returned by the credential system.
var (
	// ErrBadCredential is returned when a presentation fails verification.
	ErrBadCredential = errors.New("anoncred: credential verification failed")
	// ErrUnknownSession is returned when a signing session id is unknown
	// or already used.
	ErrUnknownSession = errors.New("anoncred: unknown signing session")
	// ErrNoTokens is returned when a wallet has run out of one-show
	// tokens for the requested attribute set.
	ErrNoTokens = errors.New("anoncred: no unused credential tokens")
	// ErrUnknownAttributeSet is returned when the issuer has no key for
	// the requested attribute set.
	ErrUnknownAttributeSet = errors.New("anoncred: unknown attribute set")
)

// blindSignature is a Schnorr signature (R, S) on a message, produced through
// the blind issuance protocol so the signer never sees message or signature.
type blindSignature struct {
	R zkp.Point
	S *big.Int
}

// verifySchnorrSig checks the ordinary Schnorr verification equation
// s*G == R + c*P with c = H(P, R, m).
func verifySchnorrSig(pub zkp.Point, msg []byte, sig blindSignature) error {
	if sig.S == nil {
		return ErrBadCredential
	}
	c := zkp.Challenge([]byte("anoncred/sig"), pub.Bytes(), sig.R.Bytes(), msg)
	lhs := zkp.MulBase(sig.S)
	rhs := sig.R.Add(pub.Mul(c))
	if !lhs.Equal(rhs) {
		return ErrBadCredential
	}
	return nil
}

// signerSession holds the issuer-side nonce of one blind-signing run.
type signerSession struct {
	k *big.Int
}

// blindSigner is the issuer-side state machine of the blind Schnorr
// protocol.
type blindSigner struct {
	x   *big.Int
	pub zkp.Point

	mu       sync.Mutex
	sessions map[uint64]signerSession
	nextID   uint64
}

func newBlindSigner() (*blindSigner, error) {
	x, err := zkp.RandScalar()
	if err != nil {
		return nil, fmt.Errorf("signer key: %w", err)
	}
	return &blindSigner{x: x, pub: zkp.MulBase(x), sessions: make(map[uint64]signerSession)}, nil
}

// begin opens a signing session and returns (sessionID, R = k*G).
func (b *blindSigner) begin() (uint64, zkp.Point, error) {
	k, err := zkp.RandScalar()
	if err != nil {
		return 0, zkp.Point{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	b.sessions[id] = signerSession{k: k}
	return id, zkp.MulBase(k), nil
}

// finish consumes the session and returns s = k + c*x. Single use: replays
// are rejected, which prevents nonce reuse.
func (b *blindSigner) finish(id uint64, c *big.Int) (*big.Int, error) {
	b.mu.Lock()
	sess, ok := b.sessions[id]
	delete(b.sessions, id)
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSession
	}
	s := new(big.Int).Mul(c, b.x)
	s.Add(s, sess.k)
	s.Mod(s, zkp.Order())
	return s, nil
}

// blindRequest carries the user-side blinding state between the two rounds.
type blindRequest struct {
	alpha, beta *big.Int
	rPrime      zkp.Point
	msg         []byte
}

// blind computes the blinded challenge for message msg given the issuer's
// commitment R.
func blind(pub, r zkp.Point, msg []byte) (blindRequest, *big.Int, error) {
	alpha, err := zkp.RandScalar()
	if err != nil {
		return blindRequest{}, nil, err
	}
	beta, err := zkp.RandScalar()
	if err != nil {
		return blindRequest{}, nil, err
	}
	rPrime := r.Add(zkp.MulBase(alpha)).Add(pub.Mul(beta))
	cPrime := zkp.Challenge([]byte("anoncred/sig"), pub.Bytes(), rPrime.Bytes(), msg)
	c := new(big.Int).Add(cPrime, beta)
	c.Mod(c, zkp.Order())
	return blindRequest{alpha: alpha, beta: beta, rPrime: rPrime, msg: msg}, c, nil
}

// unblind turns the issuer's response into the final signature.
func unblind(req blindRequest, s *big.Int) blindSignature {
	sPrime := new(big.Int).Add(s, req.alpha)
	sPrime.Mod(sPrime, zkp.Order())
	return blindSignature{R: req.rPrime, S: sPrime}
}

// hashToPoint derives a context-specific base point for pseudonyms. Using
// H(ctx)*H keeps the discrete log relative to G unknown.
func hashToPoint(context string) zkp.Point {
	scalar := zkp.Challenge([]byte("anoncred/ctx"), []byte(context))
	return zkp.GeneratorH().Mul(scalar)
}

// canonicalAttrs produces a deterministic encoding of an attribute set.
func canonicalAttrs(attrs []string) []byte {
	parts := make([][]byte, 0, len(attrs)+1)
	parts = append(parts, []byte("anoncred/attrs"))
	for _, a := range sortedCopy(attrs) {
		parts = append(parts, []byte(a))
	}
	sum := dcrypto.HashConcat(parts...)
	return sum[:]
}

func sortedCopy(in []string) []string {
	out := make([]string, len(in))
	copy(out, in)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
