package anoncred

import (
	"errors"
	"math/big"
	"testing"

	"dltprivacy/internal/zkp"
)

var bankAttrs = []string{"role=bank", "jurisdiction=AU"}

func setup(t *testing.T) (*Issuer, *Wallet, zkp.Point) {
	t.Helper()
	issuer := NewIssuer("ConsortiumCA")
	key, err := issuer.RegisterAttributeSet(bankAttrs)
	if err != nil {
		t.Fatalf("RegisterAttributeSet: %v", err)
	}
	wallet, err := NewWallet()
	if err != nil {
		t.Fatalf("NewWallet: %v", err)
	}
	return issuer, wallet, key
}

func TestIssueAndPresent(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 3); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	if got := wallet.TokensLeft(bankAttrs); got != 3 {
		t.Fatalf("TokensLeft = %d, want 3", got)
	}
	p, err := wallet.Present(bankAttrs, "channel-trade-1")
	if err != nil {
		t.Fatalf("Present: %v", err)
	}
	if err := VerifyPresentation(p, key); err != nil {
		t.Fatalf("VerifyPresentation: %v", err)
	}
	if got := wallet.TokensLeft(bankAttrs); got != 2 {
		t.Fatalf("TokensLeft after present = %d, want 2", got)
	}
}

func TestPresentationRejectsWrongIssuerKey(t *testing.T) {
	issuer, wallet, _ := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	p, err := wallet.Present(bankAttrs, "ctx")
	if err != nil {
		t.Fatalf("Present: %v", err)
	}
	otherIssuer := NewIssuer("Evil")
	otherKey, _ := otherIssuer.RegisterAttributeSet(bankAttrs)
	if err := VerifyPresentation(p, otherKey); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("wrong issuer key = %v, want ErrBadCredential", err)
	}
}

func TestPresentationContextBinding(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	p, _ := wallet.Present(bankAttrs, "ctx-A")
	p.Context = "ctx-B" // replay into a different context
	if err := VerifyPresentation(p, key); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("context replay = %v, want ErrBadCredential", err)
	}
}

func TestPresentationTamperedNym(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	p, _ := wallet.Present(bankAttrs, "ctx")
	x, _ := zkp.RandScalar()
	p.Nym = zkp.MulBase(x)
	if err := VerifyPresentation(p, key); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("tampered nym = %v, want ErrBadCredential", err)
	}
}

func TestScopeExclusivePseudonyms(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 2); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	p1, _ := wallet.Present(bankAttrs, "audit-scope")
	p2, _ := wallet.Present(bankAttrs, "audit-scope")
	if err := VerifyPresentation(p1, key); err != nil {
		t.Fatalf("p1: %v", err)
	}
	if err := VerifyPresentation(p2, key); err != nil {
		t.Fatalf("p2: %v", err)
	}
	// Same wallet, same scope: pseudonyms match (controlled linkability).
	if p1.NymString() != p2.NymString() {
		t.Fatal("same-scope presentations must share a pseudonym")
	}
	// Different tokens: commitments differ (unlinkable token material).
	if p1.Comm.Equal(p2.Comm) {
		t.Fatal("one-show tokens must not repeat commitments")
	}
}

func TestCrossContextUnlinkability(t *testing.T) {
	issuer, wallet, _ := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 2); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	p1, _ := wallet.Present(bankAttrs, "channel-1")
	p2, _ := wallet.Present(bankAttrs, "channel-2")
	if p1.NymString() == p2.NymString() {
		t.Fatal("cross-context pseudonyms must differ")
	}
	if p1.Comm.Equal(p2.Comm) {
		t.Fatal("cross-context commitments must differ")
	}
}

func TestTwoWalletsDistinctNyms(t *testing.T) {
	issuer := NewIssuer("CA")
	if _, err := issuer.RegisterAttributeSet(bankAttrs); err != nil {
		t.Fatalf("RegisterAttributeSet: %v", err)
	}
	w1, _ := NewWallet()
	w2, _ := NewWallet()
	if err := w1.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens w1: %v", err)
	}
	if err := w2.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens w2: %v", err)
	}
	p1, _ := w1.Present(bankAttrs, "scope")
	p2, _ := w2.Present(bankAttrs, "scope")
	if p1.NymString() == p2.NymString() {
		t.Fatal("different wallets must have different pseudonyms in the same scope")
	}
}

func TestNoTokens(t *testing.T) {
	_, wallet, _ := setup(t)
	if _, err := wallet.Present(bankAttrs, "ctx"); !errors.Is(err, ErrNoTokens) {
		t.Fatalf("Present without tokens = %v, want ErrNoTokens", err)
	}
}

func TestUnknownAttributeSet(t *testing.T) {
	issuer, wallet, _ := setup(t)
	ghost := []string{"role=ghost"}
	if err := wallet.RequestTokens(issuer, ghost, 1); !errors.Is(err, ErrUnknownAttributeSet) {
		t.Fatalf("RequestTokens unknown attrs = %v, want ErrUnknownAttributeSet", err)
	}
	if _, _, err := issuer.BeginIssuance(ghost); !errors.Is(err, ErrUnknownAttributeSet) {
		t.Fatalf("BeginIssuance unknown attrs = %v, want ErrUnknownAttributeSet", err)
	}
	if _, err := issuer.FinishIssuance(ghost, 1, big.NewInt(1)); !errors.Is(err, ErrUnknownAttributeSet) {
		t.Fatalf("FinishIssuance unknown attrs = %v, want ErrUnknownAttributeSet", err)
	}
}

func TestSigningSessionSingleUse(t *testing.T) {
	issuer, _, key := setup(t)
	id, r, err := issuer.BeginIssuance(bankAttrs)
	if err != nil {
		t.Fatalf("BeginIssuance: %v", err)
	}
	req, c, err := blind(key, r, []byte("msg"))
	if err != nil {
		t.Fatalf("blind: %v", err)
	}
	if _, err := issuer.FinishIssuance(bankAttrs, id, c); err != nil {
		t.Fatalf("FinishIssuance: %v", err)
	}
	if _, err := issuer.FinishIssuance(bankAttrs, id, c); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("session replay = %v, want ErrUnknownSession", err)
	}
	_ = req
}

func TestIssuerCannotLinkTokens(t *testing.T) {
	// Blind issuance: the challenge the issuer sees is independent of the
	// final signature's challenge. We verify structurally that the values
	// the issuer observes (R, c) differ from the presentation values
	// (R', c'), which is the linkage surface.
	issuer, wallet, _ := setup(t)
	id, r, err := issuer.BeginIssuance(bankAttrs)
	if err != nil {
		t.Fatalf("BeginIssuance: %v", err)
	}
	key, _ := issuer.AttributeKey(bankAttrs)
	req, c, err := blind(key, r, []byte("token-commitment"))
	if err != nil {
		t.Fatalf("blind: %v", err)
	}
	s, err := issuer.FinishIssuance(bankAttrs, id, c)
	if err != nil {
		t.Fatalf("FinishIssuance: %v", err)
	}
	sig := unblind(req, s)
	if sig.R.Equal(r) {
		t.Fatal("unblinded R' must differ from issuer-visible R")
	}
	if sig.S.Cmp(s) == 0 {
		t.Fatal("unblinded s' must differ from issuer-visible s")
	}
	_ = wallet
}

func TestRegisterAttributeSetIdempotent(t *testing.T) {
	issuer := NewIssuer("CA")
	k1, err := issuer.RegisterAttributeSet(bankAttrs)
	if err != nil {
		t.Fatalf("RegisterAttributeSet: %v", err)
	}
	k2, err := issuer.RegisterAttributeSet([]string{"jurisdiction=AU", "role=bank"}) // order-insensitive
	if err != nil {
		t.Fatalf("RegisterAttributeSet: %v", err)
	}
	if !k1.Equal(k2) {
		t.Fatal("attribute sets must be canonicalized order-insensitively")
	}
}
