package anoncred

import (
	"errors"
	"sync"

	"dltprivacy/internal/zkp"
)

// ErrDoubleShow is returned when a one-show credential token is presented
// twice.
var ErrDoubleShow = errors.New("anoncred: credential token already shown")

// ShowRegistry is verifier-side double-show detection: honest wallets
// consume each token once, but nothing stops a malicious wallet from
// replaying a token, so relying parties track the token commitments they
// have accepted. Tracking commitments does not harm unlinkability — each
// token carries a fresh commitment by construction.
type ShowRegistry struct {
	mu   sync.Mutex
	seen map[string]bool
}

// NewShowRegistry creates an empty registry.
func NewShowRegistry() *ShowRegistry {
	return &ShowRegistry{seen: make(map[string]bool)}
}

// Accept verifies the presentation against the issuer's attribute key and
// enforces one-show semantics: the second presentation of the same token
// fails with ErrDoubleShow.
func (r *ShowRegistry) Accept(p Presentation, attrKey zkp.Point) error {
	key := string(p.Comm.Bytes())
	r.mu.Lock()
	shown := r.seen[key]
	r.mu.Unlock()
	if shown {
		return ErrDoubleShow
	}
	// Verify before recording, so a failed presentation does not burn the
	// token commitment for its honest owner.
	if err := VerifyPresentation(p, attrKey); err != nil {
		return err
	}
	r.mu.Lock()
	r.seen[key] = true
	r.mu.Unlock()
	return nil
}

// Shown returns how many distinct tokens the registry has accepted.
func (r *ShowRegistry) Shown() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}
