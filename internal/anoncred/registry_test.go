package anoncred

import (
	"errors"
	"testing"
)

func TestShowRegistryAccepts(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 2); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	reg := NewShowRegistry()
	p1, _ := wallet.Present(bankAttrs, "ctx")
	p2, _ := wallet.Present(bankAttrs, "ctx")
	if err := reg.Accept(p1, key); err != nil {
		t.Fatalf("Accept p1: %v", err)
	}
	if err := reg.Accept(p2, key); err != nil {
		t.Fatalf("Accept p2: %v", err)
	}
	if reg.Shown() != 2 {
		t.Fatalf("Shown = %d, want 2", reg.Shown())
	}
}

func TestShowRegistryDetectsReplay(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	reg := NewShowRegistry()
	p, _ := wallet.Present(bankAttrs, "ctx")
	if err := reg.Accept(p, key); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	// A malicious wallet replays the same presentation.
	if err := reg.Accept(p, key); !errors.Is(err, ErrDoubleShow) {
		t.Fatalf("replay = %v, want ErrDoubleShow", err)
	}
	if reg.Shown() != 1 {
		t.Fatalf("Shown = %d, want 1", reg.Shown())
	}
}

func TestShowRegistryRejectsInvalidWithoutBurning(t *testing.T) {
	issuer, wallet, key := setup(t)
	if err := wallet.RequestTokens(issuer, bankAttrs, 1); err != nil {
		t.Fatalf("RequestTokens: %v", err)
	}
	reg := NewShowRegistry()
	p, _ := wallet.Present(bankAttrs, "ctx")
	bad := p
	bad.Context = "other" // breaks the link proof
	if err := reg.Accept(bad, key); err == nil {
		t.Fatal("invalid presentation must be rejected")
	}
	// The honest presentation still goes through: the failed attempt did
	// not burn the token.
	if err := reg.Accept(p, key); err != nil {
		t.Fatalf("Accept after failed attempt: %v", err)
	}
}
