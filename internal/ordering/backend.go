package ordering

import (
	"fmt"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

// Backend abstracts the ordering service a platform plugs in: the solo
// Service (third-party or single-member operated) or a member-run
// replicated ClusterSet (§3.4 mitigation).
type Backend interface {
	// Submit queues a transaction for ordering on its channel.
	Submit(tx ledger.Transaction) error
	// Subscribe registers a block consumer for a channel.
	Subscribe(channel string, deliver DeliverFunc)
	// Operators names the principals operating the service; they observe
	// whatever the visibility level exposes.
	Operators() []string
}

// Compile-time checks.
var (
	_ Backend = (*Service)(nil)
	_ Backend = (*ClusterSet)(nil)
)

// Operators implements Backend for the solo service.
func (s *Service) Operators() []string { return []string{s.operator} }

// ClusterSet runs one replicated ordering cluster per channel, all operated
// by the same consortium members.
type ClusterSet struct {
	operators  []string
	visibility Visibility
	log        *audit.Log
	batch      int

	mu       sync.Mutex
	clusters map[string]*Cluster
}

// ClusterSetOption configures a ClusterSet.
type ClusterSetOption func(*ClusterSet)

// WithSetAudit attaches leakage accounting to every cluster.
func WithSetAudit(log *audit.Log) ClusterSetOption {
	return func(cs *ClusterSet) { cs.log = log }
}

// WithSetBatch sets transactions per block.
func WithSetBatch(n int) ClusterSetOption {
	return func(cs *ClusterSet) {
		if n > 0 {
			cs.batch = n
		}
	}
}

// NewClusterSet creates a per-channel cluster factory operated by the given
// members.
func NewClusterSet(operators []string, visibility Visibility, opts ...ClusterSetOption) (*ClusterSet, error) {
	if len(operators) < 3 {
		return nil, ErrClusterSize
	}
	cs := &ClusterSet{
		operators:  append([]string(nil), operators...),
		visibility: visibility,
		batch:      1,
		clusters:   make(map[string]*Cluster),
	}
	for _, opt := range opts {
		opt(cs)
	}
	return cs, nil
}

// Operators implements Backend.
func (cs *ClusterSet) Operators() []string {
	return append([]string(nil), cs.operators...)
}

// Cluster returns (creating if needed) the cluster for a channel; exposed
// for fault injection in tests and experiments.
func (cs *ClusterSet) Cluster(channel string) (*Cluster, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c, ok := cs.clusters[channel]
	if !ok {
		var err error
		c, err = NewCluster(channel, cs.operators, cs.visibility,
			WithClusterAudit(cs.log), WithClusterBatch(cs.batch))
		if err != nil {
			return nil, fmt.Errorf("cluster for %s: %w", channel, err)
		}
		cs.clusters[channel] = c
	}
	return c, nil
}

// Subscribe implements Backend.
func (cs *ClusterSet) Subscribe(channel string, deliver DeliverFunc) {
	c, err := cs.Cluster(channel)
	if err != nil {
		// Construction can only fail on cluster size, validated in
		// NewClusterSet; reaching here is a programming error surfaced on
		// the first Submit instead of a panic.
		return
	}
	c.Subscribe(deliver)
}

// Submit implements Backend.
func (cs *ClusterSet) Submit(tx ledger.Transaction) error {
	c, err := cs.Cluster(tx.Channel)
	if err != nil {
		return err
	}
	return c.Submit(tx)
}
