package ordering

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dltprivacy/internal/ledger"
)

// newTestReplicatedShard builds a 3-node replicated shard with distinct
// operator names derived from the prefix.
func newTestReplicatedShard(t testing.TB, prefix string) *ReplicatedShard {
	t.Helper()
	ops := []string{prefix + "-a", prefix + "-b", prefix + "-c"}
	rs, err := NewReplicatedShard(ops, VisibilityEnvelope)
	if err != nil {
		t.Fatalf("NewReplicatedShard: %v", err)
	}
	return rs
}

// orderedLog is a delivery-order verifier: blocks must arrive in height
// order with an intact hash chain and no duplicate transactions.
type orderedLog struct {
	next     uint64
	lastHash [32]byte
	txs      int
	seen     map[string]bool
	err      error
}

func (cl *orderedLog) deliver(b ledger.Block) error {
	if cl.err != nil {
		return cl.err
	}
	if b.Number != cl.next {
		cl.err = fmt.Errorf("block %d out of order, want %d", b.Number, cl.next)
		return cl.err
	}
	if cl.next > 0 && b.PrevHash != cl.lastHash {
		cl.err = fmt.Errorf("block %d breaks the hash chain", b.Number)
		return cl.err
	}
	if cl.seen == nil {
		cl.seen = make(map[string]bool)
	}
	for _, tx := range b.Txs {
		id := tx.ID()
		if cl.seen[id] {
			cl.err = fmt.Errorf("block %d re-delivers tx %s", b.Number, id)
			return cl.err
		}
		cl.seen[id] = true
	}
	cl.next++
	cl.lastHash = b.Hash()
	cl.txs += len(b.Txs)
	return nil
}

func TestReplicatedShardFailoverOnSubmit(t *testing.T) {
	rs := newTestReplicatedShard(t, "op")
	cl := &orderedLog{}
	rs.Subscribe("trade", cl.deliver)
	for i := 0; i < 3; i++ {
		if err := rs.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	dead, err := rs.CrashLeader("trade")
	if err != nil {
		t.Fatalf("CrashLeader: %v", err)
	}
	// The next submission rides the automatic election: no error surfaces.
	for i := 3; i < 6; i++ {
		if err := rs.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d after leader kill: %v", i, err)
		}
	}
	if got := rs.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	c, err := rs.Cluster("trade")
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	leader, err := c.Leader()
	if err != nil {
		t.Fatalf("Leader after failover: %v", err)
	}
	if leader == dead {
		t.Fatalf("leader %s did not change across the kill", leader)
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	if cl.txs != 6 || cl.next != 6 {
		t.Fatalf("delivered %d txs over %d blocks, want 6 over 6", cl.txs, cl.next)
	}
}

// TestShardedFailoverSingleFlightElection pins the stampede contract: many
// submitters hitting the same dead leader run exactly one election between
// them.
func TestShardedFailoverSingleFlightElection(t *testing.T) {
	rs := newTestReplicatedShard(t, "op")
	var mu sync.Mutex
	delivered := 0
	rs.Subscribe("trade", func(b ledger.Block) error {
		mu.Lock()
		delivered += len(b.Txs)
		mu.Unlock()
		return nil
	})
	if err := rs.Submit(mkTx("trade", "BankA", "seed")); err != nil {
		t.Fatalf("seed submit: %v", err)
	}
	if _, err := rs.CrashLeader("trade"); err != nil {
		t.Fatalf("CrashLeader: %v", err)
	}
	const nSubmitters = 16
	errs := make([]error, nSubmitters)
	var wg sync.WaitGroup
	for w := 0; w < nSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = rs.Submit(mkTx("trade", "BankA", fmt.Sprintf("w%d", w)))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", w, err)
		}
	}
	if got := rs.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1 (single-flight)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != nSubmitters+1 {
		t.Fatalf("delivered %d txs, want %d", delivered, nSubmitters+1)
	}
}

// TestReplicatedShardQuorumLossCancelsSubmission pins the client contract
// when failover itself fails: the error means "not ordered" — the queued
// transaction is withdrawn, and a later successful submission delivers it
// exactly once.
func TestReplicatedShardQuorumLossCancelsSubmission(t *testing.T) {
	rs := newTestReplicatedShard(t, "op")
	cl := &orderedLog{}
	rs.Subscribe("trade", cl.deliver)
	if err := rs.Submit(mkTx("trade", "BankA", "seed")); err != nil {
		t.Fatalf("seed submit: %v", err)
	}
	c, err := rs.Cluster("trade")
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	// Crash both followers: the leader is alive but cannot replicate.
	leader, err := c.Leader()
	if err != nil {
		t.Fatalf("Leader: %v", err)
	}
	var downed []string
	for _, op := range rs.Operators() {
		if op != leader {
			if err := c.Crash(op); err != nil {
				t.Fatalf("Crash %s: %v", op, err)
			}
			downed = append(downed, op)
		}
	}
	if err := rs.Submit(mkTx("trade", "BankA", "lost")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Submit without quorum = %v, want ErrNoQuorum", err)
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("failed submission left %d txs queued, want 0", n)
	}
	for _, op := range downed {
		if err := c.Restart(op); err != nil {
			t.Fatalf("Restart %s: %v", op, err)
		}
	}
	if err := rs.Submit(mkTx("trade", "BankA", "after")); err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	if cl.txs != 2 {
		t.Fatalf("delivered %d txs, want 2 (cancelled tx must not resurface)", cl.txs)
	}
}

func TestReplicatedShardKillAndRevive(t *testing.T) {
	rs := newTestReplicatedShard(t, "op")
	cl := &orderedLog{}
	rs.Subscribe("trade", cl.deliver)
	for i := 0; i < 3; i++ {
		if err := rs.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	rs.Kill()
	if err := rs.Submit(mkTx("trade", "BankA", "down")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Submit on killed shard = %v, want ErrNoQuorum", err)
	}
	rs.Revive()
	for i := 3; i < 6; i++ {
		if err := rs.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d after revive: %v", i, err)
		}
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	// The chain resumed at its pre-kill height: 6 delivered txs, blocks in
	// order, and the rejected submission never resurfaced.
	if cl.txs != 6 {
		t.Fatalf("delivered %d txs, want 6", cl.txs)
	}
}

func TestReplicatedShardProbeHealth(t *testing.T) {
	rs := newTestReplicatedShard(t, "op")
	rs.Subscribe("trade", func(ledger.Block) error { return nil })
	if err := rs.Submit(mkTx("trade", "BankA", "seed")); err != nil {
		t.Fatalf("seed submit: %v", err)
	}
	if n := rs.ProbeHealth(); n != 0 {
		t.Fatalf("ProbeHealth on healthy shard ran %d elections, want 0", n)
	}
	if _, err := rs.CrashLeader("trade"); err != nil {
		t.Fatalf("CrashLeader: %v", err)
	}
	if n := rs.ProbeHealth(); n != 1 {
		t.Fatalf("ProbeHealth = %d elections, want 1", n)
	}
	c, err := rs.Cluster("trade")
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if _, err := c.Leader(); err != nil {
		t.Fatalf("no leader after probe: %v", err)
	}
	if got := rs.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
}

// TestShardedDeliveryOrderAcrossLeaderKill extends the delivery-order
// anchor suite with mid-stream shard death: while concurrent submitters
// drive traffic across channels on a replicated sharded topology, cluster
// leaders are killed between submissions. Failovers must be invisible to
// order: every channel still sees a gap-free, duplicate-free block
// sequence with an intact hash chain, and no submission is lost.
func TestShardedDeliveryOrderAcrossLeaderKill(t *testing.T) {
	const nShards = 4
	shards := make([]Backend, nShards)
	replicated := make([]*ReplicatedShard, nShards)
	for i := range shards {
		rs := newTestReplicatedShard(t, fmt.Sprintf("shard%d", i))
		shards[i] = rs
		replicated[i] = rs
	}
	sb, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	const (
		nChannels   = 8
		nSubmitters = 8
		perSubmit   = 30
	)
	logs := make([]*orderedLog, nChannels)
	channels := make([]string, nChannels)
	for i := range channels {
		channels[i] = fmt.Sprintf("ch-%02d", i)
		cl := &orderedLog{}
		logs[i] = cl
		// Delivery for one channel is serialized by its cluster (and across
		// a failover by the election holding the cluster lock), so the
		// unguarded orderedLog is itself part of what -race verifies.
		sb.Subscribe(channels[i], cl.deliver)
	}
	var wg sync.WaitGroup
	submitErrs := make([]error, nSubmitters)
	for w := 0; w < nSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmit; i++ {
				ch := channels[(w+i)%nChannels]
				if err := sb.Submit(mkTx(ch, "Creator", fmt.Sprintf("w%d-i%d", w, i))); err != nil {
					submitErrs[w] = fmt.Errorf("submit %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	// The killer: between submissions, repeatedly crash the current leader
	// of each channel's cluster and restart the dead node (it rejoins as a
	// follower), so quorum is never lost but leadership keeps failing over
	// mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			ch := channels[round%nChannels]
			rs := replicated[sb.ShardFor(ch)]
			dead, err := rs.CrashLeader(ch)
			if err != nil {
				continue // no leader this instant: a failover is in flight
			}
			c, err := rs.Cluster(ch)
			if err == nil {
				_ = c.Restart(dead)
			}
		}
	}()
	wg.Wait()
	for w, err := range submitErrs {
		if err != nil {
			t.Fatalf("submitter %d: %v", w, err)
		}
	}
	// Drain anything a mid-flush kill left queued.
	for _, rs := range replicated {
		rs.ProbeHealth()
	}
	for _, ch := range channels {
		rs := replicated[sb.ShardFor(ch)]
		c, err := rs.Cluster(ch)
		if err != nil {
			t.Fatalf("Cluster %s: %v", ch, err)
		}
		if err := c.Flush(); err != nil && !errors.Is(err, ErrNoLeader) {
			t.Fatalf("drain %s: %v", ch, err)
		}
	}
	total := 0
	var failovers uint64
	for i, cl := range logs {
		if cl.err != nil {
			t.Fatalf("channel %s: %v", channels[i], cl.err)
		}
		total += cl.txs
	}
	for _, rs := range replicated {
		failovers += rs.Failovers()
	}
	if want := nSubmitters * perSubmit; total != want {
		t.Fatalf("delivered %d txs in total, want %d", total, want)
	}
	if failovers == 0 {
		t.Fatalf("no failovers ran; the kill loop never hit a live leader")
	}
}
