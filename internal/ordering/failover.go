package ordering

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

// ReplicatedShard is the §3.4 mitigation promoted to a production shard: a
// Backend that runs one member-operated replicated Cluster per channel and
// recovers from leader loss on its own. A submission that hits a dead
// leader triggers an election under single-flight — concurrent submitters
// queue behind one Elect instead of stampeding — after which queued
// in-flight transactions are replayed in order and the submission retried.
// Per-channel delivery order is preserved across the kill: the new leader
// resumes from the quorum-committed log, and the replay flush sequences
// anything that was queued before any post-failover traffic.
//
// Behind a ShardedBackend this turns "one shard death loses 1/N of all
// channels forever" into an availability dip bounded by one election.
type ReplicatedShard struct {
	operators  []string
	visibility Visibility
	log        *audit.Log
	batch      int

	mu       sync.Mutex
	clusters map[string]*failoverCluster

	failovers atomic.Uint64
}

// failoverCluster pairs a channel's cluster with its election single-flight
// state.
type failoverCluster struct {
	c *Cluster
	// electMu single-flights elections: submitters that hit the same dead
	// leader queue here, and gen lets the queued ones detect that the first
	// one's election already ran and skip straight to their retry.
	electMu sync.Mutex
	gen     atomic.Uint64
}

// Compile-time check.
var _ Backend = (*ReplicatedShard)(nil)

// ReplicatedShardOption configures a replicated shard.
type ReplicatedShardOption func(*ReplicatedShard)

// WithShardAudit attaches leakage accounting to every cluster.
func WithShardAudit(log *audit.Log) ReplicatedShardOption {
	return func(rs *ReplicatedShard) { rs.log = log }
}

// WithShardBatch sets transactions per block.
func WithShardBatch(n int) ReplicatedShardOption {
	return func(rs *ReplicatedShard) {
		if n > 0 {
			rs.batch = n
		}
	}
}

// NewReplicatedShard creates a shard whose channels each run a replicated
// ordering cluster over the given operators (at least 3).
func NewReplicatedShard(operators []string, visibility Visibility, opts ...ReplicatedShardOption) (*ReplicatedShard, error) {
	if len(operators) < 3 {
		return nil, ErrClusterSize
	}
	rs := &ReplicatedShard{
		operators:  append([]string(nil), operators...),
		visibility: visibility,
		batch:      1,
		clusters:   make(map[string]*failoverCluster),
	}
	for _, opt := range opts {
		opt(rs)
	}
	return rs, nil
}

// Operators implements Backend.
func (rs *ReplicatedShard) Operators() []string {
	return append([]string(nil), rs.operators...)
}

// cluster returns (creating if needed) the failover wrapper for a channel.
func (rs *ReplicatedShard) cluster(channel string) (*failoverCluster, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	fc, ok := rs.clusters[channel]
	if !ok {
		c, err := NewCluster(channel, rs.operators, rs.visibility,
			WithClusterAudit(rs.log), WithClusterBatch(rs.batch))
		if err != nil {
			return nil, fmt.Errorf("cluster for %s: %w", channel, err)
		}
		fc = &failoverCluster{c: c}
		rs.clusters[channel] = fc
	}
	return fc, nil
}

// Cluster exposes a channel's cluster for fault injection in tests,
// benchmarks, and the chaos harness.
func (rs *ReplicatedShard) Cluster(channel string) (*Cluster, error) {
	fc, err := rs.cluster(channel)
	if err != nil {
		return nil, err
	}
	return fc.c, nil
}

// Submit implements Backend with automatic failover: a submission rejected
// because the leader is gone elects a new one (single-flight), replays the
// queue, and retries — callers only see an error when the shard has lost
// its replication quorum outright.
func (rs *ReplicatedShard) Submit(tx ledger.Transaction) error {
	fc, err := rs.cluster(tx.Channel)
	if err != nil {
		return err
	}
	err = fc.c.Submit(tx)
	if err == nil {
		return nil
	}
	queued := errors.Is(err, ErrQueuedAwaitingLeader)
	if !queued && !errors.Is(err, ErrNoLeader) {
		return err
	}
	if ferr := rs.failover(fc); ferr != nil {
		if queued && !fc.c.cancelPending(tx) {
			// A racing failover replayed the queue before ours failed: the
			// transaction is sequenced, so the submission succeeded.
			return nil
		}
		return ferr
	}
	if queued {
		// The transaction is already in the queue; flushing sequences it
		// (and anything queued behind it). Resubmitting would order it
		// twice.
		return fc.c.Flush()
	}
	return fc.c.Submit(tx)
}

// failover elects a new leader for the cluster under single-flight and
// replays the queued transactions the dead leader left behind. Concurrent
// callers that arrive while an election runs wait on electMu and then skip
// their own: the generation counter records the completed election.
func (rs *ReplicatedShard) failover(fc *failoverCluster) error {
	gen := fc.gen.Load()
	fc.electMu.Lock()
	defer fc.electMu.Unlock()
	if fc.gen.Load() != gen {
		// Another submitter's election (and replay) completed while this
		// one waited; don't run a second election for the same outage.
		return nil
	}
	if _, err := fc.c.Elect(); err != nil {
		return err
	}
	fc.gen.Add(1)
	rs.failovers.Add(1)
	// Replay: transactions queued when the old leader died are sequenced
	// by the new leader before any post-failover submission.
	return fc.c.Flush()
}

// Failovers counts the leader elections this shard ran to recover from a
// dead leader.
func (rs *ReplicatedShard) Failovers() uint64 { return rs.failovers.Load() }

// snapshot returns the current cluster set without holding the shard lock
// across per-cluster work.
func (rs *ReplicatedShard) snapshot() []*failoverCluster {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]*failoverCluster, 0, len(rs.clusters))
	for _, fc := range rs.clusters {
		out = append(out, fc)
	}
	return out
}

// ProbeHealth sweeps every cluster and runs a failover where no leader is
// serving, so channels without submit traffic recover on the probe
// interval rather than on their next submission. Returns the number of
// elections that succeeded.
func (rs *ReplicatedShard) ProbeHealth() int {
	n := 0
	for _, fc := range rs.snapshot() {
		if _, err := fc.c.Leader(); err == nil {
			continue
		}
		if err := rs.failover(fc); err == nil {
			n++
		}
	}
	return n
}

// CrashLeader crashes the current leader of a channel's cluster — the
// fault chaos scenarios and the demo inject — returning the operator that
// went down so the caller can later Restart it.
func (rs *ReplicatedShard) CrashLeader(channel string) (string, error) {
	fc, err := rs.cluster(channel)
	if err != nil {
		return "", err
	}
	op, err := fc.c.Leader()
	if err != nil {
		return "", err
	}
	return op, fc.c.Crash(op)
}

// Kill crashes every node of every cluster on the shard — the whole-shard
// failure. Submissions on its channels fail with ErrNoQuorum until Revive.
// Channels first touched after Kill start fresh clusters unaffected by it.
func (rs *ReplicatedShard) Kill() {
	for _, fc := range rs.snapshot() {
		for _, op := range rs.operators {
			_ = fc.c.Crash(op)
		}
	}
}

// Revive restarts every node of every cluster and elects a leader per
// cluster; the committed logs survived the crash (crash-fault model, not
// disk loss), so chains resume at their pre-kill heights and any queued
// transactions are replayed.
func (rs *ReplicatedShard) Revive() {
	for _, fc := range rs.snapshot() {
		for _, op := range rs.operators {
			_ = fc.c.Restart(op)
		}
		_ = rs.failover(fc)
	}
}

// Subscribe implements Backend.
func (rs *ReplicatedShard) Subscribe(channel string, deliver DeliverFunc) {
	fc, err := rs.cluster(channel)
	if err != nil {
		// Construction can only fail on cluster size, validated in
		// NewReplicatedShard; surfaced on the first Submit instead.
		return
	}
	fc.c.Subscribe(deliver)
}

// ExportChannel implements ChannelMigrator.
func (rs *ReplicatedShard) ExportChannel(channel string) (ChannelState, error) {
	rs.mu.Lock()
	fc, ok := rs.clusters[channel]
	if ok {
		delete(rs.clusters, channel)
	}
	rs.mu.Unlock()
	if !ok {
		return ChannelState{}, fmt.Errorf("%w: %s", ErrUnknownChannel, channel)
	}
	return fc.c.exportState(), nil
}

// ImportChannel implements ChannelMigrator: a fresh cluster over this
// shard's operators is seeded with the imported chain state, so numbering
// and hash chaining continue from the sending shard even across later
// elections here.
func (rs *ReplicatedShard) ImportChannel(channel string, st ChannelState) error {
	c, err := NewCluster(channel, rs.operators, rs.visibility,
		WithClusterAudit(rs.log), WithClusterBatch(rs.batch))
	if err != nil {
		return fmt.Errorf("cluster for %s: %w", channel, err)
	}
	c.adoptState(st)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.clusters[channel]; ok {
		return fmt.Errorf("%w: %s", ErrChannelExists, channel)
	}
	rs.clusters[channel] = &failoverCluster{c: c}
	return nil
}
