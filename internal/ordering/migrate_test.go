package ordering

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/ledger"
)

func TestServiceExportImportRoundTrip(t *testing.T) {
	src := New("op-src", VisibilityEnvelope)
	cl := &orderedLog{}
	src.Subscribe("trade", cl.deliver)
	for i := 0; i < 3; i++ {
		if err := src.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	st, err := src.ExportChannel("trade")
	if err != nil {
		t.Fatalf("ExportChannel: %v", err)
	}
	if st.Height != 3 {
		t.Fatalf("exported Height = %d, want 3", st.Height)
	}
	if st.LastHash != cl.lastHash {
		t.Fatalf("exported LastHash does not match the last delivered block")
	}
	// The export removed the channel: the source shard can no longer fork it.
	if h := src.Height("trade"); h != 0 {
		t.Fatalf("source Height after export = %d, want 0", h)
	}
	if _, err := src.ExportChannel("trade"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("second export = %v, want ErrUnknownChannel", err)
	}

	dst := New("op-dst", VisibilityEnvelope)
	if err := dst.ImportChannel("trade", st); err != nil {
		t.Fatalf("ImportChannel: %v", err)
	}
	dst.Subscribe("trade", cl.deliver)
	if err := dst.Submit(mkTx("trade", "BankA", "k3")); err != nil {
		t.Fatalf("Submit on target: %v", err)
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	// Block 3 chained onto the exported head: numbering and hashing continue.
	if cl.next != 4 || cl.txs != 4 {
		t.Fatalf("delivered %d blocks / %d txs, want 4 / 4", cl.next, cl.txs)
	}
}

func TestServiceImportRefusesLiveChannel(t *testing.T) {
	svc := New("op", VisibilityEnvelope)
	svc.Subscribe("trade", func(ledger.Block) error { return nil })
	if err := svc.Submit(mkTx("trade", "BankA", "k0")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	err := svc.ImportChannel("trade", ChannelState{Height: 7})
	if !errors.Is(err, ErrChannelExists) {
		t.Fatalf("import over live channel = %v, want ErrChannelExists", err)
	}
}

func TestClusterSetExportImportRoundTrip(t *testing.T) {
	ops := []string{"a", "b", "c"}
	src, err := NewClusterSet(ops, VisibilityEnvelope)
	if err != nil {
		t.Fatalf("NewClusterSet: %v", err)
	}
	cl := &orderedLog{}
	src.Subscribe("trade", cl.deliver)
	for i := 0; i < 2; i++ {
		if err := src.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	st, err := src.ExportChannel("trade")
	if err != nil {
		t.Fatalf("ExportChannel: %v", err)
	}
	if st.Height != 2 {
		t.Fatalf("exported Height = %d, want 2", st.Height)
	}
	dst, err := NewClusterSet([]string{"x", "y", "z"}, VisibilityEnvelope)
	if err != nil {
		t.Fatalf("NewClusterSet: %v", err)
	}
	if err := dst.ImportChannel("trade", st); err != nil {
		t.Fatalf("ImportChannel: %v", err)
	}
	if err := dst.ImportChannel("trade", st); !errors.Is(err, ErrChannelExists) {
		t.Fatalf("double import = %v, want ErrChannelExists", err)
	}
	dst.Subscribe("trade", cl.deliver)
	if err := dst.Submit(mkTx("trade", "BankA", "k2")); err != nil {
		t.Fatalf("Submit on target: %v", err)
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	if cl.next != 3 {
		t.Fatalf("chain height after import = %d, want 3", cl.next)
	}
}

// TestShardedMigrateLiveChannel is the end-to-end wire of the tentpole: a
// channel with committed history and a live subscription moves between
// shards and the subscriber sees one continuous chain.
func TestShardedMigrateLiveChannel(t *testing.T) {
	sb := newTestSharded(t, 2)
	const ch = "trade.settlement"
	if err := sb.Pin(ch, sb.ShardFor(ch)); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	cl := &orderedLog{}
	sb.Subscribe(ch, cl.deliver)
	from := sb.ShardFor(ch)
	to := 1 - from
	for i := 0; i < 5; i++ {
		if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if err := sb.Migrate(ch, to); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if got := sb.ShardFor(ch); got != to {
		t.Fatalf("ShardFor after migrate = %d, want %d", got, to)
	}
	for i := 5; i < 10; i++ {
		if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d after migrate: %v", i, err)
		}
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	if cl.next != 10 || cl.txs != 10 {
		t.Fatalf("delivered %d blocks / %d txs, want 10 / 10", cl.next, cl.txs)
	}
	stats := sb.Stats()
	if stats[to].MigratedIn != 1 {
		t.Fatalf("shard %d MigratedIn = %d, want 1", to, stats[to].MigratedIn)
	}
	if stats[to].OwnedChannels != 1 || stats[from].OwnedChannels != 0 {
		t.Fatalf("owned channels = %d/%d, want 1/0", stats[to].OwnedChannels, stats[from].OwnedChannels)
	}
	// The pin followed the channel.
	if stats[to].PinnedChannels != 1 || stats[from].PinnedChannels != 0 {
		t.Fatalf("pinned channels = %d/%d, want 1/0", stats[to].PinnedChannels, stats[from].PinnedChannels)
	}
	if sb.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", sb.Migrations())
	}
	// The source shard no longer holds the chain.
	src, err := sb.Shard(from)
	if err != nil {
		t.Fatalf("Shard(%d): %v", from, err)
	}
	if h := src.(*Service).Height(ch); h != 0 {
		t.Fatalf("source shard still reports height %d for %s", h, ch)
	}
}

func TestShardedMigrateRefusals(t *testing.T) {
	sb := newTestSharded(t, 2)
	if err := sb.Migrate("ch", 5); !errors.Is(err, ErrBadShard) {
		t.Fatalf("out-of-range target = %v, want ErrBadShard", err)
	}
	if err := sb.Migrate("never-seen", 1); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("unknown channel = %v, want ErrUnknownChannel", err)
	}
	sb.Subscribe("ch", func(ledger.Block) error { return nil })
	if err := sb.Submit(mkTx("ch", "BankA", "k0")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := sb.Migrate("ch", sb.ShardFor("ch")); err != nil {
		t.Fatalf("same-shard migrate = %v, want nil no-op", err)
	}
	if sb.Migrations() != 0 {
		t.Fatalf("no-op migrate counted: Migrations = %d", sb.Migrations())
	}
}

// stubBackend is a Backend that cannot migrate channels.
type stubBackend struct{ svc *Service }

func (s stubBackend) Submit(tx ledger.Transaction) error { return s.svc.Submit(tx) }
func (s stubBackend) Subscribe(channel string, deliver DeliverFunc) {
	s.svc.Subscribe(channel, deliver)
}
func (s stubBackend) Operators() []string { return s.svc.Operators() }

func TestShardedMigrateRequiresMigratableShards(t *testing.T) {
	shards := []Backend{
		stubBackend{svc: New("op-0", VisibilityEnvelope)},
		New("op-1", VisibilityEnvelope),
	}
	sb, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	sb.Subscribe("ch", func(ledger.Block) error { return nil })
	if err := sb.Submit(mkTx("ch", "BankA", "k0")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	from := sb.ShardFor("ch")
	if err := sb.Migrate("ch", 1-from); !errors.Is(err, ErrNotMigratable) {
		t.Fatalf("migrate off a non-migratable shard = %v, want ErrNotMigratable", err)
	}
}

// TestShardedMigrateUnderConcurrentSubmitters hammers one channel from many
// goroutines while it migrates back and forth between two replicated
// shards. The migration gate must make every move invisible: no submission
// fails, and the channel's block sequence stays gap-free and
// duplicate-free under -race.
func TestShardedMigrateUnderConcurrentSubmitters(t *testing.T) {
	shards := make([]Backend, 2)
	for i := range shards {
		shards[i] = newTestReplicatedShard(t, fmt.Sprintf("shard%d", i))
	}
	sb, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	const ch = "hot.channel"
	cl := &orderedLog{}
	sb.Subscribe(ch, cl.deliver)
	const (
		nSubmitters = 6
		perSubmit   = 40
		nMigrations = 6
	)
	var wg sync.WaitGroup
	submitErrs := make([]error, nSubmitters)
	for w := 0; w < nSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmit; i++ {
				if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("w%d-i%d", w, i))); err != nil {
					submitErrs[w] = fmt.Errorf("submit %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	migrateErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		target := 1 - sb.ShardFor(ch)
		for m := 0; m < nMigrations; m++ {
			if err := sb.Migrate(ch, target); err != nil {
				migrateErr <- fmt.Errorf("migration %d to shard %d: %w", m, target, err)
				return
			}
			target = 1 - target
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	select {
	case err := <-migrateErr:
		t.Fatal(err)
	default:
	}
	for w, err := range submitErrs {
		if err != nil {
			t.Fatalf("submitter %d: %v", w, err)
		}
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	if want := nSubmitters * perSubmit; cl.txs != want {
		t.Fatalf("delivered %d txs, want %d", cl.txs, want)
	}
	if sb.Migrations() != nMigrations {
		t.Fatalf("Migrations = %d, want %d", sb.Migrations(), nMigrations)
	}
}

// TestShardedMigratedChannelSurvivesElection pins the base-height anchor: a
// channel that migrated with committed history keeps numbering correctly
// even after the receiving cluster later loses its leader and re-elects.
func TestShardedMigratedChannelSurvivesElection(t *testing.T) {
	shards := make([]Backend, 2)
	replicated := make([]*ReplicatedShard, 2)
	for i := range shards {
		rs := newTestReplicatedShard(t, fmt.Sprintf("shard%d", i))
		shards[i] = rs
		replicated[i] = rs
	}
	sb, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	const ch = "trade"
	cl := &orderedLog{}
	sb.Subscribe(ch, cl.deliver)
	for i := 0; i < 3; i++ {
		if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	from := sb.ShardFor(ch)
	to := 1 - from
	if err := sb.Migrate(ch, to); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	for i := 3; i < 5; i++ {
		if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	// Kill the leader on the new home; the election must re-derive the
	// chain height from the migrated base, not reset to the local log.
	if _, err := replicated[to].CrashLeader(ch); err != nil {
		t.Fatalf("CrashLeader: %v", err)
	}
	for i := 5; i < 7; i++ {
		if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d after election: %v", i, err)
		}
	}
	if cl.err != nil {
		t.Fatalf("delivery: %v", cl.err)
	}
	if cl.next != 7 || cl.txs != 7 {
		t.Fatalf("delivered %d blocks / %d txs, want 7 / 7", cl.next, cl.txs)
	}
	if replicated[to].Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", replicated[to].Failovers())
	}
}

func TestShardedRebalanceOnSkew(t *testing.T) {
	sb := newTestSharded(t, 2)
	if _, err := sb.Rebalance(1.0); err == nil {
		t.Fatalf("Rebalance(1.0) accepted, want error")
	}
	// Four channels, all pinned onto shard 0, with loads 40/30/20/10.
	loads := []int{40, 30, 20, 10}
	channels := make([]string, len(loads))
	for i, n := range loads {
		ch := fmt.Sprintf("skewed-%d", i)
		channels[i] = ch
		if err := sb.Pin(ch, 0); err != nil {
			t.Fatalf("Pin %s: %v", ch, err)
		}
		sb.Subscribe(ch, func(ledger.Block) error { return nil })
		for j := 0; j < n; j++ {
			if err := sb.Submit(mkTx(ch, "BankA", fmt.Sprintf("%s-%d", ch, j))); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	moves, err := sb.Rebalance(1.1)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	// Pass 1 moves the 40-load channel (60/40); pass 2 can only move the
	// 10-load channel without re-inverting the skew (50/50); then balanced.
	if len(moves) != 2 {
		t.Fatalf("Rebalance performed %d moves (%v), want 2", len(moves), moves)
	}
	if moves[0].Channel != channels[0] || moves[0].To != 1 {
		t.Fatalf("first move = %+v, want %s to shard 1", moves[0], channels[0])
	}
	if moves[1].Channel != channels[3] || moves[1].To != 1 {
		t.Fatalf("second move = %+v, want %s to shard 1", moves[1], channels[3])
	}
	// A balanced topology rebalances to nothing.
	moves, err = sb.Rebalance(1.1)
	if err != nil {
		t.Fatalf("second Rebalance: %v", err)
	}
	if len(moves) != 0 {
		t.Fatalf("balanced topology still moved %v", moves)
	}
}
