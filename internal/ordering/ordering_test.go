package ordering

import (
	"errors"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

func mkTx(channel, creator, key string) ledger.Transaction {
	return ledger.Transaction{
		Channel:   channel,
		Creator:   creator,
		Payload:   []byte("payload"),
		Writes:    []ledger.Write{{Key: key, Value: []byte("v")}},
		Timestamp: time.Unix(1700000000, 0).UTC(),
	}
}

func TestSubmitDeliversToLedger(t *testing.T) {
	l := ledger.New("trade")
	svc := New("OrdererOrg", VisibilityFull)
	svc.Subscribe("trade", l.Append)
	if err := svc.Submit(mkTx("trade", "BankA", "k1")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if l.Height() != 1 {
		t.Fatalf("ledger height = %d, want 1", l.Height())
	}
	if _, err := l.Get("k1"); err != nil {
		t.Fatalf("Get: %v", err)
	}
}

func TestBatching(t *testing.T) {
	l := ledger.New("trade")
	svc := New("O", VisibilityFull, WithBatchSize(3))
	svc.Subscribe("trade", l.Append)
	for i, key := range []string{"a", "b"} {
		if err := svc.Submit(mkTx("trade", "BankA", key)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if l.Height() != 0 || svc.Pending("trade") != 2 {
		t.Fatalf("premature cut: height=%d pending=%d", l.Height(), svc.Pending("trade"))
	}
	if err := svc.Submit(mkTx("trade", "BankA", "c")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if l.Height() != 1 || svc.Pending("trade") != 0 {
		t.Fatalf("batch not cut: height=%d pending=%d", l.Height(), svc.Pending("trade"))
	}
	b, err := l.Block(0)
	if err != nil || len(b.Txs) != 3 {
		t.Fatalf("Block(0) = %d txs, %v; want 3", len(b.Txs), err)
	}
}

func TestFlushPartialBatch(t *testing.T) {
	l := ledger.New("trade")
	svc := New("O", VisibilityFull, WithBatchSize(10))
	svc.Subscribe("trade", l.Append)
	if err := svc.Submit(mkTx("trade", "BankA", "a")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := svc.Flush("trade"); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
	// Flushing an empty channel is a no-op.
	if err := svc.Flush("trade"); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
}

func TestFlushUnknownChannel(t *testing.T) {
	svc := New("O", VisibilityFull)
	if err := svc.Flush("ghost"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("Flush ghost = %v, want ErrUnknownChannel", err)
	}
}

func TestNoSubscribers(t *testing.T) {
	svc := New("O", VisibilityFull)
	if err := svc.Submit(mkTx("trade", "BankA", "a")); !errors.Is(err, ErrNoSubscribers) {
		t.Fatalf("Submit without subs = %v, want ErrNoSubscribers", err)
	}
}

func TestMultipleChannelsIndependent(t *testing.T) {
	l1 := ledger.New("ch1")
	l2 := ledger.New("ch2")
	svc := New("O", VisibilityFull)
	svc.Subscribe("ch1", l1.Append)
	svc.Subscribe("ch2", l2.Append)
	if err := svc.Submit(mkTx("ch1", "A", "k")); err != nil {
		t.Fatalf("Submit ch1: %v", err)
	}
	if err := svc.Submit(mkTx("ch2", "B", "k")); err != nil {
		t.Fatalf("Submit ch2: %v", err)
	}
	if l1.Height() != 1 || l2.Height() != 1 {
		t.Fatalf("heights = %d, %d; want 1, 1", l1.Height(), l2.Height())
	}
	if svc.Height("ch1") != 1 || svc.Height("ch2") != 1 || svc.Height("ghost") != 0 {
		t.Fatal("orderer chain heights wrong")
	}
}

func TestFullVisibilityLeaksToOperator(t *testing.T) {
	log := audit.NewLog()
	l := ledger.New("trade")
	svc := New("ThirdPartyOrderer", VisibilityFull, WithAuditLog(log))
	svc.Subscribe("trade", l.Append)
	tx := mkTx("trade", "BankA", "k")
	if err := svc.Submit(tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := tx.ID()
	if !log.Saw("ThirdPartyOrderer", audit.ClassTxData, id) {
		t.Fatal("full-visibility operator must see tx data (§3.4)")
	}
	if !log.Saw("ThirdPartyOrderer", audit.ClassIdentity, "BankA") {
		t.Fatal("full-visibility operator must see parties")
	}
}

func TestEnvelopeVisibilityHidesContent(t *testing.T) {
	log := audit.NewLog()
	l := ledger.New("trade")
	svc := New("ThirdPartyOrderer", VisibilityEnvelope, WithAuditLog(log))
	svc.Subscribe("trade", l.Append)
	tx := mkTx("trade", "BankA", "k")
	if err := svc.Submit(tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := tx.ID()
	if !log.Saw("ThirdPartyOrderer", audit.ClassTxMetadata, id) {
		t.Fatal("operator must still see the envelope")
	}
	if log.Saw("ThirdPartyOrderer", audit.ClassTxData, id) {
		t.Fatal("envelope visibility must not expose tx data")
	}
	if log.SawAny("ThirdPartyOrderer", audit.ClassIdentity) {
		t.Fatal("envelope visibility must not expose identities")
	}
}

func TestInvalidTxRejected(t *testing.T) {
	svc := New("O", VisibilityFull)
	bad := ledger.Transaction{Creator: "A"} // no channel
	if err := svc.Submit(bad); err == nil {
		t.Fatal("invalid tx must be rejected at submission")
	}
}

func TestDeliveryToMultiplePeers(t *testing.T) {
	l1 := ledger.New("trade")
	l2 := ledger.New("trade")
	svc := New("O", VisibilityFull)
	svc.Subscribe("trade", l1.Append)
	svc.Subscribe("trade", l2.Append)
	if err := svc.Submit(mkTx("trade", "A", "k")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if l1.Height() != 1 || l2.Height() != 1 {
		t.Fatal("both peers must receive the block")
	}
	v1, _ := l1.Get("k")
	v2, _ := l2.Get("k")
	if string(v1.Value) != string(v2.Value) {
		t.Fatal("peer states diverged")
	}
}
