package ordering

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dltprivacy/internal/ledger"
)

// newTestSharded builds a sharded backend over n solo services operated by
// "op-0".."op-n-1".
func newTestSharded(t *testing.T, n int) *ShardedBackend {
	t.Helper()
	shards := make([]Backend, n)
	for i := range shards {
		shards[i] = New(fmt.Sprintf("op-%d", i), VisibilityEnvelope)
	}
	sb, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return sb
}

func TestShardedRejectsEmptyTopology(t *testing.T) {
	if _, err := NewSharded(nil); !errors.Is(err, ErrNoShards) {
		t.Fatalf("NewSharded(nil) = %v, want ErrNoShards", err)
	}
	if _, err := NewSharded([]Backend{New("op", VisibilityEnvelope), nil}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("NewSharded with nil shard = %v, want ErrNoShards", err)
	}
}

// TestShardedRoutingDeterministic pins the core invariant: the same channel
// always lands on the same shard — across repeated calls, and across two
// independently constructed backends over the same topology shape.
func TestShardedRoutingDeterministic(t *testing.T) {
	a := newTestSharded(t, 4)
	b := newTestSharded(t, 4)
	hits := make([]int, 4)
	for i := 0; i < 200; i++ {
		ch := fmt.Sprintf("channel-%03d", i)
		first := a.ShardFor(ch)
		if first < 0 || first >= 4 {
			t.Fatalf("ShardFor(%q) = %d, outside topology", ch, first)
		}
		for rep := 0; rep < 3; rep++ {
			if got := a.ShardFor(ch); got != first {
				t.Fatalf("ShardFor(%q) flapped: %d then %d", ch, first, got)
			}
		}
		if got := b.ShardFor(ch); got != first {
			t.Fatalf("ShardFor(%q) differs across constructions: %d vs %d", ch, first, got)
		}
		hits[first]++
	}
	for i, n := range hits {
		if n == 0 {
			t.Fatalf("shard %d received no channels out of 200: degenerate ring (distribution %v)", i, hits)
		}
	}
}

// TestShardedPinOverridesHash checks the pin table beats the ring, refuses
// out-of-range shards, and refuses to move a channel that already has
// subscribers elsewhere.
func TestShardedPinOverridesHash(t *testing.T) {
	sb := newTestSharded(t, 4)
	ch := "hot-channel"
	hashed := sb.ShardFor(ch)
	pinTo := (hashed + 1) % 4
	// A mistaken pin is correctable while the channel has no traffic.
	if err := sb.Pin(ch, hashed); err != nil {
		t.Fatalf("initial Pin: %v", err)
	}
	if err := sb.Pin(ch, pinTo); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if got := sb.ShardFor(ch); got != pinTo {
		t.Fatalf("ShardFor(%q) = %d after pin, want %d", ch, got, pinTo)
	}
	if err := sb.Pin(ch, 4); !errors.Is(err, ErrBadShard) {
		t.Fatalf("Pin out of range = %v, want ErrBadShard", err)
	}
	if err := sb.Pin(ch, -1); !errors.Is(err, ErrBadShard) {
		t.Fatalf("Pin negative = %v, want ErrBadShard", err)
	}

	// A channel with subscribers must not be re-routed: its chain would
	// fork across shards. Re-pinning to the same shard stays legal.
	sb.Subscribe(ch, func(ledger.Block) error { return nil })
	if err := sb.Pin(ch, hashed); !errors.Is(err, ErrChannelMoved) {
		t.Fatalf("Pin of subscribed channel = %v, want ErrChannelMoved", err)
	}
	if err := sb.Pin(ch, pinTo); err != nil {
		t.Fatalf("re-Pin to owning shard: %v", err)
	}

	stats := sb.Stats()
	if stats[pinTo].PinnedChannels != 1 {
		t.Fatalf("shard %d PinnedChannels = %d, want 1", pinTo, stats[pinTo].PinnedChannels)
	}
}

// TestShardedPinRefusesSubmittedChannel closes the other half of the fork
// guard: Submit-only history (pending transactions waiting for a batch
// cut) also marks a channel's owner, so a pin cannot strand them.
func TestShardedPinRefusesSubmittedChannel(t *testing.T) {
	shards := make([]Backend, 2)
	for i := range shards {
		// Batch size 2 leaves a lone submission pending instead of
		// requiring a subscriber for an immediate cut.
		shards[i] = New(fmt.Sprintf("op-%d", i), VisibilityEnvelope, WithBatchSize(2))
	}
	sb, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	ch := "busy"
	// A rejected submission establishes no ownership: the channel stays
	// freely pinnable.
	if err := sb.Submit(mkTx(ch, "", "k")); err == nil {
		t.Fatal("creator-less tx accepted")
	}
	if err := sb.Pin(ch, 0); err != nil {
		t.Fatalf("Pin after rejected submit: %v", err)
	}
	if err := sb.Pin(ch, 1); err != nil {
		t.Fatalf("re-Pin of traffic-free channel: %v", err)
	}
	if err := sb.Submit(mkTx(ch, "Creator", "k")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	owner := sb.ShardFor(ch)
	if owner != 1 {
		t.Fatalf("pinned channel owned by shard %d, want 1", owner)
	}
	if err := sb.Pin(ch, 1-owner); !errors.Is(err, ErrChannelMoved) {
		t.Fatalf("Pin of submitted channel = %v, want ErrChannelMoved", err)
	}
	if err := sb.Pin(ch, owner); err != nil {
		t.Fatalf("re-Pin to owning shard: %v", err)
	}
}

func TestShardedOperatorsUnion(t *testing.T) {
	shared := New("op-shared", VisibilityEnvelope)
	sb, err := NewSharded([]Backend{shared, New("op-b", VisibilityEnvelope), shared})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	got := sb.Operators()
	want := []string{"op-shared", "op-b"}
	if len(got) != len(want) {
		t.Fatalf("Operators() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Operators() = %v, want %v", got, want)
		}
	}
}

// TestShardedSubmitRoutesAndCounts drives traffic over several channels and
// checks every transaction reaches the subscriber on its owning shard, with
// the per-shard counters accounting for all of it.
func TestShardedSubmitRoutesAndCounts(t *testing.T) {
	sb := newTestSharded(t, 3)
	channels := []string{"alpha", "beta", "gamma", "delta"}
	got := make(map[string]int)
	for _, ch := range channels {
		ch := ch
		sb.Subscribe(ch, func(b ledger.Block) error {
			got[ch] += len(b.Txs)
			return nil
		})
	}
	const perChannel = 5
	for _, ch := range channels {
		for i := 0; i < perChannel; i++ {
			if err := sb.Submit(mkTx(ch, "Creator", fmt.Sprintf("%s-%d", ch, i))); err != nil {
				t.Fatalf("Submit %s: %v", ch, err)
			}
		}
	}
	for _, ch := range channels {
		if got[ch] != perChannel {
			t.Fatalf("channel %s delivered %d txs, want %d", ch, got[ch], perChannel)
		}
	}
	stats := sb.Stats()
	var routed, delivered uint64
	for _, st := range stats {
		routed += st.RoutedTxs
		delivered += st.DeliveredBlocks
	}
	if want := uint64(len(channels) * perChannel); routed != want {
		t.Fatalf("routed %d txs across shards, want %d", routed, want)
	}
	// Batch size 1: one block delivery per tx, one subscriber per channel.
	if want := uint64(len(channels) * perChannel); delivered != want {
		t.Fatalf("delivered %d blocks across shards, want %d", delivered, want)
	}
	for _, ch := range channels {
		st := stats[sb.ShardFor(ch)]
		if st.RoutedTxs == 0 {
			t.Fatalf("owning shard %d of %s routed nothing", st.Shard, ch)
		}
	}
}

// TestShardedDeliveryOrderUnderConcurrency is the consistency anchor test:
// with many goroutines submitting across many channels concurrently, every
// channel's subscriber must still see blocks in height order with an intact
// hash chain. Run under -race, it also vets the routing fast path for data
// races.
func TestShardedDeliveryOrderUnderConcurrency(t *testing.T) {
	sb := newTestSharded(t, 4)
	const (
		nChannels   = 12
		nSubmitters = 8
		perSubmit   = 25
	)
	type chanLog struct {
		next     uint64
		lastHash [32]byte
		txs      int
		err      error
	}
	logs := make([]*chanLog, nChannels)
	channels := make([]string, nChannels)
	for i := range channels {
		channels[i] = fmt.Sprintf("ch-%02d", i)
		cl := &chanLog{}
		logs[i] = cl
		// Delivery for one channel is serialized by the owning service, so
		// the unguarded chanLog is itself part of what -race verifies.
		sb.Subscribe(channels[i], func(b ledger.Block) error {
			if cl.err != nil {
				return cl.err
			}
			if b.Number != cl.next {
				cl.err = fmt.Errorf("block %d out of order, want %d", b.Number, cl.next)
				return cl.err
			}
			if cl.next > 0 && b.PrevHash != cl.lastHash {
				cl.err = fmt.Errorf("block %d breaks the hash chain", b.Number)
				return cl.err
			}
			cl.next++
			cl.lastHash = b.Hash()
			cl.txs += len(b.Txs)
			return nil
		})
	}
	var wg sync.WaitGroup
	submitErrs := make([]error, nSubmitters)
	for w := 0; w < nSubmitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmit; i++ {
				ch := channels[(w+i)%nChannels]
				if err := sb.Submit(mkTx(ch, "Creator", fmt.Sprintf("w%d-i%d", w, i))); err != nil {
					submitErrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range submitErrs {
		if err != nil {
			t.Fatalf("submitter %d: %v", w, err)
		}
	}
	total := 0
	for i, cl := range logs {
		if cl.err != nil {
			t.Fatalf("channel %s: %v", channels[i], cl.err)
		}
		total += cl.txs
	}
	if want := nSubmitters * perSubmit; total != want {
		t.Fatalf("delivered %d txs in total, want %d", total, want)
	}
}
