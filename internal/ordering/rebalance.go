package ordering

import (
	"fmt"
	"sort"
)

// Migration records one completed channel move.
type Migration struct {
	Channel string `json:"channel"`
	From    int    `json:"from"`
	To      int    `json:"to"`
}

// Migrate moves a live channel — committed chain head, queued transactions,
// and every subscription registered through this backend — from its current
// shard to another, without reordering or dropping envelopes. The channel's
// migration gate is held exclusively for the move: in-flight submissions
// drain first, new ones wait, and the chain resumes on the target at the
// exported height with the exported head hash, so subscribers see a
// gap-free, duplicate-free block sequence across the move. Other channels
// are untouched.
//
// Both shards must implement ChannelMigrator (every first-party backend
// does). A channel with no traffic yet has nothing to move — place it with
// Pin instead.
func (sb *ShardedBackend) Migrate(channel string, to int) error {
	if to < 0 || to >= len(sb.shards) {
		return fmt.Errorf("%w: migrate %q to %d of %d", ErrBadShard, channel, to, len(sb.shards))
	}
	rt := sb.route(channel)
	if rt == nil {
		return fmt.Errorf("%w: %s has no traffic to migrate (use Pin for placement)", ErrUnknownChannel, channel)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	from := int(rt.shard.Load())
	if from == to {
		return nil
	}
	exp, ok := sb.shards[from].(ChannelMigrator)
	if !ok {
		return fmt.Errorf("%w: shard %d (%T)", ErrNotMigratable, from, sb.shards[from])
	}
	imp, ok := sb.shards[to].(ChannelMigrator)
	if !ok {
		return fmt.Errorf("%w: shard %d (%T)", ErrNotMigratable, to, sb.shards[to])
	}
	st, err := exp.ExportChannel(channel)
	if err != nil {
		return fmt.Errorf("export %q from shard %d: %w", channel, from, err)
	}
	if err := imp.ImportChannel(channel, st); err != nil {
		// Put the state back where it came from; the channel keeps serving
		// on its old shard (the export dropped the relay with the chain, so
		// re-attach it).
		if rerr := exp.ImportChannel(channel, st); rerr != nil {
			return fmt.Errorf("import %q into shard %d failed (%v) and restore to %d failed: %w",
				channel, to, err, from, rerr)
		}
		if rt.relay {
			sb.attachRelay(channel, rt, from)
		}
		return fmt.Errorf("import %q into shard %d: %w", channel, to, err)
	}
	rt.shard.Store(int32(to))
	if rt.relay {
		sb.attachRelay(channel, rt, to)
	}
	sb.stats[to].migratedIn.Add(1)
	sb.migrations.Add(1)
	// A pin follows its channel so the recorded topology matches reality;
	// taken after rt.mu is safe (sb.mu is never held while acquiring a
	// route lock exclusively).
	sb.mu.Lock()
	if _, ok := sb.pins[channel]; ok {
		sb.pins[channel] = to
	}
	sb.mu.Unlock()
	return nil
}

// Rebalance migrates channels off overloaded shards until the topology's
// per-shard load is within skew (a factor > 1) of the mean, judged by the
// per-channel routed-transaction counters in ShardStats. Each pass moves
// the hottest shard's hottest channel that strictly improves the maximum
// onto the least-loaded shard; passes repeat until the skew bound holds or
// no move helps. Returns the moves performed — empty when the topology is
// already balanced — so callers (the shard.rebalance admin topic, a soak
// loop) can log them.
func (sb *ShardedBackend) Rebalance(skew float64) ([]Migration, error) {
	if skew <= 1 {
		return nil, fmt.Errorf("ordering: rebalance skew must be > 1, got %v", skew)
	}
	if len(sb.shards) < 2 {
		return nil, nil
	}
	var moves []Migration
	// Each pass moves one channel; bound the passes so a pathological load
	// shape cannot loop forever.
	for pass := 0; pass < 2*len(sb.shards); pass++ {
		m, err := sb.rebalanceOnce(skew)
		if err != nil {
			return moves, err
		}
		if m == nil {
			break
		}
		moves = append(moves, *m)
	}
	return moves, nil
}

// rebalanceOnce performs at most one skew-reducing migration.
func (sb *ShardedBackend) rebalanceOnce(skew float64) (*Migration, error) {
	type chLoad struct {
		name string
		load uint64
	}
	perShard := make([]uint64, len(sb.shards))
	byShard := make([][]chLoad, len(sb.shards))
	sb.mu.RLock()
	for name, rt := range sb.routes {
		i := int(rt.shard.Load())
		l := rt.routed.Load()
		perShard[i] += l
		byShard[i] = append(byShard[i], chLoad{name, l})
	}
	sb.mu.RUnlock()
	var total uint64
	hot, cold := 0, 0
	for i, l := range perShard {
		total += l
		if l > perShard[hot] {
			hot = i
		}
		if l < perShard[cold] {
			cold = i
		}
	}
	mean := float64(total) / float64(len(sb.shards))
	if mean == 0 || float64(perShard[hot]) <= skew*mean || hot == cold || len(byShard[hot]) < 2 {
		// Balanced, or the hot shard serves a single channel — moving it
		// would only relocate the hotspot.
		return nil, nil
	}
	// Hottest channel first; pick the first whose move strictly lowers the
	// maximum (the cold shard must stay below the hot shard's current
	// load).
	sort.Slice(byShard[hot], func(a, b int) bool { return byShard[hot][a].load > byShard[hot][b].load })
	for _, ch := range byShard[hot] {
		if ch.load == 0 || perShard[cold]+ch.load >= perShard[hot] {
			continue
		}
		if err := sb.Migrate(ch.name, cold); err != nil {
			return nil, err
		}
		return &Migration{Channel: ch.name, From: hot, To: cold}, nil
	}
	return nil, nil
}
