package ordering

import (
	"errors"
	"fmt"

	"dltprivacy/internal/ledger"
)

// Errors returned by the channel-migration protocol.
var (
	// ErrChannelExists is returned when importing a channel onto a shard
	// that already holds state for it — accepting the import would fork the
	// chain.
	ErrChannelExists = errors.New("ordering: channel already has state on this shard")
	// ErrNotMigratable is returned when a shard backend does not implement
	// ChannelMigrator.
	ErrNotMigratable = errors.New("ordering: shard backend cannot migrate channels")
)

// ChannelState is the portable chain state of one channel: everything a
// receiving shard needs to continue the chain exactly where the sending
// shard stopped. Committed blocks themselves stay with subscribers (they
// were delivered); what moves is the head of the chain and the queue.
type ChannelState struct {
	// Height is the number of blocks cut so far; the next block is numbered
	// Height.
	Height uint64
	// LastHash is the hash of the last cut block, chained into the next.
	LastHash [32]byte
	// Pending holds submitted-but-unsequenced transactions, in submission
	// order; the receiving shard sequences them before any new traffic.
	Pending []ledger.Transaction
}

// ChannelMigrator is implemented by ordering backends whose per-channel
// chain state can be moved to another shard while the topology is live.
// Export removes the channel from the shard (subsequent submissions there
// would fork the chain) and Import installs it; the caller — in practice
// ShardedBackend.Migrate — is responsible for quiescing the channel's
// traffic around the pair and re-attaching subscriptions on the target.
type ChannelMigrator interface {
	// ExportChannel removes and returns the channel's chain state.
	// Shard-side subscriptions for the channel are dropped with it.
	ExportChannel(channel string) (ChannelState, error)
	// ImportChannel installs chain state for a channel this shard has
	// never served (ErrChannelExists otherwise).
	ImportChannel(channel string, st ChannelState) error
}

// Compile-time checks: every first-party shard backend supports migration.
var (
	_ ChannelMigrator = (*Service)(nil)
	_ ChannelMigrator = (*ClusterSet)(nil)
	_ ChannelMigrator = (*ReplicatedShard)(nil)
)

// ExportChannel implements ChannelMigrator for the solo service. Any
// subscribers registered directly on this service for the channel are
// dropped with the chain; in the sharded topology the only shard-side
// subscriber is the ShardedBackend relay, which the migration re-attaches
// on the target shard.
func (s *Service) ExportChannel(channel string) (ChannelState, error) {
	s.mu.Lock()
	c, ok := s.chains[channel]
	s.mu.Unlock()
	if !ok {
		return ChannelState{}, fmt.Errorf("%w: %s", ErrUnknownChannel, channel)
	}
	// The delivery lock drains an in-flight flush before the snapshot, so
	// the exported head never straddles a block cut.
	c.deliver.Lock()
	defer c.deliver.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ChannelState{
		Height:   c.height,
		LastHash: c.lastHash,
		Pending:  append([]ledger.Transaction(nil), c.pending...),
	}
	delete(s.chains, channel)
	return st, nil
}

// ImportChannel implements ChannelMigrator for the solo service.
func (s *Service) ImportChannel(channel string, st ChannelState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chains[channel]; ok && (c.height > 0 || len(c.pending) > 0 || len(c.subs) > 0) {
		return fmt.Errorf("%w: %s", ErrChannelExists, channel)
	}
	s.chains[channel] = &chainState{
		height:   st.Height,
		lastHash: st.LastHash,
		pending:  append([]ledger.Transaction(nil), st.Pending...),
	}
	return nil
}

// ExportChannel implements ChannelMigrator for the per-channel cluster set.
func (cs *ClusterSet) ExportChannel(channel string) (ChannelState, error) {
	cs.mu.Lock()
	c, ok := cs.clusters[channel]
	if ok {
		delete(cs.clusters, channel)
	}
	cs.mu.Unlock()
	if !ok {
		return ChannelState{}, fmt.Errorf("%w: %s", ErrUnknownChannel, channel)
	}
	return c.exportState(), nil
}

// ImportChannel implements ChannelMigrator for the per-channel cluster set:
// a fresh cluster is built over the set's operators and seeded with the
// imported chain state, so block numbering and hash chaining continue from
// the sending shard even across later elections.
func (cs *ClusterSet) ImportChannel(channel string, st ChannelState) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.clusters[channel]; ok {
		return fmt.Errorf("%w: %s", ErrChannelExists, channel)
	}
	c, err := NewCluster(channel, cs.operators, cs.visibility,
		WithClusterAudit(cs.log), WithClusterBatch(cs.batch))
	if err != nil {
		return fmt.Errorf("cluster for %s: %w", channel, err)
	}
	c.adoptState(st)
	cs.clusters[channel] = c
	return nil
}
