package ordering

import (
	"errors"
	"fmt"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

// This file implements the §3.4 mitigation in full: instead of trusting a
// third-party orderer, channel members run a replicated, crash-fault-
// tolerant ordering cluster themselves. The cluster is leader-based with
// majority-quorum commit (a deliberately simplified Raft: terms, leader
// election by majority vote, log replication, commit on quorum
// acknowledgement). Fault injection in tests covers leader crash, failover,
// and the minority-partition liveness loss.

// Errors returned by the replicated ordering service.
var (
	// ErrNoLeader is returned when no node currently leads the cluster.
	ErrNoLeader = errors.New("ordering: cluster has no leader")
	// ErrNotLeader is returned when a follower is asked to order.
	ErrNotLeader = errors.New("ordering: node is not the leader")
	// ErrNodeDown is returned when a crashed node is asked to serve.
	ErrNodeDown = errors.New("ordering: node is down")
	// ErrNoQuorum is returned when fewer than a majority of nodes
	// acknowledge replication.
	ErrNoQuorum = errors.New("ordering: replication quorum unavailable")
	// ErrClusterSize is returned for clusters smaller than 3 nodes.
	ErrClusterSize = errors.New("ordering: cluster needs at least 3 nodes")
	// ErrQueuedAwaitingLeader marks a submission that was accepted into the
	// pending queue but could not be sequenced because leadership (or the
	// replication quorum) fell over between enqueue and flush. The
	// transaction stays queued: the next successful Flush — typically the
	// failover replay — sequences it, so resubmitting it would order it
	// twice. The underlying ErrNoLeader/ErrNoQuorum stays matchable through
	// errors.Is.
	ErrQueuedAwaitingLeader = errors.New("ordering: transaction queued awaiting a sequencing leader")
)

// logEntry is one replicated ordering decision.
type logEntry struct {
	term  uint64
	block ledger.Block
}

// clusterNode is one member-operated ordering node.
type clusterNode struct {
	operator string

	mu       sync.Mutex
	down     bool
	term     uint64
	isLeader bool
	log      []logEntry
	// committed is the index below which entries are quorum-committed.
	committed int
}

// Cluster is a member-run replicated ordering service for one channel
// group. Each node is operated by a different consortium member, so the
// §3.4 "ordering sees everything" leak is confined to parties that are
// already entitled to the data.
type Cluster struct {
	channel    string
	visibility Visibility
	log        *audit.Log

	mu       sync.Mutex
	nodes    []*clusterNode
	leader   int // index into nodes, -1 when none
	height   uint64
	lastHash [32]byte
	pending  []ledger.Transaction
	batch    int
	subs     []DeliverFunc
	// base/baseHash anchor the chain when the cluster adopted state from
	// another shard (channel migration): the replicated log starts empty
	// here, so elections re-derive height as base + committed entries and
	// fall back to baseHash when the log holds nothing yet. Zero for
	// clusters that started the chain themselves.
	base     uint64
	baseHash [32]byte

	// deliver serializes replication + delivery so subscribers receive
	// blocks in height order under concurrent submitters (see
	// Service.Flush for the solo-orderer equivalent).
	deliver sync.Mutex
}

// NewCluster creates a replicated ordering cluster for a channel, one node
// per operator. The first operator starts as leader (a deterministic
// bootstrap election).
func NewCluster(channel string, operators []string, visibility Visibility, opts ...ClusterOption) (*Cluster, error) {
	if len(operators) < 3 {
		return nil, ErrClusterSize
	}
	c := &Cluster{
		channel:    channel,
		visibility: visibility,
		leader:     0,
		batch:      1,
	}
	for _, op := range operators {
		c.nodes = append(c.nodes, &clusterNode{operator: op})
	}
	c.nodes[0].isLeader = true
	c.nodes[0].term = 1
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// ClusterOption configures a cluster.
type ClusterOption func(*Cluster)

// WithClusterAudit attaches leakage accounting.
func WithClusterAudit(log *audit.Log) ClusterOption {
	return func(c *Cluster) { c.log = log }
}

// WithClusterBatch sets transactions per block.
func WithClusterBatch(n int) ClusterOption {
	return func(c *Cluster) {
		if n > 0 {
			c.batch = n
		}
	}
}

// Subscribe registers a block consumer.
func (c *Cluster) Subscribe(deliver DeliverFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, deliver)
}

// Leader returns the operator of the current leader.
func (c *Cluster) Leader() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader < 0 {
		return "", ErrNoLeader
	}
	return c.nodes[c.leader].operator, nil
}

// Crash takes a node down.
func (c *Cluster) Crash(operator string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.indexOf(operator)
	if idx < 0 {
		return fmt.Errorf("ordering: unknown node %q", operator)
	}
	node := c.nodes[idx]
	node.mu.Lock()
	node.down = true
	wasLeader := node.isLeader
	node.isLeader = false
	node.mu.Unlock()
	if wasLeader {
		c.leader = -1
	}
	return nil
}

// Restart brings a crashed node back as a follower; it catches up from the
// current leader's committed log.
func (c *Cluster) Restart(operator string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.indexOf(operator)
	if idx < 0 {
		return fmt.Errorf("ordering: unknown node %q", operator)
	}
	node := c.nodes[idx]
	node.mu.Lock()
	node.down = false
	node.isLeader = false
	node.mu.Unlock()
	if c.leader >= 0 {
		c.catchUpLocked(node)
	}
	return nil
}

func (c *Cluster) indexOf(operator string) int {
	for i, n := range c.nodes {
		if n.operator == operator {
			return i
		}
	}
	return -1
}

// Elect runs a leader election: the first live node with the longest
// committed log that can gather a majority of live votes becomes leader at
// a new term. Returns the new leader's operator.
func (c *Cluster) Elect() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		if !n.down {
			live++
		}
		n.mu.Unlock()
	}
	if live < len(c.nodes)/2+1 {
		c.leader = -1
		return "", fmt.Errorf("%w: %d of %d nodes live", ErrNoQuorum, live, len(c.nodes))
	}
	// Candidate choice: live node with the longest committed log (Raft's
	// up-to-date restriction), ties broken by node order.
	best := -1
	bestLen := -1
	var maxTerm uint64
	for i, n := range c.nodes {
		n.mu.Lock()
		if n.term > maxTerm {
			maxTerm = n.term
		}
		if !n.down && n.committed > bestLen {
			best = i
			bestLen = n.committed
		}
		n.mu.Unlock()
	}
	if best < 0 {
		c.leader = -1
		return "", ErrNoLeader
	}
	newTerm := maxTerm + 1
	for i, n := range c.nodes {
		n.mu.Lock()
		n.isLeader = i == best
		if !n.down {
			n.term = newTerm
		}
		n.mu.Unlock()
	}
	c.leader = best
	leader := c.nodes[best]
	// Re-derive chain state from the leader's committed log, so ordering
	// resumes exactly where the quorum left off.
	leader.mu.Lock()
	c.height = c.base + uint64(leader.committed)
	if leader.committed > 0 {
		c.lastHash = leader.log[leader.committed-1].block.Hash()
	} else {
		c.lastHash = c.baseHash
	}
	leader.mu.Unlock()
	return leader.operator, nil
}

// Submit queues a transaction with the current leader.
func (c *Cluster) Submit(tx ledger.Transaction) error {
	if err := tx.Validate(); err != nil {
		return fmt.Errorf("cluster submit: %w", err)
	}
	c.mu.Lock()
	if c.leader < 0 {
		c.mu.Unlock()
		return ErrNoLeader
	}
	leaderNode := c.nodes[c.leader]
	leaderNode.mu.Lock()
	downLeader := leaderNode.down
	leaderNode.mu.Unlock()
	if downLeader {
		c.leader = -1
		c.mu.Unlock()
		return ErrNoLeader
	}
	// Every live cluster node's operator observes the envelope; with full
	// visibility, the payload and parties too. Because operators are
	// channel members, this confines rather than creates the leak.
	c.observeLocked(tx)
	c.pending = append(c.pending, tx)
	ready := len(c.pending) >= c.batch
	c.mu.Unlock()
	if ready {
		if err := c.Flush(); err != nil && (errors.Is(err, ErrNoLeader) || errors.Is(err, ErrNoQuorum)) {
			// The transaction is appended but unsequenced; mark it so a
			// failover driver knows to replay the queue instead of
			// resubmitting (which would order it twice).
			return fmt.Errorf("%w: %w", ErrQueuedAwaitingLeader, err)
		} else if err != nil {
			return err
		}
	}
	return nil
}

// cancelPending removes one queued instance of tx (matched by transaction
// ID) from the pending queue, reporting whether it was still there. A
// failover driver calls this when its election failed: the submission is
// withdrawn so the error it returns means "not ordered" — unless a racing
// failover already flushed the queue, in which case the transaction was
// sequenced after all.
func (c *Cluster) cancelPending(tx ledger.Transaction) bool {
	id := tx.ID()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.pending {
		if c.pending[i].ID() == id {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Pending returns the number of queued-but-unsequenced transactions.
func (c *Cluster) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// exportState snapshots the cluster's chain state for migration: committed
// height, head hash, and the queued transactions that have not been
// sequenced yet. Taking the delivery lock first drains any in-flight flush
// so the snapshot is a consistent cut.
func (c *Cluster) exportState() ChannelState {
	c.deliver.Lock()
	defer c.deliver.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChannelState{
		Height:   c.height,
		LastHash: c.lastHash,
		Pending:  append([]ledger.Transaction(nil), c.pending...),
	}
}

// adoptState seeds a freshly constructed cluster with chain state imported
// from another shard. Block numbering and hash chaining continue from the
// imported height — including across later elections, which re-derive
// height as base + committed log entries.
func (c *Cluster) adoptState(st ChannelState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.base = st.Height
	c.baseHash = st.LastHash
	c.height = st.Height
	c.lastHash = st.LastHash
	c.pending = append([]ledger.Transaction(nil), st.Pending...)
}

func (c *Cluster) observeLocked(tx ledger.Transaction) {
	id := tx.ID()
	for _, n := range c.nodes {
		n.mu.Lock()
		down := n.down
		op := n.operator
		n.mu.Unlock()
		if down {
			continue
		}
		c.log.Record(op, audit.ClassTxMetadata, id)
		if c.visibility == VisibilityFull {
			c.log.Record(op, audit.ClassTxData, id)
			c.log.Record(op, audit.ClassIdentity, tx.Creator)
		}
	}
}

// Flush orders pending transactions: the leader appends to its log,
// replicates to followers, commits on majority acknowledgement, and only
// then delivers to subscribers.
func (c *Cluster) Flush() error {
	c.deliver.Lock()
	defer c.deliver.Unlock()
	c.mu.Lock()
	if c.leader < 0 {
		c.mu.Unlock()
		return ErrNoLeader
	}
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return nil
	}
	txs := c.pending
	c.pending = nil
	leader := c.nodes[c.leader]
	block := ledger.NewBlock(c.height, c.lastHash, txs)

	leader.mu.Lock()
	term := leader.term
	entry := logEntry{term: term, block: block}
	leader.log = append(leader.log, entry)
	leader.mu.Unlock()

	// Replicate: count acknowledgements from live followers.
	acks := 1 // leader
	for i, n := range c.nodes {
		if i == c.leader {
			continue
		}
		n.mu.Lock()
		if !n.down {
			n.log = append(n.log, entry)
			acks++
		}
		n.mu.Unlock()
	}
	quorum := len(c.nodes)/2 + 1
	if acks < quorum {
		// Roll the entry back everywhere; the block is not committed.
		for _, n := range c.nodes {
			n.mu.Lock()
			if len(n.log) > 0 && n.log[len(n.log)-1].block.Number == block.Number && n.log[len(n.log)-1].term == term {
				n.log = n.log[:len(n.log)-1]
			}
			n.mu.Unlock()
		}
		c.pending = append(txs, c.pending...)
		c.mu.Unlock()
		return fmt.Errorf("%w: %d of %d acks", ErrNoQuorum, acks, quorum)
	}
	// Commit on every live node.
	for _, n := range c.nodes {
		n.mu.Lock()
		if !n.down && len(n.log) > n.committed {
			n.committed = len(n.log)
		}
		n.mu.Unlock()
	}
	c.height++
	c.lastHash = block.Hash()
	subs := append([]DeliverFunc(nil), c.subs...)
	c.mu.Unlock()

	for _, deliver := range subs {
		if err := deliver(block); err != nil {
			return fmt.Errorf("deliver block %d: %w", block.Number, err)
		}
	}
	return nil
}

// catchUpLocked copies the leader's committed log onto a restarted node.
// Caller holds c.mu.
func (c *Cluster) catchUpLocked(node *clusterNode) {
	leader := c.nodes[c.leader]
	leader.mu.Lock()
	entries := make([]logEntry, leader.committed)
	copy(entries, leader.log[:leader.committed])
	term := leader.term
	leader.mu.Unlock()
	node.mu.Lock()
	node.log = entries
	node.committed = len(entries)
	node.term = term
	node.mu.Unlock()
}

// CommittedBlocks returns the committed block count on one node, letting
// tests verify replication.
func (c *Cluster) CommittedBlocks(operator string) (int, error) {
	c.mu.Lock()
	idx := c.indexOf(operator)
	c.mu.Unlock()
	if idx < 0 {
		return 0, fmt.Errorf("ordering: unknown node %q", operator)
	}
	n := c.nodes[idx]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, ErrNodeDown
	}
	return n.committed, nil
}

// LiveNodes returns the operators of nodes currently up.
func (c *Cluster) LiveNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, n := range c.nodes {
		n.mu.Lock()
		if !n.down {
			out = append(out, n.operator)
		}
		n.mu.Unlock()
	}
	return out
}
