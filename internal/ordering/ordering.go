// Package ordering implements the transaction-ordering service the paper
// singles out as a privacy-critical component (§3.4, "Ordering
// transactions"): for Fabric-style platforms the service "has visibility of
// all DLT events, including parties to transactions and transaction
// details". The orderer here makes that visibility explicit: every
// submission is recorded against the operating principal in the audit log,
// so experiments can show exactly what a third-party operator learns — and
// what a party-run ("private sequencing") deployment avoids leaking.
package ordering

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

// Errors returned by the ordering service.
var (
	// ErrUnknownChannel is returned when flushing a channel that has no
	// pending transactions and no history.
	ErrUnknownChannel = errors.New("ordering: unknown channel")
	// ErrNoSubscribers is returned when a block is cut for a channel with
	// no delivery targets.
	ErrNoSubscribers = errors.New("ordering: no subscribers for channel")
)

// Visibility controls how much of a submitted transaction the ordering
// service inspects, and therefore leaks to its operator.
type Visibility int

// Visibility levels.
const (
	// VisibilityFull models Fabric/Corda ordering and notary services:
	// the operator sees parties and transaction content.
	VisibilityFull Visibility = iota + 1
	// VisibilityEnvelope models an orderer fed opaque payloads: the
	// operator sees only channel, transaction id, and size.
	VisibilityEnvelope
)

// DeliverFunc receives a cut block for a channel. Delivery runs with the
// channel's delivery lock held (blocks reach subscribers in height
// order), so a DeliverFunc must not call Submit or Flush for the same
// channel on the same service — that self-deadlocks. Re-submitting into a
// different service (as the middleware gateway's platform adapters do) is
// fine.
type DeliverFunc func(b ledger.Block) error

// chainState tracks the orderer-side view of one channel chain.
type chainState struct {
	height   uint64
	lastHash [32]byte
	pending  []ledger.Transaction
	subs     []DeliverFunc
	// deliver serializes block cut + delivery so subscribers receive
	// blocks in height order even under concurrent submitters (the
	// middleware gateway drives this path from many goroutines).
	deliver sync.Mutex
}

// Service is a single-node ("solo") ordering service. The paper notes
// parties can "run their own service to mitigate leaks"; Operator names the
// principal that learns whatever the visibility level exposes.
type Service struct {
	operator   string
	visibility Visibility
	batchSize  int
	seqCost    time.Duration
	log        *audit.Log

	mu     sync.Mutex
	chains map[string]*chainState
	// seq is the node's sequencer: with a sequencing cost configured, each
	// submission occupies it for that long, modeling the finite throughput
	// of one ordering node.
	seq sync.Mutex
}

// Option configures the service.
type Option func(*Service)

// WithBatchSize sets the number of transactions per block (default 1).
func WithBatchSize(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.batchSize = n
		}
	}
}

// WithAuditLog attaches leakage accounting.
func WithAuditLog(log *audit.Log) Option {
	return func(s *Service) { s.log = log }
}

// WithSequencingCost models the finite throughput of a single ordering
// node: each submission occupies the node's sequencer for d before it is
// enqueued, the way a real orderer's consensus round trip or commit fsync
// bounds how fast one node sequences, regardless of how many clients push.
// The default of zero keeps the service an infinitely fast in-memory model.
// Experiments use this to make ordering-tier capacity — and what sharding
// buys — observable.
func WithSequencingCost(d time.Duration) Option {
	return func(s *Service) {
		if d > 0 {
			s.seqCost = d
		}
	}
}

// New creates an ordering service operated by the named principal.
func New(operator string, visibility Visibility, opts ...Option) *Service {
	s := &Service{
		operator:   operator,
		visibility: visibility,
		batchSize:  1,
		chains:     make(map[string]*chainState),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Operator returns the principal operating the service.
func (s *Service) Operator() string { return s.operator }

// Subscribe registers a block consumer for a channel.
func (s *Service) Subscribe(channel string, deliver DeliverFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chain(channel).subs = append(s.chain(channel).subs, deliver)
}

func (s *Service) chain(channel string) *chainState {
	c, ok := s.chains[channel]
	if !ok {
		c = &chainState{}
		s.chains[channel] = c
	}
	return c
}

// Submit queues a transaction for ordering, recording what the operator
// observed. Blocks are cut automatically when the batch size is reached.
func (s *Service) Submit(tx ledger.Transaction) error {
	if err := tx.Validate(); err != nil {
		return fmt.Errorf("ordering submit: %w", err)
	}
	// The digest is needed twice from here — the observation ID below and
	// the block data hash at cut time. Prime it once; a group envelope's
	// payload is batch-size times a single submission's, so re-hashing it
	// per use would put the canonical serialization back on the amortized
	// fast path.
	tx.PrimeDigest()
	s.observe(tx)
	if s.seqCost > 0 {
		// One sequencer per node: submissions pass through it one at a
		// time. This is the per-node throughput ceiling a sharded topology
		// divides — each shard brings its own sequencer.
		s.seq.Lock()
		time.Sleep(s.seqCost)
		s.seq.Unlock()
	}
	s.mu.Lock()
	c := s.chain(tx.Channel)
	c.pending = append(c.pending, tx)
	ready := len(c.pending) >= s.batchSize
	s.mu.Unlock()
	if ready {
		return s.Flush(tx.Channel)
	}
	return nil
}

// observe records the operator's view of the submission.
func (s *Service) observe(tx ledger.Transaction) {
	id := tx.ID()
	// Envelope metadata is visible at any level.
	s.log.Record(s.operator, audit.ClassTxMetadata, id)
	if s.visibility != VisibilityFull {
		return
	}
	// Full visibility: the operator learns the parties to the transaction
	// and its content (§3.4).
	s.log.Record(s.operator, audit.ClassTxData, id)
	s.log.Record(s.operator, audit.ClassIdentity, tx.Creator)
	for _, e := range tx.Endorsements {
		s.log.Record(s.operator, audit.ClassIdentity, e.Party)
		s.log.Record(s.operator, audit.ClassRelationship, tx.Creator+"<->"+e.Party)
	}
}

// Flush cuts a block from pending transactions and delivers it.
func (s *Service) Flush(channel string) error {
	s.mu.Lock()
	c, ok := s.chains[channel]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownChannel, channel)
	}
	// Hold the channel delivery lock across cut and delivery: blocks
	// reach subscribers in height order even when Flush races.
	c.deliver.Lock()
	defer c.deliver.Unlock()

	s.mu.Lock()
	if len(c.pending) == 0 {
		s.mu.Unlock()
		return nil
	}
	if len(c.subs) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSubscribers, channel)
	}
	txs := c.pending
	c.pending = nil
	block := ledger.NewBlock(c.height, c.lastHash, txs)
	c.height++
	c.lastHash = block.Hash()
	subs := append([]DeliverFunc(nil), c.subs...)
	s.mu.Unlock()

	for _, deliver := range subs {
		if err := deliver(block); err != nil {
			return fmt.Errorf("deliver block %d on %s: %w", block.Number, channel, err)
		}
	}
	return nil
}

// Pending returns the number of queued transactions for a channel.
func (s *Service) Pending(channel string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chains[channel]; ok {
		return len(c.pending)
	}
	return 0
}

// Height returns the orderer-side chain height for a channel.
func (s *Service) Height(channel string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chains[channel]; ok {
		return c.height
	}
	return 0
}
