package ordering

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/telemetry"
)

// Errors returned by the sharded backend.
var (
	// ErrNoShards is returned when constructing a sharded backend with an
	// empty shard list.
	ErrNoShards = errors.New("ordering: sharded backend needs at least one shard")
	// ErrBadShard is returned for a pin naming a shard index outside the
	// topology.
	ErrBadShard = errors.New("ordering: shard index out of range")
	// ErrChannelMoved is returned when a pin would move a channel that
	// already carried traffic on another shard: its block chain (or its
	// pending transactions) would fork across shards.
	ErrChannelMoved = errors.New("ordering: channel already owned by another shard")
)

// vnodesPerShard is the number of virtual ring points per shard. Enough
// points smooth the channel distribution; the ring stays a few KB even for
// wide topologies.
const vnodesPerShard = 64

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// shardCounters tracks one shard's routing traffic.
type shardCounters struct {
	routedTxs atomic.Uint64
	delivered atomic.Uint64
}

// ShardStats is a snapshot of one shard's routing counters.
type ShardStats struct {
	// Shard is the shard index within the topology.
	Shard int
	// Operators names the principals operating the shard's backend.
	Operators []string
	// RoutedTxs counts transactions routed to the shard.
	RoutedTxs uint64
	// DeliveredBlocks counts block deliveries fanned out to subscribers
	// registered through the sharded backend (a block reaching three
	// subscribers counts three times).
	DeliveredBlocks uint64
	// PinnedChannels counts channels explicitly pinned to the shard.
	PinnedChannels int
}

// ShardedBackend partitions channels across multiple ordering backends so
// heavy multi-channel traffic scales horizontally: each channel is owned by
// exactly one shard, chosen by consistent hashing over the channel name or
// by an explicit pin for hot channels. Because every submission and
// subscription for a channel lands on the same shard, the per-channel
// delivery serialization the underlying services guarantee — blocks reach
// subscribers in height order — is preserved unchanged; what sharding
// divides is the cross-channel contention on each service's internal lock.
// Safe for concurrent use.
type ShardedBackend struct {
	shards []Backend
	ring   []ringPoint
	stats  []shardCounters

	mu sync.RWMutex
	// pins maps channel -> shard index, overriding the hash ring.
	pins map[string]int
	// owned records the shard each channel was first routed to — on its
	// first Submit or Subscribe — so a later pin cannot silently fork a
	// channel with history across shards. Steady-state routing reads it
	// under the read lock; only a channel's first touch takes the write
	// lock.
	owned map[string]int
}

// Compile-time check.
var _ Backend = (*ShardedBackend)(nil)

// NewSharded builds a sharded backend over the given shards. Shard order is
// part of the topology: the same shard list (by position) yields the same
// channel routing on every construction.
func NewSharded(shards []Backend) (*ShardedBackend, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("%w: shard %d is nil", ErrNoShards, i)
		}
	}
	sb := &ShardedBackend{
		shards: append([]Backend(nil), shards...),
		ring:   make([]ringPoint, 0, len(shards)*vnodesPerShard),
		stats:  make([]shardCounters, len(shards)),
		pins:   make(map[string]int),
		owned:  make(map[string]int),
	}
	for i := range sb.shards {
		for v := 0; v < vnodesPerShard; v++ {
			sb.ring = append(sb.ring, ringPoint{
				hash:  ringHash(fmt.Sprintf("shard-%d#vnode-%d", i, v)),
				shard: i,
			})
		}
	}
	sort.Slice(sb.ring, func(a, b int) bool { return sb.ring[a].hash < sb.ring[b].hash })
	return sb, nil
}

// ringHash is the ring's hash function: FNV-1a pushed through a 64-bit
// avalanche finalizer. Raw FNV clusters inputs that differ only in a few
// trailing bytes — exactly what channel and vnode names look like — which
// collapses the ring into contiguous single-shard arcs; the finalizer
// spreads them. Deterministic across processes, so a topology routes
// identically on every node that builds it.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Shards returns the number of shards in the topology.
func (sb *ShardedBackend) Shards() int { return len(sb.shards) }

// Shard returns the backend at a shard index, for tests and topology
// inspection.
func (sb *ShardedBackend) Shard(i int) (Backend, error) {
	if i < 0 || i >= len(sb.shards) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadShard, i, len(sb.shards))
	}
	return sb.shards[i], nil
}

// Pin routes a channel to an explicit shard, overriding the hash ring —
// the relief valve for hot channels that should own a shard (or for
// keeping related channels co-located). Pins must be installed before the
// channel carries traffic: pinning a channel that already submitted or
// subscribed on a different shard is refused, because its block chain (or
// its pending transactions) would fork across shards.
func (sb *ShardedBackend) Pin(channel string, shard int) error {
	if shard < 0 || shard >= len(sb.shards) {
		return fmt.Errorf("%w: pin %q to %d of %d", ErrBadShard, channel, shard, len(sb.shards))
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if cur, ok := sb.owned[channel]; ok && cur != shard {
		return fmt.Errorf("%w: %q lives on shard %d, pin wants %d", ErrChannelMoved, channel, cur, shard)
	}
	// Ownership is only established by traffic (route), so a mistaken pin
	// can still be corrected freely before the channel's first
	// Submit/Subscribe.
	sb.pins[channel] = shard
	return nil
}

// ShardFor reports the shard a channel routes to — its recorded owner,
// else its pin, else the ring — without recording ownership; inspection
// never turns a would-be route into channel history.
func (sb *ShardedBackend) ShardFor(channel string) int {
	i, _ := sb.resolve(channel)
	return i
}

// resolve returns the channel's routing shard and whether that ownership
// is already on record.
func (sb *ShardedBackend) resolve(channel string) (int, bool) {
	sb.mu.RLock()
	defer sb.mu.RUnlock()
	if i, ok := sb.owned[channel]; ok {
		return i, true
	}
	if i, ok := sb.pins[channel]; ok {
		return i, false
	}
	return sb.hashShard(channel), false
}

// hashShard maps a channel onto the ring: the first point at or after the
// channel's hash.
func (sb *ShardedBackend) hashShard(channel string) int {
	h := ringHash(channel)
	i := sort.Search(len(sb.ring), func(i int) bool { return sb.ring[i].hash >= h })
	if i == len(sb.ring) {
		i = 0
	}
	return sb.ring[i].shard
}

// adopt records channel ownership — the fact a later Pin must not fork —
// and returns the owner on record (an earlier racer's claim wins, which
// resolve's determinism makes the same shard in supported usage).
func (sb *ShardedBackend) adopt(channel string, shard int) int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if cur, ok := sb.owned[channel]; ok {
		return cur
	}
	sb.owned[channel] = shard
	return shard
}

// Submit implements Backend: the transaction is routed to its channel's
// owning shard. Ownership is recorded only once a submission is accepted,
// so a channel whose only traffic was rejected can still be pinned.
func (sb *ShardedBackend) Submit(tx ledger.Transaction) error {
	i, owned := sb.resolve(tx.Channel)
	// Count the routing BEFORE the shard submit: a submission that fills a
	// batch delivers its block synchronously inside Submit, so counting
	// after would let a stats poll observe the delivery without the routing
	// that caused it. A rejected submission undoes the increment.
	sb.stats[i].routedTxs.Add(1)
	if err := sb.shards[i].Submit(tx); err != nil {
		sb.stats[i].routedTxs.Add(^uint64(0))
		return fmt.Errorf("shard %d: %w", i, err)
	}
	if !owned {
		sb.adopt(tx.Channel, i)
	}
	return nil
}

// Subscribe implements Backend: the subscription fans out to the channel's
// owning shard, with deliveries counted against it. Subscribing IS channel
// history — blocks will be cut on this shard — so ownership is recorded
// immediately.
func (sb *ShardedBackend) Subscribe(channel string, deliver DeliverFunc) {
	i, owned := sb.resolve(channel)
	if !owned {
		i = sb.adopt(channel, i)
	}
	st := &sb.stats[i]
	sb.shards[i].Subscribe(channel, func(b ledger.Block) error {
		if err := deliver(b); err != nil {
			return err
		}
		st.delivered.Add(1)
		return nil
	})
}

// Operators implements Backend: the union of every shard's operators, in
// shard order, deduplicated.
func (sb *ShardedBackend) Operators() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range sb.shards {
		for _, op := range s.Operators() {
			if !seen[op] {
				seen[op] = true
				out = append(out, op)
			}
		}
	}
	return out
}

// Stats snapshots per-shard routing counters, indexed by shard.
func (sb *ShardedBackend) Stats() []ShardStats {
	pinned := make([]int, len(sb.shards))
	sb.mu.RLock()
	for _, shard := range sb.pins {
		pinned[shard]++
	}
	sb.mu.RUnlock()
	out := make([]ShardStats, len(sb.shards))
	for i := range sb.shards {
		// Deliveries are read before routings: a delivery always follows
		// the routing increment that cut its block, so this order keeps
		// each shard's snapshot consistent (routed >= what the deliveries
		// imply) while submitters race the poll.
		delivered := sb.stats[i].delivered.Load()
		out[i] = ShardStats{
			Shard:           i,
			Operators:       sb.shards[i].Operators(),
			RoutedTxs:       sb.stats[i].routedTxs.Load(),
			DeliveredBlocks: delivered,
			PinnedChannels:  pinned[i],
		}
	}
	return out
}

// RegisterMetrics registers the per-shard routing counters and pinned-
// channel gauges into reg under the confmw_shard_* names, labelled by
// shard index.
func (sb *ShardedBackend) RegisterMetrics(reg *telemetry.Registry) error {
	for i := range sb.shards {
		st := &sb.stats[i]
		label := telemetry.L("shard", strconv.Itoa(i))
		if err := reg.CounterFunc("confmw_shard_routed_txs_total",
			"Transactions routed to the shard.", st.routedTxs.Load, label); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_shard_delivered_blocks_total",
			"Block deliveries fanned out to the shard's subscribers.", st.delivered.Load, label); err != nil {
			return err
		}
		shard := i
		if err := reg.GaugeFunc("confmw_shard_pinned_channels",
			"Channels explicitly pinned to the shard.", func() float64 {
				n := 0
				sb.mu.RLock()
				for _, s := range sb.pins {
					if s == shard {
						n++
					}
				}
				sb.mu.RUnlock()
				return float64(n)
			}, label); err != nil {
			return err
		}
	}
	return nil
}
