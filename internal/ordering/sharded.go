package ordering

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/telemetry"
)

// Errors returned by the sharded backend.
var (
	// ErrNoShards is returned when constructing a sharded backend with an
	// empty shard list.
	ErrNoShards = errors.New("ordering: sharded backend needs at least one shard")
	// ErrBadShard is returned for a pin naming a shard index outside the
	// topology.
	ErrBadShard = errors.New("ordering: shard index out of range")
	// ErrChannelMoved is returned when a pin would move a channel that
	// already carried traffic on another shard: its block chain (or its
	// pending transactions) would fork across shards.
	ErrChannelMoved = errors.New("ordering: channel already owned by another shard")
)

// vnodesPerShard is the number of virtual ring points per shard. Enough
// points smooth the channel distribution; the ring stays a few KB even for
// wide topologies.
const vnodesPerShard = 64

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// shardCounters tracks one shard's routing traffic.
type shardCounters struct {
	routedTxs  atomic.Uint64
	delivered  atomic.Uint64
	migratedIn atomic.Uint64
}

// ShardStats is a snapshot of one shard's routing counters.
type ShardStats struct {
	// Shard is the shard index within the topology.
	Shard int
	// Operators names the principals operating the shard's backend.
	Operators []string
	// RoutedTxs counts transactions routed to the shard.
	RoutedTxs uint64
	// DeliveredBlocks counts block deliveries fanned out to subscribers
	// registered through the sharded backend (a block reaching three
	// subscribers counts three times).
	DeliveredBlocks uint64
	// PinnedChannels counts channels explicitly pinned to the shard.
	PinnedChannels int
	// OwnedChannels counts channels whose traffic currently routes to the
	// shard — the live residency rebalancing shifts, unlike the pin table.
	OwnedChannels int
	// Failovers counts leader elections the shard ran to recover from a
	// dead leader; 0 for non-replicated shards.
	Failovers uint64
	// MigratedIn counts live channels migrated onto the shard.
	MigratedIn uint64
}

// channelRoute is a channel's routing record: which shard serves it, its
// subscriber fan-out, and its load counter. It exists once the channel has
// carried traffic (the old "owned" fact), and its lock is the migration
// gate.
type channelRoute struct {
	// mu gates routing against migration: Submit and Subscribe hold it
	// shared around the shard call, Migrate holds it exclusively — so a
	// migration starts only after in-flight submissions drain, and new ones
	// wait until the channel has landed on its new shard.
	mu sync.RWMutex
	// shard is the serving shard index: written by Migrate under mu,
	// read atomically by inspection paths that must not touch mu (resolve
	// runs under the backend lock, which Migrate acquires after mu).
	shard atomic.Int32
	// relay records whether the fan-out relay is registered on the serving
	// shard; Migrate re-registers it on the target. Guarded by mu.
	relay bool
	// subs is the subscriber list, read lock-free by the relay: delivery
	// runs inside Submit, which already holds mu shared — re-acquiring it
	// there would deadlock against a waiting migration.
	subs atomic.Pointer[[]DeliverFunc]
	// routed counts accepted submissions for this channel — the per-channel
	// load signal skew rebalancing ranks by. It travels with the channel
	// across migrations, unlike the per-shard counters.
	routed atomic.Uint64
}

// ShardedBackend partitions channels across multiple ordering backends so
// heavy multi-channel traffic scales horizontally: each channel is owned by
// exactly one shard, chosen by consistent hashing over the channel name or
// by an explicit pin for hot channels. Because every submission and
// subscription for a channel lands on the same shard, the per-channel
// delivery serialization the underlying services guarantee — blocks reach
// subscribers in height order — is preserved unchanged; what sharding
// divides is the cross-channel contention on each service's internal lock.
// Safe for concurrent use.
type ShardedBackend struct {
	shards []Backend
	ring   []ringPoint
	stats  []shardCounters

	mu sync.RWMutex
	// pins maps channel -> shard index, overriding the hash ring.
	pins map[string]int
	// routes records each channel's routing state from its first Submit or
	// Subscribe on — the ownership fact a later pin must not fork, plus the
	// migration gate and fan-out. Steady-state routing reads the map under
	// the read lock; a channel's first touch takes the write lock, and
	// moves go through Migrate.
	routes map[string]*channelRoute

	// migrations counts completed channel migrations across the topology.
	migrations atomic.Uint64
}

// shardFailovers is the optional interface replicated shard backends
// implement to surface their failover counter into ShardStats and metrics.
type shardFailovers interface {
	Failovers() uint64
}

// Compile-time check.
var _ Backend = (*ShardedBackend)(nil)

// NewSharded builds a sharded backend over the given shards. Shard order is
// part of the topology: the same shard list (by position) yields the same
// channel routing on every construction.
func NewSharded(shards []Backend) (*ShardedBackend, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("%w: shard %d is nil", ErrNoShards, i)
		}
	}
	sb := &ShardedBackend{
		shards: append([]Backend(nil), shards...),
		ring:   make([]ringPoint, 0, len(shards)*vnodesPerShard),
		stats:  make([]shardCounters, len(shards)),
		pins:   make(map[string]int),
		routes: make(map[string]*channelRoute),
	}
	for i := range sb.shards {
		for v := 0; v < vnodesPerShard; v++ {
			sb.ring = append(sb.ring, ringPoint{
				hash:  ringHash(fmt.Sprintf("shard-%d#vnode-%d", i, v)),
				shard: i,
			})
		}
	}
	sort.Slice(sb.ring, func(a, b int) bool { return sb.ring[a].hash < sb.ring[b].hash })
	return sb, nil
}

// ringHash is the ring's hash function: FNV-1a pushed through a 64-bit
// avalanche finalizer. Raw FNV clusters inputs that differ only in a few
// trailing bytes — exactly what channel and vnode names look like — which
// collapses the ring into contiguous single-shard arcs; the finalizer
// spreads them. Deterministic across processes, so a topology routes
// identically on every node that builds it.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Shards returns the number of shards in the topology.
func (sb *ShardedBackend) Shards() int { return len(sb.shards) }

// Shard returns the backend at a shard index, for tests and topology
// inspection.
func (sb *ShardedBackend) Shard(i int) (Backend, error) {
	if i < 0 || i >= len(sb.shards) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadShard, i, len(sb.shards))
	}
	return sb.shards[i], nil
}

// Pin routes a channel to an explicit shard, overriding the hash ring —
// the relief valve for hot channels that should own a shard (or for
// keeping related channels co-located). Pins must be installed before the
// channel carries traffic: pinning a channel that already submitted or
// subscribed on a different shard is refused, because its block chain (or
// its pending transactions) would fork across shards.
func (sb *ShardedBackend) Pin(channel string, shard int) error {
	if shard < 0 || shard >= len(sb.shards) {
		return fmt.Errorf("%w: pin %q to %d of %d", ErrBadShard, channel, shard, len(sb.shards))
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if rt, ok := sb.routes[channel]; ok {
		if cur := int(rt.shard.Load()); cur != shard {
			return fmt.Errorf("%w: %q lives on shard %d, pin wants %d", ErrChannelMoved, channel, cur, shard)
		}
	}
	// Ownership is only established by traffic (route), so a mistaken pin
	// can still be corrected freely before the channel's first
	// Submit/Subscribe.
	sb.pins[channel] = shard
	return nil
}

// ShardFor reports the shard a channel routes to — its recorded owner,
// else its pin, else the ring — without recording ownership; inspection
// never turns a would-be route into channel history.
func (sb *ShardedBackend) ShardFor(channel string) int {
	i, _ := sb.resolve(channel)
	return i
}

// resolve returns the channel's routing shard and whether that ownership
// is already on record.
func (sb *ShardedBackend) resolve(channel string) (int, bool) {
	sb.mu.RLock()
	defer sb.mu.RUnlock()
	if rt, ok := sb.routes[channel]; ok {
		return int(rt.shard.Load()), true
	}
	if i, ok := sb.pins[channel]; ok {
		return i, false
	}
	return sb.hashShard(channel), false
}

// route returns the channel's routing record, nil before its first traffic.
func (sb *ShardedBackend) route(channel string) *channelRoute {
	sb.mu.RLock()
	defer sb.mu.RUnlock()
	return sb.routes[channel]
}

// hashShard maps a channel onto the ring: the first point at or after the
// channel's hash.
func (sb *ShardedBackend) hashShard(channel string) int {
	h := ringHash(channel)
	i := sort.Search(len(sb.ring), func(i int) bool { return sb.ring[i].hash >= h })
	if i == len(sb.ring) {
		i = 0
	}
	return sb.ring[i].shard
}

// adopt records channel ownership — the fact a later Pin must not fork —
// and returns the route on record (an earlier racer's claim wins, which
// resolve's determinism makes the same shard in supported usage).
func (sb *ShardedBackend) adopt(channel string, shard int) *channelRoute {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if rt, ok := sb.routes[channel]; ok {
		return rt
	}
	rt := &channelRoute{}
	rt.shard.Store(int32(shard))
	sb.routes[channel] = rt
	return rt
}

// Submit implements Backend: the transaction is routed to its channel's
// owning shard, holding the route's migration gate shared so a concurrent
// Migrate waits for it (and it for a migration in progress). Ownership is
// recorded only once a submission is accepted, so a channel whose only
// traffic was rejected can still be pinned.
func (sb *ShardedBackend) Submit(tx ledger.Transaction) error {
	rt := sb.route(tx.Channel)
	if rt == nil {
		retry, err := sb.submitFirst(tx)
		if !retry {
			return err
		}
		// A racing Subscribe established the route between the lookup and
		// the first-traffic path; take the gated route path instead.
		rt = sb.route(tx.Channel)
	}
	rt.mu.RLock()
	i := int(rt.shard.Load())
	st := &sb.stats[i]
	// Count the routing BEFORE the shard submit: a submission that fills a
	// batch delivers its block synchronously inside Submit, so counting
	// after would let a stats poll observe the delivery without the routing
	// that caused it. A rejected submission undoes the increment.
	st.routedTxs.Add(1)
	err := sb.shards[i].Submit(tx)
	if err != nil {
		st.routedTxs.Add(^uint64(0))
	} else {
		rt.routed.Add(1)
	}
	rt.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("shard %d: %w", i, err)
	}
	return nil
}

// submitFirst is the first-traffic Submit path: the channel has no route
// yet, so the shard comes from the pin table or the ring, and acceptance
// establishes ownership. A migration cannot interleave — Migrate requires
// an existing route — but a concurrent Subscribe can create one; that case
// returns retry=true and the caller re-routes through the migration gate.
func (sb *ShardedBackend) submitFirst(tx ledger.Transaction) (retry bool, err error) {
	i, owned := sb.resolve(tx.Channel)
	if owned {
		return true, nil
	}
	sb.stats[i].routedTxs.Add(1)
	if err := sb.shards[i].Submit(tx); err != nil {
		sb.stats[i].routedTxs.Add(^uint64(0))
		return false, fmt.Errorf("shard %d: %w", i, err)
	}
	sb.adopt(tx.Channel, i).routed.Add(1)
	return false, nil
}

// Subscribe implements Backend: the subscriber joins the channel's fan-out
// list, and the first subscription attaches the relay — one shard-side
// consumer per channel residency that delivers to every subscriber
// registered here, so a migration moves all of them by re-attaching one
// relay on the target shard. Subscribing IS channel history — blocks will
// be cut on this shard — so ownership is recorded immediately.
func (sb *ShardedBackend) Subscribe(channel string, deliver DeliverFunc) {
	i, _ := sb.resolve(channel)
	rt := sb.adopt(channel, i)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var subs []DeliverFunc
	if old := rt.subs.Load(); old != nil {
		subs = append(subs, *old...)
	}
	subs = append(subs, deliver)
	rt.subs.Store(&subs)
	if !rt.relay {
		sb.attachRelay(channel, rt, int(rt.shard.Load()))
		rt.relay = true
	}
}

// attachRelay registers the channel's fan-out relay on its serving shard.
// Deliveries count against the shard that cut the block, keeping stats
// attribution correct across migrations; a subscriber error aborts the
// fan-out, surfacing through the shard's Submit/Flush as before. Caller
// holds rt.mu.
func (sb *ShardedBackend) attachRelay(channel string, rt *channelRoute, shard int) {
	st := &sb.stats[shard]
	sb.shards[shard].Subscribe(channel, func(b ledger.Block) error {
		subs := rt.subs.Load()
		if subs == nil {
			return nil
		}
		for _, deliver := range *subs {
			if err := deliver(b); err != nil {
				return err
			}
			st.delivered.Add(1)
		}
		return nil
	})
}

// Operators implements Backend: the union of every shard's operators, in
// shard order, deduplicated.
func (sb *ShardedBackend) Operators() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range sb.shards {
		for _, op := range s.Operators() {
			if !seen[op] {
				seen[op] = true
				out = append(out, op)
			}
		}
	}
	return out
}

// Stats snapshots per-shard routing counters, indexed by shard.
func (sb *ShardedBackend) Stats() []ShardStats {
	pinned := make([]int, len(sb.shards))
	owned := make([]int, len(sb.shards))
	sb.mu.RLock()
	for _, shard := range sb.pins {
		pinned[shard]++
	}
	for _, rt := range sb.routes {
		owned[rt.shard.Load()]++
	}
	sb.mu.RUnlock()
	out := make([]ShardStats, len(sb.shards))
	for i := range sb.shards {
		// Deliveries are read before routings: a delivery always follows
		// the routing increment that cut its block, so this order keeps
		// each shard's snapshot consistent (routed >= what the deliveries
		// imply) while submitters race the poll.
		delivered := sb.stats[i].delivered.Load()
		out[i] = ShardStats{
			Shard:           i,
			Operators:       sb.shards[i].Operators(),
			RoutedTxs:       sb.stats[i].routedTxs.Load(),
			DeliveredBlocks: delivered,
			PinnedChannels:  pinned[i],
			OwnedChannels:   owned[i],
			MigratedIn:      sb.stats[i].migratedIn.Load(),
		}
		if f, ok := sb.shards[i].(shardFailovers); ok {
			out[i].Failovers = f.Failovers()
		}
	}
	return out
}

// Migrations counts completed channel migrations across the topology.
func (sb *ShardedBackend) Migrations() uint64 { return sb.migrations.Load() }

// RegisterMetrics registers the per-shard routing counters and pinned-
// channel gauges into reg under the confmw_shard_* names, labelled by
// shard index.
func (sb *ShardedBackend) RegisterMetrics(reg *telemetry.Registry) error {
	for i := range sb.shards {
		st := &sb.stats[i]
		label := telemetry.L("shard", strconv.Itoa(i))
		if err := reg.CounterFunc("confmw_shard_routed_txs_total",
			"Transactions routed to the shard.", st.routedTxs.Load, label); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_shard_delivered_blocks_total",
			"Block deliveries fanned out to the shard's subscribers.", st.delivered.Load, label); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_shard_migrations_total",
			"Live channels migrated onto the shard.", st.migratedIn.Load, label); err != nil {
			return err
		}
		if f, ok := sb.shards[i].(shardFailovers); ok {
			if err := reg.CounterFunc("confmw_shard_failovers_total",
				"Leader elections the shard ran to recover from a dead leader.", f.Failovers, label); err != nil {
				return err
			}
		}
		shard := i
		if err := reg.GaugeFunc("confmw_shard_pinned_channels",
			"Channels explicitly pinned to the shard.", func() float64 {
				n := 0
				sb.mu.RLock()
				for _, s := range sb.pins {
					if s == shard {
						n++
					}
				}
				sb.mu.RUnlock()
				return float64(n)
			}, label); err != nil {
			return err
		}
		if err := reg.GaugeFunc("confmw_shard_owned_channels",
			"Channels whose traffic currently routes to the shard.", func() float64 {
				n := 0
				sb.mu.RLock()
				for _, rt := range sb.routes {
					if int(rt.shard.Load()) == shard {
						n++
					}
				}
				sb.mu.RUnlock()
				return float64(n)
			}, label); err != nil {
			return err
		}
	}
	return nil
}
