package ordering

import (
	"errors"
	"fmt"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

var clusterOps = []string{"BankA", "SellerCo", "BuyerInc"}

func newCluster(t *testing.T, opts ...ClusterOption) (*Cluster, *ledger.Ledger) {
	t.Helper()
	c, err := NewCluster("trade", clusterOps, VisibilityFull, opts...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	l := ledger.New("trade")
	c.Subscribe(l.Append)
	return c, l
}

func TestClusterTooSmall(t *testing.T) {
	if _, err := NewCluster("x", []string{"a", "b"}, VisibilityFull); !errors.Is(err, ErrClusterSize) {
		t.Fatalf("2-node cluster = %v, want ErrClusterSize", err)
	}
}

func TestClusterOrdersAndReplicates(t *testing.T) {
	c, l := newCluster(t)
	for i := 0; i < 5; i++ {
		if err := c.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if l.Height() != 5 {
		t.Fatalf("ledger height = %d, want 5", l.Height())
	}
	for _, op := range clusterOps {
		n, err := c.CommittedBlocks(op)
		if err != nil || n != 5 {
			t.Fatalf("node %s committed = %d, %v; want 5", op, n, err)
		}
	}
}

func TestLeaderBootstrap(t *testing.T) {
	c, _ := newCluster(t)
	leader, err := c.Leader()
	if err != nil || leader != "BankA" {
		t.Fatalf("Leader = %q, %v", leader, err)
	}
}

func TestFailoverAfterLeaderCrash(t *testing.T) {
	c, l := newCluster(t)
	if err := c.Submit(mkTx("trade", "BankA", "k0")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Crash("BankA"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := c.Leader(); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("Leader after crash = %v, want ErrNoLeader", err)
	}
	if err := c.Submit(mkTx("trade", "SellerCo", "k1")); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("Submit without leader = %v, want ErrNoLeader", err)
	}
	newLeader, err := c.Elect()
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if newLeader == "BankA" {
		t.Fatal("crashed node must not win the election")
	}
	// Ordering resumes and the chain continues from the committed state.
	if err := c.Submit(mkTx("trade", "SellerCo", "k1")); err != nil {
		t.Fatalf("Submit after failover: %v", err)
	}
	if l.Height() != 2 {
		t.Fatalf("ledger height = %d, want 2", l.Height())
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("chain broken after failover: %v", err)
	}
}

func TestMinorityPartitionLosesLiveness(t *testing.T) {
	c, _ := newCluster(t)
	if err := c.Crash("SellerCo"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := c.Crash("BuyerInc"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// Leader alone cannot reach quorum.
	err := c.Submit(mkTx("trade", "BankA", "k"))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Submit without quorum = %v, want ErrNoQuorum", err)
	}
	// Election also fails with a minority.
	if err := c.Crash("BankA"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := c.Elect(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Elect with all down = %v, want ErrNoQuorum", err)
	}
}

func TestQuorumFailureRollsBack(t *testing.T) {
	c, l := newCluster(t)
	_ = c.Crash("SellerCo")
	_ = c.Crash("BuyerInc")
	if err := c.Submit(mkTx("trade", "BankA", "k")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Submit = %v, want ErrNoQuorum", err)
	}
	if l.Height() != 0 {
		t.Fatal("block must not be delivered without quorum")
	}
	// After the followers return, the pending transaction commits.
	if err := c.Restart("SellerCo"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := c.Restart("BuyerInc"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if l.Height() != 1 {
		t.Fatalf("ledger height = %d, want 1", l.Height())
	}
}

func TestRestartCatchesUp(t *testing.T) {
	c, _ := newCluster(t)
	if err := c.Crash("BuyerInc"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if _, err := c.CommittedBlocks("BuyerInc"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("down node query = %v, want ErrNodeDown", err)
	}
	if err := c.Restart("BuyerInc"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	n, err := c.CommittedBlocks("BuyerInc")
	if err != nil || n != 3 {
		t.Fatalf("restarted node committed = %d, %v; want 3", n, err)
	}
	if got := len(c.LiveNodes()); got != 3 {
		t.Fatalf("LiveNodes = %d, want 3", got)
	}
}

func TestElectionPrefersLongestLog(t *testing.T) {
	c, _ := newCluster(t)
	// Commit one block, then crash a follower so it lags.
	if err := c.Submit(mkTx("trade", "BankA", "k0")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Crash("BuyerInc"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := c.Submit(mkTx("trade", "BankA", "k1")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Crash the leader; restart the lagging node WITHOUT catch-up being
	// possible (no leader): it must not win against SellerCo.
	if err := c.Crash("BankA"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	idx := c.indexOf("BuyerInc")
	c.nodes[idx].mu.Lock()
	c.nodes[idx].down = false
	c.nodes[idx].mu.Unlock()
	leader, err := c.Elect()
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if leader != "SellerCo" {
		t.Fatalf("leader = %q, want SellerCo (longest committed log)", leader)
	}
}

func TestClusterVisibilityConfinedToMembers(t *testing.T) {
	log := audit.NewLog()
	c, _ := newCluster(t, WithClusterAudit(log))
	tx := mkTx("trade", "BankA", "k")
	if err := c.Submit(tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := tx.ID()
	// All cluster operators (= channel members) see the tx; nobody else
	// appears in the log at all.
	for _, op := range clusterOps {
		if !log.Saw(op, audit.ClassTxData, id) {
			t.Fatalf("member-operator %s must see tx data", op)
		}
	}
	for _, obs := range log.All() {
		found := false
		for _, op := range clusterOps {
			if obs.Observer == op {
				found = true
			}
		}
		if !found {
			t.Fatalf("unexpected observer %q", obs.Observer)
		}
	}
}

func TestClusterBatching(t *testing.T) {
	c, l := newCluster(t, WithClusterBatch(3))
	for i := 0; i < 2; i++ {
		if err := c.Submit(mkTx("trade", "BankA", fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if l.Height() != 0 {
		t.Fatal("batch must not cut early")
	}
	if err := c.Submit(mkTx("trade", "BankA", "k2")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
	b, err := l.Block(0)
	if err != nil || len(b.Txs) != 3 {
		t.Fatalf("Block(0) = %d txs, %v", len(b.Txs), err)
	}
}

func TestClusterRejectsInvalidTx(t *testing.T) {
	c, _ := newCluster(t)
	if err := c.Submit(ledger.Transaction{Creator: "x"}); err == nil {
		t.Fatal("invalid tx must be rejected")
	}
}
