package experiments

import (
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"strings"
	"time"

	"dltprivacy/internal/contract"
	"dltprivacy/internal/mpc"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/workload"
	"dltprivacy/internal/zkp"
)

// ScalingReport runs abbreviated wall-clock versions of the E7 series so
// cmd/dltbench can print them without `go test -bench`. The authoritative
// measurements live in bench_test.go; this report reproduces the shapes in
// seconds rather than minutes.
func ScalingReport() (string, error) {
	var b strings.Builder
	b.WriteString("=== E7: §3.4 scalability series (abbreviated; see bench_test.go for full runs) ===\n\n")

	// Channel scaling with a synthetic trade workload.
	gen := workload.New(2026)
	b.WriteString("Trade throughput vs channel count (40 trades each):\n")
	for _, channels := range []int{1, 4, 8} {
		elapsed, err := runTradeWorkload(gen, channels, 40)
		if err != nil {
			return "", fmt.Errorf("trade workload (%d channels): %w", channels, err)
		}
		fmt.Fprintf(&b, "  channels=%-3d  %8.2f ms total  %6.2f ms/tx\n",
			channels, float64(elapsed.Microseconds())/1000, float64(elapsed.Microseconds())/1000/40)
	}

	// MPC party scaling.
	b.WriteString("\nMPC secure-sum latency vs party count:\n")
	for _, parties := range []int{3, 9, 17} {
		inputs := make(map[string]*big.Int, parties)
		for i := 0; i < parties; i++ {
			inputs["p"+strconv.Itoa(i)] = big.NewInt(int64(i))
		}
		start := time.Now()
		const reps = 20
		for i := 0; i < reps; i++ {
			if _, err := mpc.SecureSum(inputs); err != nil {
				return "", err
			}
		}
		fmt.Fprintf(&b, "  parties=%-3d   %8.1f µs/run\n", parties,
			float64(time.Since(start).Microseconds())/reps)
	}

	// ZKP sufficient funds vs raw comparison.
	b.WriteString("\nSufficient-funds check:\n")
	balance := big.NewInt(5_000_000)
	threshold := big.NewInt(1_000_000)
	comm, blinding, err := zkp.CommitValue(balance)
	if err != nil {
		return "", err
	}
	start := time.Now()
	proof, err := zkp.ProveSufficientFunds(balance, blinding, threshold, comm, []byte("scaling"))
	if err != nil {
		return "", err
	}
	proveTime := time.Since(start)
	start = time.Now()
	if err := zkp.VerifySufficientFunds(proof, comm, []byte("scaling")); err != nil {
		return "", err
	}
	verifyTime := time.Since(start)
	fmt.Fprintf(&b, "  zk prove   %8.2f ms\n  zk verify  %8.2f ms\n  raw compare ~0.0004 ms (the §2.2 scenario-specific cost, quantified)\n",
		float64(proveTime.Microseconds())/1000, float64(verifyTime.Microseconds())/1000)

	// Paillier vs plaintext.
	b.WriteString("\nHomomorphic addition (Paillier 1024-bit vs plaintext):\n")
	sk, err := paillier.GenerateKey(1024)
	if err != nil {
		return "", err
	}
	ct, err := sk.Encrypt(big.NewInt(1234))
	if err != nil {
		return "", err
	}
	start = time.Now()
	const heReps = 50
	for i := 0; i < heReps; i++ {
		if _, err := sk.Add(ct, ct); err != nil {
			return "", err
		}
	}
	addTime := float64(time.Since(start).Microseconds()) / heReps
	start = time.Now()
	if _, err := sk.Encrypt(big.NewInt(1)); err != nil {
		return "", err
	}
	encTime := float64(time.Since(start).Microseconds())
	fmt.Fprintf(&b, "  encrypt    %8.1f µs\n  add        %8.1f µs\n  plaintext add ~0.001 µs — the paper's infeasibility claim in numbers\n",
		encTime, addTime)
	return b.String(), nil
}

// runTradeWorkload commits n synthetic trades spread over the given number
// of channels on one Fabric-model network and returns the elapsed time.
func runTradeWorkload(gen *workload.Generator, channels, trades int) (time.Duration, error) {
	topo, err := gen.Topology(6, channels, 3)
	if err != nil {
		return 0, err
	}
	net, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return 0, err
	}
	for _, org := range topo.Orgs {
		if _, err := net.AddOrg(org); err != nil {
			return 0, err
		}
	}
	cc := contract.Contract{
		Name:    "trade",
		Version: "1",
		Funcs: map[string]contract.Func{
			"record": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("record: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return nil, nil
			},
		},
	}
	names := make([]string, channels)
	tradeSets := make([][]workload.Trade, channels)
	for c := 0; c < channels; c++ {
		names[c] = "ch" + strconv.Itoa(c)
		members := topo.Channels[c]
		policy := contract.Policy{Members: members, Threshold: 1}
		if err := net.CreateChannel(names[c], members, policy); err != nil {
			return 0, err
		}
		if err := net.InstallChaincode(names[c], cc, members[:1]); err != nil {
			return 0, err
		}
		set, err := gen.Trades(members, trades/channels+1, 64)
		if err != nil {
			return 0, err
		}
		tradeSets[c] = set
	}
	start := time.Now()
	for i := 0; i < trades; i++ {
		c := i % channels
		tr := tradeSets[c][i/channels]
		creator := topo.Channels[c][0]
		if _, err := net.Invoke(names[c], creator, "trade", "record",
			[][]byte{[]byte(tr.ID), tr.Payload}, topo.Channels[c][:1]); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
