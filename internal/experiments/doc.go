// Package experiments assembles the paper-reproduction reports: Table 1
// regenerated from live capability probes (E1), the Figure 1 decision-tree
// enumeration (E2), the letter-of-credit walkthrough with its leakage
// matrix (E3), and the per-platform §5 claims as observed leakage matrices
// (E4–E6). Scaling series (E7) live in the repository-root benchmarks.
//
// Each report function runs its experiment live — probing the platform
// models, walking the guide, executing the use case — and returns prose
// with an explicit match/diff verdict against the paper, so a drift in any
// underlying model surfaces as a failing report rather than a silently
// stale table. The cmd/dltbench binary prints these; the test suites under
// internal/... assert them.
package experiments
