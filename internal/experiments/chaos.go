package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
)

// ChaosConfig shapes one chaos/soak run over a replicated sharded gateway.
type ChaosConfig struct {
	// Shards is the number of ordering shards; Replicas the operators per
	// shard (>= 3).
	Shards   int
	Replicas int
	// Channels spread the storm; Submitters goroutines each drive
	// Submissions requests round-robin over them.
	Channels    int
	Submitters  int
	Submissions int
	// KillLeaderEvery crashes (and restarts) the leader of some channel's
	// cluster every N global submissions; 0 disables leader chaos.
	KillLeaderEvery int
	// KillShard kills every operator of the first channel's shard at the
	// halfway mark and revives the shard at the three-quarter mark, to
	// verify failures stay confined to that shard's channels.
	KillShard bool
	// RebalanceEvery runs a skew-driven rebalancing pass every N global
	// submissions; 0 disables. Do not combine with KillShard — a dead
	// shard's low load reads as "cold" and attracts migrations.
	RebalanceEvery int
	// RevokeMidStorm revokes the last member's certificate at the halfway
	// mark; its remaining submissions must all be rejected.
	RevokeMidStorm bool
}

// ChaosReport is what a chaos run observed.
type ChaosReport struct {
	// Submitted counts every submission attempted; Succeeded those the
	// gateway accepted.
	Submitted int
	Succeeded int
	// Failed buckets rejected submissions by error class.
	Failed map[string]int
	// RevokedRejected counts the revoked member's post-revocation
	// submissions (all rejected; also present in Failed).
	RevokedRejected int
	// Failovers and Migrations aggregate the ordering tier's recovery and
	// rebalancing activity during the storm.
	Failovers  uint64
	Migrations uint64
	// Delivered maps channel -> transactions its subscriber saw.
	Delivered map[string]int
	// Violations lists per-channel ordering violations: out-of-order block
	// numbers, broken hash chains, duplicate transactions. A healthy run
	// has none, no matter what the chaos did.
	Violations []string
}

// chaosVerifier checks one channel's delivery stream. Deliveries for a
// channel are serialized by its cluster (and, across migration or
// failover, by the migration gate and election lock), so the unguarded
// fields are themselves part of what -race verifies.
type chaosVerifier struct {
	channel  string
	next     uint64
	lastHash [32]byte
	txs      int
	seen     map[string]bool

	mu         sync.Mutex
	violations []string
}

func (v *chaosVerifier) deliver(b ledger.Block) error {
	bad := func(format string, args ...any) {
		v.mu.Lock()
		v.violations = append(v.violations, v.channel+": "+fmt.Sprintf(format, args...))
		v.mu.Unlock()
	}
	if b.Number != v.next {
		bad("block %d out of order, want %d", b.Number, v.next)
	}
	if v.next > 0 && b.Number == v.next && b.PrevHash != v.lastHash {
		bad("block %d breaks the hash chain", b.Number)
	}
	for _, tx := range b.Txs {
		id := tx.ID()
		if v.seen[id] {
			bad("tx %s delivered twice", id)
		}
		v.seen[id] = true
	}
	v.next = b.Number + 1
	v.lastHash = b.Hash()
	v.txs += len(b.Txs)
	return nil
}

// RunChaos stands up a full gateway — session, authn, rate limit,
// envelope encryption, audit, retry, breaker — over a replicated sharded
// ordering tier and drives concurrent client traffic through it while
// injecting the configured faults: leader kills, a whole-shard kill and
// revival, skew-driven rebalancing, and mid-storm certificate revocation.
// It reports what clients and subscribers observed; the chaos suite
// asserts the invariants (no ordering violations, failures confined to
// the injected faults) on the report.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Shards < 1 || cfg.Replicas < 3 || cfg.Channels < 1 || cfg.Submitters < 1 || cfg.Submissions < 1 {
		return nil, fmt.Errorf("experiments: chaos config needs shards/channels/submitters/submissions >= 1 and replicas >= 3, got %+v", cfg)
	}

	// Consortium: three members enrolled with the CA.
	ca, err := pki.NewCA("chaos-ca")
	if err != nil {
		return nil, err
	}
	members := []string{"org-a", "org-b", "org-c"}
	keys := make(map[string]*dcrypto.PrivateKey, len(members))
	certs := make(map[string]pki.Certificate, len(members))
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return nil, err
		}
		cert, err := ca.Enroll(m, key.Public())
		if err != nil {
			return nil, err
		}
		keys[m], certs[m], memberKeys[m] = key, cert, key.Public()
	}

	// Replicated sharded ordering tier.
	log := audit.NewLog()
	shards := make([]ordering.Backend, cfg.Shards)
	replicated := make([]*ordering.ReplicatedShard, cfg.Shards)
	for i := range shards {
		ops := make([]string, cfg.Replicas)
		for r := range ops {
			ops[r] = fmt.Sprintf("chaos-op-%d-%d", i, r)
		}
		rs, err := ordering.NewReplicatedShard(ops, ordering.VisibilityEnvelope, ordering.WithShardAudit(log))
		if err != nil {
			return nil, err
		}
		shards[i] = rs
		replicated[i] = rs
	}
	sb, err := ordering.NewSharded(shards)
	if err != nil {
		return nil, err
	}

	channels := make([]string, cfg.Channels)
	verifiers := make([]*chaosVerifier, cfg.Channels)
	dir := middleware.StaticDirectory{}
	for i := range channels {
		channels[i] = fmt.Sprintf("chaos-%02d", i)
		verifiers[i] = &chaosVerifier{channel: channels[i], seen: make(map[string]bool)}
		sb.Subscribe(channels[i], verifiers[i].deliver)
		dir[channels[i]] = memberKeys
	}

	gwCfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{
				"ttl": "10m", "idle": "10m", "reqauth": "mac", "revokecheck": "resolve",
			}},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageRateLimit, Params: map[string]string{"rate": "1000000", "burst": "1000000"}},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "10m"}},
			{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
			{Name: middleware.StageRetry, Params: map[string]string{"attempts": "3", "backoff": "1ms"}},
			{Name: middleware.StageBreaker, Params: map[string]string{"threshold": "5", "cooldown": "20ms"}},
		},
		Shards: cfg.Shards,
	}
	env := middleware.Env{CAKey: ca.PublicKey(), Directory: dir, Log: log, Revoker: ca}
	gw, err := middleware.NewGateway("chaos-gw", gwCfg, env, sb)
	if err != nil {
		return nil, err
	}

	grants := make(map[string]middleware.SessionGrant, len(members))
	for _, m := range members {
		hello, err := middleware.NewSessionHello(m, certs[m], keys[m])
		if err != nil {
			return nil, err
		}
		grant, err := gw.Sessions().Open(hello)
		if err != nil {
			return nil, err
		}
		grants[m] = grant
	}

	total := cfg.Submitters * cfg.Submissions
	revoked := members[len(members)-1]
	killAt, reviveAt := total/2, total*3/4

	var (
		counter    atomic.Int64 // global submission sequence driving fault triggers
		succeeded  atomic.Int64
		revokedRej atomic.Int64

		failMu sync.Mutex
		failed = map[string]int{}

		faultMu     sync.Mutex // serializes fault injections
		revokedDone bool
		shardKilled bool
		shardAlive  = true
	)
	classify := func(err error) string {
		switch {
		case errors.Is(err, ordering.ErrNoQuorum):
			return "no-quorum"
		case errors.Is(err, middleware.ErrCircuitOpen):
			return "circuit-open"
		case errors.Is(err, middleware.ErrSessionRevoked):
			return "session-revoked"
		default:
			return "other"
		}
	}
	// Fault triggers run inline on the submitter that crosses the mark, so
	// the storm needs no side-channel timing; TryLock keeps slow injections
	// from serializing the whole storm behind one submitter.
	inject := func(n int64) {
		if !faultMu.TryLock() {
			return
		}
		defer faultMu.Unlock()
		if cfg.RevokeMidStorm && !revokedDone && n >= int64(total/2) {
			ca.Revoke(certs[revoked].Serial)
			revokedDone = true
		}
		if cfg.KillShard {
			if shardAlive && !shardKilled && n >= int64(killAt) {
				replicated[sb.ShardFor(channels[0])].Kill()
				shardKilled, shardAlive = true, false
			}
			if !shardAlive && n >= int64(reviveAt) {
				replicated[sb.ShardFor(channels[0])].Revive()
				shardAlive = true
			}
		}
		if cfg.KillLeaderEvery > 0 && n%int64(cfg.KillLeaderEvery) == 0 {
			ch := channels[int(n)%len(channels)]
			rs := replicated[sb.ShardFor(ch)]
			if dead, err := rs.CrashLeader(ch); err == nil {
				// Restart the dead node: it rejoins as a follower, so quorum
				// survives arbitrarily many kill rounds while leadership keeps
				// failing over.
				if c, cerr := rs.Cluster(ch); cerr == nil {
					_ = c.Restart(dead)
				}
			}
		}
		if cfg.RebalanceEvery > 0 && n%int64(cfg.RebalanceEvery) == 0 {
			_, _ = sb.Rebalance(2.0)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := members[w%len(members)]
			for i := 0; i < cfg.Submissions; i++ {
				n := counter.Add(1)
				inject(n)
				req := &middleware.Request{
					Channel:      channels[(w+i)%len(channels)],
					Principal:    m,
					Payload:      []byte(fmt.Sprintf("chaos w%d i%d", w, i)),
					SessionToken: grants[m].Token,
				}
				middleware.MACRequest(req, grants[m].MacKey)
				err := gw.Submit(context.Background(), req)
				if err == nil {
					succeeded.Add(1)
					continue
				}
				failMu.Lock()
				failed[classify(err)+" @ "+req.Channel]++
				failMu.Unlock()
				if errors.Is(err, middleware.ErrSessionRevoked) && m == revoked {
					revokedRej.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	// Settle: revive anything still down, re-elect leaderless clusters, and
	// drain queues a mid-flush kill left behind.
	faultMu.Lock()
	if cfg.KillShard && !shardAlive {
		replicated[sb.ShardFor(channels[0])].Revive()
		shardAlive = true
	}
	faultMu.Unlock()
	for _, rs := range replicated {
		rs.ProbeHealth()
	}
	for _, ch := range channels {
		rs := replicated[sb.ShardFor(ch)]
		c, err := rs.Cluster(ch)
		if err != nil {
			continue
		}
		_ = c.Flush()
	}
	// Post-storm probe: every channel must accept traffic again (the
	// breaker may still be cooling down from a shard kill, so allow it the
	// configured cooldown).
	deadline := time.Now().Add(2 * time.Second)
	for _, ch := range channels {
		for {
			req := &middleware.Request{
				Channel:      ch,
				Principal:    members[0],
				Payload:      []byte("chaos recovery probe " + ch),
				SessionToken: grants[members[0]].Token,
			}
			middleware.MACRequest(req, grants[members[0]].MacKey)
			err := gw.Submit(context.Background(), req)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("experiments: channel %s did not recover after the storm: %w", ch, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	report := &ChaosReport{
		Submitted:       total,
		Succeeded:       int(succeeded.Load()),
		Failed:          failed,
		RevokedRejected: int(revokedRej.Load()),
		Migrations:      sb.Migrations(),
		Delivered:       make(map[string]int, len(channels)),
	}
	for _, rs := range replicated {
		report.Failovers += rs.Failovers()
	}
	for _, v := range verifiers {
		report.Delivered[v.channel] = v.txs
		v.mu.Lock()
		report.Violations = append(report.Violations, v.violations...)
		v.mu.Unlock()
	}
	sort.Strings(report.Violations)
	return report, nil
}

// FailedOnChannels returns the distinct channels named in the report's
// failure buckets — the blast radius of whatever chaos ran.
func (r *ChaosReport) FailedOnChannels() []string {
	seen := map[string]bool{}
	for key := range r.Failed {
		if i := strings.LastIndex(key, " @ "); i >= 0 {
			seen[key[i+3:]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ch := range seen {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}
