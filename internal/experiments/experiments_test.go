package experiments

import (
	"strings"
	"testing"
)

func TestTable1Report(t *testing.T) {
	out, err := Table1Report()
	if err != nil {
		t.Fatalf("Table1Report: %v", err)
	}
	if !strings.Contains(out, "matches the paper's Table 1") {
		t.Fatalf("Table 1 reproduction does not match paper:\n%s", out)
	}
}

func TestFigure1Report(t *testing.T) {
	out := Figure1Report()
	for _, needle := range []string{
		"1024", "single ledger", "off-chain data with public hash",
		"merkle tree tear-offs", "trusted execution environment",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("Figure 1 report missing %q:\n%s", needle, out)
		}
	}
}

func TestLetterOfCreditReport(t *testing.T) {
	out, err := LetterOfCreditReport()
	if err != nil {
		t.Fatalf("LetterOfCreditReport: %v", err)
	}
	for _, needle := range []string{
		"paid", "Leakage-policy violations: 0", "GDPR deletion honoured",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("LoC report missing %q:\n%s", needle, out)
		}
	}
	if strings.Contains(out, "RivalCorp") {
		t.Fatal("RivalCorp must not appear in any observation matrix")
	}
}

func TestFabricReport(t *testing.T) {
	out, err := FabricReport()
	if err != nil {
		t.Fatalf("FabricReport: %v", err)
	}
	if strings.Contains(out, "OrgC") {
		t.Fatalf("non-member OrgC observed something:\n%s", out)
	}
}

func TestCordaReport(t *testing.T) {
	out, err := CordaReport()
	if err != nil {
		t.Fatalf("CordaReport: %v", err)
	}
	if !strings.Contains(out, "notary") {
		t.Fatalf("Corda report missing notary view:\n%s", out)
	}
}

func TestScalingReport(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling report runs wall-clock measurements")
	}
	out, err := ScalingReport()
	if err != nil {
		t.Fatalf("ScalingReport: %v", err)
	}
	for _, needle := range []string{"channels=1", "parties=17", "zk prove", "Paillier"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("scaling report missing %q:\n%s", needle, out)
		}
	}
}

func TestQuorumReport(t *testing.T) {
	out, err := QuorumReport()
	if err != nil {
		t.Fatalf("QuorumReport: %v", err)
	}
	if !strings.Contains(out, "Double spend detected by global observer: true") {
		t.Fatalf("Quorum double spend not reproduced:\n%s", out)
	}
}
