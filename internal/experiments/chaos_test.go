package experiments

import (
	"fmt"
	"strings"
	"testing"

	"dltprivacy/internal/ordering"
)

// sumDelivered totals the per-channel delivery counters.
func sumDelivered(r *ChaosReport) int {
	total := 0
	for _, n := range r.Delivered {
		total += n
	}
	return total
}

// TestChaosLeaderKillsAndRebalanceUnderLoad is the soak scenario: leaders
// die every few dozen submissions and skew-driven rebalancing migrates
// channels mid-storm, yet every submission succeeds and every channel's
// block stream stays gap-free and duplicate-free.
func TestChaosLeaderKillsAndRebalanceUnderLoad(t *testing.T) {
	report, err := RunChaos(ChaosConfig{
		Shards:          4,
		Replicas:        3,
		Channels:        8,
		Submitters:      8,
		Submissions:     30,
		KillLeaderEvery: 25,
		RebalanceEvery:  80,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if len(report.Violations) != 0 {
		t.Fatalf("ordering violations under leader chaos:\n%s", strings.Join(report.Violations, "\n"))
	}
	// Leader kills are invisible to clients: the shard fails over inside
	// the submission (or the retry stage rides the election window).
	if report.Succeeded != report.Submitted {
		t.Fatalf("%d of %d submissions failed under leader chaos: %v",
			report.Submitted-report.Succeeded, report.Submitted, report.Failed)
	}
	if report.Failovers == 0 {
		t.Fatal("no failovers ran; the chaos never hit a live leader")
	}
	// Every accepted submission (plus one recovery probe per channel) was
	// delivered exactly once.
	if want := report.Succeeded + 8; sumDelivered(report) != want {
		t.Fatalf("delivered %d txs, want %d", sumDelivered(report), want)
	}
}

// TestChaosShardKillConfinesFailures kills a whole shard mid-storm: the
// only submissions that may fail are those routed to the dead shard's
// channels, every other shard keeps serving, and after revival every
// channel accepts traffic again with its ordering intact.
func TestChaosShardKillConfinesFailures(t *testing.T) {
	const (
		shards   = 4
		channels = 8
	)
	report, err := RunChaos(ChaosConfig{
		Shards:      shards,
		Replicas:    3,
		Channels:    channels,
		Submitters:  6,
		Submissions: 40,
		KillShard:   true,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if len(report.Violations) != 0 {
		t.Fatalf("ordering violations across the shard kill:\n%s", strings.Join(report.Violations, "\n"))
	}
	// Routing is deterministic for a topology shape, so a throwaway
	// backend of the same shape maps channels to shards exactly as the
	// harness's did; the harness kills the first channel's shard.
	ref := make([]ordering.Backend, shards)
	for i := range ref {
		ref[i] = ordering.New(fmt.Sprintf("ref-%d", i), ordering.VisibilityEnvelope)
	}
	sb, err := ordering.NewSharded(ref)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	killed := sb.ShardFor("chaos-00")
	killedChannels := map[string]bool{}
	for i := 0; i < channels; i++ {
		ch := fmt.Sprintf("chaos-%02d", i)
		if sb.ShardFor(ch) == killed {
			killedChannels[ch] = true
		}
	}
	for _, ch := range report.FailedOnChannels() {
		if !killedChannels[ch] {
			t.Fatalf("channel %s failed but lives outside killed shard %d (failures: %v)",
				ch, killed, report.Failed)
		}
	}
	if report.Succeeded == report.Submitted {
		t.Fatal("no submission failed; the shard kill never bit")
	}
	// Everything accepted was delivered exactly once, nothing more.
	if want := report.Succeeded + channels; sumDelivered(report) != want {
		t.Fatalf("delivered %d txs, want %d", sumDelivered(report), want)
	}
}

// TestChaosRevokeMidStorm revokes a member's certificate mid-storm: every
// one of its later submissions is rejected, everyone else is untouched,
// and ordering never wavers.
func TestChaosRevokeMidStorm(t *testing.T) {
	report, err := RunChaos(ChaosConfig{
		Shards:         2,
		Replicas:       3,
		Channels:       4,
		Submitters:     6,
		Submissions:    30,
		RevokeMidStorm: true,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if len(report.Violations) != 0 {
		t.Fatalf("ordering violations under revocation chaos:\n%s", strings.Join(report.Violations, "\n"))
	}
	if report.RevokedRejected == 0 {
		t.Fatal("revoked member was never rejected")
	}
	// The revoked member's rejections are the only failures.
	if got := report.Submitted - report.Succeeded; got != report.RevokedRejected {
		t.Fatalf("%d failures total but %d revocation rejections: %v",
			got, report.RevokedRejected, report.Failed)
	}
	for key := range report.Failed {
		if !strings.HasPrefix(key, "session-revoked") {
			t.Fatalf("unexpected failure class %q: %v", key, report.Failed)
		}
	}
	if want := report.Succeeded + 4; sumDelivered(report) != want {
		t.Fatalf("delivered %d txs, want %d", sumDelivered(report), want)
	}
}
