package experiments

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/guide"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/loc"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/platform/quorum"
	"dltprivacy/internal/zkp"
)

// Table1Report regenerates Table 1 and reports the diff against the paper.
func Table1Report() (string, error) {
	matrix, err := guide.GenerateTable1()
	if err != nil {
		return "", fmt.Errorf("generate table 1: %w", err)
	}
	var b strings.Builder
	b.WriteString("=== E1: Table 1 — mechanism support across HLF / Corda / Quorum ===\n\n")
	b.WriteString(matrix.Render())
	diffs := matrix.Diff(guide.PaperTable1())
	if len(diffs) == 0 {
		b.WriteString("\nRegenerated matrix matches the paper's Table 1 in all ")
		fmt.Fprintf(&b, "%d cells.\n", len(guide.Rows())*len(guide.Platforms()))
	} else {
		b.WriteString("\nMISMATCHES vs paper:\n")
		for _, d := range diffs {
			b.WriteString("  " + d + "\n")
		}
	}
	return b.String(), nil
}

// Figure1Report enumerates the decision tree and tabulates leaf frequencies,
// then walks the labelled outcomes.
func Figure1Report() string {
	var b strings.Builder
	b.WriteString("=== E2: Figure 1 — decision tree for transaction confidentiality ===\n\n")

	leaves := make(map[guide.Mechanism]int)
	for _, r := range guide.EnumerateRequirements() {
		leaves[guide.Decide(r).Primary]++
	}
	type lc struct {
		m guide.Mechanism
		n int
	}
	var rows []lc
	for m, n := range leaves {
		rows = append(rows, lc{m, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	b.WriteString(fmt.Sprintf("Exhaustive enumeration of %d requirement combinations:\n", 1024))
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-44s %4d combinations\n", r.m, r.n)
	}

	b.WriteString("\nLabelled paths (paper outcomes):\n")
	examples := []struct {
		label string
		req   guide.Requirements
	}{
		{"no confidential data", guide.Requirements{}},
		{"GDPR deletion", guide.Requirements{DataConfidential: true, DeletionRequired: true}},
		{"no encrypted sharing", guide.Requirements{DataConfidential: true}},
		{"parts hidden from participants", guide.Requirements{DataConfidential: true, PartsPrivateToSubset: true}},
		{"blind validators + hidden logic", guide.Requirements{DataConfidential: true, EncryptedSharingAllowed: true, HideBusinessLogic: true}},
		{"blind validators", guide.Requirements{DataConfidential: true, EncryptedSharingAllowed: true}},
		{"owner-only data, boolean proof", guide.Requirements{DataConfidential: true, EncryptedSharingAllowed: true, ValidatorsMayRead: true, PrivateToOwnerOnly: true, BooleanProofsEnough: true}},
		{"owner-only data, secret ballot", guide.Requirements{DataConfidential: true, EncryptedSharingAllowed: true, ValidatorsMayRead: true, PrivateToOwnerOnly: true, CollectiveComputation: true}},
	}
	for _, e := range examples {
		d := guide.Decide(e.req)
		fmt.Fprintf(&b, "  %-36s -> %s\n", e.label, d.Primary)
		for _, step := range d.Path {
			fmt.Fprintf(&b, "      %s\n", step)
		}
	}
	return b.String()
}

// renderMatrix prints one audit-class matrix.
func renderMatrix(b *strings.Builder, log *audit.Log, class audit.DataClass, title string) {
	fmt.Fprintf(b, "%s:\n", title)
	m := log.Matrix(class)
	if len(m) == 0 {
		b.WriteString("  (nobody)\n")
		return
	}
	observers := make([]string, 0, len(m))
	for o := range m {
		observers = append(observers, o)
	}
	sort.Strings(observers)
	for _, o := range observers {
		items := m[o]
		if len(items) > 3 {
			items = append(items[:3], fmt.Sprintf("… %d more", len(m[o])-3))
		}
		fmt.Fprintf(b, "  %-18s %s\n", o, strings.Join(items, ", "))
	}
}

// LetterOfCreditReport runs the §4 scenario end to end (E3).
func LetterOfCreditReport() (string, error) {
	var b strings.Builder
	b.WriteString("=== E3: §4 letter of credit — derived design and leakage ===\n\n")

	pii, trade, interactions := loc.DeriveDesign()
	fmt.Fprintf(&b, "Derived design:\n  PII          -> %s\n  trade data   -> %s\n  interactions -> %v\n\n",
		pii.Primary, trade.Primary, interactions)

	app, err := loc.NewApp(loc.Config{
		Bank: "BankA", Buyer: "BuyerInc", Seller: "SellerCo",
		ExtraOrgs: []string{"RivalCorp"},
	})
	if err != nil {
		return "", fmt.Errorf("loc app: %w", err)
	}
	balance := big.NewInt(1_000_000)
	comm, blinding, err := zkp.CommitValue(balance)
	if err != nil {
		return "", err
	}
	id, err := app.Apply("500 widgets", 250_000, []byte("passport M1234567"), balance, comm, blinding)
	if err != nil {
		return "", fmt.Errorf("apply: %w", err)
	}
	for _, step := range []func() error{
		func() error { return app.Issue(id) },
		func() error { return app.Ship(id, "BL-778") },
		func() error { return app.Present(id) },
		func() error { return app.Pay(id) },
	} {
		if err := step(); err != nil {
			return "", fmt.Errorf("lifecycle: %w", err)
		}
	}
	letter, err := app.Get("BankA", id)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Lifecycle complete: %s is %s (amount %d cents)\n\n", id, letter.Status, letter.AmountCents)

	log := app.Network().Log
	renderMatrix(&b, log, audit.ClassTxData, "Who saw transaction data")
	renderMatrix(&b, log, audit.ClassPII, "Who saw PII")
	violations := log.Violations(app.LeakagePolicy())
	fmt.Fprintf(&b, "\nLeakage-policy violations: %d\n", len(violations))
	if err := app.DeletePII(id); err != nil {
		return "", err
	}
	b.WriteString("GDPR deletion honoured: PII erased, anchor retained on ledger.\n")
	return b.String(), nil
}

// FabricReport demonstrates the §5 Fabric claims (E4).
func FabricReport() (string, error) {
	var b strings.Builder
	b.WriteString("=== E4: §5 Hyperledger Fabric claims ===\n\n")
	n, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return "", err
	}
	for _, org := range []string{"OrgA", "OrgB", "OrgC"} {
		if _, err := n.AddOrg(org); err != nil {
			return "", err
		}
	}
	policy := contract.Policy{Members: []string{"OrgA", "OrgB"}, Threshold: 1}
	if err := n.CreateChannel("trade", []string{"OrgA", "OrgB"}, policy); err != nil {
		return "", err
	}
	if err := n.CreateCollection("trade", "pricing", []string{"OrgA"}); err != nil {
		return "", err
	}
	if _, err := n.PutPrivate("trade", "pricing", "OrgA", "deal", []byte("price 42")); err != nil {
		return "", err
	}
	if _, _, err := n.AnonymousInvoke("trade", "OrgB",
		[]ledger.Write{{Key: "anon", Value: []byte("v")}}); err != nil {
		return "", err
	}
	renderMatrix(&b, n.Log, audit.ClassTxData, "Transaction data")
	renderMatrix(&b, n.Log, audit.ClassRelationship, "Relationships")
	b.WriteString("\nClaims verified in tests: channel confinement; orderer full visibility;\n" +
		"PDC hides payload but reveals member list; Idemix pseudonymous creators.\n")
	return b.String(), nil
}

// CordaReport demonstrates the §5 Corda claims (E5).
func CordaReport() (string, error) {
	var b strings.Builder
	b.WriteString("=== E5: §5 Corda claims ===\n\n")
	n, err := corda.NewNetwork(corda.Config{})
	if err != nil {
		return "", err
	}
	for _, p := range []string{"PartyA", "PartyB", "PartyC"} {
		if _, err := n.AddParty(p); err != nil {
			return "", err
		}
	}
	if _, err := n.Issue("PartyA", "PartyB", []byte("deal"), []string{"PartyA", "PartyB"}); err != nil {
		return "", err
	}
	pb, err := n.Party("PartyB")
	if err != nil {
		return "", err
	}
	if _, err := n.Transfer("PartyB", pb.Vault()[0], "PartyC", nil, nil); err != nil {
		return "", err
	}
	renderMatrix(&b, n.Log, audit.ClassTxData, "Transaction data")
	renderMatrix(&b, n.Log, audit.ClassTxMetadata, "Notary view (metadata only)")
	b.WriteString("\nClaims verified in tests: P2P distribution; one-time owner keys;\n" +
		"tear-off oracle attestation; notary double-spend prevention; off-platform logic.\n")
	return b.String(), nil
}

// QuorumReport demonstrates the §5 Quorum claims (E6).
func QuorumReport() (string, error) {
	var b strings.Builder
	b.WriteString("=== E6: §5 Quorum claims ===\n\n")
	n := quorum.NewNetwork()
	for _, name := range []string{"A", "B", "C"} {
		if _, err := n.AddNode(name); err != nil {
			return "", err
		}
	}
	if _, err := n.SendPrivate("A", []string{"B"}, "deal", []byte("price 42")); err != nil {
		return "", err
	}
	// Reproduce the double spend.
	if _, err := n.IssuePrivateAsset("A", "X", "A", []string{"B"}); err != nil {
		return "", err
	}
	if _, err := n.TransferPrivateAsset("A", "X", "B", []string{"B"}); err != nil {
		return "", err
	}
	// Malicious sender resets its view and spends again to C.
	a, err := n.Node("A")
	if err != nil {
		return "", err
	}
	if _, err := n.SendPrivate("A", nil, "asset/X", []byte("A")); err != nil {
		return "", err
	}
	_ = a
	if _, err := n.TransferPrivateAsset("A", "X", "C", []string{"C"}); err != nil {
		return "", err
	}
	renderMatrix(&b, n.Log, audit.ClassTxData, "Private payloads")
	renderMatrix(&b, n.Log, audit.ClassRelationship, "Participant lists (public chain)")
	fmt.Fprintf(&b, "\nAsset X owner views: %v\n", n.AssetViews("X"))
	fmt.Fprintf(&b, "Double spend detected by global observer: %v\n", n.DoubleSpendDetected("X"))
	b.WriteString("\nClaims verified in tests: payload confinement; participant-list leak\n" +
		"to the whole network; private-asset double spend.\n")
	return b.String(), nil
}
