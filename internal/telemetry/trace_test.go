package telemetry

import (
	"errors"
	"testing"
	"time"
)

func TestTracerSamplesOneInN(t *testing.T) {
	tr := NewTracer(4, 8)
	var sampled int
	for i := 0; i < 16; i++ {
		if x := tr.For(0); x != nil {
			tr.Finish(x, nil)
			sampled++
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4, want 4", sampled)
	}
	if tr.Sampled() != 4 {
		t.Fatalf("Sampled() = %d, want 4", tr.Sampled())
	}
	if tr.SampleEvery() != 4 {
		t.Fatalf("SampleEvery() = %d, want 4", tr.SampleEvery())
	}
}

func TestTracerCarriedIDAlwaysRecorded(t *testing.T) {
	// every=0: local sampling off, carried IDs still traced.
	tr := NewTracer(0, 8)
	if x := tr.For(0); x != nil {
		t.Fatal("locally-originated request sampled with every=0")
	}
	x := tr.For(0xabc)
	if x == nil {
		t.Fatal("carried trace ID not recorded")
	}
	if x.ID != 0xabc {
		t.Fatalf("trace ID = %#x, want 0xabc", x.ID)
	}
	tr.Finish(x, nil)
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].ID != "0000000000000abc" {
		t.Fatalf("snapshot = %+v, want one trace with id 0000000000000abc", recs)
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 1; i <= 5; i++ {
		x := tr.For(uint64(i))
		tr.Finish(x, nil)
	}
	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(recs))
	}
	// Oldest first: traces 3, 4, 5 survive.
	want := []string{"0000000000000003", "0000000000000004", "0000000000000005"}
	for i, w := range want {
		if recs[i].ID != w {
			t.Errorf("recs[%d].ID = %s, want %s", i, recs[i].ID, w)
		}
	}
	if tr.Sampled() != 5 {
		t.Fatalf("Sampled() = %d, want 5 (lifetime, not ring size)", tr.Sampled())
	}
}

func TestTraceSpansAndErrors(t *testing.T) {
	tr := NewTracer(1, 4)
	x := tr.For(0)
	if x == nil {
		t.Fatal("1-in-1 tracer skipped first request")
	}
	start := x.Start
	x.AddSpan("auth", start, 100*time.Nanosecond, 80*time.Nanosecond, nil)
	x.AddSpan("order", start.Add(time.Microsecond), 50, 50, errors.New("shard down"))
	tr.Finish(x, errors.New("submit failed"))

	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d traces, want 1", len(recs))
	}
	r := recs[0]
	if r.Err != "submit failed" {
		t.Errorf("trace err = %q", r.Err)
	}
	if len(r.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(r.Spans))
	}
	if s := r.Spans[0]; s.Stage != "auth" || s.Nanos != 100 || s.ExclusiveNanos != 80 || s.Err != "" {
		t.Errorf("span[0] = %+v", s)
	}
	if s := r.Spans[1]; s.Stage != "order" || s.StartNanos != int64(time.Microsecond) || s.Err != "shard down" {
		t.Errorf("span[1] = %+v", s)
	}
	if r.DurationNanos <= 0 {
		t.Errorf("trace duration = %d, want > 0", r.DurationNanos)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(1, 1)
	x := tr.For(0)
	for i := 0; i < maxSpansPerTrace+7; i++ {
		x.AddSpan("retry", x.Start, 1, 1, nil)
	}
	tr.Finish(x, nil)
	r := tr.Snapshot()[0]
	if len(r.Spans) != maxSpansPerTrace {
		t.Fatalf("got %d spans, want cap %d", len(r.Spans), maxSpansPerTrace)
	}
	if r.DroppedSpans != 7 {
		t.Fatalf("dropped = %d, want 7", r.DroppedSpans)
	}
}

// TestNilTracerSafe pins the contract the fast path relies on: a nil
// *Tracer (tracing off) is safe everywhere and records nothing.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if x := tr.For(123); x != nil {
		t.Fatal("nil tracer returned a trace")
	}
	tr.Finish(nil, errors.New("x"))
	if tr.Sampled() != 0 || tr.SampleEvery() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer reported state")
	}
	var x *Trace
	x.AddSpan("s", time.Time{}, 0, 0, nil) // must not panic
}

func TestFormatTraceID(t *testing.T) {
	cases := map[uint64]string{
		0:                  "0000000000000000",
		0xdeadbeef:         "00000000deadbeef",
		^uint64(0):         "ffffffffffffffff",
		0x0123456789abcdef: "0123456789abcdef",
	}
	for in, want := range cases {
		if got := formatTraceID(in); got != want {
			t.Errorf("formatTraceID(%#x) = %s, want %s", in, got, want)
		}
	}
}
