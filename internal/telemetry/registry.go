package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "stage", Value: "session"}.
// Labels are fixed at metric construction — the registry holds one metric
// per (name, label set), so the hot path never renders or hashes labels.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric kinds, the TYPE vocabulary of the Prometheus exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// metricDesc is the identity every metric carries: family name, help text,
// kind, and the pre-rendered label body (`k1="v1",k2="v2"`, no braces).
type metricDesc struct {
	name   string
	help   string
	kind   string
	labels string
}

func (d *metricDesc) desc() *metricDesc { return d }

// Metric is anything the registry can hold. The interface is sealed: the
// concrete types are Counter, Histogram, and the CounterFunc/GaugeFunc
// adapters the convenience methods register.
type Metric interface {
	desc() *metricDesc
}

// newDesc validates and renders a metric identity. Label order is
// preserved as given; producers registering a family must use a consistent
// key order so identical label sets compare equal.
func newDesc(name, help, kind string, labels []Label) (metricDesc, error) {
	if name == "" {
		return metricDesc{}, fmt.Errorf("telemetry: metric needs a name")
	}
	var b strings.Builder
	for i, l := range labels {
		if l.Key == "" {
			return metricDesc{}, fmt.Errorf("telemetry: metric %s: empty label key", name)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return metricDesc{name: name, help: help, kind: kind, labels: b.String()}, nil
}

// escapeLabelValue applies the exposition-format escapes for label values:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp applies the exposition-format escapes for HELP text:
// backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing counter the producer owns. Add and
// Inc are single atomic operations.
type Counter struct {
	metricDesc
	v atomic.Uint64
}

// NewCounter creates an unregistered counter; register it with
// Registry.Register.
func NewCounter(name, help string, labels ...Label) *Counter {
	d, err := newDesc(name, help, kindCounter, labels)
	if err != nil {
		panic(err) // construction-time programmer error, like a bad regexp
	}
	return &Counter{metricDesc: d}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// counterFunc exports an existing producer-owned counter (typically an
// atomic the subsystem already maintains) without rewiring it.
type counterFunc struct {
	metricDesc
	fn func() uint64
}

// gaugeFunc exports a point-in-time value computed at scrape time.
type gaugeFunc struct {
	metricDesc
	fn func() float64
}

// Registry holds the process's metrics and renders them in the Prometheus
// text exposition format. Registration is rare and locked; the metrics
// themselves are lock-free, so holding a registry costs the hot path
// nothing.
type Registry struct {
	mu      sync.RWMutex
	metrics []Metric
	// byID guards uniqueness of (name, label set); byFamily pins each
	// family name to one kind and help text.
	byID     map[string]bool
	byFamily map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]bool), byFamily: make(map[string]string)}
}

// Register adds metrics to the registry. A duplicate (name, label set) or
// a family re-registered under a different kind is an error; nothing from
// a failing call is registered partially.
func (r *Registry) Register(ms ...Metric) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Validate the whole batch first — including against itself — so a
	// failing call registers nothing.
	batchIDs := make(map[string]bool, len(ms))
	batchKinds := make(map[string]string, len(ms))
	for _, m := range ms {
		d := m.desc()
		id := d.name + "{" + d.labels + "}"
		if r.byID[id] || batchIDs[id] {
			return fmt.Errorf("telemetry: metric %s already registered", id)
		}
		batchIDs[id] = true
		if kind, ok := r.byFamily[d.name]; ok && kind != d.kind {
			return fmt.Errorf("telemetry: family %s is a %s, cannot register a %s", d.name, kind, d.kind)
		}
		if kind, ok := batchKinds[d.name]; ok && kind != d.kind {
			return fmt.Errorf("telemetry: family %s is a %s, cannot register a %s", d.name, kind, d.kind)
		}
		batchKinds[d.name] = d.kind
	}
	for _, m := range ms {
		d := m.desc()
		r.byID[d.name+"{"+d.labels+"}"] = true
		r.byFamily[d.name] = d.kind
		r.metrics = append(r.metrics, m)
	}
	return nil
}

// NewCounter creates and registers a counter in one step.
func (r *Registry) NewCounter(name, help string, labels ...Label) (*Counter, error) {
	c := NewCounter(name, help, labels...)
	if err := r.Register(c); err != nil {
		return nil, err
	}
	return c, nil
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the adapter for subsystems that already maintain atomic counters.
// fn must be safe for concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) error {
	d, err := newDesc(name, help, kindCounter, labels)
	if err != nil {
		return err
	}
	return r.Register(&counterFunc{metricDesc: d, fn: fn})
}

// GaugeFunc registers a gauge computed from fn at scrape time. fn must be
// safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) error {
	d, err := newDesc(name, help, kindGauge, labels)
	if err != nil {
		return err
	}
	return r.Register(&gaugeFunc{metricDesc: d, fn: fn})
}

// NewHistogram creates and registers a histogram in one step. See the
// package-level NewHistogram for the bounds and unit contract.
func (r *Registry) NewHistogram(name, help string, bounds []uint64, unit float64, labels ...Label) (*Histogram, error) {
	h := NewHistogram(name, help, bounds, unit, labels...)
	if err := r.Register(h); err != nil {
		return nil, err
	}
	return h, nil
}

// snapshot returns the registered metrics sorted by (family, labels) so
// the exposition groups families and renders deterministically.
func (r *Registry) snapshot() []Metric {
	r.mu.RLock()
	out := make([]Metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].desc(), out[j].desc()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.labels < dj.labels
	})
	return out
}
