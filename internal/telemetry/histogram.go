package telemetry

import "sync/atomic"

// NanosPerSecond is the unit divisor converting nanosecond-valued
// observations to the seconds the Prometheus exposition expects. (A
// divisor rather than a 1e-9 multiplier: division by the exactly
// representable 1e9 rounds correctly, so bucket bounds export as clean
// shortest-form floats like 2.5e-07.)
const NanosPerSecond = 1e9

// LatencyBounds is the default latency bucket layout: exponential
// nanosecond upper bounds from 250ns doubling to ~1s (23 buckets plus the
// implicit +Inf). The span covers everything the gateway stages produce —
// a ~100ns ratelimit check, a ~5µs MAC-path submission, a ~400µs hybrid
// wrap, multi-millisecond batch releases — with ~2x resolution everywhere,
// which is enough to read p50/p99 off the cumulative buckets.
var LatencyBounds = latencyBounds()

func latencyBounds() []uint64 {
	bounds := make([]uint64, 23)
	for i := range bounds {
		bounds[i] = 250 << uint(i)
	}
	return bounds
}

// Histogram is a fixed-bucket histogram with lock-free atomic buckets.
// Bounds are ascending upper bounds in the producer's raw unit (e.g.
// nanoseconds); an implicit +Inf bucket catches everything beyond the last
// bound. Observe is allocation-free: one binary search over the bounds and
// two atomic adds, cheap enough to stay on the gateway fast path.
type Histogram struct {
	metricDesc
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum     atomic.Uint64   // raw units
	// unit is the divisor converting raw observed values (and bounds) to
	// the export unit: NanosPerSecond for latency histograms, 1 (or 0,
	// treated as 1) for histograms already in their export unit.
	unit float64
}

// NewHistogram creates an unregistered histogram over the given ascending
// bounds; register it with Registry.Register. unit is the number of raw
// units per export unit (pass NanosPerSecond for nanosecond latencies, 0
// or 1 for none).
func NewHistogram(name, help string, bounds []uint64, unit float64, labels ...Label) *Histogram {
	d, err := newDesc(name, help, kindHistogram, labels)
	if err != nil {
		panic(err)
	}
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	if unit == 0 {
		unit = 1
	}
	return &Histogram{
		metricDesc: d,
		bounds:     append([]uint64(nil), bounds...),
		buckets:    make([]atomic.Uint64, len(bounds)+1),
		unit:       unit,
	}
}

// Observe records one value in raw units. Allocation-free and safe for
// concurrent use.
func (h *Histogram) Observe(v uint64) {
	// Manual binary search: the first bound >= v (Prometheus buckets are
	// cumulative with le semantics). A closure-based sort.Search would
	// risk an allocation on the hot path.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets, for
// in-process quantile derivation (tests, status pages). Counts are
// per-bucket (not cumulative), in bound order with the +Inf bucket last.
type HistogramSnapshot struct {
	Bounds []uint64 // upper bounds, raw units; +Inf implicit
	Counts []uint64 // len(Bounds)+1
	Sum    uint64   // raw units
	Count  uint64
}

// Snapshot copies the histogram's current state. Buckets are read
// individually (not atomically as a set), which can skew concurrent
// snapshots by in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Quantile derives the q-quantile (0 < q <= 1, e.g. 0.5 or 0.99) from the
// snapshot by linear interpolation within the holding bucket, the same
// estimate Prometheus's histogram_quantile computes. Values beyond the
// last finite bound clamp to it. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		if i == len(s.Bounds) {
			// +Inf bucket: clamp to the last finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := uint64(0)
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		return lower + uint64(float64(upper-lower)*(rank-cum)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}
