// Package telemetry is the dependency-free observability plane for the
// middleware gateway: a metrics registry of atomic counters, gauges, and
// fixed-bucket latency histograms; a Prometheus text-format exporter
// (text/plain; version=0.0.4); and a bounded in-memory ring of sampled
// request traces. Everything is engineered for the gateway's hot path:
// counter adds and histogram observes are single atomic operations with no
// allocation and no locks, so instrumentation can stay enabled in
// production without moving the benchmark gate.
//
// # Metric naming
//
// Metrics follow the scheme confmw_<subsystem>_<name>{labels}:
//
//	confmw_stage_latency_seconds{stage="session"}     exclusive per-stage latency histogram
//	confmw_stage_calls_total{stage="encrypt"}         per-stage invocation counter
//	confmw_gateway_submitted_total                    requests accepted by the chain
//	confmw_sessions_live                              live session gauge
//	confmw_shard_routed_txs_total{shard="0"}          per-shard routing counter
//	confmw_revocation_sweeps_total                    revocation plane activity
//
// Counters end in _total, histograms in the unit (_seconds), gauges in
// neither, matching Prometheus conventions. Every producer registers into
// one Registry (Gateway.RegisterMetrics is the middleware front door), so a
// single /metrics scrape covers the whole process.
//
// # Histograms
//
// Histogram buckets are fixed at construction: an ordered slice of upper
// bounds in the producer's raw unit (nanoseconds for latency), each bucket
// one atomic.Uint64, plus an implicit +Inf bucket. Observe is a branch-free
// binary search and two atomic adds. The exporter converts bounds and sums
// to the export unit (seconds) via the histogram's unit factor, and emits
// cumulative le buckets, _sum, and _count, so p50/p99 are derivable by any
// Prometheus-compatible consumer; Snapshot.Quantile derives them in-process
// for tests and status pages.
//
// # Tracing
//
// A Tracer samples one in every N requests (N fixed at construction; the
// gateway surfaces it as the trace=off|N Config parameter). A sampled
// request carries a *Trace; instrumented stages append spans (stage name,
// offset, inclusive and exclusive duration, error) under the trace's own
// mutex. Finished traces land in a bounded ring that overwrites oldest
// first, dumpable as JSON via the /tracez handler. Unsampled requests cost
// one atomic increment; requests arriving with a caller-carried trace ID
// are always recorded, which is how cross-process propagation (the wire
// codec's trace field) composes with sampling.
//
// # HTTP
//
// NewMux assembles the telemetry listener: /metrics (Prometheus
// exposition), /statusz (a JSON snapshot the caller supplies, e.g.
// middleware.GatewayStats), /tracez (the trace ring), and /debug/pprof/*.
package telemetry
