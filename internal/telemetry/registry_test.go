package telemetry

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRegistryDuplicateRejected(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.NewCounter("confmw_test_total", "h", L("stage", "a")); err != nil {
		t.Fatal(err)
	}
	// Same family, different labels: fine.
	if _, err := reg.NewCounter("confmw_test_total", "h", L("stage", "b")); err != nil {
		t.Fatal(err)
	}
	// Exact duplicate: rejected.
	if _, err := reg.NewCounter("confmw_test_total", "h", L("stage", "a")); err == nil {
		t.Fatal("duplicate (name, labels) registration was accepted")
	}
	// Same family under a different kind: rejected.
	if err := reg.GaugeFunc("confmw_test_total", "h", func() float64 { return 0 }); err == nil {
		t.Fatal("kind-conflicting family registration was accepted")
	}
}

func TestRegistryRegisterAtomicOnFailure(t *testing.T) {
	reg := NewRegistry()
	a := NewCounter("confmw_a_total", "h")
	dup := NewCounter("confmw_a_total", "h")
	if err := reg.Register(a, dup); err == nil {
		t.Fatal("batch with duplicate was accepted")
	}
	// Nothing from the failing batch may have landed.
	if err := reg.Register(a); err != nil {
		t.Fatalf("metric from failed batch was partially registered: %v", err)
	}
}

func TestRegistryBadLabels(t *testing.T) {
	if err := NewRegistry().CounterFunc("confmw_x_total", "h", func() uint64 { return 0 }, L("", "v")); err == nil {
		t.Fatal("empty label key accepted")
	}
	if err := NewRegistry().CounterFunc("", "h", func() uint64 { return 0 }); err == nil {
		t.Fatal("empty metric name accepted")
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.NewCounter("confmw_esc_total", "line1\nline2", L("k", `a"b\c`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	c.Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`# HELP confmw_esc_total line1\nline2`,
		`confmw_esc_total{k="a\"b\\c\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrency hammers counters and histograms from many
// goroutines while the exposition is scraped concurrently; run under
// -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	ctr, err := reg.NewCounter("confmw_conc_total", "c")
	if err != nil {
		t.Fatal(err)
	}
	hist, err := reg.NewHistogram("confmw_conc_seconds", "h", LatencyBounds, NanosPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	var fnVal atomic.Uint64
	if err := reg.CounterFunc("confmw_conc_fn_total", "f", fnVal.Load); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctr.Inc()
				fnVal.Add(1)
				hist.Observe(uint64(seed*1000 + i))
			}
		}(w)
	}
	// Concurrent scrapers and registrations while the writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_, _ = reg.NewCounter("confmw_conc_extra_total", "x", L("i", string(rune('a'+i))))
		}
	}()
	wg.Wait()

	if got := ctr.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if s := hist.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}
