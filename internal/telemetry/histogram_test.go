package telemetry

import "testing"

// TestHistogramBucketBoundaries pins the le semantics: a value lands in
// the first bucket whose upper bound is >= the value, with exact-boundary
// values included (le, not lt) and everything past the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []uint64{10, 100, 1000}
	cases := []struct {
		name   string
		value  uint64
		bucket int
	}{
		{"zero", 0, 0},
		{"below first", 9, 0},
		{"exactly first", 10, 0},
		{"just above first", 11, 1},
		{"mid", 99, 1},
		{"exactly second", 100, 1},
		{"just above second", 101, 2},
		{"exactly last", 1000, 2},
		{"just above last", 1001, 3},
		{"huge", 1 << 62, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram("confmw_test_seconds", "h", bounds, 1)
			h.Observe(tc.value)
			s := h.Snapshot()
			for i, c := range s.Counts {
				want := uint64(0)
				if i == tc.bucket {
					want = 1
				}
				if c != want {
					t.Errorf("bucket[%d] = %d, want %d (value %d)", i, c, want, tc.value)
				}
			}
			if s.Sum != tc.value || s.Count != 1 {
				t.Errorf("sum/count = %d/%d, want %d/1", s.Sum, s.Count, tc.value)
			}
		})
	}
}

func TestLatencyBoundsShape(t *testing.T) {
	if len(LatencyBounds) != 23 {
		t.Fatalf("len(LatencyBounds) = %d, want 23", len(LatencyBounds))
	}
	if LatencyBounds[0] != 250 {
		t.Fatalf("first bound = %d, want 250", LatencyBounds[0])
	}
	for i := 1; i < len(LatencyBounds); i++ {
		if LatencyBounds[i] != LatencyBounds[i-1]*2 {
			t.Fatalf("bounds not doubling at %d: %d after %d", i, LatencyBounds[i], LatencyBounds[i-1])
		}
	}
	// Last bound covers ~1s so stage latencies never all pile into +Inf.
	if last := LatencyBounds[len(LatencyBounds)-1]; last < 1_000_000_000 {
		t.Fatalf("last bound %dns does not reach 1s", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("confmw_q_seconds", "h", []uint64{10, 20, 40}, 1)
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 != 10 {
		t.Errorf("p50 = %d, want 10", p50)
	}
	// p75 interpolates halfway through the (10,20] bucket.
	if p75 := s.Quantile(0.75); p75 != 15 {
		t.Errorf("p75 = %d, want 15", p75)
	}
	if p100 := s.Quantile(1); p100 != 20 {
		t.Errorf("p100 = %d, want 20", p100)
	}

	// +Inf clamps to the last finite bound.
	h2 := NewHistogram("confmw_q2_seconds", "h", []uint64{10}, 1)
	h2.Observe(999)
	if got := h2.Snapshot().Quantile(0.99); got != 10 {
		t.Errorf("overflowed quantile = %d, want clamp to 10", got)
	}

	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty bounds", func() { NewHistogram("confmw_bad_seconds", "h", nil, 1) })
	mustPanic("non-ascending", func() { NewHistogram("confmw_bad_seconds", "h", []uint64{10, 10}, 1) })
	mustPanic("empty name", func() { NewHistogram("", "h", []uint64{1}, 1) })
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("confmw_bench_seconds", "h", LatencyBounds, NanosPerSecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i&0xffff) * 100)
	}
}
