package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded step of a sampled request: the stage name, its
// offset from the trace start, its inclusive and exclusive durations, and
// the error it returned, if any. Spans appear in completion order (the
// innermost stage finishes first).
type Span struct {
	Stage          string `json:"stage"`
	StartNanos     int64  `json:"startNanos"`
	Nanos          int64  `json:"nanos"`
	ExclusiveNanos int64  `json:"exclusiveNanos"`
	Err            string `json:"err,omitempty"`
}

// maxSpansPerTrace bounds a single trace's memory: re-entrant stages
// (retry) can in principle record many spans, and a trace must never grow
// without bound. Overflowing spans are counted, not stored.
const maxSpansPerTrace = 64

// Trace is one sampled request's record. Producers append spans with
// AddSpan; the tracer seals it with Finish. Safe for concurrent use — a
// batch stage may release a buffered request from another goroutine after
// the submitting call already finished the trace.
type Trace struct {
	// ID is the request's trace identifier, carried on the wire so
	// cross-process hops can share it.
	ID uint64
	// Start is when the tracer began recording the request.
	Start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
	err     string
	end     int64 // duration at Finish, nanos; 0 while open
}

// AddSpan records one stage execution. start is the stage's entry time
// (offsets are computed against the trace start); incl and excl are the
// stage's inclusive and exclusive durations. Only sampled requests carry a
// *Trace, so this cost is never paid on the unsampled path.
func (tr *Trace) AddSpan(stage string, start time.Time, incl, excl time.Duration, err error) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if len(tr.spans) >= maxSpansPerTrace {
		tr.dropped++
		tr.mu.Unlock()
		return
	}
	s := Span{
		Stage:          stage,
		StartNanos:     int64(start.Sub(tr.Start)),
		Nanos:          int64(incl),
		ExclusiveNanos: int64(excl),
	}
	if err != nil {
		s.Err = err.Error()
	}
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
}

// TraceRecord is the JSON-safe copy of a finished trace /tracez serves.
type TraceRecord struct {
	ID            string    `json:"id"`
	Start         time.Time `json:"start"`
	DurationNanos int64     `json:"durationNanos"`
	Err           string    `json:"err,omitempty"`
	DroppedSpans  int       `json:"droppedSpans,omitempty"`
	Spans         []Span    `json:"spans"`
}

// record copies the trace under its lock.
func (tr *Trace) record() TraceRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceRecord{
		ID:            formatTraceID(tr.ID),
		Start:         tr.Start,
		DurationNanos: tr.end,
		Err:           tr.err,
		DroppedSpans:  tr.dropped,
		Spans:         append([]Span(nil), tr.spans...),
	}
}

// formatTraceID renders a trace ID as fixed-width hex.
func formatTraceID(id uint64) string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := range b {
		b[i] = hexDigits[(id>>uint(60-4*i))&0xf]
	}
	return string(b[:])
}

// Tracer samples requests into a bounded ring of traces. All methods are
// nil-receiver safe, so callers hold a *Tracer that is simply nil when
// tracing is off and pay only a nil check.
type Tracer struct {
	every uint64 // sample 1 in every; 0 records only carried IDs
	seen  atomic.Uint64
	ids   atomic.Uint64

	mu       sync.Mutex
	ring     []*Trace // capacity-sized; pos indexes the next overwrite
	pos      uint64
	capacity int
	sampled  atomic.Uint64
}

// NewTracer creates a tracer sampling one in every N requests into a ring
// of the given capacity. every <= 0 samples nothing locally but still
// records requests that arrive with a caller-carried trace ID; capacity
// <= 0 defaults to 256.
func NewTracer(every, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	t := &Tracer{ring: make([]*Trace, capacity), capacity: capacity}
	if every > 0 {
		t.every = uint64(every)
	}
	// Seed the ID sequence with the wall clock so IDs from different
	// processes are distinguishable in merged trace dumps.
	t.ids.Store(uint64(time.Now().UnixNano()))
	return t
}

// For decides whether to record this request: a non-zero carried ID (a
// propagated cross-process trace) is always recorded; otherwise the 1-in-N
// sampler decides and mints a fresh ID. Returns nil — at the cost of one
// atomic increment — when the request is not sampled, or when the tracer
// itself is nil.
func (t *Tracer) For(carried uint64) *Trace {
	if t == nil {
		return nil
	}
	if carried == 0 {
		if t.every == 0 || (t.seen.Add(1)-1)%t.every != 0 {
			return nil
		}
		carried = t.ids.Add(1)
	}
	return &Trace{ID: carried, Start: time.Now()}
}

// Finish seals a trace with the request's outcome and pushes it into the
// ring, overwriting the oldest entry when full. Nil tracer or trace is a
// no-op.
func (t *Tracer) Finish(tr *Trace, err error) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	tr.end = int64(time.Since(tr.Start))
	if err != nil {
		tr.err = err.Error()
	}
	tr.mu.Unlock()
	t.sampled.Add(1)
	t.mu.Lock()
	t.ring[t.pos%uint64(t.capacity)] = tr
	t.pos++
	t.mu.Unlock()
}

// Sampled reports how many traces have been finished into the ring over
// the tracer's lifetime (including ones since overwritten).
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// SampleEvery reports the 1-in-N local sampling rate (0 = carried IDs
// only, or tracing off entirely for a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Snapshot copies the ring's finished traces, oldest first.
func (t *Tracer) Snapshot() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.pos
	if n > uint64(t.capacity) {
		n = uint64(t.capacity)
	}
	traces := make([]*Trace, 0, n)
	for i := uint64(0); i < n; i++ {
		// Oldest first: when the ring has wrapped, pos is also the oldest
		// live slot.
		traces = append(traces, t.ring[(t.pos-n+i)%uint64(t.capacity)])
	}
	t.mu.Unlock()
	out := make([]TraceRecord, len(traces))
	for i, tr := range traces {
		out[i] = tr.record()
	}
	return out
}
