package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewMux assembles the telemetry listener's handler set:
//
//	/metrics        Prometheus text exposition of reg (404 when reg is nil)
//	/statusz        JSON snapshot from statusz (404 when statusz is nil)
//	/tracez         the tracer's ring as JSON (empty when tracer is nil)
//	/debug/pprof/*  the runtime profiling endpoints
//
// statusz is called per request; return a freshly built snapshot (e.g.
// middleware.GatewayStats) rather than a shared mutable structure.
func NewMux(reg *Registry, tracer *Tracer, statusz func() any) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	if statusz != nil {
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, statusz())
		})
	}
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			SampleEvery int           `json:"sampleEvery"`
			Sampled     uint64        `json:"sampled"`
			Traces      []TraceRecord `json:"traces"`
		}{tracer.SampleEvery(), tracer.Sampled(), tracer.Snapshot()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	_, _ = w.Write(b)
}
