package telemetry

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry covering every metric
// kind, multiple label sets within a family, and a histogram with
// observations in distinct buckets plus the +Inf overflow.
func goldenRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	a, err := reg.NewCounter("confmw_demo_requests_total", "Requests handled, by stage.", L("stage", "auth"))
	if err != nil {
		t.Fatal(err)
	}
	a.Add(3)
	b, err := reg.NewCounter("confmw_demo_requests_total", "Requests handled, by stage.", L("stage", "order"))
	if err != nil {
		t.Fatal(err)
	}
	b.Inc()
	if err := reg.CounterFunc("confmw_demo_sweeps_total", "Sweeps run.", func() uint64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	if err := reg.GaugeFunc("confmw_demo_live", "Live sessions.", func() float64 { return 2.5 }); err != nil {
		t.Fatal(err)
	}
	h, err := reg.NewHistogram("confmw_demo_latency_seconds", "Stage latency.", []uint64{250, 500, 1000}, NanosPerSecond, L("stage", "auth"))
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(100)  // first bucket
	h.Observe(300)  // second bucket
	h.Observe(2000) // +Inf
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry(t).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusInvariants checks structural exposition rules
// independent of exact float formatting: one HELP/TYPE per family,
// cumulative buckets, _count equals total observations.
func TestWritePrometheusInvariants(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry(t).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE confmw_demo_requests_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want exactly 1:\n%s", n, out)
	}
	for _, want := range []string{
		`confmw_demo_requests_total{stage="auth"} 3`,
		`confmw_demo_requests_total{stage="order"} 1`,
		"confmw_demo_sweeps_total 7",
		"confmw_demo_live 2.5",
		"# TYPE confmw_demo_latency_seconds histogram",
		`confmw_demo_latency_seconds_bucket{stage="auth",le="+Inf"} 3`,
		`confmw_demo_latency_seconds_count{stage="auth"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry(t).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
}
