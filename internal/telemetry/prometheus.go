package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// ContentType is the Prometheus text exposition content type the /metrics
// handler serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name with one
// HELP/TYPE header each, samples sorted by label set within the family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.snapshot() {
		d := m.desc()
		if d.name != lastFamily {
			lastFamily = d.name
			if d.help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(d.name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(d.help))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(d.name)
			bw.WriteByte(' ')
			bw.WriteString(d.kind)
			bw.WriteByte('\n')
		}
		switch m := m.(type) {
		case *Counter:
			writeSample(bw, d.name, "", d.labels, "", formatUint(m.Value()))
		case *counterFunc:
			writeSample(bw, d.name, "", d.labels, "", formatUint(m.fn()))
		case *gaugeFunc:
			writeSample(bw, d.name, "", d.labels, "", formatFloat(m.fn()))
		case *Histogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative le buckets, _sum, and _count of one
// histogram, with bounds and sum converted to the export unit.
func writeHistogram(bw *bufio.Writer, h *Histogram) {
	d := h.desc()
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(float64(h.bounds[i]) / h.unit)
		}
		writeSample(bw, d.name, "_bucket", d.labels, le, formatUint(cum))
	}
	writeSample(bw, d.name, "_sum", d.labels, "", formatFloat(float64(h.sum.Load())/h.unit))
	writeSample(bw, d.name, "_count", d.labels, "", formatUint(cum))
}

// writeSample emits one sample line: name[suffix]{labels[,le="..."]} value.
func writeSample(bw *bufio.Writer, name, suffix, labels, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || le != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if le != "" {
			if labels != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
