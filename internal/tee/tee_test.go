package tee

import (
	"bytes"
	"errors"
	"strconv"
	"testing"

	"dltprivacy/internal/dcrypto"
)

// counterProgram is confidential logic that adds its input to a running
// total kept in sealed state.
var counterProgram = Program{
	Name:    "accumulator",
	Version: "1.0",
	Run: func(input, state []byte) ([]byte, []byte, error) {
		total := 0
		if len(state) > 0 {
			v, err := strconv.Atoi(string(state))
			if err != nil {
				return nil, nil, err
			}
			total = v
		}
		add, err := strconv.Atoi(string(input))
		if err != nil {
			return nil, nil, err
		}
		total += add
		out := []byte(strconv.Itoa(total))
		return out, out, nil
	},
}

func provision(t *testing.T) (*Manufacturer, *Enclave) {
	t.Helper()
	m, err := NewManufacturer()
	if err != nil {
		t.Fatalf("NewManufacturer: %v", err)
	}
	e, err := m.Provision()
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	return m, e
}

func TestExecuteWithAttestation(t *testing.T) {
	m, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	out, att, err := e.Execute([]byte("5"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if string(out) != "5" {
		t.Fatalf("output = %q, want 5", out)
	}
	if err := VerifyAttestation(att, m.PublicKey(), counterProgram.Measurement()); err != nil {
		t.Fatalf("VerifyAttestation: %v", err)
	}
}

func TestStatePersistsAcrossCalls(t *testing.T) {
	_, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, _, err := e.Execute([]byte("5")); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	out, _, err := e.Execute([]byte("7"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if string(out) != "12" {
		t.Fatalf("accumulated output = %q, want 12", out)
	}
}

func TestExecuteWithoutProgram(t *testing.T) {
	_, e := provision(t)
	if _, _, err := e.Execute(nil); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("Execute without program = %v, want ErrNoProgram", err)
	}
	if _, err := e.Measurement(); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("Measurement without program = %v, want ErrNoProgram", err)
	}
}

func TestLoadRejectsEmptyProgram(t *testing.T) {
	_, e := provision(t)
	if err := e.Load(Program{Name: "x"}); err == nil {
		t.Fatal("Load without entry point must fail")
	}
}

func TestProgramFault(t *testing.T) {
	_, e := provision(t)
	bad := Program{Name: "bad", Version: "1", Run: func(_, _ []byte) ([]byte, []byte, error) {
		return nil, nil, errors.New("boom")
	}}
	if err := e.Load(bad); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, _, err := e.Execute(nil); !errors.Is(err, ErrProgramFault) {
		t.Fatalf("Execute fault = %v, want ErrProgramFault", err)
	}
}

func TestAttestationRejectsWrongManufacturer(t *testing.T) {
	_, e := provision(t)
	other, _ := NewManufacturer()
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	_, att, err := e.Execute([]byte("1"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if err := VerifyAttestation(att, other.PublicKey(), counterProgram.Measurement()); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("wrong manufacturer = %v, want ErrBadAttestation", err)
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	m, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	_, att, err := e.Execute([]byte("1"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wrong := Program{Name: "other", Version: "9"}.Measurement()
	if err := VerifyAttestation(att, m.PublicKey(), wrong); !errors.Is(err, ErrWrongMeasurement) {
		t.Fatalf("wrong measurement = %v, want ErrWrongMeasurement", err)
	}
}

func TestAttestationRejectsTamperedOutput(t *testing.T) {
	m, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	_, att, err := e.Execute([]byte("1"))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	att.OutputHash = dcrypto.Hash([]byte("forged"))
	if err := VerifyAttestation(att, m.PublicKey(), counterProgram.Measurement()); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("tampered output hash = %v, want ErrBadAttestation", err)
	}
}

func TestConfidentialExecution(t *testing.T) {
	_, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	recipient, _ := dcrypto.GenerateKey()
	input, err := dcrypto.EncryptHybrid(e.PublicKey(), []byte("9"), []byte("tee/input"))
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	ct, _, err := e.ExecuteConfidential(input, recipient.Public())
	if err != nil {
		t.Fatalf("ExecuteConfidential: %v", err)
	}
	out, err := dcrypto.DecryptHybrid(recipient, ct, []byte("tee/output"))
	if err != nil {
		t.Fatalf("DecryptHybrid: %v", err)
	}
	if string(out) != "9" {
		t.Fatalf("confidential output = %q, want 9", out)
	}
	// A non-recipient (for example the host) cannot read the output.
	eve, _ := dcrypto.GenerateKey()
	if _, err := dcrypto.DecryptHybrid(eve, ct, []byte("tee/output")); err == nil {
		t.Fatal("host must not decrypt enclave output")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	_, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	// A long multi-byte sentinel state: a single-byte probe against random
	// AES-GCM ciphertext false-matches roughly one run in ten, a ten-byte
	// run is effectively impossible to find by chance.
	const sentinel = "1234567890"
	if _, _, err := e.Execute([]byte(sentinel)); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sealed, err := e.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(sealed.Ciphertext, []byte(sentinel)) {
		t.Fatal("sealed state must not expose plaintext")
	}
	// Wrong-key Unseal (state sealed by one enclave opened in another) is
	// covered by TestSealedStateBoundToOtherEnclaveFails below.
	if err := e.Unseal(sealed); err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	out, _, err := e.Execute([]byte("4"))
	if err != nil {
		t.Fatalf("Execute after unseal: %v", err)
	}
	if string(out) != "1234567894" {
		t.Fatalf("output after unseal = %q, want 1234567894", out)
	}
}

func TestRollbackDetection(t *testing.T) {
	_, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, _, err := e.Execute([]byte("1")); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	old, err := e.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, _, err := e.Execute([]byte("1")); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if err := e.Unseal(old); !errors.Is(err, ErrRollback) {
		t.Fatalf("Unseal(old) = %v, want ErrRollback", err)
	}
}

func TestSealedStateBoundToOtherEnclaveFails(t *testing.T) {
	m, e1 := provision(t)
	e2, err := m.Provision()
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if err := e1.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := e2.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, _, err := e1.Execute([]byte("1")); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sealed, _ := e1.Seal()
	// e2 has counter 0, so the counter gate passes, but the sealing key
	// differs: decryption must fail.
	if _, _, err := e2.Execute([]byte("1")); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if err := e2.Unseal(sealed); err == nil {
		t.Fatal("sealed state must be bound to the sealing enclave")
	}
}

func TestAttestationNonceFreshness(t *testing.T) {
	m, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	nonce := []byte("verifier-challenge-123")
	_, att, err := e.ExecuteWithNonce([]byte("1"), nonce)
	if err != nil {
		t.Fatalf("ExecuteWithNonce: %v", err)
	}
	if string(att.Nonce) != string(nonce) {
		t.Fatalf("attestation nonce = %q", att.Nonce)
	}
	if err := VerifyAttestation(att, m.PublicKey(), counterProgram.Measurement()); err != nil {
		t.Fatalf("VerifyAttestation: %v", err)
	}
	// An attacker replaying the quote under a different nonce fails.
	att.Nonce = []byte("stale")
	if err := VerifyAttestation(att, m.PublicKey(), counterProgram.Measurement()); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("nonce replay = %v, want ErrBadAttestation", err)
	}
}

func TestMonotonicCounterInAttestation(t *testing.T) {
	m, e := provision(t)
	if err := e.Load(counterProgram); err != nil {
		t.Fatalf("Load: %v", err)
	}
	_, a1, _ := e.Execute([]byte("1"))
	_, a2, _ := e.Execute([]byte("1"))
	if a2.Counter != a1.Counter+1 {
		t.Fatalf("counter did not advance: %d -> %d", a1.Counter, a2.Counter)
	}
	_ = m
}
