// Package tee simulates a trusted execution environment (§2.2, "Trusted
// execution environments"): an enclave with a manufacturer-embedded private
// key whose public half is certified by the manufacturer, remote attestation
// over the measurement (code hash) of the loaded program, sealed state, a
// rollback-detection counter (after Brandenburger et al., cited by the
// paper), and confidential execution in which neither the program text nor
// the data is visible to the hosting party.
//
// The simulation enforces the enclave boundary at the API level: hosts hold
// *Enclave values but can only call Execute/ExecuteConfidential, which
// return outputs and attestations — never the program or raw state. The
// leakage-accounting layer relies on this boundary when scoring TEE-based
// mechanisms.
package tee

import (
	"errors"
	"fmt"
	"sync"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by enclave operations.
var (
	// ErrNoProgram is returned when Execute is called before Load.
	ErrNoProgram = errors.New("tee: no program loaded")
	// ErrBadAttestation is returned when an attestation fails to verify.
	ErrBadAttestation = errors.New("tee: attestation verification failed")
	// ErrWrongMeasurement is returned when an attestation is valid but
	// for a different program than expected.
	ErrWrongMeasurement = errors.New("tee: unexpected enclave measurement")
	// ErrRollback is returned when sealed state is older than the
	// enclave's monotonic counter — a rollback/forking attack indicator.
	ErrRollback = errors.New("tee: sealed state rollback detected")
	// ErrProgramFault wraps errors returned by the enclave program.
	ErrProgramFault = errors.New("tee: program fault")
)

// Program is confidential business logic executed inside an enclave. Run
// must be deterministic: (input, state) fully determine (output, newState).
type Program struct {
	Name    string
	Version string
	// Run executes the logic. state is the enclave's sealed state (nil on
	// first call); it returns the output and the new state.
	Run func(input, state []byte) (output, newState []byte, err error)
}

// Measurement returns the program's enclave measurement. A real TEE hashes
// the loaded code pages; the simulation hashes the program's identity, which
// is the property attestation consumers depend on.
func (p Program) Measurement() [32]byte {
	return dcrypto.HashConcat([]byte("tee/measurement"), []byte(p.Name), []byte(p.Version))
}

// Manufacturer models the chip vendor: it embeds a private key in each
// enclave at provisioning time and publishes the verification key.
type Manufacturer struct {
	key *dcrypto.PrivateKey
}

// NewManufacturer creates a manufacturer with a fresh root key.
func NewManufacturer() (*Manufacturer, error) {
	key, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("manufacturer key: %w", err)
	}
	return &Manufacturer{key: key}, nil
}

// PublicKey returns the manufacturer verification key that relying parties
// pin (the paper: "the corresponding public keys held by the manufacturer").
func (m *Manufacturer) PublicKey() dcrypto.PublicKey { return m.key.Public() }

// Provision fabricates an enclave with an embedded key endorsed by the
// manufacturer.
func (m *Manufacturer) Provision() (*Enclave, error) {
	key, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("enclave key: %w", err)
	}
	endorsement, err := m.key.Sign(key.Public().Bytes())
	if err != nil {
		return nil, fmt.Errorf("endorse enclave key: %w", err)
	}
	return &Enclave{
		key:         key,
		endorsement: endorsement,
	}, nil
}

// Enclave is a provisioned trusted execution environment.
type Enclave struct {
	key         *dcrypto.PrivateKey
	endorsement dcrypto.Signature

	mu      sync.Mutex
	program *Program
	state   []byte
	counter uint64
}

// PublicKey returns the enclave's attestation key.
func (e *Enclave) PublicKey() dcrypto.PublicKey { return e.key.Public() }

// Endorsement returns the manufacturer's signature over the enclave key.
func (e *Enclave) Endorsement() dcrypto.Signature { return e.endorsement }

// Load installs a program into the enclave. The host that calls Load learns
// the measurement, not the logic (in this simulation the host may have
// constructed the Program, modelling the deploying party; a third-party host
// receives only the *Enclave and the measurement).
func (e *Enclave) Load(p Program) error {
	if p.Run == nil {
		return errors.New("tee: program has no entry point")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	prog := p
	e.program = &prog
	e.state = nil
	e.counter = 0
	return nil
}

// Measurement returns the measurement of the loaded program.
func (e *Enclave) Measurement() ([32]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.program == nil {
		return [32]byte{}, ErrNoProgram
	}
	return e.program.Measurement(), nil
}

// Attestation is a signed statement that a specific program (measurement)
// executed on specific input and produced specific output inside a genuine
// enclave at a given monotonic counter value. Nonce carries the verifier's
// freshness challenge when one was supplied.
type Attestation struct {
	Measurement [32]byte
	InputHash   [32]byte
	OutputHash  [32]byte
	Counter     uint64
	Nonce       []byte
	EnclaveKey  []byte
	Endorsement dcrypto.Signature
	Sig         dcrypto.Signature
}

func (a Attestation) payload() []byte {
	var buf []byte
	buf = append(buf, a.Measurement[:]...)
	buf = append(buf, a.InputHash[:]...)
	buf = append(buf, a.OutputHash[:]...)
	var ctr [8]byte
	for i := 0; i < 8; i++ {
		ctr[7-i] = byte(a.Counter >> (8 * i))
	}
	buf = append(buf, ctr[:]...)
	nonceHash := dcrypto.HashConcat([]byte("tee/nonce"), a.Nonce)
	buf = append(buf, nonceHash[:]...)
	buf = append(buf, a.EnclaveKey...)
	return buf
}

// Execute runs the loaded program on input, advancing the monotonic counter
// and returning the plaintext output with an attestation.
func (e *Enclave) Execute(input []byte) ([]byte, Attestation, error) {
	return e.ExecuteWithNonce(input, nil)
}

// ExecuteWithNonce is Execute with a verifier-chosen freshness challenge
// folded into the attestation, defeating quote replay.
func (e *Enclave) ExecuteWithNonce(input, nonce []byte) ([]byte, Attestation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.program == nil {
		return nil, Attestation{}, ErrNoProgram
	}
	output, newState, err := e.program.Run(input, e.state)
	if err != nil {
		return nil, Attestation{}, fmt.Errorf("%w: %v", ErrProgramFault, err)
	}
	e.state = newState
	e.counter++
	att := Attestation{
		Measurement: e.program.Measurement(),
		InputHash:   dcrypto.Hash(input),
		OutputHash:  dcrypto.Hash(output),
		Counter:     e.counter,
		Nonce:       append([]byte(nil), nonce...),
		EnclaveKey:  e.key.Public().Bytes(),
		Endorsement: e.endorsement,
	}
	sig, err := e.key.Sign(att.payload())
	if err != nil {
		return nil, Attestation{}, fmt.Errorf("sign attestation: %w", err)
	}
	att.Sig = sig
	return output, att, nil
}

// ExecuteConfidential runs the program on an encrypted input and returns the
// output encrypted to the authorized recipient, so the hosting party sees
// neither input nor output (§3.3: a node administrator that "should not have
// access to unencrypted data or business logic").
func (e *Enclave) ExecuteConfidential(input dcrypto.HybridCiphertext, recipient dcrypto.PublicKey) (dcrypto.HybridCiphertext, Attestation, error) {
	e.mu.Lock()
	key := e.key
	e.mu.Unlock()
	plain, err := dcrypto.DecryptHybrid(key, input, []byte("tee/input"))
	if err != nil {
		return dcrypto.HybridCiphertext{}, Attestation{}, fmt.Errorf("decrypt enclave input: %w", err)
	}
	output, att, err := e.Execute(plain)
	if err != nil {
		return dcrypto.HybridCiphertext{}, Attestation{}, err
	}
	ct, err := dcrypto.EncryptHybrid(recipient, output, []byte("tee/output"))
	if err != nil {
		return dcrypto.HybridCiphertext{}, Attestation{}, fmt.Errorf("encrypt enclave output: %w", err)
	}
	return ct, att, nil
}

// VerifyAttestation checks the full chain: the manufacturer endorsed the
// enclave key, the enclave signed the statement, and the measurement matches
// the program the verifier expects.
func VerifyAttestation(att Attestation, manufacturer dcrypto.PublicKey, expected [32]byte) error {
	enclaveKey, err := dcrypto.ParsePublicKey(att.EnclaveKey)
	if err != nil {
		return fmt.Errorf("%w: bad enclave key", ErrBadAttestation)
	}
	if err := manufacturer.Verify(att.EnclaveKey, att.Endorsement); err != nil {
		return fmt.Errorf("%w: endorsement", ErrBadAttestation)
	}
	if err := enclaveKey.Verify(att.payload(), att.Sig); err != nil {
		return fmt.Errorf("%w: quote signature", ErrBadAttestation)
	}
	if att.Measurement != expected {
		return ErrWrongMeasurement
	}
	return nil
}

// SealedState is enclave state encrypted for storage by the (untrusted)
// host, with the counter bound for rollback detection.
type SealedState struct {
	Counter    uint64
	Ciphertext []byte
}

// Seal exports the enclave's current state for host storage.
func (e *Enclave) Seal() (SealedState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sealKey := e.sealingKey()
	var ctr [8]byte
	for i := 0; i < 8; i++ {
		ctr[7-i] = byte(e.counter >> (8 * i))
	}
	ct, err := dcrypto.EncryptSymmetric(sealKey, e.state, ctr[:])
	if err != nil {
		return SealedState{}, fmt.Errorf("seal: %w", err)
	}
	return SealedState{Counter: e.counter, Ciphertext: ct}, nil
}

// Unseal restores state previously produced by Seal. Restoring state older
// than the enclave's counter fails with ErrRollback.
func (e *Enclave) Unseal(s SealedState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.Counter < e.counter {
		return ErrRollback
	}
	var ctr [8]byte
	for i := 0; i < 8; i++ {
		ctr[7-i] = byte(s.Counter >> (8 * i))
	}
	state, err := dcrypto.DecryptSymmetric(e.sealingKey(), s.Ciphertext, ctr[:])
	if err != nil {
		return fmt.Errorf("unseal: %w", err)
	}
	e.state = state
	e.counter = s.Counter
	return nil
}

// sealingKey derives the enclave-local storage key from the embedded key.
func (e *Enclave) sealingKey() []byte {
	sum := dcrypto.HashConcat([]byte("tee/seal"), e.key.D().Bytes())
	return sum[:]
}
