// Package loc implements the paper's worked example (§4): letters of credit
// on a permissioned ledger. The design is derived by the guide engine from
// the §4 requirements — PII must be deletable under GDPR, so it lives
// off-chain; encrypted data may be shared; validators are the transacting
// parties — which leads to a separate ledger per trading group with
// identities verified by a bank, PII off-ledger, and optional payload
// encryption when a third party runs the ordering service.
package loc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/guide"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/offchain"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/zkp"
)

// Errors returned by the application.
var (
	// ErrBadTransition is returned for out-of-order lifecycle calls.
	ErrBadTransition = errors.New("loc: invalid lifecycle transition")
	// ErrNotFound is returned for unknown letters of credit.
	ErrNotFound = errors.New("loc: letter of credit not found")
	// ErrInsufficientFunds is returned when the buyer cannot prove funds
	// covering the letter amount.
	ErrInsufficientFunds = errors.New("loc: buyer cannot prove sufficient funds")
)

// Status is a letter of credit's lifecycle stage.
type Status string

// Lifecycle stages.
const (
	StatusApplied   Status = "applied"
	StatusIssued    Status = "issued"
	StatusShipped   Status = "shipped"
	StatusPresented Status = "presented"
	StatusPaid      Status = "paid"
)

// Letter is the on-ledger record of a letter of credit. It carries no PII:
// personal data stays off-chain behind the PIIRef anchor.
type Letter struct {
	ID          string `json:"id"`
	Buyer       string `json:"buyer"`
	Seller      string `json:"seller"`
	Bank        string `json:"bank"`
	AmountCents int64  `json:"amountCents"`
	Goods       string `json:"goods"`
	Status      Status `json:"status"`
	// PIIRef anchors the buyer's off-chain PII record.
	PIIRef string `json:"piiRef,omitempty"`
	// ShippingDoc is the seller's shipment reference.
	ShippingDoc string `json:"shippingDoc,omitempty"`
}

// DeriveDesign runs the design-guide engine on the §4 requirements and
// returns the decisions that drive the application configuration. The
// experiment suite asserts the outcome matches the paper's conclusion.
func DeriveDesign() (pii guide.Decision, trade guide.Decision, interactions []guide.Mechanism) {
	// PII: confidential, and GDPR grants deletion -> off-chain with hash.
	pii = guide.Decide(guide.Requirements{
		DataConfidential: true,
		DeletionRequired: true,
	})
	// Trade data: confidential, no deletion requirement, encrypted data
	// may be shared, and validators are the transacting parties (they may
	// read) -> separation of ledgers with optional hash.
	trade = guide.Decide(guide.Requirements{
		DataConfidential:        true,
		EncryptedSharingAllowed: true,
		ValidatorsMayRead:       true,
	})
	// Interactions: buyers and sellers do not want the network to see
	// their relationship -> separate ledger.
	interactions = guide.DecideInteractions(guide.InteractionRequirements{GroupPrivate: true})
	return pii, trade, interactions
}

// Config sets up a letter-of-credit network.
type Config struct {
	Bank   string
	Buyer  string
	Seller string
	// ThirdPartyOrderer, when non-empty, names an external operator for
	// the ordering service; §4: "If a third party is trusted to run the
	// ordering service …, transaction data can be encrypted."
	ThirdPartyOrderer string
	// ClusterOrdering, when true, runs a replicated ordering cluster
	// operated by the trading group itself — the strongest §3.4
	// mitigation (mutually exclusive with ThirdPartyOrderer).
	ClusterOrdering bool
	// ExtraOrgs are network members outside the trading group (they must
	// learn nothing).
	ExtraOrgs []string
}

// App is a running letter-of-credit deployment.
type App struct {
	net     *fabric.Network
	channel string
	cfg     Config
	pii     *offchain.Store
	nextID  int
}

// chaincode returns the letter-of-credit chaincode: a state machine over
// Letter records.
func chaincode() contract.Contract {
	step := func(from, to Status, update func(*Letter, [][]byte) error) contract.Func {
		return func(ctx *contract.Context, args [][]byte) ([]byte, error) {
			if len(args) < 1 {
				return nil, errors.New("want letter id")
			}
			id := string(args[0])
			raw, err := ctx.Get("loc/" + id)
			if err != nil {
				return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
			}
			var letter Letter
			if err := json.Unmarshal(raw, &letter); err != nil {
				return nil, fmt.Errorf("decode letter: %w", err)
			}
			if letter.Status != from {
				return nil, fmt.Errorf("%w: %s is %s, need %s", ErrBadTransition, id, letter.Status, from)
			}
			letter.Status = to
			if update != nil {
				if err := update(&letter, args[1:]); err != nil {
					return nil, err
				}
			}
			out, err := json.Marshal(letter)
			if err != nil {
				return nil, fmt.Errorf("encode letter: %w", err)
			}
			ctx.Put("loc/"+id, out)
			return out, nil
		}
	}
	return contract.Contract{
		Name:    "letterofcredit",
		Version: "1",
		Funcs: map[string]contract.Func{
			"apply": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 1 {
					return nil, errors.New("apply: want letter json")
				}
				var letter Letter
				if err := json.Unmarshal(args[0], &letter); err != nil {
					return nil, fmt.Errorf("decode letter: %w", err)
				}
				if letter.ID == "" || letter.AmountCents <= 0 {
					return nil, errors.New("apply: letter needs id and positive amount")
				}
				if _, err := ctx.Get("loc/" + letter.ID); err == nil {
					return nil, fmt.Errorf("apply: letter %s already exists", letter.ID)
				}
				letter.Status = StatusApplied
				out, err := json.Marshal(letter)
				if err != nil {
					return nil, err
				}
				ctx.Put("loc/"+letter.ID, out)
				return out, nil
			},
			"issue": step(StatusApplied, StatusIssued, nil),
			"ship": step(StatusIssued, StatusShipped, func(l *Letter, rest [][]byte) error {
				if len(rest) != 1 {
					return errors.New("ship: want shipping doc ref")
				}
				l.ShippingDoc = string(rest[0])
				return nil
			}),
			"present": step(StatusShipped, StatusPresented, nil),
			"pay":     step(StatusPresented, StatusPaid, nil),
		},
	}
}

// NewApp derives the design and provisions the network accordingly.
func NewApp(cfg Config) (*App, error) {
	if cfg.Bank == "" || cfg.Buyer == "" || cfg.Seller == "" {
		return nil, errors.New("loc: bank, buyer, and seller are required")
	}
	piiDecision, tradeDecision, _ := DeriveDesign()
	if piiDecision.Primary != guide.MechOffChainHash {
		return nil, fmt.Errorf("loc: design derivation changed for PII: %s", piiDecision.Primary)
	}
	if tradeDecision.Primary != guide.MechSeparateLedgers {
		return nil, fmt.Errorf("loc: design derivation changed for trade data: %s", tradeDecision.Primary)
	}

	group := []string{cfg.Bank, cfg.Buyer, cfg.Seller}
	var netCfg fabric.Config
	switch {
	case cfg.ClusterOrdering && cfg.ThirdPartyOrderer != "":
		return nil, errors.New("loc: ClusterOrdering and ThirdPartyOrderer are mutually exclusive")
	case cfg.ClusterOrdering:
		netCfg.OrdererCluster = group
	case cfg.ThirdPartyOrderer != "":
		netCfg.OrdererOperator = cfg.ThirdPartyOrderer
	default:
		// The bank (a transacting party) sequences.
		netCfg.OrdererOperator = cfg.Bank
	}
	net, err := fabric.NewNetwork(netCfg)
	if err != nil {
		return nil, fmt.Errorf("loc network: %w", err)
	}
	for _, org := range append(append([]string(nil), group...), cfg.ExtraOrgs...) {
		if _, err := net.AddOrg(org); err != nil {
			return nil, fmt.Errorf("add org: %w", err)
		}
	}
	// Per the derived design: a separate ledger for the trading group.
	policy := contract.Policy{Members: group, Threshold: 2}
	channelName := "loc-" + cfg.Bank + "-" + cfg.Buyer + "-" + cfg.Seller
	if err := net.CreateChannel(channelName, group, policy); err != nil {
		return nil, fmt.Errorf("create channel: %w", err)
	}
	if err := net.InstallChaincode(channelName, chaincode(), group); err != nil {
		return nil, fmt.Errorf("install chaincode: %w", err)
	}
	// Per the derived design: PII lives off-chain, hosted by the bank
	// (the identity-verifying party), deletable on request.
	pii := offchain.NewStore(cfg.Bank, group,
		offchain.WithAuditLog(net.Log), offchain.WithDataClass(audit.ClassPII))
	return &App{net: net, channel: channelName, cfg: cfg, pii: pii}, nil
}

// Network exposes the underlying network for experiments.
func (a *App) Network() *fabric.Network { return a.net }

// Channel returns the trading channel name.
func (a *App) Channel() string { return a.channel }

// PIIStore returns the off-chain PII store.
func (a *App) PIIStore() *offchain.Store { return a.pii }

func (a *App) invoke(creator, fn string, args ...[]byte) error {
	endorsers := []string{a.cfg.Bank, creator}
	if creator == a.cfg.Bank {
		endorsers = []string{a.cfg.Bank, a.cfg.Seller}
	}
	_, err := a.net.Invoke(a.channel, creator, "letterofcredit", fn, args, endorsers)
	return err
}

// Apply opens a letter of credit: the buyer applies, depositing PII
// off-chain and proving funds in zero knowledge.
//
// balance and blinding open balanceComm, the buyer's committed account
// balance; the bank verifies the sufficient-funds proof against the
// commitment without learning the balance.
func (a *App) Apply(goods string, amountCents int64, piiRecord []byte, balance *big.Int, balanceComm zkp.Commitment, blinding *big.Int) (string, error) {
	a.nextID++
	id := fmt.Sprintf("LOC-%04d", a.nextID)

	// Boolean affirmation (§2.2): buyer proves balance >= amount.
	threshold := big.NewInt(amountCents)
	proof, err := zkp.ProveSufficientFunds(balance, blinding, threshold, balanceComm, []byte(id))
	if err != nil {
		if errors.Is(err, zkp.ErrOutOfRange) {
			return "", ErrInsufficientFunds
		}
		return "", fmt.Errorf("prove funds: %w", err)
	}
	if err := zkp.VerifySufficientFunds(proof, balanceComm, []byte(id)); err != nil {
		return "", fmt.Errorf("%w: %v", ErrInsufficientFunds, err)
	}

	// PII off-chain with the anchor on the ledger (derived design).
	piiKey := "pii/" + id
	anchor, err := a.pii.Put(piiKey, piiRecord)
	if err != nil {
		return "", fmt.Errorf("store pii: %w", err)
	}
	letter := Letter{
		ID:          id,
		Buyer:       a.cfg.Buyer,
		Seller:      a.cfg.Seller,
		Bank:        a.cfg.Bank,
		AmountCents: amountCents,
		Goods:       goods,
		PIIRef:      fmt.Sprintf("%x", anchor[:8]),
	}
	raw, err := json.Marshal(letter)
	if err != nil {
		return "", err
	}
	if err := a.invoke(a.cfg.Buyer, "apply", raw); err != nil {
		return "", err
	}
	return id, nil
}

// Issue has the bank issue the letter.
func (a *App) Issue(id string) error { return a.invoke(a.cfg.Bank, "issue", []byte(id)) }

// Ship has the seller record shipment.
func (a *App) Ship(id, shippingDoc string) error {
	return a.invoke(a.cfg.Seller, "ship", []byte(id), []byte(shippingDoc))
}

// Present has the seller present documents for payment.
func (a *App) Present(id string) error { return a.invoke(a.cfg.Seller, "present", []byte(id)) }

// Pay has the bank settle the letter.
func (a *App) Pay(id string) error { return a.invoke(a.cfg.Bank, "pay", []byte(id)) }

// Get returns the current letter record as seen by a party.
func (a *App) Get(requester, id string) (Letter, error) {
	raw, err := a.net.Query(a.channel, requester, "loc/"+id)
	if err != nil {
		if errors.Is(err, ledger.ErrNotFound) {
			return Letter{}, fmt.Errorf("%s: %w", id, ErrNotFound)
		}
		return Letter{}, err
	}
	var letter Letter
	if err := json.Unmarshal(raw, &letter); err != nil {
		return Letter{}, fmt.Errorf("decode letter: %w", err)
	}
	return letter, nil
}

// List returns every letter visible to the requester, keyed by id.
func (a *App) List(requester string) (map[string]Letter, error) {
	raw, err := a.net.QueryPrefix(a.channel, requester, "loc/")
	if err != nil {
		return nil, err
	}
	out := make(map[string]Letter, len(raw))
	for key, value := range raw {
		var letter Letter
		if err := json.Unmarshal(value, &letter); err != nil {
			return nil, fmt.Errorf("decode %s: %w", key, err)
		}
		out[letter.ID] = letter
	}
	return out, nil
}

// DeletePII honours a GDPR deletion request: the off-chain record is erased
// while the on-ledger anchor remains as evidence.
func (a *App) DeletePII(id string) error {
	return a.pii.Delete("pii/" + id)
}

// LeakagePolicy returns the audit policy the §4 design promises: only the
// trading group (and the ordering operator, if third-party) observes
// anything beyond public metadata; PII is seen only by the group.
func (a *App) LeakagePolicy() audit.Policy {
	group := map[string]bool{a.cfg.Bank: true, a.cfg.Buyer: true, a.cfg.Seller: true}
	operator := a.net.OrdererOperator()
	return func(o audit.Observation) bool {
		if group[o.Observer] {
			return true
		}
		if o.Observer == operator {
			// The orderer sees envelopes, identities, relationships and
			// (with full visibility) payloads — the §3.4 caveat — but
			// never PII, which goes off-chain.
			return o.Class != audit.ClassPII
		}
		// peer-<org> principals are the orgs' own peers.
		for g := range group {
			if o.Observer == "peer-"+g {
				return true
			}
		}
		return false
	}
}
