package loc

import (
	"errors"
	"math/big"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/guide"
	"dltprivacy/internal/offchain"
	"dltprivacy/internal/zkp"
)

func newApp(t *testing.T, cfg Config) *App {
	t.Helper()
	if cfg.Bank == "" {
		cfg = Config{
			Bank: "BankA", Buyer: "BuyerInc", Seller: "SellerCo",
			ExtraOrgs: []string{"RivalCorp"},
		}
	}
	app, err := NewApp(cfg)
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	return app
}

func buyerFunds(t *testing.T, amount int64) (*big.Int, zkp.Commitment, *big.Int) {
	t.Helper()
	balance := big.NewInt(amount)
	comm, blinding, err := zkp.CommitValue(balance)
	if err != nil {
		t.Fatalf("CommitValue: %v", err)
	}
	return balance, comm, blinding
}

// TestDeriveDesign is the E3 design check: the guide engine reaches the
// paper's §4 conclusions.
func TestDeriveDesign(t *testing.T) {
	pii, trade, interactions := DeriveDesign()
	if pii.Primary != guide.MechOffChainHash {
		t.Fatalf("PII design = %q, want off-chain with hash", pii.Primary)
	}
	if trade.Primary != guide.MechSeparateLedgers {
		t.Fatalf("trade design = %q, want separation of ledgers", trade.Primary)
	}
	if len(interactions) != 1 || interactions[0] != guide.MechSeparateLedgers {
		t.Fatalf("interaction design = %v, want separate ledger", interactions)
	}
}

func TestFullLifecycle(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 1_000_000)
	id, err := app.Apply("500 widgets", 250_000, []byte("passport M1234567"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	steps := []struct {
		name string
		fn   func() error
		want Status
	}{
		{"issue", func() error { return app.Issue(id) }, StatusIssued},
		{"ship", func() error { return app.Ship(id, "BL-778") }, StatusShipped},
		{"present", func() error { return app.Present(id) }, StatusPresented},
		{"pay", func() error { return app.Pay(id) }, StatusPaid},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		letter, err := app.Get("BankA", id)
		if err != nil {
			t.Fatalf("Get after %s: %v", s.name, err)
		}
		if letter.Status != s.want {
			t.Fatalf("after %s status = %s, want %s", s.name, letter.Status, s.want)
		}
	}
	// All three parties share the final state.
	for _, party := range []string{"BankA", "BuyerInc", "SellerCo"} {
		letter, err := app.Get(party, id)
		if err != nil || letter.Status != StatusPaid {
			t.Fatalf("%s sees %v, %v", party, letter.Status, err)
		}
	}
}

func TestLifecycleOrderEnforced(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 1000)
	id, err := app.Apply("goods", 500, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Cannot ship before issuance.
	if err := app.Ship(id, "BL-1"); err == nil {
		t.Fatal("ship before issue must fail")
	}
	if err := app.Pay(id); err == nil {
		t.Fatal("pay before presentation must fail")
	}
	if err := app.Issue(id); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := app.Issue(id); err == nil {
		t.Fatal("double issue must fail")
	}
}

func TestInsufficientFundsRejected(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 100)
	_, err := app.Apply("goods", 500, []byte("pii"), balance, comm, blinding)
	if !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("Apply beyond balance = %v, want ErrInsufficientFunds", err)
	}
}

func TestFundsProofRevealsNoBalance(t *testing.T) {
	// The bank verifies the proof against the commitment only; the audit
	// trail contains no observation of the buyer's balance.
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 99_999_999)
	if _, err := app.Apply("goods", 500, []byte("pii"), balance, comm, blinding); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, obs := range app.Network().Log.All() {
		if obs.Item == "99999999" {
			t.Fatal("balance leaked into the audit trail")
		}
	}
}

func TestGDPRDeletion(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 1000)
	id, err := app.Apply("goods", 500, []byte("passport M1234567"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// PII is readable by the group before deletion.
	got, err := app.PIIStore().Get("pii/"+id, "SellerCo")
	if err != nil || string(got) != "passport M1234567" {
		t.Fatalf("PII read = %q, %v", got, err)
	}
	if err := app.DeletePII(id); err != nil {
		t.Fatalf("DeletePII: %v", err)
	}
	if _, err := app.PIIStore().Get("pii/"+id, "SellerCo"); !errors.Is(err, offchain.ErrDeleted) {
		t.Fatalf("PII after deletion = %v, want ErrDeleted", err)
	}
	// The anchor tombstone and the on-ledger letter survive.
	if _, err := app.PIIStore().AnchorOf("pii/" + id); err != nil {
		t.Fatalf("anchor must survive deletion: %v", err)
	}
	letter, err := app.Get("BankA", id)
	if err != nil || letter.PIIRef == "" {
		t.Fatalf("letter after deletion = %+v, %v", letter, err)
	}
}

// TestLeakageMatrix is the E3 privacy assertion: the rival organization on
// the network observes nothing about the trade, and PII never reaches anyone
// outside the trading group.
func TestLeakageMatrix(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 1000)
	id, err := app.Apply("goods", 500, []byte("pii-data"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := app.Issue(id); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	log := app.Network().Log
	if violations := log.Violations(app.LeakagePolicy()); len(violations) != 0 {
		for _, v := range violations {
			t.Errorf("leak: %s", v)
		}
		t.Fatal("leakage policy violated")
	}
	// RivalCorp specifically saw nothing at all.
	for _, class := range []audit.DataClass{
		audit.ClassTxData, audit.ClassRelationship, audit.ClassIdentity, audit.ClassPII,
	} {
		if log.SawAny("RivalCorp", class) {
			t.Fatalf("RivalCorp observed %s", class)
		}
	}
}

func TestThirdPartyOrdererSeesTradeNotPII(t *testing.T) {
	app := newApp(t, Config{
		Bank: "BankA", Buyer: "BuyerInc", Seller: "SellerCo",
		ThirdPartyOrderer: "CloudOrderer",
	})
	balance, comm, blinding := buyerFunds(t, 1000)
	if _, err := app.Apply("goods", 500, []byte("pii-data"), balance, comm, blinding); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	log := app.Network().Log
	// §3.4: the third-party operator sees transactions and parties…
	if !log.SawAny("CloudOrderer", audit.ClassTxData) {
		t.Fatal("third-party orderer must see transactions")
	}
	// …but never the off-chain PII.
	if log.SawAny("CloudOrderer", audit.ClassPII) {
		t.Fatal("third-party orderer must not see PII")
	}
	if violations := log.Violations(app.LeakagePolicy()); len(violations) != 0 {
		t.Fatalf("policy violations: %v", violations)
	}
}

func TestClusterOrderingConfinesEverything(t *testing.T) {
	app := newApp(t, Config{
		Bank: "BankA", Buyer: "BuyerInc", Seller: "SellerCo",
		ClusterOrdering: true,
		ExtraOrgs:       []string{"RivalCorp"},
	})
	balance, comm, blinding := buyerFunds(t, 1000)
	id, err := app.Apply("goods", 500, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := app.Issue(id); err != nil {
		t.Fatalf("Issue: %v", err)
	}
	// With the group running its own replicated orderer, every observer
	// of anything is the group or its peers.
	group := map[string]bool{
		"BankA": true, "BuyerInc": true, "SellerCo": true,
		"peer-BankA": true, "peer-BuyerInc": true, "peer-SellerCo": true,
	}
	for _, obs := range app.Network().Log.All() {
		if !group[obs.Observer] {
			t.Fatalf("non-group observer: %s", obs)
		}
	}
	if got := len(app.Network().OrdererOperators()); got != 3 {
		t.Fatalf("orderer operators = %d, want 3", got)
	}
}

func TestClusterAndThirdPartyExclusive(t *testing.T) {
	_, err := NewApp(Config{
		Bank: "B", Buyer: "Y", Seller: "S",
		ClusterOrdering: true, ThirdPartyOrderer: "Cloud",
	})
	if err == nil {
		t.Fatal("conflicting ordering configs must be rejected")
	}
}

func TestOutsiderCannotReadLetter(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 1000)
	id, err := app.Apply("goods", 500, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := app.Get("RivalCorp", id); err == nil {
		t.Fatal("outsider must not read the letter")
	}
	if _, err := app.PIIStore().Get("pii/"+id, "RivalCorp"); !errors.Is(err, offchain.ErrUnauthorized) {
		t.Fatalf("outsider PII read = %v, want ErrUnauthorized", err)
	}
}

func TestGetUnknownLetter(t *testing.T) {
	app := newApp(t, Config{})
	if _, err := app.Get("BankA", "LOC-9999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown = %v, want ErrNotFound", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewApp(Config{Bank: "B"}); err == nil {
		t.Fatal("incomplete config must fail")
	}
}

func TestListLetters(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 10_000)
	id1, err := app.Apply("goods A", 500, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	id2, err := app.Apply("goods B", 700, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	letters, err := app.List("SellerCo")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(letters) != 2 {
		t.Fatalf("List = %d letters, want 2", len(letters))
	}
	if letters[id1].Goods != "goods A" || letters[id2].Goods != "goods B" {
		t.Fatalf("letters = %v", letters)
	}
	if _, err := app.List("RivalCorp"); err == nil {
		t.Fatal("outsider must not list letters")
	}
}

func TestMultipleLetters(t *testing.T) {
	app := newApp(t, Config{})
	balance, comm, blinding := buyerFunds(t, 10_000)
	id1, err := app.Apply("goods A", 500, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply 1: %v", err)
	}
	id2, err := app.Apply("goods B", 700, []byte("pii"), balance, comm, blinding)
	if err != nil {
		t.Fatalf("Apply 2: %v", err)
	}
	if id1 == id2 {
		t.Fatal("letter ids must be unique")
	}
	l1, _ := app.Get("BankA", id1)
	l2, _ := app.Get("BankA", id2)
	if l1.Goods != "goods A" || l2.Goods != "goods B" {
		t.Fatalf("letters mixed up: %+v %+v", l1, l2)
	}
}
