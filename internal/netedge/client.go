package netedge

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/pki"
)

// dialOptions collects the client knobs; see the With* constructors.
type dialOptions struct {
	inFlight int
	shed     bool
	maxFrame int
	timeout  time.Duration
}

// DialOption configures a Client.
type DialOption func(*dialOptions)

// WithInFlight bounds how many requests the client keeps in flight on the
// connection at once — the pipelining window. A full window blocks Call
// (default) or, with WithClientShedding, fails it with ErrBackpressure.
// Default 1024.
func WithInFlight(n int) DialOption {
	return func(o *dialOptions) {
		if n > 0 {
			o.inFlight = n
		}
	}
}

// WithClientShedding makes a full in-flight window fail Call with
// ErrBackpressure instead of blocking — the deterministic client-side
// backpressure signal.
func WithClientShedding() DialOption {
	return func(o *dialOptions) { o.shed = true }
}

// WithClientMaxFrame bounds reply frames the client will accept. Default
// DefaultMaxFrame.
func WithClientMaxFrame(n int) DialOption {
	return func(o *dialOptions) {
		if n > 0 {
			o.maxFrame = n
		}
	}
}

// WithDialTimeout bounds the TCP connect. Default 10s.
func WithDialTimeout(d time.Duration) DialOption {
	return func(o *dialOptions) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// callResult carries one reply (or the connection's death) to its waiter.
type callResult struct {
	b   []byte
	err error
}

// Client is one pipelined edge connection: concurrent-safe, many requests
// in flight matched to replies by request id, in-flight window bounded.
// One goroutine reads the socket; callers write under a mutex through a
// buffered writer flushed per call.
type Client struct {
	conn     net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex
	maxFrame int
	shed     bool

	window chan struct{}
	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan callResult

	done     chan struct{}
	failOnce sync.Once
	errv     atomic.Value
}

// Dial connects to an edge server.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	opt := dialOptions{inFlight: 1024, maxFrame: DefaultMaxFrame, timeout: 10 * time.Second}
	for _, o := range opts {
		o(&opt)
	}
	conn, err := net.DialTimeout("tcp", addr, opt.timeout)
	if err != nil {
		return nil, fmt.Errorf("netedge: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 16<<10),
		maxFrame: opt.maxFrame,
		shed:     opt.shed,
		window:   make(chan struct{}, opt.inFlight),
		pending:  make(map[uint64]chan callResult),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
// Idempotent.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// fail records the connection's terminal error once, closes the socket,
// and fails every pending call.
func (c *Client) fail(err error) {
	c.failOnce.Do(func() {
		c.errv.Store(err)
		close(c.done)
		c.conn.Close()
		c.pmu.Lock()
		for id, ch := range c.pending {
			delete(c.pending, id)
			ch <- callResult{err: err}
		}
		c.pmu.Unlock()
	})
}

// err reports why the connection died.
func (c *Client) err() error {
	if e, ok := c.errv.Load().(error); ok {
		return e
	}
	return ErrClosed
}

// readLoop is the one socket reader: it matches reply frames to pending
// calls by request id. Reply payloads are copied out of the reused read
// buffer before delivery, so callers own what they receive.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 16<<10)
	buf := make([]byte, 0, 4096)
	for {
		f, nbuf, err := readFrame(br, buf, c.maxFrame)
		buf = nbuf
		if err != nil {
			c.fail(fmt.Errorf("netedge: read: %w", err))
			return
		}
		var res callResult
		switch f.kind {
		case frameOK:
			if len(f.body) > 0 {
				res.b = append([]byte(nil), f.body...)
			}
		case frameError:
			res.err = &WireError{Msg: string(f.body)}
		default:
			c.fail(fmt.Errorf("%w: server sent kind 0x%02x", ErrBadFrame, f.kind))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.pmu.Unlock()
		if ok {
			ch <- res
		}
	}
}

// Call sends one request frame and waits for its reply. payload is only
// read before Call returns; the reply is the caller's to keep. Server-side
// rejections come back as *WireError carrying the gateway's error text.
func (c *Client) Call(ctx context.Context, topic string, payload []byte) ([]byte, error) {
	// Acquire an in-flight slot: the bounded window that keeps one client
	// from queueing unboundedly into a slow server.
	if c.shed {
		select {
		case c.window <- struct{}{}:
		default:
			return nil, ErrBackpressure
		}
	} else {
		select {
		case c.window <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			return nil, c.err()
		}
	}
	defer func() { <-c.window }()

	id := c.nextID.Add(1)
	ch := make(chan callResult, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()

	bp := framePool.Get().(*[]byte)
	*bp = appendFrame((*bp)[:0], frameRequest, id, topic, payload)
	c.wmu.Lock()
	_, werr := c.bw.Write(*bp)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	framePool.Put(bp)
	if werr != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.fail(fmt.Errorf("netedge: write: %w", werr))
		return nil, c.err()
	}

	select {
	case r := <-ch:
		return r.b, r.err
	case <-ctx.Done():
		// Abandon the call: the reader drops the reply when it arrives.
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, ctx.Err()
	}
}

// OpenSession performs the signed session handshake over this connection,
// asking for codec ("" for the gateway default). The granted token is
// bound to this connection: presenting it over another one fails with
// middleware.ErrSessionBound.
func (c *Client) OpenSession(ctx context.Context, principal string, cert pki.Certificate, key *dcrypto.PrivateKey, codec string) (middleware.SessionGrant, error) {
	hello, err := middleware.NewSessionHello(principal, cert, key)
	if err != nil {
		return middleware.SessionGrant{}, err
	}
	hello.Codec = codec
	b, err := json.Marshal(hello)
	if err != nil {
		return middleware.SessionGrant{}, fmt.Errorf("netedge: encode hello: %w", err)
	}
	reply, err := c.Call(ctx, middleware.TopicSessionOpen, b)
	if err != nil {
		return middleware.SessionGrant{}, err
	}
	var grant middleware.SessionGrant
	if err := json.Unmarshal(reply, &grant); err != nil {
		return middleware.SessionGrant{}, fmt.Errorf("netedge: decode grant: %w", err)
	}
	return grant, nil
}

// Submit encodes req under codec (the one the session grant negotiated)
// and submits it; the reply is the gateway's submission ID.
func (c *Client) Submit(ctx context.Context, req *middleware.Request, codec string) (string, error) {
	b, err := middleware.EncodeWireRequest(req, codec)
	if err != nil {
		return "", fmt.Errorf("netedge: encode request: %w", err)
	}
	reply, err := c.Call(ctx, middleware.TopicSubmit, b)
	if err != nil {
		return "", err
	}
	return string(reply), nil
}

// SubmitRaw submits pre-encoded wire bytes — the loadgen path, where the
// same encoded frame template is reused across the steady state.
func (c *Client) SubmitRaw(ctx context.Context, wire []byte) (string, error) {
	reply, err := c.Call(ctx, middleware.TopicSubmit, wire)
	if err != nil {
		return "", err
	}
	return string(reply), nil
}

// CloseSession ends a session opened over this connection.
func (c *Client) CloseSession(ctx context.Context, token string) error {
	_, err := c.Call(ctx, middleware.TopicSessionClose, []byte(token))
	return err
}

// NotifyRevocation tells the gateway the revocation plane moved.
func (c *Client) NotifyRevocation(ctx context.Context) (middleware.RevocationNotice, error) {
	reply, err := c.Call(ctx, middleware.TopicRevocationNotify, nil)
	if err != nil {
		return middleware.RevocationNotice{}, err
	}
	var notice middleware.RevocationNotice
	if err := json.Unmarshal(reply, &notice); err != nil {
		return middleware.RevocationNotice{}, fmt.Errorf("netedge: decode revocation notice: %w", err)
	}
	return notice, nil
}
