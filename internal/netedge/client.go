package netedge

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/pki"
)

// dialOptions collects the client knobs; see the With* constructors.
type dialOptions struct {
	inFlight int
	shed     bool
	maxFrame int
	timeout  time.Duration
}

// DialOption configures a Client.
type DialOption func(*dialOptions)

// WithInFlight bounds how many requests the client keeps in flight on the
// connection at once — the pipelining window. A full window blocks Call
// (default) or, with WithClientShedding, fails it with ErrBackpressure.
// Default 1024.
func WithInFlight(n int) DialOption {
	return func(o *dialOptions) {
		if n > 0 {
			o.inFlight = n
		}
	}
}

// WithClientShedding makes a full in-flight window fail Call with
// ErrBackpressure instead of blocking — the deterministic client-side
// backpressure signal.
func WithClientShedding() DialOption {
	return func(o *dialOptions) { o.shed = true }
}

// WithClientMaxFrame bounds reply frames the client will accept. Default
// DefaultMaxFrame.
func WithClientMaxFrame(n int) DialOption {
	return func(o *dialOptions) {
		if n > 0 {
			o.maxFrame = n
		}
	}
}

// WithDialTimeout bounds the TCP connect. Default 10s.
func WithDialTimeout(d time.Duration) DialOption {
	return func(o *dialOptions) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// callResult carries one reply (or the connection's death) to its waiter.
type callResult struct {
	b   []byte
	err error
}

// Client is one pipelined edge connection: concurrent-safe, many requests
// in flight matched to replies by request id, in-flight window bounded.
// One goroutine reads the socket; callers write under a mutex through a
// buffered writer flushed per call.
type Client struct {
	conn     net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex
	maxFrame int
	shed     bool

	window chan struct{}
	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan callResult

	done     chan struct{}
	failOnce sync.Once
	errv     atomic.Value
}

// Dial connects to an edge server.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	opt := dialOptions{inFlight: 1024, maxFrame: DefaultMaxFrame, timeout: 10 * time.Second}
	for _, o := range opts {
		o(&opt)
	}
	conn, err := net.DialTimeout("tcp", addr, opt.timeout)
	if err != nil {
		return nil, fmt.Errorf("netedge: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 16<<10),
		maxFrame: opt.maxFrame,
		shed:     opt.shed,
		window:   make(chan struct{}, opt.inFlight),
		pending:  make(map[uint64]chan callResult),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
// Idempotent.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// fail records the connection's terminal error once, closes the socket,
// and fails every pending call.
func (c *Client) fail(err error) {
	c.failOnce.Do(func() {
		c.errv.Store(err)
		close(c.done)
		c.conn.Close()
		c.pmu.Lock()
		for id, ch := range c.pending {
			delete(c.pending, id)
			ch <- callResult{err: err}
		}
		c.pmu.Unlock()
	})
}

// err reports why the connection died.
func (c *Client) err() error {
	if e, ok := c.errv.Load().(error); ok {
		return e
	}
	return ErrClosed
}

// readLoop is the one socket reader: it matches reply frames to pending
// calls by request id. Reply payloads are copied out of the reused read
// buffer before delivery, so callers own what they receive.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 16<<10)
	buf := make([]byte, 0, 4096)
	for {
		f, nbuf, err := readFrame(br, buf, c.maxFrame)
		buf = nbuf
		if err != nil {
			c.fail(fmt.Errorf("netedge: read: %w", err))
			return
		}
		var res callResult
		switch f.kind {
		case frameOK:
			if len(f.body) > 0 {
				res.b = append([]byte(nil), f.body...)
			}
		case frameError:
			res.err = &WireError{Msg: string(f.body)}
		default:
			c.fail(fmt.Errorf("%w: server sent kind 0x%02x", ErrBadFrame, f.kind))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.pmu.Unlock()
		if ok {
			ch <- res
		}
	}
}

// PendingCall is one request in flight: the handle CallAsync returns. The
// reply arrives through Wait, which also releases the call's in-flight
// window slot — every PendingCall must be waited on eventually (batched-ack
// pipelining waits after the sends), or the window leaks a slot.
type PendingCall struct {
	c  *Client
	id uint64
	ch chan callResult

	mu       sync.Mutex
	settled  bool
	res      callResult
	released bool
}

// release frees the call's in-flight window slot, exactly once.
func (p *PendingCall) release() {
	if !p.released {
		p.released = true
		<-p.c.window
	}
}

// Wait blocks until the reply arrives (or ctx ends) and returns it. A
// context abandonment settles the call with ctx.Err(): the reader drops the
// reply when it arrives. After the first settlement, Wait returns the same
// result to every caller.
func (p *PendingCall) Wait(ctx context.Context) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.settled {
		return p.res.b, p.res.err
	}
	select {
	case r := <-p.ch:
		p.res = r
	case <-ctx.Done():
		// Abandon the call: the reader drops the reply when it arrives.
		p.c.pmu.Lock()
		delete(p.c.pending, p.id)
		p.c.pmu.Unlock()
		p.res = callResult{err: ctx.Err()}
	}
	p.settled = true
	p.release()
	return p.res.b, p.res.err
}

// Call sends one request frame and waits for its reply. payload is only
// read before Call returns; the reply is the caller's to keep. Server-side
// rejections come back as *WireError carrying the gateway's error text.
func (c *Client) Call(ctx context.Context, topic string, payload []byte) ([]byte, error) {
	p, err := c.CallAsync(ctx, topic, payload)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// CallAsync sends one request frame and returns without waiting for the
// reply — the pipelining half of Call. The caller collects the reply with
// Wait; sending a batch of CallAsyncs and then waiting turns N round trips
// into one flight of frames and one flight of acks. payload is only read
// before CallAsync returns. An error here means the frame never left
// (backpressure shed or a dead connection) and no PendingCall exists.
func (c *Client) CallAsync(ctx context.Context, topic string, payload []byte) (*PendingCall, error) {
	// Acquire an in-flight slot: the bounded window that keeps one client
	// from queueing unboundedly into a slow server. The slot belongs to the
	// PendingCall until Wait settles it.
	if c.shed {
		select {
		case c.window <- struct{}{}:
		default:
			return nil, ErrBackpressure
		}
	} else {
		select {
		case c.window <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			return nil, c.err()
		}
	}

	id := c.nextID.Add(1)
	ch := make(chan callResult, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()

	bp := framePool.Get().(*[]byte)
	*bp = appendFrame((*bp)[:0], frameRequest, id, topic, payload)
	c.wmu.Lock()
	_, werr := c.bw.Write(*bp)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	framePool.Put(bp)
	if werr != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		<-c.window
		c.fail(fmt.Errorf("netedge: write: %w", werr))
		return nil, c.err()
	}
	return &PendingCall{c: c, id: id, ch: ch}, nil
}

// OpenSession performs the signed session handshake over this connection,
// asking for codec ("" for the gateway default). The granted token is
// bound to this connection: presenting it over another one fails with
// middleware.ErrSessionBound.
func (c *Client) OpenSession(ctx context.Context, principal string, cert pki.Certificate, key *dcrypto.PrivateKey, codec string) (middleware.SessionGrant, error) {
	hello, err := middleware.NewSessionHello(principal, cert, key)
	if err != nil {
		return middleware.SessionGrant{}, err
	}
	hello.Codec = codec
	b, err := json.Marshal(hello)
	if err != nil {
		return middleware.SessionGrant{}, fmt.Errorf("netedge: encode hello: %w", err)
	}
	reply, err := c.Call(ctx, middleware.TopicSessionOpen, b)
	if err != nil {
		return middleware.SessionGrant{}, err
	}
	var grant middleware.SessionGrant
	if err := json.Unmarshal(reply, &grant); err != nil {
		return middleware.SessionGrant{}, fmt.Errorf("netedge: decode grant: %w", err)
	}
	return grant, nil
}

// Submit encodes req under codec (the one the session grant negotiated)
// and submits it; the reply is the gateway's submission ID.
func (c *Client) Submit(ctx context.Context, req *middleware.Request, codec string) (string, error) {
	b, err := middleware.EncodeWireRequest(req, codec)
	if err != nil {
		return "", fmt.Errorf("netedge: encode request: %w", err)
	}
	reply, err := c.Call(ctx, middleware.TopicSubmit, b)
	if err != nil {
		return "", err
	}
	return string(reply), nil
}

// SubmitRaw submits pre-encoded wire bytes — the loadgen path, where the
// same encoded frame template is reused across the steady state.
func (c *Client) SubmitRaw(ctx context.Context, wire []byte) (string, error) {
	reply, err := c.Call(ctx, middleware.TopicSubmit, wire)
	if err != nil {
		return "", err
	}
	return string(reply), nil
}

// PendingSubmit is one submission in flight; Wait returns the gateway's
// submission ID. Like PendingCall, it must be waited on eventually.
type PendingSubmit struct {
	p *PendingCall
}

// Wait blocks until the submission's ack arrives and returns the gateway's
// submission ID.
func (s *PendingSubmit) Wait(ctx context.Context) (string, error) {
	reply, err := s.p.Wait(ctx)
	if err != nil {
		return "", err
	}
	return string(reply), nil
}

// SubmitAsync encodes and sends req without waiting for the ack — the
// client half of batched submission pipelining. Fire a batch of
// SubmitAsyncs (e.g. one gateway-side group), then Wait on each
// PendingSubmit to collect the acks in one flight.
func (c *Client) SubmitAsync(ctx context.Context, req *middleware.Request, codec string) (*PendingSubmit, error) {
	b, err := middleware.EncodeWireRequest(req, codec)
	if err != nil {
		return nil, fmt.Errorf("netedge: encode request: %w", err)
	}
	p, err := c.CallAsync(ctx, middleware.TopicSubmit, b)
	if err != nil {
		return nil, err
	}
	return &PendingSubmit{p: p}, nil
}

// SubmitRawAsync sends pre-encoded wire bytes without waiting for the ack —
// SubmitAsync for the loadgen path's reused frame templates.
func (c *Client) SubmitRawAsync(ctx context.Context, wire []byte) (*PendingSubmit, error) {
	p, err := c.CallAsync(ctx, middleware.TopicSubmit, wire)
	if err != nil {
		return nil, err
	}
	return &PendingSubmit{p: p}, nil
}

// CloseSession ends a session opened over this connection.
func (c *Client) CloseSession(ctx context.Context, token string) error {
	_, err := c.Call(ctx, middleware.TopicSessionClose, []byte(token))
	return err
}

// NotifyRevocation tells the gateway the revocation plane moved.
func (c *Client) NotifyRevocation(ctx context.Context) (middleware.RevocationNotice, error) {
	reply, err := c.Call(ctx, middleware.TopicRevocationNotify, nil)
	if err != nil {
		return middleware.RevocationNotice{}, err
	}
	var notice middleware.RevocationNotice
	if err := json.Unmarshal(reply, &notice); err != nil {
		return middleware.RevocationNotice{}, fmt.Errorf("netedge: decode revocation notice: %w", err)
	}
	return notice, nil
}
