// Package netedge is the real network edge of the gateway: a TCP listener
// and dialer that carry the middleware wire protocol — binary codec v2
// frames and JSON alike — over actual sockets, where everything before it
// ran on the in-process transport substrate.
//
// # Stream framing
//
// TCP is a byte stream, so each wire message rides in a stream frame:
//
//	uint32 (big endian)  length of everything that follows
//	byte                 kind: 0x01 request, 0x02 ok reply, 0x03 error reply
//	uvarint              request id (client-assigned, echoed in the reply)
//	requests only:       uvarint topic length, topic bytes
//	rest                 payload (reply text for error replies)
//
// The payload is the same bytes the in-process transport carries for the
// topic: a codec v2 0xDC frame or JSON document for gateway.submit (the
// gateway sniffs, exactly as before), a JSON SessionHello for
// session.open, a bare token for session.close. Length prefixes are
// validated against the configured maximum before any allocation, and the
// payload is handed to the handler zero-copy from the connection's reused
// read buffer — the decode path from socket to middleware.ParseEnvelope
// never copies a submission.
//
// # Connections, backpressure, and deadlines
//
// The Server runs a sharded accept plane (several goroutines accepting on
// one listener; the kernel load-balances) and two goroutines per
// connection: a reader that decodes frames and runs the handler inline —
// preserving per-connection submission order end to end — and a writer
// draining a bounded outbound queue. The queue is never unbounded: when a
// peer stops draining replies the enqueue either blocks (default,
// propagating backpressure to the socket and from there to the client) or,
// with WithShedding, sheds the connection with ErrBackpressure. Reads and
// writes both carry deadlines, so a dead peer costs an idle window, not a
// leaked connection.
//
// # Session binding
//
// Every connection gets a unique transport identity, stamped on each
// request (middleware.Request.TransportID) and on every session opened
// through it (SessionManager.OpenBound): a session token minted on one
// connection is rejected with middleware.ErrSessionBound when presented
// over any other, closing the token-replay surface left open by
// transport-less sessions. When a connection dies the server's close hook
// (cmd/gateway wires SessionManager.EvictTransport) reaps its bound
// sessions immediately.
//
// The Client is the matching dialer: concurrent-safe, pipelined (many
// requests in flight over one connection, matched by request id), with a
// bounded in-flight window that blocks or sheds like the server side.
// cmd/loadgen multiplexes tens of thousands of sessions over a small
// connection pool this way.
package netedge
