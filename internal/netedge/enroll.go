package netedge

import (
	"context"
	"encoding/json"
	"fmt"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/pki"
)

// TopicEnroll is the trust-bootstrap topic a remote-process client uses to
// get its public key certified by the gateway's CA before it can open
// sessions. The in-process world never needed it — client and gateway
// shared a CA object — but separate processes share nothing but the
// socket.
const TopicEnroll = "pki.enroll"

// enrollRequest is the wire form of an enrollment: an identity claiming a
// public key (SEC1 bytes). Deployments with a real registration authority
// would authenticate this; the edge demo and loadgen trust first-come.
type enrollRequest struct {
	Identity  string `json:"identity"`
	PublicKey []byte `json:"publicKey"`
}

// EnrollmentHandler wraps next with TopicEnroll service from ca: every
// other topic passes through untouched. onEnroll, if non-nil, runs after a
// successful enrollment — the hook cmd/gateway uses to add the new
// principal to the channel directory so its envelopes can be sealed.
// cmd/gateway composes this around Gateway.ServeWire when -listen is set
// so remote loadgen principals can bootstrap trust over the same
// connection they will open sessions on.
func EnrollmentHandler(ca *pki.CA, onEnroll func(identity string, pub dcrypto.PublicKey), next Handler) Handler {
	return HandlerFunc(func(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
		if topic != TopicEnroll {
			return next.ServeWire(ctx, topic, payload, transportID)
		}
		var req enrollRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("netedge: decode enroll request: %w", err)
		}
		pub, err := dcrypto.ParsePublicKey(req.PublicKey)
		if err != nil {
			return nil, fmt.Errorf("netedge: enroll %s: %w", req.Identity, err)
		}
		cert, err := ca.Enroll(req.Identity, pub)
		if err != nil {
			return nil, fmt.Errorf("netedge: enroll %s: %w", req.Identity, err)
		}
		if onEnroll != nil {
			onEnroll(req.Identity, pub)
		}
		b, err := json.Marshal(cert)
		if err != nil {
			return nil, fmt.Errorf("netedge: encode certificate: %w", err)
		}
		return b, nil
	})
}

// Enroll asks the server's CA to certify pub for identity and returns the
// certificate — the first call a fresh remote principal makes, before
// OpenSession.
func (c *Client) Enroll(ctx context.Context, identity string, pub dcrypto.PublicKey) (pki.Certificate, error) {
	b, err := json.Marshal(enrollRequest{Identity: identity, PublicKey: pub.Bytes()})
	if err != nil {
		return pki.Certificate{}, fmt.Errorf("netedge: encode enroll request: %w", err)
	}
	reply, err := c.Call(ctx, TopicEnroll, b)
	if err != nil {
		return pki.Certificate{}, err
	}
	var cert pki.Certificate
	if err := json.Unmarshal(reply, &cert); err != nil {
		return pki.Certificate{}, fmt.Errorf("netedge: decode certificate: %w", err)
	}
	return cert, nil
}

// compile-time check: the middleware gateway satisfies Handler.
var _ Handler = (*middleware.Gateway)(nil)
