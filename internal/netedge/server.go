package netedge

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/telemetry"
)

// Handler serves decoded wire messages — the interface the middleware
// Gateway satisfies with ServeWire. transportID is the serving
// connection's unique identity, the value session binding pins tokens to.
// The payload slice aliases the connection's read buffer and is only valid
// until ServeWire returns; implementations must not retain it (the
// gateway's encrypt stage replaces the payload before any holding stage
// buffers a request, so the shipped pipelines satisfy this for free).
type Handler interface {
	ServeWire(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error)

// ServeWire implements Handler.
func (f HandlerFunc) ServeWire(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
	return f(ctx, topic, payload, transportID)
}

// options collects the server knobs; see the With* constructors.
type options struct {
	acceptLoops  int
	maxFrame     int
	queueDepth   int
	shed         bool
	idleTimeout  time.Duration
	writeTimeout time.Duration
	connClose    func(transportID string)
}

// Option configures a Server.
type Option func(*options)

// WithAcceptLoops shards the accept plane across n goroutines on the one
// listener (the kernel load-balances wakeups), so a connection storm is
// not serialized through a single accepter. Default 4.
func WithAcceptLoops(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.acceptLoops = n
		}
	}
}

// WithMaxFrame bounds the stream frame size accepted and produced.
// Default DefaultMaxFrame (1 MiB).
func WithMaxFrame(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.maxFrame = n
		}
	}
}

// WithQueueDepth bounds each connection's outbound reply queue. Default 64.
func WithQueueDepth(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.queueDepth = n
		}
	}
}

// WithShedding switches full-queue behavior from blocking (backpressure
// propagates to the socket and stalls the peer's pipeline) to shedding:
// the connection is counted and closed with ErrBackpressure. Shedding is
// the posture for edges that must protect themselves from slow consumers
// at the cost of disconnecting them.
func WithShedding() Option {
	return func(o *options) { o.shed = true }
}

// WithIdleTimeout bounds how long a connection may sit without delivering
// a frame before the read deadline reaps it. Default 5m; 0 disables.
func WithIdleTimeout(d time.Duration) Option {
	return func(o *options) { o.idleTimeout = d }
}

// WithWriteTimeout bounds each reply write. Default 30s; 0 disables.
func WithWriteTimeout(d time.Duration) Option {
	return func(o *options) { o.writeTimeout = d }
}

// WithConnCloseHook runs fn with the connection's transport identity after
// the connection fully tears down — the hook cmd/gateway uses to reap the
// connection's bound sessions via SessionManager.EvictTransport.
func WithConnCloseHook(fn func(transportID string)) Option {
	return func(o *options) { o.connClose = fn }
}

// framePool recycles encode buffers for reply and request frames: the
// writer goroutine returns each buffer after the socket write, so steady
// state allocates nothing per reply.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// Server is the TCP edge: a sharded accept plane feeding per-connection
// reader/writer pairs, every decoded frame dispatched to the Handler with
// the connection's transport identity. Create with Serve or Listen; stop
// with Close.
type Server struct {
	h      Handler
	ln     net.Listener
	opt    options
	ctx    context.Context
	cancel context.CancelFunc

	connSeq   atomic.Uint64
	live      atomic.Int64
	accepted  atomic.Uint64
	closedCt  atomic.Uint64
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	sheds     atomic.Uint64
	frameErrs atomic.Uint64
	requests  atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// EdgeStats is a snapshot of the server's counters, the numbers the
// confmw_edge_* metric families export.
type EdgeStats struct {
	// Live is the number of currently open connections.
	Live int64
	// Accepted and Closed count connections over the server's lifetime.
	Accepted uint64
	Closed   uint64
	// BytesIn and BytesOut count frame bytes crossing the sockets
	// (length prefixes included).
	BytesIn  uint64
	BytesOut uint64
	// Sheds counts connections dropped because their bounded outbound
	// queue was full in shedding mode.
	Sheds uint64
	// FrameErrors counts malformed or oversized stream frames (each also
	// closes its connection: framing errors are not recoverable on a
	// stream).
	FrameErrors uint64
	// Requests counts request frames dispatched to the handler.
	Requests uint64
}

// Serve starts the edge over an established listener. The returned server
// is already accepting; Close stops it and tears down every connection.
func Serve(ln net.Listener, h Handler, opts ...Option) *Server {
	opt := options{
		acceptLoops:  4,
		maxFrame:     DefaultMaxFrame,
		queueDepth:   64,
		idleTimeout:  5 * time.Minute,
		writeTimeout: 30 * time.Second,
	}
	for _, o := range opts {
		o(&opt)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		h:      h,
		ln:     ln,
		opt:    opt,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	for i := 0; i < opt.acceptLoops; i++ {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	return s
}

// Listen binds addr (e.g. ":9444", "127.0.0.1:0") and serves the edge on
// it.
func Listen(addr string, h Handler, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netedge: listen %s: %w", addr, err)
	}
	return Serve(ln, h, opts...), nil
}

// Addr reports the listener's address (the resolved port for ":0" binds).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live connection, and waits for all
// connection goroutines to finish. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Stats snapshots the server's counters.
func (s *Server) Stats() EdgeStats {
	return EdgeStats{
		Live:        s.live.Load(),
		Accepted:    s.accepted.Load(),
		Closed:      s.closedCt.Load(),
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		Sheds:       s.sheds.Load(),
		FrameErrors: s.frameErrs.Load(),
		Requests:    s.requests.Load(),
	}
}

// RegisterMetrics registers the edge counters into reg under the
// confmw_edge_* naming scheme.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) error {
	if err := reg.GaugeFunc("confmw_edge_connections_live",
		"Currently open edge connections.", func() float64 { return float64(s.live.Load()) }); err != nil {
		return err
	}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"confmw_edge_connections_accepted_total", "Connections accepted by the edge.", s.accepted.Load},
		{"confmw_edge_connections_closed_total", "Connections fully torn down.", s.closedCt.Load},
		{"confmw_edge_bytes_in_total", "Frame bytes read off edge sockets.", s.bytesIn.Load},
		{"confmw_edge_bytes_out_total", "Frame bytes written to edge sockets.", s.bytesOut.Load},
		{"confmw_edge_backpressure_sheds_total", "Connections shed because their outbound queue was full.", s.sheds.Load},
		{"confmw_edge_frame_errors_total", "Malformed or oversized stream frames.", s.frameErrs.Load},
		{"confmw_edge_requests_total", "Request frames dispatched to the handler.", s.requests.Load},
	} {
		if err := reg.CounterFunc(c.name, c.help, c.fn); err != nil {
			return err
		}
	}
	return nil
}

// acceptLoop is one shard of the accept plane.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd pressure, aborted handshake):
			// back off briefly instead of spinning the accept shard.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.live.Add(1)
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// edgeConn is one live connection: its transport identity and its bounded
// outbound queue.
type edgeConn struct {
	c   net.Conn
	id  string
	out chan *[]byte
}

// serveConn runs one connection to completion: writer goroutine draining
// the bounded queue, reader loop inline (frame decode, handler dispatch,
// reply enqueue), then teardown — close, untrack, counters, close hook.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	// The transport identity: unique for the server's lifetime (sequence
	// number) and diagnosable (peer address). Sessions bind to this string.
	ec := &edgeConn{
		c:   c,
		id:  fmt.Sprintf("tcp:%d:%s", s.connSeq.Add(1), c.RemoteAddr()),
		out: make(chan *[]byte, s.opt.queueDepth),
	}
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		ec.writeLoop(s)
	}()
	s.readLoop(ec)
	close(ec.out)
	wwg.Wait()
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.live.Add(-1)
	s.closedCt.Add(1)
	if hook := s.opt.connClose; hook != nil {
		hook(ec.id)
	}
}

// readLoop decodes frames off the socket and dispatches them to the
// handler inline — per-connection submission order is therefore the order
// requests hit the chain and the orderer. Returns on the first read,
// framing, or enqueue failure; framing failures close the connection
// (stream framing cannot resynchronize) and count in FrameErrors.
func (s *Server) readLoop(ec *edgeConn) {
	br := bufio.NewReaderSize(ec.c, 16<<10)
	// The read buffer is per-connection and reused for every frame: the
	// decode path hands the gateway payload bytes zero-copy, which is safe
	// because ServeWire borrows rather than retains them.
	buf := make([]byte, 0, 4096)
	for {
		if s.opt.idleTimeout > 0 {
			_ = ec.c.SetReadDeadline(time.Now().Add(s.opt.idleTimeout))
		}
		f, nbuf, err := readFrame(br, buf, s.opt.maxFrame)
		buf = nbuf
		if err != nil {
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooBig) {
				s.frameErrs.Add(1)
			}
			return
		}
		s.bytesIn.Add(uint64(len(buf)) + 4)
		if f.kind != frameRequest {
			s.frameErrs.Add(1)
			return
		}
		s.requests.Add(1)
		reply, herr := s.h.ServeWire(s.ctx, f.topic, f.body, ec.id)
		bp := framePool.Get().(*[]byte)
		if herr != nil {
			*bp = appendFrame((*bp)[:0], frameError, f.id, "", []byte(herr.Error()))
		} else {
			*bp = appendFrame((*bp)[:0], frameOK, f.id, "", reply)
		}
		if !ec.enqueue(s, bp) {
			return
		}
	}
}

// enqueue places an encoded reply on the bounded outbound queue. Blocking
// mode stalls the reader (and through TCP, the peer) until the writer
// drains — bounded backpressure, never an unbounded queue. Shedding mode
// drops the connection instead, counting the shed. Returns false when the
// connection should die.
func (ec *edgeConn) enqueue(s *Server, bp *[]byte) bool {
	if s.opt.shed {
		select {
		case ec.out <- bp:
			return true
		default:
			s.sheds.Add(1)
			framePool.Put(bp)
			return false
		}
	}
	select {
	case ec.out <- bp:
		return true
	case <-s.ctx.Done():
		framePool.Put(bp)
		return false
	}
}

// writeLoop drains the outbound queue to the socket under the write
// deadline. On a write failure it closes the connection (unblocking the
// reader) but keeps draining the queue so a blocked reader enqueue can
// never deadlock teardown.
func (ec *edgeConn) writeLoop(s *Server) {
	failed := false
	for bp := range ec.out {
		if !failed {
			if s.opt.writeTimeout > 0 {
				_ = ec.c.SetWriteDeadline(time.Now().Add(s.opt.writeTimeout))
			}
			if _, err := ec.c.Write(*bp); err != nil {
				failed = true
				ec.c.Close()
			} else {
				s.bytesOut.Add(uint64(len(*bp)))
			}
		}
		framePool.Put(bp)
	}
}
