package netedge

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
)

// edgeEnv is one gateway process in miniature: CA, dynamic directory,
// session-MAC binary-codec pipeline, orderer, and the TCP edge in front —
// the same composition cmd/gateway -listen builds.
type edgeEnv struct {
	ca  *pki.CA
	dir *middleware.SyncDirectory
	gw  *middleware.Gateway
	ord *ordering.Service
	srv *Server
}

func newEdgeEnv(t testing.TB, opts ...Option) *edgeEnv {
	t.Helper()
	ca, err := pki.NewCA("edge-ca")
	if err != nil {
		t.Fatal(err)
	}
	dir := middleware.NewSyncDirectory()
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "reqauth": "mac"}},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
			{Name: middleware.StageAudit},
		},
		Codec: middleware.CodecBinary,
	}
	env := middleware.Env{CAKey: ca.PublicKey(), Directory: dir, Log: audit.NewLog(), Revoker: ca}
	ord := ordering.New("op", ordering.VisibilityEnvelope)
	// The orderer refuses channels nobody consumes; tests that care about
	// delivery add their own recording subscriber on top.
	ord.Subscribe("deals", func(ledger.Block) error { return nil })
	gw, err := middleware.NewGateway("edge-gw", cfg, env, ord)
	if err != nil {
		t.Fatal(err)
	}
	h := EnrollmentHandler(ca, func(identity string, pub dcrypto.PublicKey) {
		dir.AddMember("deals", identity, pub)
	}, gw)
	opts = append([]Option{
		WithConnCloseHook(func(transportID string) { gw.Sessions().EvictTransport(transportID) }),
	}, opts...)
	srv, err := Listen("127.0.0.1:0", h, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &edgeEnv{ca: ca, dir: dir, gw: gw, ord: ord, srv: srv}
}

func (e *edgeEnv) addr() string { return e.srv.Addr().String() }

// dialEdge returns a connected client, closed with the test.
func (e *edgeEnv) dialEdge(t testing.TB, opts ...DialOption) *Client {
	t.Helper()
	c, err := Dial(e.addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// principal is one enrolled remote identity with an open session.
type principal struct {
	name  string
	key   *dcrypto.PrivateKey
	cert  pki.Certificate
	grant middleware.SessionGrant
}

// bootstrap runs the full remote-principal flow over c: keygen, enroll,
// session open with binary codec.
func bootstrap(t testing.TB, c *Client, name string) *principal {
	t.Helper()
	ctx := context.Background()
	key, err := dcrypto.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := c.Enroll(ctx, name, key.Public())
	if err != nil {
		t.Fatalf("enroll %s: %v", name, err)
	}
	grant, err := c.OpenSession(ctx, name, cert, key, middleware.CodecBinary)
	if err != nil {
		t.Fatalf("open session %s: %v", name, err)
	}
	return &principal{name: name, key: key, cert: cert, grant: grant}
}

// submission encodes one MAC-authenticated binary submission for p.
func (p *principal) submission(t testing.TB, payload []byte, meta map[string]string) []byte {
	t.Helper()
	req := &middleware.Request{
		Channel: "deals", Principal: p.name, Payload: payload,
		SessionToken: p.grant.Token, Meta: meta,
	}
	middleware.MACRequest(req, p.grant.MacKey)
	wire, err := middleware.EncodeWireRequest(req, middleware.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestEdgeRoundtrip(t *testing.T) {
	e := newEdgeEnv(t)
	c := e.dialEdge(t)
	ctx := context.Background()
	p := bootstrap(t, c, "alice")
	if p.grant.Codec != middleware.CodecBinary {
		t.Fatalf("grant codec = %q, want binary", p.grant.Codec)
	}
	id, err := c.SubmitRaw(ctx, p.submission(t, []byte("trade-1"), nil))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if id == "" {
		t.Fatal("empty submission id")
	}
	// The typed Submit path too: fresh request, MAC'd, encoded by the client.
	req := &middleware.Request{Channel: "deals", Principal: "alice", Payload: []byte("trade-2"), SessionToken: p.grant.Token}
	middleware.MACRequest(req, p.grant.MacKey)
	if _, err := c.Submit(ctx, req, middleware.CodecBinary); err != nil {
		t.Fatalf("typed submit: %v", err)
	}
	// JSON framing over the same socket: the gateway sniffs per message.
	jreq := &middleware.Request{Channel: "deals", Principal: "alice", Payload: []byte("trade-3"), SessionToken: p.grant.Token}
	middleware.MACRequest(jreq, p.grant.MacKey)
	if _, err := c.Submit(ctx, jreq, middleware.CodecJSON); err != nil {
		t.Fatalf("json submit: %v", err)
	}
	if _, err := c.NotifyRevocation(ctx); err != nil {
		t.Fatalf("notify revocation: %v", err)
	}
	if err := c.CloseSession(ctx, p.grant.Token); err != nil {
		t.Fatalf("close session: %v", err)
	}
	// The closed token is dead even on its own connection.
	if _, err := c.SubmitRaw(ctx, p.submission(t, []byte("late"), nil)); err == nil {
		t.Fatal("submission on closed session accepted")
	}
	st := e.srv.Stats()
	if st.Requests < 6 || st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestEdgeSessionBound proves the tentpole security property: a session
// token minted on one TCP connection is rejected with ErrSessionBound when
// replayed over another, even by the very same principal with a valid MAC.
func TestEdgeSessionBound(t *testing.T) {
	e := newEdgeEnv(t)
	c1 := e.dialEdge(t)
	c2 := e.dialEdge(t)
	ctx := context.Background()
	p := bootstrap(t, c1, "alice")
	wire := p.submission(t, []byte("trade"), nil)
	if _, err := c1.SubmitRaw(ctx, wire); err != nil {
		t.Fatalf("submit on home connection: %v", err)
	}
	_, err := c2.SubmitRaw(ctx, wire)
	if err == nil {
		t.Fatal("cross-connection token replay accepted")
	}
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("want *WireError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), middleware.ErrSessionBound.Error()) {
		t.Fatalf("error %q does not carry ErrSessionBound", err)
	}
	// The rejection is not sticky: the home connection still works.
	if _, err := c1.SubmitRaw(ctx, wire); err != nil {
		t.Fatalf("home connection poisoned by replay attempt: %v", err)
	}
}

// TestEdgeConnKillEvictsSessions kills a connection mid-stream and proves
// (a) everything acknowledged before the kill was delivered to the orderer
// in submission order, and (b) the connection's bound sessions are reaped.
func TestEdgeConnKillEvictsSessions(t *testing.T) {
	e := newEdgeEnv(t)
	var mu sync.Mutex
	var delivered []string
	e.ord.Subscribe("deals", func(b ledger.Block) error {
		mu.Lock()
		for _, tx := range b.Txs {
			delivered = append(delivered, tx.Meta["seq"])
		}
		mu.Unlock()
		return nil
	})

	c := e.dialEdge(t)
	ctx := context.Background()
	p := bootstrap(t, c, "alice")
	const n = 32
	for i := 0; i < n; i++ {
		wire := p.submission(t, []byte("trade"), map[string]string{"seq": fmt.Sprint(i)})
		if _, err := c.SubmitRaw(ctx, wire); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	before := e.gw.Sessions().Stats()
	c.Close()

	// The close hook runs after full teardown; poll for the eviction.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.gw.Sessions().Stats().Evicted > before.Evicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not evicted after connection kill: %+v", e.gw.Sessions().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The token is gone entirely — a new connection gets "unknown", not
	// just "bound elsewhere".
	c2 := e.dialEdge(t)
	if _, err := c2.SubmitRaw(ctx, p.submission(t, []byte("late"), nil)); err == nil {
		t.Fatal("token of killed connection still usable")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != n {
		t.Fatalf("delivered %d of %d acknowledged submissions", len(delivered), n)
	}
	for i, seq := range delivered {
		if seq != fmt.Sprint(i) {
			t.Fatalf("delivery order broken at %d: got seq %q (full order %v)", i, seq, delivered)
		}
	}
}

// TestEdgePipelinedOrder writes a burst of raw request frames in one
// socket write — true pipelining, no per-request round trip — and proves
// the inline-handler reader preserves per-connection submission order all
// the way to the orderer.
func TestEdgePipelinedOrder(t *testing.T) {
	e := newEdgeEnv(t)
	var mu sync.Mutex
	var delivered []string
	e.ord.Subscribe("deals", func(b ledger.Block) error {
		mu.Lock()
		for _, tx := range b.Txs {
			delivered = append(delivered, tx.Meta["seq"])
		}
		mu.Unlock()
		return nil
	})
	c := e.dialEdge(t)
	p := bootstrap(t, c, "alice")

	conn, err := net.Dial("tcp", e.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Sessions bind to their connection, so the pipelined connection needs
	// its own. Handshake by hand on the raw socket.
	hello, err := middleware.NewSessionHello("alice", p.cert, p.key)
	if err != nil {
		t.Fatal(err)
	}
	hello.Codec = middleware.CodecBinary
	grant := openRaw(t, conn, hello)

	const n = 64
	var burst []byte
	for i := 0; i < n; i++ {
		req := &middleware.Request{
			Channel: "deals", Principal: "alice", Payload: []byte("trade"),
			SessionToken: grant.Token, Meta: map[string]string{"seq": fmt.Sprint(i)},
		}
		middleware.MACRequest(req, grant.MacKey)
		wire, err := middleware.EncodeWireRequest(req, middleware.CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		burst = appendFrame(burst, frameRequest, uint64(i+10), middleware.TopicSubmit, wire)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var buf []byte
	for i := 0; i < n; i++ {
		f, nbuf, err := readFrame(br, buf, DefaultMaxFrame)
		buf = nbuf
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if f.kind != frameOK {
			t.Fatalf("reply %d: kind 0x%02x body %q", i, f.kind, f.body)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != n {
		t.Fatalf("delivered %d of %d", len(delivered), n)
	}
	for i, seq := range delivered {
		if seq != fmt.Sprint(i) {
			t.Fatalf("pipelined order broken at %d: got seq %q", i, seq)
		}
	}
}

// openRaw performs session.open on a raw socket and decodes the grant.
func openRaw(t testing.TB, conn net.Conn, hello middleware.SessionHello) middleware.SessionGrant {
	t.Helper()
	b, err := json.Marshal(hello)
	if err != nil {
		t.Fatal(err)
	}
	frameBytes := appendFrame(nil, frameRequest, 1, middleware.TopicSessionOpen, b)
	if _, err := conn.Write(frameBytes); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	f, _, err := readFrame(br, nil, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != frameOK {
		t.Fatalf("session.open rejected: %s", f.body)
	}
	var grant middleware.SessionGrant
	if err := json.Unmarshal(f.body, &grant); err != nil {
		t.Fatal(err)
	}
	return grant
}

// TestEdgeConcurrentClients is the -race workout: many connections, each
// running the full enroll/open/submit/close flow concurrently.
func TestEdgeConcurrentClients(t *testing.T) {
	e := newEdgeEnv(t)
	const clients = 8
	const submits = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- func() error {
				c, err := Dial(e.addr())
				if err != nil {
					return err
				}
				defer c.Close()
				ctx := context.Background()
				name := fmt.Sprintf("client-%d", i)
				key, err := dcrypto.GenerateKey()
				if err != nil {
					return err
				}
				cert, err := c.Enroll(ctx, name, key.Public())
				if err != nil {
					return fmt.Errorf("enroll: %w", err)
				}
				grant, err := c.OpenSession(ctx, name, cert, key, middleware.CodecBinary)
				if err != nil {
					return fmt.Errorf("open: %w", err)
				}
				// Concurrent submitters over one connection exercise the
				// pipelining path: pending map, write mutex, window.
				var iwg sync.WaitGroup
				ierrs := make(chan error, 4)
				for w := 0; w < 4; w++ {
					iwg.Add(1)
					go func(w int) {
						defer iwg.Done()
						for s := 0; s < submits; s++ {
							req := &middleware.Request{
								Channel: "deals", Principal: name,
								Payload:      []byte(fmt.Sprintf("trade-%d-%d", w, s)),
								SessionToken: grant.Token,
							}
							middleware.MACRequest(req, grant.MacKey)
							if _, err := c.Submit(ctx, req, middleware.CodecBinary); err != nil {
								ierrs <- err
								return
							}
						}
					}(w)
				}
				iwg.Wait()
				close(ierrs)
				for err := range ierrs {
					return fmt.Errorf("submit: %w", err)
				}
				return c.CloseSession(ctx, grant.Token)
			}()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.srv.Stats()
	if want := uint64(clients * 4 * submits); st.Requests < want {
		t.Fatalf("requests = %d, want >= %d", st.Requests, want)
	}
}

// TestEdgeMalformedFrames drives framing junk — the same shapes the
// FuzzWireRequest corpus seeds — at the edge over real sockets: hostile
// length prefixes, truncated frames, unknown kinds. The server must
// reject and close, never panic, and keep serving fresh connections.
func TestEdgeMalformedFrames(t *testing.T) {
	e := newEdgeEnv(t, WithMaxFrame(1<<16))
	raws := [][]byte{
		// Hostile length prefix: 4 GiB frame announced.
		{0xff, 0xff, 0xff, 0xff},
		// Length below the frame minimum.
		{0x00, 0x00, 0x00, 0x01, 0x01},
		// Unknown frame kind.
		appendFrame(nil, 0x7f, 1, "", []byte("x")),
		// Reply kinds sent client->server.
		appendFrame(nil, frameOK, 1, "", []byte("x")),
		// Truncated body: header promises 100 bytes, 3 arrive.
		{0x00, 0x00, 0x00, 0x64, 0x01, 0x02, 0x03},
	}
	for i, raw := range raws {
		conn, err := net.Dial("tcp", e.addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(raw); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		conn.Close()
	}
	// Well-framed junk payloads: the frame parses, the gateway rejects.
	// These mirror the fuzz corpus — binary magic with nothing behind it,
	// truncated varints, JSON junk — and must come back as error replies
	// on a connection that stays healthy.
	payloads := [][]byte{
		{0xdc},
		{0xdc, 0x01},
		{0xdc, 0x01, 0xff, 0xff, 0xff, 0xff, 0x0f},
		[]byte(`{"channel":"deals","principal":"alice"`),
		[]byte(`{"channel":"deals","principal":"nobody","payload":"eHg="}`),
		{},
	}
	c := e.dialEdge(t)
	ctx := context.Background()
	for i, payload := range payloads {
		if _, err := c.Call(ctx, middleware.TopicSubmit, payload); err == nil {
			t.Fatalf("junk payload %d accepted", i)
		}
	}
	// The connection survived six rejections; a real flow still works.
	p := bootstrap(t, c, "alice")
	if _, err := c.SubmitRaw(ctx, p.submission(t, []byte("trade"), nil)); err != nil {
		t.Fatalf("healthy flow after rejections: %v", err)
	}
	// Framing-level garbage was counted and those connections closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.srv.Stats()
		if st.FrameErrors >= 4 && st.Closed >= uint64(len(raws)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame errors not accounted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEdgeFrameTooBigRejected proves the configured frame bound holds on
// a live connection: an oversized announcement kills it before any
// allocation of the announced size.
func TestEdgeFrameTooBigRejected(t *testing.T) {
	e := newEdgeEnv(t, WithMaxFrame(1024))
	conn, err := net.Dial("tcp", e.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 2048)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("want EOF from closed connection, got %v", err)
	}
}

// TestEdgeIdleTimeout proves a silent connection is reaped by the read
// deadline rather than leaking.
func TestEdgeIdleTimeout(t *testing.T) {
	e := newEdgeEnv(t, WithIdleTimeout(100*time.Millisecond))
	conn, err := net.Dial("tcp", e.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("idle connection not reaped: %v", err)
	}
}

// TestEdgeBackpressureShed fills a depth-1 outbound queue behind a peer
// that never reads and proves shedding mode drops the connection with an
// accounted shed instead of queueing unboundedly.
func TestEdgeBackpressureShed(t *testing.T) {
	// A handler with a large reply fills socket buffers fast; queue depth 1
	// makes the third unread reply the shedding one.
	big := make([]byte, 256<<10)
	h := HandlerFunc(func(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
		return big, nil
	})
	srv, err := Listen("127.0.0.1:0", h,
		WithQueueDepth(1), WithShedding(), WithMaxFrame(1<<20), WithWriteTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	// Pump requests without ever reading a reply.
	req := appendFrame(nil, frameRequest, 1, "t", []byte("x"))
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Sheds == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no shed recorded: %+v", srv.Stats())
		}
		conn.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
		conn.Write(req)
	}
}

// TestEdgeClientWindowShed proves the client-side in-flight window is the
// deterministic ErrBackpressure path.
func TestEdgeClientWindowShed(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
		started <- struct{}{}
		<-release
		return []byte("ok"), nil
	})
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String(), WithInFlight(1), WithClientShedding())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "t", []byte("slow"))
		first <- err
	}()
	// Once the handler holds the first call, its window slot is taken and
	// the second call must shed immediately.
	<-started
	if _, err := c.Call(context.Background(), "t", []byte("second")); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("second call: got %v, want ErrBackpressure", err)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first call: %v", err)
	}
}

// TestEdgeServerCloseFailsPending proves Close is clean: in-flight calls
// fail fast with a connection error rather than hanging.
func TestEdgeServerCloseFailsPending(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return []byte("ok"), nil
	})
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "t", []byte("x"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	// Close cancels the server ctx, which unblocks the handler; the call
	// must resolve either way (late reply or connection error), not hang.
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pending call hung through server close")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung")
	}
	close(block)
}

// TestEdgePipelinedSubmitAsync proves the batched-ack path: a whole flight
// of SubmitRawAsync frames goes out before any ack is read, then every
// PendingSubmit resolves with a distinct submission ID and every submission
// lands on the ledger exactly once.
func TestEdgePipelinedSubmitAsync(t *testing.T) {
	e := newEdgeEnv(t)
	var mu sync.Mutex
	seen := map[string]int{}
	e.ord.Subscribe("deals", func(b ledger.Block) error {
		mu.Lock()
		defer mu.Unlock()
		for _, tx := range b.Txs {
			seen[tx.Meta["seq"]]++
		}
		return nil
	})
	c := e.dialEdge(t)
	ctx := context.Background()
	p := bootstrap(t, c, "alice")

	const n = 32
	pendings := make([]*PendingSubmit, n)
	for i := range pendings {
		seq := fmt.Sprintf("pipelined-%02d", i)
		ps, err := c.SubmitRawAsync(ctx, p.submission(t, []byte(seq), map[string]string{"seq": seq}))
		if err != nil {
			t.Fatalf("submit async %d: %v", i, err)
		}
		pendings[i] = ps
	}
	ids := make(map[string]bool, n)
	for i, ps := range pendings {
		id, err := ps.Wait(ctx)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if id == "" || ids[id] {
			t.Fatalf("wait %d: submission id %q empty or duplicated", i, id)
		}
		ids[id] = true
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		seq := fmt.Sprintf("pipelined-%02d", i)
		if seen[seq] != 1 {
			t.Fatalf("submission %s delivered %d times, want exactly 1", seq, seen[seq])
		}
	}
}

// TestEdgeCallAsyncWindowAccounting proves the PendingCall owns its window
// slot: unwaited calls hold slots (shedding when the window fills), Wait
// releases exactly one each, and double-Wait neither double-releases nor
// changes the settled result.
func TestEdgeCallAsyncWindowAccounting(t *testing.T) {
	release := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return payload, nil
	})
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String(), WithInFlight(2), WithClientShedding())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	p1, err := c.CallAsync(ctx, "t", []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.CallAsync(ctx, "t", []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	// Window full: both slots are held by unwaited pending calls.
	if _, err := c.CallAsync(ctx, "t", []byte("three")); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("third async call: got %v, want ErrBackpressure", err)
	}
	close(release)
	for i, p := range []*PendingCall{p1, p2} {
		b, err := p.Wait(ctx)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		// Wait again: settled result, no second slot release.
		b2, err2 := p.Wait(ctx)
		if err2 != nil || string(b2) != string(b) {
			t.Fatalf("re-wait %d: got %q/%v, want %q/nil", i, b2, err2, b)
		}
	}
	// Both slots are free again — if Wait over-released, this would still
	// pass, so prove exact accounting: two more asyncs fit, a third sheds.
	q1, err := c.CallAsync(ctx, "t", []byte("four"))
	if err != nil {
		t.Fatalf("post-wait call 1: %v", err)
	}
	q2, err := c.CallAsync(ctx, "t", []byte("five"))
	if err != nil {
		t.Fatalf("post-wait call 2: %v", err)
	}
	if _, err := c.CallAsync(ctx, "t", []byte("six")); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("post-wait third call: got %v, want ErrBackpressure", err)
	}
	for _, q := range []*PendingCall{q1, q2} {
		if _, err := q.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}
