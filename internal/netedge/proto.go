package netedge

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Errors of the edge protocol and flow control.
var (
	// ErrBadFrame is returned (wrapped) for every malformed stream frame.
	// Like the codec v2 decode errors it is a rejection, never a panic:
	// lengths are validated before any allocation or slice.
	ErrBadFrame = errors.New("netedge: malformed stream frame")
	// ErrFrameTooBig is returned when a frame's length prefix exceeds the
	// configured maximum — the bound that keeps a hostile peer from making
	// the edge allocate arbitrarily.
	ErrFrameTooBig = errors.New("netedge: frame exceeds size limit")
	// ErrBackpressure is returned (server: to the connection being shed,
	// client: to the caller) when a bounded queue or in-flight window is
	// full and the endpoint runs in shedding mode instead of blocking.
	ErrBackpressure = errors.New("netedge: outbound queue full")
	// ErrClosed is returned for operations on a closed client or server.
	ErrClosed = errors.New("netedge: connection closed")
)

// Frame kinds on the stream.
const (
	frameRequest = 0x01 // client -> server: uvarint id, topic, payload
	frameOK      = 0x02 // server -> client: uvarint id, reply payload
	frameError   = 0x03 // server -> client: uvarint id, error text
)

// DefaultMaxFrame bounds a frame's encoded size (length prefix excluded)
// unless overridden: 1 MiB holds any plausible envelope while keeping a
// hostile length prefix from reserving real memory.
const DefaultMaxFrame = 1 << 20

// appendFrame encodes one stream frame — length prefix, kind, id, topic
// (requests only; pass "" for replies), body — into dst and returns the
// extended slice. The frame is built in one pass with the length patched
// in, so callers can encode into a pooled buffer.
func appendFrame(dst []byte, kind byte, id uint64, topic string, body []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length placeholder
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, id)
	if kind == frameRequest {
		dst = binary.AppendUvarint(dst, uint64(len(topic)))
		dst = append(dst, topic...)
	}
	dst = append(dst, body...)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// frame is one decoded stream frame. topic is set for requests only; body
// aliases the read buffer it was parsed from and is valid until the next
// read on that buffer.
type frame struct {
	kind  byte
	id    uint64
	topic string
	body  []byte
}

// parseFrame decodes the post-length-prefix bytes of one frame. body (and
// for requests topic, which is copied to a string) alias b.
func parseFrame(b []byte) (frame, error) {
	var f frame
	if len(b) < 2 {
		return f, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(b))
	}
	f.kind = b[0]
	b = b[1:]
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return f, fmt.Errorf("%w: truncated request id", ErrBadFrame)
	}
	f.id = id
	b = b[n:]
	switch f.kind {
	case frameRequest:
		tl, n := binary.Uvarint(b)
		if n <= 0 {
			return f, fmt.Errorf("%w: truncated topic length", ErrBadFrame)
		}
		b = b[n:]
		if tl > uint64(len(b)) {
			return f, fmt.Errorf("%w: topic length %d exceeds remaining %d bytes", ErrBadFrame, tl, len(b))
		}
		f.topic = string(b[:tl])
		f.body = b[tl:]
	case frameOK, frameError:
		f.body = b
	default:
		return f, fmt.Errorf("%w: unknown frame kind 0x%02x", ErrBadFrame, f.kind)
	}
	return f, nil
}

// readFrame reads one length-prefixed frame from br into buf (grown as
// needed, reused across calls) and parses it. The returned frame aliases
// buf. maxFrame rejects hostile length prefixes before any allocation.
func readFrame(br *bufio.Reader, buf []byte, maxFrame int) (frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return frame{}, buf, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, maxFrame)
	}
	if n < 2 {
		return frame{}, buf, fmt.Errorf("%w: length prefix %d", ErrBadFrame, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return frame{}, buf, fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
	}
	f, err := parseFrame(buf)
	return f, buf, err
}

// WireError is a server-side rejection carried back over the stream: the
// remote error's text, which preserves the middleware sentinel messages
// ("session token bound to another connection", "malformed binary frame",
// ...) even though the error values themselves cannot cross a socket.
type WireError struct {
	Msg string
}

// Error implements error.
func (e *WireError) Error() string { return "netedge: server: " + e.Msg }
