package audit

import (
	"reflect"
	"sync"
	"testing"
)

func TestRecordAndSaw(t *testing.T) {
	l := NewLog()
	l.Record("orderer", ClassTxMetadata, "tx-1")
	if !l.Saw("orderer", ClassTxMetadata, "tx-1") {
		t.Fatal("observation not recorded")
	}
	if l.Saw("orderer", ClassTxData, "tx-1") {
		t.Fatal("wrong class must not match")
	}
	if l.Saw("peer", ClassTxMetadata, "tx-1") {
		t.Fatal("wrong observer must not match")
	}
}

func TestDuplicatesCollapse(t *testing.T) {
	l := NewLog()
	l.Record("o", ClassTxData, "x")
	l.Record("o", ClassTxData, "x")
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestItemsSeenSorted(t *testing.T) {
	l := NewLog()
	l.Record("o", ClassIdentity, "b")
	l.Record("o", ClassIdentity, "a")
	l.Record("o", ClassTxData, "z")
	got := l.ItemsSeen("o", ClassIdentity)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("ItemsSeen = %v, want [a b]", got)
	}
}

func TestObservers(t *testing.T) {
	l := NewLog()
	l.Record("p2", ClassTxData, "tx")
	l.Record("p1", ClassTxData, "tx")
	got := l.Observers(ClassTxData, "tx")
	if !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Fatalf("Observers = %v, want [p1 p2]", got)
	}
}

func TestSawAny(t *testing.T) {
	l := NewLog()
	l.Record("eve", ClassPII, "ssn")
	if !l.SawAny("eve", ClassPII) {
		t.Fatal("SawAny must be true")
	}
	if l.SawAny("eve", ClassTxData) {
		t.Fatal("SawAny wrong class must be false")
	}
}

func TestViolations(t *testing.T) {
	l := NewLog()
	l.Record("member", ClassTxData, "tx-1")
	l.Record("outsider", ClassTxData, "tx-1")
	policy := func(o Observation) bool { return o.Observer == "member" }
	v := l.Violations(policy)
	if len(v) != 1 || v[0].Observer != "outsider" {
		t.Fatalf("Violations = %v, want one outsider entry", v)
	}
}

func TestMatrix(t *testing.T) {
	l := NewLog()
	l.Record("a", ClassTxData, "t2")
	l.Record("a", ClassTxData, "t1")
	l.Record("b", ClassTxData, "t1")
	l.Record("b", ClassTxHash, "t9")
	m := l.Matrix(ClassTxData)
	want := map[string][]string{"a": {"t1", "t2"}, "b": {"t1"}}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("Matrix = %v, want %v", m, want)
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Record("x", ClassTxData, "y") // must not panic
	if l.Saw("x", ClassTxData, "y") || l.Len() != 0 || l.All() != nil {
		t.Fatal("nil log must behave as empty")
	}
	if l.SawAny("x", ClassTxData) || l.ItemsSeen("x", ClassTxData) != nil || l.Observers(ClassTxData, "y") != nil {
		t.Fatal("nil log queries must be empty")
	}
}

func TestConcurrentRecord(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record("obs", ClassTxData, string(rune('a'+n)))
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 8 {
		t.Fatalf("Len = %d, want 8", l.Len())
	}
}

func TestObservationString(t *testing.T) {
	o := Observation{Observer: "orderer", Class: ClassTxMetadata, Item: "tx-1"}
	if o.String() != `orderer saw txmeta "tx-1"` {
		t.Fatalf("String = %q", o.String())
	}
}
