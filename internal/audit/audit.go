// Package audit provides leakage accounting: every substrate reports which
// principal observed which datum, turning the paper's qualitative privacy
// claims ("identities of channel members are not revealed to the wider
// network", "the ordering service has full visibility") into assertions the
// experiment suite can check and the benchmark harness can tabulate.
package audit

import (
	"fmt"
	"sort"
	"sync"
)

// DataClass categorizes observed information along the paper's three axes
// (§1): the group of interacting parties, transaction data, and business
// logic — plus metadata classes needed to describe ordering-service and
// hash-anchor visibility precisely.
type DataClass string

// Data classes.
const (
	// ClassIdentity is a party's legal identity.
	ClassIdentity DataClass = "identity"
	// ClassRelationship is the fact that two or more parties transact.
	ClassRelationship DataClass = "relationship"
	// ClassTxData is transaction payload content.
	ClassTxData DataClass = "txdata"
	// ClassTxHash is a hash of transaction data (existence evidence
	// without content, §2.2).
	ClassTxHash DataClass = "txhash"
	// ClassBusinessLogic is smart-contract source or semantics.
	ClassBusinessLogic DataClass = "logic"
	// ClassTxMetadata is envelope-level metadata (channel id, sizes,
	// timing) visible to infrastructure such as the ordering service.
	ClassTxMetadata DataClass = "txmeta"
	// ClassPII is personally identifying information subject to deletion
	// requirements (§3, GDPR).
	ClassPII DataClass = "pii"
)

// Observation records that Observer saw Item of class Class.
type Observation struct {
	Observer string
	Class    DataClass
	Item     string
}

// Log is a concurrency-safe observation log.
type Log struct {
	mu   sync.Mutex
	obs  []Observation
	seen map[Observation]bool
}

// NewLog creates an empty observation log.
func NewLog() *Log {
	return &Log{seen: make(map[Observation]bool)}
}

// Record notes that observer saw item. Duplicate observations collapse.
func (l *Log) Record(observer string, class DataClass, item string) {
	if l == nil {
		return // substrates may run without accounting
	}
	o := Observation{Observer: observer, Class: class, Item: item}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen[o] {
		return
	}
	l.seen[o] = true
	l.obs = append(l.obs, o)
}

// Saw reports whether observer recorded an observation of item.
func (l *Log) Saw(observer string, class DataClass, item string) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen[Observation{Observer: observer, Class: class, Item: item}]
}

// SawAny reports whether observer saw anything of the given class.
func (l *Log) SawAny(observer string, class DataClass) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for o := range l.seen {
		if o.Observer == observer && o.Class == class {
			return true
		}
	}
	return false
}

// ItemsSeen returns the sorted items of a class seen by observer.
func (l *Log) ItemsSeen(observer string, class DataClass) []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for o := range l.seen {
		if o.Observer == observer && o.Class == class {
			out = append(out, o.Item)
		}
	}
	sort.Strings(out)
	return out
}

// Observers returns the sorted principals that saw the item.
func (l *Log) Observers(class DataClass, item string) []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for o := range l.seen {
		if o.Class == class && o.Item == item {
			out = append(out, o.Observer)
		}
	}
	sort.Strings(out)
	return out
}

// All returns a copy of every observation in recording order.
func (l *Log) All() []Observation {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Observation, len(l.obs))
	copy(out, l.obs)
	return out
}

// Len returns the number of distinct observations.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.obs)
}

// Policy decides whether an observation is authorized. Experiments encode
// the paper's confidentiality requirements as policies and assert zero
// violations.
type Policy func(o Observation) bool

// Violations returns every observation the policy rejects.
func (l *Log) Violations(allowed Policy) []Observation {
	var out []Observation
	for _, o := range l.All() {
		if !allowed(o) {
			out = append(out, o)
		}
	}
	return out
}

// Matrix summarizes, for one data class, which observer saw which items:
// observer -> sorted item list. The benchmark harness prints these as the
// leakage tables of experiments E3–E6.
func (l *Log) Matrix(class DataClass) map[string][]string {
	out := make(map[string][]string)
	for _, o := range l.All() {
		if o.Class == class {
			out[o.Observer] = append(out[o.Observer], o.Item)
		}
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

// String renders an observation for error messages.
func (o Observation) String() string {
	return fmt.Sprintf("%s saw %s %q", o.Observer, o.Class, o.Item)
}
