package pki

import (
	"errors"
	"testing"
	"time"

	"dltprivacy/internal/dcrypto"
)

func newTestCA(t *testing.T, opts ...Option) *CA {
	t.Helper()
	ca, err := NewCA("TestCA", opts...)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func TestEnrollAndVerify(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := ca.Verify(cert); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if cert.Identity != "BankA" || cert.Kind != KindIdentity {
		t.Fatalf("unexpected cert fields: %+v", cert)
	}
}

func TestEnrollEmptyIdentity(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("", key.Public()); err == nil {
		t.Fatal("empty identity must be rejected")
	}
}

func TestVerifyRejectsForgedCert(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	cert.Identity = "Mallory" // tamper
	if err := ca.Verify(cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("Verify tampered = %v, want ErrBadCertificate", err)
	}
}

func TestVerifyRejectsOtherCA(t *testing.T) {
	ca1 := newTestCA(t)
	ca2 := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca1.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := ca2.Verify(cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("Verify against other CA = %v, want ErrBadCertificate", err)
	}
}

func TestRevocation(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	ca.Revoke(cert.Serial)
	if err := ca.Verify(cert); !errors.Is(err, ErrRevoked) {
		t.Fatalf("Verify revoked = %v, want ErrRevoked", err)
	}
}

func TestExpiry(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	ca := newTestCA(t, WithClock(clock))
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	now = now.Add(2 * 365 * 24 * time.Hour)
	if err := ca.Verify(cert); !errors.Is(err, ErrExpired) {
		t.Fatalf("Verify expired = %v, want ErrExpired", err)
	}
}

func TestOneTimeCertRequiresEnrollment(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.IssueOneTime("Ghost", key.Public()); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("IssueOneTime unenrolled = %v, want ErrUnknownIdentity", err)
	}
}

func TestOneTimeCertLinksPseudonym(t *testing.T) {
	ca := newTestCA(t)
	idKey, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("SellerCo", idKey.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	chain, _ := dcrypto.NewOneTimeKeyChain([]byte("seller-seed-0123456789"))
	oneTime, _ := chain.Next()
	cert, err := ca.IssueOneTime("SellerCo", oneTime)
	if err != nil {
		t.Fatalf("IssueOneTime: %v", err)
	}
	if cert.Kind != KindOneTime || cert.Identity != "SellerCo" {
		t.Fatalf("unexpected one-time cert: %+v", cert)
	}
	if err := ca.Verify(cert); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	certKey, err := cert.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if !certKey.Equal(oneTime) {
		t.Fatal("certificate must carry the pseudonymous key")
	}
}

func TestMembershipListHiddenByDefault(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("BankA", key.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if _, err := ca.Members(); !errors.Is(err, ErrMembershipHidden) {
		t.Fatalf("Members = %v, want ErrMembershipHidden", err)
	}
}

func TestMembershipListExposedWhenOpted(t *testing.T) {
	ca := newTestCA(t, WithMembershipList())
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("BankA", key.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	members, err := ca.Members()
	if err != nil {
		t.Fatalf("Members: %v", err)
	}
	if len(members) != 1 || members[0] != "BankA" {
		t.Fatalf("Members = %v, want [BankA]", members)
	}
}

func TestCertificateOf(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	want, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	got, err := ca.CertificateOf("BankA")
	if err != nil {
		t.Fatalf("CertificateOf: %v", err)
	}
	if got.Serial != want.Serial {
		t.Fatalf("CertificateOf serial = %d, want %d", got.Serial, want.Serial)
	}
	if _, err := ca.CertificateOf("Nobody"); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("CertificateOf unknown = %v, want ErrUnknownIdentity", err)
	}
}

func TestVerifyCertificatePinnedKey(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := VerifyCertificate(cert, ca.PublicKey(), time.Now()); err != nil {
		t.Fatalf("VerifyCertificate: %v", err)
	}
}

func TestRevocationPlaneEpochsAndDeltas(t *testing.T) {
	ca := newTestCA(t)
	certs := make([]Certificate, 3)
	for i, id := range []string{"BankA", "BankB", "BankC"} {
		key, _ := dcrypto.GenerateKey()
		cert, err := ca.Enroll(id, key.Public())
		if err != nil {
			t.Fatalf("Enroll %s: %v", id, err)
		}
		certs[i] = cert
	}
	if v := ca.RevocationVersion(); v != 0 {
		t.Fatalf("fresh CA revocation version = %d, want 0", v)
	}
	if revs, v := ca.RevokedSince(0); len(revs) != 0 || v != 0 {
		t.Fatalf("fresh CA RevokedSince(0) = %v, %d", revs, v)
	}

	ca.Revoke(certs[0].Serial)
	ca.Revoke(certs[1].Serial)
	if v := ca.RevocationVersion(); v != 2 {
		t.Fatalf("version after two revocations = %d, want 2", v)
	}
	if !ca.IsRevoked(certs[0].Serial) || ca.IsRevoked(certs[2].Serial) {
		t.Fatal("IsRevoked does not reflect the revocation set")
	}

	// Full read from epoch 0, ordered, with identities and epochs filled.
	revs, v := ca.RevokedSince(0)
	if v != 2 || len(revs) != 2 {
		t.Fatalf("RevokedSince(0) = %v, %d", revs, v)
	}
	if revs[0].Identity != "BankA" || revs[0].Epoch != 1 || revs[0].Kind != KindIdentity {
		t.Fatalf("first revocation entry = %+v", revs[0])
	}
	if revs[1].Identity != "BankB" || revs[1].Epoch != 2 {
		t.Fatalf("second revocation entry = %+v", revs[1])
	}

	// Delta read: a caller at epoch 1 sees only the second revocation.
	revs, v = ca.RevokedSince(1)
	if v != 2 || len(revs) != 1 || revs[0].Serial != certs[1].Serial {
		t.Fatalf("RevokedSince(1) = %v, %d", revs, v)
	}
	// A caller already at the current version sees an empty delta.
	if revs, v := ca.RevokedSince(2); len(revs) != 0 || v != 2 {
		t.Fatalf("RevokedSince(current) = %v, %d", revs, v)
	}
}

func TestRevokeIdempotent(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	ca.Revoke(cert.Serial)
	ca.Revoke(cert.Serial) // second revocation must not bump the epoch
	if v := ca.RevocationVersion(); v != 1 {
		t.Fatalf("version after double revoke = %d, want 1", v)
	}
	if revs, _ := ca.RevokedSince(0); len(revs) != 1 {
		t.Fatalf("log after double revoke = %v, want one entry", revs)
	}
}

func TestOnRevokeNotifiesAfterUnlock(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	var got []Revocation
	// The subscriber calls back into the CA: it must not deadlock, and the
	// delta it reads must already include the revocation it was notified of.
	ca.OnRevoke(func(r Revocation) {
		revs, v := ca.RevokedSince(0)
		if v != r.Epoch || len(revs) == 0 {
			t.Errorf("subscriber read version %d, want %d", v, r.Epoch)
		}
		got = append(got, r)
	})
	ca.Revoke(cert.Serial)
	if len(got) != 1 || got[0].Identity != "BankA" || got[0].Serial != cert.Serial {
		t.Fatalf("subscriber saw %+v", got)
	}
	ca.Revoke(cert.Serial) // idempotent revoke must not re-notify
	if len(got) != 1 {
		t.Fatalf("subscriber re-notified on idempotent revoke: %+v", got)
	}
}

func TestRevocationOfOneTimeCertCarriesKind(t *testing.T) {
	ca := newTestCA(t)
	idKey, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("SellerCo", idKey.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	otKey, _ := dcrypto.GenerateKey()
	cert, err := ca.IssueOneTime("SellerCo", otKey.Public())
	if err != nil {
		t.Fatalf("IssueOneTime: %v", err)
	}
	ca.Revoke(cert.Serial)
	revs, _ := ca.RevokedSince(0)
	if len(revs) != 1 || revs[0].Kind != KindOneTime || revs[0].Identity != "SellerCo" {
		t.Fatalf("one-time revocation entry = %+v", revs)
	}
}

func TestOnRevokeCancelDetaches(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	c1, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	c2, err := ca.Enroll("BankB", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	var notified int
	cancel := ca.OnRevoke(func(Revocation) { notified++ })
	ca.Revoke(c1.Serial)
	cancel()
	cancel() // idempotent
	ca.Revoke(c2.Serial)
	if notified != 1 {
		t.Fatalf("subscriber notified %d times, want 1 (cancel must detach)", notified)
	}
}

func TestRevocationMarksSupersededCerts(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	old, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	renewed, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("re-Enroll: %v", err)
	}
	// Rotation flow: the old serial is revoked after its replacement is
	// enrolled — the log entry records the identity's standing survives.
	ca.Revoke(old.Serial)
	revs, _ := ca.RevokedSince(0)
	if len(revs) != 1 || !revs[0].Superseded {
		t.Fatalf("superseded revocation entry = %+v, want Superseded", revs)
	}
	// Revoking the identity's current certificate is an outright
	// withdrawal.
	ca.Revoke(renewed.Serial)
	revs, _ = ca.RevokedSince(1)
	if len(revs) != 1 || revs[0].Superseded {
		t.Fatalf("outright revocation entry = %+v, want !Superseded", revs)
	}
}
