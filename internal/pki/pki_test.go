package pki

import (
	"errors"
	"testing"
	"time"

	"dltprivacy/internal/dcrypto"
)

func newTestCA(t *testing.T, opts ...Option) *CA {
	t.Helper()
	ca, err := NewCA("TestCA", opts...)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func TestEnrollAndVerify(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := ca.Verify(cert); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if cert.Identity != "BankA" || cert.Kind != KindIdentity {
		t.Fatalf("unexpected cert fields: %+v", cert)
	}
}

func TestEnrollEmptyIdentity(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("", key.Public()); err == nil {
		t.Fatal("empty identity must be rejected")
	}
}

func TestVerifyRejectsForgedCert(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	cert.Identity = "Mallory" // tamper
	if err := ca.Verify(cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("Verify tampered = %v, want ErrBadCertificate", err)
	}
}

func TestVerifyRejectsOtherCA(t *testing.T) {
	ca1 := newTestCA(t)
	ca2 := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca1.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := ca2.Verify(cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("Verify against other CA = %v, want ErrBadCertificate", err)
	}
}

func TestRevocation(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	ca.Revoke(cert.Serial)
	if err := ca.Verify(cert); !errors.Is(err, ErrRevoked) {
		t.Fatalf("Verify revoked = %v, want ErrRevoked", err)
	}
}

func TestExpiry(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	ca := newTestCA(t, WithClock(clock))
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	now = now.Add(2 * 365 * 24 * time.Hour)
	if err := ca.Verify(cert); !errors.Is(err, ErrExpired) {
		t.Fatalf("Verify expired = %v, want ErrExpired", err)
	}
}

func TestOneTimeCertRequiresEnrollment(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.IssueOneTime("Ghost", key.Public()); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("IssueOneTime unenrolled = %v, want ErrUnknownIdentity", err)
	}
}

func TestOneTimeCertLinksPseudonym(t *testing.T) {
	ca := newTestCA(t)
	idKey, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("SellerCo", idKey.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	chain, _ := dcrypto.NewOneTimeKeyChain([]byte("seller-seed-0123456789"))
	oneTime, _ := chain.Next()
	cert, err := ca.IssueOneTime("SellerCo", oneTime)
	if err != nil {
		t.Fatalf("IssueOneTime: %v", err)
	}
	if cert.Kind != KindOneTime || cert.Identity != "SellerCo" {
		t.Fatalf("unexpected one-time cert: %+v", cert)
	}
	if err := ca.Verify(cert); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	certKey, err := cert.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if !certKey.Equal(oneTime) {
		t.Fatal("certificate must carry the pseudonymous key")
	}
}

func TestMembershipListHiddenByDefault(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("BankA", key.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if _, err := ca.Members(); !errors.Is(err, ErrMembershipHidden) {
		t.Fatalf("Members = %v, want ErrMembershipHidden", err)
	}
}

func TestMembershipListExposedWhenOpted(t *testing.T) {
	ca := newTestCA(t, WithMembershipList())
	key, _ := dcrypto.GenerateKey()
	if _, err := ca.Enroll("BankA", key.Public()); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	members, err := ca.Members()
	if err != nil {
		t.Fatalf("Members: %v", err)
	}
	if len(members) != 1 || members[0] != "BankA" {
		t.Fatalf("Members = %v, want [BankA]", members)
	}
}

func TestCertificateOf(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	want, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	got, err := ca.CertificateOf("BankA")
	if err != nil {
		t.Fatalf("CertificateOf: %v", err)
	}
	if got.Serial != want.Serial {
		t.Fatalf("CertificateOf serial = %d, want %d", got.Serial, want.Serial)
	}
	if _, err := ca.CertificateOf("Nobody"); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("CertificateOf unknown = %v, want ErrUnknownIdentity", err)
	}
}

func TestVerifyCertificatePinnedKey(t *testing.T) {
	ca := newTestCA(t)
	key, _ := dcrypto.GenerateKey()
	cert, err := ca.Enroll("BankA", key.Public())
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := VerifyCertificate(cert, ca.PublicKey(), time.Now()); err != nil {
		t.Fatalf("VerifyCertificate: %v", err)
	}
}
