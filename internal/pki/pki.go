// Package pki implements the public key infrastructure the paper assumes for
// every enterprise DLT (§2.1): a certificate authority that verifies party
// identities during onboarding and issues certificates mapping public keys to
// identities, plus certificates for one-time (pseudonymous) keys that reveal
// the link only to parties that need to verify signatures.
package pki

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by certificate operations.
var (
	// ErrBadCertificate is returned when a certificate signature does not
	// verify against the issuing CA.
	ErrBadCertificate = errors.New("pki: certificate verification failed")
	// ErrRevoked is returned when the certificate has been revoked.
	ErrRevoked = errors.New("pki: certificate revoked")
	// ErrExpired is returned when the certificate validity window has
	// passed.
	ErrExpired = errors.New("pki: certificate expired")
	// ErrUnknownIdentity is returned when an identity has not been
	// enrolled with the CA.
	ErrUnknownIdentity = errors.New("pki: unknown identity")
)

// CertKind distinguishes long-term identity certificates from one-time-key
// certificates.
type CertKind int

// Certificate kinds.
const (
	// KindIdentity binds a party's legal identity to its long-term key.
	KindIdentity CertKind = iota + 1
	// KindOneTime binds a pseudonymous one-time key to an identity; it is
	// disclosed only to counterparties that must verify signatures
	// (§2.1, "One-time public keys").
	KindOneTime
)

// Certificate binds a public key to an identity, signed by a CA.
type Certificate struct {
	Serial    uint64            `json:"serial"`
	Kind      CertKind          `json:"kind"`
	Identity  string            `json:"identity"`
	PublicKey []byte            `json:"publicKey"`
	Issuer    string            `json:"issuer"`
	NotBefore time.Time         `json:"notBefore"`
	NotAfter  time.Time         `json:"notAfter"`
	Sig       dcrypto.Signature `json:"sig"`
}

// payload returns the canonical signed content of the certificate.
func (c Certificate) payload() []byte {
	clone := c
	clone.Sig = dcrypto.Signature{}
	b, err := json.Marshal(clone)
	if err != nil {
		// Marshal of a plain struct with no cycles cannot fail; keep the
		// signature path total anyway.
		return nil
	}
	return b
}

// Key parses the certified public key.
func (c Certificate) Key() (dcrypto.PublicKey, error) {
	return dcrypto.ParsePublicKey(c.PublicKey)
}

// CA is a certificate authority. It verifies identities of parties
// onboarded to the platform and optionally exposes a global membership list
// so that parties may establish relationships (§2.1).
type CA struct {
	name string
	key  *dcrypto.PrivateKey
	now  func() time.Time

	mu         sync.Mutex
	serial     uint64
	enrolled   map[string]Certificate // identity -> identity cert
	revoked    map[uint64]bool
	exposeList bool
}

// Option configures a CA.
type Option func(*CA)

// WithClock overrides the CA's time source (for tests).
func WithClock(now func() time.Time) Option {
	return func(ca *CA) { ca.now = now }
}

// WithMembershipList makes the CA expose the global membership list.
// Platforms that want member privacy leave it off.
func WithMembershipList() Option {
	return func(ca *CA) { ca.exposeList = true }
}

// NewCA creates a certificate authority with a fresh signing key.
func NewCA(name string, opts ...Option) (*CA, error) {
	key, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("ca key: %w", err)
	}
	ca := &CA{
		name:     name,
		key:      key,
		now:      time.Now,
		enrolled: make(map[string]Certificate),
		revoked:  make(map[uint64]bool),
	}
	for _, opt := range opts {
		opt(ca)
	}
	return ca, nil
}

// Name returns the CA's name.
func (ca *CA) Name() string { return ca.name }

// PublicKey returns the CA verification key that relying parties pin.
func (ca *CA) PublicKey() dcrypto.PublicKey { return ca.key.Public() }

// certValidity is the default certificate lifetime.
const certValidity = 365 * 24 * time.Hour

// Enroll verifies an identity (out of band, as in any enterprise onboarding
// process) and issues its long-term identity certificate.
func (ca *CA) Enroll(identity string, pub dcrypto.PublicKey) (Certificate, error) {
	if identity == "" {
		return Certificate{}, errors.New("pki: empty identity")
	}
	cert, err := ca.issue(KindIdentity, identity, pub)
	if err != nil {
		return Certificate{}, err
	}
	ca.mu.Lock()
	ca.enrolled[identity] = cert
	ca.mu.Unlock()
	return cert, nil
}

// IssueOneTime certifies a pseudonymous one-time key for an already enrolled
// identity. The resulting certificate is shared only with parties that must
// link the pseudonym to the identity.
func (ca *CA) IssueOneTime(identity string, pub dcrypto.PublicKey) (Certificate, error) {
	ca.mu.Lock()
	_, ok := ca.enrolled[identity]
	ca.mu.Unlock()
	if !ok {
		return Certificate{}, fmt.Errorf("issue one-time cert for %q: %w", identity, ErrUnknownIdentity)
	}
	return ca.issue(KindOneTime, identity, pub)
}

func (ca *CA) issue(kind CertKind, identity string, pub dcrypto.PublicKey) (Certificate, error) {
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()

	now := ca.now()
	cert := Certificate{
		Serial:    serial,
		Kind:      kind,
		Identity:  identity,
		PublicKey: pub.Bytes(),
		Issuer:    ca.name,
		NotBefore: now,
		NotAfter:  now.Add(certValidity),
	}
	sig, err := ca.key.Sign(cert.payload())
	if err != nil {
		return Certificate{}, fmt.Errorf("sign certificate: %w", err)
	}
	cert.Sig = sig
	return cert, nil
}

// Revoke invalidates a certificate by serial number.
func (ca *CA) Revoke(serial uint64) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.revoked[serial] = true
}

// Verify checks a certificate's signature, validity window, and revocation
// status against this CA.
func (ca *CA) Verify(cert Certificate) error {
	if err := VerifyCertificate(cert, ca.PublicKey(), ca.now()); err != nil {
		return err
	}
	ca.mu.Lock()
	revoked := ca.revoked[cert.Serial]
	ca.mu.Unlock()
	if revoked {
		return ErrRevoked
	}
	return nil
}

// VerifyCertificate validates a certificate against a pinned CA key without
// consulting revocation state. Relying parties that only hold the CA public
// key use this form.
func VerifyCertificate(cert Certificate, caKey dcrypto.PublicKey, at time.Time) error {
	if at.Before(cert.NotBefore) || at.After(cert.NotAfter) {
		return ErrExpired
	}
	if err := caKey.Verify(cert.payload(), cert.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	return nil
}

// Members returns the global membership list if the CA exposes one, or
// ErrMembershipHidden otherwise.
func (ca *CA) Members() ([]string, error) {
	if !ca.exposeList {
		return nil, ErrMembershipHidden
	}
	ca.mu.Lock()
	defer ca.mu.Unlock()
	out := make([]string, 0, len(ca.enrolled))
	for id := range ca.enrolled {
		out = append(out, id)
	}
	return out, nil
}

// ErrMembershipHidden is returned when the CA does not expose a global
// membership list.
var ErrMembershipHidden = errors.New("pki: membership list not exposed")

// CertificateOf returns the identity certificate for an enrolled party.
func (ca *CA) CertificateOf(identity string) (Certificate, error) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	cert, ok := ca.enrolled[identity]
	if !ok {
		return Certificate{}, ErrUnknownIdentity
	}
	return cert, nil
}
