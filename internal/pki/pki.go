// Package pki implements the public key infrastructure the paper assumes for
// every enterprise DLT (§2.1): a certificate authority that verifies party
// identities during onboarding and issues certificates mapping public keys to
// identities, plus certificates for one-time (pseudonymous) keys that reveal
// the link only to parties that need to verify signatures.
package pki

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by certificate operations.
var (
	// ErrBadCertificate is returned when a certificate signature does not
	// verify against the issuing CA.
	ErrBadCertificate = errors.New("pki: certificate verification failed")
	// ErrRevoked is returned when the certificate has been revoked.
	ErrRevoked = errors.New("pki: certificate revoked")
	// ErrExpired is returned when the certificate validity window has
	// passed.
	ErrExpired = errors.New("pki: certificate expired")
	// ErrUnknownIdentity is returned when an identity has not been
	// enrolled with the CA.
	ErrUnknownIdentity = errors.New("pki: unknown identity")
)

// CertKind distinguishes long-term identity certificates from one-time-key
// certificates.
type CertKind int

// Certificate kinds.
const (
	// KindIdentity binds a party's legal identity to its long-term key.
	KindIdentity CertKind = iota + 1
	// KindOneTime binds a pseudonymous one-time key to an identity; it is
	// disclosed only to counterparties that must verify signatures
	// (§2.1, "One-time public keys").
	KindOneTime
)

// Certificate binds a public key to an identity, signed by a CA.
type Certificate struct {
	Serial    uint64            `json:"serial"`
	Kind      CertKind          `json:"kind"`
	Identity  string            `json:"identity"`
	PublicKey []byte            `json:"publicKey"`
	Issuer    string            `json:"issuer"`
	NotBefore time.Time         `json:"notBefore"`
	NotAfter  time.Time         `json:"notAfter"`
	Sig       dcrypto.Signature `json:"sig"`
}

// payload returns the canonical signed content of the certificate.
func (c Certificate) payload() []byte {
	clone := c
	clone.Sig = dcrypto.Signature{}
	b, err := json.Marshal(clone)
	if err != nil {
		// Marshal of a plain struct with no cycles cannot fail; keep the
		// signature path total anyway.
		return nil
	}
	return b
}

// Key parses the certified public key.
func (c Certificate) Key() (dcrypto.PublicKey, error) {
	return dcrypto.ParsePublicKey(c.PublicKey)
}

// Revocation is one entry of the CA's append-only revocation log: which
// certificate was revoked, whose it was, and the revocation epoch the entry
// carries. Epochs are dense and monotonic (the first revocation is epoch 1),
// so relying parties cache the last epoch they applied and pull only the
// delta with RevokedSince. Superseded records that the identity had
// already re-enrolled under a newer certificate when the revocation was
// issued: the routine key-rotation flow (enroll replacement, then revoke
// the old serial), which withdraws one certificate, not the identity's
// standing — relying parties keyed by identity (envelope membership) must
// not act on it.
type Revocation struct {
	Serial     uint64   `json:"serial"`
	Identity   string   `json:"identity"`
	Kind       CertKind `json:"kind"`
	Epoch      uint64   `json:"epoch"`
	Superseded bool     `json:"superseded,omitempty"`
}

// CA is a certificate authority. It verifies identities of parties
// onboarded to the platform and optionally exposes a global membership list
// so that parties may establish relationships (§2.1). It also runs the
// revocation plane: an append-only revocation log with a monotonic epoch,
// a cheap version probe for hot-path freshness checks, and a subscription
// hook so in-process relying parties learn about revocations immediately.
type CA struct {
	name string
	key  *dcrypto.PrivateKey
	now  func() time.Time

	// revEpoch is the current revocation epoch, read lock-free by
	// RevocationVersion so per-request freshness probes stay off the CA
	// mutex. Bumped only under mu, so it is in lockstep with revLog.
	revEpoch atomic.Uint64

	mu         sync.Mutex
	serial     uint64
	enrolled   map[string]Certificate // identity -> identity cert
	issued     map[uint64]Revocation  // serial -> identity/kind, pre-filled at issue
	revoked    map[uint64]bool
	revLog     []Revocation // append-only; entry i carries epoch i+1
	onRevoke   map[uint64]func(Revocation)
	nextSub    uint64
	exposeList bool
}

// Option configures a CA.
type Option func(*CA)

// WithClock overrides the CA's time source (for tests).
func WithClock(now func() time.Time) Option {
	return func(ca *CA) { ca.now = now }
}

// WithMembershipList makes the CA expose the global membership list.
// Platforms that want member privacy leave it off.
func WithMembershipList() Option {
	return func(ca *CA) { ca.exposeList = true }
}

// NewCA creates a certificate authority with a fresh signing key.
func NewCA(name string, opts ...Option) (*CA, error) {
	key, err := dcrypto.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("ca key: %w", err)
	}
	ca := &CA{
		name:     name,
		key:      key,
		now:      time.Now,
		enrolled: make(map[string]Certificate),
		issued:   make(map[uint64]Revocation),
		revoked:  make(map[uint64]bool),
	}
	for _, opt := range opts {
		opt(ca)
	}
	return ca, nil
}

// Name returns the CA's name.
func (ca *CA) Name() string { return ca.name }

// PublicKey returns the CA verification key that relying parties pin.
func (ca *CA) PublicKey() dcrypto.PublicKey { return ca.key.Public() }

// certValidity is the default certificate lifetime.
const certValidity = 365 * 24 * time.Hour

// Enroll verifies an identity (out of band, as in any enterprise onboarding
// process) and issues its long-term identity certificate.
func (ca *CA) Enroll(identity string, pub dcrypto.PublicKey) (Certificate, error) {
	if identity == "" {
		return Certificate{}, errors.New("pki: empty identity")
	}
	cert, err := ca.issue(KindIdentity, identity, pub)
	if err != nil {
		return Certificate{}, err
	}
	ca.mu.Lock()
	ca.enrolled[identity] = cert
	ca.mu.Unlock()
	return cert, nil
}

// IssueOneTime certifies a pseudonymous one-time key for an already enrolled
// identity. The resulting certificate is shared only with parties that must
// link the pseudonym to the identity.
func (ca *CA) IssueOneTime(identity string, pub dcrypto.PublicKey) (Certificate, error) {
	ca.mu.Lock()
	_, ok := ca.enrolled[identity]
	ca.mu.Unlock()
	if !ok {
		return Certificate{}, fmt.Errorf("issue one-time cert for %q: %w", identity, ErrUnknownIdentity)
	}
	return ca.issue(KindOneTime, identity, pub)
}

func (ca *CA) issue(kind CertKind, identity string, pub dcrypto.PublicKey) (Certificate, error) {
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.issued[serial] = Revocation{Serial: serial, Identity: identity, Kind: kind}
	ca.mu.Unlock()

	now := ca.now()
	cert := Certificate{
		Serial:    serial,
		Kind:      kind,
		Identity:  identity,
		PublicKey: pub.Bytes(),
		Issuer:    ca.name,
		NotBefore: now,
		NotAfter:  now.Add(certValidity),
	}
	sig, err := ca.key.Sign(cert.payload())
	if err != nil {
		return Certificate{}, fmt.Errorf("sign certificate: %w", err)
	}
	cert.Sig = sig
	return cert, nil
}

// Revoke invalidates a certificate by serial number, appends the
// revocation to the log under a fresh epoch, and notifies subscribers.
// Revoking an already-revoked serial is a no-op: the epoch never advances
// without a log entry, so delta reads stay exact. Subscribers run after the
// CA lock is released, so a subscriber may call back into the CA (e.g.
// RevokedSince) without deadlocking.
func (ca *CA) Revoke(serial uint64) {
	ca.mu.Lock()
	if ca.revoked[serial] {
		ca.mu.Unlock()
		return
	}
	ca.revoked[serial] = true
	rev := ca.issued[serial] // zero Identity/Kind for a serial this CA never issued
	// The issuance record is only ever needed here; dropping it caps
	// ca.issued growth for revoked serials (the data lives on in revLog).
	delete(ca.issued, serial)
	rev.Serial = serial
	rev.Epoch = ca.revEpoch.Add(1)
	if rev.Kind == KindIdentity {
		if cur, enrolled := ca.enrolled[rev.Identity]; enrolled && cur.Serial != serial {
			rev.Superseded = true
		}
	}
	ca.revLog = append(ca.revLog, rev)
	subs := make([]func(Revocation), 0, len(ca.onRevoke))
	for _, fn := range ca.onRevoke {
		subs = append(subs, fn)
	}
	ca.mu.Unlock()
	for _, fn := range subs {
		fn(rev)
	}
}

// RevocationVersion returns the current revocation epoch: 0 before any
// revocation, then the epoch of the latest log entry. It is lock-free, so
// relying parties can probe it on every request and fetch the delta only
// when the version moved.
func (ca *CA) RevocationVersion() uint64 { return ca.revEpoch.Load() }

// RevokedSince returns the revocations issued after the given epoch, in
// epoch order, plus the current revocation version. A caller that applies
// the delta and remembers the returned version sees every revocation
// exactly once.
func (ca *CA) RevokedSince(epoch uint64) ([]Revocation, uint64) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	v := ca.revEpoch.Load()
	if epoch >= v {
		return nil, v
	}
	// Epochs are dense: log entry i carries epoch i+1, so the delta after
	// `epoch` starts at index `epoch`.
	return append([]Revocation(nil), ca.revLog[epoch:]...), v
}

// IsRevoked reports whether a serial has been revoked.
func (ca *CA) IsRevoked(serial uint64) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.revoked[serial]
}

// OnRevoke subscribes to revocations: fn runs on every future Revoke, after
// the CA lock is released, in revocation order with respect to that serial.
// Subscribers must be fast or hand off; they run on the revoker's
// goroutine. The returned cancel detaches the subscription (idempotent) —
// a relying party that does not outlive the CA must call it, or the CA
// keeps it reachable and keeps notifying it forever.
func (ca *CA) OnRevoke(fn func(Revocation)) (cancel func()) {
	if fn == nil {
		return func() {}
	}
	ca.mu.Lock()
	if ca.onRevoke == nil {
		ca.onRevoke = make(map[uint64]func(Revocation))
	}
	id := ca.nextSub
	ca.nextSub++
	ca.onRevoke[id] = fn
	ca.mu.Unlock()
	return func() {
		ca.mu.Lock()
		delete(ca.onRevoke, id)
		ca.mu.Unlock()
	}
}

// Verify checks a certificate's signature, validity window, and revocation
// status against this CA.
func (ca *CA) Verify(cert Certificate) error {
	if err := VerifyCertificate(cert, ca.PublicKey(), ca.now()); err != nil {
		return err
	}
	ca.mu.Lock()
	revoked := ca.revoked[cert.Serial]
	ca.mu.Unlock()
	if revoked {
		return ErrRevoked
	}
	return nil
}

// VerifyCertificate validates a certificate against a pinned CA key without
// consulting revocation state. Relying parties that only hold the CA public
// key use this form.
func VerifyCertificate(cert Certificate, caKey dcrypto.PublicKey, at time.Time) error {
	if at.Before(cert.NotBefore) || at.After(cert.NotAfter) {
		return ErrExpired
	}
	if err := caKey.Verify(cert.payload(), cert.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	return nil
}

// Members returns the global membership list if the CA exposes one, or
// ErrMembershipHidden otherwise.
func (ca *CA) Members() ([]string, error) {
	if !ca.exposeList {
		return nil, ErrMembershipHidden
	}
	ca.mu.Lock()
	defer ca.mu.Unlock()
	out := make([]string, 0, len(ca.enrolled))
	for id := range ca.enrolled {
		out = append(out, id)
	}
	return out, nil
}

// ErrMembershipHidden is returned when the CA does not expose a global
// membership list.
var ErrMembershipHidden = errors.New("pki: membership list not exposed")

// CertificateOf returns the identity certificate for an enrolled party.
func (ca *CA) CertificateOf(identity string) (Certificate, error) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	cert, ok := ca.enrolled[identity]
	if !ok {
		return Certificate{}, ErrUnknownIdentity
	}
	return cert, nil
}
