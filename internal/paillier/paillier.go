// Package paillier implements the Paillier cryptosystem, the canonical
// partially (additively) homomorphic encryption scheme. The paper (§2.2,
// "Homomorphic computation") notes that homomorphic methods enable only "a
// very limited set of operations" and are infeasible for current systems;
// this package both demonstrates the capability (ciphertext addition and
// plaintext-scalar multiplication) and, through the benchmark harness,
// quantifies the cost underlying the paper's infeasibility claim.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by the cryptosystem.
var (
	// ErrMessageRange is returned when a plaintext is outside [0, N).
	ErrMessageRange = errors.New("paillier: message out of range")
	// ErrBadCiphertext is returned for ciphertexts outside the valid
	// group.
	ErrBadCiphertext = errors.New("paillier: invalid ciphertext")
	// ErrKeySize is returned for modulus sizes that are too small to be
	// meaningful even in tests.
	ErrKeySize = errors.New("paillier: key size must be at least 256 bits")
)

// PublicKey is a Paillier encryption key.
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // N^2, cached
	G  *big.Int // generator, N+1
}

// PrivateKey is a Paillier decryption key.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod N^2))^-1 mod N
}

// GenerateKey creates a key pair with an n-bit modulus. 2048 bits is a
// realistic production size; tests use smaller moduli for speed.
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < 256 {
		return nil, ErrKeySize
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("generate prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, big.NewInt(1))

		// mu = (L(g^lambda mod n^2))^-1 mod n
		gl := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(gl, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, G: g},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
}

// lFunc computes L(x) = (x - 1) / n.
func lFunc(x, n *big.Int) *big.Int {
	out := new(big.Int).Sub(x, big.NewInt(1))
	return out.Div(out, n)
}

// Ciphertext is a Paillier ciphertext.
type Ciphertext struct {
	C *big.Int
}

// Encrypt encrypts m in [0, N) under the public key.
func (pk *PublicKey) Encrypt(m *big.Int) (Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return Ciphertext{}, ErrMessageRange
	}
	r, err := pk.randomUnit()
	if err != nil {
		return Ciphertext{}, err
	}
	// c = g^m * r^N mod N^2; with g = N+1, g^m = 1 + m*N mod N^2.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := new(big.Int).Mul(gm, rn)
	c.Mod(c, pk.N2)
	return Ciphertext{C: c}, nil
}

func (pk *PublicKey) randomUnit() (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, fmt.Errorf("sample randomizer: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			return r, nil
		}
	}
}

// Decrypt recovers the plaintext.
func (sk *PrivateKey) Decrypt(ct Ciphertext) (*big.Int, error) {
	if err := sk.validate(ct); err != nil {
		return nil, err
	}
	cl := new(big.Int).Exp(ct.C, sk.lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.mu)
	m.Mod(m, sk.N)
	return m, nil
}

func (pk *PublicKey) validate(ct Ciphertext) error {
	if ct.C == nil || ct.C.Sign() <= 0 || ct.C.Cmp(pk.N2) >= 0 {
		return ErrBadCiphertext
	}
	return nil
}

// Add returns the encryption of the sum of the two plaintexts.
func (pk *PublicKey) Add(a, b Ciphertext) (Ciphertext, error) {
	if err := pk.validate(a); err != nil {
		return Ciphertext{}, err
	}
	if err := pk.validate(b); err != nil {
		return Ciphertext{}, err
	}
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return Ciphertext{C: c}, nil
}

// AddPlain returns the encryption of (plaintext of ct) + m.
func (pk *PublicKey) AddPlain(ct Ciphertext, m *big.Int) (Ciphertext, error) {
	if err := pk.validate(ct); err != nil {
		return Ciphertext{}, err
	}
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return Ciphertext{}, ErrMessageRange
	}
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	c := new(big.Int).Mul(ct.C, gm)
	c.Mod(c, pk.N2)
	return Ciphertext{C: c}, nil
}

// MulScalar returns the encryption of k times the plaintext.
func (pk *PublicKey) MulScalar(ct Ciphertext, k *big.Int) (Ciphertext, error) {
	if err := pk.validate(ct); err != nil {
		return Ciphertext{}, err
	}
	if k.Sign() < 0 {
		return Ciphertext{}, ErrMessageRange
	}
	return Ciphertext{C: new(big.Int).Exp(ct.C, k, pk.N2)}, nil
}

// Sub returns the encryption of (plaintext of a) - (plaintext of b),
// computed homomorphically as a + (N-1)*b. The result decrypts to the
// difference mod N; callers wanting signed semantics must know a >= b, the
// usual Paillier caveat.
func (pk *PublicKey) Sub(a, b Ciphertext) (Ciphertext, error) {
	negB, err := pk.MulScalar(b, new(big.Int).Sub(pk.N, big.NewInt(1)))
	if err != nil {
		return Ciphertext{}, err
	}
	return pk.Add(a, negB)
}

// Rerandomize refreshes a ciphertext so it is unlinkable to its origin while
// preserving the plaintext.
func (pk *PublicKey) Rerandomize(ct Ciphertext) (Ciphertext, error) {
	if err := pk.validate(ct); err != nil {
		return Ciphertext{}, err
	}
	r, err := pk.randomUnit()
	if err != nil {
		return Ciphertext{}, err
	}
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := new(big.Int).Mul(ct.C, rn)
	c.Mod(c, pk.N2)
	return Ciphertext{C: c}, nil
}
