package paillier

import (
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKey caches one key pair across tests: generation dominates runtime.
var (
	testKeyOnce sync.Once
	testKey     *PrivateKey
)

func key(t *testing.T) *PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		k, err := GenerateKey(512)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestEncryptDecrypt(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, 42, 1 << 30} {
		pt := big.NewInt(m)
		ct, err := sk.Encrypt(pt)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got.Cmp(pt) != 0 {
			t.Fatalf("Decrypt = %v, want %v", got, pt)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.Encrypt(big.NewInt(-1)); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("Encrypt(-1) = %v, want ErrMessageRange", err)
	}
	if _, err := sk.Encrypt(new(big.Int).Set(sk.N)); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("Encrypt(N) = %v, want ErrMessageRange", err)
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(1200))
	b, _ := sk.Encrypt(big.NewInt(34))
	sum, err := sk.Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got.Int64() != 1234 {
		t.Fatalf("homomorphic add = %v, want 1234", got)
	}
}

func TestHomomorphicAddPlain(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(100))
	sum, err := sk.AddPlain(a, big.NewInt(23))
	if err != nil {
		t.Fatalf("AddPlain: %v", err)
	}
	got, _ := sk.Decrypt(sum)
	if got.Int64() != 123 {
		t.Fatalf("AddPlain = %v, want 123", got)
	}
}

func TestHomomorphicMulScalar(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(7))
	prod, err := sk.MulScalar(a, big.NewInt(6))
	if err != nil {
		t.Fatalf("MulScalar: %v", err)
	}
	got, _ := sk.Decrypt(prod)
	if got.Int64() != 42 {
		t.Fatalf("MulScalar = %v, want 42", got)
	}
}

func TestHomomorphicSub(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(1000))
	b, _ := sk.Encrypt(big.NewInt(58))
	diff, err := sk.Sub(a, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	got, err := sk.Decrypt(diff)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got.Int64() != 942 {
		t.Fatalf("Sub = %v, want 942", got)
	}
}

func TestHomomorphicSubUnderflowWraps(t *testing.T) {
	// a < b wraps mod N — documented Paillier behaviour.
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(1))
	b, _ := sk.Encrypt(big.NewInt(2))
	diff, err := sk.Sub(a, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	got, _ := sk.Decrypt(diff)
	want := new(big.Int).Sub(sk.N, big.NewInt(1))
	if got.Cmp(want) != 0 {
		t.Fatalf("underflow = %v, want N-1", got)
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	sk := key(t)
	ct, _ := sk.Encrypt(big.NewInt(99))
	fresh, err := sk.Rerandomize(ct)
	if err != nil {
		t.Fatalf("Rerandomize: %v", err)
	}
	if fresh.C.Cmp(ct.C) == 0 {
		t.Fatal("rerandomized ciphertext must differ")
	}
	got, _ := sk.Decrypt(fresh)
	if got.Int64() != 99 {
		t.Fatalf("rerandomized plaintext = %v, want 99", got)
	}
}

func TestCiphertextsProbabilistic(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(5))
	b, _ := sk.Encrypt(big.NewInt(5))
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two encryptions of the same plaintext must differ")
	}
}

func TestBadCiphertextRejected(t *testing.T) {
	sk := key(t)
	bad := Ciphertext{C: new(big.Int).Set(sk.N2)}
	if _, err := sk.Decrypt(bad); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("Decrypt(N^2) = %v, want ErrBadCiphertext", err)
	}
	if _, err := sk.Decrypt(Ciphertext{}); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("Decrypt(nil) = %v, want ErrBadCiphertext", err)
	}
	good, _ := sk.Encrypt(big.NewInt(1))
	if _, err := sk.Add(good, bad); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("Add(bad) = %v, want ErrBadCiphertext", err)
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(128); !errors.Is(err, ErrKeySize) {
		t.Fatalf("GenerateKey(128) = %v, want ErrKeySize", err)
	}
}

func TestHomomorphismProperty(t *testing.T) {
	sk := key(t)
	f := func(a, b uint32) bool {
		ca, err := sk.Encrypt(big.NewInt(int64(a)))
		if err != nil {
			return false
		}
		cb, err := sk.Encrypt(big.NewInt(int64(b)))
		if err != nil {
			return false
		}
		sum, err := sk.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := sk.Decrypt(sum)
		if err != nil {
			return false
		}
		return got.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
