package ledger

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dltprivacy/internal/dcrypto"
)

func tx(channel, creator, key, value string) Transaction {
	return Transaction{
		Channel:   channel,
		Creator:   creator,
		Payload:   []byte(value),
		Writes:    []Write{{Key: key, Value: []byte(value)}},
		Timestamp: time.Unix(1700000000, 0).UTC(),
	}
}

func appendBlock(t *testing.T, l *Ledger, txs ...Transaction) Block {
	t.Helper()
	b := l.CutBlock(txs)
	if err := l.Append(b); err != nil {
		t.Fatalf("Append block %d: %v", b.Number, err)
	}
	return b
}

func TestAppendAndGet(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "BankA", "k1", "v1"))
	got, err := l.Get("k1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Value) != "v1" || got.BlockNum != 0 {
		t.Fatalf("Get = %+v", got)
	}
	if l.Height() != 1 {
		t.Fatalf("Height = %d, want 1", l.Height())
	}
}

func TestGetMissing(t *testing.T) {
	l := New("trade")
	if _, err := l.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestHashChainEnforced(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "BankA", "k1", "v1"))
	bad := l.CutBlock([]Transaction{tx("trade", "BankA", "k2", "v2")})
	bad.PrevHash = [32]byte{0xde, 0xad}
	if err := l.Append(bad); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("broken chain = %v, want ErrBadBlock", err)
	}
}

func TestWrongBlockNumber(t *testing.T) {
	l := New("trade")
	b := l.CutBlock([]Transaction{tx("trade", "A", "k", "v")})
	b.Number = 7
	if err := l.Append(b); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("wrong number = %v, want ErrBadBlock", err)
	}
}

func TestDataHashMismatch(t *testing.T) {
	l := New("trade")
	b := l.CutBlock([]Transaction{tx("trade", "A", "k", "v")})
	b.Txs = append(b.Txs, tx("trade", "B", "k2", "v2")) // tamper after cut
	if err := l.Append(b); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("tampered data = %v, want ErrBadBlock", err)
	}
}

func TestStructuralValidation(t *testing.T) {
	l := New("trade")
	cases := []Transaction{
		{Creator: "A", Writes: []Write{{Key: "k"}}},                                                     // no channel
		{Channel: "trade", Writes: []Write{{Key: "k"}}},                                                 // no creator
		{Channel: "trade", Creator: "A", Writes: []Write{{Key: ""}}},                                    // empty key
		{Channel: "trade", Creator: "A", Writes: []Write{{Key: "k", Delete: true, Value: []byte("x")}}}, // delete+value
	}
	for i, bad := range cases {
		b := l.CutBlock([]Transaction{bad})
		if err := l.Append(b); !errors.Is(err, ErrBadTx) {
			t.Fatalf("case %d: Append = %v, want ErrBadTx", i, err)
		}
	}
}

func TestEndorsementsVerified(t *testing.T) {
	l := New("trade")
	key, _ := dcrypto.GenerateKey()
	good := tx("trade", "BankA", "k", "v")
	if err := good.Endorse("BankA", key); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	appendBlock(t, l, good)

	// Tampering after endorsement invalidates the signature.
	bad := tx("trade", "BankA", "k2", "v2")
	if err := bad.Endorse("BankA", key); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	bad.Payload = []byte("tampered")
	b := l.CutBlock([]Transaction{bad})
	if err := l.Append(b); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered endorsement = %v, want ErrBadSignature", err)
	}
}

func TestEndorsedBy(t *testing.T) {
	key, _ := dcrypto.GenerateKey()
	tr := tx("trade", "A", "k", "v")
	if err := tr.Endorse("BankA", key); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	if !tr.EndorsedBy("BankA") || tr.EndorsedBy("BankB") {
		t.Fatal("EndorsedBy mismatch")
	}
}

func TestCustomValidator(t *testing.T) {
	l := New("trade")
	l.SetValidator(func(tx Transaction) error {
		if tx.Creator == "Mallory" {
			return errors.New("unwelcome creator")
		}
		return nil
	})
	appendBlock(t, l, tx("trade", "BankA", "k", "v"))
	b := l.CutBlock([]Transaction{tx("trade", "Mallory", "k2", "v2")})
	if err := l.Append(b); err == nil {
		t.Fatal("validator rejection must fail Append")
	}
}

func TestDeleteWrite(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "A", "k", "v"))
	del := Transaction{
		Channel: "trade", Creator: "A",
		Writes:    []Write{{Key: "k", Delete: true}},
		Timestamp: time.Unix(1700000001, 0).UTC(),
	}
	appendBlock(t, l, del)
	if _, err := l.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get deleted = %v, want ErrNotFound", err)
	}
}

func TestVersionTracking(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "A", "k", "v1"))
	appendBlock(t, l, tx("trade", "A", "k", "v2"))
	got, _ := l.Get("k")
	if got.BlockNum != 1 || string(got.Value) != "v2" {
		t.Fatalf("version = %+v, want block 1 v2", got)
	}
}

func TestPruneAndArchive(t *testing.T) {
	l := New("trade")
	for i := 0; i < 5; i++ {
		appendBlock(t, l, tx("trade", "A", fmt.Sprintf("k%d", i), "v"))
	}
	moved, err := l.Prune(3)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if moved != 3 || l.LiveBlocks() != 2 {
		t.Fatalf("moved=%d live=%d, want 3, 2", moved, l.LiveBlocks())
	}
	// Pruned blocks are gone from the live chain…
	if _, err := l.Block(1); !errors.Is(err, ErrArchived) {
		t.Fatalf("Block(1) = %v, want ErrArchived", err)
	}
	// …but remain available on request (§3.2).
	b, err := l.Archived(1)
	if err != nil || b.Number != 1 {
		t.Fatalf("Archived(1) = %+v, %v", b, err)
	}
	// Live blocks still addressable by absolute number.
	if b, err := l.Block(4); err != nil || b.Number != 4 {
		t.Fatalf("Block(4) = %+v, %v", b, err)
	}
	// World state unaffected by pruning.
	if _, err := l.Get("k0"); err != nil {
		t.Fatalf("Get after prune: %v", err)
	}
	// Chain still verifies end to end.
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain after prune: %v", err)
	}
}

func TestPruneBeyondHeight(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "A", "k", "v"))
	if _, err := l.Prune(2); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("Prune beyond height = %v, want ErrBadBlock", err)
	}
}

func TestPruneIdempotent(t *testing.T) {
	l := New("trade")
	for i := 0; i < 3; i++ {
		appendBlock(t, l, tx("trade", "A", fmt.Sprintf("k%d", i), "v"))
	}
	if _, err := l.Prune(2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	moved, err := l.Prune(2)
	if err != nil || moved != 0 {
		t.Fatalf("second Prune = %d, %v; want 0, nil", moved, err)
	}
}

func TestBlockBeyondTip(t *testing.T) {
	l := New("trade")
	if _, err := l.Block(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Block(0) on empty = %v, want ErrNotFound", err)
	}
	if _, err := l.Archived(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Archived(0) on empty = %v, want ErrNotFound", err)
	}
}

func TestVerifyChain(t *testing.T) {
	l := New("trade")
	for i := 0; i < 4; i++ {
		appendBlock(t, l, tx("trade", "A", fmt.Sprintf("k%d", i), "v"))
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestTxIDStable(t *testing.T) {
	a := tx("trade", "A", "k", "v")
	b := tx("trade", "A", "k", "v")
	if a.ID() != b.ID() {
		t.Fatal("identical txs must share an ID")
	}
	c := tx("trade", "A", "k", "other")
	if a.ID() == c.ID() {
		t.Fatal("different txs must differ in ID")
	}
}

func TestTxIDIgnoresEndorsements(t *testing.T) {
	key, _ := dcrypto.GenerateKey()
	a := tx("trade", "A", "k", "v")
	id := a.ID()
	if err := a.Endorse("A", key); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	if a.ID() != id {
		t.Fatal("endorsements must not change the tx ID")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "A", "k", "v"))
	got, _ := l.Get("k")
	got.Value[0] = 'X'
	again, _ := l.Get("k")
	if string(again.Value) != "v" {
		t.Fatal("Get must return a defensive copy")
	}
}

func TestGetByPrefix(t *testing.T) {
	l := New("trade")
	appendBlock(t, l,
		tx("trade", "A", "loc/1", "a"),
		tx("trade", "A", "loc/2", "b"),
		tx("trade", "A", "other", "c"),
	)
	got := l.GetByPrefix("loc/")
	if len(got) != 2 || string(got["loc/1"]) != "a" || string(got["loc/2"]) != "b" {
		t.Fatalf("GetByPrefix = %v", got)
	}
	// Returned values are copies.
	got["loc/1"][0] = 'X'
	again := l.GetByPrefix("loc/")
	if string(again["loc/1"]) != "a" {
		t.Fatal("GetByPrefix must return copies")
	}
	if len(l.GetByPrefix("zzz")) != 0 {
		t.Fatal("unmatched prefix must be empty")
	}
}

func TestKeys(t *testing.T) {
	l := New("trade")
	appendBlock(t, l, tx("trade", "A", "a", "1"), tx("trade", "A", "b", "2"))
	if got := len(l.Keys()); got != 2 {
		t.Fatalf("Keys = %d, want 2", got)
	}
}
