package ledger

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestLedgerMatchesMapModel is a model-based property test: a random
// sequence of writes, deletes, and prunes applied to the ledger must leave
// the world state identical to a plain map model, and the chain must verify
// after every operation batch.
func TestLedgerMatchesMapModel(t *testing.T) {
	const (
		seeds     = 8
		opsPerRun = 120
		keySpace  = 12
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l := New("model")
			model := make(map[string]string)
			for op := 0; op < opsPerRun; op++ {
				key := fmt.Sprintf("k%d", rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // write
					value := fmt.Sprintf("v%d-%d", op, rng.Intn(1000))
					commit(t, l, Write{Key: key, Value: []byte(value)})
					model[key] = value
				case 6, 7: // delete
					if _, ok := model[key]; !ok {
						continue
					}
					commit(t, l, Write{Key: key, Delete: true})
					delete(model, key)
				case 8: // prune a random prefix
					if l.Height() > 1 {
						upTo := uint64(rng.Intn(int(l.Height())))
						if _, err := l.Prune(upTo); err != nil {
							t.Fatalf("Prune(%d): %v", upTo, err)
						}
					}
				case 9: // verify mid-run
					if err := l.VerifyChain(); err != nil {
						t.Fatalf("VerifyChain: %v", err)
					}
				}
			}
			// Final equivalence check.
			if got, want := len(l.Keys()), len(model); got != want {
				t.Fatalf("key count = %d, model = %d", got, want)
			}
			for key, want := range model {
				v, err := l.Get(key)
				if err != nil {
					t.Fatalf("Get(%s): %v", key, err)
				}
				if string(v.Value) != want {
					t.Fatalf("Get(%s) = %q, model %q", key, v.Value, want)
				}
			}
			if err := l.VerifyChain(); err != nil {
				t.Fatalf("final VerifyChain: %v", err)
			}
		})
	}
}

func commit(t *testing.T, l *Ledger, w Write) {
	t.Helper()
	tx := Transaction{
		Channel:   "model",
		Creator:   "modeler",
		Writes:    []Write{w},
		Timestamp: time.Unix(1700000000, 0).UTC(),
	}
	if err := l.Append(l.CutBlock([]Transaction{tx})); err != nil {
		t.Fatalf("Append: %v", err)
	}
}
