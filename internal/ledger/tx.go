// Package ledger implements the append-only block ledger substrate: signed
// transactions with read/write sets, hash-chained blocks, a versioned world
// state, a validation pipeline, and the pruning/archiving behaviour the paper
// notes in §3.2 ("some ledger implementations offer the ability to 'prune'
// the chain … archived entries are generally still available to parties on
// request").
package ledger

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by transaction handling.
var (
	// ErrBadTx is returned when a transaction fails structural checks.
	ErrBadTx = errors.New("ledger: invalid transaction")
	// ErrBadSignature is returned when an endorsement signature does not
	// verify.
	ErrBadSignature = errors.New("ledger: endorsement signature invalid")
)

// Write is one world-state mutation.
type Write struct {
	Key    string `json:"key"`
	Value  []byte `json:"value,omitempty"`
	Delete bool   `json:"delete,omitempty"`
}

// Endorsement is a party's signature over the transaction digest.
type Endorsement struct {
	Party     string            `json:"party"`
	PublicKey []byte            `json:"publicKey"`
	Sig       dcrypto.Signature `json:"sig"`
}

// Transaction is a proposed ledger update. Payload carries application
// content (possibly encrypted or hashed, depending on the confidentiality
// mechanism in force); Writes carries the world-state effect.
type Transaction struct {
	Channel   string            `json:"channel"`
	Creator   string            `json:"creator"`
	Contract  string            `json:"contract,omitempty"`
	Payload   []byte            `json:"payload,omitempty"`
	Writes    []Write           `json:"writes,omitempty"`
	Meta      map[string]string `json:"meta,omitempty"`
	Timestamp time.Time         `json:"timestamp"`

	Endorsements []Endorsement `json:"endorsements,omitempty"`
}

// digestBufPool recycles the staging buffers of transaction digests: the
// digest sits on the ordering submit path (once for the operator's audit
// observation, once per block cut), so it must not re-serialize the whole
// transaction through reflection on every call.
var digestBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeLenPrefixed appends a length-prefixed field, keeping the encoding
// injective (no field concatenation can collide with another split).
func writeLenPrefixed(buf *bytes.Buffer, b []byte) {
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(b)))
	buf.Write(l[:])
	buf.Write(b)
}

func writeLenPrefixedString(buf *bytes.Buffer, s string) {
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(s)))
	buf.Write(l[:])
	buf.WriteString(s)
}

// Digest returns the canonical hash of the signed content of the
// transaction (everything except the endorsements): length-prefixed fields
// in fixed order, meta keys sorted, the timestamp as UTC nanoseconds. The
// canonical form is hashed straight out of a pooled buffer — no JSON, no
// reflection — because every ordered transaction pays this at least twice
// (submit-side observation and block data hash).
func (tx Transaction) Digest() [32]byte {
	buf := digestBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString("ledger/tx/v2")
	writeLenPrefixedString(buf, tx.Channel)
	writeLenPrefixedString(buf, tx.Creator)
	writeLenPrefixedString(buf, tx.Contract)
	writeLenPrefixed(buf, tx.Payload)
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(tx.Writes)))
	buf.Write(l[:])
	for _, w := range tx.Writes {
		writeLenPrefixedString(buf, w.Key)
		writeLenPrefixed(buf, w.Value)
		if w.Delete {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	binary.BigEndian.PutUint64(l[:], uint64(len(tx.Meta)))
	buf.Write(l[:])
	if len(tx.Meta) > 0 {
		keys := make([]string, 0, len(tx.Meta))
		for k := range tx.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeLenPrefixedString(buf, k)
			writeLenPrefixedString(buf, tx.Meta[k])
		}
	}
	binary.BigEndian.PutUint64(l[:], uint64(tx.Timestamp.UTC().UnixNano()))
	buf.Write(l[:])
	out := dcrypto.Hash(buf.Bytes())
	digestBufPool.Put(buf)
	return out
}

// ID returns the transaction identifier, the hex form of the digest.
func (tx Transaction) ID() string {
	d := tx.Digest()
	return hex.EncodeToString(d[:16])
}

// Endorse appends a signature by the given party over the tx digest.
func (tx *Transaction) Endorse(party string, key interface {
	Sign([]byte) (dcrypto.Signature, error)
	Public() dcrypto.PublicKey
}) error {
	d := tx.Digest()
	sig, err := key.Sign(d[:])
	if err != nil {
		return fmt.Errorf("endorse tx %s: %w", tx.ID(), err)
	}
	tx.Endorsements = append(tx.Endorsements, Endorsement{
		Party:     party,
		PublicKey: key.Public().Bytes(),
		Sig:       sig,
	})
	return nil
}

// VerifyEndorsements checks every endorsement signature.
func (tx Transaction) VerifyEndorsements() error {
	d := tx.Digest()
	for _, e := range tx.Endorsements {
		pub, err := dcrypto.ParsePublicKey(e.PublicKey)
		if err != nil {
			return fmt.Errorf("endorsement by %s: %w", e.Party, ErrBadSignature)
		}
		if err := pub.Verify(d[:], e.Sig); err != nil {
			return fmt.Errorf("endorsement by %s: %w", e.Party, ErrBadSignature)
		}
	}
	return nil
}

// EndorsedBy reports whether the named party endorsed the transaction.
func (tx Transaction) EndorsedBy(party string) bool {
	for _, e := range tx.Endorsements {
		if e.Party == party {
			return true
		}
	}
	return false
}

// Validate performs structural checks.
func (tx Transaction) Validate() error {
	if tx.Channel == "" {
		return fmt.Errorf("%w: missing channel", ErrBadTx)
	}
	if tx.Creator == "" {
		return fmt.Errorf("%w: missing creator", ErrBadTx)
	}
	for _, w := range tx.Writes {
		if w.Key == "" {
			return fmt.Errorf("%w: write with empty key", ErrBadTx)
		}
		if w.Delete && len(w.Value) > 0 {
			return fmt.Errorf("%w: delete write carries a value", ErrBadTx)
		}
	}
	return nil
}
