// Package ledger implements the append-only block ledger substrate: signed
// transactions with read/write sets, hash-chained blocks, a versioned world
// state, a validation pipeline, and the pruning/archiving behaviour the paper
// notes in §3.2 ("some ledger implementations offer the ability to 'prune'
// the chain … archived entries are generally still available to parties on
// request").
package ledger

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by transaction handling.
var (
	// ErrBadTx is returned when a transaction fails structural checks.
	ErrBadTx = errors.New("ledger: invalid transaction")
	// ErrBadSignature is returned when an endorsement signature does not
	// verify.
	ErrBadSignature = errors.New("ledger: endorsement signature invalid")
)

// Write is one world-state mutation.
type Write struct {
	Key    string `json:"key"`
	Value  []byte `json:"value,omitempty"`
	Delete bool   `json:"delete,omitempty"`
}

// Endorsement is a party's signature over the transaction digest.
type Endorsement struct {
	Party     string            `json:"party"`
	PublicKey []byte            `json:"publicKey"`
	Sig       dcrypto.Signature `json:"sig"`
}

// Transaction is a proposed ledger update. Payload carries application
// content (possibly encrypted or hashed, depending on the confidentiality
// mechanism in force); Writes carries the world-state effect.
type Transaction struct {
	Channel   string            `json:"channel"`
	Creator   string            `json:"creator"`
	Contract  string            `json:"contract,omitempty"`
	Payload   []byte            `json:"payload,omitempty"`
	Writes    []Write           `json:"writes,omitempty"`
	Meta      map[string]string `json:"meta,omitempty"`
	Timestamp time.Time         `json:"timestamp"`

	Endorsements []Endorsement `json:"endorsements,omitempty"`

	// digestMemo caches the canonical digest once PrimeDigest has run. A
	// pointer, so it rides along value copies of a primed transaction
	// (into an ordering service's pending slice, into a cut block) and the
	// block data hash reuses the submit-side computation instead of
	// re-serializing and re-hashing the full payload. Wire-decoded and
	// hand-built transactions have a nil memo and hash from content as
	// before. The holder must treat a primed transaction as immutable —
	// which ordered transactions already are.
	digestMemo *[32]byte
}

// PrimeDigest computes and caches the canonical digest. Callers that hash
// a transaction more than once on a hot path (an ordering service digests
// every transaction at observation and again at block cut) prime it once
// at intake; the transaction must not be mutated afterwards.
func (tx *Transaction) PrimeDigest() {
	if tx.digestMemo != nil {
		return
	}
	d := tx.digest()
	tx.digestMemo = &d
}

// Digest returns the canonical hash of the signed content of the
// transaction (everything except the endorsements): length-prefixed fields
// in fixed order, meta keys sorted, the timestamp as UTC nanoseconds. The
// canonical form streams straight into a pooled SHA-256 state — no JSON,
// no reflection, and no staging buffer, so a large payload (a batch
// stage's sealed group frame runs to tens of kilobytes) is hashed in
// place instead of memmoved through scratch first — because every ordered
// transaction pays this at least twice (submit-side observation and block
// data hash).
func (tx Transaction) Digest() [32]byte {
	if tx.digestMemo != nil {
		return *tx.digestMemo
	}
	return tx.digest()
}

// digest is the uncached canonical-form hash. The ConcatHasher's Part
// framing (8-byte big-endian length prefix, then the bytes) is the same
// framing the v2 canonical form has always used, so the digest is
// byte-identical to the staged-buffer implementation it replaces.
func (tx Transaction) digest() [32]byte {
	h := dcrypto.NewConcatHasher()
	h.RawString("ledger/tx/v2")
	h.PartString(tx.Channel)
	h.PartString(tx.Creator)
	h.PartString(tx.Contract)
	h.Part(tx.Payload)
	h.RawUint64(uint64(len(tx.Writes)))
	for _, w := range tx.Writes {
		h.PartString(w.Key)
		h.Part(w.Value)
		if w.Delete {
			h.RawByte(1)
		} else {
			h.RawByte(0)
		}
	}
	h.RawUint64(uint64(len(tx.Meta)))
	if len(tx.Meta) > 0 {
		keys := make([]string, 0, len(tx.Meta))
		for k := range tx.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h.PartString(k)
			h.PartString(tx.Meta[k])
		}
	}
	h.RawUint64(uint64(tx.Timestamp.UTC().UnixNano()))
	return h.Sum()
}

// ID returns the transaction identifier, the hex form of the digest.
func (tx Transaction) ID() string {
	d := tx.Digest()
	return hex.EncodeToString(d[:16])
}

// Endorse appends a signature by the given party over the tx digest.
func (tx *Transaction) Endorse(party string, key interface {
	Sign([]byte) (dcrypto.Signature, error)
	Public() dcrypto.PublicKey
}) error {
	d := tx.Digest()
	sig, err := key.Sign(d[:])
	if err != nil {
		return fmt.Errorf("endorse tx %s: %w", tx.ID(), err)
	}
	tx.Endorsements = append(tx.Endorsements, Endorsement{
		Party:     party,
		PublicKey: key.Public().Bytes(),
		Sig:       sig,
	})
	return nil
}

// VerifyEndorsements checks every endorsement signature.
func (tx Transaction) VerifyEndorsements() error {
	d := tx.Digest()
	for _, e := range tx.Endorsements {
		pub, err := dcrypto.ParsePublicKey(e.PublicKey)
		if err != nil {
			return fmt.Errorf("endorsement by %s: %w", e.Party, ErrBadSignature)
		}
		if err := pub.Verify(d[:], e.Sig); err != nil {
			return fmt.Errorf("endorsement by %s: %w", e.Party, ErrBadSignature)
		}
	}
	return nil
}

// EndorsedBy reports whether the named party endorsed the transaction.
func (tx Transaction) EndorsedBy(party string) bool {
	for _, e := range tx.Endorsements {
		if e.Party == party {
			return true
		}
	}
	return false
}

// Validate performs structural checks.
func (tx Transaction) Validate() error {
	if tx.Channel == "" {
		return fmt.Errorf("%w: missing channel", ErrBadTx)
	}
	if tx.Creator == "" {
		return fmt.Errorf("%w: missing creator", ErrBadTx)
	}
	for _, w := range tx.Writes {
		if w.Key == "" {
			return fmt.Errorf("%w: write with empty key", ErrBadTx)
		}
		if w.Delete && len(w.Value) > 0 {
			return fmt.Errorf("%w: delete write carries a value", ErrBadTx)
		}
	}
	return nil
}
