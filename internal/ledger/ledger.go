package ledger

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by ledger operations.
var (
	// ErrBadBlock is returned when a block fails chain validation.
	ErrBadBlock = errors.New("ledger: invalid block")
	// ErrNotFound is returned when a key or block is absent.
	ErrNotFound = errors.New("ledger: not found")
	// ErrArchived is returned by Block when the requested block has been
	// pruned into the archive; it remains available via Archived.
	ErrArchived = errors.New("ledger: block pruned to archive")
)

// Block is a batch of ordered transactions chained by hash.
type Block struct {
	Number   uint64        `json:"number"`
	PrevHash [32]byte      `json:"prevHash"`
	DataHash [32]byte      `json:"dataHash"`
	Txs      []Transaction `json:"txs"`
}

// computeDataHash hashes the block's transactions by chaining their
// canonical digests — endorsements included via a second digest dimension
// would be redundant here; the per-tx Digest already covers the ordered
// content, and hashing 32-byte digests instead of re-marshalling every
// transaction keeps block cutting off the allocation profile.
func computeDataHash(txs []Transaction) [32]byte {
	h := make([]byte, 0, 32*len(txs))
	for _, tx := range txs {
		d := tx.Digest()
		h = append(h, d[:]...)
	}
	return dcrypto.Hash(h)
}

// NewBlock assembles a block for an external block producer (an ordering
// service) that tracks chain state itself.
func NewBlock(number uint64, prevHash [32]byte, txs []Transaction) Block {
	return Block{
		Number:   number,
		PrevHash: prevHash,
		DataHash: computeDataHash(txs),
		Txs:      txs,
	}
}

// Hash returns the block header hash.
func (b Block) Hash() [32]byte {
	var num [8]byte
	for i := 0; i < 8; i++ {
		num[7-i] = byte(b.Number >> (8 * i))
	}
	return dcrypto.HashConcat(num[:], b.PrevHash[:], b.DataHash[:])
}

// TxValidator vets a transaction before it is committed. Platforms plug in
// endorsement-policy checks here.
type TxValidator func(tx Transaction) error

// Ledger is an append-only chain of blocks with a versioned world state.
type Ledger struct {
	channel string

	mu        sync.RWMutex
	blocks    []Block // live blocks (post-pruning suffix)
	archive   []Block // pruned prefix, still available on request
	height    uint64
	lastHash  [32]byte
	state     map[string]VersionedValue
	validator TxValidator
}

// VersionedValue is a world-state entry with its last-modified version
// (block number, tx index).
type VersionedValue struct {
	Value    []byte
	BlockNum uint64
	TxIndex  int
}

// New creates an empty ledger for a channel.
func New(channel string) *Ledger {
	return &Ledger{
		channel: channel,
		state:   make(map[string]VersionedValue),
	}
}

// SetValidator installs a transaction validator applied during Append.
func (l *Ledger) SetValidator(v TxValidator) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.validator = v
}

// Channel returns the channel name the ledger serves.
func (l *Ledger) Channel() string { return l.channel }

// Height returns the number of blocks appended so far (including pruned).
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.height
}

// CutBlock assembles the next block from transactions; it does not append.
func (l *Ledger) CutBlock(txs []Transaction) Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return Block{
		Number:   l.height,
		PrevHash: l.lastHash,
		DataHash: computeDataHash(txs),
		Txs:      txs,
	}
}

// Append validates and commits a block: chain linkage, per-transaction
// structural validation, endorsement verification, the installed validator,
// and finally world-state application.
func (l *Ledger) Append(b Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.Number != l.height {
		return fmt.Errorf("%w: number %d, want %d", ErrBadBlock, b.Number, l.height)
	}
	if b.PrevHash != l.lastHash {
		return fmt.Errorf("%w: broken hash chain at block %d", ErrBadBlock, b.Number)
	}
	if b.DataHash != computeDataHash(b.Txs) {
		return fmt.Errorf("%w: data hash mismatch at block %d", ErrBadBlock, b.Number)
	}
	for i, tx := range b.Txs {
		if err := tx.Validate(); err != nil {
			return fmt.Errorf("block %d tx %d: %w", b.Number, i, err)
		}
		if err := tx.VerifyEndorsements(); err != nil {
			return fmt.Errorf("block %d tx %d: %w", b.Number, i, err)
		}
		if l.validator != nil {
			if err := l.validator(tx); err != nil {
				return fmt.Errorf("block %d tx %d rejected: %w", b.Number, i, err)
			}
		}
	}
	for i, tx := range b.Txs {
		for _, w := range tx.Writes {
			if w.Delete {
				delete(l.state, w.Key)
				continue
			}
			l.state[w.Key] = VersionedValue{
				Value:    append([]byte(nil), w.Value...),
				BlockNum: b.Number,
				TxIndex:  i,
			}
		}
	}
	l.blocks = append(l.blocks, b)
	l.height++
	l.lastHash = b.Hash()
	return nil
}

// Get reads a world-state value.
func (l *Ledger) Get(key string) (VersionedValue, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	v, ok := l.state[key]
	if !ok {
		return VersionedValue{}, fmt.Errorf("key %q: %w", key, ErrNotFound)
	}
	return VersionedValue{
		Value:    append([]byte(nil), v.Value...),
		BlockNum: v.BlockNum,
		TxIndex:  v.TxIndex,
	}, nil
}

// GetByPrefix returns all live world-state entries whose key starts with
// the prefix, as a key -> value copy map.
func (l *Ledger) GetByPrefix(prefix string) map[string][]byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string][]byte)
	for k, v := range l.state {
		if strings.HasPrefix(k, prefix) {
			out[k] = append([]byte(nil), v.Value...)
		}
	}
	return out
}

// Keys returns all live world-state keys.
func (l *Ledger) Keys() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.state))
	for k := range l.state {
		out = append(out, k)
	}
	return out
}

// Block returns a live block by number, ErrArchived if pruned, ErrNotFound
// beyond the chain tip.
func (l *Ledger) Block(num uint64) (Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if num >= l.height {
		return Block{}, fmt.Errorf("block %d: %w", num, ErrNotFound)
	}
	archived := uint64(len(l.archive))
	if num < archived {
		return Block{}, fmt.Errorf("block %d: %w", num, ErrArchived)
	}
	return l.blocks[num-archived], nil
}

// Archived returns a pruned block on request, mirroring the paper's note
// that archived entries remain available to parties.
func (l *Ledger) Archived(num uint64) (Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if num >= uint64(len(l.archive)) {
		return Block{}, fmt.Errorf("archived block %d: %w", num, ErrNotFound)
	}
	return l.archive[num], nil
}

// Prune moves every block below upTo into the archive. World state is
// unaffected: pruning is an operational storage measure, not deletion.
func (l *Ledger) Prune(upTo uint64) (moved int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	archived := uint64(len(l.archive))
	if upTo > l.height {
		return 0, fmt.Errorf("%w: prune beyond height", ErrBadBlock)
	}
	if upTo <= archived {
		return 0, nil
	}
	n := upTo - archived
	l.archive = append(l.archive, l.blocks[:n]...)
	l.blocks = l.blocks[n:]
	return int(n), nil
}

// LiveBlocks returns the count of unpruned blocks.
func (l *Ledger) LiveBlocks() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.blocks)
}

// VerifyChain walks the full chain (archive + live) and re-checks linkage.
func (l *Ledger) VerifyChain() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev [32]byte
	num := uint64(0)
	check := func(b Block) error {
		if b.Number != num {
			return fmt.Errorf("%w: number %d, want %d", ErrBadBlock, b.Number, num)
		}
		if b.PrevHash != prev {
			return fmt.Errorf("%w: linkage at block %d", ErrBadBlock, b.Number)
		}
		if b.DataHash != computeDataHash(b.Txs) {
			return fmt.Errorf("%w: data hash at block %d", ErrBadBlock, b.Number)
		}
		prev = b.Hash()
		num++
		return nil
	}
	for _, b := range l.archive {
		if err := check(b); err != nil {
			return err
		}
	}
	for _, b := range l.blocks {
		if err := check(b); err != nil {
			return err
		}
	}
	return nil
}
