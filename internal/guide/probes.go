package guide

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"

	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/merkle"
	"dltprivacy/internal/mpc"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/platform/quorum"
	"dltprivacy/internal/tee"
	"dltprivacy/internal/zkp"
)

// DefaultProbes returns the full probe suite regenerating Table 1: one probe
// per cell, with live demonstrations for every native and implementable
// rating and documented rationale for rewrite/N-A ratings.
func DefaultProbes() []Probe {
	rows := Rows()
	probes := make([]Probe, 0, len(rows)*3)
	add := func(rowIdx int, platform Platform, expected Support, demo func() error, rationale string) {
		probes = append(probes, Probe{
			Row:       rows[rowIdx],
			Platform:  platform,
			Expected:  expected,
			Demo:      demo,
			Rationale: rationale,
		})
	}

	// --- Parties: separation of ledgers (row 0) ---
	add(0, HLF, SupportNative, fabricChannelDemo,
		"channels hide members and data from non-members")
	add(0, Corda, SupportNative, cordaP2PDemo,
		"point-to-point distribution: only participants hold transactions")
	add(0, Quorum, SupportNative, quorumPrivatePayloadDemo,
		"private payloads confined to participants (envelope remains public)")

	// --- Parties: one-time public key (row 1) ---
	add(1, HLF, SupportRewrite, nil,
		"Fabric identifies clients by enrollment certificates; per-tx keys require MSP rework")
	add(1, Corda, SupportNative, cordaOneTimeKeyDemo,
		"confidential identities: fresh owner keys per state")
	add(1, Quorum, SupportImplementable, quorumOneTimeKeyDemo,
		"Ethereum-style accounts allow fresh addresses per transaction")

	// --- Parties: ZKP of identity (row 2) ---
	add(2, HLF, SupportNative, fabricIdemixDemo,
		"Idemix anonymous credentials")
	add(2, Corda, SupportRewrite, nil,
		"identity is structural in Corda flows; anonymous credentials need core changes")
	add(2, Quorum, SupportRewrite, nil,
		"no credential layer in the Ethereum account model")

	// --- Transactions: separation of ledgers (row 3) ---
	add(3, HLF, SupportNative, fabricChannelDemo,
		"channel ledgers carry transaction data only to members")
	add(3, Corda, SupportNative, cordaP2PDemo,
		"per-transaction data distribution")
	add(3, Quorum, SupportNative, quorumPrivatePayloadDemo,
		"private state separate from public state")

	// --- Transactions: off-chain peer data (row 4) ---
	add(4, HLF, SupportNative, fabricPDCDemo,
		"Private Data Collections: off-chain payload, on-chain hash")
	add(4, Corda, SupportImplementable, cordaOffChainDemo,
		"attachments/off-ledger stores can carry hashes in states")
	add(4, Quorum, SupportRewrite, nil,
		"the private tx manager is fixed-function; peer off-chain stores need new protocol")

	// --- Transactions: symmetric keys (row 5) ---
	add(5, HLF, SupportNative, fabricSymmetricDemo,
		"encrypt payloads client-side under PKI-shared keys")
	add(5, Corda, SupportNative, cordaSymmetricDemo,
		"encrypted state data shared between participants")
	add(5, Quorum, SupportNative, quorumSymmetricDemo,
		"private payloads encrypted by the transaction manager")

	// --- Transactions: Merkle trees and tear-offs (row 6) ---
	add(6, HLF, SupportImplementable, fabricTearOffDemo,
		"tear-offs composable over channel transactions")
	add(6, Corda, SupportNative, cordaTearOffDemo,
		"transactions are Merkle trees; oracles sign over tear-offs")
	add(6, Quorum, SupportRewrite, nil,
		"transaction format is fixed RLP; component trees require consensus changes")

	// --- Transactions: ZKPs (row 7) ---
	add(7, HLF, SupportImplementable, zkpOnPlatformDemo(fabricCommitPayload),
		"range proofs attachable to channel transactions")
	add(7, Corda, SupportImplementable, zkpOnPlatformDemo(cordaCommitPayload),
		"range proofs attachable to state data")
	add(7, Quorum, SupportImplementable, zkpOnPlatformDemo(quorumCommitPayload),
		"range proofs attachable to private payloads")

	// --- Transactions: MPC (row 8) ---
	add(8, HLF, SupportImplementable, mpcOnPlatformDemo(fabricCommitPayload),
		"MPC result committable to a channel")
	add(8, Corda, SupportImplementable, mpcOnPlatformDemo(cordaCommitPayload),
		"MPC result committable as a state")
	add(8, Quorum, SupportImplementable, mpcOnPlatformDemo(quorumCommitPayload),
		"MPC result committable as a private payload")

	// --- Transactions: homomorphic encryption (row 9) ---
	add(9, HLF, SupportImplementable, heOnPlatformDemo(fabricCommitPayload),
		"Paillier ciphertexts committable; §2.2 maturity caveat applies")
	add(9, Corda, SupportImplementable, heOnPlatformDemo(cordaCommitPayload),
		"Paillier ciphertexts committable; §2.2 maturity caveat applies")
	add(9, Quorum, SupportImplementable, heOnPlatformDemo(quorumCommitPayload),
		"Paillier ciphertexts committable; §2.2 maturity caveat applies")

	// --- Logic: install contract on involved nodes (row 10) ---
	add(10, HLF, SupportNative, fabricSelectiveInstallDemo,
		"chaincode visible only where installed")
	add(10, Corda, SupportNA, nil,
		"N/A: business logic executes off-platform by design")
	add(10, Quorum, SupportNative, quorumPrivateLogicDemo,
		"private contracts distributed to participants only")

	// --- Logic: off-chain execution engine (row 11) ---
	add(11, HLF, SupportImplementable, offChainEngineDemo,
		"chaincode shim reading/writing state with logic outside the peer")
	add(11, Corda, SupportNative, cordaOffPlatformLogicDemo,
		"flows run business logic outside the ledger; contracts verify signatories")
	add(11, Quorum, SupportRewrite, nil,
		"the EVM is the mandatory execution engine")

	// --- Logic: TEEs (row 12) ---
	// The paper rates TEE integration as requiring substantial rewriting
	// in all three platforms (experiments only, §5). The substrate-level
	// demo exists (tee package) but no platform integration is claimed.
	add(12, HLF, SupportRewrite, nil,
		"TEE chaincode execution is experimental (Fabric Private Chaincode)")
	add(12, Corda, SupportRewrite, nil,
		"SGX integration is a design document (§5 R3 SGX)")
	add(12, Quorum, SupportRewrite, nil,
		"no enclave execution path in the EVM")

	// --- Misc: private sequencing service (row 13) ---
	add(13, HLF, SupportNative, fabricMemberOrdererDemo,
		"channel members can run the ordering service")
	add(13, Corda, SupportNative, cordaMemberNotaryDemo,
		"a participant can operate the notary")
	add(13, Quorum, SupportNative, quorumSelfSequencingDemo,
		"participants run their own nodes; no third-party sequencer required")

	// --- Misc: open source (row 14) ---
	add(14, HLF, SupportNative, nil, "Apache-2.0, github.com/hyperledger/fabric")
	add(14, Corda, SupportNative, nil, "Apache-2.0, github.com/corda/corda")
	add(14, Quorum, SupportNative, nil, "LGPL, github.com/ConsenSys/quorum")

	return probes
}

// GenerateTable1 runs the default probe suite.
func GenerateTable1() (Matrix, error) {
	return RunProbes(DefaultProbes())
}

// --- Fabric demos ---

func newFabricPair() (*fabric.Network, error) {
	n, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return nil, err
	}
	for _, org := range []string{"OrgA", "OrgB", "OrgC"} {
		if _, err := n.AddOrg(org); err != nil {
			return nil, err
		}
	}
	policy := contract.Policy{Members: []string{"OrgA", "OrgB"}, Threshold: 1}
	if err := n.CreateChannel("probe", []string{"OrgA", "OrgB"}, policy); err != nil {
		return nil, err
	}
	return n, nil
}

func probeChaincode() contract.Contract {
	return contract.Contract{
		Name:    "probe",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return nil, nil
			},
		},
	}
}

func fabricChannelDemo() error {
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	if err := n.InstallChaincode("probe", probeChaincode(), []string{"OrgA"}); err != nil {
		return err
	}
	if _, err := n.Invoke("probe", "OrgA", "probe", "put",
		[][]byte{[]byte("k"), []byte("v")}, []string{"OrgA"}); err != nil {
		return err
	}
	if _, err := n.Query("probe", "OrgC", "k"); !errors.Is(err, fabric.ErrNotMember) {
		return fmt.Errorf("non-member read should fail, got %v", err)
	}
	got, err := n.Query("probe", "OrgB", "k")
	if err != nil || string(got) != "v" {
		return fmt.Errorf("member read = %q, %v", got, err)
	}
	return nil
}

func fabricIdemixDemo() error {
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	_, nym, err := n.AnonymousInvoke("probe", "OrgA",
		[]ledger.Write{{Key: "anon", Value: []byte("v")}})
	if err != nil {
		return err
	}
	if nym == "" || nym == "OrgA" {
		return fmt.Errorf("pseudonym %q must not reveal identity", nym)
	}
	return nil
}

func fabricPDCDemo() error {
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	if err := n.CreateCollection("probe", "pdc", []string{"OrgA", "OrgB"}); err != nil {
		return err
	}
	if _, err := n.PutPrivate("probe", "pdc", "OrgA", "k", []byte("private")); err != nil {
		return err
	}
	got, err := n.GetPrivate("probe", "pdc", "OrgB", "k")
	if err != nil || string(got) != "private" {
		return fmt.Errorf("pdc read = %q, %v", got, err)
	}
	return n.VerifyPrivate("probe", "pdc", "OrgB", "k", got)
}

func fabricSymmetricDemo() error {
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	if err := n.InstallChaincode("probe", probeChaincode(), []string{"OrgA"}); err != nil {
		return err
	}
	key, err := dcrypto.NewSymmetricKey()
	if err != nil {
		return err
	}
	ct, err := dcrypto.EncryptSymmetric(key, []byte("secret"), []byte("probe"))
	if err != nil {
		return err
	}
	if _, err := n.Invoke("probe", "OrgA", "probe", "put",
		[][]byte{[]byte("enc"), ct}, []string{"OrgA"}); err != nil {
		return err
	}
	stored, err := n.Query("probe", "OrgB", "enc")
	if err != nil {
		return err
	}
	pt, err := dcrypto.DecryptSymmetric(key, stored, []byte("probe"))
	if err != nil || string(pt) != "secret" {
		return fmt.Errorf("symmetric round trip failed: %v", err)
	}
	return nil
}

func fabricTearOffDemo() error {
	// Compose a tear-off over a transaction's fields before submission.
	tree, err := merkle.New([][]byte{[]byte("buyer"), []byte("seller"), []byte("price:42")})
	if err != nil {
		return err
	}
	to, err := tree.TearOffVisible([]int{2})
	if err != nil {
		return err
	}
	if err := to.Verify(tree.Root()); err != nil {
		return err
	}
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	root := tree.Root()
	return fabricCommitPayloadOn(n, root[:])
}

func fabricSelectiveInstallDemo() error {
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	if err := n.InstallChaincode("probe", probeChaincode(), []string{"OrgA"}); err != nil {
		return err
	}
	if n.ChaincodeInstalledOn("OrgB", "probe") {
		return errors.New("chaincode leaked to uninvolved peer")
	}
	return nil
}

func fabricMemberOrdererDemo() error {
	n, err := fabric.NewNetwork(fabric.Config{OrdererOperator: "OrgA"})
	if err != nil {
		return err
	}
	for _, org := range []string{"OrgA", "OrgB"} {
		if _, err := n.AddOrg(org); err != nil {
			return err
		}
	}
	policy := contract.Policy{Members: []string{"OrgA", "OrgB"}, Threshold: 1}
	if err := n.CreateChannel("probe", []string{"OrgA", "OrgB"}, policy); err != nil {
		return err
	}
	if n.OrdererOperator() != "OrgA" {
		return errors.New("orderer not member-run")
	}
	return nil
}

func fabricCommitPayload(payload []byte) error {
	n, err := newFabricPair()
	if err != nil {
		return err
	}
	return fabricCommitPayloadOn(n, payload)
}

func fabricCommitPayloadOn(n *fabric.Network, payload []byte) error {
	if err := n.InstallChaincode("probe", probeChaincode(), []string{"OrgA"}); err != nil {
		return err
	}
	_, err := n.Invoke("probe", "OrgA", "probe", "put",
		[][]byte{[]byte("payload"), payload}, []string{"OrgA"})
	return err
}

// --- Corda demos ---

func newCordaNet() (*corda.Network, error) {
	n, err := corda.NewNetwork(corda.Config{})
	if err != nil {
		return nil, err
	}
	for _, p := range []string{"PartyA", "PartyB", "PartyC"} {
		if _, err := n.AddParty(p); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func cordaP2PDemo() error {
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	if _, err := n.Issue("PartyA", "PartyB", []byte("deal"), []string{"PartyA", "PartyB"}); err != nil {
		return err
	}
	c, err := n.Party("PartyC")
	if err != nil {
		return err
	}
	if len(c.Vault()) != 0 {
		return errors.New("non-participant received transaction data")
	}
	return nil
}

func cordaOneTimeKeyDemo() error {
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	if _, err := n.Issue("PartyA", "PartyB", []byte("a1"), []string{"PartyA", "PartyB"}); err != nil {
		return err
	}
	if _, err := n.Issue("PartyA", "PartyB", []byte("a2"), []string{"PartyA", "PartyB"}); err != nil {
		return err
	}
	b, _ := n.Party("PartyB")
	refs := b.Vault()
	s1, err := b.StateByRef(refs[0])
	if err != nil {
		return err
	}
	s2, err := b.StateByRef(refs[1])
	if err != nil {
		return err
	}
	if s1.OwnerAddr == s2.OwnerAddr {
		return errors.New("owner keys repeated across states")
	}
	return nil
}

func cordaOffChainDemo() error {
	// Off-chain store keyed by hash, referenced in state data.
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	payload := []byte("bulk document")
	anchor := dcrypto.Hash(payload)
	_, err = n.Issue("PartyA", "PartyB", anchor[:], []string{"PartyA", "PartyB"})
	return err
}

func cordaSymmetricDemo() error {
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	key, err := dcrypto.NewSymmetricKey()
	if err != nil {
		return err
	}
	ct, err := dcrypto.EncryptSymmetric(key, []byte("secret"), nil)
	if err != nil {
		return err
	}
	if _, err := n.Issue("PartyA", "PartyB", ct, []string{"PartyA", "PartyB"}); err != nil {
		return err
	}
	b, _ := n.Party("PartyB")
	st, err := b.StateByRef(b.Vault()[0])
	if err != nil {
		return err
	}
	pt, err := dcrypto.DecryptSymmetric(key, st.Data, nil)
	if err != nil || !bytes.Equal(pt, []byte("secret")) {
		return fmt.Errorf("symmetric round trip failed: %v", err)
	}
	return nil
}

func cordaTearOffDemo() error {
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	if err := n.AddOracle("oracle"); err != nil {
		return err
	}
	tx := &corda.Transaction{
		Outputs: []corda.State{{
			Data: []byte("hidden payload"), OwnerAddr: "a", Participants: []string{"PartyA"},
		}},
		Commands: []string{"rate:1.5"},
	}
	to, err := tx.CommandTearOff(0)
	if err != nil {
		return err
	}
	att, err := n.OracleSign("oracle", to, nil)
	if err != nil {
		return err
	}
	return n.VerifyOracleAttestation(att, tx)
}

func cordaOffPlatformLogicDemo() error {
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	if _, err := n.Issue("PartyA", "PartyB", []byte("asset"), []string{"PartyA", "PartyB"}); err != nil {
		return err
	}
	b, _ := n.Party("PartyB")
	logicRan := false
	logic := func(tx *corda.Transaction) error {
		logicRan = true
		return nil
	}
	if _, err := n.Transfer("PartyB", b.Vault()[0], "PartyC", nil, logic); err != nil {
		return err
	}
	if !logicRan {
		return errors.New("off-platform logic did not run")
	}
	return nil
}

func cordaMemberNotaryDemo() error {
	n, err := corda.NewNetwork(corda.Config{NotaryName: "PartyA"})
	if err != nil {
		return err
	}
	if _, err := n.AddParty("PartyA"); err != nil {
		return err
	}
	if n.Notary().Name() != "PartyA" {
		return errors.New("notary not member-run")
	}
	return nil
}

func cordaCommitPayload(payload []byte) error {
	n, err := newCordaNet()
	if err != nil {
		return err
	}
	_, err = n.Issue("PartyA", "PartyB", payload, []string{"PartyA", "PartyB"})
	return err
}

// --- Quorum demos ---

func newQuorumNet() (*quorum.Network, error) {
	n := quorum.NewNetwork()
	for _, name := range []string{"A", "B", "C"} {
		if _, err := n.AddNode(name); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func quorumPrivatePayloadDemo() error {
	n, err := newQuorumNet()
	if err != nil {
		return err
	}
	id, err := n.SendPrivate("A", []string{"B"}, "k", []byte("v"))
	if err != nil {
		return err
	}
	if _, err := n.ReadPrivate("C", id); !errors.Is(err, quorum.ErrNotParticipant) {
		return fmt.Errorf("non-participant read should fail, got %v", err)
	}
	return nil
}

func quorumOneTimeKeyDemo() error {
	// Fresh account addresses per transaction, composed from the key
	// chain substrate.
	chain, err := dcrypto.NewOneTimeKeyChain([]byte("quorum-account-seed-0123"))
	if err != nil {
		return err
	}
	a1, err := chain.Next()
	if err != nil {
		return err
	}
	a2, err := chain.Next()
	if err != nil {
		return err
	}
	if a1.Address() == a2.Address() {
		return errors.New("addresses repeated")
	}
	n, err := newQuorumNet()
	if err != nil {
		return err
	}
	_, err = n.SendPublic("A", "owner/asset", []byte(a1.Address()))
	return err
}

func quorumSymmetricDemo() error {
	n, err := newQuorumNet()
	if err != nil {
		return err
	}
	key, err := dcrypto.NewSymmetricKey()
	if err != nil {
		return err
	}
	ct, err := dcrypto.EncryptSymmetric(key, []byte("secret"), nil)
	if err != nil {
		return err
	}
	id, err := n.SendPrivate("A", []string{"B"}, "enc", ct)
	if err != nil {
		return err
	}
	payload, err := n.ReadPrivate("B", id)
	if err != nil {
		return err
	}
	// Payload is key=value; strip the prefix.
	idx := bytes.IndexByte(payload, '=')
	pt, err := dcrypto.DecryptSymmetric(key, payload[idx+1:], nil)
	if err != nil || !bytes.Equal(pt, []byte("secret")) {
		return fmt.Errorf("symmetric round trip failed: %v", err)
	}
	return nil
}

func quorumPrivateLogicDemo() error {
	n, err := newQuorumNet()
	if err != nil {
		return err
	}
	// Private contract code distributed only to participants.
	id, err := n.SendPrivate("A", []string{"B"}, "contract/loc", []byte("bytecode"))
	if err != nil {
		return err
	}
	if _, err := n.ReadPrivate("C", id); !errors.Is(err, quorum.ErrNotParticipant) {
		return fmt.Errorf("uninvolved node read contract, got %v", err)
	}
	return nil
}

func quorumSelfSequencingDemo() error {
	n, err := newQuorumNet()
	if err != nil {
		return err
	}
	// No third-party sequencing principal exists in the model; sending a
	// transaction requires only the participant nodes.
	_, err = n.SendPublic("A", "k", []byte("v"))
	return err
}

func quorumCommitPayload(payload []byte) error {
	n, err := newQuorumNet()
	if err != nil {
		return err
	}
	_, err = n.SendPrivate("A", []string{"B"}, "payload", payload)
	return err
}

// --- Cross-platform composed demos ---

// zkpOnPlatformDemo proves sufficient funds in zero knowledge and commits
// the proof through the platform's transaction path.
func zkpOnPlatformDemo(commit func([]byte) error) func() error {
	return func() error {
		balance := big.NewInt(5000)
		c, r, err := zkp.CommitValue(balance)
		if err != nil {
			return err
		}
		proof, err := zkp.ProveSufficientFunds(balance, r, big.NewInt(1000), c, []byte("probe"))
		if err != nil {
			return err
		}
		if err := zkp.VerifySufficientFunds(proof, c, []byte("probe")); err != nil {
			return err
		}
		return commit(c.Bytes())
	}
}

// mpcOnPlatformDemo computes a secure sum and commits the consistent result.
func mpcOnPlatformDemo(commit func([]byte) error) func() error {
	return func() error {
		res, err := mpc.SecureSum(map[string]*big.Int{
			"p1": big.NewInt(10), "p2": big.NewInt(20), "p3": big.NewInt(12),
		})
		if err != nil {
			return err
		}
		if res.Value.Int64() != 42 {
			return fmt.Errorf("mpc sum = %v, want 42", res.Value)
		}
		return commit(res.Value.Bytes())
	}
}

// heOnPlatformDemo adds two Paillier ciphertexts and commits the result.
func heOnPlatformDemo(commit func([]byte) error) func() error {
	return func() error {
		sk, err := paillier.GenerateKey(512)
		if err != nil {
			return err
		}
		a, err := sk.Encrypt(big.NewInt(40))
		if err != nil {
			return err
		}
		b, err := sk.Encrypt(big.NewInt(2))
		if err != nil {
			return err
		}
		sum, err := sk.Add(a, b)
		if err != nil {
			return err
		}
		got, err := sk.Decrypt(sum)
		if err != nil || got.Int64() != 42 {
			return fmt.Errorf("paillier add = %v, %v", got, err)
		}
		return commit(sum.C.Bytes()[:32])
	}
}

// offChainEngineDemo runs logic in an external engine with a ledger shim.
func offChainEngineDemo() error {
	engine := contract.NewOffChainEngine(nil)
	logic := contract.Contract{
		Name:    "pricing",
		Version: "1",
		Funcs: map[string]contract.Func{
			"quote": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				ctx.Put("quote", []byte("42"))
				return []byte("42"), nil
			},
		},
	}
	if err := engine.Deploy("OrgA", logic); err != nil {
		return err
	}
	out, writes, err := engine.Execute("OrgA", "pricing", "quote", nil, "probe", nil)
	if err != nil {
		return err
	}
	if string(out) != "42" || len(writes) != 1 {
		return fmt.Errorf("engine result %q %v", out, writes)
	}
	return fabricCommitPayload(writes[0].Value)
}

// TEESubstrateDemo demonstrates the TEE mechanism at substrate level: the
// paper rates platform TEE integration "requires rewrite", but the mechanism
// itself is implemented and benchmarked in this repository.
func TEESubstrateDemo() error {
	m, err := tee.NewManufacturer()
	if err != nil {
		return err
	}
	enclave, err := m.Provision()
	if err != nil {
		return err
	}
	c := contract.Contract{
		Name:    "secret-logic",
		Version: "1",
		Funcs: map[string]contract.Func{
			"run": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				return []byte("done"), nil
			},
		},
	}
	measurement, err := contract.WrapInEnclave(enclave, c)
	if err != nil {
		return err
	}
	_, _, att, err := contract.InvokeInEnclave(enclave, "run", nil, nil)
	if err != nil {
		return err
	}
	return tee.VerifyAttestation(att, m.PublicKey(), measurement)
}
