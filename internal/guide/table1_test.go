package guide

import (
	"strings"
	"testing"
)

// TestTable1Reproduction is experiment E1: the probe suite regenerates
// Table 1 and the result matches the paper's published ratings cell by cell,
// with every native and implementable rating backed by a live demonstration.
func TestTable1Reproduction(t *testing.T) {
	matrix, err := GenerateTable1()
	if err != nil {
		t.Fatalf("GenerateTable1: %v", err)
	}
	if diffs := matrix.Diff(PaperTable1()); len(diffs) != 0 {
		t.Fatalf("regenerated matrix differs from paper:\n%s", strings.Join(diffs, "\n"))
	}
	// Every native/implementable cell except the by-fiat "open source"
	// row must be demonstrated by running code.
	for row, cells := range matrix {
		for platform, cell := range cells {
			if row.Mechanism == "Open source" {
				continue
			}
			demonstrable := cell.Support == SupportNative || cell.Support == SupportImplementable
			if demonstrable && !cell.Demonstrated {
				t.Errorf("%s / %s on %s rated %s but not demonstrated",
					row.Category, row.Mechanism, platform, cell.Support.Symbol())
			}
			if !demonstrable && cell.Demonstrated {
				t.Errorf("%s / %s on %s rated %s yet demonstrated",
					row.Category, row.Mechanism, platform, cell.Support.Symbol())
			}
			if cell.Evidence == "" {
				t.Errorf("%s / %s on %s has no evidence", row.Category, row.Mechanism, platform)
			}
		}
	}
}

func TestTable1Coverage(t *testing.T) {
	probes := DefaultProbes()
	want := len(Rows()) * len(Platforms())
	if len(probes) != want {
		t.Fatalf("probe count = %d, want %d (full matrix)", len(probes), want)
	}
	seen := make(map[string]bool)
	for _, p := range probes {
		key := p.Row.Category + "/" + p.Row.Mechanism + "/" + string(p.Platform)
		if seen[key] {
			t.Fatalf("duplicate probe %s", key)
		}
		seen[key] = true
	}
}

func TestTable1Render(t *testing.T) {
	matrix, err := GenerateTable1()
	if err != nil {
		t.Fatalf("GenerateTable1: %v", err)
	}
	out := matrix.Render()
	for _, needle := range []string{"HLF", "Corda", "Quorum", "Merkle trees and tear-offs", "✓", "—"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("rendered table missing %q:\n%s", needle, out)
		}
	}
}

func TestDiffDetectsMismatch(t *testing.T) {
	matrix := Matrix{
		Rows()[0]: {HLF: Cell{Support: SupportRewrite}},
	}
	diffs := matrix.Diff(PaperTable1())
	if len(diffs) == 0 {
		t.Fatal("diff must report mismatches and missing cells")
	}
}

func TestProbeFailurePropagates(t *testing.T) {
	probes := []Probe{{
		Row:      Rows()[0],
		Platform: HLF,
		Expected: SupportNative,
		Demo:     func() error { return errTest },
	}}
	if _, err := RunProbes(probes); err == nil {
		t.Fatal("failing demo must fail matrix generation")
	}
}

var errTest = errStr("boom")

type errStr string

func (e errStr) Error() string { return string(e) }

func TestSupportSymbols(t *testing.T) {
	cases := map[Support]string{
		SupportNative:        "✓",
		SupportImplementable: "?",
		SupportRewrite:       "—",
		SupportNA:            "N/A",
		Support(0):           "??",
	}
	for s, want := range cases {
		if got := s.Symbol(); got != want {
			t.Errorf("Symbol(%d) = %q, want %q", s, got, want)
		}
	}
}

// TestTEESubstrateDemo verifies the TEE mechanism works at substrate level
// even though platform integration is rated "requires rewrite".
func TestTEESubstrateDemo(t *testing.T) {
	if err := TEESubstrateDemo(); err != nil {
		t.Fatalf("TEESubstrateDemo: %v", err)
	}
}
