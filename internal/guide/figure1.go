package guide

import "fmt"

// Requirements captures the decision points of Figure 1 plus the two
// considerations the paper discusses alongside it: untrusted node
// administrators (handled by encryption, "not captured in this diagram") and
// the business-logic question folded into the TEE branch.
type Requirements struct {
	// DataConfidential: is any of the transaction data confidential?
	DataConfidential bool
	// DeletionRequired: must data be deletable (e.g. GDPR right to be
	// forgotten)? Distributed ledgers cannot delete entries, so deletion
	// forces data off-chain.
	DeletionRequired bool
	// EncryptedSharingAllowed: may encrypted data be shared with and
	// stored by the wider network? (Given enough computing resources,
	// encrypted data can eventually be decrypted.)
	EncryptedSharingAllowed bool
	// PartsPrivateToSubset: does the transaction contain components that
	// must be hidden from one or more participating parties?
	PartsPrivateToSubset bool
	// ValidatorsMayRead: are transaction validators allowed to read
	// transaction contents?
	ValidatorsMayRead bool
	// HideBusinessLogic: must business logic be hidden from validating
	// nodes too?
	HideBusinessLogic bool
	// PrivateToOwnerOnly: does the transaction rely on data that cannot
	// be shared even with transacting counterparties?
	PrivateToOwnerOnly bool
	// BooleanProofsEnough: does a yes/no affirmation (e.g. "party has
	// sufficient funds") satisfy the counterparties?
	BooleanProofsEnough bool
	// CollectiveComputation: must a shared function be computed over the
	// parties' private values (e.g. a secret ballot)?
	CollectiveComputation bool
	// UntrustedNodeAdmin: is a node administered by a third party that
	// must not read raw data? (The case §3.2 notes is not captured in
	// the diagram; it adds encryption.)
	UntrustedNodeAdmin bool
}

// Decision is the output of the Figure 1 walk.
type Decision struct {
	// Primary is the recommended mechanism.
	Primary Mechanism
	// Additional lists complementary mechanisms (e.g. symmetric
	// encryption for untrusted node administrators).
	Additional []Mechanism
	// Path records each decision point and the branch taken, for
	// explainability and for the Figure 1 reproduction harness.
	Path []string
	// Notes carries maturity warnings from the catalog.
	Notes []string
}

// Decide walks Figure 1 and returns the mechanism recommendation for
// transaction confidentiality. The tree follows §3.2:
//
//  1. data not confidential → single ledger;
//  2. deletion required → off-chain data with public hash;
//  3. encrypted data may not be shared → segregated ledgers, with Merkle
//     tear-offs when parts must be hidden from some participants;
//  4. validators not allowed to read → TEEs (also hiding logic) or, once
//     mature, homomorphic computation;
//  5. data private to the owner alone → ZKP for boolean affirmations, MPC
//     for collective computation, otherwise owner-local off-chain data;
//  6. otherwise → separation of ledgers with an optional shared hash.
//
// An untrusted node administrator adds symmetric encryption in every branch
// that stores data on the node.
func Decide(r Requirements) Decision {
	var d Decision
	step := func(q string, yes bool, branch string) {
		d.Path = append(d.Path, fmt.Sprintf("%s %s -> %s", q, yn(yes), branch))
	}

	switch {
	case !r.DataConfidential:
		step("Is data confidential?", false, string(MechSingleLedger))
		d.Primary = MechSingleLedger

	case r.DeletionRequired:
		step("Is data confidential?", true, "continue")
		step("Is deletion necessary?", true, string(MechOffChainHash))
		d.Primary = MechOffChainHash

	case !r.EncryptedSharingAllowed:
		step("Is data confidential?", true, "continue")
		step("Is deletion necessary?", false, "continue")
		step("Can encrypted data be shared and stored?", false, "segregate")
		if r.PartsPrivateToSubset {
			step("Parts of data private to one or more parties?", true, string(MechTearOffs))
			d.Primary = MechTearOffs
		} else {
			step("Parts of data private to one or more parties?", false, string(MechSeparateLedgers))
			d.Primary = MechSeparateLedgers
		}

	case !r.ValidatorsMayRead:
		step("Is data confidential?", true, "continue")
		step("Is deletion necessary?", false, "continue")
		step("Can encrypted data be shared and stored?", true, "continue")
		step("Are validators allowed to read transactions?", false, "confidential validation")
		if r.HideBusinessLogic {
			step("Need to hide business logic?", true, string(MechTEE))
			d.Primary = MechTEE
		} else {
			step("Need to hide business logic?", false, string(MechHomomorphic))
			d.Primary = MechHomomorphic
		}

	case r.PrivateToOwnerOnly:
		step("Is data confidential?", true, "continue")
		step("Is deletion necessary?", false, "continue")
		step("Can encrypted data be shared and stored?", true, "continue")
		step("Are validators allowed to read transactions?", true, "continue")
		step("Data private to owner only?", true, "continue")
		if r.BooleanProofsEnough {
			step("Boolean proofs enough?", true, string(MechZKPData))
			d.Primary = MechZKPData
		} else if r.CollectiveComputation {
			step("Collective computation?", true, string(MechMPC))
			d.Primary = MechMPC
		} else {
			// Reconstruction choice (documented in DESIGN.md): data that
			// cannot be shared, proven about, or jointly computed on can
			// only stay with its owner off-chain.
			step("Collective computation?", false, string(MechOffChainHash))
			d.Primary = MechOffChainHash
		}

	default:
		step("Is data confidential?", true, "continue")
		step("Is deletion necessary?", false, "continue")
		step("Can encrypted data be shared and stored?", true, "continue")
		step("Are validators allowed to read transactions?", true, "continue")
		step("Data private to owner only?", false, string(MechSeparateLedgers))
		d.Primary = MechSeparateLedgers
	}

	if r.UntrustedNodeAdmin && d.Primary != MechSingleLedger && d.Primary != MechTEE {
		d.Additional = append(d.Additional, MechSymmetricKeys)
		d.Path = append(d.Path, "Untrusted node administrator -> add symmetric key encryption")
	}
	if info, ok := Lookup(d.Primary); ok {
		switch info.Maturity {
		case MaturityExperimental:
			d.Notes = append(d.Notes, string(d.Primary)+": experimental; not feasible for current production systems (§2.2)")
		case MaturityScenarioSpecific:
			d.Notes = append(d.Notes, string(d.Primary)+": must be implemented specifically for the scenario (§2.2)")
		case MaturityProduction:
			// No caveat.
		}
	}
	return d
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// EnumerateRequirements yields every combination of the Figure 1 inputs
// (2^10 = 1024), used by the reproduction harness to show the decision
// procedure is total and to tabulate leaf frequencies.
func EnumerateRequirements() []Requirements {
	const n = 10
	out := make([]Requirements, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		out = append(out, Requirements{
			DataConfidential:        bits&(1<<0) != 0,
			DeletionRequired:        bits&(1<<1) != 0,
			EncryptedSharingAllowed: bits&(1<<2) != 0,
			PartsPrivateToSubset:    bits&(1<<3) != 0,
			ValidatorsMayRead:       bits&(1<<4) != 0,
			HideBusinessLogic:       bits&(1<<5) != 0,
			PrivateToOwnerOnly:      bits&(1<<6) != 0,
			BooleanProofsEnough:     bits&(1<<7) != 0,
			CollectiveComputation:   bits&(1<<8) != 0,
			UntrustedNodeAdmin:      bits&(1<<9) != 0,
		})
	}
	return out
}
