package guide

import (
	"fmt"
	"sort"
)

// Platform-fit scoring extends the paper's guide: given the mechanisms a
// use case needs (from Decide, DecideInteractions, and DecideLogic), score
// each platform by how well Table 1 says it supports them. The paper leaves
// this final step to the reader ("assessing DLT platforms with respect to
// their ability to meet specific enterprise requirements", §3); here it is
// executable.

// mechanismRows maps catalog mechanisms to their Table 1 rows. Mechanisms
// appearing in two categories (separation of ledgers) map to both rows.
func mechanismRows(m Mechanism) []Row {
	switch m {
	case MechSeparateLedgers, MechSingleLedger:
		return []Row{
			{"Parties", "Separation of ledgers"},
			{"Transactions", "Separation of ledgers"},
		}
	case MechOneTimeKeys:
		return []Row{{"Parties", "One-time public key"}}
	case MechZKPIdentity:
		return []Row{{"Parties", "Zero knowledge proof of identity"}}
	case MechOffChainHash:
		return []Row{{"Transactions", "Off-chain peer data"}}
	case MechSymmetricKeys:
		return []Row{{"Transactions", "Symmetric keys"}}
	case MechTearOffs:
		return []Row{{"Transactions", "Merkle trees and tear-offs"}}
	case MechZKPData:
		return []Row{{"Transactions", "Zero-knowledge proofs"}}
	case MechMPC:
		return []Row{{"Transactions", "Multiparty computation"}}
	case MechHomomorphic:
		return []Row{{"Transactions", "Homomorphic encryption"}}
	case MechTEE:
		return []Row{{"Logic", "Trusted execution environments"}}
	case MechInstallOnInvolved:
		return []Row{{"Logic", "Install contract on involved nodes"}}
	case MechOffChainEngine:
		return []Row{{"Logic", "Off-chain execution engine"}}
	default:
		return nil
	}
}

// FitScore is one platform's suitability for a mechanism set.
type FitScore struct {
	Platform Platform
	// Native, Implementable, Rewrite count required mechanisms by their
	// Table 1 support level on this platform.
	Native        int
	Implementable int
	Rewrite       int
	// Score is 2*Native + 1*Implementable - 2*Rewrite: higher is better.
	Score int
	// Gaps lists required mechanisms the platform only supports with
	// substantial rewriting.
	Gaps []string
}

// RankPlatforms scores every platform against the required mechanisms using
// the paper's Table 1 ratings, best first.
func RankPlatforms(required []Mechanism) []FitScore {
	paper := PaperTable1()
	scores := make([]FitScore, 0, len(Platforms()))
	for _, platform := range Platforms() {
		fs := FitScore{Platform: platform}
		seen := map[Row]bool{}
		for _, m := range required {
			for _, row := range mechanismRows(m) {
				if seen[row] {
					continue
				}
				seen[row] = true
				switch paper[row][platform] {
				case SupportNative, SupportNA:
					// N/A counts as satisfied: the platform meets the
					// goal structurally (e.g. Corda has no on-ledger
					// contract distribution to restrict).
					fs.Native++
				case SupportImplementable:
					fs.Implementable++
				case SupportRewrite:
					fs.Rewrite++
					fs.Gaps = append(fs.Gaps, fmt.Sprintf("%s (%s)", row.Mechanism, row.Category))
				}
			}
		}
		fs.Score = 2*fs.Native + fs.Implementable - 2*fs.Rewrite
		sort.Strings(fs.Gaps)
		scores = append(scores, fs)
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Score > scores[j].Score })
	return scores
}

// RecommendPlatform runs the full §3 pipeline: derive mechanisms from the
// three requirement dimensions, then rank platforms against them.
func RecommendPlatform(data Requirements, inter InteractionRequirements, logic LogicRequirements) (best FitScore, required []Mechanism, ranking []FitScore) {
	d := Decide(data)
	required = append(required, d.Primary)
	required = append(required, d.Additional...)
	required = append(required, DecideInteractions(inter)...)
	required = append(required, DecideLogic(logic).Primary)
	required = dedupeMechanisms(required)
	ranking = RankPlatforms(required)
	return ranking[0], required, ranking
}

func dedupeMechanisms(in []Mechanism) []Mechanism {
	seen := make(map[Mechanism]bool, len(in))
	out := make([]Mechanism, 0, len(in))
	for _, m := range in {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
