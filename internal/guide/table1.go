package guide

import (
	"fmt"
	"sort"
)

// Platform identifies one of the three DLTs compared in Table 1.
type Platform string

// Platforms.
const (
	HLF    Platform = "HLF"
	Corda  Platform = "Corda"
	Quorum Platform = "Quorum"
)

// Platforms returns the Table 1 column order.
func Platforms() []Platform { return []Platform{HLF, Corda, Quorum} }

// Support is the three-level rating of Table 1.
type Support int

// Support levels, matching the paper's legend: ✓ native support, ? not
// native but implementable, — requires substantial rewriting, N/A not
// applicable.
const (
	SupportNative Support = iota + 1
	SupportImplementable
	SupportRewrite
	SupportNA
)

// Symbol renders the support level with the paper's notation.
func (s Support) Symbol() string {
	switch s {
	case SupportNative:
		return "✓"
	case SupportImplementable:
		return "?"
	case SupportRewrite:
		return "—"
	case SupportNA:
		return "N/A"
	default:
		return "??"
	}
}

// Row is one Table 1 row.
type Row struct {
	Category  string // Parties, Transactions, Logic, Misc.
	Mechanism string
}

// Rows returns the Table 1 rows in the paper's order.
func Rows() []Row {
	return []Row{
		{"Parties", "Separation of ledgers"},
		{"Parties", "One-time public key"},
		{"Parties", "Zero knowledge proof of identity"},
		{"Transactions", "Separation of ledgers"},
		{"Transactions", "Off-chain peer data"},
		{"Transactions", "Symmetric keys"},
		{"Transactions", "Merkle trees and tear-offs"},
		{"Transactions", "Zero-knowledge proofs"},
		{"Transactions", "Multiparty computation"},
		{"Transactions", "Homomorphic encryption"},
		{"Logic", "Install contract on involved nodes"},
		{"Logic", "Off-chain execution engine"},
		{"Logic", "Trusted execution environments"},
		{"Misc.", "Private sequencing service possible"},
		{"Misc.", "Open source"},
	}
}

// PaperTable1 returns the published Table 1 ratings.
func PaperTable1() map[Row]map[Platform]Support {
	n, i, r, na := SupportNative, SupportImplementable, SupportRewrite, SupportNA
	rows := Rows()
	ratings := [][3]Support{
		{n, n, n},  // Parties: separation of ledgers
		{r, n, i},  // Parties: one-time public key
		{n, r, r},  // Parties: ZKP of identity
		{n, n, n},  // Tx: separation of ledgers
		{n, i, r},  // Tx: off-chain peer data
		{n, n, n},  // Tx: symmetric keys
		{i, n, r},  // Tx: merkle trees and tear-offs
		{i, i, i},  // Tx: ZKPs
		{i, i, i},  // Tx: MPC
		{i, i, i},  // Tx: homomorphic encryption
		{n, na, n}, // Logic: install on involved nodes
		{i, n, r},  // Logic: off-chain execution engine
		{r, r, r},  // Logic: TEEs
		{n, n, n},  // Misc: private sequencing
		{n, n, n},  // Misc: open source
	}
	out := make(map[Row]map[Platform]Support, len(rows))
	for idx, row := range rows {
		out[row] = map[Platform]Support{
			HLF:    ratings[idx][0],
			Corda:  ratings[idx][1],
			Quorum: ratings[idx][2],
		}
	}
	return out
}

// Cell is one regenerated Table 1 entry: the support rating plus whether a
// live probe demonstrated the mechanism on the platform model.
type Cell struct {
	Support      Support
	Demonstrated bool
	Evidence     string
}

// Matrix is the regenerated Table 1.
type Matrix map[Row]map[Platform]Cell

// Probe is one live capability check.
type Probe struct {
	Row      Row
	Platform Platform
	// Expected is the paper's rating for this cell.
	Expected Support
	// Demo exercises the mechanism on the platform model (native cells)
	// or composes it from the substrate libraries on top of the platform
	// (implementable cells). Nil for rewrite/N-A cells, where the rating
	// is justified by Rationale instead.
	Demo func() error
	// Rationale documents why no demonstration exists.
	Rationale string
}

// RunProbes executes every probe and assembles the regenerated matrix.
// A probe whose demo fails yields an error: the reproduction does not get to
// claim support levels its own code cannot demonstrate.
func RunProbes(probes []Probe) (Matrix, error) {
	m := make(Matrix)
	for _, p := range probes {
		if _, ok := m[p.Row]; !ok {
			m[p.Row] = make(map[Platform]Cell)
		}
		cell := Cell{Support: p.Expected, Evidence: p.Rationale}
		if p.Demo != nil {
			if err := p.Demo(); err != nil {
				return nil, fmt.Errorf("probe %s/%s on %s: %w", p.Row.Category, p.Row.Mechanism, p.Platform, err)
			}
			cell.Demonstrated = true
			if cell.Evidence == "" {
				cell.Evidence = "demonstrated by live probe"
			}
		}
		m[p.Row][p.Platform] = cell
	}
	return m, nil
}

// Diff compares a regenerated matrix against the paper's ratings and returns
// human-readable mismatches.
func (m Matrix) Diff(paper map[Row]map[Platform]Support) []string {
	var out []string
	for _, row := range Rows() {
		for _, platform := range Platforms() {
			want, okW := paper[row][platform]
			got, okG := m[row][platform]
			switch {
			case okW && !okG:
				out = append(out, fmt.Sprintf("%s / %s / %s: missing from regenerated matrix", row.Category, row.Mechanism, platform))
			case okW && okG && got.Support != want:
				out = append(out, fmt.Sprintf("%s / %s / %s: got %s, paper says %s",
					row.Category, row.Mechanism, platform, got.Support.Symbol(), want.Symbol()))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Render prints the matrix in the paper's layout.
func (m Matrix) Render() string {
	out := fmt.Sprintf("%-14s %-36s %-6s %-6s %-6s\n", "Category", "Mechanism", "HLF", "Corda", "Quorum")
	for _, row := range Rows() {
		cells := m[row]
		line := fmt.Sprintf("%-14s %-36s", row.Category, row.Mechanism)
		for _, p := range Platforms() {
			c := cells[p]
			marker := c.Support.Symbol()
			if c.Demonstrated {
				marker += "*"
			}
			line += fmt.Sprintf(" %-6s", marker)
		}
		out += line + "\n"
	}
	out += "\n✓ native, ? implementable, — requires rewrite; * demonstrated by live probe\n"
	return out
}
