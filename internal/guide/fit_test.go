package guide

import (
	"testing"
)

func TestRankPlatformsIdemixFavorsFabric(t *testing.T) {
	ranking := RankPlatforms([]Mechanism{MechZKPIdentity, MechSeparateLedgers})
	if ranking[0].Platform != HLF {
		t.Fatalf("ZKP-identity use case should rank HLF first, got %v", ranking)
	}
	// Corda and Quorum carry a rewrite gap.
	for _, fs := range ranking[1:] {
		if fs.Rewrite == 0 {
			t.Fatalf("%s should have a rewrite gap for ZKP identity", fs.Platform)
		}
		if len(fs.Gaps) == 0 {
			t.Fatalf("%s should list its gap", fs.Platform)
		}
	}
}

func TestRankPlatformsTearOffsFavorCorda(t *testing.T) {
	ranking := RankPlatforms([]Mechanism{MechTearOffs, MechOneTimeKeys})
	if ranking[0].Platform != Corda {
		t.Fatalf("tear-off + one-time-key use case should rank Corda first, got %+v", ranking)
	}
	if ranking[0].Native != 2 {
		t.Fatalf("Corda natives = %d, want 2", ranking[0].Native)
	}
}

func TestRankPlatformsSharedRowsNotDoubleCounted(t *testing.T) {
	// Single ledger and separate ledgers share Table 1 rows; requiring
	// both must not double count.
	r1 := RankPlatforms([]Mechanism{MechSeparateLedgers})
	r2 := RankPlatforms([]Mechanism{MechSeparateLedgers, MechSingleLedger})
	for i := range r1 {
		if r1[i].Score != r2[i].Score {
			t.Fatalf("double counting: %+v vs %+v", r1[i], r2[i])
		}
	}
}

func TestRecommendPlatformLetterOfCredit(t *testing.T) {
	// The §4 requirements: deletable PII forces off-chain peer data;
	// group privacy forces ledger separation. Fabric supports both
	// natively (channels + PDC) and should win.
	best, required, ranking := RecommendPlatform(
		Requirements{DataConfidential: true, DeletionRequired: true},
		InteractionRequirements{GroupPrivate: true},
		LogicRequirements{},
	)
	if best.Platform != HLF {
		t.Fatalf("letter-of-credit best = %s, want HLF\nranking: %+v", best.Platform, ranking)
	}
	if len(required) == 0 {
		t.Fatal("required mechanisms empty")
	}
	hasOffChain := false
	for _, m := range required {
		if m == MechOffChainHash {
			hasOffChain = true
		}
	}
	if !hasOffChain {
		t.Fatalf("required = %v, must include off-chain data", required)
	}
}

func TestRecommendPlatformLanguageFreedom(t *testing.T) {
	// Off-chain execution engine (DSL requirement) is native in Corda
	// only.
	best, _, _ := RecommendPlatform(
		Requirements{},
		InteractionRequirements{},
		LogicRequirements{NeedAnyLanguage: true},
	)
	if best.Platform != Corda {
		t.Fatalf("language-freedom best = %s, want Corda", best.Platform)
	}
}

func TestMechanismRowsCoverCatalog(t *testing.T) {
	for _, info := range Catalog() {
		if rows := mechanismRows(info.Mechanism); len(rows) == 0 {
			t.Errorf("mechanism %q has no Table 1 rows", info.Mechanism)
		}
	}
	if rows := mechanismRows("nonsense"); rows != nil {
		t.Error("unknown mechanism must map to no rows")
	}
}

func TestDedupeMechanisms(t *testing.T) {
	got := dedupeMechanisms([]Mechanism{MechMPC, MechZKPData, MechMPC})
	if len(got) != 2 {
		t.Fatalf("dedupe = %v", got)
	}
}
