package guide

import (
	"strings"
	"testing"
)

// TestFigure1LabelledOutcomes checks the eight labelled leaves of Figure 1:
// each known requirement profile reaches the paper's stated mechanism.
func TestFigure1LabelledOutcomes(t *testing.T) {
	cases := []struct {
		name string
		req  Requirements
		want Mechanism
	}{
		{
			name: "not confidential -> single ledger",
			req:  Requirements{},
			want: MechSingleLedger,
		},
		{
			name: "deletion required -> off-chain data with public hash",
			req:  Requirements{DataConfidential: true, DeletionRequired: true},
			want: MechOffChainHash,
		},
		{
			name: "no encrypted sharing, whole tx shared -> separation of ledgers",
			req:  Requirements{DataConfidential: true},
			want: MechSeparateLedgers,
		},
		{
			name: "no encrypted sharing, parts hidden from participants -> tear-offs",
			req:  Requirements{DataConfidential: true, PartsPrivateToSubset: true},
			want: MechTearOffs,
		},
		{
			name: "validators blind, logic hidden -> TEE",
			req: Requirements{DataConfidential: true, EncryptedSharingAllowed: true,
				HideBusinessLogic: true},
			want: MechTEE,
		},
		{
			name: "validators blind, logic open -> homomorphic computation",
			req:  Requirements{DataConfidential: true, EncryptedSharingAllowed: true},
			want: MechHomomorphic,
		},
		{
			name: "owner-only data, boolean proof enough -> ZKP",
			req: Requirements{DataConfidential: true, EncryptedSharingAllowed: true,
				ValidatorsMayRead: true, PrivateToOwnerOnly: true, BooleanProofsEnough: true},
			want: MechZKPData,
		},
		{
			name: "owner-only data, collective computation -> MPC",
			req: Requirements{DataConfidential: true, EncryptedSharingAllowed: true,
				ValidatorsMayRead: true, PrivateToOwnerOnly: true, CollectiveComputation: true},
			want: MechMPC,
		},
		{
			name: "shareable data, validators read -> separation of ledgers",
			req: Requirements{DataConfidential: true, EncryptedSharingAllowed: true,
				ValidatorsMayRead: true},
			want: MechSeparateLedgers,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Decide(tc.req)
			if got.Primary != tc.want {
				t.Fatalf("Decide = %q, want %q\npath: %s",
					got.Primary, tc.want, strings.Join(got.Path, "\n      "))
			}
		})
	}
}

// TestFigure1Total: the decision procedure is total and every leaf is a
// mechanism from the catalog (or the single-ledger null mechanism).
func TestFigure1Total(t *testing.T) {
	valid := map[Mechanism]bool{MechSingleLedger: true}
	for _, info := range Catalog() {
		valid[info.Mechanism] = true
	}
	reqs := EnumerateRequirements()
	if len(reqs) != 1024 {
		t.Fatalf("enumeration size = %d, want 1024", len(reqs))
	}
	leaves := make(map[Mechanism]int)
	for _, r := range reqs {
		d := Decide(r)
		if !valid[d.Primary] {
			t.Fatalf("Decide(%+v) returned unknown mechanism %q", r, d.Primary)
		}
		if len(d.Path) == 0 {
			t.Fatalf("Decide(%+v) produced no path", r)
		}
		leaves[d.Primary]++
	}
	// Every Figure 1 outcome is reachable.
	for _, m := range []Mechanism{
		MechSingleLedger, MechOffChainHash, MechSeparateLedgers, MechTearOffs,
		MechTEE, MechHomomorphic, MechZKPData, MechMPC,
	} {
		if leaves[m] == 0 {
			t.Errorf("leaf %q unreachable", m)
		}
	}
}

func TestUntrustedAdminAddsEncryption(t *testing.T) {
	d := Decide(Requirements{DataConfidential: true, UntrustedNodeAdmin: true})
	found := false
	for _, m := range d.Additional {
		if m == MechSymmetricKeys {
			found = true
		}
	}
	if !found {
		t.Fatal("untrusted node admin must add symmetric encryption")
	}
	// TEE already hides data from the admin: no encryption needed.
	d = Decide(Requirements{DataConfidential: true, EncryptedSharingAllowed: true,
		HideBusinessLogic: true, UntrustedNodeAdmin: true})
	for _, m := range d.Additional {
		if m == MechSymmetricKeys {
			t.Fatal("TEE branch must not add symmetric encryption")
		}
	}
}

func TestMaturityNotes(t *testing.T) {
	d := Decide(Requirements{DataConfidential: true, EncryptedSharingAllowed: true})
	if d.Primary != MechHomomorphic || len(d.Notes) == 0 {
		t.Fatalf("homomorphic decision must carry a maturity note, got %+v", d)
	}
	d = Decide(Requirements{DataConfidential: true, EncryptedSharingAllowed: true,
		ValidatorsMayRead: true, PrivateToOwnerOnly: true, BooleanProofsEnough: true})
	if len(d.Notes) == 0 {
		t.Fatal("ZKP decision must carry a scenario-specific note")
	}
}

func TestDecideInteractions(t *testing.T) {
	got := DecideInteractions(InteractionRequirements{})
	if len(got) != 1 || got[0] != MechSingleLedger {
		t.Fatalf("no requirements = %v", got)
	}
	got = DecideInteractions(InteractionRequirements{
		GroupPrivate: true, SubgroupUnlinkable: true, IndividualAnonymous: true,
	})
	want := []Mechanism{MechSeparateLedgers, MechOneTimeKeys, MechZKPIdentity}
	if len(got) != 3 {
		t.Fatalf("all requirements = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDecideLogic(t *testing.T) {
	d := DecideLogic(LogicRequirements{HideFromNodeAdmin: true})
	if d.Primary != MechTEE || !d.Criteria.HidesDataFromAdmin {
		t.Fatalf("admin-hiding = %+v", d)
	}
	d = DecideLogic(LogicRequirements{NeedAnyLanguage: true, NeedBuiltInVersioning: true})
	if d.Primary != MechOffChainEngine {
		t.Fatalf("language freedom = %+v", d)
	}
	if len(d.Notes) == 0 {
		t.Fatal("off-chain engine with versioning requirement must warn")
	}
	if d.Criteria.InBuiltVersioning {
		t.Fatal("off-chain engine must not claim in-built versioning")
	}
	d = DecideLogic(LogicRequirements{})
	if d.Primary != MechInstallOnInvolved || !d.Criteria.KeepsLogicPrivate {
		t.Fatalf("default = %+v", d)
	}
}

func TestCriteriaFor(t *testing.T) {
	if _, ok := CriteriaFor(MechMPC); ok {
		t.Fatal("non-logic mechanism must have no criteria")
	}
	c, ok := CriteriaFor(MechTEE)
	if !ok || !c.KeepsLogicPrivate || !c.HidesDataFromAdmin {
		t.Fatalf("TEE criteria = %+v", c)
	}
}

func TestCatalogLookup(t *testing.T) {
	if len(Catalog()) != 12 {
		t.Fatalf("catalog size = %d, want 12", len(Catalog()))
	}
	info, ok := Lookup(MechTearOffs)
	if !ok || info.Maturity != MaturityProduction {
		t.Fatalf("Lookup tear-offs = %+v, %v", info, ok)
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("unknown mechanism must not resolve")
	}
}
