package guide

// InteractionRequirements captures §3.1: privacy of interactions at three
// granularities.
type InteractionRequirements struct {
	// GroupPrivate: a group of parties that know each other wishes to
	// interact privately from the main network.
	GroupPrivate bool
	// SubgroupUnlinkable: within a ledger, a sub-group does not want to
	// reveal that they are transacting.
	SubgroupUnlinkable bool
	// IndividualAnonymous: an individual party must sign or commit while
	// remaining entirely private.
	IndividualAnonymous bool
}

// DecideInteractions maps §3.1 requirements to mechanisms: a separate
// ledger for private groups, one-time public keys for unlinkable sub-group
// interactions, and zero-knowledge proof of identity for fully anonymous
// individuals.
func DecideInteractions(r InteractionRequirements) []Mechanism {
	var out []Mechanism
	if r.GroupPrivate {
		out = append(out, MechSeparateLedgers)
	}
	if r.SubgroupUnlinkable {
		out = append(out, MechOneTimeKeys)
	}
	if r.IndividualAnonymous {
		out = append(out, MechZKPIdentity)
	}
	if len(out) == 0 {
		out = append(out, MechSingleLedger)
	}
	return out
}

// LogicRequirements captures §3.3: the four criteria an architect weighs for
// business-logic confidentiality.
type LogicRequirements struct {
	// HideFromNodeAdmin: contract code needs access to confidential data
	// on a node whose administrator must not see either.
	HideFromNodeAdmin bool
	// NeedAnyLanguage: business logic must be writable in any programming
	// language (domain-specific languages).
	NeedAnyLanguage bool
	// NeedBuiltInVersioning: the deployment depends on the platform
	// guaranteeing all nodes run the same contract version.
	NeedBuiltInVersioning bool
}

// LogicDecision is the §3.3 recommendation with the four-criteria scorecard.
type LogicDecision struct {
	Primary Mechanism
	// Criteria reports, for the chosen mechanism: (1) keeps logic
	// private, (2) in-built versioning, (3) hides data from node admin,
	// (4) any programming language.
	Criteria LogicCriteria
	Notes    []string
}

// LogicCriteria is the §3.3 four-criteria scorecard for a mechanism.
type LogicCriteria struct {
	KeepsLogicPrivate  bool
	InBuiltVersioning  bool
	HidesDataFromAdmin bool
	AnyLanguage        bool
}

// CriteriaFor returns the scorecard of each business-logic mechanism.
func CriteriaFor(m Mechanism) (LogicCriteria, bool) {
	switch m {
	case MechInstallOnInvolved:
		return LogicCriteria{KeepsLogicPrivate: true, InBuiltVersioning: true}, true
	case MechOffChainEngine:
		return LogicCriteria{KeepsLogicPrivate: true, AnyLanguage: true}, true
	case MechTEE:
		return LogicCriteria{KeepsLogicPrivate: true, InBuiltVersioning: true, HidesDataFromAdmin: true}, true
	default:
		return LogicCriteria{}, false
	}
}

// DecideLogic walks §3.3: TEEs when the node administrator must not see
// data or logic; an off-chain engine when language freedom matters (with a
// version-control caveat); otherwise installation on involved nodes only.
func DecideLogic(r LogicRequirements) LogicDecision {
	var d LogicDecision
	switch {
	case r.HideFromNodeAdmin:
		d.Primary = MechTEE
		d.Notes = append(d.Notes, "TEE integrations in major platforms are experimental (§5)")
	case r.NeedAnyLanguage:
		d.Primary = MechOffChainEngine
		if r.NeedBuiltInVersioning {
			d.Notes = append(d.Notes,
				"off-chain engines lose the platform's version guarantee; version control must be managed outside the DLT layer (§3.3)")
		}
	default:
		d.Primary = MechInstallOnInvolved
	}
	d.Criteria, _ = CriteriaFor(d.Primary)
	return d
}
