package transport

import (
	"errors"
	"testing"
)

func TestSendAndReply(t *testing.T) {
	n := New()
	err := n.Register("peer1", func(m Message) ([]byte, error) {
		return append([]byte("ack:"), m.Payload...), nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	reply, err := n.Send(Message{From: "client", To: "peer1", Topic: "t", Payload: []byte("hi")})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if string(reply) != "ack:hi" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestSendUnknownEndpoint(t *testing.T) {
	n := New()
	if _, err := n.Send(Message{To: "ghost"}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("Send to ghost = %v, want ErrUnknownEndpoint", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	n := New()
	h := func(Message) ([]byte, error) { return nil, nil }
	if err := n.Register("a", h); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := n.Register("a", h); !errors.Is(err, ErrDuplicateEndpoint) {
		t.Fatalf("duplicate Register = %v, want ErrDuplicateEndpoint", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	n := New()
	if err := n.Register("", func(Message) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if err := n.Register("x", nil); err == nil {
		t.Fatal("nil handler must be rejected")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	if err := n.Register("b", func(Message) ([]byte, error) { return []byte("ok"), nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	n.Partition("a", "b")
	if _, err := n.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned Send = %v, want ErrPartitioned", err)
	}
	// Symmetric.
	n2 := New()
	if err := n2.Register("a", func(Message) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	n2.Partition("a", "b")
	if _, err := n2.Send(Message{From: "b", To: "a"}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse partitioned Send = %v, want ErrPartitioned", err)
	}
	n.Heal("b", "a")
	if _, err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
}

func TestMulticast(t *testing.T) {
	n := New()
	var got []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		if err := n.Register(name, func(m Message) ([]byte, error) {
			got = append(got, name)
			return nil, nil
		}); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	if err := n.Multicast("src", "topic", []byte("x"), []string{"p1", "p2", "p3"}); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered to %d endpoints, want 3", len(got))
	}
}

func TestMulticastStopsOnError(t *testing.T) {
	n := New()
	if err := n.Register("ok", func(Message) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	err := n.Multicast("src", "t", nil, []string{"ok", "missing", "ok"})
	if !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("Multicast = %v, want ErrUnknownEndpoint", err)
	}
}

func TestStats(t *testing.T) {
	n := New()
	if err := n.Register("a", func(Message) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := n.Send(Message{From: "x", To: "a", Payload: []byte("12345")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs, bytes := n.Stats()
	if msgs != 1 || bytes != 5 {
		t.Fatalf("Stats = (%d, %d), want (1, 5)", msgs, bytes)
	}
}

func TestHandlerErrorWrapped(t *testing.T) {
	n := New()
	sentinel := errors.New("boom")
	if err := n.Register("a", func(Message) ([]byte, error) { return nil, sentinel }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := n.Send(Message{From: "x", To: "a"}); !errors.Is(err, sentinel) {
		t.Fatalf("Send = %v, want wrapped sentinel", err)
	}
}

func TestEndpoints(t *testing.T) {
	n := New()
	h := func(Message) ([]byte, error) { return nil, nil }
	_ = n.Register("a", h)
	_ = n.Register("b", h)
	if got := len(n.Endpoints()); got != 2 {
		t.Fatalf("Endpoints = %d, want 2", got)
	}
}
