package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the network.
var (
	// ErrUnknownEndpoint is returned when sending to an unregistered name.
	ErrUnknownEndpoint = errors.New("transport: unknown endpoint")
	// ErrPartitioned is returned when a partition fault blocks delivery.
	ErrPartitioned = errors.New("transport: endpoints are partitioned")
	// ErrDuplicateEndpoint is returned when a name is registered twice.
	ErrDuplicateEndpoint = errors.New("transport: endpoint already registered")
)

// Message is a point-to-point payload with a topic for dispatch.
type Message struct {
	From    string
	To      string
	Topic   string
	Payload []byte
}

// Handler processes an inbound message and optionally returns a reply
// payload (request/response in one hop keeps flows synchronous).
type Handler func(msg Message) ([]byte, error)

// Network is a registry of endpoints with partition faults.
type Network struct {
	mu         sync.Mutex
	handlers   map[string]Handler
	partitions map[[2]string]bool
	sent       int
	bytes      int
}

// New creates an empty network.
func New() *Network {
	return &Network{
		handlers:   make(map[string]Handler),
		partitions: make(map[[2]string]bool),
	}
}

// Register adds an endpoint.
func (n *Network) Register(name string, h Handler) error {
	if name == "" || h == nil {
		return errors.New("transport: endpoint needs a name and a handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.handlers[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateEndpoint, name)
	}
	n.handlers[name] = h
	return nil
}

// Partition blocks traffic between a and b (both directions) until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(a, b)] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(a, b))
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Send delivers a message to its destination and returns the handler reply.
func (n *Network) Send(msg Message) ([]byte, error) {
	n.mu.Lock()
	h, ok := n.handlers[msg.To]
	partitioned := n.partitions[pairKey(msg.From, msg.To)]
	if ok && !partitioned {
		n.sent++
		n.bytes += len(msg.Payload)
	}
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, msg.To)
	}
	if partitioned {
		return nil, fmt.Errorf("%w: %s <-> %s", ErrPartitioned, msg.From, msg.To)
	}
	reply, err := h(msg)
	if err != nil {
		return nil, fmt.Errorf("deliver to %s: %w", msg.To, err)
	}
	return reply, nil
}

// Multicast sends the same payload to several endpoints, returning the
// first error encountered (delivery stops there, modelling a sender that
// aborts a flow on failure).
func (n *Network) Multicast(from, topic string, payload []byte, to []string) error {
	for _, dst := range to {
		if _, err := n.Send(Message{From: from, To: dst, Topic: topic, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports messages and bytes delivered so far.
func (n *Network) Stats() (messages, bytes int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.bytes
}

// Endpoints returns the registered endpoint names.
func (n *Network) Endpoints() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.handlers))
	for name := range n.handlers {
		out = append(out, name)
	}
	return out
}
