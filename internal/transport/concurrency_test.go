package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentNetworkUse exercises Send, Multicast, Partition/Heal,
// Stats, and Endpoints from many goroutines at once. The middleware
// gateway makes this path hot; run with -race.
func TestConcurrentNetworkUse(t *testing.T) {
	n := New()
	const endpoints = 8
	var delivered atomic.Int64
	names := make([]string, endpoints)
	for i := range names {
		names[i] = fmt.Sprintf("node-%d", i)
		if err := n.Register(names[i], func(msg Message) ([]byte, error) {
			delivered.Add(1)
			return []byte("ack"), nil
		}); err != nil {
			t.Fatalf("Register %s: %v", names[i], err)
		}
	}

	const rounds = 50
	var wg sync.WaitGroup

	// Senders: unicast between random fixed pairs.
	for g := 0; g < endpoints; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from, to := names[g], names[(g+1)%endpoints]
			for i := 0; i < rounds; i++ {
				reply, err := n.Send(Message{From: from, To: to, Topic: "t", Payload: []byte("ping")})
				if err != nil && !errors.Is(err, ErrPartitioned) {
					t.Errorf("Send %s->%s: %v", from, to, err)
					return
				}
				if err == nil && string(reply) != "ack" {
					t.Errorf("reply = %q", reply)
					return
				}
			}
		}(g)
	}

	// Multicasters: fan out to all endpoints.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from := names[g]
			for i := 0; i < rounds; i++ {
				if err := n.Multicast(from, "t", []byte("cast"), names); err != nil && !errors.Is(err, ErrPartitioned) {
					t.Errorf("Multicast from %s: %v", from, err)
					return
				}
			}
		}(g)
	}

	// Fault injectors: partition and heal a rotating pair.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			a, b := names[i%endpoints], names[(i+3)%endpoints]
			n.Partition(a, b)
			n.Heal(a, b)
		}
	}()

	// Observers: read stats and endpoint lists throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			msgs, bytes := n.Stats()
			if msgs < 0 || bytes < 0 {
				t.Errorf("negative stats: %d msgs %d bytes", msgs, bytes)
				return
			}
			if got := len(n.Endpoints()); got != endpoints {
				t.Errorf("endpoints = %d, want %d", got, endpoints)
				return
			}
		}
	}()

	wg.Wait()

	// Every successful delivery was counted exactly once.
	msgs, _ := n.Stats()
	if int64(msgs) != delivered.Load() {
		t.Fatalf("Stats reports %d messages, handlers saw %d", msgs, delivered.Load())
	}
}
