// Package transport provides the in-memory network substrate the platform
// models and most tests run on: named endpoints, unicast and multicast
// delivery, partition faults, and delivery interception. Delivery is
// synchronous and deterministic, which keeps the experiment suite
// reproducible; the paper's claims concern information flow, not
// asynchrony.
//
// The gateway registers here as an endpoint serving the wire topics
// (gateway.submit, session.open, session.close, revocation.notify), so a
// full pipeline round trip — codec decode, session resolve, stage chain,
// ordering — runs in-process with zero sockets. internal/netedge is this
// package's socket-backed sibling: it carries the same topics and the
// same wire payloads over real TCP, so anything developed against the
// in-memory substrate serves unchanged on the network edge. Choose
// transport for determinism (tests, experiments, benchmarks of the chain
// itself); choose netedge when the process boundary is the point.
package transport
