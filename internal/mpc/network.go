package mpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"dltprivacy/internal/transport"
)

// Networked execution: the same secure-sum protocol running over the
// transport substrate, one endpoint per party, so that experiments can
// inject partitions and observe that the protocol aborts rather than leaks
// or diverges.

// ErrProtocolAborted is returned when a networked run cannot complete (for
// example because a partition blocked share delivery).
var ErrProtocolAborted = errors.New("mpc: protocol aborted")

// wireMessage is the on-the-wire share/partial-sum format.
type wireMessage struct {
	Kind  MessageKind `json:"kind"`
	Value []byte      `json:"value"`
}

// networkParty is one participant's protocol state.
type networkParty struct {
	name string

	mu       sync.Mutex
	shares   []*big.Int
	partials map[string]*big.Int
}

func (p *networkParty) handle(msg transport.Message) ([]byte, error) {
	var wm wireMessage
	if err := json.Unmarshal(msg.Payload, &wm); err != nil {
		return nil, fmt.Errorf("decode mpc message: %w", err)
	}
	v := new(big.Int).SetBytes(wm.Value)
	p.mu.Lock()
	defer p.mu.Unlock()
	switch wm.Kind {
	case KindShare:
		p.shares = append(p.shares, v)
	case KindPartialSum:
		p.partials[msg.From] = v
	default:
		return nil, fmt.Errorf("mpc: unknown message kind %d", wm.Kind)
	}
	return nil, nil
}

// NetworkedSecureSum runs secure sum over a transport network. Each party
// gets an endpoint named "mpc/<party>"; shares and partial sums travel as
// network messages, so partitions and crashes surface as delivery errors
// and abort the protocol before anything is revealed.
func NetworkedSecureSum(net *transport.Network, inputs map[string]*big.Int) (*Result, error) {
	names := sortedNames(inputs)
	if len(names) < 2 {
		return nil, ErrTooFewParties
	}
	parties := make(map[string]*networkParty, len(names))
	for _, name := range names {
		if inputs[name] == nil {
			return nil, fmt.Errorf("party %q: %w", name, ErrMissingInput)
		}
		p := &networkParty{name: name, partials: make(map[string]*big.Int)}
		parties[name] = p
		if err := net.Register(endpoint(name), p.handle); err != nil {
			return nil, fmt.Errorf("register %s: %w", name, err)
		}
	}

	send := func(from, to string, kind MessageKind, v *big.Int) error {
		payload, err := json.Marshal(wireMessage{Kind: kind, Value: v.Bytes()})
		if err != nil {
			return err
		}
		_, err = net.Send(transport.Message{
			From:    endpoint(from),
			To:      endpoint(to),
			Topic:   "mpc",
			Payload: payload,
		})
		return err
	}

	var transcript []Message
	// Round 1: distribute shares.
	for _, from := range names {
		shares, err := Share(inputs[from], len(names))
		if err != nil {
			return nil, fmt.Errorf("share input of %q: %w", from, err)
		}
		for j, to := range names {
			if to == from {
				p := parties[from]
				p.mu.Lock()
				p.shares = append(p.shares, shares[j])
				p.mu.Unlock()
				continue
			}
			if err := send(from, to, KindShare, shares[j]); err != nil {
				return nil, fmt.Errorf("%w: share %s->%s: %v", ErrProtocolAborted, from, to, err)
			}
			transcript = append(transcript, Message{
				From: from, To: to, Kind: KindShare, Value: new(big.Int).Set(shares[j]),
			})
		}
	}
	// Round 2: broadcast partial sums.
	for _, name := range names {
		p := parties[name]
		p.mu.Lock()
		sum := new(big.Int)
		for _, s := range p.shares {
			sum.Add(sum, s)
		}
		sum.Mod(sum, fieldPrime)
		p.partials[endpoint(name)] = sum
		p.mu.Unlock()
		for _, to := range names {
			if to == name {
				continue
			}
			if err := send(name, to, KindPartialSum, sum); err != nil {
				return nil, fmt.Errorf("%w: partial %s->%s: %v", ErrProtocolAborted, name, to, err)
			}
			transcript = append(transcript, Message{
				From: name, To: to, Kind: KindPartialSum, Value: new(big.Int).Set(sum),
			})
		}
	}
	// Round 3: every party totals the partials.
	perParty := make(map[string]*big.Int, len(names))
	for _, name := range names {
		p := parties[name]
		p.mu.Lock()
		if len(p.partials) != len(names) {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %s holds %d partials, want %d",
				ErrProtocolAborted, name, len(p.partials), len(names))
		}
		total := new(big.Int)
		for _, v := range p.partials {
			total.Add(total, v)
		}
		perParty[name] = total.Mod(total, fieldPrime)
		p.mu.Unlock()
	}
	first := perParty[names[0]]
	for name, v := range perParty {
		if v.Cmp(first) != 0 {
			return nil, fmt.Errorf("%w: %s diverged", ErrProtocolAborted, name)
		}
	}
	return &Result{
		Value:      new(big.Int).Set(first),
		PerParty:   perParty,
		Transcript: transcript,
	}, nil
}

func endpoint(party string) string { return "mpc/" + party }
