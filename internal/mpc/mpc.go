// Package mpc implements multiparty computation by additive secret sharing
// (§2.2, "Multiparty computation", citing Chaum–Crépeau–Damgård): a group of
// parties computes a shared function on private inputs; each party only ever
// sees uniformly random shares and aggregated partial sums, never another
// party's raw value. All parties obtain the same output, which can then be
// committed to a ledger.
//
// The package implements the honest-but-curious model the paper's mechanism
// assumes ("all functions and algorithms performed on the data are known to
// all involved parties"). The protocol transcript is exposed so that tests
// and the leakage-accounting layer can verify what each party observed.
package mpc

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by protocol operations.
var (
	// ErrTooFewParties is returned for protocols with fewer than two
	// parties, where "multiparty" privacy is vacuous.
	ErrTooFewParties = errors.New("mpc: need at least two parties")
	// ErrMissingInput is returned when a party has not provided an input.
	ErrMissingInput = errors.New("mpc: party input not set")
	// ErrInputRange is returned when an input is outside [0, FieldPrime).
	ErrInputRange = errors.New("mpc: input out of field range")
	// ErrShareCount is returned by Reconstruct when shares are missing.
	ErrShareCount = errors.New("mpc: wrong number of shares")
	// ErrBadVote is returned when a ballot input is not 0 or 1.
	ErrBadVote = errors.New("mpc: ballot votes must be 0 or 1")
)

// fieldPrime is the prime modulus of the sharing field: 2^255 - 19.
var fieldPrime = func() *big.Int {
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	return p.Sub(p, big.NewInt(19))
}()

// FieldPrime returns (a copy of) the field modulus.
func FieldPrime() *big.Int { return new(big.Int).Set(fieldPrime) }

// Share splits secret into n additive shares: uniformly random values whose
// sum is the secret mod p. Any strict subset of shares is uniformly
// distributed and reveals nothing.
func Share(secret *big.Int, n int) ([]*big.Int, error) {
	if n < 2 {
		return nil, ErrTooFewParties
	}
	if secret.Sign() < 0 || secret.Cmp(fieldPrime) >= 0 {
		return nil, ErrInputRange
	}
	shares := make([]*big.Int, n)
	acc := new(big.Int)
	for i := 0; i < n-1; i++ {
		r, err := rand.Int(rand.Reader, fieldPrime)
		if err != nil {
			return nil, fmt.Errorf("sample share: %w", err)
		}
		shares[i] = r
		acc.Add(acc, r)
	}
	last := new(big.Int).Sub(secret, acc)
	last.Mod(last, fieldPrime)
	shares[n-1] = last
	return shares, nil
}

// Reconstruct sums all shares mod p.
func Reconstruct(shares []*big.Int) (*big.Int, error) {
	if len(shares) < 2 {
		return nil, ErrShareCount
	}
	sum := new(big.Int)
	for _, s := range shares {
		if s == nil {
			return nil, ErrShareCount
		}
		sum.Add(sum, s)
	}
	return sum.Mod(sum, fieldPrime), nil
}

// Message is one point-to-point transfer inside a protocol run, recorded in
// the transcript. Kind distinguishes a random share from an aggregated
// partial sum; only those two kinds of value ever travel.
type Message struct {
	From, To string
	Kind     MessageKind
	Value    *big.Int
}

// MessageKind labels protocol messages.
type MessageKind int

// Message kinds.
const (
	// KindShare is a uniformly random additive share of a private input.
	KindShare MessageKind = iota + 1
	// KindPartialSum is the sum of all shares a party received.
	KindPartialSum
)

// Result is the outcome of a protocol run.
type Result struct {
	// Value is the jointly computed output, identical for all parties.
	Value *big.Int
	// PerParty is the output each party computed locally; the protocol
	// guarantees they coincide, and tests assert it.
	PerParty map[string]*big.Int
	// Transcript is every message exchanged during the run.
	Transcript []Message
}

// SecureSum computes the sum of the private inputs without any party
// revealing its raw value. inputs maps party name to private input.
func SecureSum(inputs map[string]*big.Int) (*Result, error) {
	names := sortedNames(inputs)
	n := len(names)
	if n < 2 {
		return nil, ErrTooFewParties
	}
	for _, name := range names {
		v := inputs[name]
		if v == nil {
			return nil, fmt.Errorf("party %q: %w", name, ErrMissingInput)
		}
		if v.Sign() < 0 || v.Cmp(fieldPrime) >= 0 {
			return nil, fmt.Errorf("party %q: %w", name, ErrInputRange)
		}
	}

	var transcript []Message
	// Round 1: every party splits its input and sends share j to party j.
	received := make(map[string][]*big.Int, n) // recipient -> shares
	for _, from := range names {
		shares, err := Share(inputs[from], n)
		if err != nil {
			return nil, fmt.Errorf("share input of %q: %w", from, err)
		}
		for j, to := range names {
			received[to] = append(received[to], shares[j])
			if from != to {
				transcript = append(transcript, Message{
					From: from, To: to, Kind: KindShare, Value: new(big.Int).Set(shares[j]),
				})
			}
		}
	}

	// Round 2: every party sums its received shares and broadcasts the
	// partial sum.
	partials := make(map[string]*big.Int, n)
	for _, name := range names {
		sum := new(big.Int)
		for _, s := range received[name] {
			sum.Add(sum, s)
		}
		sum.Mod(sum, fieldPrime)
		partials[name] = sum
		for _, to := range names {
			if to != name {
				transcript = append(transcript, Message{
					From: name, To: to, Kind: KindPartialSum, Value: new(big.Int).Set(sum),
				})
			}
		}
	}

	// Round 3: everyone sums the partials locally.
	perParty := make(map[string]*big.Int, n)
	for _, name := range names {
		total := new(big.Int)
		for _, p := range partials {
			total.Add(total, p)
		}
		perParty[name] = total.Mod(total, fieldPrime)
	}
	return &Result{
		Value:      new(big.Int).Set(perParty[names[0]]),
		PerParty:   perParty,
		Transcript: transcript,
	}, nil
}

// SecureMean computes the arithmetic mean (integer-divided) of private
// inputs, returning (sum/n, remainder as sum mod n is discarded — the mean
// is floor(sum/n)).
func SecureMean(inputs map[string]*big.Int) (*Result, error) {
	res, err := SecureSum(inputs)
	if err != nil {
		return nil, err
	}
	n := big.NewInt(int64(len(inputs)))
	mean := new(big.Int).Div(res.Value, n)
	for name := range res.PerParty {
		res.PerParty[name] = new(big.Int).Div(res.PerParty[name], n)
	}
	res.Value = mean
	return res, nil
}

// SecretBallot runs the paper's motivating MPC example: a yes/no vote in
// which no party learns how any other party voted, only the tally. Votes
// must be 0 (no) or 1 (yes). It returns yes-count and the full result.
func SecretBallot(votes map[string]bool) (yes int, res *Result, err error) {
	inputs := make(map[string]*big.Int, len(votes))
	for name, v := range votes {
		if v {
			inputs[name] = big.NewInt(1)
		} else {
			inputs[name] = big.NewInt(0)
		}
	}
	res, err = SecureSum(inputs)
	if err != nil {
		return 0, nil, err
	}
	if !res.Value.IsInt64() || res.Value.Int64() > int64(len(votes)) {
		return 0, nil, fmt.Errorf("mpc: tally out of range: %v", res.Value)
	}
	return int(res.Value.Int64()), res, nil
}

// ObservedRawInput reports whether any message in the transcript carried a
// party's raw input to another party — the property MPC must prevent. Tests
// and the leakage layer use it as an executable privacy assertion. A share
// equal to the input can occur with negligible probability 1/p; partial
// sums equal to an input likewise.
func ObservedRawInput(res *Result, inputs map[string]*big.Int) bool {
	for _, m := range res.Transcript {
		in, ok := inputs[m.From]
		if !ok || in == nil {
			continue
		}
		if m.Kind == KindShare && m.Value.Cmp(in) == 0 && in.Sign() != 0 {
			return true
		}
	}
	return false
}

func sortedNames(inputs map[string]*big.Int) []string {
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
