package mpc

import (
	"errors"
	"math/big"
	"testing"

	"dltprivacy/internal/transport"
)

func TestNetworkedSecureSum(t *testing.T) {
	net := transport.New()
	inputs := map[string]*big.Int{
		"A": big.NewInt(100),
		"B": big.NewInt(42),
		"C": big.NewInt(8),
	}
	res, err := NetworkedSecureSum(net, inputs)
	if err != nil {
		t.Fatalf("NetworkedSecureSum: %v", err)
	}
	if res.Value.Int64() != 150 {
		t.Fatalf("sum = %v, want 150", res.Value)
	}
	for name, v := range res.PerParty {
		if v.Cmp(res.Value) != 0 {
			t.Fatalf("party %s diverged: %v", name, v)
		}
	}
	if ObservedRawInput(res, inputs) {
		t.Fatal("raw input leaked over the network")
	}
	msgs, _ := net.Stats()
	// n(n-1) shares + n(n-1) partials.
	if want := 2 * 3 * 2; msgs != want {
		t.Fatalf("network messages = %d, want %d", msgs, want)
	}
}

func TestNetworkedSecureSumAbortsOnPartition(t *testing.T) {
	net := transport.New()
	net.Partition("mpc/A", "mpc/B")
	inputs := map[string]*big.Int{
		"A": big.NewInt(1),
		"B": big.NewInt(2),
		"C": big.NewInt(3),
	}
	_, err := NetworkedSecureSum(net, inputs)
	if !errors.Is(err, ErrProtocolAborted) {
		t.Fatalf("partitioned run = %v, want ErrProtocolAborted", err)
	}
}

func TestNetworkedSecureSumValidation(t *testing.T) {
	net := transport.New()
	if _, err := NetworkedSecureSum(net, map[string]*big.Int{"A": big.NewInt(1)}); !errors.Is(err, ErrTooFewParties) {
		t.Fatalf("one party = %v, want ErrTooFewParties", err)
	}
	if _, err := NetworkedSecureSum(net, map[string]*big.Int{"X": big.NewInt(1), "Y": nil}); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("nil input = %v, want ErrMissingInput", err)
	}
}

func TestNetworkedMatchesInProcess(t *testing.T) {
	inputs := map[string]*big.Int{
		"A": big.NewInt(11),
		"B": big.NewInt(22),
		"C": big.NewInt(33),
		"D": big.NewInt(44),
	}
	inProc, err := SecureSum(inputs)
	if err != nil {
		t.Fatalf("SecureSum: %v", err)
	}
	networked, err := NetworkedSecureSum(transport.New(), inputs)
	if err != nil {
		t.Fatalf("NetworkedSecureSum: %v", err)
	}
	if inProc.Value.Cmp(networked.Value) != 0 {
		t.Fatalf("results differ: %v vs %v", inProc.Value, networked.Value)
	}
}
