package mpc

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestShareReconstruct(t *testing.T) {
	secret := big.NewInt(123456789)
	shares, err := Share(secret, 5)
	if err != nil {
		t.Fatalf("Share: %v", err)
	}
	got, err := Reconstruct(shares)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("Reconstruct = %v, want %v", got, secret)
	}
}

func TestShareSubsetIsUseless(t *testing.T) {
	secret := big.NewInt(42)
	shares, _ := Share(secret, 3)
	partial, err := Reconstruct(shares[:2])
	if err != nil {
		t.Fatalf("Reconstruct subset: %v", err)
	}
	if partial.Cmp(secret) == 0 {
		t.Fatal("a strict subset of shares must not reconstruct the secret (overwhelming probability)")
	}
}

func TestShareErrors(t *testing.T) {
	if _, err := Share(big.NewInt(1), 1); !errors.Is(err, ErrTooFewParties) {
		t.Fatalf("Share(n=1) = %v, want ErrTooFewParties", err)
	}
	if _, err := Share(big.NewInt(-1), 3); !errors.Is(err, ErrInputRange) {
		t.Fatalf("Share(-1) = %v, want ErrInputRange", err)
	}
	if _, err := Share(FieldPrime(), 3); !errors.Is(err, ErrInputRange) {
		t.Fatalf("Share(p) = %v, want ErrInputRange", err)
	}
	if _, err := Reconstruct([]*big.Int{big.NewInt(1)}); !errors.Is(err, ErrShareCount) {
		t.Fatalf("Reconstruct(1 share) = %v, want ErrShareCount", err)
	}
	if _, err := Reconstruct([]*big.Int{big.NewInt(1), nil}); !errors.Is(err, ErrShareCount) {
		t.Fatalf("Reconstruct(nil share) = %v, want ErrShareCount", err)
	}
}

func TestSecureSum(t *testing.T) {
	inputs := map[string]*big.Int{
		"BankA":    big.NewInt(100),
		"SellerCo": big.NewInt(250),
		"BuyerInc": big.NewInt(7),
	}
	res, err := SecureSum(inputs)
	if err != nil {
		t.Fatalf("SecureSum: %v", err)
	}
	if res.Value.Int64() != 357 {
		t.Fatalf("sum = %v, want 357", res.Value)
	}
	// Consistency: every party computed the same value (the paper: "one
	// consistent value that can be committed to the ledger").
	for name, v := range res.PerParty {
		if v.Cmp(res.Value) != 0 {
			t.Fatalf("party %s computed %v, want %v", name, v, res.Value)
		}
	}
}

func TestSecureSumPrivacy(t *testing.T) {
	inputs := map[string]*big.Int{
		"A": big.NewInt(1111),
		"B": big.NewInt(2222),
		"C": big.NewInt(3333),
	}
	res, err := SecureSum(inputs)
	if err != nil {
		t.Fatalf("SecureSum: %v", err)
	}
	if ObservedRawInput(res, inputs) {
		t.Fatal("a raw input leaked in the transcript")
	}
	// No message other than shares and partial sums may travel.
	for _, m := range res.Transcript {
		if m.Kind != KindShare && m.Kind != KindPartialSum {
			t.Fatalf("unexpected message kind %d", m.Kind)
		}
		if m.From == m.To {
			t.Fatal("self-messages must not be recorded")
		}
	}
}

func TestSecureSumErrors(t *testing.T) {
	if _, err := SecureSum(map[string]*big.Int{"A": big.NewInt(1)}); !errors.Is(err, ErrTooFewParties) {
		t.Fatalf("one party = %v, want ErrTooFewParties", err)
	}
	if _, err := SecureSum(map[string]*big.Int{"A": big.NewInt(1), "B": nil}); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("nil input = %v, want ErrMissingInput", err)
	}
	if _, err := SecureSum(map[string]*big.Int{"A": big.NewInt(1), "B": big.NewInt(-2)}); !errors.Is(err, ErrInputRange) {
		t.Fatalf("negative input = %v, want ErrInputRange", err)
	}
}

func TestSecureMean(t *testing.T) {
	inputs := map[string]*big.Int{
		"A": big.NewInt(10),
		"B": big.NewInt(20),
		"C": big.NewInt(31),
	}
	res, err := SecureMean(inputs)
	if err != nil {
		t.Fatalf("SecureMean: %v", err)
	}
	if res.Value.Int64() != 20 { // floor(61/3)
		t.Fatalf("mean = %v, want 20", res.Value)
	}
}

func TestSecretBallot(t *testing.T) {
	votes := map[string]bool{
		"A": true,
		"B": false,
		"C": true,
		"D": true,
		"E": false,
	}
	yes, res, err := SecretBallot(votes)
	if err != nil {
		t.Fatalf("SecretBallot: %v", err)
	}
	if yes != 3 {
		t.Fatalf("yes = %d, want 3", yes)
	}
	// Ballot privacy: no share message reveals a 0/1 vote directly — all
	// shares are field elements; check transcript values are not all tiny.
	small := 0
	for _, m := range res.Transcript {
		if m.Kind == KindShare && m.Value.BitLen() <= 1 {
			small++
		}
	}
	if small > len(res.Transcript)/4 {
		t.Fatalf("suspiciously many small shares: %d of %d", small, len(res.Transcript))
	}
}

func TestSecureSumProperty(t *testing.T) {
	f := func(a, b, c uint32) bool {
		inputs := map[string]*big.Int{
			"A": big.NewInt(int64(a)),
			"B": big.NewInt(int64(b)),
			"C": big.NewInt(int64(c)),
		}
		res, err := SecureSum(inputs)
		if err != nil {
			return false
		}
		want := int64(a) + int64(b) + int64(c)
		return res.Value.Int64() == want && !ObservedRawInput(res, inputs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSecureSumManyParties(t *testing.T) {
	inputs := make(map[string]*big.Int, 20)
	want := int64(0)
	for i := 0; i < 20; i++ {
		v := int64(i * 13)
		inputs[string(rune('A'+i))] = big.NewInt(v)
		want += v
	}
	res, err := SecureSum(inputs)
	if err != nil {
		t.Fatalf("SecureSum: %v", err)
	}
	if res.Value.Int64() != want {
		t.Fatalf("sum = %v, want %d", res.Value, want)
	}
	// n parties, each sends n-1 shares and n-1 partials.
	wantMsgs := 2 * 20 * 19
	if len(res.Transcript) != wantMsgs {
		t.Fatalf("transcript = %d messages, want %d", len(res.Transcript), wantMsgs)
	}
}
