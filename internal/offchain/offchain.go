// Package offchain implements the paper's off-chain data mechanism (§2.2,
// "Off-chain data"): confidential payloads live in a database hosted by a
// peer ("peer off-chain") or separate from the DLT layer entirely, while
// transactions on the ledger carry only a hash of the data as authoritative
// evidence. Off-chain storage is what makes deletion possible — the GDPR
// "right to be forgotten" branch of Figure 1 — at the documented cost of
// weakening the immutable-audit promise for the deleted values.
package offchain

import (
	"errors"
	"fmt"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
)

// Errors returned by store operations.
var (
	// ErrNotFound is returned for unknown or deleted keys.
	ErrNotFound = errors.New("offchain: not found")
	// ErrDeleted is returned when data was removed under a deletion
	// request; the anchor survives as tombstone evidence.
	ErrDeleted = errors.New("offchain: data deleted on request")
	// ErrAnchorMismatch is returned when data fails provenance
	// verification against its on-chain anchor.
	ErrAnchorMismatch = errors.New("offchain: anchor mismatch")
	// ErrUnauthorized is returned when a requester outside the
	// authorized set asks for data.
	ErrUnauthorized = errors.New("offchain: requester not authorized")
)

// Anchor is the on-chain commitment to an off-chain value.
type Anchor [32]byte

// ComputeAnchor hashes a value for on-ledger reference.
func ComputeAnchor(value []byte) Anchor {
	return Anchor(dcrypto.Hash(value))
}

// VerifyAnchor checks value against its anchor — the "audit trail for
// involved parties to verify the provenance of private data".
func VerifyAnchor(value []byte, a Anchor) error {
	if ComputeAnchor(value) != a {
		return ErrAnchorMismatch
	}
	return nil
}

// entry is one stored value with its anchor and tombstone flag.
type entry struct {
	value   []byte
	anchor  Anchor
	deleted bool
}

// Store is an off-chain database hosted by a named principal with an
// authorized reader set. The host inherently observes everything it stores;
// the audit log records that, which is how experiments distinguish
// peer-hosted from externally hosted deployments.
type Store struct {
	host       string
	authorized map[string]bool
	log        *audit.Log
	class      audit.DataClass

	mu   sync.Mutex
	data map[string]*entry
}

// Option configures a store.
type Option func(*Store)

// WithAuditLog attaches leakage accounting.
func WithAuditLog(log *audit.Log) Option {
	return func(s *Store) { s.log = log }
}

// WithDataClass sets the audit class recorded for stored values (default
// ClassTxData; PII stores use ClassPII).
func WithDataClass(c audit.DataClass) Option {
	return func(s *Store) { s.class = c }
}

// NewStore creates a store hosted by host, readable by the authorized
// parties (the host is always authorized).
func NewStore(host string, authorized []string, opts ...Option) *Store {
	auth := make(map[string]bool, len(authorized)+1)
	auth[host] = true
	for _, a := range authorized {
		auth[a] = true
	}
	s := &Store{
		host:       host,
		authorized: auth,
		class:      audit.ClassTxData,
		data:       make(map[string]*entry),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Host returns the hosting principal.
func (s *Store) Host() string { return s.host }

// Put stores a value and returns its anchor for on-chain reference. The
// host observes the value.
func (s *Store) Put(key string, value []byte) (Anchor, error) {
	if key == "" {
		return Anchor{}, errors.New("offchain: empty key")
	}
	a := ComputeAnchor(value)
	s.mu.Lock()
	s.data[key] = &entry{value: append([]byte(nil), value...), anchor: a}
	s.mu.Unlock()
	s.log.Record(s.host, s.class, key)
	return a, nil
}

// Get returns the value for an authorized requester, recording the
// observation.
func (s *Store) Get(key, requester string) ([]byte, error) {
	if !s.authorized[requester] {
		return nil, fmt.Errorf("%q: %w", requester, ErrUnauthorized)
	}
	s.mu.Lock()
	e, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("key %q: %w", key, ErrNotFound)
	}
	if e.deleted {
		return nil, fmt.Errorf("key %q: %w", key, ErrDeleted)
	}
	s.log.Record(requester, s.class, key)
	return append([]byte(nil), e.value...), nil
}

// AnchorOf returns the anchor for a key, even after deletion (the tombstone
// proves the datum existed without retaining it).
func (s *Store) AnchorOf(key string) (Anchor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return Anchor{}, fmt.Errorf("key %q: %w", key, ErrNotFound)
	}
	return e.anchor, nil
}

// Delete removes the value under a legal deletion request (§3, GDPR),
// leaving the anchor tombstone.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return fmt.Errorf("key %q: %w", key, ErrNotFound)
	}
	e.value = nil
	e.deleted = true
	return nil
}

// Deleted reports whether a key was deleted.
func (s *Store) Deleted(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	return ok && e.deleted
}

// Len returns the number of live (undeleted) values.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.data {
		if !e.deleted {
			n++
		}
	}
	return n
}
