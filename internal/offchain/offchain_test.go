package offchain

import (
	"bytes"
	"errors"
	"testing"

	"dltprivacy/internal/audit"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore("peer1", []string{"BankA"})
	anchor, err := s.Put("doc-1", []byte("invoice details"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("doc-1", "BankA")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, []byte("invoice details")) {
		t.Fatalf("Get = %q", got)
	}
	if err := VerifyAnchor(got, anchor); err != nil {
		t.Fatalf("VerifyAnchor: %v", err)
	}
}

func TestPutEmptyKey(t *testing.T) {
	s := NewStore("peer1", nil)
	if _, err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key must be rejected")
	}
}

func TestUnauthorizedGet(t *testing.T) {
	s := NewStore("peer1", []string{"BankA"})
	if _, err := s.Put("doc-1", []byte("secret")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get("doc-1", "Outsider"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthorized Get = %v, want ErrUnauthorized", err)
	}
}

func TestHostAlwaysAuthorized(t *testing.T) {
	s := NewStore("peer1", nil)
	if _, err := s.Put("doc", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get("doc", "peer1"); err != nil {
		t.Fatalf("host Get: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore("peer1", nil)
	if _, err := s.Get("nope", "peer1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestGDPRDeletion(t *testing.T) {
	s := NewStore("peer1", []string{"BankA"})
	anchor, err := s.Put("pii-1", []byte("passport M1234567"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete("pii-1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("pii-1", "BankA"); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get deleted = %v, want ErrDeleted", err)
	}
	// The anchor tombstone survives deletion: evidence without content.
	got, err := s.AnchorOf("pii-1")
	if err != nil {
		t.Fatalf("AnchorOf: %v", err)
	}
	if got != anchor {
		t.Fatal("anchor must survive deletion")
	}
	if !s.Deleted("pii-1") || s.Deleted("other") {
		t.Fatal("Deleted flag wrong")
	}
}

func TestDeleteMissing(t *testing.T) {
	s := NewStore("peer1", nil)
	if err := s.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
}

func TestAnchorMismatch(t *testing.T) {
	a := ComputeAnchor([]byte("original"))
	if err := VerifyAnchor([]byte("tampered"), a); !errors.Is(err, ErrAnchorMismatch) {
		t.Fatalf("VerifyAnchor tampered = %v, want ErrAnchorMismatch", err)
	}
}

func TestLeakageAccounting(t *testing.T) {
	log := audit.NewLog()
	s := NewStore("peer1", []string{"BankA"}, WithAuditLog(log), WithDataClass(audit.ClassPII))
	if _, err := s.Put("pii-1", []byte("ssn")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Get("pii-1", "BankA"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !log.Saw("peer1", audit.ClassPII, "pii-1") {
		t.Fatal("host observation missing")
	}
	if !log.Saw("BankA", audit.ClassPII, "pii-1") {
		t.Fatal("reader observation missing")
	}
	// Unauthorized attempts leave no observation.
	_, _ = s.Get("pii-1", "Eve")
	if log.SawAny("Eve", audit.ClassPII) {
		t.Fatal("failed access must not record an observation")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore("peer1", nil)
	if _, err := s.Put("k", []byte("abc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, _ := s.Get("k", "peer1")
	got[0] = 'X'
	again, _ := s.Get("k", "peer1")
	if string(again) != "abc" {
		t.Fatal("Get must return a defensive copy")
	}
}

func TestLen(t *testing.T) {
	s := NewStore("peer1", nil)
	_, _ = s.Put("a", []byte("1"))
	_, _ = s.Put("b", []byte("2"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	_ = s.Delete("a")
	if s.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", s.Len())
	}
}
