package zkp

import (
	"fmt"
	"math/big"
)

// Commitment is a Pedersen commitment C = v*G + r*H. It is perfectly hiding
// and computationally binding; commitments are additively homomorphic, which
// the range proofs exploit.
type Commitment struct {
	P Point
}

// Commit commits to value v with blinding r.
func Commit(v, r *big.Int) Commitment {
	return Commitment{P: MulBase(v).Add(generatorH.Mul(r))}
}

// CommitValue commits to v with fresh randomness, returning the commitment
// and the blinding factor.
func CommitValue(v *big.Int) (Commitment, *big.Int, error) {
	r, err := RandScalar()
	if err != nil {
		return Commitment{}, nil, fmt.Errorf("commit: %w", err)
	}
	return Commit(v, r), r, nil
}

// Open verifies that the commitment opens to (v, r).
func (c Commitment) Open(v, r *big.Int) bool {
	return c.P.Equal(Commit(v, r).P)
}

// Add returns the commitment to the sum of the committed values (blindings
// add correspondingly).
func (c Commitment) Add(other Commitment) Commitment {
	return Commitment{P: c.P.Add(other.P)}
}

// Sub returns the commitment to the difference.
func (c Commitment) Sub(other Commitment) Commitment {
	return Commitment{P: c.P.Sub(other.P)}
}

// MulScalar returns the commitment to k times the committed value.
func (c Commitment) MulScalar(k *big.Int) Commitment {
	return Commitment{P: c.P.Mul(k)}
}

// SubValue returns the commitment to (v - t) given the commitment to v; the
// blinding factor is unchanged. This is the operation that turns a balance
// commitment into a "balance minus threshold" commitment for sufficient-funds
// proofs.
func (c Commitment) SubValue(t *big.Int) Commitment {
	return Commitment{P: c.P.Sub(MulBase(t))}
}

// Equal reports whether two commitments are the same group element.
func (c Commitment) Equal(other Commitment) bool { return c.P.Equal(other.P) }

// Bytes returns the canonical encoding for transcripts.
func (c Commitment) Bytes() []byte { return c.P.Bytes() }
