package zkp

import (
	"fmt"
	"math/big"
)

// BitProof is an OR-composed sigma proof that a commitment C opens to 0 or 1
// (with some blinding): either C = r*H or C - G = r*H. The verifier learns
// which is true for neither branch.
type BitProof struct {
	A0, A1 Point
	C0, C1 *big.Int
	S0, S1 *big.Int
}

// ProveBit proves that commitment c = Commit(bit, r) hides bit ∈ {0, 1}.
func ProveBit(bit int, r *big.Int, c Commitment, context []byte) (BitProof, error) {
	if bit != 0 && bit != 1 {
		return BitProof{}, fmt.Errorf("%w: bit must be 0 or 1", ErrOutOfRange)
	}
	// Statement for branch 0: c.P        = r*H
	// Statement for branch 1: c.P - G    = r*H
	p0 := c.P
	p1 := c.P.Sub(Generator())

	k, err := RandScalar()
	if err != nil {
		return BitProof{}, err
	}
	// Simulated branch values.
	cSim, err := RandScalar()
	if err != nil {
		return BitProof{}, err
	}
	sSim, err := RandScalar()
	if err != nil {
		return BitProof{}, err
	}

	var proof BitProof
	switch bit {
	case 0:
		// Real proof on branch 0, simulate branch 1:
		// A1 = sSim*H - cSim*P1.
		proof.A0 = generatorH.Mul(k)
		proof.A1 = generatorH.Mul(sSim).Sub(p1.Mul(cSim))
		ch := Challenge([]byte("bit"), c.Bytes(), proof.A0.Bytes(), proof.A1.Bytes(), context)
		c0 := new(big.Int).Sub(ch, cSim)
		c0.Mod(c0, Order())
		s0 := new(big.Int).Mul(c0, r)
		s0.Add(s0, k)
		s0.Mod(s0, Order())
		proof.C0, proof.S0 = c0, s0
		proof.C1, proof.S1 = cSim, sSim
	case 1:
		// Real proof on branch 1, simulate branch 0.
		proof.A1 = generatorH.Mul(k)
		proof.A0 = generatorH.Mul(sSim).Sub(p0.Mul(cSim))
		ch := Challenge([]byte("bit"), c.Bytes(), proof.A0.Bytes(), proof.A1.Bytes(), context)
		c1 := new(big.Int).Sub(ch, cSim)
		c1.Mod(c1, Order())
		s1 := new(big.Int).Mul(c1, r)
		s1.Add(s1, k)
		s1.Mod(s1, Order())
		proof.C1, proof.S1 = c1, s1
		proof.C0, proof.S0 = cSim, sSim
	}
	return proof, nil
}

// VerifyBit checks a bit proof against its commitment.
func VerifyBit(proof BitProof, c Commitment, context []byte) error {
	if proof.C0 == nil || proof.C1 == nil || proof.S0 == nil || proof.S1 == nil {
		return ErrBadProof
	}
	ch := Challenge([]byte("bit"), c.Bytes(), proof.A0.Bytes(), proof.A1.Bytes(), context)
	sum := new(big.Int).Add(proof.C0, proof.C1)
	sum.Mod(sum, Order())
	if sum.Cmp(ch) != 0 {
		return ErrBadProof
	}
	p0 := c.P
	p1 := c.P.Sub(Generator())
	// s0*H == A0 + c0*P0
	if !generatorH.Mul(proof.S0).Equal(proof.A0.Add(p0.Mul(proof.C0))) {
		return ErrBadProof
	}
	// s1*H == A1 + c1*P1
	if !generatorH.Mul(proof.S1).Equal(proof.A1.Add(p1.Mul(proof.C1))) {
		return ErrBadProof
	}
	return nil
}

// RangeProof proves that a committed value lies in [0, 2^Bits) by committing
// to each bit, proving each bit commitment hides 0 or 1, and exposing bit
// commitments whose weighted sum equals the target commitment.
type RangeProof struct {
	Bits      int
	BitComms  []Commitment
	BitProofs []BitProof
}

// DefaultRangeBits is the default width used for sufficient-funds proofs:
// values up to 2^32 - 1.
const DefaultRangeBits = 32

// ProveRange proves v ∈ [0, 2^bits) for commitment c = Commit(v, r). The
// prover refuses (ErrOutOfRange) when the statement is false.
func ProveRange(v, r *big.Int, c Commitment, bits int, context []byte) (RangeProof, error) {
	if bits <= 0 || bits > 64 {
		return RangeProof{}, fmt.Errorf("zkp: unsupported range width %d", bits)
	}
	if v.Sign() < 0 || v.BitLen() > bits {
		return RangeProof{}, fmt.Errorf("%w: value outside [0, 2^%d)", ErrOutOfRange, bits)
	}
	n := Order()
	// Choose bit blindings r_i with Σ 2^i r_i ≡ r (mod N): sample all but
	// the last freely, then solve for the last.
	blindings := make([]*big.Int, bits)
	acc := new(big.Int)
	for i := 0; i < bits-1; i++ {
		ri, err := RandScalar()
		if err != nil {
			return RangeProof{}, err
		}
		blindings[i] = ri
		term := new(big.Int).Lsh(ri, uint(i))
		acc.Add(acc, term)
	}
	acc.Mod(acc, n)
	rem := new(big.Int).Sub(r, acc)
	rem.Mod(rem, n)
	invPow := new(big.Int).ModInverse(new(big.Int).Lsh(big.NewInt(1), uint(bits-1)), n)
	last := new(big.Int).Mul(rem, invPow)
	last.Mod(last, n)
	blindings[bits-1] = last

	proof := RangeProof{
		Bits:      bits,
		BitComms:  make([]Commitment, bits),
		BitProofs: make([]BitProof, bits),
	}
	for i := 0; i < bits; i++ {
		bit := int(v.Bit(i))
		ci := Commit(big.NewInt(int64(bit)), blindings[i])
		proof.BitComms[i] = ci
		bp, err := ProveBit(bit, blindings[i], ci, context)
		if err != nil {
			return RangeProof{}, fmt.Errorf("bit %d: %w", i, err)
		}
		proof.BitProofs[i] = bp
	}
	// Sanity: weighted sum reproduces c.
	if !weightedSum(proof.BitComms).Equal(c) {
		return RangeProof{}, fmt.Errorf("zkp: internal error, bit commitments do not recompose")
	}
	return proof, nil
}

// VerifyRange checks a range proof against commitment c.
func VerifyRange(proof RangeProof, c Commitment, context []byte) error {
	if proof.Bits <= 0 || len(proof.BitComms) != proof.Bits || len(proof.BitProofs) != proof.Bits {
		return ErrBadProof
	}
	for i := 0; i < proof.Bits; i++ {
		if err := VerifyBit(proof.BitProofs[i], proof.BitComms[i], context); err != nil {
			return fmt.Errorf("bit %d: %w", i, err)
		}
	}
	if !weightedSum(proof.BitComms).Equal(c) {
		return ErrBadProof
	}
	return nil
}

func weightedSum(comms []Commitment) Commitment {
	sum := Commitment{P: Point{X: new(big.Int), Y: new(big.Int)}}
	for i, ci := range comms {
		sum = sum.Add(ci.MulScalar(new(big.Int).Lsh(big.NewInt(1), uint(i))))
	}
	return sum
}

// SufficientFundsProof is the paper's motivating boolean affirmation: a
// party proves its committed balance is at least a public threshold without
// revealing the balance (§2.2, "the party has the appropriate funds").
type SufficientFundsProof struct {
	Threshold *big.Int
	Range     RangeProof
}

// ProveSufficientFunds proves balance ≥ threshold given the commitment
// c = Commit(balance, r).
func ProveSufficientFunds(balance, r, threshold *big.Int, c Commitment, context []byte) (SufficientFundsProof, error) {
	diff := new(big.Int).Sub(balance, threshold)
	if diff.Sign() < 0 {
		return SufficientFundsProof{}, fmt.Errorf("%w: balance below threshold", ErrOutOfRange)
	}
	cDiff := c.SubValue(threshold)
	rp, err := ProveRange(diff, r, cDiff, DefaultRangeBits, context)
	if err != nil {
		return SufficientFundsProof{}, err
	}
	return SufficientFundsProof{Threshold: new(big.Int).Set(threshold), Range: rp}, nil
}

// VerifySufficientFunds checks the proof against the balance commitment.
func VerifySufficientFunds(proof SufficientFundsProof, c Commitment, context []byte) error {
	if proof.Threshold == nil {
		return ErrBadProof
	}
	cDiff := c.SubValue(proof.Threshold)
	return VerifyRange(proof.Range, cDiff, context)
}
