package zkp

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestGroupBasics(t *testing.T) {
	g := Generator()
	h := GeneratorH()
	if g.Equal(h) {
		t.Fatal("G and H must differ")
	}
	if !g.Add(g.Neg()).IsIdentity() {
		t.Fatal("P + (-P) must be identity")
	}
	if !g.Mul(big.NewInt(0)).IsIdentity() {
		t.Fatal("0*P must be identity")
	}
	two := g.Add(g)
	if !two.Equal(g.Mul(big.NewInt(2))) {
		t.Fatal("P+P must equal 2P")
	}
	id := Point{X: new(big.Int), Y: new(big.Int)}
	if !id.Add(g).Equal(g) {
		t.Fatal("identity + P must be P")
	}
}

func TestPointRoundTrip(t *testing.T) {
	p := Generator().Mul(big.NewInt(12345))
	got, err := ParsePoint(p.Bytes())
	if err != nil {
		t.Fatalf("ParsePoint: %v", err)
	}
	if !got.Equal(p) {
		t.Fatal("point round trip mismatch")
	}
	id, err := ParsePoint(make([]byte, 64))
	if err != nil || !id.IsIdentity() {
		t.Fatalf("identity round trip: %v", err)
	}
	if _, err := ParsePoint([]byte{1, 2, 3}); err == nil {
		t.Fatal("short encoding must be rejected")
	}
	bad := make([]byte, 64)
	bad[0] = 1
	if _, err := ParsePoint(bad); err == nil {
		t.Fatal("off-curve point must be rejected")
	}
}

func TestPedersenHomomorphic(t *testing.T) {
	c1, r1, err := CommitValue(big.NewInt(30))
	if err != nil {
		t.Fatalf("CommitValue: %v", err)
	}
	c2, r2, err := CommitValue(big.NewInt(12))
	if err != nil {
		t.Fatalf("CommitValue: %v", err)
	}
	sumR := new(big.Int).Add(r1, r2)
	if !c1.Add(c2).Open(big.NewInt(42), sumR) {
		t.Fatal("commitment addition must commit to sum")
	}
	diffR := new(big.Int).Sub(r1, r2)
	if !c1.Sub(c2).Open(big.NewInt(18), diffR) {
		t.Fatal("commitment subtraction must commit to difference")
	}
	if !c1.MulScalar(big.NewInt(3)).Open(big.NewInt(90), new(big.Int).Mul(r1, big.NewInt(3))) {
		t.Fatal("scalar multiplication must scale value")
	}
	if !c1.SubValue(big.NewInt(10)).Open(big.NewInt(20), r1) {
		t.Fatal("SubValue must shift the committed value, keeping blinding")
	}
}

func TestPedersenHiding(t *testing.T) {
	// Two commitments to the same value with different randomness differ.
	c1, _, _ := CommitValue(big.NewInt(7))
	c2, _, _ := CommitValue(big.NewInt(7))
	if c1.Equal(c2) {
		t.Fatal("fresh commitments to same value should differ (hiding)")
	}
}

func TestPedersenBindingWrongOpening(t *testing.T) {
	c, r, _ := CommitValue(big.NewInt(7))
	if c.Open(big.NewInt(8), r) {
		t.Fatal("commitment must not open to a different value")
	}
}

func TestSchnorrProveVerify(t *testing.T) {
	x, _ := RandScalar()
	p := MulBase(x)
	proof, err := SchnorrProve(x, Generator(), p, []byte("session-1"))
	if err != nil {
		t.Fatalf("SchnorrProve: %v", err)
	}
	if err := SchnorrVerify(proof, Generator(), p, []byte("session-1")); err != nil {
		t.Fatalf("SchnorrVerify: %v", err)
	}
}

func TestSchnorrContextBinding(t *testing.T) {
	x, _ := RandScalar()
	p := MulBase(x)
	proof, _ := SchnorrProve(x, Generator(), p, []byte("session-1"))
	if err := SchnorrVerify(proof, Generator(), p, []byte("session-2")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("replayed proof = %v, want ErrBadProof", err)
	}
}

func TestSchnorrWrongStatement(t *testing.T) {
	x, _ := RandScalar()
	y, _ := RandScalar()
	proof, _ := SchnorrProve(x, Generator(), MulBase(x), nil)
	if err := SchnorrVerify(proof, Generator(), MulBase(y), nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("wrong statement = %v, want ErrBadProof", err)
	}
}

func TestSchnorrNilResponse(t *testing.T) {
	if err := SchnorrVerify(SchnorrProof{}, Generator(), Generator(), nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("nil proof = %v, want ErrBadProof", err)
	}
}

func TestEqDLProveVerify(t *testing.T) {
	x, _ := RandScalar()
	b2 := GeneratorH()
	p1 := MulBase(x)
	p2 := b2.Mul(x)
	proof, err := EqDLProve(x, Generator(), p1, b2, p2, []byte("ctx"))
	if err != nil {
		t.Fatalf("EqDLProve: %v", err)
	}
	if err := EqDLVerify(proof, Generator(), p1, b2, p2, []byte("ctx")); err != nil {
		t.Fatalf("EqDLVerify: %v", err)
	}
}

func TestEqDLRejectsMismatchedWitness(t *testing.T) {
	x, _ := RandScalar()
	y, _ := RandScalar()
	b2 := GeneratorH()
	p1 := MulBase(x)
	p2 := b2.Mul(y) // different witness
	proof, _ := EqDLProve(x, Generator(), p1, b2, b2.Mul(x), nil)
	if err := EqDLVerify(proof, Generator(), p1, b2, p2, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("mismatched witness = %v, want ErrBadProof", err)
	}
}

func TestProveOpening(t *testing.T) {
	v := big.NewInt(99)
	c, r, _ := CommitValue(v)
	proof, err := ProveOpening(v, r, c, []byte("ctx"))
	if err != nil {
		t.Fatalf("ProveOpening: %v", err)
	}
	if err := VerifyOpening(proof, c, []byte("ctx")); err != nil {
		t.Fatalf("VerifyOpening: %v", err)
	}
	other, _, _ := CommitValue(big.NewInt(5))
	if err := VerifyOpening(proof, other, []byte("ctx")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("opening proof against other commitment = %v, want ErrBadProof", err)
	}
}

func TestBitProof(t *testing.T) {
	for _, bit := range []int{0, 1} {
		r, _ := RandScalar()
		c := Commit(big.NewInt(int64(bit)), r)
		proof, err := ProveBit(bit, r, c, []byte("ctx"))
		if err != nil {
			t.Fatalf("ProveBit(%d): %v", bit, err)
		}
		if err := VerifyBit(proof, c, []byte("ctx")); err != nil {
			t.Fatalf("VerifyBit(%d): %v", bit, err)
		}
	}
}

func TestBitProofRejectsNonBit(t *testing.T) {
	r, _ := RandScalar()
	if _, err := ProveBit(2, r, Commit(big.NewInt(2), r), nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ProveBit(2) = %v, want ErrOutOfRange", err)
	}
}

func TestBitProofRejectsWrongCommitment(t *testing.T) {
	r, _ := RandScalar()
	c := Commit(big.NewInt(1), r)
	proof, _ := ProveBit(1, r, c, nil)
	r2, _ := RandScalar()
	other := Commit(big.NewInt(0), r2)
	if err := VerifyBit(proof, other, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("bit proof against other commitment = %v, want ErrBadProof", err)
	}
}

func TestBitProofCannotProveTwo(t *testing.T) {
	// A malicious prover committing to 2 cannot use ProveBit honestly, and
	// a forged proof over that commitment must not verify.
	r, _ := RandScalar()
	c := Commit(big.NewInt(2), r)
	// Try the closest attack available through the API: prove bit 1 with
	// the same blinding over the wrong commitment.
	proof, err := ProveBit(1, r, c, nil)
	if err != nil {
		t.Fatalf("ProveBit: %v", err)
	}
	if err := VerifyBit(proof, c, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("proof for value 2 = %v, want ErrBadProof", err)
	}
}

func TestRangeProof(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 255, 1 << 20, (1 << 32) - 1} {
		val := big.NewInt(v)
		c, r, _ := CommitValue(val)
		proof, err := ProveRange(val, r, c, 32, []byte("ctx"))
		if err != nil {
			t.Fatalf("ProveRange(%d): %v", v, err)
		}
		if err := VerifyRange(proof, c, []byte("ctx")); err != nil {
			t.Fatalf("VerifyRange(%d): %v", v, err)
		}
	}
}

func TestRangeProofRejectsTooLarge(t *testing.T) {
	val := new(big.Int).Lsh(big.NewInt(1), 33)
	c, r, _ := CommitValue(val)
	if _, err := ProveRange(val, r, c, 32, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ProveRange(2^33) = %v, want ErrOutOfRange", err)
	}
}

func TestRangeProofRejectsNegative(t *testing.T) {
	val := big.NewInt(-5)
	c, r, _ := CommitValue(val)
	if _, err := ProveRange(val, r, c, 32, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ProveRange(-5) = %v, want ErrOutOfRange", err)
	}
}

func TestRangeProofRejectsWrongCommitment(t *testing.T) {
	val := big.NewInt(100)
	c, r, _ := CommitValue(val)
	proof, _ := ProveRange(val, r, c, 16, nil)
	other, _, _ := CommitValue(big.NewInt(100)) // different blinding
	if err := VerifyRange(proof, other, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("range proof vs other commitment = %v, want ErrBadProof", err)
	}
}

func TestRangeProofMalformed(t *testing.T) {
	c, _, _ := CommitValue(big.NewInt(1))
	if err := VerifyRange(RangeProof{Bits: 4}, c, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("malformed proof = %v, want ErrBadProof", err)
	}
}

func TestSufficientFunds(t *testing.T) {
	balance := big.NewInt(5000)
	threshold := big.NewInt(1200)
	c, r, _ := CommitValue(balance)
	proof, err := ProveSufficientFunds(balance, r, threshold, c, []byte("loc-42"))
	if err != nil {
		t.Fatalf("ProveSufficientFunds: %v", err)
	}
	if err := VerifySufficientFunds(proof, c, []byte("loc-42")); err != nil {
		t.Fatalf("VerifySufficientFunds: %v", err)
	}
}

func TestSufficientFundsExactThreshold(t *testing.T) {
	balance := big.NewInt(1200)
	c, r, _ := CommitValue(balance)
	proof, err := ProveSufficientFunds(balance, r, balance, c, nil)
	if err != nil {
		t.Fatalf("ProveSufficientFunds exact: %v", err)
	}
	if err := VerifySufficientFunds(proof, c, nil); err != nil {
		t.Fatalf("VerifySufficientFunds exact: %v", err)
	}
}

func TestInsufficientFundsRefused(t *testing.T) {
	balance := big.NewInt(100)
	c, r, _ := CommitValue(balance)
	if _, err := ProveSufficientFunds(balance, r, big.NewInt(200), c, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("insufficient funds = %v, want ErrOutOfRange", err)
	}
}

func TestSufficientFundsWrongThresholdFails(t *testing.T) {
	balance := big.NewInt(500)
	c, r, _ := CommitValue(balance)
	proof, _ := ProveSufficientFunds(balance, r, big.NewInt(100), c, nil)
	proof.Threshold = big.NewInt(400) // attacker raises claimed threshold
	if err := VerifySufficientFunds(proof, c, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered threshold = %v, want ErrBadProof", err)
	}
}

// Property: for random small values, commitments recompose and range proofs
// verify.
func TestRangeProperty(t *testing.T) {
	f := func(v uint16) bool {
		val := big.NewInt(int64(v))
		c, r, err := CommitValue(val)
		if err != nil {
			return false
		}
		proof, err := ProveRange(val, r, c, 16, nil)
		if err != nil {
			return false
		}
		return VerifyRange(proof, c, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
