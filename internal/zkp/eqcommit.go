package zkp

import (
	"math/big"
)

// Equality-of-committed-value proofs: prove that two Pedersen commitments
// C1 = v*G + r1*H and C2 = v*G + r2*H hide the same value v without opening
// either. The mechanism supports cross-ledger consistency when Figure 1's
// "separation of ledgers with optional hash" design publishes commitments on
// a shared ledger: two channels can verify they settled the same amount
// without revealing it.
//
// Protocol: C1 - C2 = (r1 - r2)*H, so equality reduces to knowledge of the
// discrete log of (C1 - C2) base H — a Schnorr proof.

// EqCommitProof proves two commitments open to the same value.
type EqCommitProof struct {
	Schnorr SchnorrProof
}

// ProveEqualCommitments proves c1 and c2 commit to the same value; r1 and
// r2 are their blinding factors.
func ProveEqualCommitments(r1, r2 *big.Int, c1, c2 Commitment, context []byte) (EqCommitProof, error) {
	delta := new(big.Int).Sub(r1, r2)
	delta.Mod(delta, Order())
	diff := c1.P.Sub(c2.P)
	proof, err := SchnorrProve(delta, GeneratorH(), diff, append([]byte("eqcommit/"), context...))
	if err != nil {
		return EqCommitProof{}, err
	}
	return EqCommitProof{Schnorr: proof}, nil
}

// VerifyEqualCommitments checks the equality proof.
func VerifyEqualCommitments(proof EqCommitProof, c1, c2 Commitment, context []byte) error {
	diff := c1.P.Sub(c2.P)
	return SchnorrVerify(proof.Schnorr, GeneratorH(), diff, append([]byte("eqcommit/"), context...))
}
