package zkp

import (
	"errors"
	"math/big"
	"testing"
)

func TestEqualCommitments(t *testing.T) {
	v := big.NewInt(250_000)
	c1, r1, err := CommitValue(v)
	if err != nil {
		t.Fatalf("CommitValue: %v", err)
	}
	c2, r2, err := CommitValue(v)
	if err != nil {
		t.Fatalf("CommitValue: %v", err)
	}
	if c1.Equal(c2) {
		t.Fatal("distinct blindings must give distinct commitments")
	}
	proof, err := ProveEqualCommitments(r1, r2, c1, c2, []byte("settlement-42"))
	if err != nil {
		t.Fatalf("ProveEqualCommitments: %v", err)
	}
	if err := VerifyEqualCommitments(proof, c1, c2, []byte("settlement-42")); err != nil {
		t.Fatalf("VerifyEqualCommitments: %v", err)
	}
}

func TestEqualCommitmentsRejectsDifferentValues(t *testing.T) {
	c1, r1, _ := CommitValue(big.NewInt(100))
	c2, r2, _ := CommitValue(big.NewInt(101))
	// A dishonest prover runs the protocol anyway; verification must fail
	// because C1 - C2 has a G component.
	proof, err := ProveEqualCommitments(r1, r2, c1, c2, nil)
	if err != nil {
		t.Fatalf("ProveEqualCommitments: %v", err)
	}
	if err := VerifyEqualCommitments(proof, c1, c2, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("unequal values = %v, want ErrBadProof", err)
	}
}

func TestEqualCommitmentsContextBound(t *testing.T) {
	v := big.NewInt(7)
	c1, r1, _ := CommitValue(v)
	c2, r2, _ := CommitValue(v)
	proof, _ := ProveEqualCommitments(r1, r2, c1, c2, []byte("ctx-A"))
	if err := VerifyEqualCommitments(proof, c1, c2, []byte("ctx-B")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("replayed context = %v, want ErrBadProof", err)
	}
}

func TestEqualCommitmentsWrongPair(t *testing.T) {
	v := big.NewInt(7)
	c1, r1, _ := CommitValue(v)
	c2, r2, _ := CommitValue(v)
	c3, _, _ := CommitValue(v)
	proof, _ := ProveEqualCommitments(r1, r2, c1, c2, nil)
	if err := VerifyEqualCommitments(proof, c1, c3, nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("wrong pair = %v, want ErrBadProof", err)
	}
}
