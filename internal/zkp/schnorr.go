package zkp

import (
	"math/big"
)

// SchnorrProof is a non-interactive proof of knowledge of x such that
// P = x*B for a known base B. It is the primitive behind zero-knowledge
// proof of identity (§2.1): a party proves possession of its private key
// without producing a signature linkable to its certificate.
type SchnorrProof struct {
	A Point    // commitment k*B
	S *big.Int // response k + c*x
}

// SchnorrProve proves knowledge of x with P = x*B. The context binds the
// proof to a session or message so it cannot be replayed.
func SchnorrProve(x *big.Int, base, p Point, context []byte) (SchnorrProof, error) {
	k, err := RandScalar()
	if err != nil {
		return SchnorrProof{}, err
	}
	a := base.Mul(k)
	c := Challenge([]byte("schnorr"), base.Bytes(), p.Bytes(), a.Bytes(), context)
	s := new(big.Int).Mul(c, x)
	s.Add(s, k)
	s.Mod(s, Order())
	return SchnorrProof{A: a, S: s}, nil
}

// SchnorrVerify checks the proof: s*B == A + c*P.
func SchnorrVerify(proof SchnorrProof, base, p Point, context []byte) error {
	if proof.S == nil {
		return ErrBadProof
	}
	c := Challenge([]byte("schnorr"), base.Bytes(), p.Bytes(), proof.A.Bytes(), context)
	lhs := base.Mul(proof.S)
	rhs := proof.A.Add(p.Mul(c))
	if !lhs.Equal(rhs) {
		return ErrBadProof
	}
	return nil
}

// EqDLProof proves that two public points share the same discrete log:
// P1 = x*B1 and P2 = x*B2. Anonymous credential presentations use it to tie
// a per-context pseudonym to a certified secret without revealing it.
type EqDLProof struct {
	A1, A2 Point
	S      *big.Int
}

// EqDLProve proves P1 = x*B1 and P2 = x*B2 for the same witness x.
func EqDLProve(x *big.Int, b1, p1, b2, p2 Point, context []byte) (EqDLProof, error) {
	k, err := RandScalar()
	if err != nil {
		return EqDLProof{}, err
	}
	a1 := b1.Mul(k)
	a2 := b2.Mul(k)
	c := Challenge([]byte("eqdl"),
		b1.Bytes(), p1.Bytes(), b2.Bytes(), p2.Bytes(), a1.Bytes(), a2.Bytes(), context)
	s := new(big.Int).Mul(c, x)
	s.Add(s, k)
	s.Mod(s, Order())
	return EqDLProof{A1: a1, A2: a2, S: s}, nil
}

// EqDLVerify checks s*B1 == A1 + c*P1 and s*B2 == A2 + c*P2.
func EqDLVerify(proof EqDLProof, b1, p1, b2, p2 Point, context []byte) error {
	if proof.S == nil {
		return ErrBadProof
	}
	c := Challenge([]byte("eqdl"),
		b1.Bytes(), p1.Bytes(), b2.Bytes(), p2.Bytes(), proof.A1.Bytes(), proof.A2.Bytes(), context)
	if !b1.Mul(proof.S).Equal(proof.A1.Add(p1.Mul(c))) {
		return ErrBadProof
	}
	if !b2.Mul(proof.S).Equal(proof.A2.Add(p2.Mul(c))) {
		return ErrBadProof
	}
	return nil
}

// RepresentationProof proves knowledge of (v, r) such that C = v*G + r*H,
// i.e. knowledge of an opening of a Pedersen commitment, without revealing
// it. Sigma protocol with two witnesses.
type RepresentationProof struct {
	A      Point
	Sv, Sr *big.Int
}

// ProveOpening proves knowledge of the opening (v, r) of commitment c.
func ProveOpening(v, r *big.Int, c Commitment, context []byte) (RepresentationProof, error) {
	kv, err := RandScalar()
	if err != nil {
		return RepresentationProof{}, err
	}
	kr, err := RandScalar()
	if err != nil {
		return RepresentationProof{}, err
	}
	a := MulBase(kv).Add(generatorH.Mul(kr))
	ch := Challenge([]byte("open"), c.Bytes(), a.Bytes(), context)
	sv := new(big.Int).Mul(ch, v)
	sv.Add(sv, kv)
	sv.Mod(sv, Order())
	sr := new(big.Int).Mul(ch, r)
	sr.Add(sr, kr)
	sr.Mod(sr, Order())
	return RepresentationProof{A: a, Sv: sv, Sr: sr}, nil
}

// VerifyOpening checks sv*G + sr*H == A + c*C.
func VerifyOpening(proof RepresentationProof, c Commitment, context []byte) error {
	if proof.Sv == nil || proof.Sr == nil {
		return ErrBadProof
	}
	ch := Challenge([]byte("open"), c.Bytes(), proof.A.Bytes(), context)
	lhs := MulBase(proof.Sv).Add(generatorH.Mul(proof.Sr))
	rhs := proof.A.Add(c.P.Mul(ch))
	if !lhs.Equal(rhs) {
		return ErrBadProof
	}
	return nil
}
