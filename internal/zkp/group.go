// Package zkp implements the zero-knowledge building blocks the paper's
// mechanisms rely on (§2.1 "Zero-knowledge proof of identity", §2.2
// "Zero-knowledge proofs"): Pedersen commitments, Schnorr proofs of
// knowledge, equality-of-discrete-log proofs, OR-composed bit proofs, and
// bit-decomposition range proofs providing the "boolean affirmation" the
// paper motivates with "the party has the appropriate funds".
//
// All protocols are sigma protocols made non-interactive with the
// Fiat–Shamir transform over SHA-256, on the NIST P-256 group.
package zkp

import (
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"dltprivacy/internal/dcrypto"
)

// Errors returned by proof verification.
var (
	// ErrBadProof is returned when any proof fails verification.
	ErrBadProof = errors.New("zkp: proof verification failed")
	// ErrOutOfRange is returned when a prover is asked to prove a
	// statement that is false (for example a negative balance); provers
	// refuse rather than emit an unsound proof.
	ErrOutOfRange = errors.New("zkp: witness does not satisfy the statement")
)

// Point is an element of the P-256 group. The identity is (0, 0), matching
// crypto/elliptic's affine convention.
type Point struct {
	X, Y *big.Int
}

func curve() elliptic.Curve { return elliptic.P256() }

// Order returns the group order N.
func Order() *big.Int { return new(big.Int).Set(curve().Params().N) }

// Generator returns the standard base point G.
func Generator() Point {
	p := curve().Params()
	return Point{X: new(big.Int).Set(p.Gx), Y: new(big.Int).Set(p.Gy)}
}

// generatorH is the second Pedersen generator, derived by try-and-increment
// hashing so that nobody knows its discrete log with respect to G.
var generatorH = deriveH()

// GeneratorH returns the second Pedersen generator H.
func GeneratorH() Point { return generatorH }

func deriveH() Point {
	c := curve()
	p := c.Params().P
	for ctr := 0; ctr < 1024; ctr++ {
		seed := dcrypto.HashConcat([]byte("dltprivacy/pedersen/H"), []byte{byte(ctr)})
		x := new(big.Int).SetBytes(seed[:])
		x.Mod(x, p)
		// y^2 = x^3 - 3x + b
		y2 := new(big.Int).Mul(x, x)
		y2.Mul(y2, x)
		threeX := new(big.Int).Lsh(x, 1)
		threeX.Add(threeX, x)
		y2.Sub(y2, threeX)
		y2.Add(y2, c.Params().B)
		y2.Mod(y2, p)
		y := new(big.Int).ModSqrt(y2, p)
		if y == nil {
			continue
		}
		if c.IsOnCurve(x, y) {
			return Point{X: x, Y: y}
		}
	}
	// Unreachable in practice: roughly half of all x coordinates are on
	// the curve.
	panic("zkp: could not derive generator H")
}

// IsIdentity reports whether the point is the group identity.
func (p Point) IsIdentity() bool {
	return p.X == nil || (p.X.Sign() == 0 && p.Y.Sign() == 0)
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	if p.IsIdentity() {
		return q.clone()
	}
	if q.IsIdentity() {
		return p.clone()
	}
	x, y := curve().Add(p.X, p.Y, q.X, q.Y)
	return Point{X: x, Y: y}
}

// Neg returns -p.
func (p Point) Neg() Point {
	if p.IsIdentity() {
		return Point{X: new(big.Int), Y: new(big.Int)}
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Sub(curve().Params().P, p.Y)}
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return p.Add(q.Neg()) }

// Mul returns k*p for a scalar k (reduced mod N).
func (p Point) Mul(k *big.Int) Point {
	if p.IsIdentity() {
		return Point{X: new(big.Int), Y: new(big.Int)}
	}
	kk := new(big.Int).Mod(k, Order())
	if kk.Sign() == 0 {
		return Point{X: new(big.Int), Y: new(big.Int)}
	}
	x, y := curve().ScalarMult(p.X, p.Y, kk.Bytes())
	return Point{X: x, Y: y}
}

// MulBase returns k*G.
func MulBase(k *big.Int) Point {
	kk := new(big.Int).Mod(k, Order())
	if kk.Sign() == 0 {
		return Point{X: new(big.Int), Y: new(big.Int)}
	}
	x, y := curve().ScalarBaseMult(kk.Bytes())
	return Point{X: x, Y: y}
}

// Equal reports whether two points are the same element.
func (p Point) Equal(q Point) bool {
	if p.IsIdentity() || q.IsIdentity() {
		return p.IsIdentity() == q.IsIdentity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Valid reports whether the point is a well-formed group element: the
// identity, or an on-curve point with both coordinates in [0, P). Points
// decoded from untrusted input (JSON, wire frames) MUST be checked with
// Valid before any group operation — crypto/elliptic panics on arithmetic
// over off-curve points, and Bytes panics on coordinates wider than 256
// bits, so an unchecked hostile point is a remote crash, not a failed
// verification.
func (p Point) Valid() bool {
	if p.X == nil && p.Y == nil {
		return true // canonical identity
	}
	if p.X == nil || p.Y == nil {
		return false // half-decoded: IsIdentity would dereference nil
	}
	if p.X.Sign() == 0 && p.Y.Sign() == 0 {
		return true // all-zero identity encoding
	}
	fieldP := curve().Params().P
	if p.X.Sign() < 0 || p.Y.Sign() < 0 || p.X.Cmp(fieldP) >= 0 || p.Y.Cmp(fieldP) >= 0 {
		return false
	}
	return curve().IsOnCurve(p.X, p.Y)
}

func (p Point) clone() Point {
	if p.X == nil {
		return Point{X: new(big.Int), Y: new(big.Int)}
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y)}
}

// Bytes returns a canonical encoding of the point for transcripts.
func (p Point) Bytes() []byte {
	out := make([]byte, 64)
	if p.IsIdentity() {
		return out
	}
	p.X.FillBytes(out[:32])
	p.Y.FillBytes(out[32:])
	return out
}

// ParsePoint decodes a 64-byte encoding produced by Bytes. The all-zero
// encoding decodes to the identity.
func ParsePoint(b []byte) (Point, error) {
	if len(b) != 64 {
		return Point{}, fmt.Errorf("zkp: point must be 64 bytes, got %d", len(b))
	}
	x := new(big.Int).SetBytes(b[:32])
	y := new(big.Int).SetBytes(b[32:])
	if x.Sign() == 0 && y.Sign() == 0 {
		return Point{X: x, Y: y}, nil
	}
	if !curve().IsOnCurve(x, y) {
		return Point{}, errors.New("zkp: point not on curve")
	}
	return Point{X: x, Y: y}, nil
}

// FromPublicKey converts a dcrypto public key into a group point, so that
// identity keys can be used as Schnorr statements.
func FromPublicKey(pk dcrypto.PublicKey) Point {
	return Point{X: new(big.Int).Set(pk.X), Y: new(big.Int).Set(pk.Y)}
}

// RandScalar samples a uniform scalar in [1, N-1].
func RandScalar() (*big.Int, error) {
	for {
		k, err := rand.Int(rand.Reader, Order())
		if err != nil {
			return nil, fmt.Errorf("sample scalar: %w", err)
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// Challenge derives a Fiat–Shamir challenge scalar from transcript parts.
// The small modular bias of reducing a 256-bit hash mod N is acceptable for
// this reproduction (N is within 2^-32 of 2^256).
func Challenge(parts ...[]byte) *big.Int {
	sum := dcrypto.HashConcat(parts...)
	c := new(big.Int).SetBytes(sum[:])
	return c.Mod(c, Order())
}
