package contract

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/tee"
)

// transferContract moves integer balances between accounts.
func transferContract(version string) Contract {
	return Contract{
		Name:    "transfer",
		Version: version,
		Funcs: map[string]Func{
			"move": func(ctx *Context, args [][]byte) ([]byte, error) {
				if len(args) != 3 {
					return nil, errors.New("move: want from, to, amount")
				}
				from, to := string(args[0]), string(args[1])
				amount, err := strconv.Atoi(string(args[2]))
				if err != nil {
					return nil, err
				}
				fromBal, err := readBalance(ctx, from)
				if err != nil {
					return nil, err
				}
				toBal, err := readBalance(ctx, to)
				if err != nil {
					return nil, err
				}
				if fromBal < amount {
					return nil, errors.New("insufficient funds")
				}
				ctx.Put(from, []byte(strconv.Itoa(fromBal-amount)))
				ctx.Put(to, []byte(strconv.Itoa(toBal+amount)))
				return []byte("ok"), nil
			},
		},
	}
}

func readBalance(ctx *Context, account string) (int, error) {
	raw, err := ctx.Get(account)
	if errors.Is(err, ledger.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(raw))
}

type mapView map[string][]byte

func (v mapView) Get(key string) ([]byte, error) {
	b, ok := v[key]
	if !ok {
		return nil, ledger.ErrNotFound
	}
	return b, nil
}

func TestInvoke(t *testing.T) {
	view := mapView{"alice": []byte("100")}
	ctx := NewContext("trade", "alice", view)
	out, writes, err := transferContract("1").Invoke(ctx, "move", [][]byte{[]byte("alice"), []byte("bob"), []byte("40")})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(out) != "ok" || len(writes) != 2 {
		t.Fatalf("out=%q writes=%d", out, len(writes))
	}
	if string(writes[0].Value) != "60" || string(writes[1].Value) != "40" {
		t.Fatalf("writes = %+v", writes)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	ctx := NewContext("trade", "alice", mapView{})
	if _, _, err := transferContract("1").Invoke(ctx, "nope", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("unknown fn = %v, want ErrUnknownFunction", err)
	}
}

func TestInvokeBusinessError(t *testing.T) {
	ctx := NewContext("trade", "alice", mapView{"alice": []byte("10")})
	_, _, err := transferContract("1").Invoke(ctx, "move", [][]byte{[]byte("alice"), []byte("bob"), []byte("40")})
	if err == nil {
		t.Fatal("insufficient funds must error")
	}
}

func TestRegistrySelectiveInstallation(t *testing.T) {
	log := audit.NewLog()
	r := NewRegistry(log)
	if err := r.Install("peer-bankA", transferContract("1")); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if !r.Installed("peer-bankA", "transfer") || r.Installed("peer-other", "transfer") {
		t.Fatal("installation boundary wrong")
	}
	// Executing on a node without the contract fails — and that node never
	// observed the logic.
	_, _, err := r.Invoke("peer-other", "transfer", "move", nil, "trade", "x", mapView{})
	if !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("uninstalled Invoke = %v, want ErrNotInstalled", err)
	}
	if !log.Saw("peer-bankA", audit.ClassBusinessLogic, "transfer") {
		t.Fatal("installed node must have observed the logic")
	}
	if log.SawAny("peer-other", audit.ClassBusinessLogic) {
		t.Fatal("uninvolved node must not observe the logic")
	}
}

func TestRegistryInvoke(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.Install("peer1", transferContract("1")); err != nil {
		t.Fatalf("Install: %v", err)
	}
	out, writes, err := r.Invoke("peer1", "transfer", "move",
		[][]byte{[]byte("a"), []byte("b"), []byte("5")}, "trade", "a", mapView{"a": []byte("10")})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(out) != "ok" || len(writes) != 2 {
		t.Fatalf("unexpected result %q %v", out, writes)
	}
}

func TestRegistryInstallValidation(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.Install("", transferContract("1")); err == nil {
		t.Fatal("empty node must be rejected")
	}
	if err := r.Install("n", Contract{}); err == nil {
		t.Fatal("unnamed contract must be rejected")
	}
}

func TestVersionConsistency(t *testing.T) {
	r := NewRegistry(nil)
	_ = r.Install("p1", transferContract("1"))
	_ = r.Install("p2", transferContract("1"))
	if err := r.CheckVersionConsistency("transfer"); err != nil {
		t.Fatalf("consistent versions = %v", err)
	}
	_ = r.Install("p3", transferContract("2"))
	if err := r.CheckVersionConsistency("transfer"); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("divergent versions = %v, want ErrVersionMismatch", err)
	}
	if got := len(r.NodesWith("transfer")); got != 3 {
		t.Fatalf("NodesWith = %d, want 3", got)
	}
}

func TestPolicyEvaluate(t *testing.T) {
	k1, _ := dcrypto.GenerateKey()
	k2, _ := dcrypto.GenerateKey()
	tx := ledger.Transaction{
		Channel: "trade", Creator: "BankA",
		Timestamp: time.Unix(1700000000, 0).UTC(),
	}
	if err := tx.Endorse("BankA", k1); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	policy := Policy{Members: []string{"BankA", "SellerCo"}, Threshold: 2}
	if err := policy.Evaluate(tx); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("1 of 2 endorsements = %v, want ErrPolicyUnsatisfied", err)
	}
	if err := tx.Endorse("SellerCo", k2); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	if err := policy.Evaluate(tx); err != nil {
		t.Fatalf("2 of 2 endorsements = %v", err)
	}
	// Endorsements from non-members do not count.
	k3, _ := dcrypto.GenerateKey()
	tx2 := ledger.Transaction{Channel: "trade", Creator: "X", Timestamp: time.Unix(1, 0)}
	_ = tx2.Endorse("Mallory", k3)
	if err := policy.Evaluate(tx2); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("non-member endorsement = %v, want ErrPolicyUnsatisfied", err)
	}
	if err := (Policy{Members: []string{"A"}}).Evaluate(tx); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("zero threshold = %v, want ErrPolicyUnsatisfied", err)
	}
}

func TestOffChainEngine(t *testing.T) {
	log := audit.NewLog()
	e := NewOffChainEngine(log)
	if err := e.Deploy("BankA", transferContract("1")); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	out, writes, err := e.Execute("BankA", "transfer", "move",
		[][]byte{[]byte("a"), []byte("b"), []byte("3")}, "trade", mapView{"a": []byte("5")})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if string(out) != "ok" || len(writes) != 2 {
		t.Fatalf("unexpected result %q %v", out, writes)
	}
	// Logic visible only to deploying org.
	if !log.Saw("BankA", audit.ClassBusinessLogic, "transfer") {
		t.Fatal("deploying org must observe the logic")
	}
	if log.SawAny("SellerCo", audit.ClassBusinessLogic) {
		t.Fatal("other orgs must not observe the logic")
	}
	// Execution in an org without the logic fails.
	if _, _, err := e.Execute("SellerCo", "transfer", "move", nil, "trade", mapView{}); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("missing logic = %v, want ErrNotInstalled", err)
	}
}

func TestOffChainEngineDrift(t *testing.T) {
	e := NewOffChainEngine(nil)
	_ = e.Deploy("BankA", transferContract("1"))
	_ = e.Deploy("SellerCo", transferContract("1"))
	if err := e.DetectDrift("transfer"); err != nil {
		t.Fatalf("no drift = %v", err)
	}
	_ = e.Deploy("BuyerInc", transferContract("2"))
	if err := e.DetectDrift("transfer"); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("drift = %v, want ErrVersionMismatch", err)
	}
	if got := len(e.Orgs("transfer")); got != 3 {
		t.Fatalf("Orgs = %d, want 3", got)
	}
}

func TestOffChainEngineDeployValidation(t *testing.T) {
	e := NewOffChainEngine(nil)
	if err := e.Deploy("", transferContract("1")); err == nil {
		t.Fatal("empty org must be rejected")
	}
}

func TestLedgerShim(t *testing.T) {
	shim := LedgerShim()
	ctx := NewContext("trade", "org", mapView{"k": []byte("v")})
	out, _, err := shim.Invoke(ctx, "read", [][]byte{[]byte("k")})
	if err != nil || string(out) != "v" {
		t.Fatalf("shim read = %q, %v", out, err)
	}
	ctx2 := NewContext("trade", "org", mapView{})
	_, writes, err := shim.Invoke(ctx2, "write", [][]byte{[]byte("k"), []byte("v2")})
	if err != nil || len(writes) != 1 {
		t.Fatalf("shim write = %v, %v", writes, err)
	}
	if _, _, err := shim.Invoke(NewContext("t", "o", nil), "read", nil); err == nil {
		t.Fatal("shim read arity must be enforced")
	}
}

func TestContextDelAndWritesCopy(t *testing.T) {
	ctx := NewContext("t", "o", mapView{})
	ctx.Put("a", []byte("1"))
	ctx.Del("b")
	w := ctx.Writes()
	if len(w) != 2 || !w[1].Delete {
		t.Fatalf("Writes = %+v", w)
	}
	w[0].Key = "mutated"
	if ctx.Writes()[0].Key != "a" {
		t.Fatal("Writes must return a copy")
	}
}

func TestEnclaveExecution(t *testing.T) {
	m, err := tee.NewManufacturer()
	if err != nil {
		t.Fatalf("NewManufacturer: %v", err)
	}
	enclave, err := m.Provision()
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	measurement, err := WrapInEnclave(enclave, transferContract("1"))
	if err != nil {
		t.Fatalf("WrapInEnclave: %v", err)
	}
	state := map[string][]byte{"a": []byte("50")}
	out, writes, att, err := InvokeInEnclave(enclave, "move",
		[][]byte{[]byte("a"), []byte("b"), []byte("20")}, state)
	if err != nil {
		t.Fatalf("InvokeInEnclave: %v", err)
	}
	if string(out) != "ok" || len(writes) != 2 {
		t.Fatalf("enclave result %q %v", out, writes)
	}
	if err := tee.VerifyAttestation(att, m.PublicKey(), measurement); err != nil {
		t.Fatalf("VerifyAttestation: %v", err)
	}
}

func TestEnclaveExecutionBusinessError(t *testing.T) {
	m, _ := tee.NewManufacturer()
	enclave, _ := m.Provision()
	if _, err := WrapInEnclave(enclave, transferContract("1")); err != nil {
		t.Fatalf("WrapInEnclave: %v", err)
	}
	_, _, _, err := InvokeInEnclave(enclave, "move",
		[][]byte{[]byte("a"), []byte("b"), []byte("20")}, map[string][]byte{"a": []byte("5")})
	if err == nil {
		t.Fatal("enclave must propagate business errors")
	}
}
