package contract

import (
	"fmt"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
)

// OffChainEngine models the paper's off-chain execution engine (§2.3): the
// smart contract on the ledger "only contains functions to read from and
// write to the ledger", while business logic runs in per-organization
// engines outside the platform. Logic never touches uninvolved nodes, any
// implementation language is possible (here: arbitrary Go), but the platform
// no longer guarantees all engines run the same version — the engine exposes
// that hazard instead of hiding it.
type OffChainEngine struct {
	log *audit.Log

	mu     sync.Mutex
	logics map[string]map[string]Contract // org -> name -> logic
}

// NewOffChainEngine creates an engine registry.
func NewOffChainEngine(log *audit.Log) *OffChainEngine {
	return &OffChainEngine{log: log, logics: make(map[string]map[string]Contract)}
}

// Deploy installs business logic into one organization's engine. Version
// control is now the organizations' problem: Deploy happily accepts
// divergent versions, and DetectDrift reports them.
func (e *OffChainEngine) Deploy(org string, logic Contract) error {
	if org == "" || logic.Name == "" {
		return fmt.Errorf("contract: deploy needs an org and a logic name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	byName, ok := e.logics[org]
	if !ok {
		byName = make(map[string]Contract)
		e.logics[org] = byName
	}
	byName[logic.Name] = logic
	e.log.Record(org, audit.ClassBusinessLogic, logic.Name)
	return nil
}

// Execute runs logic inside the named org's engine against a state view and
// returns the write set the on-ledger shim would submit.
func (e *OffChainEngine) Execute(org, name, fn string, args [][]byte, channel string, view StateView) ([]byte, []ledger.Write, error) {
	e.mu.Lock()
	logic, ok := e.logics[org][name]
	e.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%s in engine of %s: %w", name, org, ErrNotInstalled)
	}
	ctx := NewContext(channel, org, view)
	return logic.Invoke(ctx, fn, args)
}

// DetectDrift returns ErrVersionMismatch when organizations run different
// versions of the same logic, the §3.3 caveat: "version control will need to
// be managed outside the DLT layer".
func (e *OffChainEngine) DetectDrift(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	versions := make(map[string]bool)
	for _, byName := range e.logics {
		if c, ok := byName[name]; ok {
			versions[c.Version] = true
		}
	}
	if len(versions) > 1 {
		return fmt.Errorf("%s: %d divergent versions: %w", name, len(versions), ErrVersionMismatch)
	}
	return nil
}

// Orgs returns the organizations with the named logic deployed.
func (e *OffChainEngine) Orgs(name string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for org, byName := range e.logics {
		if _, ok := byName[name]; ok {
			out = append(out, org)
		}
	}
	return out
}

// LedgerShim is the minimal on-ledger contract used with an off-chain
// engine: it exposes only read and write entry points, so the ledger layer
// carries no business semantics.
func LedgerShim() Contract {
	return Contract{
		Name:    "shim",
		Version: "1",
		Funcs: map[string]Func{
			"read": func(ctx *Context, args [][]byte) ([]byte, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("read: want 1 arg, got %d", len(args))
				}
				return ctx.Get(string(args[0]))
			},
			"write": func(ctx *Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, fmt.Errorf("write: want 2 args, got %d", len(args))
				}
				ctx.Put(string(args[0]), args[1])
				return nil, nil
			},
		},
	}
}
