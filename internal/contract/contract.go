// Package contract implements the smart-contract substrate and the paper's
// business-logic confidentiality mechanisms (§2.3): selective installation
// (contracts distributed only to nodes needed for endorsement), versioned
// in-platform execution, an off-chain execution engine in which the on-ledger
// contract only reads and writes state while logic runs outside the platform,
// and execution inside a trusted execution environment.
package contract

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/tee"
)

// Errors returned by the engine.
var (
	// ErrNotInstalled is returned when a node invokes a contract it does
	// not have — the confidentiality boundary of §2.3.
	ErrNotInstalled = errors.New("contract: not installed on this node")
	// ErrUnknownFunction is returned for undefined contract functions.
	ErrUnknownFunction = errors.New("contract: unknown function")
	// ErrVersionMismatch is returned when nodes disagree on the contract
	// version — the off-chain engine hazard the paper calls out (§3.3).
	ErrVersionMismatch = errors.New("contract: version mismatch across nodes")
	// ErrPolicyUnsatisfied is returned when a transaction lacks the
	// endorsements its policy demands.
	ErrPolicyUnsatisfied = errors.New("contract: endorsement policy unsatisfied")
)

// StateView is read access to world state during execution.
type StateView interface {
	Get(key string) ([]byte, error)
}

// Context is the execution context handed to contract functions.
type Context struct {
	Channel string
	Caller  string
	view    StateView
	writes  []ledger.Write
}

// NewContext creates an execution context over a state view.
func NewContext(channel, caller string, view StateView) *Context {
	return &Context{Channel: channel, Caller: caller, view: view}
}

// Get reads a key from world state.
func (c *Context) Get(key string) ([]byte, error) {
	if c.view == nil {
		return nil, fmt.Errorf("contract: no state view: %w", ledger.ErrNotFound)
	}
	return c.view.Get(key)
}

// Put records a state write.
func (c *Context) Put(key string, value []byte) {
	c.writes = append(c.writes, ledger.Write{Key: key, Value: append([]byte(nil), value...)})
}

// Del records a state deletion.
func (c *Context) Del(key string) {
	c.writes = append(c.writes, ledger.Write{Key: key, Delete: true})
}

// Writes returns the accumulated write set.
func (c *Context) Writes() []ledger.Write {
	out := make([]ledger.Write, len(c.writes))
	copy(out, c.writes)
	return out
}

// Func is one contract entry point.
type Func func(ctx *Context, args [][]byte) ([]byte, error)

// Contract is deterministic, versioned business logic.
type Contract struct {
	Name    string
	Version string
	Funcs   map[string]Func
}

// Invoke executes a function, returning output and the write set.
func (c Contract) Invoke(ctx *Context, fn string, args [][]byte) ([]byte, []ledger.Write, error) {
	f, ok := c.Funcs[fn]
	if !ok {
		return nil, nil, fmt.Errorf("%s.%s: %w", c.Name, fn, ErrUnknownFunction)
	}
	out, err := f(ctx, args)
	if err != nil {
		return nil, nil, fmt.Errorf("%s.%s: %w", c.Name, fn, err)
	}
	return out, ctx.Writes(), nil
}

// Registry tracks which contracts are installed on which nodes. Installation
// is the distribution event that reveals business logic: it is recorded in
// the audit log against the installing node.
type Registry struct {
	log *audit.Log

	mu        sync.Mutex
	installed map[string]map[string]Contract // node -> name -> contract
}

// NewRegistry creates a registry with optional leakage accounting.
func NewRegistry(log *audit.Log) *Registry {
	return &Registry{log: log, installed: make(map[string]map[string]Contract)}
}

// Install places a contract on a node. Only installed nodes can execute or
// inspect the logic (§2.3, "Installation of smart contracts on involved
// nodes only").
func (r *Registry) Install(node string, c Contract) error {
	if node == "" || c.Name == "" {
		return errors.New("contract: install needs a node and a contract name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	byName, ok := r.installed[node]
	if !ok {
		byName = make(map[string]Contract)
		r.installed[node] = byName
	}
	byName[c.Name] = c
	r.log.Record(node, audit.ClassBusinessLogic, c.Name)
	return nil
}

// Installed reports whether node holds the contract.
func (r *Registry) Installed(node, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.installed[node][name]
	return ok
}

// NodesWith returns the nodes holding the named contract.
func (r *Registry) NodesWith(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for node, byName := range r.installed {
		if _, ok := byName[name]; ok {
			out = append(out, node)
		}
	}
	return out
}

// Invoke executes a contract on a node against a state view. Nodes without
// the contract cannot execute (and never saw) the logic.
func (r *Registry) Invoke(node, name, fn string, args [][]byte, channel, caller string, view StateView) ([]byte, []ledger.Write, error) {
	r.mu.Lock()
	c, ok := r.installed[node][name]
	r.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%s on %s: %w", name, node, ErrNotInstalled)
	}
	ctx := NewContext(channel, caller, view)
	return c.Invoke(ctx, fn, args)
}

// Versions returns the distinct versions of a contract across nodes.
func (r *Registry) Versions(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, byName := range r.installed {
		if c, ok := byName[name]; ok && !seen[c.Version] {
			seen[c.Version] = true
			out = append(out, c.Version)
		}
	}
	return out
}

// CheckVersionConsistency returns ErrVersionMismatch when nodes hold
// different versions — the in-built version control DLT platforms provide
// and off-chain engines lose (§3.3).
func (r *Registry) CheckVersionConsistency(name string) error {
	if len(r.Versions(name)) > 1 {
		return fmt.Errorf("%s: %w", name, ErrVersionMismatch)
	}
	return nil
}

// Policy is an endorsement policy: at least Threshold of Members must have
// endorsed a transaction.
type Policy struct {
	Members   []string
	Threshold int
}

// Evaluate checks a transaction against the policy. Signature validity is
// the ledger's job; the policy checks the endorser set.
func (p Policy) Evaluate(tx ledger.Transaction) error {
	if p.Threshold <= 0 {
		return fmt.Errorf("%w: non-positive threshold", ErrPolicyUnsatisfied)
	}
	count := 0
	for _, m := range p.Members {
		if tx.EndorsedBy(m) {
			count++
		}
	}
	if count < p.Threshold {
		return fmt.Errorf("%w: %d of %d required endorsements", ErrPolicyUnsatisfied, count, p.Threshold)
	}
	return nil
}

// teeCall is the serialized request/response format for enclave execution.
type teeCall struct {
	Fn    string            `json:"fn"`
	Args  [][]byte          `json:"args"`
	State map[string][]byte `json:"state"`
}

type teeResult struct {
	Output []byte         `json:"output"`
	Writes []ledger.Write `json:"writes"`
}

// WrapInEnclave loads a contract into a TEE so it can execute where the
// hosting administrator sees neither logic nor data (§2.3, "Trusted
// execution environments"). The returned measurement lets verifiers pin the
// program in attestations. State is passed in as a snapshot because the
// enclave boundary does not allow callbacks to the host.
func WrapInEnclave(enclave *tee.Enclave, c Contract) ([32]byte, error) {
	prog := tee.Program{
		Name:    "contract/" + c.Name,
		Version: c.Version,
		Run: func(input, _ []byte) ([]byte, []byte, error) {
			var call teeCall
			if err := json.Unmarshal(input, &call); err != nil {
				return nil, nil, fmt.Errorf("decode enclave call: %w", err)
			}
			ctx := NewContext("tee", "enclave", snapshotView(call.State))
			out, writes, err := c.Invoke(ctx, call.Fn, call.Args)
			if err != nil {
				return nil, nil, err
			}
			res, err := json.Marshal(teeResult{Output: out, Writes: writes})
			if err != nil {
				return nil, nil, fmt.Errorf("encode enclave result: %w", err)
			}
			return res, nil, nil
		},
	}
	if err := enclave.Load(prog); err != nil {
		return [32]byte{}, fmt.Errorf("load contract into enclave: %w", err)
	}
	return prog.Measurement(), nil
}

// snapshotView adapts a state snapshot map to StateView.
type snapshotView map[string][]byte

// Get implements StateView.
func (v snapshotView) Get(key string) ([]byte, error) {
	b, ok := v[key]
	if !ok {
		return nil, fmt.Errorf("key %q: %w", key, ledger.ErrNotFound)
	}
	return b, nil
}

// InvokeInEnclave executes a wrapped contract inside the enclave and returns
// output, write set, and the attestation.
func InvokeInEnclave(enclave *tee.Enclave, fn string, args [][]byte, state map[string][]byte) ([]byte, []ledger.Write, tee.Attestation, error) {
	input, err := json.Marshal(teeCall{Fn: fn, Args: args, State: state})
	if err != nil {
		return nil, nil, tee.Attestation{}, fmt.Errorf("encode enclave call: %w", err)
	}
	raw, att, err := enclave.Execute(input)
	if err != nil {
		return nil, nil, tee.Attestation{}, err
	}
	var res teeResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, nil, tee.Attestation{}, fmt.Errorf("decode enclave result: %w", err)
	}
	return res.Output, res.Writes, att, nil
}
