package middleware

import (
	"errors"
	"testing"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
)

// bindingFixture is a manager plus an enrolled principal ready to open
// sessions.
type bindingFixture struct {
	mgr  *SessionManager
	cert pki.Certificate
	key  *dcrypto.PrivateKey
}

func newBindingFixture(t *testing.T) *bindingFixture {
	t.Helper()
	ca, err := pki.NewCA("bind-ca")
	if err != nil {
		t.Fatal(err)
	}
	key, err := dcrypto.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Enroll("alice", key.Public())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewSessionManager(ca.PublicKey(), time.Hour, time.Hour, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	return &bindingFixture{mgr: mgr, cert: cert, key: key}
}

func (f *bindingFixture) open(t *testing.T, transportID string) SessionGrant {
	t.Helper()
	hello, err := NewSessionHello("alice", f.cert, f.key)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := f.mgr.OpenBound(hello, transportID)
	if err != nil {
		t.Fatal(err)
	}
	return grant
}

// TestSessionTransportBinding pins the resolve-side contract: a bound
// token resolves only over its own transport — any other identity,
// including the empty in-process one, gets ErrSessionBound — while
// unbound tokens resolve from anywhere.
func TestSessionTransportBinding(t *testing.T) {
	f := newBindingFixture(t)
	bound := f.open(t, "tcp:1:peer")
	if _, _, _, err := f.mgr.resolve(bound.Token, "tcp:1:peer"); err != nil {
		t.Fatalf("resolve on home transport: %v", err)
	}
	if _, _, _, err := f.mgr.resolve(bound.Token, "tcp:2:other"); !errors.Is(err, ErrSessionBound) {
		t.Fatalf("cross-transport resolve: got %v, want ErrSessionBound", err)
	}
	if _, _, _, err := f.mgr.resolve(bound.Token, ""); !errors.Is(err, ErrSessionBound) {
		t.Fatalf("transport-less resolve of bound token: got %v, want ErrSessionBound", err)
	}
	// A binding rejection is not a kill: the home transport still works.
	if _, _, _, err := f.mgr.resolve(bound.Token, "tcp:1:peer"); err != nil {
		t.Fatalf("home transport after replay attempt: %v", err)
	}

	unbound := f.open(t, "")
	for _, id := range []string{"", "tcp:3:any"} {
		if _, _, _, err := f.mgr.resolve(unbound.Token, id); err != nil {
			t.Fatalf("unbound resolve over %q: %v", id, err)
		}
	}
}

// TestEvictTransport pins the teardown contract: a dead connection's
// sessions all die with it, other transports' sessions survive, and the
// eviction shows in stats.
func TestEvictTransport(t *testing.T) {
	f := newBindingFixture(t)
	a1 := f.open(t, "tcp:1:peer")
	a2 := f.open(t, "tcp:1:peer")
	b := f.open(t, "tcp:2:other")

	if n := f.mgr.EvictTransport("tcp:9:unknown"); n != 0 {
		t.Fatalf("evicting unknown transport reaped %d sessions", n)
	}
	if n := f.mgr.EvictTransport("tcp:1:peer"); n != 2 {
		t.Fatalf("EvictTransport = %d, want 2", n)
	}
	for _, token := range []string{a1.Token, a2.Token} {
		if _, _, _, err := f.mgr.resolve(token, "tcp:1:peer"); err == nil {
			t.Fatal("evicted session still resolves")
		}
	}
	if _, _, _, err := f.mgr.resolve(b.Token, "tcp:2:other"); err != nil {
		t.Fatalf("unrelated transport's session evicted too: %v", err)
	}
	// Idempotent: the transport's index entry is gone.
	if n := f.mgr.EvictTransport("tcp:1:peer"); n != 0 {
		t.Fatalf("second eviction reaped %d sessions", n)
	}
	st := f.mgr.Stats()
	if st.Evicted != 2 || st.Live != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// Closing the surviving bound session prunes the transport index via
	// the same path; nothing left to evict afterwards.
	f.mgr.Close(b.Token)
	if n := f.mgr.EvictTransport("tcp:2:other"); n != 0 {
		t.Fatalf("closed session still indexed by transport: %d", n)
	}
}
