package middleware

import (
	"context"
	"encoding/json"
	"math/big"
	"testing"
	"time"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/tee"
	"dltprivacy/internal/transport"
)

// FuzzWireRequest throws arbitrary bytes at every transport topic the
// gateway serves — gateway.submit, session.open, session.close,
// revocation.notify — so malformed framing, forged session tokens, and
// corrupted certificates can reject requests but never panic the process.
// The gateway runs the full revocation-aware pipeline, so the fuzz input
// crosses the wire decode, the session/token path, authn, and envelope
// sealing.
func FuzzWireRequest(f *testing.F) {
	ca, err := pki.NewCA("fuzz-ca")
	if err != nil {
		f.Fatal(err)
	}
	key, err := dcrypto.GenerateKey()
	if err != nil {
		f.Fatal(err)
	}
	cert, err := ca.Enroll("alice", key.Public())
	if err != nil {
		f.Fatal(err)
	}
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "revokecheck": "resolve", "reqauth": "mac"}},
			{Name: StageAuthn},
			{Name: StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
			{Name: StageAudit},
		},
		// Binary-codec gateway: the fuzzer exercises both framings (JSON
		// decode and the binary v2 frame reader) plus the MAC verify path.
		// Tracing is on so wire-carried trace IDs cross the sampler and
		// span recording too.
		Codec: CodecBinary,
		Trace: "8",
	}
	env := Env{
		CAKey:     ca.PublicKey(),
		Directory: StaticDirectory{"deals": {"alice": key.Public()}},
		Log:       audit.NewLog(),
		Revoker:   ca,
	}
	gw, err := NewGateway("fuzz-gw", cfg, env, ordering.New("op", ordering.VisibilityEnvelope))
	if err != nil {
		f.Fatal(err)
	}
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		f.Fatal(err)
	}
	grant, err := gw.Sessions().Open(mustHello(f, "alice", cert, key))
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: a well-formed session submission, near-miss mutations of it,
	// a valid hello, and framing junk.
	good := &Request{Channel: "deals", Principal: "alice", Payload: []byte("trade"), SessionToken: grant.Token}
	if err := SignRequest(good, key); err != nil {
		f.Fatal(err)
	}
	goodWire, err := json.Marshal(wireRequest{
		Channel: good.Channel, Principal: good.Principal, Payload: good.Payload,
		Sig: good.Sig, Session: good.SessionToken,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodWire)
	// The same submission in the binary v2 framing, with a MAC instead of
	// a signature, plus mutations of the frame structure.
	macGood := &Request{Channel: "deals", Principal: "alice", Payload: []byte("trade"), SessionToken: grant.Token}
	MACRequest(macGood, grant.MacKey)
	goodBinary, err := EncodeWireRequest(macGood, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodBinary)
	// The same binary submission carrying a trace ID, so the fuzzer mutates
	// the trace uvarint between cert and meta, plus traced JSON frames.
	traced := &Request{Channel: "deals", Principal: "alice", Payload: []byte("trade"),
		SessionToken: grant.Token, TraceID: 0xfeedface}
	MACRequest(traced, grant.MacKey)
	tracedBinary, err := EncodeWireRequest(traced, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tracedBinary)
	f.Add(tracedBinary[:len(tracedBinary)-1])
	f.Add([]byte(`{"channel":"deals","principal":"alice","trace":12345}`))
	tracedHello := mustHello(f, "alice", cert, key)
	tracedHello.TraceID = 1
	tracedHelloSeed, err := json.Marshal(tracedHello)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tracedHelloSeed)
	f.Add(goodBinary[:len(goodBinary)/2])
	f.Add(append(append([]byte{}, goodBinary...), 0xff))
	f.Add([]byte{binaryMagic})
	f.Add([]byte{binaryMagic, binaryKindRequest})
	f.Add([]byte{binaryMagic, binaryKindRequest, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{binaryMagic, binaryKindEnvelope, 0x01, 's'})
	f.Add([]byte(`{"channel":"deals","principal":"alice","session":"deadbeef"}`))
	f.Add([]byte(`{"channel":"deals","principal":"alice","cert":{"serial":1},"sig":{}}`))
	f.Add([]byte(`{"session":"` + grant.Token + `"}`))
	helloSeed, err := json.Marshal(mustHello(f, "alice", cert, key))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(helloSeed)
	// Regression seed: a zero-valued cert inside a fresh validity window
	// used to reach ecdsa.Verify with nil signature components and panic
	// (fixed in dcrypto.PublicKey.Verify).
	f.Add([]byte(`{"issuedAt":"` + time.Now().UTC().Format(time.RFC3339) + `","cert":{"notAfter":"2100-01-01T00:00:00Z"}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\x01\x02session\xff"))

	// A second gateway runs the declarative privacy chain — anoncred in
	// place of certificate authn, a range-proof gate, TEE attestation, and
	// the terminal Paillier aggregator — so fuzzed meta blobs cross the
	// proof decoders, the curve-point sanitation, and the aggregand bounds
	// checks without panicking group arithmetic.
	memberAttrs := []string{"role=member"}
	issuer := anoncred.NewIssuer("fuzz-issuer")
	credKey, err := issuer.RegisterAttributeSet(memberAttrs)
	if err != nil {
		f.Fatal(err)
	}
	wallet, err := anoncred.NewWallet()
	if err != nil {
		f.Fatal(err)
	}
	if err := wallet.RequestTokens(issuer, memberAttrs, 4); err != nil {
		f.Fatal(err)
	}
	collector, err := paillier.GenerateKey(512)
	if err != nil {
		f.Fatal(err)
	}
	man, err := tee.NewManufacturer()
	if err != nil {
		f.Fatal(err)
	}
	encl, err := man.Provision()
	if err != nil {
		f.Fatal(err)
	}
	echo := tee.Program{Name: "fuzz-echo", Version: "1", Run: func(input, state []byte) ([]byte, []byte, error) {
		return input, state, nil
	}}
	if err := encl.Load(echo); err != nil {
		f.Fatal(err)
	}
	privCfg := Config{Stages: []StageConfig{
		{Name: StageAnonCred, Params: map[string]string{"mode": "present", "attrs": "role=member", "scope": "fuzz-scope"}},
		{Name: StageZKProof, Params: map[string]string{"mode": "range", "bits": "16"}},
		{Name: StageAttest, Params: map[string]string{"mode": "tee", "bind": "output"}},
		{Name: StageAudit},
		{Name: StageAggregate, Params: map[string]string{"mode": "paillier", "size": "4"}},
	}}
	privEnv := Env{
		AnonCredKey: credKey,
		Attestation: &AttestationPolicy{Manufacturer: man.PublicKey(), Measurement: echo.Measurement()},
		Aggregator:  &collector.PublicKey,
		Log:         audit.NewLog(),
	}
	privGW, err := NewGateway("fuzz-priv-gw", privCfg, privEnv, ordering.New("priv-op", ordering.VisibilityEnvelope))
	if err != nil {
		f.Fatal(err)
	}
	if err := privGW.AttachTransport(context.Background(), net, "privgateway"); err != nil {
		f.Fatal(err)
	}
	// A fully-attested pseudonymous contribution: the payload is a Paillier
	// aggregand echoed through the enclave, so the anoncred, zkproof,
	// attest, and aggregate decoders all fire on this one seed and on every
	// mutation of it.
	aggPayload, err := EncodeAggregand(&collector.PublicKey, big.NewInt(421))
	if err != nil {
		f.Fatal(err)
	}
	output, att, err := encl.Execute(aggPayload)
	if err != nil {
		f.Fatal(err)
	}
	privReq := &Request{Channel: "deals", Payload: output}
	if _, err := AttachPresentation(privReq, wallet, memberAttrs, "fuzz-scope"); err != nil {
		f.Fatal(err)
	}
	if _, err := AttachRangeProof(privReq, big.NewInt(421), 16); err != nil {
		f.Fatal(err)
	}
	if err := AttachAttestation(privReq, att); err != nil {
		f.Fatal(err)
	}
	privWire, err := json.Marshal(wireRequest{
		Channel: privReq.Channel, Principal: privReq.Principal,
		Payload: privReq.Payload, Meta: privReq.Meta,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(privWire)
	privBinary, err := EncodeWireRequest(privReq, CodecBinary)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(privBinary)
	// Hostile stage params: half-decoded curve points (nil coordinates,
	// zero points, coords past the field prime), truncated presentations,
	// and an aggregand ciphertext sitting exactly on the N² group boundary.
	f.Add([]byte(`{"channel":"deals","principal":"x","meta":{"zkproof":"{\"Comm\":{\"X\":0}}"}}`))
	f.Add([]byte(`{"channel":"deals","principal":"x","meta":{"zkproof":"{\"Comm\":{\"X\":1,\"Y\":1},\"Proof\":{\"Bits\":64}}"}}`))
	f.Add([]byte(`{"channel":"deals","meta":{"anoncred":"{\"Nym\":{\"X\":115792089210356248762697446949407573530086143415290314195533631308867097853951,\"Y\":2}}"}}`))
	f.Add([]byte(`{"channel":"deals","meta":{"anoncred":"{"}}`))
	f.Add([]byte(`{"channel":"deals","meta":{"attestation":"{\"Measurement\":[0]}"}}`))
	f.Add([]byte(`{"channel":"deals","meta":{"attestation":"null"}}`))
	boundary, err := json.Marshal(wireAggregand{Scheme: aggregandScheme, C: collector.PublicKey.N2.Bytes()})
	if err != nil {
		f.Fatal(err)
	}
	boundaryWire, err := json.Marshal(wireRequest{Channel: "deals", Principal: "x", Payload: boundary, Meta: privReq.Meta})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(boundaryWire)
	f.Add([]byte(`{"channel":"deals","payload":"eyJzY2hlbWUiOiJwYWlsbGllci92MSIsImMiOiIifQ=="}`))

	topics := []string{TopicSubmit, TopicSessionOpen, TopicSessionClose, TopicRevocationNotify, "unknown.topic"}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, topic := range topics {
			// Errors are the expected outcome for junk; the invariant under
			// test is that no input can panic the gateway or wedge a lock.
			_, _ = net.Send(transport.Message{From: "fuzzer", To: "gateway", Topic: topic, Payload: data})
			_, _ = net.Send(transport.Message{From: "fuzzer", To: "privgateway", Topic: topic, Payload: data})
		}
	})
}

func mustHello(f *testing.F, principal string, cert pki.Certificate, key *dcrypto.PrivateKey) SessionHello {
	f.Helper()
	hello, err := NewSessionHelloAt(principal, cert, key, time.Now())
	if err != nil {
		f.Fatal(err)
	}
	return hello
}
