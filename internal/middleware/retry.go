package middleware

import (
	"context"
	"fmt"
	"time"
)

// Retry re-invokes the downstream chain on transient errors (see
// IsTransient) with bounded exponential backoff. Permanent errors —
// authentication failures, validation rejections, open breakers — pass
// through immediately.
type Retry struct {
	attempts int
	backoff  time.Duration
	sleep    func(time.Duration)
}

// NewRetry creates the retry stage: attempts total tries (>= 1), doubling
// the backoff between them starting at the given duration.
func NewRetry(attempts int, backoff time.Duration, sleep func(time.Duration)) (*Retry, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("middleware: retry needs attempts >= 1, got %d", attempts)
	}
	if backoff < 0 {
		return nil, fmt.Errorf("middleware: retry backoff must be non-negative, got %v", backoff)
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Retry{attempts: attempts, backoff: backoff, sleep: sleep}, nil
}

// Name implements Stage.
func (r *Retry) Name() string { return StageRetry }

// Handle implements Stage.
func (r *Retry) Handle(ctx context.Context, req *Request, next Handler) error {
	delay := r.backoff
	var err error
	for attempt := 1; ; attempt++ {
		err = next(ctx, req)
		if err == nil || !IsTransient(err) || attempt >= r.attempts {
			break
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		if delay > 0 {
			r.sleep(delay)
			delay *= 2
		}
	}
	if err != nil && IsTransient(err) {
		return fmt.Errorf("middleware: %d attempts exhausted: %w", r.attempts, err)
	}
	return err
}
