package middleware

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/telemetry"
	"dltprivacy/internal/transport"
)

// Errors returned by the pipeline.
var (
	// ErrNotAuthenticated is returned when a stage that requires a
	// verified submitter runs on a request the authn stage has not passed.
	ErrNotAuthenticated = errors.New("middleware: request not authenticated")
	// ErrBadSignature is returned when the submitter signature does not
	// verify against the certified key.
	ErrBadSignature = errors.New("middleware: submitter signature invalid")
	// ErrBadMAC is returned when a session request's MAC does not verify
	// against the per-session key (reqauth=mac), or when a MAC arrives at
	// a signature-only session stage.
	ErrBadMAC = errors.New("middleware: request mac invalid")
	// ErrIdentityMismatch is returned when the certificate identity does
	// not match the request principal.
	ErrIdentityMismatch = errors.New("middleware: certificate identity does not match principal")
	// ErrRateLimited is returned when a principal exhausts its token
	// bucket.
	ErrRateLimited = errors.New("middleware: rate limit exceeded")
	// ErrCircuitOpen is returned while a backend's circuit breaker is
	// tripped.
	ErrCircuitOpen = errors.New("middleware: circuit open for backend")
	// ErrTransient marks an error as retryable; wrap with
	// fmt.Errorf("...: %w", ErrTransient) or test with IsTransient.
	ErrTransient = errors.New("middleware: transient failure")
)

// Request is one client submission travelling through the chain. Stages
// annotate it in place: authn flips authenticated, encrypt replaces Payload
// with a sealed envelope, the terminal handler records the built
// transaction in Tx.
type Request struct {
	// Channel is the confidentiality domain the submission targets.
	Channel string
	// Principal is the submitting identity (must match Cert.Identity).
	Principal string
	// Backend names the platform backend the submission is destined for;
	// the circuit breaker keys its state by it.
	Backend string
	// Payload is the application content; plaintext at submission,
	// replaced by a marshalled Envelope once the encrypt stage runs.
	Payload []byte
	// Cert is the submitter's identity certificate issued by the
	// consortium CA.
	Cert pki.Certificate
	// Sig is the submitter's signature over Digest().
	Sig dcrypto.Signature
	// SessionToken binds the request to an established gateway session so
	// the session stage authenticates it against the cached verified
	// principal instead of re-verifying the certificate. The token is not
	// part of Digest(): the signature binds content to principal, the token
	// binds the request to the amortized authn.
	SessionToken string
	// MAC authenticates a session request under the per-session HMAC key
	// from the SessionGrant (reqauth=mac): the symmetric fast path that
	// replaces the per-request ECDSA verify. Empty for signature-path
	// traffic. Set it with MACRequest after the payload is final.
	MAC []byte
	// Meta carries free-form annotations copied onto the transaction.
	Meta map[string]string

	// TraceID carries a sampled request's trace identifier across process
	// boundaries: a client that received a traced response (or wants to
	// force tracing) sets it, codec v2 and the JSON wire format propagate
	// it, and the gateway always records requests arriving with one. Zero
	// means "not traced" and lets the gateway's own sampler decide. Like
	// SessionToken it is not part of Digest(): it annotates delivery, not
	// content.
	TraceID uint64

	// TransportID names the transport connection the request arrived on.
	// It is set by the server-side transport layer (the TCP edge stamps
	// each connection's identity here before Submit), never by clients,
	// and never crosses the wire. Sessions opened over an identified
	// connection are bound to it: the session stage rejects a token
	// presented from any other TransportID with ErrSessionBound, closing
	// the token-replay surface. Empty for transports without per-connection
	// identity (the in-process substrate), where sessions stay unbound.
	TransportID string

	// Tx is the ledger transaction built by the terminal handler.
	Tx ledger.Transaction

	authenticated bool
	encrypted     bool

	// trace is the in-flight sampled trace, set by the gateway when the
	// request is sampled; stages record spans into it. Nil (the common
	// case) costs each stage one pointer check.
	trace *telemetry.Trace
	// downstreamNanos is instrument()'s scratch register for exclusive
	// timing: each instrumented frame zeroes it before invoking the stage
	// and adds its own inclusive time back for its parent, so a stage's
	// exclusive time is its inclusive time minus what its direct
	// downstream reported. Keeping it on the request avoids any per-call
	// allocation.
	downstreamNanos int64
	// untimed marks a request the chain's timing sampler skipped: every
	// instrumented frame still counts calls and errors exactly but reads
	// no clocks and observes no latency. Decided once per request at
	// Execute — mixing timed and untimed frames inside one request would
	// corrupt the exclusive-time nesting protocol — and never set while
	// the request carries a trace.
	untimed bool

	// nowStamp is the session stage's clock reading, left on the request
	// so downstream stages on the same default clock (encrypt's epoch
	// expiry check) reuse it instead of reading the clock again. Only a
	// stage running the default coarseNow clock writes or trusts it — a
	// test-injected clock never mixes with the stamp in either direction.
	nowStamp time.Time

	// groupKey is the cached (channel, epoch) key the encrypt stage
	// resolved in deferred group-seal mode: the payload stays plaintext
	// until the batch stage seals the whole group under it with one AEAD
	// invocation. Nil outside deferred mode.
	groupKey *channelKey
	// buffered marks a request the batch stage acknowledged with delivery
	// still pending; SubmitAsync futures of buffered requests resolve at
	// group release, not at Submit return.
	buffered bool
	// metaOwned marks a Meta map owned by the pipeline itself (a synthetic
	// release vehicle built by the batch stage): the terminal handler may
	// annotate and hand it to the ledger transaction directly instead of
	// defensively copying a caller-owned map.
	metaOwned bool
	// done resolves the request's completion future (SubmitAsync): whoever
	// delivers the request — the batch stage at release, or SubmitAsync
	// itself when no stage buffers it — sends the delivery error (nil on
	// success) exactly once. Nil for plain Submit callers.
	done chan error
}

// complete resolves the request's completion future, if any. The buffered
// send plus default keeps a double resolution (a logic bug, not an expected
// path) from blocking the release loop.
func (r *Request) complete(err error) {
	if r.done == nil {
		return
	}
	select {
	case r.done <- err:
	default:
	}
}

// Trace returns the in-flight sampled trace, or nil when the request is
// not being traced. Stages with interesting internal phases may record
// extra spans on it.
func (r *Request) Trace() *telemetry.Trace { return r.trace }

// requestDigestDomain separates request digests from every other hash in
// the library.
const requestDigestDomain = "middleware/request/v1"

// reqDigestBufSize covers the canonical form of a typical request (five
// 8-byte length prefixes, the domain, short channel/principal/backend
// names, and a payload up to ~400 bytes) so the digest is one staging copy
// plus one direct SHA-256 call — no hash-interface round trips. Larger
// requests stream through the pooled incremental hasher instead.
const reqDigestBufSize = 512

var reqDigestBufPool = sync.Pool{New: func() any { return new([reqDigestBufSize]byte) }}

// appendDigestPart appends HashConcat's part encoding: an 8-byte big-endian
// length, then the bytes. (appendLenPrefixed in codec.go is the uvarint wire
// form; the digest form must stay byte-identical to dcrypto.HashConcat.)
func appendDigestPart(b []byte, s string) []byte {
	n := uint64(len(s))
	b = append(b, byte(n>>56), byte(n>>48), byte(n>>40), byte(n>>32),
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(b, s...)
}

// Digest returns the canonical signed content of the request: channel,
// principal, backend, and payload, length-prefixed. This runs once per
// request on the session verify path, so it is built to allocate nothing:
// the variadic HashConcat form it replaces was the single largest
// allocation source in the gateway profile (one []byte conversion per
// string field plus the parts slice).
func (r *Request) Digest() [32]byte {
	total := 5*8 + len(requestDigestDomain) +
		len(r.Channel) + len(r.Principal) + len(r.Backend) + len(r.Payload)
	if total <= reqDigestBufSize {
		bp := reqDigestBufPool.Get().(*[reqDigestBufSize]byte)
		b := appendDigestPart(bp[:0], requestDigestDomain)
		b = appendDigestPart(b, r.Channel)
		b = appendDigestPart(b, r.Principal)
		b = appendDigestPart(b, r.Backend)
		b = appendDigestPartBytes(b, r.Payload)
		d := dcrypto.Hash(b)
		reqDigestBufPool.Put(bp)
		return d
	}
	h := dcrypto.NewConcatHasher()
	h.PartString(requestDigestDomain)
	h.PartString(r.Channel)
	h.PartString(r.Principal)
	h.PartString(r.Backend)
	h.Part(r.Payload)
	return h.Sum()
}

// appendDigestPartBytes is appendDigestPart for a byte-slice part.
func appendDigestPartBytes(b, p []byte) []byte {
	n := uint64(len(p))
	b = append(b, byte(n>>56), byte(n>>48), byte(n>>40), byte(n>>32),
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(b, p...)
}

// ID returns the hex form of the request digest, the submission identifier
// echoed to transport clients (batched submissions are acknowledged before
// a transaction ID exists).
func (r *Request) ID() string {
	d := r.Digest()
	return hex.EncodeToString(d[:16])
}

// Authenticated reports whether the authn stage verified the request.
func (r *Request) Authenticated() bool { return r.authenticated }

// Encrypted reports whether the encrypt stage sealed the payload.
func (r *Request) Encrypted() bool { return r.encrypted }

// SignRequest signs the request digest with the submitter's key, filling
// Sig. It must be called after the payload is final and before submission.
func SignRequest(r *Request, key *dcrypto.PrivateKey) error {
	d := r.Digest()
	sig, err := key.Sign(d[:])
	if err != nil {
		return fmt.Errorf("middleware: sign request: %w", err)
	}
	r.Sig = sig
	return nil
}

// MACRequest authenticates the request under a session MAC key from a
// SessionGrant, filling MAC. Like SignRequest it must be called after the
// payload is final and before submission; unlike SignRequest it is a pure
// symmetric operation, ~100x cheaper than an ECDSA signature.
func MACRequest(r *Request, macKey []byte) {
	d := r.Digest()
	tag := dcrypto.MAC(macKey, d[:])
	r.MAC = tag[:]
}

// Handler is the continuation a stage invokes to pass the request
// downstream.
type Handler func(ctx context.Context, req *Request) error

// Stage is one interceptor in the pipeline. Handle may inspect or mutate
// the request, short-circuit by returning without calling next, or invoke
// next one or more times (retry) or zero-or-later (batch).
type Stage interface {
	Name() string
	Handle(ctx context.Context, req *Request, next Handler) error
}

// StageStats is a snapshot of one stage's counters.
//
// Nanos is inclusive of downstream stages (the chain is measured from each
// stage's entry), which is what the incremental benchmarks difference to
// get per-stage overhead. Inclusive sums are misleading for re-entrant
// stages: retry invokes its downstream several times (each attempt's time
// lands in retry's Nanos and again in each downstream stage's), and batch
// invokes it zero times at submission (the release happens later, under
// the releasing call). ExclusiveNanos is the complementary measure — time
// spent in the stage itself, minus everything its direct downstream
// reported — and is what the per-stage latency histograms observe, so
// Σ ExclusiveNanos over stages ≈ wall time even around retry loops.
//
// Under sampled timing (Config.TimingSample) Calls and Errors stay exact
// while Nanos, ExclusiveNanos, and the latency histograms cover only the
// timed 1-in-N subset — multiply by the sample divisor to estimate
// totals, or read the histogram quantiles directly (sampling preserves
// the latency distribution, not the sums).
type StageStats struct {
	Name           string
	Calls          uint64
	Errors         uint64
	Nanos          uint64
	ExclusiveNanos uint64
}

// stageMetrics instruments one stage position in the chain.
type stageMetrics struct {
	name   string
	calls  atomic.Uint64
	errors atomic.Uint64
	nanos  atomic.Uint64
	excl   atomic.Uint64
	// lat observes per-call exclusive latency (nanoseconds) into fixed
	// atomic buckets; registered as confmw_stage_latency_seconds.
	lat *telemetry.Histogram
}

// Chain is an immutable composition of stages ending in a terminal handler.
// It is safe for concurrent use when its stages are.
type Chain struct {
	stages  []Stage
	metrics []*stageMetrics
	head    Handler

	// timingEvery > 1 enables sampled stage timing: one in every
	// timingEvery requests runs fully instrumented, the rest skip the
	// clock reads and latency observations (calls and errors stay exact).
	// 0 or 1 — the default for every directly-constructed chain — times
	// every request. Set once via setTimingSample before traffic.
	timingEvery uint64
	timingCtr   atomic.Uint64
}

// NewChain composes stages (outermost first) around the terminal handler.
// Ordering is the caller's responsibility; Config.Build is the validated
// front door.
func NewChain(terminal Handler, stages ...Stage) *Chain {
	if terminal == nil {
		terminal = func(context.Context, *Request) error { return nil }
	}
	c := &Chain{stages: stages}
	h := terminal
	c.metrics = make([]*stageMetrics, len(stages))
	for i := len(stages) - 1; i >= 0; i-- {
		m := &stageMetrics{name: stages[i].Name()}
		m.lat = telemetry.NewHistogram(
			"confmw_stage_latency_seconds",
			"Per-call exclusive stage latency (time in the stage itself, downstream subtracted).",
			telemetry.LatencyBounds, telemetry.NanosPerSecond,
			telemetry.L("stage", m.name),
		)
		c.metrics[i] = m
		h = instrument(stages[i], m, h)
	}
	c.head = h
	return c
}

// instrument wraps one stage with its counters, exclusive-latency
// histogram, and span recording. The exclusive-time protocol uses
// req.downstreamNanos as a scratch register instead of wrapping next in a
// fresh closure, keeping the instrumented path allocation-free: each frame
// saves its parent's accumulator, zeroes it, runs the stage (downstream
// frames add their inclusive time into it — retry's several attempts
// accumulate, batch's zero invocations leave it zero), and restores
// parent + own inclusive time on the way out.
// chainEpoch anchors instrument()'s timestamps: both edges of a frame are
// read as time.Since(chainEpoch), which is a bare monotonic-clock read —
// about half the cost of time.Now, which also reads the wall clock — and
// the rare sampled-trace path reconstructs the exact span start as
// chainEpoch.Add(startOff).
var chainEpoch = time.Now()

// coarseNow is the hot paths' default time source: the current time
// rebuilt from one monotonic-clock read against the process epoch, about
// half the cost of time.Now. Its monotonic reading — what expiry, idle,
// and freshness comparisons between two of its values actually use — is
// exact; only the wall reading can drift from the system clock, by
// whatever steps land after process start. The session and cached-encrypt
// stages default to it when no clock is injected.
func coarseNow() time.Time { return chainEpoch.Add(time.Since(chainEpoch)) }

func instrument(s Stage, m *stageMetrics, next Handler) Handler {
	return func(ctx context.Context, req *Request) error {
		m.calls.Add(1)
		if req.untimed {
			// Sampled-out request: exact calls/errors, no clocks, no
			// latency observation, no exclusive-time bookkeeping. The
			// whole request is untimed (decided at Execute), so no timed
			// frame ever reads the downstreamNanos this frame skips.
			err := s.Handle(ctx, req, next)
			if err != nil {
				m.errors.Add(1)
			}
			return err
		}
		parent := req.downstreamNanos
		req.downstreamNanos = 0
		startOff := time.Since(chainEpoch)
		err := s.Handle(ctx, req, next)
		incl := int64(time.Since(chainEpoch) - startOff)
		excl := incl - req.downstreamNanos
		if excl < 0 {
			excl = 0
		}
		req.downstreamNanos = parent + incl
		m.nanos.Add(uint64(incl))
		m.excl.Add(uint64(excl))
		m.lat.Observe(uint64(excl))
		if err != nil {
			m.errors.Add(1)
		}
		if tr := req.trace; tr != nil {
			tr.AddSpan(m.name, chainEpoch.Add(startOff), time.Duration(incl), time.Duration(excl), err)
		}
		return err
	}
}

// Execute runs the request through the chain.
func (c *Chain) Execute(ctx context.Context, req *Request) error {
	if req == nil {
		return errors.New("middleware: nil request")
	}
	if req.Channel == "" || req.Principal == "" {
		return errors.New("middleware: request needs channel and principal")
	}
	// Per-request timing decision: a traced request is always fully
	// timed (its spans need real timestamps); otherwise one in every
	// timingEvery requests is. Reset unconditionally — callers reuse
	// request structs across submissions.
	if c.timingEvery > 1 {
		req.untimed = req.trace == nil && c.timingCtr.Add(1)%c.timingEvery != 0
	} else {
		req.untimed = false
	}
	return c.head(ctx, req)
}

// setTimingSample enables 1-in-every sampled stage timing on the chain.
// It must be called before traffic; Config.Build is the validated front
// door (the TimingSample knob).
func (c *Chain) setTimingSample(every int) {
	if every > 1 {
		c.timingEvery = uint64(every)
	}
}

// Stats snapshots per-stage counters in chain order.
func (c *Chain) Stats() []StageStats {
	out := make([]StageStats, len(c.metrics))
	for i, m := range c.metrics {
		out[i] = StageStats{
			Name:           m.name,
			Calls:          m.calls.Load(),
			Errors:         m.errors.Load(),
			Nanos:          m.nanos.Load(),
			ExclusiveNanos: m.excl.Load(),
		}
	}
	return out
}

// RegisterMetrics registers the chain's per-stage telemetry into reg:
// confmw_stage_calls_total, confmw_stage_errors_total, and the
// confmw_stage_latency_seconds exclusive-latency histograms, all labelled
// by stage name.
func (c *Chain) RegisterMetrics(reg *telemetry.Registry) error {
	for _, m := range c.metrics {
		if err := reg.Register(m.lat); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_stage_calls_total",
			"Stage invocations.", m.calls.Load, telemetry.L("stage", m.name)); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_stage_errors_total",
			"Stage invocations that returned an error.", m.errors.Load, telemetry.L("stage", m.name)); err != nil {
			return err
		}
	}
	return nil
}

// StageLatency returns the named stage's exclusive-latency histogram, or
// nil if the chain has no such stage. Useful for deriving p50/p99 in
// process (status pages, tests) without a scrape round-trip.
func (c *Chain) StageLatency(name string) *telemetry.Histogram {
	for _, m := range c.metrics {
		if m.name == name {
			return m.lat
		}
	}
	return nil
}

// StageNames returns the configured stage names in order.
func (c *Chain) StageNames() []string {
	out := make([]string, len(c.stages))
	for i, s := range c.stages {
		out[i] = s.Name()
	}
	return out
}

// stage returns the configured stage with the given name, if any.
func (c *Chain) stage(name string) Stage {
	for _, s := range c.stages {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// IsTransient reports whether an error is worth retrying: transport
// partitions (which heal), a sequencing shard between leaders (an election
// resolves it — usually within one retry backoff), and anything explicitly
// marked with ErrTransient. Permanent protocol errors (authentication,
// validation, open breakers) are not; neither is ordering.ErrNoQuorum — a
// shard that lost its replication quorum needs operator action, not
// retries.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, transport.ErrPartitioned) ||
		errors.Is(err, ordering.ErrNoLeader)
}
