package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/zkp"
)

// StageZKProof is the range-proof verification stage: submissions must
// carry a Pedersen range (or sufficient-funds) claim, checked before the
// payload is sealed.
const StageZKProof = "zkproof"

// MetaZKProof is the request Meta key carrying a wire-encoded RangeClaim.
// The stage consumes the claim — the bulky proof never reaches the ledger —
// and replaces the value with a compact verification note that rides into
// the transaction metadata for auditors.
const MetaZKProof = "zkproof"

// maxProofWireBytes caps any single Meta-carried proof blob before JSON
// decoding: hostile frames must not buy unbounded allocation.
const maxProofWireBytes = 1 << 20

// Errors returned by the zkproof stage.
var (
	// ErrProofRequired is returned when a gated submission carries no
	// range claim.
	ErrProofRequired = errors.New("middleware: zkproof: submission carries no range claim")
	// ErrProofInvalid is returned when a carried claim fails to decode or
	// verify.
	ErrProofInvalid = errors.New("middleware: zkproof: range claim rejected")
)

// RangeClaim is the wire form of the zkproof stage's evidence: a Pedersen
// commitment and a zero-knowledge proof that the committed value lies in
// [0, 2^bits). With Threshold set, the claim is a sufficient-funds
// statement instead: committed value ≥ Threshold (the range proof then
// covers the shifted commitment at the default width). The proof
// transcript is bound to the submitting channel and principal, so claims
// cannot be replayed across channels or submitters.
type RangeClaim struct {
	Comm      zkp.Commitment
	Threshold *big.Int `json:",omitempty"`
	Proof     zkp.RangeProof
}

// ZKProof verifies range claims carried in request metadata. Construction
// is the only configuration point; Handle allocates nothing on requests
// for other channels.
type ZKProof struct {
	bits    int
	channel string
}

// NewZKProofRange creates the stage. bits is the required proof width;
// channel, when non-empty, gates only that channel and passes every other
// request through untouched.
func NewZKProofRange(bits int, channel string) (*ZKProof, error) {
	if bits < 1 || bits > 64 {
		return nil, fmt.Errorf("middleware: zkproof bits must be in [1, 64], got %d", bits)
	}
	return &ZKProof{bits: bits, channel: channel}, nil
}

// Name implements Stage.
func (z *ZKProof) Name() string { return StageZKProof }

// Handle implements Stage: decode, sanitize, and verify the claim, then
// strip the proof from the request and pass it on.
func (z *ZKProof) Handle(ctx context.Context, req *Request, next Handler) error {
	if z.channel != "" && req.Channel != z.channel {
		return next(ctx, req)
	}
	blob, ok := req.Meta[MetaZKProof]
	if !ok || blob == "" {
		return fmt.Errorf("%w (channel %s)", ErrProofRequired, req.Channel)
	}
	if len(blob) > maxProofWireBytes {
		return fmt.Errorf("%w: claim exceeds %d bytes", ErrProofInvalid, maxProofWireBytes)
	}
	var claim RangeClaim
	if err := json.Unmarshal([]byte(blob), &claim); err != nil {
		return fmt.Errorf("%w: %v", ErrProofInvalid, err)
	}
	if err := checkRangeClaim(&claim, z.bits); err != nil {
		return fmt.Errorf("%w: %v", ErrProofInvalid, err)
	}
	cctx := zkproofContext(req.Channel, req.Principal)
	var err error
	if claim.Threshold != nil {
		err = zkp.VerifySufficientFunds(
			zkp.SufficientFundsProof{Threshold: claim.Threshold, Range: claim.Proof},
			claim.Comm, cctx)
	} else {
		err = zkp.VerifyRange(claim.Proof, claim.Comm, cctx)
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProofInvalid, err)
	}
	sum := dcrypto.Hash(claim.Comm.Bytes())
	req.Meta[MetaZKProof] = fmt.Sprintf("range/%d verified comm=%x", claim.Proof.Bits, sum[:8])
	return next(ctx, req)
}

// checkRangeClaim sanitizes a decoded claim before any group arithmetic:
// every point must be a valid group element (hostile off-curve or
// oversized coordinates would panic inside crypto/elliptic) and the proof
// shape must match the configured width, bounding verification work.
func checkRangeClaim(claim *RangeClaim, bits int) error {
	if claim.Proof.Bits != bits {
		return fmt.Errorf("proof width %d, stage requires %d", claim.Proof.Bits, bits)
	}
	if len(claim.Proof.BitComms) != bits || len(claim.Proof.BitProofs) != bits {
		return errors.New("malformed proof: bit count mismatch")
	}
	if !claim.Comm.P.Valid() {
		return errors.New("commitment is not a group element")
	}
	for i := range claim.Proof.BitComms {
		if !claim.Proof.BitComms[i].P.Valid() {
			return fmt.Errorf("bit commitment %d is not a group element", i)
		}
		bp := &claim.Proof.BitProofs[i]
		if !bp.A0.Valid() || !bp.A1.Valid() {
			return fmt.Errorf("bit proof %d is not a group element", i)
		}
	}
	return nil
}

// zkproofContext binds proof transcripts to the submission: a claim proved
// for one (channel, principal) pair verifies for no other.
func zkproofContext(channel, principal string) []byte {
	sum := dcrypto.HashConcat([]byte("middleware/zkproof/v1"), []byte(channel), []byte(principal))
	return sum[:]
}

// AttachRangeProof is the client-side counterpart of the zkproof stage: it
// commits to v, proves v ∈ [0, 2^bits), and attaches the claim to the
// request. Set the request's Channel and Principal first — the proof
// transcript is bound to both. The commitment is returned so the caller
// can reference it in the payload.
func AttachRangeProof(req *Request, v *big.Int, bits int) (zkp.Commitment, error) {
	comm, r, err := zkp.CommitValue(v)
	if err != nil {
		return zkp.Commitment{}, err
	}
	proof, err := zkp.ProveRange(v, r, comm, bits, zkproofContext(req.Channel, req.Principal))
	if err != nil {
		return zkp.Commitment{}, err
	}
	return comm, attachRangeClaim(req, RangeClaim{Comm: comm, Proof: proof})
}

// AttachSufficientFundsProof commits to balance and proves
// balance ≥ threshold without revealing the balance, attaching the claim
// to the request. The proof uses the default range width
// (zkp.DefaultRangeBits), which is also the stage's default bits setting.
func AttachSufficientFundsProof(req *Request, balance, threshold *big.Int) (zkp.Commitment, error) {
	comm, r, err := zkp.CommitValue(balance)
	if err != nil {
		return zkp.Commitment{}, err
	}
	proof, err := zkp.ProveSufficientFunds(balance, r, threshold, comm, zkproofContext(req.Channel, req.Principal))
	if err != nil {
		return zkp.Commitment{}, err
	}
	return comm, attachRangeClaim(req, RangeClaim{Comm: comm, Threshold: proof.Threshold, Proof: proof.Range})
}

func attachRangeClaim(req *Request, claim RangeClaim) error {
	blob, err := json.Marshal(claim)
	if err != nil {
		return err
	}
	if req.Meta == nil {
		req.Meta = make(map[string]string, 1)
	}
	req.Meta[MetaZKProof] = string(blob)
	return nil
}

func init() {
	mustRegisterStage(stageDef{
		name: StageZKProof,
		desc: "verify a Pedersen range / sufficient-funds claim before sealing",
		params: []paramSpec{
			{"mode", `proof system, only "range"`},
			{"bits", "required proof width in [1, 64] (default 32)"},
			{"channel", "gate only this channel (default: all channels)"},
		},
		follows:   []string{StageAuthn, StageSession},
		followWhy: "proof contexts are bound to the verified principal",
		before: []orderRule{
			{StageEncrypt, "claims are checked against the plaintext submission before it is sealed"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			if mode := p.str("mode", "range"); mode != "range" {
				return nil, fmt.Errorf("unknown zkproof mode %q (want range)", mode)
			}
			bits := p.intVal("bits", zkp.DefaultRangeBits)
			channel := p.str("channel", "")
			if p.err != nil {
				return nil, p.err
			}
			return NewZKProofRange(bits, channel)
		},
	})
}
