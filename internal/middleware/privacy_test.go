package middleware

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"testing"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/tee"
	"dltprivacy/internal/telemetry"
	"dltprivacy/internal/transport"
)

// runStage invokes one stage directly with a pass-through terminal,
// reporting whether the request reached it.
func runStage(t *testing.T, s Stage, req *Request) (passed bool, err error) {
	t.Helper()
	err = s.Handle(context.Background(), req, func(ctx context.Context, r *Request) error {
		passed = true
		return nil
	})
	return passed, err
}

func TestZKProofStageVerifiesRange(t *testing.T) {
	z, err := NewZKProofRange(16, "")
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Channel: "ch", Principal: "alice"}
	if _, err := AttachRangeProof(req, big.NewInt(777), 16); err != nil {
		t.Fatal(err)
	}
	passed, err := runStage(t, z, req)
	if err != nil || !passed {
		t.Fatalf("valid claim rejected: %v", err)
	}
	// The bulky proof is consumed; only the compact note rides on.
	if note := req.Meta[MetaZKProof]; !strings.HasPrefix(note, "range/16 verified") {
		t.Fatalf("meta note = %q", note)
	}
}

func TestZKProofStageBindsPrincipalAndChannel(t *testing.T) {
	z, err := NewZKProofRange(16, "")
	if err != nil {
		t.Fatal(err)
	}
	// A claim proved by alice replayed under bob's identity fails: the
	// transcript context covers (channel, principal).
	req := &Request{Channel: "ch", Principal: "alice"}
	if _, err := AttachRangeProof(req, big.NewInt(777), 16); err != nil {
		t.Fatal(err)
	}
	req.Principal = "bob"
	if _, err := runStage(t, z, req); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("cross-principal replay = %v, want ErrProofInvalid", err)
	}
}

func TestZKProofStageRejectsHostileClaims(t *testing.T) {
	z, err := NewZKProofRange(4, "")
	if err != nil {
		t.Fatal(err)
	}
	// None of these may panic: every decoded group element is sanitized
	// before curve arithmetic.
	hostile := []string{
		`not json`,
		`{}`,
		`{"Proof":{"Bits":4}}`,
		`{"Comm":{"P":{"X":0}},"Proof":{"Bits":4,"BitComms":[{},{},{},{}],"BitProofs":[{},{},{},{}]}}`,
		`{"Comm":{"P":{"X":1,"Y":2}},"Proof":{"Bits":4,"BitComms":[{},{},{},{}],"BitProofs":[{},{},{},{}]}}`,
		`{"Comm":{"P":{"X":99999999999999999999999999999999999999999999999999999999999999999999999999999999,"Y":1}},"Proof":{"Bits":4,"BitComms":[{},{},{},{}],"BitProofs":[{},{},{},{}]}}`,
	}
	for _, blob := range hostile {
		req := &Request{Channel: "ch", Principal: "alice", Meta: map[string]string{MetaZKProof: blob}}
		if _, err := runStage(t, z, req); !errors.Is(err, ErrProofInvalid) {
			t.Fatalf("hostile claim %q = %v, want ErrProofInvalid", blob, err)
		}
	}
	// Missing entirely is its own error.
	if _, err := runStage(t, z, &Request{Channel: "ch"}); !errors.Is(err, ErrProofRequired) {
		t.Fatalf("missing claim = %v, want ErrProofRequired", err)
	}
}

func TestZKProofStageChannelGate(t *testing.T) {
	z, err := NewZKProofRange(16, "gated")
	if err != nil {
		t.Fatal(err)
	}
	// Other channels pass through proof-less; the gated one does not.
	passed, err := runStage(t, z, &Request{Channel: "open"})
	if err != nil || !passed {
		t.Fatalf("ungated channel blocked: %v", err)
	}
	if _, err := runStage(t, z, &Request{Channel: "gated"}); !errors.Is(err, ErrProofRequired) {
		t.Fatalf("gated channel = %v, want ErrProofRequired", err)
	}
}

func newTestWallet(t *testing.T, attrs []string) (*anoncred.Wallet, *AnonCred) {
	t.Helper()
	issuer := anoncred.NewIssuer("test-issuer")
	key, err := issuer.RegisterAttributeSet(attrs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := anoncred.NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RequestTokens(issuer, attrs, 8); err != nil {
		t.Fatal(err)
	}
	stage, err := NewAnonCred(key, attrs, "audit", true)
	if err != nil {
		t.Fatal(err)
	}
	return w, stage
}

func TestAnonCredStageAuthenticates(t *testing.T) {
	attrs := []string{"role=member"}
	w, stage := newTestWallet(t, attrs)
	req := &Request{Channel: "ch"}
	nym, err := AttachPresentation(req, w, attrs, "audit")
	if err != nil {
		t.Fatal(err)
	}
	passed, err := runStage(t, stage, req)
	if err != nil || !passed {
		t.Fatalf("valid presentation rejected: %v", err)
	}
	if !req.Authenticated() {
		t.Fatal("request not marked authenticated")
	}
	if req.Principal != nym || req.Meta[MetaNym] != nym {
		t.Fatalf("principal %q / nym meta %q, want %q", req.Principal, req.Meta[MetaNym], nym)
	}
	if req.Meta[MetaAnonCred] != "present/audit" {
		t.Fatalf("anoncred note = %q", req.Meta[MetaAnonCred])
	}
	if stage.Shown() != 1 {
		t.Fatalf("Shown() = %d", stage.Shown())
	}
}

func TestAnonCredStageRejectsReplayAndMismatch(t *testing.T) {
	attrs := []string{"role=member"}
	w, stage := newTestWallet(t, attrs)

	req := &Request{Channel: "ch"}
	if _, err := AttachPresentation(req, w, attrs, "audit"); err != nil {
		t.Fatal(err)
	}
	blob, principal := req.Meta[MetaAnonCred], req.Principal
	if _, err := runStage(t, stage, req); err != nil {
		t.Fatal(err)
	}
	// Replaying the spent presentation burns on the one-show registry.
	replay := &Request{Channel: "ch", Principal: principal, Meta: map[string]string{MetaAnonCred: blob}}
	if _, err := runStage(t, stage, replay); !errors.Is(err, ErrCredentialRejected) {
		t.Fatalf("replay = %v, want ErrCredentialRejected", err)
	}

	// Wrong scope: presented for another context.
	other := &Request{Channel: "ch"}
	if _, err := AttachPresentation(other, w, attrs, "not-audit"); err != nil {
		t.Fatal(err)
	}
	if _, err := runStage(t, stage, other); !errors.Is(err, ErrCredentialRejected) {
		t.Fatalf("wrong scope = %v, want ErrCredentialRejected", err)
	}

	// Principal not the presentation pseudonym.
	forged := &Request{Channel: "ch"}
	if _, err := AttachPresentation(forged, w, attrs, "audit"); err != nil {
		t.Fatal(err)
	}
	forged.Principal = "mallory"
	if _, err := runStage(t, stage, forged); !errors.Is(err, ErrCredentialRejected) {
		t.Fatalf("principal mismatch = %v, want ErrCredentialRejected", err)
	}

	// No presentation at all on a required stage.
	if _, err := runStage(t, stage, &Request{Channel: "ch"}); !errors.Is(err, ErrCredentialRequired) {
		t.Fatalf("missing presentation = %v, want ErrCredentialRequired", err)
	}

	// Hostile points must not panic.
	for _, blob := range []string{
		`{"Nym":{"X":1,"Y":1}}`,
		`{"Nym":{"X":0},"Sig":{},"Comm":{},"Link":{}}`,
	} {
		hostile := &Request{Channel: "ch", Principal: "x", Meta: map[string]string{MetaAnonCred: blob}}
		if _, err := runStage(t, stage, hostile); !errors.Is(err, ErrCredentialRejected) {
			t.Fatalf("hostile presentation %q = %v, want ErrCredentialRejected", blob, err)
		}
	}
}

func TestAnonCredStagePassesAuthenticatedTraffic(t *testing.T) {
	attrs := []string{"role=member"}
	_, stage := newTestWallet(t, attrs)
	// A request another authenticator already vouched for passes without
	// a presentation: credential and certificate traffic share pipelines.
	req := &Request{Channel: "ch", Principal: "alice"}
	req.authenticated = true
	passed, err := runStage(t, stage, req)
	if err != nil || !passed {
		t.Fatalf("pre-authenticated request blocked: %v", err)
	}
}

func TestAttestStageVerifiesAndBinds(t *testing.T) {
	man, err := tee.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := man.Provision()
	if err != nil {
		t.Fatal(err)
	}
	prog := tee.Program{Name: "echo", Version: "1", Run: func(in, st []byte) ([]byte, []byte, error) {
		return append([]byte("out:"), in...), st, nil
	}}
	if err := enclave.Load(prog); err != nil {
		t.Fatal(err)
	}
	policy := AttestationPolicy{Manufacturer: man.PublicKey(), Measurement: prog.Measurement()}
	output, att, err := enclave.Execute([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}

	// Output binding: the attested output is the payload.
	stage, err := NewAttestTEE(policy, BindOutput)
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Channel: "ch", Payload: output}
	if err := AttachAttestation(req, att); err != nil {
		t.Fatal(err)
	}
	passed, err := runStage(t, stage, req)
	if err != nil || !passed {
		t.Fatalf("valid attestation rejected: %v", err)
	}
	if !strings.HasPrefix(req.Meta[MetaAttest], "tee/") {
		t.Fatalf("meta note = %q", req.Meta[MetaAttest])
	}

	// Payload swapped after attestation: rejected.
	swapped := &Request{Channel: "ch", Payload: []byte("something else")}
	if err := AttachAttestation(swapped, att); err != nil {
		t.Fatal(err)
	}
	if _, err := runStage(t, stage, swapped); !errors.Is(err, ErrAttestationRejected) {
		t.Fatalf("swapped payload = %v, want ErrAttestationRejected", err)
	}

	// Input binding accepts the enclave input instead.
	inStage, err := NewAttestTEE(policy, BindInput)
	if err != nil {
		t.Fatal(err)
	}
	inReq := &Request{Channel: "ch", Payload: []byte("payload")}
	if err := AttachAttestation(inReq, att); err != nil {
		t.Fatal(err)
	}
	if passed, err := runStage(t, inStage, inReq); err != nil || !passed {
		t.Fatalf("input-bound attestation rejected: %v", err)
	}

	// Wrong measurement: an unaudited program's quote.
	wrongPolicy := policy
	wrongPolicy.Measurement = tee.Program{Name: "other", Version: "9"}.Measurement()
	wrongStage, err := NewAttestTEE(wrongPolicy, BindOff)
	if err != nil {
		t.Fatal(err)
	}
	wReq := &Request{Channel: "ch", Payload: output}
	if err := AttachAttestation(wReq, att); err != nil {
		t.Fatal(err)
	}
	if _, err := runStage(t, wrongStage, wReq); !errors.Is(err, ErrAttestationRejected) {
		t.Fatalf("wrong measurement = %v, want ErrAttestationRejected", err)
	}

	// Missing and hostile blobs.
	if _, err := runStage(t, stage, &Request{Channel: "ch"}); !errors.Is(err, ErrAttestationRequired) {
		t.Fatalf("missing attestation = %v, want ErrAttestationRequired", err)
	}
	for _, blob := range []string{`garbage`, `{}`, `{"EnclaveKey":"AAECAw=="}`} {
		h := &Request{Channel: "ch", Meta: map[string]string{MetaAttest: blob}}
		if _, err := runStage(t, stage, h); !errors.Is(err, ErrAttestationRejected) {
			t.Fatalf("hostile attestation %q = %v, want ErrAttestationRejected", blob, err)
		}
	}
}

func TestAggregateStageCombinesAndReleases(t *testing.T) {
	sk, err := paillier.GenerateKey(512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	agg, err := NewAggregate(pk, 3)
	if err != nil {
		t.Fatal(err)
	}
	var released []*Request
	next := func(ctx context.Context, r *Request) error {
		released = append(released, r)
		return nil
	}
	submit := func(channel string, v int64) error {
		payload, err := EncodeAggregand(pk, big.NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		req := &Request{Channel: channel, Principal: "contributor", Payload: payload,
			Meta: map[string]string{MetaNym: "secret-nym"}}
		return agg.Handle(context.Background(), req, next)
	}

	// Two contributions are acknowledged and held.
	for _, v := range []int64{100, 250} {
		if err := submit("reports", v); err != nil {
			t.Fatal(err)
		}
	}
	if len(released) != 0 || agg.Pending() != 2 {
		t.Fatalf("released %d, pending %d", len(released), agg.Pending())
	}
	// The third fills the group and releases the sum.
	if err := submit("reports", 75); err != nil {
		t.Fatal(err)
	}
	if len(released) != 1 || agg.Pending() != 0 {
		t.Fatalf("released %d, pending %d", len(released), agg.Pending())
	}
	out := released[0]
	if out.Principal != AggregatePrincipal {
		t.Fatalf("released principal = %q", out.Principal)
	}
	if out.Meta[MetaAggregate] != "paillier/v1 n=3" {
		t.Fatalf("aggregate note = %q", out.Meta[MetaAggregate])
	}
	// Contributor annotations must not survive onto the aggregate.
	if _, leaked := out.Meta[MetaNym]; leaked {
		t.Fatal("contributor meta leaked onto the aggregate")
	}
	total, err := DecryptAggregate(sk, out.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if total.Int64() != 425 {
		t.Fatalf("aggregate total = %s, want 425", total)
	}
}

func TestAggregateStageFlushAndGrouping(t *testing.T) {
	sk, err := paillier.GenerateKey(512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	agg, err := NewAggregate(pk, 10)
	if err != nil {
		t.Fatal(err)
	}
	var released []*Request
	next := func(ctx context.Context, r *Request) error {
		released = append(released, r)
		return nil
	}
	// Flush with nothing buffered is a no-op even before any submission.
	if err := agg.Flush(context.Background()); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
	// Channels aggregate independently.
	for _, sub := range []struct {
		ch string
		v  int64
	}{{"a", 1}, {"b", 10}, {"a", 2}} {
		payload, err := EncodeAggregand(pk, big.NewInt(sub.v))
		if err != nil {
			t.Fatal(err)
		}
		req := &Request{Channel: sub.ch, Payload: payload}
		if err := agg.Handle(context.Background(), req, next); err != nil {
			t.Fatal(err)
		}
	}
	if err := agg.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(released) != 2 {
		t.Fatalf("flushed %d groups, want 2", len(released))
	}
	totals := map[string]int64{}
	for _, r := range released {
		v, err := DecryptAggregate(sk, r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		totals[r.Channel] = v.Int64()
	}
	if totals["a"] != 3 || totals["b"] != 10 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestAggregateStageRejectsBadAggregands(t *testing.T) {
	sk, err := paillier.GenerateKey(512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &sk.PublicKey
	agg, err := NewAggregate(pk, 2)
	if err != nil {
		t.Fatal(err)
	}
	next := func(ctx context.Context, r *Request) error { return nil }
	tooBig := pk.N2.String()
	for _, payload := range []string{
		`junk`,
		`{}`,
		`{"scheme":"rsa/v1","c":"AQ=="}`,
		`{"scheme":"paillier/v1","c":""}`,
		// c = N^2: outside the multiplicative group.
		`{"scheme":"paillier/v1","c":"` + bigToB64(tooBig) + `"}`,
	} {
		req := &Request{Channel: "ch", Payload: []byte(payload)}
		if err := agg.Handle(context.Background(), req, next); !errors.Is(err, ErrBadAggregand) {
			t.Fatalf("bad aggregand %q = %v, want ErrBadAggregand", payload, err)
		}
	}
	if agg.Pending() != 0 {
		t.Fatalf("bad aggregands buffered: pending = %d", agg.Pending())
	}
}

// bigToB64 renders a decimal big integer as the base64 JSON []byte form.
func bigToB64(dec string) string {
	n, _ := new(big.Int).SetString(dec, 10)
	return b64encode(n.Bytes())
}

func b64encode(b []byte) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	var sb strings.Builder
	for i := 0; i < len(b); i += 3 {
		var chunk [3]byte
		n := copy(chunk[:], b[i:])
		sb.WriteByte(alphabet[chunk[0]>>2])
		sb.WriteByte(alphabet[(chunk[0]&0x3)<<4|chunk[1]>>4])
		if n > 1 {
			sb.WriteByte(alphabet[(chunk[1]&0xf)<<2|chunk[2]>>6])
		} else {
			sb.WriteByte('=')
		}
		if n > 2 {
			sb.WriteByte(alphabet[chunk[2]&0x3f])
		} else {
			sb.WriteByte('=')
		}
	}
	return sb.String()
}

// TestGatewayPrivacyChain drives the flagship composition — anoncred-gated,
// range-proof-validated, TEE-attested, envelope-sealed — end to end over
// the transport substrate, and checks the new stages surface in both
// StageStats and the Prometheus stage-latency histograms.
func TestGatewayPrivacyChain(t *testing.T) {
	attrs := []string{"role=member"}
	issuer := anoncred.NewIssuer("consortium")
	credKey, err := issuer.RegisterAttributeSet(attrs)
	if err != nil {
		t.Fatal(err)
	}
	wallet, err := anoncred.NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	if err := wallet.RequestTokens(issuer, attrs, 4); err != nil {
		t.Fatal(err)
	}
	man, err := tee.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := man.Provision()
	if err != nil {
		t.Fatal(err)
	}
	prog := tee.Program{Name: "settle", Version: "1", Run: func(in, st []byte) ([]byte, []byte, error) {
		return in, st, nil
	}}
	if err := enclave.Load(prog); err != nil {
		t.Fatal(err)
	}
	readerKey, err := dcrypto.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}

	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	cfg := Config{Stages: []StageConfig{
		{Name: StageAnonCred, Params: map[string]string{"attrs": "role=member", "scope": "audit"}},
		{Name: StageZKProof, Params: map[string]string{"bits": "16"}},
		{Name: StageAttest, Params: map[string]string{"bind": "output"}},
		{Name: StageEncrypt},
		{Name: StageAudit, Params: map[string]string{"observer": "gateway-op"}},
	}}
	env := Env{
		AnonCredKey: credKey,
		Attestation: &AttestationPolicy{Manufacturer: man.PublicKey(), Measurement: prog.Measurement()},
		Directory:   dynamicDirectory{},
		Log:         log,
	}
	gw, err := NewGateway("gw-privacy", cfg, env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	var committed []ledger.Transaction
	gw.Bind("deals", backendFunc{name: "recorder", commit: func(b ledger.Block) error {
		committed = append(committed, b.Txs...)
		return nil
	}})
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}

	// The client flow: run the payload through the enclave, present a
	// credential (fixing the pseudonymous principal), then bind proof and
	// attestation to it.
	output, att, err := enclave.Execute([]byte("confidential settlement"))
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Channel: "deals", Payload: output}
	nym, err := AttachPresentation(req, wallet, attrs, "audit")
	if err != nil {
		t.Fatal(err)
	}
	env.Directory.(dynamicDirectory)[nym] = readerKey.Public()
	if _, err := AttachRangeProof(req, big.NewInt(421), 16); err != nil {
		t.Fatal(err)
	}
	if err := AttachAttestation(req, att); err != nil {
		t.Fatal(err)
	}
	if _, err := SubmitOver(net, "member", "gateway", req); err != nil {
		t.Fatalf("flagship submission rejected: %v", err)
	}

	// The committed transaction is sealed, pseudonymous, and carries the
	// compact verification notes from all three privacy stages.
	if len(committed) != 1 {
		t.Fatalf("committed %d txs, want 1", len(committed))
	}
	tx := committed[0]
	if tx.Creator != nym {
		t.Fatalf("creator = %q, want the pseudonym", tx.Creator)
	}
	for _, key := range []string{MetaAnonCred, MetaZKProof, MetaAttest} {
		note := tx.Meta[key]
		if note == "" || len(note) > 128 {
			t.Fatalf("meta %s = %q, want a compact note", key, note)
		}
	}
	envl, err := ParseEnvelope(tx.Payload)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := OpenEnvelope(envl, nym, readerKey)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "confidential settlement" {
		t.Fatalf("decrypted payload = %q", plain)
	}

	// Every privacy stage counted the request.
	stats := gw.Stats()
	counted := map[string]uint64{}
	for _, st := range stats.Stages {
		counted[st.Name] = st.Calls
	}
	for _, name := range []string{StageAnonCred, StageZKProof, StageAttest, StageEncrypt} {
		if counted[name] != 1 {
			t.Fatalf("stage %s calls = %d, want 1", name, counted[name])
		}
	}

	// The new stages export through the stage-latency histograms.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, name := range []string{StageAnonCred, StageZKProof, StageAttest} {
		want := `confmw_stage_latency_seconds_bucket{stage="` + name + `"`
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape missing %s histogram series", name)
		}
	}
}

// dynamicDirectory lets the test add the pseudonymous recipient after the
// nym is known.
type dynamicDirectory map[string]dcrypto.PublicKey

func (d dynamicDirectory) MemberKeys(channel string) (map[string]dcrypto.PublicKey, error) {
	return d, nil
}
