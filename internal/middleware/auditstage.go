package middleware

import (
	"context"
	"errors"

	"dltprivacy/internal/audit"
)

// Audit records what the gateway operator observes about each submission
// into the leakage log: envelope metadata and the submitting identity
// always, and full transaction data whenever the payload passes through
// unencrypted — making a pipeline without the encrypt stage show up as a
// leak in the audit matrix rather than going unnoticed.
type Audit struct {
	log      *audit.Log
	observer string
}

// NewAudit creates the audit stage recording for the named observer
// (normally the gateway operator).
func NewAudit(log *audit.Log, observer string) (*Audit, error) {
	if log == nil {
		return nil, errors.New("middleware: audit stage needs a log")
	}
	if observer == "" {
		observer = "gateway"
	}
	return &Audit{log: log, observer: observer}, nil
}

// Name implements Stage.
func (a *Audit) Name() string { return StageAudit }

// Handle implements Stage.
func (a *Audit) Handle(ctx context.Context, req *Request, next Handler) error {
	id := req.ID()
	a.log.Record(a.observer, audit.ClassTxMetadata, id)
	a.log.Record(a.observer, audit.ClassIdentity, req.Principal)
	if !req.encrypted {
		a.log.Record(a.observer, audit.ClassTxData, id)
	}
	return next(ctx, req)
}
