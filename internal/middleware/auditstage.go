package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dltprivacy/internal/audit"
)

// Audit records what the gateway operator observes about each submission
// into the leakage log: envelope metadata and the submitting identity
// always, and full transaction data whenever the payload passes through
// unencrypted — making a pipeline without the encrypt stage show up as a
// leak in the audit matrix rather than going unnoticed.
//
// Observations are recorded only after the downstream chain ACCEPTS the
// submission: a request rejected downstream (rate limit, open breaker,
// backend error) never reached the observable surface — the orderer and
// backends saw nothing — so logging it would overstate leakage. What is
// observed is classified as of the audit point in the chain (the payload's
// encryption state and digest when it passed this stage), captured before
// the downstream runs so a later encrypt stage cannot retroactively launder
// a plaintext observation.
//
// In async mode (NewAsyncAudit, or the "auditasync" config parameter) the
// recording itself leaves the submit path: Handle enqueues a fixed-size
// entry into a bounded ring consumed by one drainer goroutine, and a full
// ring sheds the entry (counted, never blocking a submission). Flush waits
// for the drainer to catch up; Close — called by Gateway.Close — drains
// every enqueued entry before returning, so a clean shutdown loses nothing.
type Audit struct {
	log      *audit.Log
	observer string

	// ring is the bounded entry buffer of async mode, nil in synchronous
	// mode. closed flips under mu's write lock before the channel closes;
	// Handle's enqueue holds the read lock, so a send can never race the
	// close.
	ring   chan auditEntry
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	enqueued atomic.Uint64 // entries accepted into the ring
	drained  atomic.Uint64 // entries the drainer recorded
	shed     atomic.Uint64 // entries dropped because the ring was full

	// flushMu/flushCond let Flush wait for drained to catch enqueued; the
	// drainer broadcasts under flushMu after every record, so a waiter
	// cannot miss the final wakeup.
	flushMu   sync.Mutex
	flushCond *sync.Cond
}

// auditEntry is one deferred observation: everything Handle captured at the
// audit point, by value, so the ring holds no request references.
type auditEntry struct {
	id        string
	principal string
	leaky     bool // payload was plaintext at the audit point (ClassTxData)
}

// NewAudit creates the audit stage recording synchronously for the named
// observer (normally the gateway operator).
func NewAudit(log *audit.Log, observer string) (*Audit, error) {
	if log == nil {
		return nil, errors.New("middleware: audit stage needs a log")
	}
	if observer == "" {
		observer = "gateway"
	}
	return &Audit{log: log, observer: observer}, nil
}

// NewAsyncAudit creates the audit stage with a bounded async ring of the
// given depth: recording happens on a drainer goroutine off the submit
// path, and a full ring sheds (and counts) instead of blocking. Callers
// must Close the stage (Gateway.Close does) to stop the drainer and flush
// the ring.
func NewAsyncAudit(log *audit.Log, observer string, depth int) (*Audit, error) {
	a, err := NewAudit(log, observer)
	if err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("middleware: audit async ring needs depth >= 1, got %d", depth)
	}
	a.ring = make(chan auditEntry, depth)
	a.flushCond = sync.NewCond(&a.flushMu)
	a.wg.Add(1)
	go a.drain()
	return a, nil
}

// Name implements Stage.
func (a *Audit) Name() string { return StageAudit }

// Async reports whether the stage records through the async ring.
func (a *Audit) Async() bool { return a.ring != nil }

// Shed reports how many observations were dropped because the ring was
// full. Always 0 in synchronous mode.
func (a *Audit) Shed() uint64 { return a.shed.Load() }

// Enqueued reports how many observations entered the ring; Drained how many
// the drainer has recorded. Both 0 in synchronous mode.
func (a *Audit) Enqueued() uint64 { return a.enqueued.Load() }

// Drained reports how many ring observations have been recorded.
func (a *Audit) Drained() uint64 { return a.drained.Load() }

// RingPending reports the observations enqueued but not yet recorded.
func (a *Audit) RingPending() uint64 { return a.enqueued.Load() - a.drained.Load() }

// Handle implements Stage.
func (a *Audit) Handle(ctx context.Context, req *Request, next Handler) error {
	// Capture the observation BEFORE the downstream runs: the encrypt
	// stage replaces the payload (changing req.ID()) and flips encrypted,
	// and the observation must classify what passed the audit point.
	id := req.ID()
	leaky := !req.encrypted
	if err := next(ctx, req); err != nil {
		// Rejected downstream: the submission never reached the observable
		// surface, so it must not appear in the leakage log.
		return err
	}
	if a.ring == nil {
		a.record(auditEntry{id: id, principal: req.Principal, leaky: leaky})
		return nil
	}
	a.mu.RLock()
	if a.closed {
		// The gateway is shutting down; record inline rather than lose the
		// observation.
		a.mu.RUnlock()
		a.record(auditEntry{id: id, principal: req.Principal, leaky: leaky})
		return nil
	}
	select {
	case a.ring <- auditEntry{id: id, principal: req.Principal, leaky: leaky}:
		a.enqueued.Add(1)
	default:
		a.shed.Add(1)
	}
	a.mu.RUnlock()
	return nil
}

// record writes one observation into the leakage log.
func (a *Audit) record(e auditEntry) {
	a.log.Record(a.observer, audit.ClassTxMetadata, e.id)
	a.log.Record(a.observer, audit.ClassIdentity, e.principal)
	if e.leaky {
		a.log.Record(a.observer, audit.ClassTxData, e.id)
	}
}

// drain is the ring consumer: it records entries until Close closes the
// ring, then drains what remains and exits.
func (a *Audit) drain() {
	defer a.wg.Done()
	for e := range a.ring {
		a.record(e)
		a.drained.Add(1)
		a.flushMu.Lock()
		a.flushCond.Broadcast()
		a.flushMu.Unlock()
	}
}

// Flush blocks until every observation enqueued before the call has been
// recorded. A no-op in synchronous mode or after Close.
func (a *Audit) Flush() {
	if a.ring == nil {
		return
	}
	target := a.enqueued.Load()
	a.flushMu.Lock()
	defer a.flushMu.Unlock()
	for a.drained.Load() < target {
		a.flushCond.Wait()
	}
}

// Close stops accepting ring entries, drains everything already enqueued,
// and stops the drainer. Subsequent Handle calls record inline. Idempotent;
// a no-op in synchronous mode. Gateway.Close calls it, so a clean gateway
// shutdown never loses an accepted observation.
func (a *Audit) Close() {
	if a.ring == nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	// No Handle holds the read lock past this point with a send pending,
	// and new ones see closed — the close cannot race a send.
	close(a.ring)
	a.wg.Wait()
	// The drainer exits without broadcasting for the final entries it
	// recorded after the last lock cycle; wake any Flush still waiting.
	a.flushMu.Lock()
	a.flushCond.Broadcast()
	a.flushMu.Unlock()
}
