package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"dltprivacy/internal/dcrypto"
)

// EnvelopeScheme identifies the envelope format produced by the encrypt
// stage: a fresh AES-256-GCM data key sealing the payload, hybrid-wrapped
// to every channel member (§2.2, "Symmetric key encryption" with keys
// "shared over the network using PKI").
const EnvelopeScheme = "hybrid-aes256gcm/v1"

// ErrNotRecipient is returned when opening an envelope with an identity
// that holds no wrapped key.
var ErrNotRecipient = errors.New("middleware: identity is not an envelope recipient")

// Envelope is an encrypted payload plus the data key wrapped per member.
// Observers (orderer, backends) see ciphertext and the recipient set only.
type Envelope struct {
	Scheme     string                              `json:"scheme"`
	Channel    string                              `json:"channel"`
	Ciphertext []byte                              `json:"ciphertext"`
	Keys       map[string]dcrypto.HybridCiphertext `json:"keys"`
}

// envelopeAD binds envelope ciphertexts to their channel.
func envelopeAD(channel string) []byte {
	return []byte("middleware/envelope/v1/" + channel)
}

// SealEnvelope encrypts payload for the given member keys.
func SealEnvelope(channel string, payload []byte, members map[string]dcrypto.PublicKey) (Envelope, error) {
	if len(members) == 0 {
		return Envelope{}, fmt.Errorf("middleware: no member keys for channel %s", channel)
	}
	dataKey, err := dcrypto.NewSymmetricKey()
	if err != nil {
		return Envelope{}, fmt.Errorf("middleware: data key: %w", err)
	}
	ct, err := dcrypto.EncryptSymmetric(dataKey, payload, envelopeAD(channel))
	if err != nil {
		return Envelope{}, fmt.Errorf("middleware: seal payload: %w", err)
	}
	env := Envelope{
		Scheme:     EnvelopeScheme,
		Channel:    channel,
		Ciphertext: ct,
		Keys:       make(map[string]dcrypto.HybridCiphertext, len(members)),
	}
	for id, pub := range members {
		wrapped, err := dcrypto.EncryptHybrid(pub, dataKey, envelopeAD(channel))
		if err != nil {
			return Envelope{}, fmt.Errorf("middleware: wrap key for %s: %w", id, err)
		}
		env.Keys[id] = wrapped
	}
	return env, nil
}

// OpenEnvelope recovers the payload for a member holding its private key.
func OpenEnvelope(env Envelope, member string, key *dcrypto.PrivateKey) ([]byte, error) {
	if env.Scheme != EnvelopeScheme {
		return nil, fmt.Errorf("middleware: unsupported envelope scheme %q", env.Scheme)
	}
	wrapped, ok := env.Keys[member]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRecipient, member)
	}
	dataKey, err := dcrypto.DecryptHybrid(key, wrapped, envelopeAD(env.Channel))
	if err != nil {
		return nil, fmt.Errorf("middleware: unwrap key: %w", err)
	}
	return dcrypto.DecryptSymmetric(dataKey, env.Ciphertext, envelopeAD(env.Channel))
}

// ParseEnvelope decodes a marshalled envelope (a transaction payload the
// encrypt stage produced).
func ParseEnvelope(b []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return Envelope{}, fmt.Errorf("middleware: parse envelope: %w", err)
	}
	return env, nil
}

// Directory resolves a channel to the public keys of its members, the
// recipient set of envelope encryption.
type Directory interface {
	MemberKeys(channel string) (map[string]dcrypto.PublicKey, error)
}

// StaticDirectory is a fixed channel -> member -> key map.
type StaticDirectory map[string]map[string]dcrypto.PublicKey

// MemberKeys implements Directory.
func (d StaticDirectory) MemberKeys(channel string) (map[string]dcrypto.PublicKey, error) {
	members, ok := d[channel]
	if !ok {
		return nil, fmt.Errorf("middleware: no members registered for channel %s", channel)
	}
	return members, nil
}

// Encrypt is the envelope-encryption stage. It refuses unauthenticated
// requests even if misassembled by hand: sealing ciphertext for an
// unverified submitter would lend member-only confidentiality to spoofed
// traffic.
type Encrypt struct {
	dir Directory
}

// NewEncrypt creates the encrypt stage over a membership directory.
func NewEncrypt(dir Directory) (*Encrypt, error) {
	if dir == nil {
		return nil, errors.New("middleware: encrypt stage needs a membership directory")
	}
	return &Encrypt{dir: dir}, nil
}

// Name implements Stage.
func (e *Encrypt) Name() string { return StageEncrypt }

// Handle implements Stage.
func (e *Encrypt) Handle(ctx context.Context, req *Request, next Handler) error {
	if !req.authenticated {
		return ErrNotAuthenticated
	}
	members, err := e.dir.MemberKeys(req.Channel)
	if err != nil {
		return err
	}
	env, err := SealEnvelope(req.Channel, req.Payload, members)
	if err != nil {
		return err
	}
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("middleware: marshal envelope: %w", err)
	}
	req.Payload = b
	req.encrypted = true
	if req.Meta == nil {
		req.Meta = make(map[string]string)
	}
	req.Meta["envelope"] = EnvelopeScheme
	return next(ctx, req)
}
