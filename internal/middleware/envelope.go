package middleware

import (
	"bytes"
	"context"
	"crypto/cipher"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/dcrypto"
)

// EnvelopeScheme identifies the envelope format produced by the encrypt
// stage: a fresh AES-256-GCM data key sealing the payload, hybrid-wrapped
// to every channel member (§2.2, "Symmetric key encryption" with keys
// "shared over the network using PKI").
const EnvelopeScheme = "hybrid-aes256gcm/v1"

// ErrNotRecipient is returned when opening an envelope with an identity
// that holds no wrapped key.
var ErrNotRecipient = errors.New("middleware: identity is not an envelope recipient")

// Envelope is an encrypted payload plus the data key wrapped per member.
// Observers (orderer, backends) see ciphertext and the recipient set only.
// Epoch identifies the channel data-key generation when the encrypt stage
// runs with a key cache; envelopes sealed with a fresh per-request key
// carry epoch zero.
type Envelope struct {
	Scheme     string                              `json:"scheme"`
	Channel    string                              `json:"channel"`
	Epoch      uint64                              `json:"epoch,omitempty"`
	Ciphertext []byte                              `json:"ciphertext"`
	Keys       map[string]dcrypto.HybridCiphertext `json:"keys"`
}

// envelopeAD binds envelope ciphertexts to their channel.
func envelopeAD(channel string) []byte {
	return []byte("middleware/envelope/v1/" + channel)
}

// SealEnvelope encrypts payload for the given member keys.
func SealEnvelope(channel string, payload []byte, members map[string]dcrypto.PublicKey) (Envelope, error) {
	return sealEnvelope(channel, payload, members, envelopeAD(channel))
}

// sealEnvelope is SealEnvelope with the channel AD precomputed — the
// encrypt stage passes its per-channel cached AD so the string concat and
// allocation happen once per channel, not once per request.
func sealEnvelope(channel string, payload []byte, members map[string]dcrypto.PublicKey, ad []byte) (Envelope, error) {
	if len(members) == 0 {
		return Envelope{}, fmt.Errorf("middleware: no member keys for channel %s", channel)
	}
	dataKey, err := dcrypto.NewSymmetricKey()
	if err != nil {
		return Envelope{}, fmt.Errorf("middleware: data key: %w", err)
	}
	ct, err := dcrypto.EncryptSymmetric(dataKey, payload, ad)
	if err != nil {
		return Envelope{}, fmt.Errorf("middleware: seal payload: %w", err)
	}
	env := Envelope{
		Scheme:     EnvelopeScheme,
		Channel:    channel,
		Ciphertext: ct,
		Keys:       make(map[string]dcrypto.HybridCiphertext, len(members)),
	}
	for id, pub := range members {
		wrapped, err := dcrypto.EncryptHybrid(pub, dataKey, ad)
		if err != nil {
			return Envelope{}, fmt.Errorf("middleware: wrap key for %s: %w", id, err)
		}
		env.Keys[id] = wrapped
	}
	return env, nil
}

// OpenEnvelope recovers the payload for a member holding its private key.
func OpenEnvelope(env Envelope, member string, key *dcrypto.PrivateKey) ([]byte, error) {
	if env.Scheme != EnvelopeScheme {
		return nil, fmt.Errorf("middleware: unsupported envelope scheme %q", env.Scheme)
	}
	wrapped, ok := env.Keys[member]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRecipient, member)
	}
	dataKey, err := dcrypto.DecryptHybrid(key, wrapped, envelopeAD(env.Channel))
	if err != nil {
		return nil, fmt.Errorf("middleware: unwrap key: %w", err)
	}
	return dcrypto.DecryptSymmetric(dataKey, env.Ciphertext, envelopeAD(env.Channel))
}

// ParseEnvelope decodes a marshalled envelope (a transaction payload the
// encrypt stage produced), in either wire codec: binary frames are sniffed
// by their magic byte, everything else parses as JSON.
func ParseEnvelope(b []byte) (Envelope, error) {
	if isBinaryFrame(b) {
		env, err := decodeEnvelopeBinary(b)
		if err != nil {
			return Envelope{}, fmt.Errorf("middleware: parse envelope: %w", err)
		}
		return env, nil
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return Envelope{}, fmt.Errorf("middleware: parse envelope: %w", err)
	}
	return env, nil
}

// Directory resolves a channel to the public keys of its members, the
// recipient set of envelope encryption.
type Directory interface {
	MemberKeys(channel string) (map[string]dcrypto.PublicKey, error)
}

// GenerationalDirectory is a Directory that can report membership change
// cheaply: Generation returns a value that differs whenever any channel's
// member set has changed since an earlier call. The encrypt stage uses it
// to cache the member-set fingerprint per (channel, generation) instead of
// re-sorting and re-hashing the member set on every request. A directory
// implementing it must treat every map it has handed out as immutable —
// membership changes install a fresh map and bump the generation.
type GenerationalDirectory interface {
	Directory
	Generation() uint64
}

// StaticDirectory is a fixed channel -> member -> key map.
type StaticDirectory map[string]map[string]dcrypto.PublicKey

// MemberKeys implements Directory.
func (d StaticDirectory) MemberKeys(channel string) (map[string]dcrypto.PublicKey, error) {
	members, ok := d[channel]
	if !ok {
		return nil, fmt.Errorf("middleware: no members registered for channel %s", channel)
	}
	return members, nil
}

// SyncDirectory is a concurrency-safe GenerationalDirectory: channels are
// installed and replaced whole via SetChannel, which copies the member map
// and bumps the generation, so readers always see immutable snapshots and
// the encrypt stage's fingerprint cache stays exact.
type SyncDirectory struct {
	mu       sync.RWMutex
	channels map[string]map[string]dcrypto.PublicKey
	// gen is written under mu (updates are serialized) but read with a
	// bare atomic load: Generation sits on the per-request seal fast
	// path, where an RLock round-trip is measurable.
	gen atomic.Uint64
}

// NewSyncDirectory creates an empty SyncDirectory.
func NewSyncDirectory() *SyncDirectory {
	return &SyncDirectory{channels: make(map[string]map[string]dcrypto.PublicKey)}
}

// SetChannel installs (or replaces) a channel's member set. The map is
// copied; later mutation of the argument does not leak in. Passing an
// empty or nil map removes the channel.
func (d *SyncDirectory) SetChannel(channel string, members map[string]dcrypto.PublicKey) {
	var snap map[string]dcrypto.PublicKey
	if len(members) > 0 {
		snap = make(map[string]dcrypto.PublicKey, len(members))
		for id, key := range members {
			snap[id] = key
		}
	}
	d.mu.Lock()
	if snap == nil {
		delete(d.channels, channel)
	} else {
		d.channels[channel] = snap
	}
	d.gen.Add(1)
	d.mu.Unlock()
}

// AddMember adds (or replaces) one member in a channel, copy-on-write:
// the previous snapshot stays immutable for in-flight readers and the
// generation bumps. The incremental path enrollment flows use — a TCP
// edge admitting principals one at a time must not re-install whole
// channels around a lock it doesn't hold.
func (d *SyncDirectory) AddMember(channel, identity string, key dcrypto.PublicKey) {
	d.mu.Lock()
	old := d.channels[channel]
	snap := make(map[string]dcrypto.PublicKey, len(old)+1)
	for id, k := range old {
		snap[id] = k
	}
	snap[identity] = key
	d.channels[channel] = snap
	d.gen.Add(1)
	d.mu.Unlock()
}

// MemberKeys implements Directory. The returned map is an immutable
// snapshot; callers must not modify it.
func (d *SyncDirectory) MemberKeys(channel string) (map[string]dcrypto.PublicKey, error) {
	d.mu.RLock()
	members, ok := d.channels[channel]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("middleware: no members registered for channel %s", channel)
	}
	return members, nil
}

// Generation implements GenerationalDirectory.
func (d *SyncDirectory) Generation() uint64 { return d.gen.Load() }

// Encrypt is the envelope-encryption stage. It refuses unauthenticated
// requests even if misassembled by hand: sealing ciphertext for an
// unverified submitter would lend member-only confidentiality to spoofed
// traffic.
//
// With a key cache (NewCachedEncrypt, or the "keyttl" config parameter)
// the expensive per-member hybrid key-wrap is performed once per
// (channel, epoch) and reused: each request pays only the symmetric seal.
// The key rotates — a new epoch, a fresh data key, fresh wraps — when the
// epoch's TTL elapses, when the channel's member set changes, or on an
// explicit Rotate call (e.g. after revoking a member).
type Encrypt struct {
	dir Directory
	// gdir is dir downcast to its generational form, nil otherwise; with
	// it, the member-set fingerprint is cached per (channel, directory
	// generation, exclusion generation) instead of recomputed per request.
	gdir   GenerationalDirectory
	keyTTL time.Duration
	now    func() time.Time
	// defaultClock marks now as the package default (coarseNow): only then
	// may channelKeyFor trust a request's session-stamped clock reading.
	defaultClock bool
	// binary switches envelope marshalling to the binary v2 framing
	// (Config.Codec = "binary"); set at Build time, before traffic.
	binary bool
	// deferSeal switches Handle into deferred group-seal mode (see
	// deferGroupSeal): the payload stays plaintext and the request is
	// tagged with its epoch key for the batch stage to seal whole groups
	// at once. Set at Build time, before traffic; requires keyTTL > 0.
	deferSeal bool

	// adCache holds the per-channel associated-data strings, computed once
	// per channel instead of concatenated per request. groupADCache is its
	// group-envelope counterpart (a distinct AD domain, see
	// groupEnvelopeAD).
	adCache      sync.Map // channel string -> []byte
	groupADCache sync.Map // channel string -> []byte

	mu     sync.Mutex
	keys   map[string]*channelKey
	epochs map[string]uint64 // next epoch per channel; survives rotation
	// rotating single-flights epoch rotation per channel: the per-member
	// hybrid wrap is O(members) of public-key crypto, so when a cold or
	// expired channel meets a thundering herd (every edge connection's
	// first submission), only the first rotator wraps — the rest wait on
	// the channel's entry and re-read the cache. Without this, N
	// concurrent rotators each burn the full wrap and N-1 results are
	// discarded by the double-checked install; at 1000 members and
	// hundreds of connections that is minutes of redundant CPU. Guarded
	// by mu; entries are removed (and their channel closed) when the
	// winning rotation installs or fails.
	rotating map[string]chan struct{}
	// fps caches the member-set fingerprint (and the effective member
	// snapshot it was computed from) per channel, valid while both the
	// directory generation and the exclusion generation stand still.
	// Guarded by mu; only populated for generational directories.
	fps map[string]*fpEntry
	// excluded holds identities whose certificates were revoked: they are
	// dropped from every member set before sealing, so no envelope after
	// the revocation wraps a key they can unwrap. exclGen counts
	// exclusions, letting channelKeyFor detect a revocation that raced its
	// out-of-lock key wrap and discard the stale wrap instead of
	// installing it. Guarded by mu.
	excluded map[string]bool
	exclGen  uint64
	// rotations counts fresh-epoch installs across all channels (a
	// channel's first epoch included), guarded by mu. revokedRotations
	// counts cached keys invalidated because a wrapped member was revoked
	// (each forces a fresh epoch on the channel's next seal).
	rotations        uint64
	revokedRotations uint64
}

// channelKey is one cached (channel, epoch) data-key generation. Beyond
// the wrapped key material it carries everything the per-request seal
// would otherwise recompute: the prebuilt AEAD (AES key schedule + GCM
// tables), the channel associated data, and the recipient IDs presorted
// for deterministic binary encoding.
type channelKey struct {
	epoch     uint64
	dataKey   []byte
	aead      cipher.AEAD
	ad        []byte
	wrapped   map[string]dcrypto.HybridCiphertext
	ids       []string // sorted recipient identities
	members   [32]byte // fingerprint of the member set the key was wrapped to
	expiresAt time.Time
	// keySection is the binary v2 encoding of the wrapped-key table
	// (count + per-recipient triples), computed once at install: the
	// table is immutable for the epoch's lifetime, and re-encoding it per
	// submission makes every seal O(members) — at 1000-member channels
	// that dominates the entire submit path. Nil under the JSON codec.
	keySection []byte
}

// fpEntry is one cached member-set fingerprint: the directory and
// exclusion generations it is valid for, the fingerprint, and the
// effective (exclusions-applied) member snapshot it covers.
type fpEntry struct {
	dirGen  uint64
	exclGen uint64
	fp      [32]byte
	members map[string]dcrypto.PublicKey
}

// NewEncrypt creates the encrypt stage over a membership directory with no
// key cache: every request seals under a fresh data key wrapped per member.
func NewEncrypt(dir Directory) (*Encrypt, error) {
	if dir == nil {
		return nil, errors.New("middleware: encrypt stage needs a membership directory")
	}
	gdir, _ := dir.(GenerationalDirectory)
	return &Encrypt{dir: dir, gdir: gdir}, nil
}

// useBinaryEnvelopes switches envelope marshalling to the binary v2
// framing. Called by Config.Build when the gateway codec is binary, before
// any traffic.
func (e *Encrypt) useBinaryEnvelopes() { e.binary = true }

// adFor returns the channel's associated data, computing and caching it on
// first use.
func (e *Encrypt) adFor(channel string) []byte {
	if v, ok := e.adCache.Load(channel); ok {
		return v.([]byte)
	}
	ad := envelopeAD(channel)
	e.adCache.Store(channel, ad)
	return ad
}

// NewCachedEncrypt creates the encrypt stage with an epoch-based channel
// data-key cache: keys rotate after keyTTL, on membership change, and on
// explicit Rotate.
func NewCachedEncrypt(dir Directory, keyTTL time.Duration, now func() time.Time) (*Encrypt, error) {
	e, err := NewEncrypt(dir)
	if err != nil {
		return nil, err
	}
	if keyTTL <= 0 {
		return nil, fmt.Errorf("middleware: encrypt key ttl must be positive, got %v", keyTTL)
	}
	e.defaultClock = now == nil
	if e.defaultClock {
		// The default clock is the cheap monotonic-anchored one:
		// channelKeyFor reads it on every seal.
		now = coarseNow
	}
	e.keyTTL = keyTTL
	e.now = now
	e.keys = make(map[string]*channelKey)
	e.epochs = make(map[string]uint64)
	e.fps = make(map[string]*fpEntry)
	e.rotating = make(map[string]chan struct{})
	return e, nil
}

// Name implements Stage.
func (e *Encrypt) Name() string { return StageEncrypt }

// Rotate discards the cached data key for a channel, forcing the next
// submission onto a fresh epoch. Call it when membership knowledge changes
// out of band (membership drift through the directory is detected
// automatically). A no-op without a key cache or for unknown channels.
func (e *Encrypt) Rotate(channel string) {
	if e.keyTTL <= 0 {
		return
	}
	e.mu.Lock()
	delete(e.keys, channel)
	e.mu.Unlock()
}

// RevokeMember excludes an identity from all future envelopes: its key is
// dropped from every member set before sealing, and every cached channel
// key it could unwrap is invalidated so the channel's next submission
// installs a fresh epoch the revoked member cannot open. Works with or
// without a key cache (without one, exclusion alone suffices: every
// request already uses a throwaway key). Idempotent.
func (e *Encrypt) RevokeMember(identity string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.excluded[identity] {
		return
	}
	if e.excluded == nil {
		e.excluded = make(map[string]bool)
	}
	e.excluded[identity] = true
	e.exclGen++
	if e.keyTTL <= 0 {
		return
	}
	for channel, ck := range e.keys {
		if _, wrapped := ck.wrapped[identity]; wrapped {
			delete(e.keys, channel)
			e.revokedRotations++
		}
	}
}

// ReadmitMember lifts a RevokeMember exclusion — the path back for an
// identity revoked outright and later re-enrolled under a fresh
// certificate. Channels re-key automatically: with the member back in the
// effective set, the next seal sees a fingerprint mismatch and installs a
// fresh epoch wrapped to it. Idempotent; a no-op for identities never
// excluded. (A rotation-flow revocation of a superseded certificate never
// excludes the identity in the first place.)
func (e *Encrypt) ReadmitMember(identity string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.excluded[identity] {
		return
	}
	delete(e.excluded, identity)
	e.exclGen++
}

// RevokedRotations reports how many cached channel keys were invalidated
// because a wrapped member was revoked; each invalidation forces a fresh
// epoch on that channel's next submission.
func (e *Encrypt) RevokedRotations() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.revokedRotations
}

// effectiveMembers drops excluded (revoked) identities from the channel
// member set. The common no-revocations case returns the input map
// unchanged, alloc-free.
func (e *Encrypt) effectiveMembers(members map[string]dcrypto.PublicKey) map[string]dcrypto.PublicKey {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.effectiveMembersLocked(members)
}

// effectiveMembersLocked is effectiveMembers with the lock already held.
func (e *Encrypt) effectiveMembersLocked(members map[string]dcrypto.PublicKey) map[string]dcrypto.PublicKey {
	if len(e.excluded) == 0 {
		return members
	}
	trimmed := members
	copied := false
	for id := range members {
		if !e.excluded[id] {
			continue
		}
		if !copied {
			trimmed = make(map[string]dcrypto.PublicKey, len(members))
			for mid, key := range members {
				trimmed[mid] = key
			}
			copied = true
		}
		delete(trimmed, id)
	}
	return trimmed
}

// Epoch reports the current data-key epoch for a channel (0 when no cached
// key exists yet or the cache is disabled).
func (e *Encrypt) Epoch(channel string) uint64 {
	if e.keyTTL <= 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ck, ok := e.keys[channel]; ok {
		return ck.epoch
	}
	return 0
}

// Rotations reports how many fresh data-key epochs the stage has installed
// across all channels (each channel's first epoch included). Always 0
// without a key cache, where every request uses a throwaway key.
func (e *Encrypt) Rotations() uint64 {
	if e.keyTTL <= 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rotations
}

// memberFingerprint hashes the member set (identities and keys) so a
// cached channel key can detect membership drift.
func memberFingerprint(members map[string]dcrypto.PublicKey) [32]byte {
	ids := make([]string, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([][]byte, 0, 2*len(ids)+1)
	parts = append(parts, []byte("middleware/members/v1"))
	for _, id := range ids {
		parts = append(parts, []byte(id), members[id].Bytes())
	}
	return dcrypto.HashConcat(parts...)
}

// channelKeyFor returns the live cached key for the channel and member
// set, rotating onto a fresh epoch when the cache is empty, expired, or
// wrapped to a different membership. Revoked members are dropped from the
// set under the same lock that guards the cache, and a revocation racing
// the out-of-lock wrap is caught by the exclusion-generation re-check at
// install time — a stale wrap is discarded and redone, never cached, so a
// just-revoked member can never be smuggled into a fresh epoch. The
// expensive per-member wrap runs outside the lock so a rotation on one
// channel never stalls sealing on others; racing rotators are resolved by
// a double-checked install (the loser's freshly wrapped key is discarded).
//
// Over a GenerationalDirectory the steady state is one lock acquisition
// and zero hashing: the member-set fingerprint is cached per (channel,
// directory generation, exclusion generation), so detecting "nothing
// changed" costs two integer compares instead of a sort-and-hash of the
// member set. dirGen is the generation the caller read BEFORE fetching
// members (Handle enforces the order): a concurrent directory update can
// therefore only make members newer than the tag, never older, so a cache
// entry never advertises a stale member set under a fresh generation —
// the next request at the new generation recomputes and converges.
func (e *Encrypt) channelKeyFor(req *Request, channel string, dirGen uint64) (*channelKey, error) {
	var now time.Time
	if e.defaultClock && !req.nowStamp.IsZero() {
		// The session stage already read the shared default clock for this
		// request; its stamp is at most a stage-transit older than a fresh
		// read, which expiry granularity (keyTTL) tolerates.
		now = req.nowStamp
	} else {
		now = e.now()
	}
	// The member snapshot is fetched lazily, only when the fingerprint
	// cache misses: on the steady-state path (fingerprint hit, live key —
	// and also fingerprint hit with an expired key, which reuses the
	// cached member set) the directory is never consulted, saving its
	// read-lock and map hand-off on every seal.
	var (
		members map[string]dcrypto.PublicKey
		fetched bool
	)
	for {
		var (
			fp       [32]byte
			sealable map[string]dcrypto.PublicKey
		)
		e.mu.Lock()
		gen := e.exclGen
		if fe := e.fps[channel]; e.gdir != nil && fe != nil && fe.dirGen == dirGen && fe.exclGen == gen {
			// Fingerprint cache hit: if the channel key matches too, this
			// is the whole fast path — one lock, two compares.
			if ck := e.keys[channel]; ck != nil && ck.members == fe.fp && !now.After(ck.expiresAt) {
				e.mu.Unlock()
				return ck, nil
			}
			fp, sealable = fe.fp, fe.members
			e.mu.Unlock()
		} else {
			if !fetched {
				// Cache miss and no snapshot in hand: drop the lock, fetch,
				// and re-enter. dirGen was read before this fetch (Handle
				// reads it before calling), so the snapshot can only be
				// newer than the tag — the same ordering invariant the
				// eager fetch upheld.
				e.mu.Unlock()
				m, err := e.dir.MemberKeys(channel)
				if err != nil {
					return nil, err
				}
				members, fetched = m, true
				continue
			}
			// Snapshot the exclusion state, then fingerprint outside the
			// lock: the O(n log n) sort-and-hash of the member set must not
			// sit in the critical section every seal on every channel
			// shares. The generation re-checks below invalidate the
			// snapshot if a revocation lands meanwhile.
			sealable = e.effectiveMembersLocked(members)
			e.mu.Unlock()
			fp = memberFingerprint(sealable)
			e.mu.Lock()
			if e.exclGen != gen {
				e.mu.Unlock()
				continue
			}
			if e.gdir != nil {
				e.fps[channel] = &fpEntry{dirGen: dirGen, exclGen: gen, fp: fp, members: sealable}
			}
			if ck := e.keys[channel]; ck != nil && ck.members == fp && !now.After(ck.expiresAt) {
				e.mu.Unlock()
				return ck, nil
			}
			e.mu.Unlock()
		}

		// The cache is cold, expired, or wrapped to a different member
		// set: a rotation is due. Single-flight it per channel — only the
		// first arrival performs the O(members) wrap; everyone else waits
		// for the install and re-reads the cache, which is the difference
		// between one wrap and hundreds when an edge full of connections
		// hits a cold channel at once.
		e.mu.Lock()
		if wait := e.rotating[channel]; wait != nil {
			e.mu.Unlock()
			<-wait
			continue
		}
		done := make(chan struct{})
		e.rotating[channel] = done
		e.mu.Unlock()

		ck, retry, err := e.wrapAndInstall(channel, gen, fp, sealable, now)
		e.mu.Lock()
		delete(e.rotating, channel)
		e.mu.Unlock()
		close(done)
		if err != nil {
			return nil, err
		}
		if retry {
			continue
		}
		return ck, nil
	}
}

// wrapAndInstall generates a fresh data key, wraps it for every sealable
// member, and installs the new epoch, holding the single-flight slot its
// caller registered. retry is true when a revocation raced the wrap (the
// exclusion generation moved past gen): the snapshot may include a
// just-revoked member, so the caller must re-snapshot and try again.
func (e *Encrypt) wrapAndInstall(channel string, gen uint64, fp [32]byte, sealable map[string]dcrypto.PublicKey, now time.Time) (*channelKey, bool, error) {
	dataKey, err := dcrypto.NewSymmetricKey()
	if err != nil {
		return nil, false, fmt.Errorf("middleware: data key: %w", err)
	}
	ad := e.adFor(channel)
	wrapped := make(map[string]dcrypto.HybridCiphertext, len(sealable))
	ids := make([]string, 0, len(sealable))
	for id, pub := range sealable {
		w, err := dcrypto.EncryptHybrid(pub, dataKey, ad)
		if err != nil {
			return nil, false, fmt.Errorf("middleware: wrap key for %s: %w", id, err)
		}
		wrapped[id] = w
		ids = append(ids, id)
	}
	sort.Strings(ids)
	aead, err := dcrypto.NewAEAD(dataKey)
	if err != nil {
		return nil, false, fmt.Errorf("middleware: data key aead: %w", err)
	}
	var keySection []byte
	if e.binary {
		keySection = encodeEnvelopeKeys(wrapped, ids)
	}

	e.mu.Lock()
	if e.exclGen != gen {
		// A revocation landed while we wrapped: our member snapshot may
		// include the newly revoked identity. Re-snapshot and re-wrap.
		e.mu.Unlock()
		return nil, true, nil
	}
	if ck := e.keys[channel]; ck != nil && ck.members == fp && !now.After(ck.expiresAt) {
		e.mu.Unlock()
		return ck, false, nil
	}
	e.epochs[channel]++
	e.rotations++
	ck := &channelKey{
		epoch:      e.epochs[channel],
		dataKey:    dataKey,
		aead:       aead,
		ad:         ad,
		wrapped:    wrapped,
		ids:        ids,
		members:    fp,
		expiresAt:  now.Add(e.keyTTL),
		keySection: keySection,
	}
	e.keys[channel] = ck
	e.mu.Unlock()
	return ck, false, nil
}

// jsonBufPool recycles the staging buffers of JSON envelope marshalling:
// the encoder writes into a pooled buffer and only the exactly-sized final
// payload is allocated fresh (it outlives the request as the transaction
// payload, so it cannot itself be pooled).
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// marshalEnvelope encodes the sealed envelope in the stage's codec.
// sortedIDs orders the binary key section without a per-request sort; it
// may be nil on the fresh-key (non-cached) path. keySection, when
// non-nil, is the epoch's precomputed binary key table and shortcuts the
// per-request O(members) re-encoding to a single copy.
func (e *Encrypt) marshalEnvelope(env *Envelope, sortedIDs []string, keySection []byte) ([]byte, error) {
	if e.binary {
		if keySection != nil {
			return encodeEnvelopeBinaryKeyed(env, keySection), nil
		}
		return encodeEnvelopeBinary(env, sortedIDs), nil
	}
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(env); err != nil {
		jsonBufPool.Put(buf)
		return nil, fmt.Errorf("middleware: marshal envelope: %w", err)
	}
	staged := buf.Bytes()
	staged = staged[:len(staged)-1] // Encode appends a newline Marshal would not
	out := make([]byte, len(staged))
	copy(out, staged)
	jsonBufPool.Put(buf)
	return out, nil
}

// Handle implements Stage.
func (e *Encrypt) Handle(ctx context.Context, req *Request, next Handler) error {
	if !req.authenticated {
		return ErrNotAuthenticated
	}
	// The directory generation is read BEFORE the member fetch: if an
	// update lands in between, the snapshot is newer than the tag, which
	// is safe (the fingerprint cache can run a request behind, never seal
	// to a member set older than its recorded generation).
	var dirGen uint64
	if e.gdir != nil {
		dirGen = e.gdir.Generation()
	}
	if e.keyTTL > 0 {
		// channelKeyFor applies the revocation exclusions itself, under the
		// cache lock, so a racing RevokeMember cannot poison a fresh epoch.
		// It also fetches the member snapshot itself, and only on a cache
		// miss: the steady-state fast path never consults the directory.
		ck, err := e.channelKeyFor(req, req.Channel, dirGen)
		if err != nil {
			return err
		}
		if e.deferSeal {
			// Deferred group seal: tag the request with its epoch key and
			// leave the payload plaintext — the batch stage seals the whole
			// (channel, epoch) group with one AEAD invocation. The request
			// is marked encrypted because its payload is guaranteed sealed
			// before anything downstream of batch (the terminal handler)
			// sees it; the plaintext never leaves the process. This early
			// return is also why the Envelope below is declared per branch:
			// a single declaration above the branch would heap-allocate it
			// on the deferred path too, where it is never used.
			req.groupKey = ck
			req.encrypted = true
			return next(ctx, req)
		}
		ct, err := dcrypto.EncryptWithAEAD(ck.aead, req.Payload, ck.ad)
		if err != nil {
			return fmt.Errorf("middleware: seal payload: %w", err)
		}
		env := Envelope{
			Scheme:     EnvelopeScheme,
			Channel:    req.Channel,
			Epoch:      ck.epoch,
			Ciphertext: ct,
			Keys:       ck.wrapped,
		}
		b, err := e.marshalEnvelope(&env, ck.ids, ck.keySection)
		if err != nil {
			return err
		}
		return e.sealed(ctx, req, b, next)
	}
	members, err := e.dir.MemberKeys(req.Channel)
	if err != nil {
		return err
	}
	env, err := sealEnvelope(req.Channel, req.Payload, e.effectiveMembers(members), e.adFor(req.Channel))
	if err != nil {
		return err
	}
	b, err := e.marshalEnvelope(&env, nil, nil)
	if err != nil {
		return err
	}
	return e.sealed(ctx, req, b, next)
}

// sealed installs the marshalled envelope as the request payload and passes
// it downstream — the common tail of Handle's immediate-seal paths.
func (e *Encrypt) sealed(ctx context.Context, req *Request, payload []byte, next Handler) error {
	req.Payload = payload
	req.encrypted = true
	if req.Meta == nil {
		req.Meta = make(map[string]string)
	}
	req.Meta["envelope"] = EnvelopeScheme
	return next(ctx, req)
}
