package middleware

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"dltprivacy/internal/dcrypto"
)

// GroupEnvelopeScheme identifies the group envelope the batch stage's
// group-seal mode produces: N same-(channel, epoch) payloads concatenated
// into one length-prefixed frame and sealed with a single AEAD invocation
// under the epoch's cached data key, sharing that epoch's wrapped-key
// table. One nonce, one GCM pass, one tag, and one key section for the
// whole group — the per-transaction seal cost amortizes to 1/N.
const GroupEnvelopeScheme = "hybrid-aes256gcm/group/v1"

// BatchPrincipal is the creator recorded on released group transactions.
// Like AggregatePrincipal it marks a synthetic release vehicle: the member
// submissions were authenticated individually at admission, and their
// payloads travel inside the sealed group frame.
const BatchPrincipal = "batched"

// MetaBatch records the scheme and member count on a released group
// transaction.
const MetaBatch = "batch"

// GroupEnvelope is N encrypted payloads plus the data key wrapped per
// channel member. The ciphertext is one AEAD seal over a length-prefixed
// concatenation of the member payloads (see dcrypto.EncryptSegmentsWithAEAD);
// the key table is the same per-epoch table single envelopes of that epoch
// carry, so a recipient unwraps once and opens every member payload.
type GroupEnvelope struct {
	Scheme     string                              `json:"scheme"`
	Channel    string                              `json:"channel"`
	Epoch      uint64                              `json:"epoch,omitempty"`
	Count      uint64                              `json:"count"`
	Ciphertext []byte                              `json:"ciphertext"`
	Keys       map[string]dcrypto.HybridCiphertext `json:"keys"`
}

// groupEnvelopeAD binds group ciphertexts to their channel under a domain
// separate from single envelopes: a group frame re-framed as a single
// envelope (or vice versa) under the same epoch key fails authentication
// instead of decrypting to confusing bytes. The wrapped-key table keeps the
// single-envelope domain — it is the same table, wrapped once per epoch.
func groupEnvelopeAD(channel string) []byte {
	return []byte("middleware/group-envelope/v1/" + channel)
}

// OpenGroupEnvelope recovers every member payload for a recipient holding
// its private key. The returned slices are the original submission
// payloads, byte-identical to what each member would have carried in its
// own single envelope.
func OpenGroupEnvelope(genv GroupEnvelope, member string, key *dcrypto.PrivateKey) ([][]byte, error) {
	if genv.Scheme != GroupEnvelopeScheme {
		return nil, fmt.Errorf("middleware: unsupported group envelope scheme %q", genv.Scheme)
	}
	wrapped, ok := genv.Keys[member]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRecipient, member)
	}
	// The key table is shared with the epoch's single envelopes, so the
	// unwrap uses the single-envelope domain; only the group ciphertext
	// lives in the group domain.
	dataKey, err := dcrypto.DecryptHybrid(key, wrapped, envelopeAD(genv.Channel))
	if err != nil {
		return nil, fmt.Errorf("middleware: unwrap key: %w", err)
	}
	segments, err := dcrypto.DecryptSegments(dataKey, genv.Ciphertext, groupEnvelopeAD(genv.Channel))
	if err != nil {
		return nil, fmt.Errorf("middleware: open group: %w", err)
	}
	if uint64(len(segments)) != genv.Count {
		return nil, fmt.Errorf("middleware: group envelope declares %d members, frame holds %d", genv.Count, len(segments))
	}
	return segments, nil
}

// ParseGroupEnvelope decodes a marshalled group envelope (the payload of a
// released group transaction), in either wire codec: binary frames are
// sniffed by their magic byte, everything else parses as JSON.
func ParseGroupEnvelope(b []byte) (GroupEnvelope, error) {
	if isBinaryFrame(b) {
		genv, err := decodeGroupEnvelopeBinary(b)
		if err != nil {
			return GroupEnvelope{}, fmt.Errorf("middleware: parse group envelope: %w", err)
		}
		return genv, nil
	}
	var genv GroupEnvelope
	if err := json.Unmarshal(b, &genv); err != nil {
		return GroupEnvelope{}, fmt.Errorf("middleware: parse group envelope: %w", err)
	}
	return genv, nil
}

// deferGroupSeal switches the encrypt stage into deferred group-seal mode:
// Handle resolves and tags the request with the channel's epoch key but
// leaves the payload plaintext, and the batch stage seals whole groups
// under the tagged key with one AEAD invocation. Wired by Config.Build when
// the batch stage runs groupseal=on; requires the epoch key cache
// (keyttl > 0), which Build validates.
func (e *Encrypt) deferGroupSeal() { e.deferSeal = true }

// sealGroup seals the member payloads of one (channel, epoch) group with a
// single AEAD invocation under the epoch key and marshals the group
// envelope in the stage's codec. The binary path splices the epoch's
// precomputed key section, so the per-group cost beyond the one GCM pass is
// a header and a copy.
func (e *Encrypt) sealGroup(ck *channelKey, channel string, payloads [][]byte) ([]byte, error) {
	if e.binary {
		// The binary path fuses seal and encode: the AEAD writes the group
		// ciphertext directly into the frame allocation.
		return encodeGroupEnvelopeBinarySealed(ck, channel, payloads, e.groupADFor(channel))
	}
	ct, err := dcrypto.EncryptSegmentsWithAEAD(ck.aead, payloads, e.groupADFor(channel))
	if err != nil {
		return nil, fmt.Errorf("middleware: seal group: %w", err)
	}
	genv := GroupEnvelope{
		Scheme:     GroupEnvelopeScheme,
		Channel:    channel,
		Epoch:      ck.epoch,
		Count:      uint64(len(payloads)),
		Ciphertext: ct,
		Keys:       ck.wrapped,
	}
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(&genv); err != nil {
		jsonBufPool.Put(buf)
		return nil, fmt.Errorf("middleware: marshal group envelope: %w", err)
	}
	staged := buf.Bytes()
	staged = staged[:len(staged)-1] // Encode appends a newline Marshal would not
	out := make([]byte, len(staged))
	copy(out, staged)
	jsonBufPool.Put(buf)
	return out, nil
}

// groupADFor returns the channel's group associated data, computed once per
// channel like adFor.
func (e *Encrypt) groupADFor(channel string) []byte {
	if v, ok := e.groupADCache.Load(channel); ok {
		return v.([]byte)
	}
	ad := groupEnvelopeAD(channel)
	e.groupADCache.Store(channel, ad)
	return ad
}

// errNoGroupKey is returned when the batch stage runs groupseal=on but a
// request arrives without a deferred epoch key — only possible when the
// chain was assembled by hand around Config.Build's wiring.
var errNoGroupKey = errors.New("middleware: batch groupseal: request carries no deferred group key (encrypt stage not in deferred mode?)")
