package middleware

import (
	"fmt"

	"dltprivacy/internal/pki"
)

// Revoker is the revocation plane the pipeline consumes: a monotonic
// version for cheap hot-path freshness probes, an exact delta read, and a
// point query. pki.CA implements it; deployments fronting an external CA
// adapt their CRL/OCSP source to this interface.
type Revoker interface {
	// RevocationVersion returns the current revocation epoch. It is called
	// on the session hot path (revokecheck=resolve), so implementations
	// must make it cheap — an atomic load, not a lock or a network call.
	RevocationVersion() uint64
	// RevokedSince returns the revocations after the given epoch, in epoch
	// order, plus the current version. Applying the delta and remembering
	// the version yields exactly-once processing.
	RevokedSince(epoch uint64) ([]pki.Revocation, uint64)
	// IsRevoked reports whether a certificate serial has been revoked.
	IsRevoked(serial uint64) bool
}

// RevocationSource is a Revoker that can push: the gateway subscribes at
// construction so a Revoke propagates into session eviction and key-epoch
// rotation immediately, without waiting for the next sweep interval or an
// admin notification. OnRevoke returns a cancel func detaching the
// subscription; Gateway.Close calls it, so a gateway that does not outlive
// its revocation source must be closed. pki.CA implements this interface.
type RevocationSource interface {
	Revoker
	OnRevoke(func(pki.Revocation)) (cancel func())
}

// RevokeCheckMode selects how the session manager consults the revocation
// plane.
type RevokeCheckMode int

// Revocation check modes.
const (
	// RevokeCheckOff disables revocation checks: a revoked certificate's
	// session lives until TTL/idle expiry (the pre-revocation-plane
	// behavior).
	RevokeCheckOff RevokeCheckMode = iota
	// RevokeCheckResolve probes the revoker's version on every token
	// resolution and applies the delta when it moved: the tightest
	// guarantee, at the cost of one atomic load per request.
	RevokeCheckResolve
	// RevokeCheckSweep applies the delta periodically (the sweep interval)
	// and on push/admin notification, keeping the resolve path free of
	// revoker calls: a bounded staleness window instead of a per-request
	// probe.
	RevokeCheckSweep
)

// String returns the config spelling of the mode.
func (m RevokeCheckMode) String() string {
	switch m {
	case RevokeCheckOff:
		return "off"
	case RevokeCheckResolve:
		return "resolve"
	case RevokeCheckSweep:
		return "sweep"
	default:
		return fmt.Sprintf("RevokeCheckMode(%d)", int(m))
	}
}

// ParseRevokeCheckMode parses the config spelling of a mode.
func ParseRevokeCheckMode(s string) (RevokeCheckMode, error) {
	switch s {
	case "off":
		return RevokeCheckOff, nil
	case "resolve":
		return RevokeCheckResolve, nil
	case "sweep":
		return RevokeCheckSweep, nil
	default:
		return RevokeCheckOff, fmt.Errorf("unknown revocation check mode %q (want off, resolve, or sweep)", s)
	}
}
