package middleware

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// RateLimit is a per-principal token bucket: each principal accrues Rate
// tokens per second up to Burst, and every submission spends one. A
// principal that exhausts its bucket gets ErrRateLimited without the
// request travelling further down the chain.
type RateLimit struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimit creates the rate-limit stage. rate is tokens per second,
// burst the bucket capacity (burst >= 1).
func NewRateLimit(rate, burst float64, now func() time.Time) (*RateLimit, error) {
	if rate <= 0 || burst < 1 {
		return nil, fmt.Errorf("middleware: rate limit needs rate > 0 and burst >= 1, got rate=%g burst=%g", rate, burst)
	}
	if now == nil {
		now = time.Now
	}
	return &RateLimit{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}, nil
}

// Name implements Stage.
func (r *RateLimit) Name() string { return StageRateLimit }

// Handle implements Stage.
func (r *RateLimit) Handle(ctx context.Context, req *Request, next Handler) error {
	if !r.allow(req.Principal) {
		return fmt.Errorf("%w: principal %s", ErrRateLimited, req.Principal)
	}
	return next(ctx, req)
}

func (r *RateLimit) allow(principal string) bool {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[principal]
	if !ok {
		b = &bucket{tokens: r.burst, last: t}
		r.buckets[principal] = b
	}
	elapsed := t.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = t
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
