package middleware

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// RateLimit is a per-principal token bucket: each principal accrues Rate
// tokens per second up to Burst, and every submission spends one. A
// principal that exhausts its bucket gets ErrRateLimited without the
// request travelling further down the chain.
//
// Buckets idle long enough to have refilled completely are evicted (a full
// bucket is indistinguishable from a fresh one), so the table tracks the
// active principal set instead of growing one entry per principal forever.
type RateLimit struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
	sweepAt time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimit creates the rate-limit stage. rate is tokens per second,
// burst the bucket capacity (burst >= 1).
func NewRateLimit(rate, burst float64, now func() time.Time) (*RateLimit, error) {
	if rate <= 0 || burst < 1 {
		return nil, fmt.Errorf("middleware: rate limit needs rate > 0 and burst >= 1, got rate=%g burst=%g", rate, burst)
	}
	if now == nil {
		now = time.Now
	}
	return &RateLimit{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}, nil
}

// Name implements Stage.
func (r *RateLimit) Name() string { return StageRateLimit }

// Handle implements Stage.
func (r *RateLimit) Handle(ctx context.Context, req *Request, next Handler) error {
	if !r.allow(req.Principal) {
		return fmt.Errorf("%w: principal %s", ErrRateLimited, req.Principal)
	}
	return next(ctx, req)
}

// Buckets reports the number of tracked principal buckets.
func (r *RateLimit) Buckets() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}

// refillWindow is how long a drained bucket takes to fill back to burst —
// past that idle time the bucket carries no information and is evictable.
func (r *RateLimit) refillWindow() time.Duration {
	secs := r.burst / r.rate
	if secs > float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(secs * float64(time.Second))
}

// sweepLocked drops buckets idle past the refill window. Amortized: it
// runs at most once per window, so steady traffic pays O(1) per request.
func (r *RateLimit) sweepLocked(t time.Time) {
	window := r.refillWindow()
	if !r.sweepAt.IsZero() && t.Sub(r.sweepAt) < window {
		return
	}
	r.sweepAt = t
	for principal, b := range r.buckets {
		if t.Sub(b.last) >= window {
			delete(r.buckets, principal)
		}
	}
}

func (r *RateLimit) allow(principal string) bool {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(t)
	b, ok := r.buckets[principal]
	if !ok {
		b = &bucket{tokens: r.burst, last: t}
		r.buckets[principal] = b
	}
	elapsed := t.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = t
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
