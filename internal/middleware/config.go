package middleware

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/zkp"
)

// Built-in stage names, the core vocabulary of Config. The full vocabulary
// is the stage registry (see registry.go and RegisteredStages): the privacy
// stages zkproof, anoncred, attest, and aggregate register themselves the
// same way and compose under the same validation engine.
const (
	StageSession   = "session"
	StageAuthn     = "authn"
	StageEncrypt   = "encrypt"
	StageAudit     = "audit"
	StageRateLimit = "ratelimit"
	StageRetry     = "retry"
	StageBreaker   = "breaker"
	StageBatch     = "batch"
)

// ErrBadConfig is returned (wrapped) for every configuration rejected at
// construction time.
var ErrBadConfig = errors.New("middleware: invalid pipeline configuration")

// StageConfig names one stage and its parameters. Parameter values are
// strings so configurations can come verbatim from flags or files:
//
//	session    — ttl (duration, default 10m), idle (duration, default 2m),
//	             maxperprincipal (default 0 = unlimited; > 0 caps live
//	             sessions per principal, evicting the oldest on overflow),
//	             reqauth (sig|mac, default sig; mac authenticates
//	             steady-state session requests with a per-session HMAC key
//	             handed out in the grant instead of a per-request ECDSA
//	             signature), revokecheck (off|resolve|sweep, default off;
//	             anything but off requires Env.Revoker), revokesweep
//	             (duration, default 30s; the sweep-mode interval, only
//	             valid with revokecheck=sweep)
//	authn      — (no parameters)
//	encrypt    — keyttl (duration, default 0 = fresh data key per request;
//	             > 0 caches the wrapped channel key per epoch; members come
//	             from Env.Directory)
//	audit      — observer (default "gateway"), auditasync (ring depth,
//	             default 0 = record synchronously; > 0 moves leakage-log
//	             recording onto a bounded async ring off the submit path,
//	             shedding — counted — when full)
//	ratelimit  — rate (tokens/sec, default 100), burst (default 10)
//	retry      — attempts (default 3), backoff (duration, default 5ms)
//	breaker    — threshold (default 5), cooldown (duration, default 1s)
//	batch      — size (default 8), groupseal (on|off, default off; on
//	             buckets buffered submissions per (channel, epoch) and
//	             seals each group with one AEAD invocation under the
//	             encrypt stage's cached epoch key — requires encrypt with
//	             keyttl > 0)
//	zkproof    — mode (only "range"), bits (range width, default 32),
//	             channel (gate only this channel; default all)
//	anoncred   — mode (only "present"), attrs ("+"-separated attribute
//	             set), scope (presentation context), require (on|off,
//	             default on)
//	attest     — mode (only "tee"), bind (input|output|off, default input)
//	aggregate  — mode (only "paillier"), size (group size, default 8)
//
// Parameters outside a stage's declared vocabulary are rejected at
// validation time: a typoed knob fails construction, it is never silently
// ignored.
type StageConfig struct {
	Name   string
	Params map[string]string
}

// Config is a declarative pipeline: an ordered stage list assembled and
// validated by Build, plus the ordering topology the gateway fronts.
type Config struct {
	Stages []StageConfig

	// Shards declares the ordering topology the gateway expects: 0 accepts
	// any backend (unsharded deployments), > 0 requires the gateway's
	// ordering backend to be an ordering.ShardedBackend with exactly that
	// many shards. Like stage parameters, a mismatch fails at construction,
	// before any traffic.
	Shards int
	// ShardPins routes the named channels to explicit shard indices,
	// overriding consistent hashing — the knob for hot channels that should
	// own a shard. Requires Shards > 0; every index must be in [0, Shards).
	ShardPins map[string]int

	// Codec selects the gateway's wire codec: "json" (or empty, the
	// default) keeps every wire structure JSON-encoded; "binary" enables
	// the length-prefixed binary v2 framing for submissions and envelopes.
	// A binary gateway still accepts JSON submissions (the two framings
	// are sniffed apart by their first byte) and clients negotiate per
	// session via SessionHello.Codec, so mixed populations keep working;
	// JSON-only gateways reject binary frames.
	Codec string

	// Trace configures sampled request tracing on the gateway: "" or
	// "off" disables it, a positive integer N samples one in every N
	// submissions into a bounded in-memory ring served at /tracez.
	// Requests arriving with a wire-carried trace ID are always recorded
	// regardless of the sample rate. The unsampled path costs one atomic
	// increment; tracing off costs one nil check.
	Trace string

	// TimingSample configures sampled per-stage timing: "" or "full"
	// (the default) times every request — exact StageStats sums and
	// latency histograms. A positive integer N times one in every N
	// requests: sampled-out requests skip the two monotonic-clock reads
	// and three atomic updates per stage frame, while per-stage call and
	// error counters stay exact and traced requests are always fully
	// timed. The knob for gateways chasing sub-microsecond amortized
	// submit costs, where the instrumentation reads are a measurable
	// fraction of the budget; see StageStats for the sampled semantics.
	TimingSample string
}

// Env carries the shared dependencies stages draw on. Zero fields default
// where possible; stages that need a missing dependency fail Build.
type Env struct {
	// CAKey is the pinned consortium CA verification key (authn, session).
	CAKey dcrypto.PublicKey
	// Sessions overrides the session stage's manager; when nil the stage
	// builds its own from CAKey and the ttl/idle parameters.
	Sessions *SessionManager
	// Revoker is the revocation plane (session revocation checks, envelope
	// member exclusion, the gateway's revocation.notify topic). Required
	// when the session stage sets revokecheck to anything but "off". A
	// RevocationSource here is subscribed by the gateway so revocations
	// propagate on push.
	Revoker Revoker
	// Directory resolves channel membership keys (encrypt).
	Directory Directory
	// Log receives leakage observations (audit).
	Log *audit.Log
	// Now overrides the time source (ratelimit, breaker, authn); tests
	// inject a fake clock here.
	Now func() time.Time
	// Sleep overrides the backoff sleeper (retry).
	Sleep func(time.Duration)

	// AnonCredKey is the anonymous-credential issuer's attribute
	// verification key (anoncred stage): presentations are checked
	// against it.
	AnonCredKey zkp.Point
	// Attestation pins the TEE trust anchors the attest stage verifies
	// against: the manufacturer key and the expected program measurement.
	Attestation *AttestationPolicy
	// Aggregator is the collector's Paillier public key (aggregate
	// stage): submissions are homomorphically combined under it.
	Aggregator *paillier.PublicKey
}

// params is the shared, registry-level parameter validator every stage
// constructor draws on: typed accessors with error accumulation. Messages
// carry no stage prefix — the build engine wraps every parameter error
// uniformly as "stage <name>: <err>" under ErrBadConfig, so each validator
// exists exactly once instead of being re-spelled per stage.
type params struct {
	m   map[string]string
	err error
}

func (p *params) str(key, def string) string {
	v, ok := p.m[key]
	if !ok || v == "" {
		return def
	}
	return v
}

func (p *params) intVal(key string, def int) int {
	v, ok := p.m[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("param %s=%q is not an integer", key, v)
	}
	return n
}

func (p *params) floatVal(key string, def float64) float64 {
	v, ok := p.m[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("param %s=%q is not a number", key, v)
	}
	return f
}

func (p *params) duration(key string, def time.Duration) time.Duration {
	v, ok := p.m[key]
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("param %s=%q is not a duration", key, v)
	}
	return d
}

// enum returns the value of key constrained to the allowed set, recording
// an error (and returning the default) on anything else.
func (p *params) enum(key, def string, allowed ...string) string {
	v := p.str(key, def)
	for _, a := range allowed {
		if v == a {
			return v
		}
	}
	if p.err == nil {
		p.err = fmt.Errorf("param %s=%q must be one of %s", key, p.m[key], strings.Join(allowed, "|"))
	}
	return def
}

// Build assembles and validates the configured chain around the terminal
// handler. Every misconfiguration — unknown stage, duplicate stage, bad
// parameter, ordering violation — is reported here, before any traffic.
func (c Config) Build(env Env, terminal Handler) (*Chain, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	stages := make([]Stage, 0, len(c.Stages))
	for _, sc := range c.Stages {
		s, err := buildStage(sc, env)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		// The gateway codec reaches into the encrypt stage: a binary
		// gateway seals envelopes in the binary framing, dropping the JSON
		// marshal from the per-request path.
		if e, ok := s.(*Encrypt); ok && c.Codec == CodecBinary {
			e.useBinaryEnvelopes()
		}
		stages = append(stages, s)
	}
	// Group seal wires the batch stage to the encrypt stage's epoch key
	// cache: encrypt defers the per-request seal (tagging requests with
	// their epoch key) and batch seals whole (channel, epoch) groups with
	// one AEAD invocation. The wiring is validated here, before traffic —
	// a groupseal batch without a cached-key encrypt stage has no epoch
	// key table to amortize.
	var groupBatch *Batch
	for i, s := range stages {
		if b, ok := s.(*Batch); ok && c.Stages[i].Params["groupseal"] == "on" {
			groupBatch = b
		}
	}
	if groupBatch != nil {
		var enc *Encrypt
		for _, s := range stages {
			if e, ok := s.(*Encrypt); ok {
				enc = e
			}
		}
		if enc == nil {
			return nil, fmt.Errorf("%w: batch groupseal=on needs an encrypt stage upstream", ErrBadConfig)
		}
		if enc.keyTTL <= 0 {
			return nil, fmt.Errorf("%w: batch groupseal=on needs encrypt keyttl > 0 (the epoch key cache the group seal amortizes)", ErrBadConfig)
		}
		enc.deferGroupSeal()
		groupBatch.bindEncrypt(enc)
	}
	chain := NewChain(terminal, stages...)
	if every, err := c.timingEvery(); err != nil {
		return nil, err
	} else if every > 1 {
		chain.setTimingSample(every)
	}
	return chain, nil
}

// validate is the generic ordering engine: it walks the configured stages
// and enforces each one's registered constraints — conflicts, pairwise
// precedence (after/before), follows-one-of requirements, and terminal
// placement — instead of a hand-maintained rule chain. The operator-facing
// rejection messages are exactly the ones the pre-registry validator
// produced.
func (c Config) validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("%w: empty stage list", ErrBadConfig)
	}
	pos := make(map[string]int, len(c.Stages))
	for i, sc := range c.Stages {
		def := lookupStage(sc.Name)
		if def == nil {
			return fmt.Errorf("%w: unknown stage %q", ErrBadConfig, sc.Name)
		}
		if prev, dup := pos[sc.Name]; dup {
			return fmt.Errorf("%w: stage %q configured twice (positions %d and %d)", ErrBadConfig, sc.Name, prev, i)
		}
		pos[sc.Name] = i
		for key := range sc.Params {
			if !def.allowsParam(key) {
				return fmt.Errorf("%w: stage %s: unknown param %q (known params: %s)",
					ErrBadConfig, sc.Name, key, strings.Join(def.paramNames(), ", "))
			}
		}
	}
	// Conflicts first: a mutually-exclusive pair is a clearer diagnosis
	// than whichever ordering rule the pair happens to violate too.
	for _, sc := range c.Stages {
		for _, cf := range lookupStage(sc.Name).conflicts {
			if _, present := pos[cf.other]; present {
				return fmt.Errorf("%w: %q conflicts with %q: %s", ErrBadConfig, sc.Name, cf.other, cf.why)
			}
		}
	}
	for i, sc := range c.Stages {
		def := lookupStage(sc.Name)
		for _, r := range def.after {
			if oi, present := pos[r.other]; present && oi > i {
				return fmt.Errorf("%w: %q must precede %q: %s", ErrBadConfig, r.other, sc.Name, r.why)
			}
		}
		for _, r := range def.before {
			if oi, present := pos[r.other]; present && oi < i {
				return fmt.Errorf("%w: %q must precede %q: %s", ErrBadConfig, sc.Name, r.other, r.why)
			}
		}
		if len(def.follows) > 0 && !followSatisfied(c.Stages[:i], def.follows) {
			return fmt.Errorf("%w: %q needs %s before it: %s",
				ErrBadConfig, sc.Name, quotedList(def.follows, " or "), def.followWhy)
		}
	}
	for i, sc := range c.Stages {
		if def := lookupStage(sc.Name); def.terminal && i != len(c.Stages)-1 {
			return fmt.Errorf("%w: %q must be the final stage (%s)", ErrBadConfig, sc.Name, def.terminalWhy)
		}
	}
	switch c.Codec {
	case "", CodecJSON, CodecBinary:
	default:
		return fmt.Errorf("%w: unknown codec %q (want %s or %s)", ErrBadConfig, c.Codec, CodecJSON, CodecBinary)
	}
	if _, err := c.traceEvery(); err != nil {
		return err
	}
	if _, err := c.timingEvery(); err != nil {
		return err
	}
	return c.validateSharding()
}

// timingEvery parses the TimingSample knob into a 1-in-N timing sample
// rate (0 = time every request).
func (c Config) timingEvery() (int, error) {
	switch c.TimingSample {
	case "", "full":
		return 0, nil
	}
	n, err := strconv.Atoi(c.TimingSample)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("%w: timingsample must be \"full\" or a positive sample divisor, got %q", ErrBadConfig, c.TimingSample)
	}
	return n, nil
}

// traceEvery parses the Trace knob into a 1-in-N sample rate (0 = off).
func (c Config) traceEvery() (int, error) {
	switch c.Trace {
	case "", "off":
		return 0, nil
	}
	n, err := strconv.Atoi(c.Trace)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("%w: trace must be \"off\" or a positive sample divisor, got %q", ErrBadConfig, c.Trace)
	}
	return n, nil
}

// validateSharding enforces the ordering-topology knobs: a negative shard
// count is meaningless, and every pin must name a shard inside the topology.
func (c Config) validateSharding() error {
	if c.Shards < 0 {
		return fmt.Errorf("%w: shards must be >= 0, got %d", ErrBadConfig, c.Shards)
	}
	if len(c.ShardPins) > 0 && c.Shards == 0 {
		return fmt.Errorf("%w: shard pins need a sharded topology (shards > 0)", ErrBadConfig)
	}
	for channel, shard := range c.ShardPins {
		if shard < 0 || shard >= c.Shards {
			return fmt.Errorf("%w: pin %q -> shard %d outside [0, %d)", ErrBadConfig, channel, shard, c.Shards)
		}
	}
	return nil
}

// followSatisfied reports whether any earlier stage fills one of the
// required roles, either by name or through its countsAs declaration (an
// anoncred stage counts as authn: it authenticates the request).
func followSatisfied(earlier []StageConfig, roles []string) bool {
	for _, sc := range earlier {
		for _, role := range roles {
			if sc.Name == role {
				return true
			}
			if def := lookupStage(sc.Name); def != nil && def.countsAs == role {
				return true
			}
		}
	}
	return false
}

// buildStage instantiates one named stage through its registered
// constructor, wrapping parameter and constructor errors uniformly.
func buildStage(sc StageConfig, env Env) (Stage, error) {
	def := lookupStage(sc.Name)
	if def == nil {
		return nil, fmt.Errorf("unknown stage %q", sc.Name)
	}
	p := &params{m: sc.Params}
	s, err := def.build(p, sc, env)
	if p.err != nil {
		err = p.err
	}
	if err != nil {
		return nil, fmt.Errorf("stage %s: %w", sc.Name, err)
	}
	return s, nil
}
