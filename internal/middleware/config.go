package middleware

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
)

// Built-in stage names, the vocabulary of Config.
const (
	StageSession   = "session"
	StageAuthn     = "authn"
	StageEncrypt   = "encrypt"
	StageAudit     = "audit"
	StageRateLimit = "ratelimit"
	StageRetry     = "retry"
	StageBreaker   = "breaker"
	StageBatch     = "batch"
)

// ErrBadConfig is returned (wrapped) for every configuration rejected at
// construction time.
var ErrBadConfig = errors.New("middleware: invalid pipeline configuration")

// StageConfig names one stage and its parameters. Parameter values are
// strings so configurations can come verbatim from flags or files:
//
//	session    — ttl (duration, default 10m), idle (duration, default 2m),
//	             maxperprincipal (default 0 = unlimited; > 0 caps live
//	             sessions per principal, evicting the oldest on overflow),
//	             reqauth (sig|mac, default sig; mac authenticates
//	             steady-state session requests with a per-session HMAC key
//	             handed out in the grant instead of a per-request ECDSA
//	             signature), revokecheck (off|resolve|sweep, default off;
//	             anything but off requires Env.Revoker), revokesweep
//	             (duration, default 30s; the sweep-mode interval, only
//	             valid with revokecheck=sweep)
//	authn      — (no parameters)
//	encrypt    — keyttl (duration, default 0 = fresh data key per request;
//	             > 0 caches the wrapped channel key per epoch; members come
//	             from Env.Directory)
//	audit      — observer (default "gateway")
//	ratelimit  — rate (tokens/sec, default 100), burst (default 10)
//	retry      — attempts (default 3), backoff (duration, default 5ms)
//	breaker    — threshold (default 5), cooldown (duration, default 1s)
//	batch      — size (default 8)
type StageConfig struct {
	Name   string
	Params map[string]string
}

// Config is a declarative pipeline: an ordered stage list assembled and
// validated by Build, plus the ordering topology the gateway fronts.
type Config struct {
	Stages []StageConfig

	// Shards declares the ordering topology the gateway expects: 0 accepts
	// any backend (unsharded deployments), > 0 requires the gateway's
	// ordering backend to be an ordering.ShardedBackend with exactly that
	// many shards. Like stage parameters, a mismatch fails at construction,
	// before any traffic.
	Shards int
	// ShardPins routes the named channels to explicit shard indices,
	// overriding consistent hashing — the knob for hot channels that should
	// own a shard. Requires Shards > 0; every index must be in [0, Shards).
	ShardPins map[string]int

	// Codec selects the gateway's wire codec: "json" (or empty, the
	// default) keeps every wire structure JSON-encoded; "binary" enables
	// the length-prefixed binary v2 framing for submissions and envelopes.
	// A binary gateway still accepts JSON submissions (the two framings
	// are sniffed apart by their first byte) and clients negotiate per
	// session via SessionHello.Codec, so mixed populations keep working;
	// JSON-only gateways reject binary frames.
	Codec string

	// Trace configures sampled request tracing on the gateway: "" or
	// "off" disables it, a positive integer N samples one in every N
	// submissions into a bounded in-memory ring served at /tracez.
	// Requests arriving with a wire-carried trace ID are always recorded
	// regardless of the sample rate. The unsampled path costs one atomic
	// increment; tracing off costs one nil check.
	Trace string
}

// Env carries the shared dependencies stages draw on. Zero fields default
// where possible; stages that need a missing dependency fail Build.
type Env struct {
	// CAKey is the pinned consortium CA verification key (authn, session).
	CAKey dcrypto.PublicKey
	// Sessions overrides the session stage's manager; when nil the stage
	// builds its own from CAKey and the ttl/idle parameters.
	Sessions *SessionManager
	// Revoker is the revocation plane (session revocation checks, envelope
	// member exclusion, the gateway's revocation.notify topic). Required
	// when the session stage sets revokecheck to anything but "off". A
	// RevocationSource here is subscribed by the gateway so revocations
	// propagate on push.
	Revoker Revoker
	// Directory resolves channel membership keys (encrypt).
	Directory Directory
	// Log receives leakage observations (audit).
	Log *audit.Log
	// Now overrides the time source (ratelimit, breaker, authn); tests
	// inject a fake clock here.
	Now func() time.Time
	// Sleep overrides the backoff sleeper (retry).
	Sleep func(time.Duration)
}

// params wraps per-stage parameter parsing with error accumulation.
type params struct {
	stage string
	m     map[string]string
	err   error
}

func (p *params) str(key, def string) string {
	v, ok := p.m[key]
	if !ok || v == "" {
		return def
	}
	return v
}

func (p *params) intVal(key string, def int) int {
	v, ok := p.m[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("stage %s: param %s=%q is not an integer", p.stage, key, v)
	}
	return n
}

func (p *params) floatVal(key string, def float64) float64 {
	v, ok := p.m[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("stage %s: param %s=%q is not a number", p.stage, key, v)
	}
	return f
}

func (p *params) duration(key string, def time.Duration) time.Duration {
	v, ok := p.m[key]
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("stage %s: param %s=%q is not a duration", p.stage, key, v)
	}
	return d
}

// Build assembles and validates the configured chain around the terminal
// handler. Every misconfiguration — unknown stage, duplicate stage, bad
// parameter, ordering violation — is reported here, before any traffic.
func (c Config) Build(env Env, terminal Handler) (*Chain, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	stages := make([]Stage, 0, len(c.Stages))
	for _, sc := range c.Stages {
		s, err := buildStage(sc, env)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		// The gateway codec reaches into the encrypt stage: a binary
		// gateway seals envelopes in the binary framing, dropping the JSON
		// marshal from the per-request path.
		if e, ok := s.(*Encrypt); ok && c.Codec == CodecBinary {
			e.useBinaryEnvelopes()
		}
		stages = append(stages, s)
	}
	return NewChain(terminal, stages...), nil
}

// validate enforces the ordering rules documented in the package comment.
func (c Config) validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("%w: empty stage list", ErrBadConfig)
	}
	pos := make(map[string]int, len(c.Stages))
	for i, sc := range c.Stages {
		switch sc.Name {
		case StageSession, StageAuthn, StageEncrypt, StageAudit, StageRateLimit, StageRetry, StageBreaker, StageBatch:
		default:
			return fmt.Errorf("%w: unknown stage %q", ErrBadConfig, sc.Name)
		}
		if prev, dup := pos[sc.Name]; dup {
			return fmt.Errorf("%w: stage %q configured twice (positions %d and %d)", ErrBadConfig, sc.Name, prev, i)
		}
		pos[sc.Name] = i
	}
	mustPrecede := func(before, after, why string) error {
		bi, hasB := pos[before]
		ai, hasA := pos[after]
		if hasA && (!hasB || bi > ai) {
			return fmt.Errorf("%w: %q must precede %q: %s", ErrBadConfig, before, after, why)
		}
		return nil
	}
	si, hasSession := pos[StageSession]
	ai, hasAuthn := pos[StageAuthn]
	if hasSession && hasAuthn && si > ai {
		return fmt.Errorf("%w: %q must precede %q: token-bearing requests short-circuit the full PKI check", ErrBadConfig, StageSession, StageAuthn)
	}
	if ei, hasEncrypt := pos[StageEncrypt]; hasEncrypt {
		authnBefore := hasAuthn && ai < ei
		sessionBefore := hasSession && si < ei
		if !authnBefore && !sessionBefore {
			return fmt.Errorf("%w: %q needs %q or %q before it: never seal an envelope for an unverified submitter", ErrBadConfig, StageEncrypt, StageAuthn, StageSession)
		}
	}
	if hasAuthn {
		if err := mustPrecede(StageAuthn, StageRateLimit,
			"buckets are keyed by principal, which must be verified first"); err != nil {
			return err
		}
	}
	if hasSession {
		if err := mustPrecede(StageSession, StageRateLimit,
			"buckets are keyed by principal, which must be verified first"); err != nil {
			return err
		}
	}
	if _, hasRetry := pos[StageRetry]; hasRetry {
		if err := mustPrecede(StageRetry, StageBreaker,
			"each retry attempt must consult the breaker"); err != nil {
			return err
		}
	}
	if bi, ok := pos[StageBatch]; ok && bi != len(c.Stages)-1 {
		return fmt.Errorf("%w: %q must be the final stage (any later stage would be skipped for batched requests)", ErrBadConfig, StageBatch)
	}
	switch c.Codec {
	case "", CodecJSON, CodecBinary:
	default:
		return fmt.Errorf("%w: unknown codec %q (want %s or %s)", ErrBadConfig, c.Codec, CodecJSON, CodecBinary)
	}
	if _, err := c.traceEvery(); err != nil {
		return err
	}
	return c.validateSharding()
}

// traceEvery parses the Trace knob into a 1-in-N sample rate (0 = off).
func (c Config) traceEvery() (int, error) {
	switch c.Trace {
	case "", "off":
		return 0, nil
	}
	n, err := strconv.Atoi(c.Trace)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("%w: trace must be \"off\" or a positive sample divisor, got %q", ErrBadConfig, c.Trace)
	}
	return n, nil
}

// validateSharding enforces the ordering-topology knobs: a negative shard
// count is meaningless, and every pin must name a shard inside the topology.
func (c Config) validateSharding() error {
	if c.Shards < 0 {
		return fmt.Errorf("%w: shards must be >= 0, got %d", ErrBadConfig, c.Shards)
	}
	if len(c.ShardPins) > 0 && c.Shards == 0 {
		return fmt.Errorf("%w: shard pins need a sharded topology (shards > 0)", ErrBadConfig)
	}
	for channel, shard := range c.ShardPins {
		if shard < 0 || shard >= c.Shards {
			return fmt.Errorf("%w: pin %q -> shard %d outside [0, %d)", ErrBadConfig, channel, shard, c.Shards)
		}
	}
	return nil
}

// buildStage instantiates one named stage from its parameters.
func buildStage(sc StageConfig, env Env) (Stage, error) {
	p := &params{stage: sc.Name, m: sc.Params}
	var (
		s   Stage
		err error
	)
	switch sc.Name {
	case StageSession:
		mgr := env.Sessions
		if mgr != nil && len(sc.Params) > 0 {
			// An injected manager carries its own ttl/idle/cap/revocation
			// setup; a knob that would be silently ignored here is a
			// misconfiguration, not a default.
			for key := range sc.Params {
				return nil, fmt.Errorf("stage %s: param %s conflicts with Env.Sessions — configure the injected manager at construction instead", sc.Name, key)
			}
		}
		if mgr == nil {
			if env.CAKey.IsZero() {
				return nil, fmt.Errorf("stage %s: Env.CAKey is required", sc.Name)
			}
			ttl := p.duration("ttl", 10*time.Minute)
			idle := p.duration("idle", 2*time.Minute)
			maxPer := p.intVal("maxperprincipal", 0)
			reqauth, aerr := ParseRequestAuthMode(p.str("reqauth", "sig"))
			if aerr != nil {
				return nil, fmt.Errorf("stage %s: %v", sc.Name, aerr)
			}
			mode, merr := ParseRevokeCheckMode(p.str("revokecheck", "off"))
			if merr != nil {
				return nil, fmt.Errorf("stage %s: %v", sc.Name, merr)
			}
			sweepEvery := p.duration("revokesweep", 0)
			if p.err != nil {
				return nil, p.err
			}
			if maxPer < 0 {
				return nil, fmt.Errorf("stage %s: maxperprincipal must be >= 0, got %d", sc.Name, maxPer)
			}
			if mode != RevokeCheckOff && env.Revoker == nil {
				return nil, fmt.Errorf("stage %s: revokecheck=%v needs Env.Revoker", sc.Name, mode)
			}
			if _, set := sc.Params["revokesweep"]; set {
				if mode != RevokeCheckSweep {
					return nil, fmt.Errorf("stage %s: revokesweep is only valid with revokecheck=sweep, got revokecheck=%v", sc.Name, mode)
				}
				if sweepEvery <= 0 {
					return nil, fmt.Errorf("stage %s: revokesweep must be positive, got %v", sc.Name, sweepEvery)
				}
			}
			mgr, err = NewSessionManager(env.CAKey, ttl, idle, env.Now,
				WithMaxPerPrincipal(maxPer),
				WithRequestAuth(reqauth),
				WithRevocationChecks(env.Revoker, mode, sweepEvery))
			if err != nil {
				return nil, err
			}
		}
		s, err = NewSession(mgr)
	case StageAuthn:
		if env.CAKey.IsZero() {
			return nil, fmt.Errorf("stage %s: Env.CAKey is required", sc.Name)
		}
		s = NewAuthn(env.CAKey, env.Now)
	case StageEncrypt:
		ttl := p.duration("keyttl", 0)
		if p.err != nil {
			return nil, p.err
		}
		if ttl < 0 {
			return nil, fmt.Errorf("stage %s: keyttl must be >= 0, got %v (0 disables the key cache)", sc.Name, ttl)
		}
		if ttl > 0 {
			s, err = NewCachedEncrypt(env.Directory, ttl, env.Now)
		} else {
			s, err = NewEncrypt(env.Directory)
		}
	case StageAudit:
		s, err = NewAudit(env.Log, p.str("observer", "gateway"))
	case StageRateLimit:
		s, err = NewRateLimit(p.floatVal("rate", 100), p.floatVal("burst", 10), env.Now)
	case StageRetry:
		s, err = NewRetry(p.intVal("attempts", 3), p.duration("backoff", 5*time.Millisecond), env.Sleep)
	case StageBreaker:
		s, err = NewBreaker(p.intVal("threshold", 5), p.duration("cooldown", time.Second), env.Now)
	case StageBatch:
		s, err = NewBatch(p.intVal("size", 8))
	default:
		return nil, fmt.Errorf("unknown stage %q", sc.Name)
	}
	if p.err != nil {
		return nil, p.err
	}
	if err != nil {
		return nil, fmt.Errorf("stage %s: %w", sc.Name, err)
	}
	return s, nil
}
