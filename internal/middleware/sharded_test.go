package middleware

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
)

// newShardedOrderer builds an n-shard ordering topology of solo services.
func newShardedOrderer(t testing.TB, n int) *ordering.ShardedBackend {
	t.Helper()
	shards := make([]ordering.Backend, n)
	for i := range shards {
		shards[i] = ordering.New(fmt.Sprintf("shard-op-%d", i), ordering.VisibilityEnvelope)
	}
	sb, err := ordering.NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return sb
}

// countingSink is a minimal channel-agnostic backend counting committed txs.
type countingSink struct {
	name string
	txs  int
}

func (c *countingSink) Name() string { return c.name }

func (c *countingSink) Commit(b ledger.Block) error {
	c.txs += len(b.Txs)
	return nil
}

func TestConfigShardingValidation(t *testing.T) {
	stages := []StageConfig{{Name: StageRateLimit}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative shards", Config{Stages: stages, Shards: -1}},
		{"pins without topology", Config{Stages: stages, ShardPins: map[string]int{"deals": 0}}},
		{"pin out of range", Config{Stages: stages, Shards: 2, ShardPins: map[string]int{"deals": 2}}},
		{"pin negative", Config{Stages: stages, Shards: 2, ShardPins: map[string]int{"deals": -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(Env{}, nil); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
		})
	}
}

// TestGatewayShardedTopologyChecks pins the construction-time contract:
// a declared shard count must match the actual backend, and declared pins
// land on the backend before traffic.
func TestGatewayShardedTopologyChecks(t *testing.T) {
	cfg := Config{
		Stages: []StageConfig{{Name: StageRateLimit}},
		Shards: 2,
	}
	if _, err := NewGateway("gw", cfg, Env{}, ordering.New("op", ordering.VisibilityEnvelope)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unsharded backend accepted for sharded config: %v", err)
	}
	if _, err := NewGateway("gw", cfg, Env{}, newShardedOrderer(t, 3)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("3-shard backend accepted for 2-shard config: %v", err)
	}

	sb := newShardedOrderer(t, 2)
	hashed := sb.ShardFor("deals")
	pinTo := 1 - hashed
	cfg.ShardPins = map[string]int{"deals": pinTo}
	if _, err := NewGateway("gw", cfg, Env{}, sb); err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	if got := sb.ShardFor("deals"); got != pinTo {
		t.Fatalf("pin not installed: ShardFor(deals) = %d, want %d", got, pinTo)
	}

	// A pin conflicting with a live channel surfaces as ErrBadConfig too.
	sb2 := newShardedOrderer(t, 2)
	live := sb2.ShardFor("deals")
	sb2.Subscribe("deals", func(ledger.Block) error { return nil })
	cfg.ShardPins = map[string]int{"deals": 1 - live}
	if _, err := NewGateway("gw", cfg, Env{}, sb2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("conflicting pin accepted: %v", err)
	}
}

// TestGatewayShardedEndToEnd drives session traffic over several channels
// through a 2-shard gateway and checks routing, delivery, and the new
// GatewayStats surfaces: per-shard counters, session lifecycle counters,
// and encrypt epoch rotations.
func TestGatewayShardedEndToEnd(t *testing.T) {
	clock := newFakeClock()
	ca, people := enrollAt(t, clock.now, "Alice", "Bob")
	alice := people["Alice"]

	channels := []string{"deals-a", "deals-b", "deals-c"}
	dir := StaticDirectory{}
	for _, ch := range channels {
		dir[ch] = map[string]dcrypto.PublicKey{
			"Alice": people["Alice"].key.Public(),
			"Bob":   people["Bob"].key.Public(),
		}
	}

	sb := newShardedOrderer(t, 2)
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h"}},
			{Name: StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
		},
		Shards:    2,
		ShardPins: map[string]int{channels[0]: 0},
	}
	env := Env{CAKey: ca.PublicKey(), Directory: dir, Log: audit.NewLog(), Now: clock.now}
	gw, err := NewGateway("gw", cfg, env, sb)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	sinks := make(map[string]*countingSink, len(channels))
	for _, ch := range channels {
		sinks[ch] = &countingSink{name: "sink-" + ch}
		gw.Bind(ch, sinks[ch])
	}

	grant := openSession(t, gw.Sessions(), alice)
	const perChannel = 4
	for _, ch := range channels {
		for i := 0; i < perChannel; i++ {
			req := sessionRequest(t, alice, grant.Token, ch, []byte(fmt.Sprintf("%s-%d", ch, i)))
			if err := gw.Submit(context.Background(), req); err != nil {
				t.Fatalf("Submit %s: %v", ch, err)
			}
		}
	}
	for _, ch := range channels {
		if sinks[ch].txs != perChannel {
			t.Fatalf("channel %s committed %d txs, want %d", ch, sinks[ch].txs, perChannel)
		}
	}

	stats := gw.Stats()
	if len(stats.Shards) != 2 {
		t.Fatalf("stats carry %d shards, want 2", len(stats.Shards))
	}
	var routed uint64
	for _, st := range stats.Shards {
		routed += st.RoutedTxs
	}
	if want := uint64(len(channels) * perChannel); routed != want {
		t.Fatalf("shards routed %d txs, want %d", routed, want)
	}
	pinnedShard := stats.Shards[0]
	if pinnedShard.PinnedChannels != 1 {
		t.Fatalf("shard 0 PinnedChannels = %d, want 1", pinnedShard.PinnedChannels)
	}
	if got := sb.ShardFor(channels[0]); got != 0 {
		t.Fatalf("pinned channel routed to shard %d, want 0", got)
	}
	if stats.Sessions == nil || stats.Sessions.Opened != 1 || stats.Sessions.Live != 1 {
		t.Fatalf("session stats = %+v, want 1 opened, 1 live", stats.Sessions)
	}
	// One cached epoch per channel under the keyed encrypt stage.
	if want := uint64(len(channels)); stats.KeyEpochsRotated != want {
		t.Fatalf("KeyEpochsRotated = %d, want %d", stats.KeyEpochsRotated, want)
	}
}

// TestSessionPerPrincipalCap exercises the overflow behaviour: the cap
// evicts the principal's oldest session, leaves other principals alone, and
// counts evictions distinctly from expiries.
func TestSessionPerPrincipalCap(t *testing.T) {
	clock := newFakeClock()
	ca, people := enrollAt(t, clock.now, "Alice", "Bob")
	mgr, err := NewSessionManager(ca.PublicKey(), time.Hour, time.Hour, clock.now, WithMaxPerPrincipal(2))
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}

	// Distinct open times make "oldest" unambiguous.
	first := openSession(t, mgr, people["Alice"])
	clock.advance(time.Second)
	second := openSession(t, mgr, people["Alice"])
	clock.advance(time.Second)
	bobs := openSession(t, mgr, people["Bob"])
	clock.advance(time.Second)
	third := openSession(t, mgr, people["Alice"])

	if _, _, _, err := mgr.resolve(first.Token, ""); !errors.Is(err, ErrNoSession) {
		t.Fatalf("oldest capped session resolves: %v", err)
	}
	for name, grant := range map[string]SessionGrant{"second": second, "third": third, "bob": bobs} {
		if _, _, _, err := mgr.resolve(grant.Token, ""); err != nil {
			t.Fatalf("%s session: %v", name, err)
		}
	}
	stats := mgr.Stats()
	if stats.Opened != 4 || stats.Evicted != 1 || stats.Live != 3 {
		t.Fatalf("stats = %+v, want opened=4 evicted=1 live=3", stats)
	}
}

// TestSessionStatsCountExpiries checks TTL/idle evictions land in the
// Expired counter whether detected on resolve or by the sweep.
func TestSessionStatsCountExpiries(t *testing.T) {
	clock := newFakeClock()
	ca, people := enrollAt(t, clock.now, "Alice", "Bob")
	mgr := mustManager(t, ca, time.Hour, 10*time.Minute, clock.now)

	a := openSession(t, mgr, people["Alice"])
	openSession(t, mgr, people["Bob"])
	clock.advance(11 * time.Minute) // both idle out

	// One expiry detected on resolve…
	if _, _, _, err := mgr.resolve(a.Token, ""); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("resolve idle session = %v, want ErrSessionExpired", err)
	}
	// …the other by the sweep a later Open runs.
	openSession(t, mgr, people["Alice"])
	stats := mgr.Stats()
	if stats.Expired != 2 || stats.Opened != 3 || stats.Live != 1 {
		t.Fatalf("stats = %+v, want expired=2 opened=3 live=1", stats)
	}
	if stats.Evicted != 0 {
		t.Fatalf("uncapped manager evicted %d sessions", stats.Evicted)
	}
}
