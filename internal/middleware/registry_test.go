package middleware

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// nopStage is a pass-through Stage for registry tests.
type nopStage struct{}

func (nopStage) Name() string { return "nop" }

func (nopStage) Handle(ctx context.Context, req *Request, next Handler) error {
	return next(ctx, req)
}

// nopBuild is a registration-only constructor for registry tests.
func nopBuild(p *params, sc StageConfig, env Env) (Stage, error) {
	return nopStage{}, nil
}

func TestRegisterStageRejectsDuplicate(t *testing.T) {
	err := registerStage(stageDef{name: StageAuthn, build: nopBuild})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration = %v, want already-registered error", err)
	}
	// The built-in definition must have survived the rejected attempt.
	if def := lookupStage(StageAuthn); def == nil || len(def.after) == 0 {
		t.Fatal("built-in authn definition was clobbered by a rejected registration")
	}
}

func TestRegisterStageRejectsConstraintCycle(t *testing.T) {
	// A self-inconsistent definition: it must run both before and after
	// authn. Registration fails and leaves no trace in the registry.
	err := registerStage(stageDef{
		name:   "cyclestage",
		build:  nopBuild,
		after:  []orderRule{{StageAuthn, "test"}},
		before: []orderRule{{StageAuthn, "test"}},
	})
	if err == nil || !strings.Contains(err.Error(), "ordering cycle") {
		t.Fatalf("cycling registration = %v, want ordering-cycle error", err)
	}
	if lookupStage("cyclestage") != nil {
		t.Fatal("failed registration left the stage in the registry")
	}
}

func TestRegisterStageRejectsCycleAcrossStages(t *testing.T) {
	// Two new stages whose rules close a loop through each other: the
	// second registration must detect the cycle the first one opened.
	if err := registerStage(stageDef{
		name:  "cyclea",
		build: nopBuild,
		after: []orderRule{{"cycleb", "test"}},
	}); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	defer removeStage("cyclea")
	err := registerStage(stageDef{
		name:  "cycleb",
		build: nopBuild,
		after: []orderRule{{"cyclea", "test"}},
	})
	if err == nil || !strings.Contains(err.Error(), "ordering cycle") {
		t.Fatalf("cross-stage cycle = %v, want ordering-cycle error", err)
	}
	if lookupStage("cycleb") != nil {
		t.Fatal("failed registration left the stage in the registry")
	}
}

func TestRegisterStageRejectsBadDefinitions(t *testing.T) {
	cases := []struct {
		name string
		def  stageDef
	}{
		{"empty name", stageDef{build: nopBuild}},
		{"reserved char pipe", stageDef{name: "my|stage", build: nopBuild}},
		{"reserved char paren", stageDef{name: "my(stage)", build: nopBuild}},
		{"reserved char space", stageDef{name: "my stage", build: nopBuild}},
		{"nil build", stageDef{name: "nobuild"}},
		{"duplicate param", stageDef{name: "dupparam", build: nopBuild,
			params: []paramSpec{{"size", ""}, {"size", ""}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := registerStage(tc.def); err == nil {
				t.Fatal("bad definition registered")
			}
			if tc.def.name != "" && lookupStage(tc.def.name) != nil {
				t.Fatal("failed registration left the stage in the registry")
			}
		})
	}
}

func TestRegisteredStagesListsAllBuiltins(t *testing.T) {
	names := RegisteredStages()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("RegisteredStages not sorted: %v", names)
		}
	}
	want := []string{
		StageAggregate, StageAnonCred, StageAttest, StageAudit, StageAuthn,
		StageBatch, StageBreaker, StageEncrypt, StageRateLimit, StageRetry,
		StageSession, StageZKProof,
	}
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("RegisteredStages() = %v, missing %q", names, w)
		}
	}
	usage := StageUsage()
	for _, w := range want {
		if !strings.Contains(usage, w) {
			t.Fatalf("StageUsage() missing %q", w)
		}
	}
}

func TestParseStages(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []StageConfig
	}{
		{"bare names", "session|authn", []StageConfig{
			{Name: StageSession}, {Name: StageAuthn},
		}},
		{"mode sugar", "zkproof=range", []StageConfig{
			{Name: StageZKProof, Params: map[string]string{"mode": "range"}},
		}},
		{"param list", "batch(size=4)", []StageConfig{
			{Name: StageBatch, Params: map[string]string{"size": "4"}},
		}},
		{"composite values", "anoncred(mode=present,attrs=role=member+org=bank,scope=audit)", []StageConfig{
			{Name: StageAnonCred, Params: map[string]string{
				"mode": "present", "attrs": "role=member+org=bank", "scope": "audit",
			}},
		}},
		{"full pipeline", "session(reqauth=mac)|authn|attest(bind=output)|encrypt|audit", []StageConfig{
			{Name: StageSession, Params: map[string]string{"reqauth": "mac"}},
			{Name: StageAuthn},
			{Name: StageAttest, Params: map[string]string{"bind": "output"}},
			{Name: StageEncrypt},
			{Name: StageAudit},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseStages(tc.in)
			if err != nil {
				t.Fatalf("ParseStages(%q) = %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ParseStages(%q) = %+v, want %+v", tc.in, got, tc.want)
			}
			for i := range tc.want {
				if got[i].Name != tc.want[i].Name {
					t.Fatalf("stage %d name = %q, want %q", i, got[i].Name, tc.want[i].Name)
				}
				if len(got[i].Params) != len(tc.want[i].Params) {
					t.Fatalf("stage %d params = %v, want %v", i, got[i].Params, tc.want[i].Params)
				}
				for k, v := range tc.want[i].Params {
					if got[i].Params[k] != v {
						t.Fatalf("stage %d param %s = %q, want %q", i, k, got[i].Params[k], v)
					}
				}
			}
		})
	}
}

func TestParseStagesRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantMsg string
	}{
		{"unknown stage", "session|zkpruf", `unknown stage "zkpruf"`},
		{"unknown stage lists registry", "nope", "registered stages:"},
		{"empty spec", "session||authn", "empty stage spec"},
		{"missing paren", "batch(size=4", "missing closing parenthesis"},
		{"bare param", "batch(4)", "not key=value"},
		{"empty string", "", "empty stage spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseStages(tc.in)
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("ParseStages(%q) = %v, want ErrBadConfig", tc.in, err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
