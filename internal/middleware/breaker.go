package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dltprivacy/internal/ordering"
)

// isFailoverWindow reports whether an error marks a backend that is
// electing a new sequencing leader rather than one that is down. Such
// errors are transient by construction (the retry stage classifies them
// retryable) and a closed circuit does not count them as failures.
func isFailoverWindow(err error) bool {
	return errors.Is(err, ordering.ErrNoLeader)
}

// Breaker is a per-backend circuit breaker: after threshold consecutive
// downstream failures for a backend, it fails fast with ErrCircuitOpen
// until the cooldown elapses, then lets a single probe through (half-open)
// and closes again only if the probe succeeds. Requests with an empty
// Backend share one circuit keyed by channel.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	circuits map[string]*circuit
}

type circuitState int

const (
	stateClosed circuitState = iota
	stateOpen
	stateHalfOpen
)

type circuit struct {
	state    circuitState
	failures int
	openedAt time.Time
	// gen increments each time the circuit opens, so a success from a
	// request admitted before the trip cannot close it (bypassing the
	// cooldown the intervening failures established).
	gen uint64
}

// NewBreaker creates the circuit-breaker stage.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) (*Breaker, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("middleware: breaker needs threshold >= 1, got %d", threshold)
	}
	if cooldown <= 0 {
		return nil, fmt.Errorf("middleware: breaker needs cooldown > 0, got %v", cooldown)
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now, circuits: make(map[string]*circuit)}, nil
}

// Name implements Stage.
func (b *Breaker) Name() string { return StageBreaker }

func (b *Breaker) key(req *Request) string {
	if req.Backend != "" {
		return req.Backend
	}
	return "channel:" + req.Channel
}

// Handle implements Stage.
func (b *Breaker) Handle(ctx context.Context, req *Request, next Handler) error {
	key := b.key(req)
	b.mu.Lock()
	c, ok := b.circuits[key]
	if !ok {
		c = &circuit{}
		b.circuits[key] = c
	}
	switch c.state {
	case stateOpen:
		if b.now().Sub(c.openedAt) < b.cooldown {
			b.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrCircuitOpen, key)
		}
		// Cooldown elapsed: admit this request as the half-open probe.
		c.state = stateHalfOpen
	case stateHalfOpen:
		// A probe is already in flight; fail fast.
		b.mu.Unlock()
		return fmt.Errorf("%w: %s (probing)", ErrCircuitOpen, key)
	}
	gen := c.gen
	b.mu.Unlock()

	err := next(ctx, req)

	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		if c.state == stateClosed && isFailoverWindow(err) {
			// A shard between leaders is healing, not down: its election
			// resolves within one retry backoff, so these errors must not
			// accumulate toward permanently tripping a healthy backend's
			// circuit. Quorum loss (ordering.ErrNoQuorum) is NOT exempt —
			// that shard genuinely cannot serve and should fail fast.
			return err
		}
		c.failures++
		if c.state == stateOpen {
			// Already open (tripped by concurrent requests); a stale
			// failure must not reset the cooldown window.
			return err
		}
		if c.state == stateHalfOpen || c.failures >= b.threshold {
			c.state = stateOpen
			c.openedAt = b.now()
			c.gen++
		}
		return err
	}
	if c.gen != gen {
		// The circuit opened while this request was in flight; its
		// success predates the failures and must not short the cooldown.
		return nil
	}
	c.state = stateClosed
	c.failures = 0
	return nil
}

// State reports the circuit state for a backend key: "closed", "open", or
// "half-open". The key resolves the way Handle keys its circuits: a name
// with no backend circuit falls back to the shared per-channel circuit
// ("channel:"+name) that requests with an empty Backend trip. Unknown keys
// are closed.
func (b *Breaker) State(backend string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.circuits[backend]
	if !ok {
		c, ok = b.circuits["channel:"+backend]
	}
	if !ok {
		return "closed"
	}
	switch c.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
