package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
)

// fakeClock is a settable time source for rate-limit and breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// principal is an enrolled identity with its signing key.
type principal struct {
	name string
	key  *dcrypto.PrivateKey
	cert pki.Certificate
}

// enroll registers identities with a fresh CA.
func enroll(t testing.TB, names ...string) (*pki.CA, map[string]*principal) {
	t.Helper()
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	out := make(map[string]*principal, len(names))
	for _, name := range names {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		cert, err := ca.Enroll(name, key.Public())
		if err != nil {
			t.Fatalf("Enroll %s: %v", name, err)
		}
		out[name] = &principal{name: name, key: key, cert: cert}
	}
	return ca, out
}

// signedRequest builds a signed request for a principal.
func signedRequest(t testing.TB, p *principal, channel string, payload []byte) *Request {
	t.Helper()
	req := &Request{
		Channel:   channel,
		Principal: p.name,
		Payload:   payload,
		Cert:      p.cert,
	}
	if err := SignRequest(req, p.key); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	return req
}

// accept is a terminal handler recording the requests that reached it.
type accept struct {
	mu   sync.Mutex
	seen []*Request
}

func (a *accept) handler(ctx context.Context, req *Request) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen = append(a.seen, req)
	return nil
}

func (a *accept) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.seen)
}

func TestAuthnVerifiesSubmitter(t *testing.T) {
	ca, ps := enroll(t, "alice", "bob")
	sink := &accept{}
	chain := NewChain(sink.handler, NewAuthn(ca.PublicKey(), nil))

	req := signedRequest(t, ps["alice"], "deals", []byte("trade"))
	if err := chain.Execute(context.Background(), req); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if !req.Authenticated() {
		t.Fatal("request not marked authenticated")
	}

	// Tampered payload: signature no longer covers the content.
	tampered := signedRequest(t, ps["alice"], "deals", []byte("trade"))
	tampered.Payload = []byte("tampered")
	if err := chain.Execute(context.Background(), tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered payload = %v, want ErrBadSignature", err)
	}

	// Bob's certificate on a request claiming to be alice.
	spoofed := signedRequest(t, ps["bob"], "deals", []byte("trade"))
	spoofed.Principal = "alice"
	if err := SignRequest(spoofed, ps["bob"].key); err != nil {
		t.Fatal(err)
	}
	if err := chain.Execute(context.Background(), spoofed); !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("spoofed principal = %v, want ErrIdentityMismatch", err)
	}

	// Certificate from a different CA.
	otherCA, others := enroll(t, "alice")
	_ = otherCA
	foreign := signedRequest(t, others["alice"], "deals", []byte("trade"))
	if err := chain.Execute(context.Background(), foreign); !errors.Is(err, pki.ErrBadCertificate) {
		t.Fatalf("foreign cert = %v, want ErrBadCertificate", err)
	}
	if sink.count() != 1 {
		t.Fatalf("terminal saw %d requests, want 1", sink.count())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	_, ps := enroll(t, "alice", "bob", "carol")
	members := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	}
	env, err := SealEnvelope("deals", []byte("10 tons of steel"), members)
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	for _, m := range []string{"alice", "bob"} {
		got, err := OpenEnvelope(env, m, ps[m].key)
		if err != nil {
			t.Fatalf("OpenEnvelope as %s: %v", m, err)
		}
		if string(got) != "10 tons of steel" {
			t.Fatalf("payload = %q", got)
		}
	}
	// Carol holds no wrapped key.
	if _, err := OpenEnvelope(env, "carol", ps["carol"].key); !errors.Is(err, ErrNotRecipient) {
		t.Fatalf("outsider open = %v, want ErrNotRecipient", err)
	}
	// Carol cannot use bob's slot either.
	if _, err := OpenEnvelope(env, "bob", ps["carol"].key); err == nil {
		t.Fatal("wrong key must not open the envelope")
	}
}

func TestEncryptRequiresAuthn(t *testing.T) {
	_, ps := enroll(t, "alice")
	dir := StaticDirectory{"deals": {"alice": ps["alice"].key.Public()}}
	enc, err := NewEncrypt(dir)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, enc)
	req := signedRequest(t, ps["alice"], "deals", []byte("secret"))
	if err := chain.Execute(context.Background(), req); !errors.Is(err, ErrNotAuthenticated) {
		t.Fatalf("encrypt without authn = %v, want ErrNotAuthenticated", err)
	}
}

func TestAuditRecordsLeakage(t *testing.T) {
	ca, ps := enroll(t, "alice")
	log := audit.NewLog()
	dir := StaticDirectory{"deals": {"alice": ps["alice"].key.Public()}}

	cfg := Config{Stages: []StageConfig{
		{Name: StageAuthn},
		{Name: StageEncrypt},
		{Name: StageAudit, Params: map[string]string{"observer": "gw-op"}},
	}}
	chain, err := cfg.Build(Env{CAKey: ca.PublicKey(), Directory: dir, Log: log}, (&accept{}).handler)
	if err != nil {
		t.Fatal(err)
	}
	req := signedRequest(t, ps["alice"], "deals", []byte("secret"))
	if err := chain.Execute(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if !log.SawAny("gw-op", audit.ClassTxMetadata) {
		t.Fatal("observer must see envelope metadata")
	}
	if !log.Saw("gw-op", audit.ClassIdentity, "alice") {
		t.Fatal("observer must see the submitting identity")
	}
	if log.SawAny("gw-op", audit.ClassTxData) {
		t.Fatal("observer must not see tx data when encrypt runs before audit")
	}

	// Without the encrypt stage, the same pipeline leaks tx data.
	leaky := Config{Stages: []StageConfig{
		{Name: StageAuthn},
		{Name: StageAudit, Params: map[string]string{"observer": "leaky-op"}},
	}}
	lchain, err := leaky.Build(Env{CAKey: ca.PublicKey(), Log: log}, (&accept{}).handler)
	if err != nil {
		t.Fatal(err)
	}
	if err := lchain.Execute(context.Background(), signedRequest(t, ps["alice"], "deals", []byte("secret"))); err != nil {
		t.Fatal(err)
	}
	if !log.SawAny("leaky-op", audit.ClassTxData) {
		t.Fatal("plaintext pipeline must show a tx-data observation")
	}
}

func TestRateLimitPerPrincipal(t *testing.T) {
	clock := newFakeClock()
	rl, err := NewRateLimit(1, 2, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	sink := &accept{}
	chain := NewChain(sink.handler, rl)
	submit := func(who string) error {
		return chain.Execute(context.Background(), &Request{Channel: "deals", Principal: who})
	}

	// Burst of 2, then limited.
	for i := 0; i < 2; i++ {
		if err := submit("alice"); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	if err := submit("alice"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("exhausted bucket = %v, want ErrRateLimited", err)
	}
	// Buckets are per principal: bob is unaffected.
	if err := submit("bob"); err != nil {
		t.Fatalf("bob limited by alice's bucket: %v", err)
	}
	// One token per second refills.
	clock.advance(1 * time.Second)
	if err := submit("alice"); err != nil {
		t.Fatalf("refilled bucket rejected: %v", err)
	}
	if err := submit("alice"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("single refilled token reused = %v, want ErrRateLimited", err)
	}
}

func TestRetryOnTransientErrors(t *testing.T) {
	var attempts int
	var slept []time.Duration
	retry, err := NewRetry(3, 10*time.Millisecond, func(d time.Duration) { slept = append(slept, d) })
	if err != nil {
		t.Fatal(err)
	}
	flaky := func(ctx context.Context, req *Request) error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("partition: %w", ErrTransient)
		}
		return nil
	}
	chain := NewChain(flaky, retry)
	if err := chain.Execute(context.Background(), &Request{Channel: "c", Principal: "p"}); err != nil {
		t.Fatalf("retryable flow failed: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule = %v, want [10ms 20ms]", slept)
	}

	// Permanent errors are not retried.
	attempts = 0
	permanent := func(ctx context.Context, req *Request) error {
		attempts++
		return ErrRateLimited
	}
	chain = NewChain(permanent, mustRetry(t))
	if err := chain.Execute(context.Background(), &Request{Channel: "c", Principal: "p"}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("permanent error = %v, want ErrRateLimited", err)
	}
	if attempts != 1 {
		t.Fatalf("permanent error retried %d times", attempts)
	}

	// Exhausted transient attempts surface the underlying error.
	attempts = 0
	alwaysDown := func(ctx context.Context, req *Request) error {
		attempts++
		return fmt.Errorf("still down: %w", ErrTransient)
	}
	chain = NewChain(alwaysDown, mustRetry(t))
	if err := chain.Execute(context.Background(), &Request{Channel: "c", Principal: "p"}); !IsTransient(err) {
		t.Fatalf("exhausted retries = %v, want transient", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func mustRetry(t *testing.T) *Retry {
	t.Helper()
	r, err := NewRetry(3, 0, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	clock := newFakeClock()
	br, err := NewBreaker(2, time.Second, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	var healthy bool
	backend := func(ctx context.Context, req *Request) error {
		if healthy {
			return nil
		}
		return errors.New("backend down")
	}
	chain := NewChain(backend, br)
	req := func() *Request { return &Request{Channel: "deals", Principal: "p", Backend: "fabric"} }

	// Two consecutive failures trip the circuit.
	for i := 0; i < 2; i++ {
		if err := chain.Execute(context.Background(), req()); err == nil {
			t.Fatal("failing backend reported success")
		}
	}
	if got := br.State("fabric"); got != "open" {
		t.Fatalf("state = %s, want open", got)
	}
	// While open: fail fast without touching the backend.
	if err := chain.Execute(context.Background(), req()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit = %v, want ErrCircuitOpen", err)
	}
	// After cooldown a probe goes through; backend still down reopens.
	clock.advance(time.Second)
	if err := chain.Execute(context.Background(), req()); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("probe after cooldown was not admitted")
	}
	if got := br.State("fabric"); got != "open" {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	// Backend recovers: next probe closes the circuit.
	healthy = true
	clock.advance(time.Second)
	if err := chain.Execute(context.Background(), req()); err != nil {
		t.Fatalf("probe against healthy backend: %v", err)
	}
	if got := br.State("fabric"); got != "closed" {
		t.Fatalf("state after recovery = %s, want closed", got)
	}
	// Circuits are per backend: corda was never affected.
	if got := br.State("corda"); got != "closed" {
		t.Fatalf("unrelated backend state = %s, want closed", got)
	}
}

func TestBatchAggregatesAndFlushes(t *testing.T) {
	b, err := NewBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	sink := &accept{}
	chain := NewChain(sink.handler, b)
	submit := func(i int) error {
		return chain.Execute(context.Background(), &Request{
			Channel: "deals", Principal: "p", Payload: []byte{byte(i)},
		})
	}
	for i := 0; i < 2; i++ {
		if err := submit(i); err != nil {
			t.Fatalf("buffered submit %d: %v", i, err)
		}
	}
	if sink.count() != 0 || b.Pending() != 2 {
		t.Fatalf("terminal=%d pending=%d, want 0/2 before the batch fills", sink.count(), b.Pending())
	}
	// Third submission releases the whole group in order.
	if err := submit(2); err != nil {
		t.Fatalf("filling submit: %v", err)
	}
	if sink.count() != 3 || b.Pending() != 0 {
		t.Fatalf("terminal=%d pending=%d, want 3/0 after release", sink.count(), b.Pending())
	}
	for i, r := range sink.seen {
		if r.Payload[0] != byte(i) {
			t.Fatalf("release order broken at %d", i)
		}
	}
	// Partial batch drains on Flush.
	if err := submit(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if sink.count() != 4 {
		t.Fatalf("terminal=%d after flush, want 4", sink.count())
	}
}

func TestBatchDeliversWholeGroupDespiteFailure(t *testing.T) {
	b, err := NewBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	var attempted []byte
	terminal := func(ctx context.Context, req *Request) error {
		attempted = append(attempted, req.Payload[0])
		if req.Payload[0] == 1 {
			return errors.New("orderer down")
		}
		return nil
	}
	chain := NewChain(terminal, b)
	for i := 0; i < 2; i++ {
		if err := chain.Execute(context.Background(), &Request{
			Channel: "c", Principal: "p", Payload: []byte{byte(i)},
		}); err != nil {
			t.Fatalf("buffered submit %d: %v", i, err)
		}
	}
	// The filling submission sees the failure, but the rest of the group
	// — already acknowledged to their submitters — still gets delivered.
	err = chain.Execute(context.Background(), &Request{
		Channel: "c", Principal: "p", Payload: []byte{2},
	})
	if err == nil {
		t.Fatal("release failure not surfaced")
	}
	if len(attempted) != 3 {
		t.Fatalf("delivery attempted for %d of 3 buffered requests (%v)", len(attempted), attempted)
	}
}

func TestRetryDoesNotReplayBatchRelease(t *testing.T) {
	retry := mustRetry(t)
	b, err := NewBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	orders := make(map[byte]int)
	terminal := func(ctx context.Context, req *Request) error {
		orders[req.Payload[0]]++
		if req.Payload[0] == 0 {
			return fmt.Errorf("partition: %w", ErrTransient)
		}
		return nil
	}
	chain := NewChain(terminal, retry, b)
	if err := chain.Execute(context.Background(), &Request{
		Channel: "c", Principal: "p", Payload: []byte{0},
	}); err != nil {
		t.Fatalf("buffered submit: %v", err)
	}
	err = chain.Execute(context.Background(), &Request{
		Channel: "c", Principal: "p", Payload: []byte{1},
	})
	// The release failure is permanent: retry must not re-run the batch
	// stage, which would re-buffer the filling request and double-order
	// the member that committed.
	if !errors.Is(err, ErrBatchRelease) {
		t.Fatalf("filling submit = %v, want ErrBatchRelease", err)
	}
	if IsTransient(err) {
		t.Fatal("batch release error must not be transient")
	}
	if orders[0] != 1 || orders[1] != 1 {
		t.Fatalf("delivery counts = %v, want one attempt each", orders)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after release, want 0", b.Pending())
	}
}

func TestBreakerIgnoresStaleSuccess(t *testing.T) {
	clock := newFakeClock()
	br, err := NewBreaker(2, time.Second, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	var chain *Chain
	// The terminal handler for the first ("slow") request trips the
	// circuit with two failing requests while it is still in flight,
	// then reports its own success.
	first := true
	terminal := func(ctx context.Context, req *Request) error {
		if !first {
			return errors.New("backend down")
		}
		first = false
		for i := 0; i < 2; i++ {
			if err := chain.Execute(context.Background(), &Request{
				Channel: "c", Principal: "p", Backend: "fabric",
			}); err == nil {
				return errors.New("tripping request unexpectedly succeeded")
			}
		}
		return nil
	}
	chain = NewChain(terminal, br)
	if err := chain.Execute(context.Background(), &Request{
		Channel: "c", Principal: "p", Backend: "fabric",
	}); err != nil {
		t.Fatalf("slow request: %v", err)
	}
	// The slow request's success predates the trip: the circuit must
	// still be open and honouring its cooldown.
	if got := br.State("fabric"); got != "open" {
		t.Fatalf("state after stale success = %s, want open", got)
	}
	if err := chain.Execute(context.Background(), &Request{
		Channel: "c", Principal: "p", Backend: "fabric",
	}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("request during cooldown = %v, want ErrCircuitOpen", err)
	}
}

func TestChainStats(t *testing.T) {
	clock := newFakeClock()
	rl, err := NewRateLimit(1, 1, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, rl)
	_ = chain.Execute(context.Background(), &Request{Channel: "c", Principal: "a"})
	_ = chain.Execute(context.Background(), &Request{Channel: "c", Principal: "a"}) // limited
	stats := chain.Stats()
	if len(stats) != 1 || stats[0].Name != StageRateLimit {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Calls != 2 || stats[0].Errors != 1 {
		t.Fatalf("calls=%d errors=%d, want 2/1", stats[0].Calls, stats[0].Errors)
	}
}
