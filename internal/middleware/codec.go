package middleware

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
)

// Wire codec names, the vocabulary of Config.Codec and the per-session
// negotiation (SessionHello.Codec / SessionGrant.Codec).
const (
	// CodecJSON is the default wire framing: every structure marshals as
	// JSON, self-describing and diffable.
	CodecJSON = "json"
	// CodecBinary is the length-prefixed binary v2 framing: no field
	// names, no base64, no reflection — a submission decode is a linear
	// scan that aliases the inbound buffer instead of copying it, and an
	// envelope encode is a single exactly-sized allocation.
	CodecBinary = "binary"
)

// ErrBadFrame is returned (wrapped) for every malformed binary frame. Like
// JSON decode errors it is a rejection, never a panic: length prefixes are
// validated against the remaining buffer before any slice or allocation.
var ErrBadFrame = errors.New("middleware: malformed binary frame")

// Binary framing: one magic byte no JSON document can start with, one
// frame-kind byte, then fields in fixed order, each length-prefixed with a
// uvarint. Strings and byte fields share one shape; maps carry a count
// first. The certificate inside a wire request — first-contact traffic
// only, never the session fast path — nests as a JSON blob: certificates
// are cold, structured, and versioned by the pki package, and re-encoding
// them field-by-field here would couple the framing to pki internals.
const (
	binaryMagic             = 0xDC
	binaryKindRequest       = 0x01
	binaryKindEnvelope      = 0x02
	binaryKindGroupEnvelope = 0x03
)

// isBinaryFrame sniffs the framing of a wire payload: binary frames start
// with the magic byte, which is not a valid first byte of any JSON value.
func isBinaryFrame(b []byte) bool {
	return len(b) >= 2 && b[0] == binaryMagic
}

// appendLenPrefixed appends a uvarint length and the bytes themselves.
func appendLenPrefixed(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// lenPrefixedSize is the encoded size of a length-prefixed field of n bytes.
func lenPrefixedSize(n int) int {
	return uvarintSize(uint64(n)) + n
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// frameReader is a bounds-checked cursor over one binary frame. Methods
// record the first error; callers check err once at the end.
type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("%w: truncated varint", ErrBadFrame)
		return 0
	}
	r.b = r.b[n:]
	return v
}

// bytes returns the next length-prefixed field, aliasing the frame buffer
// (zero-copy; the transport hands each handler its own message payload).
func (r *frameReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.err = fmt.Errorf("%w: field length %d exceeds remaining %d bytes", ErrBadFrame, n, len(r.b))
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

func (r *frameReader) str() string { return string(r.bytes()) }

func (r *frameReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b))
	}
	return nil
}

// encodeWireRequestBinary marshals a wire request into the binary v2
// framing with a single exactly-sized allocation.
func encodeWireRequestBinary(w *wireRequest) ([]byte, error) {
	var sig, cert []byte
	if w.Sig.R != nil && w.Sig.S != nil {
		sig = w.Sig.Bytes()
	}
	if w.Cert != nil {
		b, err := json.Marshal(w.Cert)
		if err != nil {
			return nil, fmt.Errorf("middleware: encode cert: %w", err)
		}
		cert = b
	}
	size := 2 +
		lenPrefixedSize(len(w.Channel)) +
		lenPrefixedSize(len(w.Principal)) +
		lenPrefixedSize(len(w.Backend)) +
		lenPrefixedSize(len(w.Payload)) +
		lenPrefixedSize(len(w.Session)) +
		lenPrefixedSize(len(sig)) +
		lenPrefixedSize(len(w.MAC)) +
		lenPrefixedSize(len(cert)) +
		uvarintSize(w.TraceID) +
		uvarintSize(uint64(len(w.Meta)))
	for k, v := range w.Meta {
		size += lenPrefixedSize(len(k)) + lenPrefixedSize(len(v))
	}
	out := make([]byte, 0, size)
	out = append(out, binaryMagic, binaryKindRequest)
	out = appendLenPrefixed(out, []byte(w.Channel))
	out = appendLenPrefixed(out, []byte(w.Principal))
	out = appendLenPrefixed(out, []byte(w.Backend))
	out = appendLenPrefixed(out, w.Payload)
	out = appendLenPrefixed(out, []byte(w.Session))
	out = appendLenPrefixed(out, sig)
	out = appendLenPrefixed(out, w.MAC)
	out = appendLenPrefixed(out, cert)
	// The trace ID rides between cert and meta as a bare uvarint: one byte
	// for the untraced common case (TraceID 0).
	out = binary.AppendUvarint(out, w.TraceID)
	out = binary.AppendUvarint(out, uint64(len(w.Meta)))
	for k, v := range w.Meta {
		out = appendLenPrefixed(out, []byte(k))
		out = appendLenPrefixed(out, []byte(v))
	}
	return out, nil
}

// decodeWireRequestBinary reverses encodeWireRequestBinary. Byte fields
// alias the input buffer.
func decodeWireRequestBinary(b []byte) (wireRequest, error) {
	var w wireRequest
	if len(b) < 2 || b[0] != binaryMagic || b[1] != binaryKindRequest {
		return w, fmt.Errorf("%w: not a binary request frame", ErrBadFrame)
	}
	r := &frameReader{b: b[2:]}
	w.Channel = r.str()
	w.Principal = r.str()
	w.Backend = r.str()
	w.Payload = r.bytes()
	w.Session = r.str()
	sig := r.bytes()
	w.MAC = r.bytes()
	cert := r.bytes()
	w.TraceID = r.uvarint()
	nMeta := r.uvarint()
	if r.err == nil && nMeta > uint64(len(r.b)) {
		// Each entry costs at least two length bytes; reject counts the
		// remaining buffer cannot possibly hold before allocating the map.
		return w, fmt.Errorf("%w: meta count %d exceeds remaining bytes", ErrBadFrame, nMeta)
	}
	if r.err == nil && nMeta > 0 {
		w.Meta = make(map[string]string, nMeta)
		for i := uint64(0); i < nMeta && r.err == nil; i++ {
			k := r.str()
			w.Meta[k] = r.str()
		}
	}
	if err := r.done(); err != nil {
		return wireRequest{}, err
	}
	if len(sig) > 0 {
		s, err := dcrypto.ParseSignature(sig)
		if err != nil {
			return wireRequest{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		w.Sig = s
	}
	if len(w.MAC) > 0 && len(w.MAC) != dcrypto.MACSize {
		return wireRequest{}, fmt.Errorf("%w: mac must be %d bytes, got %d", ErrBadFrame, dcrypto.MACSize, len(w.MAC))
	}
	if len(cert) > 0 {
		var c pki.Certificate
		if err := json.Unmarshal(cert, &c); err != nil {
			return wireRequest{}, fmt.Errorf("%w: cert: %v", ErrBadFrame, err)
		}
		w.Cert = &c
	}
	return w, nil
}

// encodeEnvelopeBinary marshals an envelope into the binary v2 framing
// with a single exactly-sized allocation. sortedIDs, when non-nil, names
// every key of env.Keys in the order to emit them — the encrypt stage
// passes its per-epoch precomputed order so the hot path never sorts; nil
// sorts here for deterministic output.
func encodeEnvelopeBinary(env *Envelope, sortedIDs []string) []byte {
	if sortedIDs == nil {
		sortedIDs = make([]string, 0, len(env.Keys))
		for id := range env.Keys {
			sortedIDs = append(sortedIDs, id)
		}
		sort.Strings(sortedIDs)
	}
	size := 2 +
		lenPrefixedSize(len(env.Scheme)) +
		lenPrefixedSize(len(env.Channel)) +
		uvarintSize(env.Epoch) +
		lenPrefixedSize(len(env.Ciphertext)) +
		uvarintSize(uint64(len(sortedIDs)))
	for _, id := range sortedIDs {
		k := env.Keys[id]
		size += lenPrefixedSize(len(id)) +
			lenPrefixedSize(len(k.EphemeralPub)) +
			lenPrefixedSize(len(k.Ciphertext))
	}
	out := make([]byte, 0, size)
	out = append(out, binaryMagic, binaryKindEnvelope)
	out = appendLenPrefixed(out, []byte(env.Scheme))
	out = appendLenPrefixed(out, []byte(env.Channel))
	out = binary.AppendUvarint(out, env.Epoch)
	out = appendLenPrefixed(out, env.Ciphertext)
	out = binary.AppendUvarint(out, uint64(len(sortedIDs)))
	for _, id := range sortedIDs {
		k := env.Keys[id]
		out = appendLenPrefixed(out, []byte(id))
		out = appendLenPrefixed(out, k.EphemeralPub)
		out = appendLenPrefixed(out, k.Ciphertext)
	}
	return out
}

// encodeEnvelopeKeys encodes just the wrapped-key table of a binary v2
// envelope (recipient count + per-recipient id/ephemeral/ciphertext
// triples) in sortedIDs order. The table is immutable for a key epoch's
// lifetime, so the encrypt stage computes it once per epoch and
// encodeEnvelopeBinaryKeyed splices it into every envelope — turning the
// per-seal cost from O(members) encoding into one copy.
func encodeEnvelopeKeys(keys map[string]dcrypto.HybridCiphertext, sortedIDs []string) []byte {
	size := uvarintSize(uint64(len(sortedIDs)))
	for _, id := range sortedIDs {
		k := keys[id]
		size += lenPrefixedSize(len(id)) +
			lenPrefixedSize(len(k.EphemeralPub)) +
			lenPrefixedSize(len(k.Ciphertext))
	}
	out := make([]byte, 0, size)
	out = binary.AppendUvarint(out, uint64(len(sortedIDs)))
	for _, id := range sortedIDs {
		k := keys[id]
		out = appendLenPrefixed(out, []byte(id))
		out = appendLenPrefixed(out, k.EphemeralPub)
		out = appendLenPrefixed(out, k.Ciphertext)
	}
	return out
}

// encodeEnvelopeBinaryKeyed is encodeEnvelopeBinary with the wrapped-key
// table already encoded (by encodeEnvelopeKeys, once per epoch): it emits
// the envelope header and ciphertext, then splices the precomputed
// section, producing bytes identical to encodeEnvelopeBinary.
func encodeEnvelopeBinaryKeyed(env *Envelope, keySection []byte) []byte {
	size := 2 +
		lenPrefixedSize(len(env.Scheme)) +
		lenPrefixedSize(len(env.Channel)) +
		uvarintSize(env.Epoch) +
		lenPrefixedSize(len(env.Ciphertext)) +
		len(keySection)
	out := make([]byte, 0, size)
	out = append(out, binaryMagic, binaryKindEnvelope)
	out = appendLenPrefixed(out, []byte(env.Scheme))
	out = appendLenPrefixed(out, []byte(env.Channel))
	out = binary.AppendUvarint(out, env.Epoch)
	out = appendLenPrefixed(out, env.Ciphertext)
	return append(out, keySection...)
}

// encodeGroupEnvelopeBinary marshals a group envelope into the binary v2
// framing (kind 0x03) with a single exactly-sized allocation. Like
// encodeEnvelopeBinary, sortedIDs may name the emit order; nil sorts here.
func encodeGroupEnvelopeBinary(genv *GroupEnvelope, sortedIDs []string) []byte {
	if sortedIDs == nil {
		sortedIDs = make([]string, 0, len(genv.Keys))
		for id := range genv.Keys {
			sortedIDs = append(sortedIDs, id)
		}
		sort.Strings(sortedIDs)
	}
	return encodeGroupEnvelopeBinaryKeyed(genv, encodeEnvelopeKeys(genv.Keys, sortedIDs))
}

// encodeGroupEnvelopeBinaryKeyed is encodeGroupEnvelopeBinary with the
// wrapped-key table already encoded — the batch stage splices the epoch's
// precomputed section (the same bytes single envelopes of that epoch
// splice), so a group seal re-encodes no per-member material.
func encodeGroupEnvelopeBinaryKeyed(genv *GroupEnvelope, keySection []byte) []byte {
	size := 2 +
		lenPrefixedSize(len(genv.Scheme)) +
		lenPrefixedSize(len(genv.Channel)) +
		uvarintSize(genv.Epoch) +
		uvarintSize(genv.Count) +
		lenPrefixedSize(len(genv.Ciphertext)) +
		len(keySection)
	out := make([]byte, 0, size)
	out = append(out, binaryMagic, binaryKindGroupEnvelope)
	out = appendLenPrefixed(out, []byte(genv.Scheme))
	out = appendLenPrefixed(out, []byte(genv.Channel))
	out = binary.AppendUvarint(out, genv.Epoch)
	out = binary.AppendUvarint(out, genv.Count)
	out = appendLenPrefixed(out, genv.Ciphertext)
	return append(out, keySection...)
}

// encodeGroupEnvelopeBinarySealed is encodeGroupEnvelopeBinaryKeyed with
// the group seal fused in: the member payloads are sealed directly into the
// frame's ciphertext field, so header, ciphertext, and the epoch's spliced
// key section share one exactly-sized allocation — the standalone
// ciphertext buffer, and the copy of it into the frame, both disappear from
// the per-group cost. The frame bytes are identical to sealing first and
// encoding after (modulo the random nonce).
func encodeGroupEnvelopeBinarySealed(ck *channelKey, channel string, payloads [][]byte, ad []byte) ([]byte, error) {
	ctSize := dcrypto.SealedSegmentsSize(ck.aead, payloads)
	size := 2 +
		lenPrefixedSize(len(GroupEnvelopeScheme)) +
		lenPrefixedSize(len(channel)) +
		uvarintSize(ck.epoch) +
		uvarintSize(uint64(len(payloads))) +
		uvarintSize(uint64(ctSize)) + ctSize +
		len(ck.keySection)
	out := make([]byte, 0, size)
	out = append(out, binaryMagic, binaryKindGroupEnvelope)
	out = appendLenPrefixed(out, []byte(GroupEnvelopeScheme))
	out = appendLenPrefixed(out, []byte(channel))
	out = binary.AppendUvarint(out, ck.epoch)
	out = binary.AppendUvarint(out, uint64(len(payloads)))
	out = binary.AppendUvarint(out, uint64(ctSize))
	out, err := dcrypto.AppendEncryptSegmentsWithAEAD(out, ck.aead, payloads, ad)
	if err != nil {
		return nil, fmt.Errorf("middleware: seal group: %w", err)
	}
	return append(out, ck.keySection...), nil
}

// decodeGroupEnvelopeBinary reverses encodeGroupEnvelopeBinary.
func decodeGroupEnvelopeBinary(b []byte) (GroupEnvelope, error) {
	var genv GroupEnvelope
	if len(b) < 2 || b[0] != binaryMagic || b[1] != binaryKindGroupEnvelope {
		return genv, fmt.Errorf("%w: not a binary group envelope frame", ErrBadFrame)
	}
	r := &frameReader{b: b[2:]}
	genv.Scheme = r.str()
	genv.Channel = r.str()
	genv.Epoch = r.uvarint()
	genv.Count = r.uvarint()
	genv.Ciphertext = r.bytes()
	nKeys := r.uvarint()
	if r.err == nil && nKeys > uint64(len(r.b)) {
		return GroupEnvelope{}, fmt.Errorf("%w: key count %d exceeds remaining bytes", ErrBadFrame, nKeys)
	}
	if r.err == nil && nKeys > 0 {
		genv.Keys = make(map[string]dcrypto.HybridCiphertext, nKeys)
		for i := uint64(0); i < nKeys && r.err == nil; i++ {
			id := r.str()
			genv.Keys[id] = dcrypto.HybridCiphertext{
				EphemeralPub: r.bytes(),
				Ciphertext:   r.bytes(),
			}
		}
	}
	if err := r.done(); err != nil {
		return GroupEnvelope{}, err
	}
	return genv, nil
}

// EncodeGroupEnvelope marshals a group envelope in the named codec — the
// encoding counterpart of ParseGroupEnvelope, for clients and tests that
// handle group envelopes outside the batch stage.
func EncodeGroupEnvelope(genv GroupEnvelope, codec string) ([]byte, error) {
	switch codec {
	case "", CodecJSON:
		return json.Marshal(genv)
	case CodecBinary:
		return encodeGroupEnvelopeBinary(&genv, nil), nil
	default:
		return nil, fmt.Errorf("middleware: unknown codec %q", codec)
	}
}

// decodeEnvelopeBinary reverses encodeEnvelopeBinary.
func decodeEnvelopeBinary(b []byte) (Envelope, error) {
	var env Envelope
	if len(b) < 2 || b[0] != binaryMagic || b[1] != binaryKindEnvelope {
		return env, fmt.Errorf("%w: not a binary envelope frame", ErrBadFrame)
	}
	r := &frameReader{b: b[2:]}
	env.Scheme = r.str()
	env.Channel = r.str()
	env.Epoch = r.uvarint()
	env.Ciphertext = r.bytes()
	nKeys := r.uvarint()
	if r.err == nil && nKeys > uint64(len(r.b)) {
		return Envelope{}, fmt.Errorf("%w: key count %d exceeds remaining bytes", ErrBadFrame, nKeys)
	}
	if r.err == nil && nKeys > 0 {
		env.Keys = make(map[string]dcrypto.HybridCiphertext, nKeys)
		for i := uint64(0); i < nKeys && r.err == nil; i++ {
			id := r.str()
			env.Keys[id] = dcrypto.HybridCiphertext{
				EphemeralPub: r.bytes(),
				Ciphertext:   r.bytes(),
			}
		}
	}
	if err := r.done(); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// EncodeEnvelope marshals an envelope in the named codec — the encoding
// counterpart of ParseEnvelope, for clients and tests that handle
// envelopes outside the encrypt stage.
func EncodeEnvelope(env Envelope, codec string) ([]byte, error) {
	switch codec {
	case "", CodecJSON:
		return json.Marshal(env)
	case CodecBinary:
		return encodeEnvelopeBinary(&env, nil), nil
	default:
		return nil, fmt.Errorf("middleware: unknown codec %q", codec)
	}
}

// EncodeWireRequest marshals a request for the gateway.submit topic in the
// named codec, the encoding SubmitOverCodec puts on the wire.
func EncodeWireRequest(req *Request, codec string) ([]byte, error) {
	w := wireRequest{
		Channel:   req.Channel,
		Principal: req.Principal,
		Backend:   req.Backend,
		Payload:   req.Payload,
		Sig:       req.Sig,
		MAC:       req.MAC,
		Session:   req.SessionToken,
		Meta:      req.Meta,
		TraceID:   req.TraceID,
	}
	if req.Cert.Identity != "" {
		cert := req.Cert
		w.Cert = &cert
	}
	switch codec {
	case "", CodecJSON:
		return json.Marshal(w)
	case CodecBinary:
		return encodeWireRequestBinary(&w)
	default:
		return nil, fmt.Errorf("middleware: unknown codec %q", codec)
	}
}
